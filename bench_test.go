// Package cronus_test hosts the benchmark harness that regenerates every
// table and figure of the CRONUS evaluation (§VI). Each benchmark runs the
// corresponding experiment end to end — booting fresh simulated platforms,
// executing the workloads on CRONUS and the baselines — and reports the
// key reproduced quantities as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's results. DESIGN.md §4 maps experiment ids to
// modules; EXPERIMENTS.md records paper-vs-measured values.
package cronus_test

import (
	"testing"

	"cronus/internal/baseline"
	"cronus/internal/experiments"
	"cronus/internal/sim"
)

// BenchmarkTable1Requirements regenerates Table I (requirement matrix).
func BenchmarkTable1Requirements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1()
		if len(t.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable2Config regenerates Table II (prototype configuration).
func BenchmarkTable2Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3TCB regenerates Table III (TCB lines of code).
func BenchmarkTable3TCB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Rodinia regenerates Figure 7: Rodinia on the four
// systems. Reported metrics: CRONUS's worst and mean normalized time.
func BenchmarkFigure7Rodinia(b *testing.B) {
	var worst, mean float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		worst, mean = 0, 0
		for _, r := range rows {
			ov := r.Normalized[baseline.CRONUS]
			if ov > worst {
				worst = ov
			}
			mean += ov
		}
		mean /= float64(len(rows))
	}
	b.ReportMetric((worst-1)*100, "cronus-worst-overhead-%")
	b.ReportMetric((mean-1)*100, "cronus-mean-overhead-%")
}

// BenchmarkFigure8Training regenerates Figure 8: DNN training on the four
// systems.
func BenchmarkFigure8Training(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure8(2, 16)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if ov := r.Overhead[baseline.CRONUS]; ov > worst {
				worst = ov
			}
		}
	}
	b.ReportMetric(worst*100, "cronus-worst-overhead-%")
}

// BenchmarkFigure9Failover regenerates Figure 9: the two-task failover
// timeline. Reported metrics: measured mOS downtime and the reboot a
// monolithic design would pay.
func BenchmarkFigure9Failover(b *testing.B) {
	var r *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure9()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MOSDowntime.Milliseconds(), "mos-restart-ms")
	b.ReportMetric(r.RebootTime.Milliseconds(), "machine-reboot-ms")
}

// BenchmarkFigure10aVTABench regenerates Figure 10a: vta-bench throughput.
func BenchmarkFigure10aVTABench(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure10a()
		if err != nil {
			b.Fatal(err)
		}
		ratio = 1
		for _, r := range rows {
			v := r.Throughput[baseline.CRONUS] / r.Throughput[baseline.Native]
			if v < ratio {
				ratio = v
			}
		}
	}
	b.ReportMetric(ratio, "cronus-worst-throughput-ratio")
}

// BenchmarkFigure10bInference regenerates Figure 10b: DNN inference
// latency on the NPU and CPU.
func BenchmarkFigure10bInference(b *testing.B) {
	var rows []experiments.Fig10bRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure10b()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.NPULatency[baseline.CRONUS].Milliseconds(), r.Model+"-npu-ms")
	}
}

// BenchmarkFigure11aSpatial regenerates Figure 11a: spatial sharing of one
// GPU by 1/2/4 training mEnclaves.
func BenchmarkFigure11aSpatial(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure11a(12 * sim.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, r := range rows {
			if r.SpatialGainPct > best {
				best = r.SpatialGainPct
			}
		}
	}
	b.ReportMetric(best, "max-spatial-gain-%")
}

// BenchmarkFigure11bMultiGPU regenerates Figure 11b: multi-GPU gradient
// sharing mechanisms.
func BenchmarkFigure11bMultiGPU(b *testing.B) {
	var rows []experiments.Fig11bRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure11b(3)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.GPUs == 4 {
			b.ReportMetric(r.PerStep.Milliseconds(), string(r.Mode)+"-4gpu-ms-per-step")
		}
	}
}

// BenchmarkSRPCStreaming measures the per-call cost of the three RPC
// mechanisms (§IV-C's motivation).
func BenchmarkSRPCStreaming(b *testing.B) {
	var rows []experiments.SRPCMicroRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.SRPCMicro(200, 256)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := map[string]string{
			"sRPC streaming":   "stream-us-per-call",
			"sRPC synchronous": "sync-us-per-call",
			"lock-step sealed": "lockstep-us-per-call",
		}[r.Mechanism]
		b.ReportMetric(float64(r.PerCall)/1e3, name)
	}
}

// BenchmarkAblationStreaming compares streaming against forced-synchronous
// sRPC on the launch-heaviest workload (design-choice ablation ①).
func BenchmarkAblationStreaming(b *testing.B) {
	var rows []experiments.AblationStreamingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationStreaming()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Total.Milliseconds(), "streaming-ms")
	b.ReportMetric(rows[1].Total.Milliseconds(), "forced-sync-ms")
}

// BenchmarkAblationRingSize sweeps the smem ring size (ablation ②).
func BenchmarkAblationRingSize(b *testing.B) {
	var rows []experiments.AblationRingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationRingSize()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Transfer.Milliseconds(), "smallest-ring-ms")
	b.ReportMetric(rows[len(rows)-1].Transfer.Milliseconds(), "largest-ring-ms")
}

// BenchmarkAblationSwitchCost sweeps the S-EL2 context-switch cost
// (ablation ③): HIX degrades, CRONUS does not.
func BenchmarkAblationSwitchCost(b *testing.B) {
	var rows []experiments.AblationSwitchRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationSwitchCost()
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	b.ReportMetric(float64(last.HIX)/float64(first.HIX), "hix-growth-8x-switch")
	b.ReportMetric(float64(last.CRONUS)/float64(first.CRONUS), "cronus-growth-8x-switch")
}

// BenchmarkRecoveryTime measures mOS restart vs machine reboot (§VI-D).
func BenchmarkRecoveryTime(b *testing.B) {
	var rows []experiments.RecoveryRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RecoveryTimes()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.System == baseline.CRONUS {
			b.ReportMetric(r.Recovery.Milliseconds(), "cronus-recovery-ms")
		}
		if r.System == baseline.TrustZone {
			b.ReportMetric(r.Recovery.Milliseconds(), "monolithic-reboot-ms")
		}
	}
}
