module cronus

go 1.22
