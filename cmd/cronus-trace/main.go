// Command cronus-trace runs a seeded serving-plane workload with causal
// tracing enabled and renders the result three ways: a Chrome
// trace-event (Perfetto-loadable) JSON export, a per-tenant per-stage
// latency-attribution table, and p99 outlier exemplars that tie the
// histogram tail back to concrete trace IDs.
//
// Every output is a pure function of the flags: the same seed produces
// byte-identical JSON and text across invocations, so exports can be
// diffed, archived, and asserted on in CI.
//
// Usage:
//
//	cronus-trace                                  # table + outliers on stdout
//	cronus-trace -out trace.json                  # also write Perfetto JSON
//	cronus-trace -seed 7 -fail-at-ms 11           # attribute a failover run
//	cronus-trace -quantile 0.95 -exemplars 5      # widen the outlier net
package main

import (
	"flag"
	"fmt"
	"os"

	"cronus/internal/otrace"
	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/slo"
	"cronus/internal/trace"
	"cronus/internal/tvm"
	"cronus/internal/workload/rodinia"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic run seed")
	windowMS := flag.Int("window-ms", 30, "load-generation window, virtual ms")
	policy := flag.String("policy", string(serve.LeastOutstanding),
		"placement policy: round-robin | least-outstanding | device-affinity")
	maxBatch := flag.Int("max-batch", 4, "dynamic batch size cap (1 disables batching)")
	batchWinUS := flag.Int("batch-window-us", 50, "dynamic batch window, virtual µs")
	partitions := flag.Int("partitions", 2, "GPU partitions in the serving pool")
	tenants := flag.Int("tenants", 2, "number of tenants")
	rate := flag.Float64("rate", 3000, "per-tenant offered load, requests per virtual second")
	failAtMS := flag.Int("fail-at-ms", 0, "inject a FailPanic at this virtual ms (0 = none)")
	failPart := flag.String("fail-part", "gpu-part0", "partition to fail")
	out := flag.String("out", "", "write Chrome trace-event (Perfetto) JSON to this file")
	quantile := flag.Float64("quantile", 0.99, "outlier latency quantile")
	exemplars := flag.Int("exemplars", 3, "outlier exemplars to print per tenant")
	sloTargetUS := flag.Int("slo-target-us", 0,
		"arm per-tenant SLOs: latency target in virtual µs (0 = off)")
	report := flag.Bool("report", false, "also print the full serving-plane report")
	flag.Parse()

	cfg := serve.Config{
		Seed:          *seed,
		Window:        sim.Duration(*windowMS) * sim.Millisecond,
		Policy:        serve.Policy(*policy),
		MaxBatch:      *maxBatch,
		BatchWindow:   sim.Duration(*batchWinUS) * sim.Microsecond,
		GPUPartitions: *partitions,
		FailPartition: *failPart,
		Trace:         true,
	}
	if *failAtMS > 0 {
		cfg.FailAt = sim.Duration(*failAtMS) * sim.Millisecond
	}
	if *sloTargetUS > 0 {
		cfg.SLO = &slo.Objective{
			LatencyTarget: sim.Duration(*sloTargetUS) * sim.Microsecond,
			ErrorBudget:   0.01,
			Window:        cfg.Window,
		}
	}
	nn := rodinia.NN()
	for i := 0; i < *tenants; i++ {
		spec := serve.TenantSpec{
			Name:    fmt.Sprintf("tenant-%d", i),
			Arrival: serve.Poisson,
			Rate:    *rate,
			Mix: []serve.WorkClass{
				{Name: "resnet18", Weight: 6, Graph: tvm.ResNet18()},
				{Name: "resnet50", Weight: 3, Graph: tvm.ResNet50()},
			},
		}
		// Mirror cronus-serve: the first tenant mixes in unbatchable
		// general compute so both execution paths appear in the trace.
		if i == 0 {
			spec.Mix = append(spec.Mix, serve.WorkClass{Name: "nn", Weight: 1, Bench: &nn})
		}
		cfg.Tenants = append(cfg.Tenants, spec)
	}

	trace.Default.Enable()
	defer trace.Default.Disable()
	res, err := serve.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cronus-trace:", err)
		os.Exit(1)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cronus-trace:", err)
			os.Exit(1)
		}
		if err := trace.Default.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cronus-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d spans -> %s\n", trace.Default.Len(), *out)
	}
	if dropped := trace.Default.Dropped(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "cronus-trace: warning: %d trace events dropped (raise SetMaxEvents)\n", dropped)
	}

	if *report {
		fmt.Print(res.Report())
	}
	attr := otrace.Attribute(res.Traces)
	fmt.Print(attr.Table())
	fmt.Print(otrace.OutlierReport(attr.Outliers(*quantile, *exemplars)))
}
