// Command cronus-doclint enforces the documentation bar on the repo's
// API-bearing packages: every linted package must carry a package doc
// comment, and every exported top-level declaration — funcs, methods on
// exported types, types, and each exported const/var (a doc comment on the
// enclosing group counts) — must have a doc comment. Test files are
// exempt.
//
// It is the `make doc-lint` backend: zero findings exit 0, anything missing
// is listed one per line (file:line) and exits 1.
//
// Usage:
//
//	cronus-doclint                         # lint the default package set
//	cronus-doclint internal/gpu internal/core
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

// defaultDirs is the package set `make doc-lint` holds to the bar.
var defaultDirs = []string{
	"internal/serve",
	"internal/srpc",
	"internal/spm",
	"internal/chaos",
	"internal/cluster",
	"internal/attest",
	"internal/elastic",
	"internal/dnn",
	"internal/mos",
	"internal/trace",
	"internal/metrics",
	"internal/otrace",
	"internal/slo",
	"internal/sim",
}

func main() {
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	missing := 0
	for _, dir := range dirs {
		missing += lintDir(dir)
	}
	if missing > 0 {
		fmt.Printf("doc-lint: %d exported identifiers missing documentation\n", missing)
		os.Exit(1)
	}
	fmt.Printf("doc-lint: ok (%s)\n", strings.Join(dirs, " "))
}

// lintDir parses one package directory (tests excluded) and reports every
// undocumented exported declaration, returning the count.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir,
		func(fi os.FileInfo) bool { return !strings.HasSuffix(fi.Name(), "_test.go") },
		parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doc-lint: %s: %v\n", dir, err)
		os.Exit(1)
	}
	missing := 0
	for _, pkg := range pkgs {
		names := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		hasPkgDoc := false
		for _, name := range names {
			if f := pkg.Files[name]; f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			fmt.Printf("%s: package %s has no package doc comment\n", dir, pkg.Name)
			missing++
		}
		for _, name := range names {
			missing += lintFile(fset, pkg.Files[name])
		}
	}
	return missing
}

// lintFile walks one file's top-level declarations.
func lintFile(fset *token.FileSet, f *ast.File) int {
	missing := 0
	report := func(pos token.Pos, what, name string) {
		fmt.Printf("%s: exported %s %s has no doc comment\n", fset.Position(pos), what, name)
		missing++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil {
				// Methods are held to the bar only on exported receiver
				// types; an exported method on an internal type is not
				// part of the package surface.
				if base := receiverBase(d.Recv); base != "" && !ast.IsExported(base) {
					continue
				}
				report(d.Pos(), "method", d.Name.Name)
				continue
			}
			report(d.Pos(), "function", d.Name.Name)
		case *ast.GenDecl:
			groupDoc := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && !groupDoc {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A group doc ("// Errors returned by ...") or an
					// inline trailing comment documents the whole spec.
					if s.Doc != nil || s.Comment != nil || groupDoc {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							kind := "var"
							if d.Tok == token.CONST {
								kind = "const"
							}
							report(n.Pos(), kind, n.Name)
						}
					}
				}
			}
		}
	}
	return missing
}

// receiverBase extracts the receiver's base type name ("" if anonymous or
// not an identifier).
func receiverBase(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
