// Command cronus-attack demonstrates CRONUS's security isolation (R3.2):
// it plays the malicious normal OS from the threat model (§III-B) against a
// live platform — misrouting enclave requests, tampering / replaying RPC
// establishment traffic, forging local attestation, invoking mECalls
// without ownership, substituting a crashed mOS — and reports that every
// attack is defeated.
package main

import (
	"fmt"
	"os"
	"strings"

	"cronus/internal/attest"
	"cronus/internal/core"
	"cronus/internal/enclave"
	"cronus/internal/gpu"
	"cronus/internal/mos"
	"cronus/internal/mos/driver"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/srpc"
)

type attack struct {
	name string
	run  func(pl *core.Platform, p *sim.Proc) (defended bool, detail string)
}

func cudaManifest() (enclave.Manifest, map[string][]byte) {
	files := map[string][]byte{
		"cuda.edl":  driver.CUDAEDL(),
		"app.cubin": gpu.BuildCubin("vec_add"),
	}
	return enclave.NewManifest("gpu", "cuda.edl", "app.cubin", files, enclave.Resources{Memory: "16M"}), files
}

func attacks() []attack {
	return []attack{
		{"misroute enclave creation to the wrong partition", func(pl *core.Platform, p *sim.Proc) (bool, string) {
			man, files := cudaManifest()
			dh, _ := attest.NewDHKey([]byte("atk-misroute"))
			_, err := pl.D.CreateEnclaveAt(p, "cpu-part", "mis", man, files, dh.Pub)
			if err != nil && strings.Contains(err.Error(), "wrong partition") {
				return true, "mOS rejected the manifest/device mismatch"
			}
			return false, fmt.Sprintf("err=%v", err)
		}},
		{"invoke an mECall without knowing secret_dhke", func(pl *core.Platform, p *sim.Proc) (bool, string) {
			man, files := cudaManifest()
			dh, _ := attest.NewDHKey([]byte("atk-owner"))
			res, err := pl.D.CreateEnclave(p, "victim", man, files, dh.Pub)
			if err != nil {
				return false, err.Error()
			}
			evil := attest.NewChannel([]byte("guessed"), "owner->enclave")
			_, err = pl.D.InvokeSealed(p, res.EID, mos.SealRequest(evil, driver.CallMemAlloc, driver.EncodeMemAlloc(64)))
			if err != nil {
				return true, "MAC verification rejected the forged call"
			}
			return false, "forged mECall accepted"
		}},
		{"replay a genuine owner's mECall", func(pl *core.Platform, p *sim.Proc) (bool, string) {
			man, files := cudaManifest()
			dh, _ := attest.NewDHKey([]byte("atk-replay"))
			res, err := pl.D.CreateEnclave(p, "victim2", man, files, dh.Pub)
			if err != nil {
				return false, err.Error()
			}
			sec, _ := dh.Shared(res.DHPub)
			tx := attest.NewChannel(sec, "owner->enclave")
			msg := mos.SealRequest(tx, driver.CallMemAlloc, driver.EncodeMemAlloc(64))
			if _, err := pl.D.InvokeSealed(p, res.EID, msg); err != nil {
				return false, "genuine call failed: " + err.Error()
			}
			if _, err := pl.D.InvokeSealed(p, res.EID, msg); err != nil {
				return true, "sequence check rejected the replay"
			}
			return false, "replay accepted"
		}},
		{"tamper with sRPC stream establishment", func(pl *core.Platform, p *sim.Proc) (bool, string) {
			pl.D.TamperSetup = func(m attest.SealedMsg) attest.SealedMsg {
				if len(m.Payload) > 0 {
					m.Payload[0] ^= 0xff
				}
				return m
			}
			defer func() { pl.D.TamperSetup = nil }()
			s, err := pl.NewSession(p, "atk-tamper")
			if err != nil {
				return false, err.Error()
			}
			_, err = s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add")})
			if err != nil {
				return true, "establishment failed safe: " + firstLine(err)
			}
			return false, "tampered setup accepted"
		}},
		{"forge a local attestation report", func(pl *core.Platform, p *sim.Proc) (bool, string) {
			pl.D.FakeLocalReport = func(eid uint32, nonce uint64) (attest.LocalReport, []byte) {
				r := attest.LocalReport{EnclaveID: eid, Nonce: nonce}
				return r, attest.NewLocalSealer([]byte("not-the-LSK")).Seal(r)
			}
			defer func() { pl.D.FakeLocalReport = nil }()
			s, err := pl.NewSession(p, "atk-forge")
			if err != nil {
				return false, err.Error()
			}
			_, err = s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add")})
			if err != nil {
				return true, "LSK verification failed the forged report"
			}
			return false, "forged local report accepted"
		}},
		{"crash a partition mid-stream (TOCTOU / substitution window)", func(pl *core.Platform, p *sim.Proc) (bool, string) {
			s, err := pl.NewSession(p, "atk-crash")
			if err != nil {
				return false, err.Error()
			}
			conn, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add")})
			if err != nil {
				return false, err.Error()
			}
			pl.SPM.Fail(pl.GPUs[0].Part, spm.FailPanic)
			_, err = conn.MemAlloc(p, 64)
			if err != nil && strings.Contains(err.Error(), srpc.ErrPeerFailed.Error()) {
				return true, "owner trapped and the stream tore down; no data reached the substituted partition"
			}
			return false, fmt.Sprintf("err=%v", err)
		}},
		{"remote attestation of a substituted enclave image", func(pl *core.Platform, p *sim.Proc) (bool, string) {
			s, err := pl.NewSession(p, "atk-subst")
			if err != nil {
				return false, err.Error()
			}
			if _, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add")}); err != nil {
				return false, err.Error()
			}
			// The client pins the expected image hash; the platform
			// report carries the measured one; a mismatch means the
			// report (honest) reveals the substitution.
			dt := pl.SPM.DTHash()
			want := attest.Expected{
				EnclaveHashes: map[string]attest.Measurement{
					"atk-subst/cuda": attest.Measure([]byte("the image the client reviewed")),
				},
				DTHash: &dt,
				Nonce:  1,
			}
			if err := pl.RemoteAttest(p, 1, want); err != nil {
				return true, "verifier rejected the measurement mismatch"
			}
			return false, "substituted image attested"
		}},
	}
}

func firstLine(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}

func main() {
	failures := 0
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		fmt.Println("CRONUS attack harness — playing the malicious normal OS (§III-B)")
		fmt.Println()
		for i, a := range attacks() {
			ok, detail := a.run(pl, p)
			status := "DEFENDED"
			if !ok {
				status = "BREACHED"
				failures++
			}
			fmt.Printf("%d. %-55s [%s]\n   %s\n", i+1, a.name, status, detail)
			// Recover the platform between attacks if needed.
			pl.SPM.AwaitReady(p, pl.GPUs[0].Part)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cronus-attack: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	if failures > 0 {
		fmt.Printf("%d attack(s) breached the platform\n", failures)
		os.Exit(1)
	}
	fmt.Println("all attacks defeated (R3.2 holds)")
}
