// Command cronus-chaos runs seeded fault-injection soak campaigns against
// the serving plane (internal/chaos): each seed compiles a deterministic
// fault schedule (partition crashes, sRPC ring corruption, device hangs,
// post-restart attestation outages, persistent heartbeat hangs, crash
// loops), executes a fault-free baseline and a faulted run over the
// identical config, and checks the invariants — request conservation with
// zero duplicates, survivor-tenant latency within tolerance of baseline,
// crashed-partition memory never readable again, every injected hang
// detected by the SPM watchdog within its configured bound, and crash-loops
// quarantined by the sliding-window policy.
//
// The whole campaign is deterministic: the same -seed/-seeds produce
// byte-identical output. -verify re-runs every seed and byte-compares the
// two reports, proving the replay contract. Exit status is non-zero on any
// invariant violation or replay divergence.
//
// Usage:
//
//	cronus-chaos                         # 25-seed soak, all fault kinds
//	cronus-chaos -seeds 3 -v             # short soak with full per-seed reports
//	cronus-chaos -seed 7 -seeds 1 -v     # replay one schedule
//	cronus-chaos -kinds crash,device-hang
//	cronus-chaos -kinds persistent-hang,crash-loop
//	cronus-chaos -verify                 # double-run every seed, byte-compare
//	cronus-chaos -trace -seeds 3 -v      # causal spans + flight-recorder dumps
//	cronus-chaos -nodes 2 -partitions 4 -tenants 4    # node-level cluster soak
//	cronus-chaos -nodes 2 -partitions 4 -kinds node-crash -verify
//	cronus-chaos -nodes 2 -partitions 4 -tenants 4 -kinds attest-storm,stale-measurement
//	cronus-chaos -nodes 2 -partitions 4 -tenants 4 -kinds migrate-interrupt,scale-storm,drain-race -verify
//
// With -nodes >= 2 the campaign shifts to the multi-node fabric: every seed
// runs a cluster serving plane (sharded data plane spanning the nodes), the
// fault mix comes from the node-level kinds (node-crash, net-partition,
// slow-link), and the invariants add cross-node failover and no-split-brain
// on top of conservation and typed errors. The attestation kinds
// (attest-storm, stale-measurement) also ride the cluster campaign: naming
// either one in -kinds turns the session-ticket admission gate and the
// continuous re-measurement prober on in both the baseline and the faulted
// run, and adds the attestation invariants — typed *attest.RevokedError
// sheds only, the revoked partition quarantined with reason "revoked", and
// zero completions after a revocation. The migration kinds (migrate-interrupt,
// scale-storm, drain-race) exercise the elastic-capacity layer: a planned
// live migration interrupted mid-checkpoint must degrade to crash-failover
// with nothing lost or duplicated, a forced autoscaler oscillation must leave
// the baseline controller (armed identically, stormless) untouched, and a
// batch raced onto a quiescing source must still resolve exactly once.
// -partitions must divide evenly over -nodes; -trace only applies to
// single-node campaigns.
package main

import (
	"flag"
	"fmt"
	"os"

	"cronus/internal/chaos"
	"cronus/internal/sim"
)

func main() {
	baseSeed := flag.Int64("seed", 1, "first seed of the campaign")
	seeds := flag.Int("seeds", 25, "number of consecutive seeds to soak")
	tenants := flag.Int("tenants", 2, "serving tenants")
	partitions := flag.Int("partitions", 2, "GPU partitions in the pool")
	windowMS := flag.Int("window-ms", 10, "load window per run, virtual ms")
	faults := flag.Int("faults", 3, "faults compiled per schedule")
	kinds := flag.String("kinds", "", "comma-separated fault kinds (default all): crash,ring-corrupt,device-hang,attest-fail,persistent-hang,crash-loop; with -nodes >= 2: node-crash,net-partition,slow-link,attest-storm,stale-measurement,migrate-interrupt,scale-storm,drain-race")
	nodes := flag.Int("nodes", 0, "fabric nodes (0 = single-node chaos; >= 2 soaks the cluster plane with node-level faults)")
	verify := flag.Bool("verify", false, "re-run every seed and byte-compare the reports (replay contract)")
	verbose := flag.Bool("v", false, "print the full report of every seed, not just failures")
	traceOn := flag.Bool("trace", false,
		"record causal spans during faulted runs and include flight-recorder dumps in the reports")
	flag.Parse()

	opts := chaos.Options{
		Tenants:    *tenants,
		Partitions: *partitions,
		Window:     sim.Duration(*windowMS) * sim.Millisecond,
		Faults:     *faults,
		Trace:      *traceOn,
	}
	parsed, err := chaos.ParseKinds(*kinds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cronus-chaos:", err)
		os.Exit(2)
	}
	opts.Kinds = parsed

	if *nodes >= 2 {
		opts.Nodes = *nodes
		runCluster(*baseSeed, *seeds, opts, *verify, *verbose)
		return
	}

	cr, err := chaos.RunCampaign(*baseSeed, *seeds, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cronus-chaos:", err)
		os.Exit(1)
	}
	fmt.Print(cr.Report())
	if *verbose {
		for _, rr := range cr.Runs {
			if rr.Passed() { // failing seeds are already in the campaign report
				fmt.Printf("--- seed %d ---\n%s", rr.Seed, rr.Report())
			}
		}
	}

	ok := cr.Passed()
	if !ok {
		fmt.Println("soak: FAIL")
	} else {
		fmt.Println("soak: every invariant upheld")
	}

	if *verify {
		diverged := 0
		for _, rr := range cr.Runs {
			again, err := chaos.RunOne(rr.Seed, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cronus-chaos: verify:", err)
				os.Exit(1)
			}
			if again.Report() != rr.Report() {
				diverged++
				fmt.Printf("REPLAY DIVERGENCE: seed %d produced two different reports\n", rr.Seed)
			}
		}
		if diverged == 0 {
			fmt.Printf("verify: %d seeds replayed byte-identically\n", len(cr.Runs))
		} else {
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// runCluster drives the -nodes >= 2 campaign: the node-level fault soak over
// the multi-node fabric, with the same -verify replay contract as the
// single-node path.
func runCluster(baseSeed int64, seeds int, opts chaos.Options, verify, verbose bool) {
	cr, err := chaos.RunNodeCampaign(baseSeed, seeds, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cronus-chaos:", err)
		os.Exit(1)
	}
	fmt.Print(cr.Report())
	if verbose {
		for _, rr := range cr.Runs {
			if rr.Passed() { // failing seeds are already in the campaign report
				fmt.Printf("--- seed %d ---\n%s", rr.Seed, rr.Report())
			}
		}
	}

	ok := cr.Passed()
	if !ok {
		fmt.Println("soak: FAIL")
	} else {
		fmt.Println("soak: every invariant upheld")
	}

	if verify {
		diverged := 0
		for _, rr := range cr.Runs {
			again, err := chaos.RunNodeOne(rr.Seed, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cronus-chaos: verify:", err)
				os.Exit(1)
			}
			if again.Report() != rr.Report() {
				diverged++
				fmt.Printf("REPLAY DIVERGENCE: seed %d produced two different reports\n", rr.Seed)
			}
		}
		if diverged == 0 {
			fmt.Printf("verify: %d seeds replayed byte-identically\n", len(cr.Runs))
		} else {
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}
