// Command cronus-serve runs the multi-tenant serving plane (internal/serve)
// against a simulated CRONUS platform: seeded multi-tenant load, admission
// control, dynamic batching, pluggable placement, and optional mid-run
// partition failure with proceed-trap failover.
//
// The run is deterministic: a fixed -seed produces byte-identical output
// across invocations. Exit status is non-zero if the run loses or
// duplicates any request.
//
// Usage:
//
//	cronus-serve                                  # two-tenant demo load
//	cronus-serve -seed 7 -policy round-robin
//	cronus-serve -fail-at-ms 11                   # inject a partition failure
//	cronus-serve -fail-at-ms 11 -supervise        # with health supervision on
//	cronus-serve -max-batch 1                     # disable batching
//	cronus-serve -trace out.json                  # causal spans -> Perfetto JSON
//	cronus-serve -slo-target-us 400               # arm the SLO burn-rate engine
//	cronus-serve -shards 2                        # sharded kernel + flow-model data plane
//	cronus-serve -partitions 8 -shards 4 -lanes 4 -parallel  # ... parallel shard execution
//	cronus-serve -nodes 2 -partitions 8 -shards 8            # two-node fabric cluster
//	cronus-serve -nodes 2 -partitions 8 -shards 8 -node-crash-ms 11  # ... with a node crash
//	cronus-serve -attest-tickets                  # attestation admission gate
//	cronus-serve -attest-tickets -attest-reprobe-us 500      # ... + re-measurement prober
//	cronus-serve -shards 4 -partitions 4 -migrate-at-ms 10 -migrate-from 0/1 -migrate-to 0/0
//	cronus-serve -shards 4 -partitions 4 -migrate-at-ms 10 -migrate-interrupt  # die mid-checkpoint
//	cronus-serve -shards 4 -partitions 4 -autoscale          # load-driven elastic capacity
//
// -shards 0 (the default) and -shards 1 run the classic sequential plane
// byte-identically. With -shards >= 2 the run moves to the sharded data
// plane, which models inference serving only: the general-compute rodinia
// class is left out of the tenant mix, and -trace/-supervise are rejected
// by config validation. The partition count must be a positive multiple of
// the shard count (a -shards value that does not divide it is a usage
// error, exit status 2). With -nodes >= 2 the run spans a simulated
// multi-node fabric: shards and partitions must also divide evenly across
// the nodes, tenants are homed by consistent hashing, and -link-latency-us /
// -link-gbps price the inter-node transport.
//
// The elastic-capacity flags also require the sharded plane. -migrate-at-ms
// schedules one planned live migration (quiesce, checkpoint, transfer, replay,
// release) from -migrate-from to -migrate-to, each a node/partition pair;
// -migrate-interrupt kills the source mid-checkpoint so the plane must degrade
// to crash-failover, and -migrate-race force-dispatches one batch onto the
// quiescing source. -autoscale arms the load-driven autoscaler (queue-depth /
// shed-rate watermarks with cooldown hysteresis); the report gains the elastic
// action counters and event log either way.
package main

import (
	"flag"
	"fmt"
	"os"

	"cronus/internal/cluster"
	"cronus/internal/elastic"
	"cronus/internal/otrace"
	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/slo"
	"cronus/internal/spm"
	"cronus/internal/trace"
	"cronus/internal/tvm"
	"cronus/internal/workload/rodinia"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic run seed")
	windowMS := flag.Int("window-ms", 30, "load-generation window, virtual ms")
	policy := flag.String("policy", string(serve.LeastOutstanding),
		"placement policy: round-robin | least-outstanding | device-affinity")
	maxBatch := flag.Int("max-batch", 4, "dynamic batch size cap (1 disables batching)")
	batchWinUS := flag.Int("batch-window-us", 50, "dynamic batch window, virtual µs")
	partitions := flag.Int("partitions", 2, "GPU partitions in the serving pool")
	tenants := flag.Int("tenants", 2, "number of tenants")
	rate := flag.Float64("rate", 3000, "per-tenant offered load, requests per virtual second")
	failAtMS := flag.Int("fail-at-ms", 0, "inject a FailPanic at this virtual ms (0 = none)")
	failPart := flag.String("fail-part", "gpu-part0", "partition to fail")
	supervise := flag.Bool("supervise", false,
		"enable health supervision: mOS heartbeats + SPM watchdog, restart backoff, crash-loop quarantine, hang-report breaker")
	showReqs := flag.Bool("requests", false, "dump the per-request timeline")
	traceOut := flag.String("trace", "",
		"enable causal tracing and write Chrome trace-event (Perfetto) JSON to this file")
	sloTargetUS := flag.Int("slo-target-us", 0,
		"arm per-tenant SLOs: latency target in virtual µs (0 = off)")
	sloBudget := flag.Float64("slo-budget", 0.01, "SLO error budget (fraction of requests)")
	sloAdmit := flag.Bool("slo-admission", false,
		"halve a tenant's admission cap while its SLO burn rate is firing")
	shards := flag.Int("shards", 0,
		"kernel shards for the sharded data plane (0 or 1 = classic sequential plane)")
	lanes := flag.Int("lanes", 0,
		"sRPC rings per replica on the sharded plane (0 = default)")
	parallel := flag.Bool("parallel", false,
		"run kernel shards on their own goroutines (requires -shards >= 2)")
	nodes := flag.Int("nodes", 0,
		"simulated fabric nodes (0 or 1 = single node; >= 2 requires -shards and -partitions divisible by it)")
	linkLatencyUS := flag.Float64("link-latency-us", 0,
		"inter-node link latency, virtual µs (0 = default 5µs)")
	linkGBps := flag.Float64("link-gbps", 0,
		"inter-node link bandwidth, GB/s (0 = default 10)")
	nodeCrashMS := flag.Int("node-crash-ms", 0,
		"crash node 1 at this virtual ms (0 = none; requires -nodes >= 2)")
	attTickets := flag.Bool("attest-tickets", false,
		"gate every dispatch on attestation, with session-ticket resumption and cached quote verification")
	attTTLUS := flag.Int("attest-ticket-ttl-us", 0,
		"session-ticket lifetime, virtual µs (0 = default 5000; requires -attest-tickets)")
	attReprobeUS := flag.Int("attest-reprobe-us", 0,
		"continuous re-measurement probe interval, virtual µs (0 = prober off; requires -attest-tickets)")
	attCache := flag.Int("attest-cache", 0,
		"session-ticket cache capacity (0 = default 1024; requires -attest-tickets)")
	migrateAtMS := flag.Int("migrate-at-ms", 0,
		"start a planned live migration at this virtual ms (0 = none; requires -shards >= 2)")
	migrateFrom := flag.String("migrate-from", "0/1",
		"migration source endpoint as node/partition (requires -migrate-at-ms)")
	migrateTo := flag.String("migrate-to", "0/0",
		"migration destination endpoint as node/partition (requires -migrate-at-ms)")
	migrateInterrupt := flag.Bool("migrate-interrupt", false,
		"kill the migration source mid-checkpoint: the plane must degrade to crash-failover (requires -migrate-at-ms)")
	migrateRace := flag.Bool("migrate-race", false,
		"force-dispatch one batch onto the quiescing source (requires -migrate-at-ms)")
	autoscale := flag.Bool("autoscale", false,
		"arm the load-driven autoscaler: watermark-driven scale-up/down with boot, attest and scrub costs (requires -shards >= 2)")
	autoscaleIntervalUS := flag.Int("autoscale-interval-us", 0,
		"autoscaler control tick, virtual µs (0 = default 250; requires -autoscale)")
	flag.Parse()

	if *migrateAtMS <= 0 && (*migrateInterrupt || *migrateRace) {
		fmt.Fprintln(os.Stderr, "cronus-serve: -migrate-interrupt/-migrate-race require -migrate-at-ms")
		os.Exit(2)
	}
	if !*autoscale && *autoscaleIntervalUS > 0 {
		fmt.Fprintln(os.Stderr, "cronus-serve: -autoscale-interval-us requires -autoscale")
		os.Exit(2)
	}

	if !*attTickets && (*attTTLUS > 0 || *attReprobeUS > 0 || *attCache > 0) {
		fmt.Fprintln(os.Stderr, "cronus-serve: -attest-ticket-ttl-us/-attest-reprobe-us/-attest-cache require -attest-tickets")
		os.Exit(2)
	}

	if err := serve.CheckShardLayout(*shards, *partitions, *nodes); err != nil {
		fmt.Fprintln(os.Stderr, "cronus-serve:", err)
		os.Exit(2)
	}

	cfg := serve.Config{
		Seed:          *seed,
		Window:        sim.Duration(*windowMS) * sim.Millisecond,
		Policy:        serve.Policy(*policy),
		MaxBatch:      *maxBatch,
		BatchWindow:   sim.Duration(*batchWinUS) * sim.Microsecond,
		GPUPartitions: *partitions,
		KeepRequests:  true,
		FailPartition: *failPart,
		Shards:        *shards,
		Lanes:         *lanes,
		Parallel:      *parallel,
	}
	if *nodes >= 2 {
		cfg.Nodes = *nodes
		if *linkLatencyUS > 0 {
			cfg.LinkLatency = sim.Duration(*linkLatencyUS * 1e3)
		}
		cfg.LinkGBps = *linkGBps
		if *nodeCrashMS > 0 {
			cfg.NodeFaults = append(cfg.NodeFaults, cluster.Fault{
				Kind: cluster.NodeCrash,
				Node: 1,
				At:   sim.Duration(*nodeCrashMS) * sim.Millisecond,
			})
		}
	}
	if *failAtMS > 0 {
		cfg.FailAt = sim.Duration(*failAtMS) * sim.Millisecond
	}
	if *attTickets {
		cfg.AttestTickets = true
		if *attTTLUS > 0 {
			cfg.AttestTicketTTL = sim.Duration(*attTTLUS) * sim.Microsecond
		}
		if *attReprobeUS > 0 {
			cfg.AttestReprobe = sim.Duration(*attReprobeUS) * sim.Microsecond
		}
		if *attCache > 0 {
			cfg.AttestCacheCap = *attCache
		}
	}
	if *migrateAtMS > 0 {
		cfg.Migrations = append(cfg.Migrations, serve.Migration{
			At:        sim.Duration(*migrateAtMS) * sim.Millisecond,
			From:      parseEndpoint("-migrate-from", *migrateFrom),
			To:        parseEndpoint("-migrate-to", *migrateTo),
			Interrupt: *migrateInterrupt,
			Race:      *migrateRace,
		})
	}
	if *autoscale {
		ac := elastic.Config{}
		if *autoscaleIntervalUS > 0 {
			ac.Interval = sim.Duration(*autoscaleIntervalUS) * sim.Microsecond
		}
		cfg.Autoscale = &ac
	}
	if *traceOut != "" {
		cfg.Trace = true
		trace.Default.Enable()
		defer trace.Default.Disable()
	}
	if *sloTargetUS > 0 {
		cfg.SLO = &slo.Objective{
			LatencyTarget: sim.Duration(*sloTargetUS) * sim.Microsecond,
			ErrorBudget:   *sloBudget,
			Window:        cfg.Window,
		}
		cfg.SLOAdmission = *sloAdmit
	}
	if *supervise {
		cfg.Supervision = &spm.Supervision{
			HeartbeatEvery:  200 * sim.Microsecond,
			MissedBeats:     3,
			RestartBackoff:  500 * sim.Microsecond,
			QuarantineAfter: 3,
			FailureWindow:   sim.Second,
		}
		cfg.HangReportAfter = 2
	}
	nn := rodinia.NN()
	for i := 0; i < *tenants; i++ {
		spec := serve.TenantSpec{
			Name:    fmt.Sprintf("tenant-%d", i),
			Arrival: serve.Poisson,
			Rate:    *rate,
			Mix: []serve.WorkClass{
				{Name: "resnet18", Weight: 6, Graph: tvm.ResNet18()},
				{Name: "resnet50", Weight: 3, Graph: tvm.ResNet50()},
			},
		}
		// The first tenant mixes in general compute (unbatchable rodinia
		// passes) so the run exercises both execution paths. The sharded
		// plane models inference serving only, so it keeps the pure-graph
		// mix.
		if i == 0 && *shards < 2 {
			spec.Mix = append(spec.Mix, serve.WorkClass{Name: "nn", Weight: 1, Bench: &nn})
		}
		cfg.Tenants = append(cfg.Tenants, spec)
	}

	res, err := serve.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cronus-serve:", err)
		os.Exit(1)
	}
	fmt.Print(res.Report())
	if *attTickets {
		// The admission-gate counters: how much of the dispatch volume rode
		// a session-ticket resume (one MAC) versus a cold quote verification.
		c := res.Metrics.Counters
		fmt.Printf("attestation: cold=%d resumed=%d ticket-hits=%d verify-hits=%d coalesced=%d probes=%d revocations=%d\n",
			c["serve.attest.cold"], c["serve.attest.resumed"],
			c["attest.tickets.hits"], c["attest.verify.hits"], c["attest.verify.coalesced"],
			c["serve.attest.probes"], c["serve.attest.revocations"])
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cronus-serve:", err)
			os.Exit(1)
		}
		if err := trace.Default.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cronus-serve:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d spans -> %s\n", trace.Default.Len(), *traceOut)
		fmt.Print(otrace.Attribute(res.Traces).Table())
	}

	if *showReqs {
		for _, r := range res.Requests {
			fmt.Printf("req %4d %-10s %-9s arrived=%-12d latency=%-12s replays=%d\n",
				r.ID, r.Tenant, r.Class, int64(r.Arrived), r.Latency(), r.Replays)
		}
	}

	// Conservation audit: every admitted request completed exactly once.
	ok := true
	for _, tr := range res.Tenants {
		if tr.Offered != tr.Admitted+tr.Shed || tr.Admitted != tr.Completed+tr.Failed || tr.Duplicates != 0 {
			ok = false
			fmt.Printf("ACCOUNTING VIOLATION: %s offered=%d admitted=%d shed=%d completed=%d failed=%d dups=%d\n",
				tr.Name, tr.Offered, tr.Admitted, tr.Shed, tr.Completed, tr.Failed, tr.Duplicates)
		}
	}
	if ok {
		fmt.Println("accounting: zero lost, zero duplicated")
	} else {
		os.Exit(1)
	}
}

// parseEndpoint parses a node/partition pair from a migration endpoint flag.
func parseEndpoint(flagName, s string) elastic.Endpoint {
	var e elastic.Endpoint
	if _, err := fmt.Sscanf(s, "%d/%d", &e.Node, &e.Part); err != nil {
		fmt.Fprintf(os.Stderr, "cronus-serve: %s: want node/partition (e.g. 0/1), got %q\n",
			flagName, s)
		os.Exit(2)
	}
	return e
}
