// Command cronus-partition demonstrates the automatic partitioning tool
// (§V-B): it takes the paper's monolithic matrix-computation enclave,
// splits it into per-device mEnclaves, converts accelerator calls to sRPC,
// and prints the plan — including the shared-state analysis that rejects
// programs whose cross-device data flow is implicit.
package main

import (
	"fmt"
	"os"

	"cronus/internal/mos/driver"
	"cronus/internal/partition"
)

func main() {
	prog := &partition.Program{
		Name: "dnn-train",
		Steps: []partition.Step{
			{Device: "cpu", Call: "decrypt_dataset", Writes: []string{"batch"}},
			{Device: "gpu", Call: driver.CallMemAlloc, Writes: []string{"d_in"}},
			{Device: "gpu", Call: driver.CallMemAlloc, Writes: []string{"d_w"}},
			{Device: "gpu", Call: driver.CallHtoD, Reads: []string{"batch"}, Writes: []string{"d_in"}, Transfer: true},
			{Device: "gpu", Call: driver.CallLaunch, Reads: []string{"d_in", "d_w"}, Writes: []string{"d_act"}},
			{Device: "gpu", Call: driver.CallLaunch, Reads: []string{"d_act"}, Writes: []string{"d_grad"}},
			{Device: "gpu", Call: driver.CallDtoH, Reads: []string{"d_grad"}, Writes: []string{"h_logits"}, Transfer: true},
			{Device: "npu", Call: driver.CallVTAHtoD, Reads: []string{"h_logits"}, Writes: []string{"n_in"}, Transfer: true},
			{Device: "npu", Call: driver.CallVTARun, Reads: []string{"n_in"}, Writes: []string{"n_out"}},
			{Device: "npu", Call: driver.CallVTADtoH, Reads: []string{"n_out"}, Writes: []string{"result"}, Transfer: true},
			{Device: "cpu", Call: "seal_result", Reads: []string{"result"}, Transfer: true},
		},
	}
	plan, err := partition.Partition(prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cronus-partition: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(plan.Summary())

	fmt.Println("\nrouted steps:")
	for i, s := range plan.Steps {
		mode := "sync"
		if s.Async {
			mode = "async (streams)"
		}
		fmt.Printf("  %2d. %-22s -> %-18s %s\n", i, s.Step.Call, s.Enclave, mode)
	}

	// Show the diagnosis path too.
	bad := &partition.Program{
		Name: "broken",
		Steps: []partition.Step{
			{Device: "cpu", Call: "prep", Writes: []string{"x"}},
			{Device: "gpu", Call: driver.CallLaunch, Reads: []string{"x"}},
		},
	}
	if _, err := partition.Partition(bad); err != nil {
		fmt.Printf("\nshared-state analysis (program %q):\n  %v\n", bad.Name, err)
	}
}
