// Command cronus-run executes one workload on one system and reports the
// virtual-time result — the artifact-evaluation style entry point:
//
//	cronus-run -list
//	cronus-run -workload gaussian -system cronus
//	cronus-run -workload gaussian -system all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cronus/internal/accel"
	"cronus/internal/baseline"
	"cronus/internal/core"
	"cronus/internal/gpu"
	"cronus/internal/metrics"
	"cronus/internal/sim"
	"cronus/internal/trace"
	"cronus/internal/workload/rodinia"
)

func runOn(system baseline.System, b rodinia.Benchmark) (sim.Duration, error) {
	var elapsed sim.Duration
	if system == baseline.CRONUS {
		err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
			rodinia.RegisterKernels(pl.GPUs[0].Dev.SMs())
			s, err := pl.NewSession(p, "run")
			if err != nil {
				return err
			}
			ops, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: b.Cubin(), RingPages: 65})
			if err != nil {
				return err
			}
			defer ops.Close(p)
			start := p.Now()
			if err := b.Run(p, ops); err != nil {
				return err
			}
			elapsed = sim.Duration(p.Now() - start)
			return nil
		})
		return elapsed, err
	}
	k := sim.NewKernel()
	var fail error
	k.Spawn("main", func(p *sim.Proc) {
		defer k.Stop()
		costs := sim.DefaultCosts()
		dev := gpu.New(k, costs, gpu.Config{Name: "gpu0", MemBytes: 1 << 30, SMs: 46, CopyEngs: 2, MPS: true, KeySeed: "run"})
		gpu.RegisterStdKernels(dev.SMs())
		rodinia.RegisterKernels(dev.SMs())
		var ops accel.CUDA
		var err error
		switch system {
		case baseline.Native:
			ops, err = baseline.NewNativeCUDA(dev, costs, b.Cubin())
		case baseline.TrustZone:
			ops, err = baseline.NewTrustZoneCUDA(dev, costs, b.Cubin())
		case baseline.HIX:
			ops, err = baseline.NewHIXCUDA(dev, costs, b.Cubin())
		default:
			err = fmt.Errorf("unknown system %q", system)
		}
		if err != nil {
			fail = err
			return
		}
		start := p.Now()
		if err := b.Run(p, ops); err != nil {
			fail = err
			return
		}
		elapsed = sim.Duration(p.Now() - start)
	})
	if err := k.Run(); err != nil {
		return 0, err
	}
	return elapsed, fail
}

func writeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.Default.WriteChromeTrace(f)
}

func writeMetrics(path string, snap *metrics.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return snap.WriteJSON(f)
}

func main() {
	workload := flag.String("workload", "", "rodinia workload name")
	system := flag.String("system", "all", "linux | trustzone | hix-trustzone | cronus | all")
	traceOut := flag.String("trace", "", "write a Chrome trace JSON of the run to this file")
	metricsOut := flag.String("metrics", "", "write a metrics snapshot JSON of the run to this file")
	list := flag.Bool("list", false, "list workloads and systems")
	flag.Parse()

	// Both observability sinks are written after every run completes; the
	// combined summary line reports what was captured and where it went.
	if *traceOut != "" || *metricsOut != "" {
		if *traceOut != "" {
			trace.Default.Enable()
		}
		if *metricsOut != "" {
			metrics.Default.Reset()
			metrics.Default.Enable()
		}
		defer func() {
			var parts []string
			failed := false
			if *traceOut != "" {
				if err := writeTrace(*traceOut); err != nil {
					fmt.Fprintln(os.Stderr, "cronus-run:", err)
					failed = true
				} else {
					parts = append(parts, fmt.Sprintf("%s -> %s (open in chrome://tracing or Perfetto)", trace.Default.Summary(), *traceOut))
				}
			}
			if *metricsOut != "" {
				snap := metrics.Default.Snapshot()
				if err := writeMetrics(*metricsOut, snap); err != nil {
					fmt.Fprintln(os.Stderr, "cronus-run:", err)
					failed = true
				} else {
					parts = append(parts, fmt.Sprintf("%s -> %s", snap.Summary(), *metricsOut))
				}
			}
			// The collector silently caps its buffer; surface the loss so a
			// truncated export is never mistaken for a complete one. The same
			// count is exported as the trace.events.dropped counter.
			if dropped := trace.Default.Dropped(); dropped > 0 {
				fmt.Fprintf(os.Stderr, "cronus-run: warning: %d trace events dropped (raise SetMaxEvents)\n", dropped)
			}
			for _, line := range parts {
				fmt.Println(line)
			}
			if failed {
				os.Exit(1)
			}
		}()
	}

	if *list {
		var names []string
		for _, b := range rodinia.AllExtended() {
			names = append(names, b.Name)
		}
		fmt.Println("workloads:", strings.Join(names, ", "))
		fmt.Println("systems:  linux, trustzone, hix-trustzone, cronus, all")
		return
	}
	if *workload == "" {
		fmt.Fprintln(os.Stderr, "cronus-run: -workload required (see -list)")
		os.Exit(2)
	}
	b, err := rodinia.ByName(*workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cronus-run: %v\n", err)
		os.Exit(2)
	}
	systems := []baseline.System{baseline.Native, baseline.TrustZone, baseline.HIX, baseline.CRONUS}
	if *system != "all" {
		systems = []baseline.System{baseline.System(*system)}
	}
	var native sim.Duration
	for _, s := range systems {
		d, err := runOn(s, b)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cronus-run: %s on %s: %v\n", b.Name, s, err)
			os.Exit(1)
		}
		norm := ""
		if s == baseline.Native {
			native = d
		} else if native > 0 {
			norm = fmt.Sprintf("  (%.3fx native)", float64(d)/float64(native))
		}
		fmt.Printf("%-14s %-14s %12v%s\n", b.Name, s, d, norm)
	}
}
