// Command cronus-loc prints the Table III TCB accounting: lines of code per
// mOS / mEnclave component, counted from this repository's sources,
// alongside the monolithic total a single-TEE-OS design would carry.
package main

import (
	"fmt"
	"os"

	"cronus/internal/experiments"
)

func main() {
	t, err := experiments.Table3()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cronus-loc: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(t.String())
}
