// Command cronus-bench regenerates the tables and figures of the CRONUS
// evaluation (§VI). Each experiment boots fresh simulated platforms, runs
// the paper's workloads on CRONUS and the baseline systems, and prints the
// results in the shape the paper reports.
//
// Usage:
//
//	cronus-bench                 # run everything
//	cronus-bench -exp fig7       # one experiment
//	cronus-bench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cronus/internal/experiments"
	"cronus/internal/metrics"
	"cronus/internal/sim"
)

type experiment struct {
	id   string
	desc string
	run  func() (fmt.Stringer, error)
}

func experimentsList() []experiment {
	return []experiment{
		{"table1", "Table I: requirement matrix", func() (fmt.Stringer, error) {
			return experiments.Table1(), nil
		}},
		{"table2", "Table II: prototype configuration", func() (fmt.Stringer, error) {
			return experiments.Table2()
		}},
		{"table3", "Table III: TCB lines of code", func() (fmt.Stringer, error) {
			return experiments.Table3()
		}},
		{"fig7", "Figure 7: Rodinia normalized computation time", func() (fmt.Stringer, error) {
			rows, err := experiments.Figure7()
			if err != nil {
				return nil, err
			}
			return experiments.RenderFigure7(rows), nil
		}},
		{"fig8", "Figure 8: DNN training time", func() (fmt.Stringer, error) {
			rows, err := experiments.Figure8(3, 16)
			if err != nil {
				return nil, err
			}
			return experiments.RenderFigure8(rows), nil
		}},
		{"fig9", "Figure 9: failover timeline", func() (fmt.Stringer, error) {
			r, err := experiments.Figure9()
			if err != nil {
				return nil, err
			}
			return experiments.RenderFigure9(r), nil
		}},
		{"fig10a", "Figure 10a: vta-bench throughput", func() (fmt.Stringer, error) {
			rows, err := experiments.Figure10a()
			if err != nil {
				return nil, err
			}
			return experiments.RenderFigure10a(rows), nil
		}},
		{"fig10b", "Figure 10b: DNN inference latency", func() (fmt.Stringer, error) {
			rows, err := experiments.Figure10b()
			if err != nil {
				return nil, err
			}
			return experiments.RenderFigure10b(rows), nil
		}},
		{"fig11a", "Figure 11a: spatial sharing of one GPU", func() (fmt.Stringer, error) {
			rows, err := experiments.Figure11a(20 * sim.Millisecond)
			if err != nil {
				return nil, err
			}
			return experiments.RenderFigure11a(rows), nil
		}},
		{"fig11b", "Figure 11b: multi-GPU gradient sharing", func() (fmt.Stringer, error) {
			rows, err := experiments.Figure11b(6)
			if err != nil {
				return nil, err
			}
			return experiments.RenderFigure11b(rows), nil
		}},
		{"srpc", "sRPC microbenchmark", func() (fmt.Stringer, error) {
			rows, err := experiments.SRPCMicro(200, 256)
			if err != nil {
				return nil, err
			}
			return experiments.RenderSRPCMicro(rows), nil
		}},
		{"recovery", "Recovery time comparison (§VI-D)", func() (fmt.Stringer, error) {
			rows, err := experiments.RecoveryTimes()
			if err != nil {
				return nil, err
			}
			return experiments.RenderRecovery(rows), nil
		}},
		{"sharing", "Sharing policies: MPS vs MIG vs temporal vs cold-reboot", func() (fmt.Stringer, error) {
			rows, err := experiments.SharingPolicies(12 * sim.Millisecond)
			if err != nil {
				return nil, err
			}
			return experiments.RenderSharingPolicies(rows), nil
		}},
		{"ablate-stream", "Ablation: streaming vs forced-sync sRPC", func() (fmt.Stringer, error) {
			rows, err := experiments.AblationStreaming()
			if err != nil {
				return nil, err
			}
			return experiments.RenderAblationStreaming(rows), nil
		}},
		{"ablate-ring", "Ablation: sRPC ring size", func() (fmt.Stringer, error) {
			rows, err := experiments.AblationRingSize()
			if err != nil {
				return nil, err
			}
			return experiments.RenderAblationRingSize(rows), nil
		}},
		{"ablate-switch", "Ablation: context-switch cost sensitivity", func() (fmt.Stringer, error) {
			rows, err := experiments.AblationSwitchCost()
			if err != nil {
				return nil, err
			}
			return experiments.RenderAblationSwitchCost(rows), nil
		}},
		{"serve", "Serving plane: batch-cap sweep at fixed offered load", func() (fmt.Stringer, error) {
			rows, err := experiments.ServeBatchSweep(nil)
			if err != nil {
				return nil, err
			}
			return experiments.RenderServeBatchSweep(rows), nil
		}},
		{"attest", "Attestation: ticket resumption vs cold quote verification", func() (fmt.Stringer, error) {
			rows, err := experiments.AttestAmortization(nil)
			if err != nil {
				return nil, err
			}
			return experiments.RenderAttestAmortization(rows), nil
		}},
		{"chaos", "Chaos soak: fault kinds vs recovery machinery", func() (fmt.Stringer, error) {
			rows, err := experiments.ChaosSweep(5)
			if err != nil {
				return nil, err
			}
			return experiments.RenderChaosSweep(rows), nil
		}},
		{"watchdog", "Watchdog hang detection: bound vs measured latency", func() (fmt.Stringer, error) {
			rows, err := experiments.HangDetectionSweep()
			if err != nil {
				return nil, err
			}
			return experiments.RenderHangDetectionSweep(rows), nil
		}},
	}
}

func main() {
	expFlag := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	showMetrics := flag.Bool("metrics", false, "print a metrics appendix after each experiment")
	flag.Parse()

	exps := experimentsList()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-9s %s\n", e.id, e.desc)
		}
		return
	}
	ids := make([]string, 0, len(exps))
	for _, e := range exps {
		ids = append(ids, e.id)
	}
	sort.Strings(ids)

	ran := 0
	for _, e := range exps {
		if *expFlag != "" && e.id != *expFlag {
			continue
		}
		fmt.Printf("[%s] %s\n", e.id, e.desc)
		if *showMetrics {
			metrics.Default.Reset()
			metrics.Default.Enable()
		}
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cronus-bench: %s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(out.String())
		if *showMetrics {
			fmt.Printf("metrics appendix [%s]\n%s\n", e.id, metrics.Default.Snapshot())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "cronus-bench: unknown experiment %q (have: %s)\n", *expFlag, strings.Join(ids, ", "))
		os.Exit(2)
	}
}
