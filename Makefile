# CRONUS reproduction — stdlib-only Go; everything runs offline.

GO ?= go

.PHONY: all build test vet race bench bench-hotpath bench-serve chaos doc-lint trace-verify ci examples tools figures attack loc clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -count=1

# The trace/metrics hooks are lock-free on the hot paths; prove it under the
# race detector (the sim kernel's handshake provides the happens-before edges).
race:
	$(GO) test -race ./... -count=1

# Regenerate every table and figure as testing.B benchmarks with metrics.
bench: bench-hotpath
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' .

# Hot-path microbenchmarks (simulated-TLB view accesses, TZASC checks, sRPC
# sync calls, and the fig7/fig8 experiment benches), recorded as JSON so
# before/after host-time numbers can be committed and diffed.
bench-hotpath:
	{ $(GO) test -bench 'ViewAccess|TZASCCheck|PhysMemWrite4K|Translate' -benchmem -run '^$$' ./internal/spm ./internal/hw ; \
	  $(GO) test -bench 'SRPCSyncCall' -benchmem -benchtime=200x -run '^$$' ./internal/srpc ; \
	  $(GO) test -bench 'Figure7Rodinia|Figure8Training|SRPCStreaming' -benchmem -benchtime=1x -run '^$$' . ; } \
	| $(GO) run ./cmd/cronus-benchjson > BENCH_hotpath.json
	@echo "wrote BENCH_hotpath.json"

# Serving-plane throughput/latency vs dynamic batch cap, recorded as JSON.
# The vreq/s and vp50_ns metrics are virtual-time and deterministic; ns/op is
# host time.
bench-serve:
	$(GO) test -bench ServeLoad -benchtime=1x -run '^$$' ./internal/serve \
	| $(GO) run ./cmd/cronus-benchjson > BENCH_serve.json
	@echo "wrote BENCH_serve.json"

# Documentation bar: package docs plus doc comments on every exported
# identifier of the API-bearing packages (serve, srpc, spm, mos, chaos).
doc-lint:
	$(GO) run ./cmd/cronus-doclint

# Short deterministic chaos soak: 3 seeds over all fault kinds, plus a
# targeted supervision soak (persistent-hang wedges caught by the heartbeat
# watchdog, crash loops ending in quarantine), every report replay-verified
# byte-for-byte. The full soak is `go run ./cmd/cronus-chaos`.
chaos:
	$(GO) run ./cmd/cronus-chaos -seeds 3 -verify
	$(GO) run ./cmd/cronus-chaos -seeds 2 -kinds persistent-hang,crash-loop -faults 2 -verify

# Causal-tracing guards: the export-determinism and attribution-conservation
# tests, plus the zero-alloc disabled-path benchmarks (their assertions run
# even at -benchtime=1x).
trace-verify:
	$(GO) test -count=1 -run 'TestTrace|TestSLO' ./internal/serve
	$(GO) test -count=1 ./internal/otrace ./internal/slo ./internal/trace
	$(GO) test -run '^$$' -bench Disabled -benchtime=1x ./internal/trace

# Exactly what .github/workflows/ci.yml runs: build, vet, the full test
# suite, the race detector over the concurrency-heavy packages, the
# documentation bar, the causal-tracing guards, and the replay-verified
# chaos soaks.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./... -count=1
	$(GO) test -race -count=1 ./internal/serve ./internal/srpc ./internal/spm
	$(GO) run ./cmd/cronus-doclint
	$(MAKE) trace-verify
	$(GO) run ./cmd/cronus-chaos -seeds 3 -verify
	$(GO) run ./cmd/cronus-chaos -seeds 2 -kinds persistent-hang,crash-loop -faults 2 -verify

# Pretty-printed tables for all experiments.
figures:
	$(GO) run ./cmd/cronus-bench

attack:
	$(GO) run ./cmd/cronus-attack

loc:
	$(GO) run ./cmd/cronus-loc

tools:
	$(GO) build -o bin/ ./cmd/...

examples:
	@for e in quickstart dnn-training npu-inference fault-recovery spatial-sharing secure-data hetero-pipeline; do \
		echo "== examples/$$e =="; \
		$(GO) run ./examples/$$e || exit 1; \
		echo; \
	done

clean:
	rm -rf bin
