# CRONUS reproduction — stdlib-only Go; everything runs offline.

GO ?= go

.PHONY: all build test vet race bench bench-hotpath bench-serve bench-gate chaos doc-lint trace-verify ci examples tools figures attack loc clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -count=1

# The trace/metrics hooks are lock-free on the hot paths; prove it under the
# race detector (the sim kernel's handshake provides the happens-before edges).
race:
	$(GO) test -race ./... -count=1

# Regenerate every table and figure as testing.B benchmarks with metrics.
bench: bench-hotpath
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' .

# Hot-path microbenchmarks (simulated-TLB view accesses, TZASC checks, sRPC
# sync calls, the sharded-kernel engine, multi-ring sRPC, and the fig7/fig8
# experiment benches), recorded as JSON so before/after host-time numbers can
# be committed and diffed.
bench-hotpath:
	{ $(GO) test -bench 'ViewAccess|TZASCCheck|PhysMemWrite4K|Translate' -benchmem -run '^$$' ./internal/spm ./internal/hw ; \
	  $(GO) test -bench 'ShardedEngine' -benchmem -run '^$$' ./internal/sim ; \
	  $(GO) test -bench 'SRPCSyncCall|SrpcMultiRing' -benchmem -benchtime=200x -run '^$$' ./internal/srpc ; \
	  $(GO) test -bench 'ServeLoadMultiNode' -benchmem -benchtime=1x -run '^$$' ./internal/serve ; \
	  $(GO) test -bench 'Figure7Rodinia|Figure8Training|SRPCStreaming' -benchmem -benchtime=1x -run '^$$' . ; } \
	| $(GO) run ./cmd/cronus-benchjson > BENCH_hotpath.json
	@echo "wrote BENCH_hotpath.json"

# Serving-plane throughput/latency vs dynamic batch cap, recorded as JSON.
# Two passes: the classic sequential plane (shards=0) and the sharded data
# plane (-shards 4) over the same batch caps, plus the four-partition
# scale-out row. Rows are distinguished by the "shards" metric. The vreq/s,
# vp50_ns and vbatch metrics are virtual-time and deterministic; ns/op is
# host time, recorded as the fastest of three repeats (-count=3, min-reduced
# by cronus-benchjson) to damp background-load noise.
bench-serve:
	{ $(GO) test -bench ServeLoad -benchtime=2s -count=3 -run '^$$' ./internal/serve ; \
	  $(GO) test -bench ServeLoadBatch -benchtime=2s -count=3 -run '^$$' ./internal/serve -shards 4 ; } \
	| $(GO) run ./cmd/cronus-benchjson > BENCH_serve.json
	@echo "wrote BENCH_serve.json"

# Host-time regression gate: rerun the serving-plane benchmarks and compare
# against the committed BENCH_serve.json. Fails on a >BENCH_THRESHOLD ns/op
# regression per row, on any virtual-metric drift, and on a missing row.
# Host time is machine-dependent — the default 10% bar assumes a baseline
# recorded on the same, otherwise-quiet machine (the before/after workflow
# for data-plane changes); automated full-suite runs (`make ci`, ci.yml)
# loosen the bar to 100%, which still fails hard on the gross "sharded plane
# fell back to per-request handshakes" class of regression while tolerating
# shared-runner noise. The virtual-metric drift check is exact everywhere.
BENCH_THRESHOLD ?= 0.10
bench-gate:
	{ $(GO) test -bench ServeLoad -benchtime=2s -count=3 -run '^$$' ./internal/serve ; \
	  $(GO) test -bench ServeLoadBatch -benchtime=2s -count=3 -run '^$$' ./internal/serve -shards 4 ; } \
	| $(GO) run ./cmd/cronus-benchjson -baseline BENCH_serve.json -threshold $(BENCH_THRESHOLD)

# Documentation bar: package docs plus doc comments on every exported
# identifier of the API-bearing packages (serve, srpc, spm, mos, chaos).
doc-lint:
	$(GO) run ./cmd/cronus-doclint

# Short deterministic chaos soak: 3 seeds over all fault kinds, plus a
# targeted supervision soak (persistent-hang wedges caught by the heartbeat
# watchdog, crash loops ending in quarantine), plus a 2-node cluster soak
# (node crashes, net-partitions, slow links over the fabric), plus an
# attestation soak (ticket storms and stale-measurement revocations against
# the admission gate), plus a migration soak (planned migrations interrupted
# mid-checkpoint, forced autoscaler oscillations, drain races), every report
# replay-verified byte-for-byte. The full soak is `go run ./cmd/cronus-chaos`.
chaos:
	$(GO) run ./cmd/cronus-chaos -seeds 3 -verify
	$(GO) run ./cmd/cronus-chaos -seeds 2 -kinds persistent-hang,crash-loop -faults 2 -verify
	$(GO) run ./cmd/cronus-chaos -nodes 2 -partitions 4 -tenants 4 -seeds 3 -verify
	$(GO) run ./cmd/cronus-chaos -nodes 2 -partitions 4 -tenants 4 -kinds attest-storm,stale-measurement -seeds 3 -verify
	$(GO) run ./cmd/cronus-chaos -nodes 2 -partitions 4 -tenants 4 -kinds migrate-interrupt,scale-storm,drain-race -seeds 3 -verify

# Causal-tracing guards: the export-determinism and attribution-conservation
# tests, plus the zero-alloc disabled-path benchmarks (their assertions run
# even at -benchtime=1x).
trace-verify:
	$(GO) test -count=1 -run 'TestTrace|TestSLO' ./internal/serve
	$(GO) test -count=1 ./internal/otrace ./internal/slo ./internal/trace
	$(GO) test -run '^$$' -bench Disabled -benchtime=1x ./internal/trace

# Exactly what .github/workflows/ci.yml runs: build, vet, the full test
# suite, the race detector over the concurrency-heavy packages, the
# documentation bar, the causal-tracing guards, the replay-verified chaos
# soaks, and the serving-plane host-time regression gate.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./... -count=1
	$(GO) test -race -count=1 ./internal/serve ./internal/srpc ./internal/spm ./internal/sim
	$(GO) run ./cmd/cronus-doclint
	$(MAKE) trace-verify
	$(GO) run ./cmd/cronus-chaos -seeds 3 -verify
	$(GO) run ./cmd/cronus-chaos -seeds 2 -kinds persistent-hang,crash-loop -faults 2 -verify
	$(GO) run ./cmd/cronus-chaos -nodes 2 -partitions 4 -tenants 4 -seeds 3 -verify
	$(GO) run ./cmd/cronus-chaos -nodes 2 -partitions 4 -tenants 4 -kinds attest-storm,stale-measurement -seeds 3 -verify
	$(GO) run ./cmd/cronus-chaos -nodes 2 -partitions 4 -tenants 4 -kinds migrate-interrupt,scale-storm,drain-race -seeds 3 -verify
	$(MAKE) bench-gate BENCH_THRESHOLD=1.0

# Pretty-printed tables for all experiments.
figures:
	$(GO) run ./cmd/cronus-bench

attack:
	$(GO) run ./cmd/cronus-attack

loc:
	$(GO) run ./cmd/cronus-loc

tools:
	$(GO) build -o bin/ ./cmd/...

examples:
	@for e in quickstart dnn-training npu-inference fault-recovery spatial-sharing secure-data hetero-pipeline; do \
		echo "== examples/$$e =="; \
		$(GO) run ./examples/$$e || exit 1; \
		echo; \
	done

clean:
	rm -rf bin
