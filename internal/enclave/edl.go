package enclave

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
)

// MECallSpec declares one mECall from the EDL: its name and whether sRPC may
// stream it asynchronously (§IV-A: "we instrumented the format with the
// synchronization/asynchronization flag for sRPC").
type MECallSpec struct {
	Name  string
	Async bool
}

// EDL is the parsed mECall table.
type EDL struct {
	Calls map[string]MECallSpec
}

// ParseEDL parses the EDL dialect. The format is line oriented:
//
//	// comments and blank lines are ignored
//	mecall <name> sync
//	mecall <name> async
//
// Unknown directives are rejected so a tampered EDL cannot silently widen
// the call surface.
func ParseEDL(data []byte) (*EDL, error) {
	edl := &EDL{Calls: make(map[string]MECallSpec)}
	sc := bufio.NewScanner(bytes.NewReader(data))
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "//") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 || fields[0] != "mecall" {
			return nil, fmt.Errorf("enclave: edl line %d: expected \"mecall <name> sync|async\", got %q", line, text)
		}
		name := fields[1]
		if _, dup := edl.Calls[name]; dup {
			return nil, fmt.Errorf("enclave: edl line %d: duplicate mecall %q", line, name)
		}
		var async bool
		switch fields[2] {
		case "sync":
			async = false
		case "async":
			async = true
		default:
			return nil, fmt.Errorf("enclave: edl line %d: bad flag %q", line, fields[2])
		}
		edl.Calls[name] = MECallSpec{Name: name, Async: async}
	}
	return edl, nil
}

// BuildEDL serializes mECall specs into EDL text (test/example helper).
func BuildEDL(specs ...MECallSpec) []byte {
	var b bytes.Buffer
	b.WriteString("// CRONUS EDL\n")
	for _, s := range specs {
		flag := "sync"
		if s.Async {
			flag = "async"
		}
		fmt.Fprintf(&b, "mecall %s %s\n", s.Name, flag)
	}
	return b.Bytes()
}

// Lookup returns the spec for a call name.
func (e *EDL) Lookup(name string) (MECallSpec, bool) {
	s, ok := e.Calls[name]
	return s, ok
}
