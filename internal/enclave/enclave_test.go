package enclave

import (
	"strings"
	"testing"

	"cronus/internal/sim"
	"cronus/internal/wire"
)

func testFiles() map[string][]byte {
	return map[string][]byte{
		"mat.edl":   BuildEDL(MECallSpec{Name: "mat_add", Async: true}, MECallSpec{Name: "mat_get", Async: false}),
		"mat.cubin": []byte("CUBIN v1\nkernel vec_add\n"),
	}
}

func TestManifestRoundTrip(t *testing.T) {
	files := testFiles()
	m := NewManifest("gpu", "mat.edl", "mat.cubin", files, Resources{Memory: "1G"})
	data := m.Encode()
	m2, err := ParseManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if m2.DeviceType != "gpu" || m2.MECalls != "mat.edl" || m2.Image != "mat.cubin" {
		t.Fatalf("parsed %+v", m2)
	}
	if err := m2.VerifyImages(files); err != nil {
		t.Fatal(err)
	}
}

func TestManifestRejectsTamperedImage(t *testing.T) {
	files := testFiles()
	m := NewManifest("gpu", "mat.edl", "mat.cubin", files, Resources{})
	files["mat.cubin"] = []byte("CUBIN v1\nkernel evil_exfiltrate\n")
	err := m.VerifyImages(files)
	if err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("err = %v", err)
	}
}

func TestManifestRejectsMissingImage(t *testing.T) {
	files := testFiles()
	m := NewManifest("gpu", "mat.edl", "mat.cubin", files, Resources{})
	delete(files, "mat.cubin")
	if err := m.VerifyImages(files); err == nil {
		t.Fatal("missing image accepted")
	}
}

func TestManifestValidation(t *testing.T) {
	if _, err := ParseManifest([]byte(`{"device_type":"gpu"}`)); err == nil {
		t.Fatal("manifest without mecalls accepted")
	}
	if _, err := ParseManifest([]byte(`{"mecalls":"a.edl","images":{"a.edl":"00"}}`)); err == nil {
		t.Fatal("manifest without device_type accepted")
	}
	if _, err := ParseManifest([]byte(`{"device_type":"gpu","mecalls":"a.edl","images":{}}`)); err == nil {
		t.Fatal("manifest with unmeasured EDL accepted")
	}
	if _, err := ParseManifest([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMeasureChangesWithContent(t *testing.T) {
	files := testFiles()
	m := NewManifest("gpu", "mat.edl", "mat.cubin", files, Resources{Memory: "1G"})
	h1 := m.Measure(files)
	files2 := testFiles()
	files2["mat.cubin"] = []byte("CUBIN v1\nkernel other\n")
	m2 := NewManifest("gpu", "mat.edl", "mat.cubin", files2, Resources{Memory: "1G"})
	h2 := m2.Measure(files2)
	if h1 == h2 {
		t.Fatal("measurement insensitive to image content")
	}
	// Deterministic.
	if m.Measure(files) != h1 {
		t.Fatal("measurement not deterministic")
	}
}

func TestMemoryBytesParsing(t *testing.T) {
	cases := map[string]uint64{
		"1G": 1 << 30, "256M": 256 << 20, "4K": 4096, "123": 123, "": 0,
	}
	for s, want := range cases {
		got, err := Resources{Memory: s}.MemoryBytes()
		if err != nil || got != want {
			t.Fatalf("MemoryBytes(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
	if _, err := (Resources{Memory: "lots"}).MemoryBytes(); err == nil {
		t.Fatal("garbage memory cap accepted")
	}
}

func TestEDLParsing(t *testing.T) {
	edl, err := ParseEDL([]byte("// comment\n\nmecall foo sync\nmecall bar async\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := edl.Lookup("foo"); !ok || s.Async {
		t.Fatalf("foo = %+v", s)
	}
	if s, ok := edl.Lookup("bar"); !ok || !s.Async {
		t.Fatalf("bar = %+v", s)
	}
	if _, ok := edl.Lookup("baz"); ok {
		t.Fatal("phantom mECall")
	}
}

func TestEDLRejectsBadInput(t *testing.T) {
	bad := []string{
		"mecall foo maybe",
		"syscall foo sync",
		"mecall foo",
		"mecall foo sync\nmecall foo async",
	}
	for _, s := range bad {
		if _, err := ParseEDL([]byte(s)); err == nil {
			t.Fatalf("EDL %q accepted", s)
		}
	}
}

func TestCPUModelLifecycle(t *testing.T) {
	RegisterCPULibrary(&CPULibrary{
		Name: "testlib",
		Funcs: map[string]CPUFunc{
			"double": func(p *sim.Proc, args []byte) ([]byte, error) {
				d := wire.NewDecoder(args)
				v := d.U64()
				return wire.NewEncoder().U64(2 * v).Bytes(), d.Err()
			},
		},
	})
	k := sim.NewKernel()
	k.Spawn("test", func(p *sim.Proc) {
		m := NewCPUModel(sim.DefaultCosts())
		if err := m.Create(p, BuildCPUImage("testlib")); err != nil {
			t.Error(err)
			return
		}
		res, err := m.Call(p, "double", wire.NewEncoder().U64(21).Bytes())
		if err != nil {
			t.Error(err)
			return
		}
		if wire.NewDecoder(res).U64() != 42 {
			t.Error("wrong result")
		}
		if _, err := m.Call(p, "nope", nil); err == nil {
			t.Error("unknown entry point accepted")
		}
		m.Destroy(p)
		if _, err := m.Call(p, "double", nil); err == nil {
			t.Error("destroyed model still callable")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCPUModelRejectsBadImages(t *testing.T) {
	k := sim.NewKernel()
	k.Spawn("test", func(p *sim.Proc) {
		m := NewCPUModel(sim.DefaultCosts())
		if err := m.Create(p, []byte("ELF...")); err == nil {
			t.Error("garbage image loaded")
		}
		if err := m.Create(p, BuildCPUImage("library-that-does-not-exist")); err == nil {
			t.Error("unknown library loaded")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
