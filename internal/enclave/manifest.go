// Package enclave defines the MicroEnclave model (§IV-A): the manifest that
// describes an mEnclave (device type, measured images, mECall table,
// resource caps), the EDL dialect that declares mECalls with their
// synchronous/asynchronous sRPC flags, and the execution-model contract that
// lets one enclave abstraction run CPU, CUDA and NPU code.
package enclave

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cronus/internal/attest"
)

// Resources caps what an mEnclave may consume in its partition.
type Resources struct {
	Memory string `json:"memory"` // e.g. "1G", "256M"
}

// MemoryBytes parses the memory cap. Empty means no explicit cap.
func (r Resources) MemoryBytes() (uint64, error) {
	s := strings.TrimSpace(r.Memory)
	if s == "" {
		return 0, nil
	}
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "G"):
		mult = 1 << 30
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult = 1 << 20
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = s[:len(s)-1]
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("enclave: bad memory cap %q: %w", r.Memory, err)
	}
	return n * mult, nil
}

// Manifest describes one mEnclave, mirroring the paper's Figure 3.
type Manifest struct {
	// DeviceType selects the execution model: "cpu", "gpu" (CUDA) or "npu".
	DeviceType string `json:"device_type"`
	// Images maps file names to hex SHA-256 digests. The mEnclave image
	// (dynamic library / CUDA ELF / NPU program) and the EDL file must be
	// listed here so they are covered by attestation.
	Images map[string]string `json:"images"`
	// MECalls names the EDL file (an entry of Images).
	MECalls string `json:"mecalls"`
	// Image names the main executable image (an entry of Images; may be
	// empty for devices with fixed functions).
	Image string `json:"image"`
	// Resources caps resource usage.
	Resources Resources `json:"resources"`
}

// ParseManifest decodes a JSON manifest.
func ParseManifest(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("enclave: bad manifest: %w", err)
	}
	if m.DeviceType == "" {
		return m, fmt.Errorf("enclave: manifest missing device_type")
	}
	if m.MECalls == "" {
		return m, fmt.Errorf("enclave: manifest missing mecalls")
	}
	if _, ok := m.Images[m.MECalls]; !ok {
		return m, fmt.Errorf("enclave: EDL file %q not measured in images", m.MECalls)
	}
	if m.Image != "" {
		if _, ok := m.Images[m.Image]; !ok {
			return m, fmt.Errorf("enclave: image %q not measured in images", m.Image)
		}
	}
	return m, nil
}

// Encode serializes the manifest canonically (for measurement).
func (m Manifest) Encode() []byte {
	b, err := json.Marshal(struct {
		DeviceType string            `json:"device_type"`
		Images     map[string]string `json:"images"`
		MECalls    string            `json:"mecalls"`
		Image      string            `json:"image"`
		Resources  Resources         `json:"resources"`
	}{m.DeviceType, m.Images, m.MECalls, m.Image, m.Resources})
	if err != nil {
		panic("enclave: manifest encode: " + err.Error())
	}
	return b
}

// VerifyImages checks the provided blobs against the manifest digests: every
// manifest entry must be present and hash-match, mirroring mEnclave load
// (§IV-A "the hash of the mEnclave runtime and image").
func (m Manifest) VerifyImages(files map[string][]byte) error {
	for name, wantHex := range m.Images {
		blob, ok := files[name]
		if !ok {
			return fmt.Errorf("enclave: image %q missing", name)
		}
		got := sha256.Sum256(blob)
		if hex.EncodeToString(got[:]) != strings.ToLower(wantHex) {
			return fmt.Errorf("enclave: image %q hash mismatch", name)
		}
	}
	return nil
}

// HashImage computes the hex digest for a manifest Images entry.
func HashImage(blob []byte) string {
	h := sha256.Sum256(blob)
	return hex.EncodeToString(h[:])
}

// Measure computes the enclave measurement covering the manifest and every
// measured image, in canonical order.
func (m Manifest) Measure(files map[string][]byte) attest.Measurement {
	h := sha256.New()
	h.Write(m.Encode())
	names := make([]string, 0, len(m.Images))
	for n := range m.Images {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
		h.Write(files[n])
	}
	var out attest.Measurement
	copy(out[:], h.Sum(nil))
	return out
}

// NewManifest builds a manifest from raw files, computing the digests.
func NewManifest(deviceType, edlName, imageName string, files map[string][]byte, res Resources) Manifest {
	images := make(map[string]string, len(files))
	for n, b := range files {
		images[n] = HashImage(b)
	}
	return Manifest{
		DeviceType: deviceType,
		Images:     images,
		MECalls:    edlName,
		Image:      imageName,
		Resources:  res,
	}
}
