package enclave

import (
	"fmt"

	"cronus/internal/sim"
)

// Model is the execution-model contract (§IV-A): the mEnclave is a black-box
// executor ⟨mECalls, state⟩; the model defines how an image is loaded
// (me_create) and how each mECall executes on the underlying device context.
//
// Implementations: the CPU model runs registered Go functions (standing in
// for a dynamic library + libOS runtime), the CUDA model drives a GPU
// context through the gdev-style driver API, and the NPU model drives a VTA
// context.
type Model interface {
	// Create parses the image and initializes the executor (me_create).
	Create(p *sim.Proc, image []byte) error
	// Call executes one mECall with wire-encoded arguments.
	Call(p *sim.Proc, name string, args []byte) ([]byte, error)
	// Destroy releases device state (scrubbed).
	Destroy(p *sim.Proc)
}

// CPUFunc is one entry point of a CPU mEnclave's "dynamic library".
type CPUFunc func(p *sim.Proc, args []byte) ([]byte, error)

// CPULibrary is the loadable content of a CPU mEnclave image: a named set of
// entry points. In the paper this is a .so run on a musl/libOS runtime; in
// the simulation the library is registered under a name and the image bytes
// reference it (so the image is still measured and attested).
type CPULibrary struct {
	Name  string
	Funcs map[string]CPUFunc
}

// cpuLibRegistry is the simulation's loader search path.
var cpuLibRegistry = map[string]*CPULibrary{}

// RegisterCPULibrary installs a library so images can reference it.
func RegisterCPULibrary(lib *CPULibrary) {
	if lib.Name == "" {
		panic("enclave: CPU library needs a name")
	}
	cpuLibRegistry[lib.Name] = lib
}

// BuildCPUImage returns the image bytes referencing a registered library.
func BuildCPUImage(libName string) []byte {
	return []byte("CPULIB v1\n" + libName + "\n")
}

// CPUModel executes CPU mECalls from a registered library.
type CPUModel struct {
	lib   *CPULibrary
	costs *sim.CostModel
}

// NewCPUModel creates an unloaded CPU model.
func NewCPUModel(costs *sim.CostModel) *CPUModel { return &CPUModel{costs: costs} }

// Create implements Model.
func (m *CPUModel) Create(p *sim.Proc, image []byte) error {
	var name string
	if n, err := fmt.Sscanf(string(image), "CPULIB v1\n%s\n", &name); n != 1 || err != nil {
		return fmt.Errorf("enclave: not a CPU library image")
	}
	lib, ok := cpuLibRegistry[name]
	if !ok {
		return fmt.Errorf("enclave: CPU library %q not found", name)
	}
	m.lib = lib
	p.Sleep(m.costs.EnclaveEntry) // loader + relocation work
	return nil
}

// Call implements Model.
func (m *CPUModel) Call(p *sim.Proc, name string, args []byte) ([]byte, error) {
	if m.lib == nil {
		return nil, fmt.Errorf("enclave: CPU model not created")
	}
	fn, ok := m.lib.Funcs[name]
	if !ok {
		return nil, fmt.Errorf("enclave: no entry point %q in library %q", name, m.lib.Name)
	}
	return fn(p, args)
}

// Destroy implements Model.
func (m *CPUModel) Destroy(*sim.Proc) { m.lib = nil }
