package hw

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DTNode describes one platform device in the device tree.
type DTNode struct {
	Name       string // instance name, e.g. "gpu0"
	Compatible string // driver binding string, e.g. "nvidia,turing"
	MMIOBase   uint64
	MMIOSize   uint64
	IRQ        int  // <0 means none
	Secure     bool // device assigned to the secure world
	Vendor     string
}

// DeviceTree is the platform description handed to the SPM at boot. Per
// §IV-A the SPM accepts only a valid tree, includes its hash in attestation
// reports, and freezes it until reboot.
type DeviceTree struct {
	Nodes  []DTNode
	frozen bool
}

// Add appends a node. Panics if the tree is frozen.
func (dt *DeviceTree) Add(n DTNode) error {
	if dt.frozen {
		return fmt.Errorf("hw: device tree is frozen until reboot")
	}
	dt.Nodes = append(dt.Nodes, n)
	return nil
}

// Freeze locks the tree (done once during SPM initialization).
func (dt *DeviceTree) Freeze() { dt.frozen = true }

// Frozen reports whether the tree is locked.
func (dt *DeviceTree) Frozen() bool { return dt.frozen }

// Find returns the node with the given name.
func (dt *DeviceTree) Find(name string) (DTNode, bool) {
	for _, n := range dt.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return DTNode{}, false
}

// Validate enforces the TrustPath-style properties from §IV-A: no overlapping
// MMIO ranges (MMIO remapping attacks) and no duplicate IRQs (interrupt
// spoofing attacks). Names must be unique so dispatch is unambiguous.
func (dt *DeviceTree) Validate() error {
	names := make(map[string]bool)
	irqs := make(map[int]string)
	type span struct {
		lo, hi uint64
		name   string
	}
	var spans []span
	for _, n := range dt.Nodes {
		if n.Name == "" {
			return fmt.Errorf("hw: device tree node with empty name")
		}
		if names[n.Name] {
			return fmt.Errorf("hw: duplicate device tree node %q", n.Name)
		}
		names[n.Name] = true
		if n.IRQ >= 0 {
			if other, dup := irqs[n.IRQ]; dup {
				return fmt.Errorf("hw: IRQ %d claimed by both %q and %q", n.IRQ, other, n.Name)
			}
			irqs[n.IRQ] = n.Name
		}
		if n.MMIOSize > 0 {
			spans = append(spans, span{lo: n.MMIOBase, hi: n.MMIOBase + n.MMIOSize, name: n.Name})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			return fmt.Errorf("hw: MMIO ranges of %q and %q overlap", spans[i-1].name, spans[i].name)
		}
	}
	return nil
}

// Hash produces the canonical digest of the tree included in attestation
// reports.
func (dt *DeviceTree) Hash() [32]byte {
	h := sha256.New()
	nodes := make([]DTNode, len(dt.Nodes))
	copy(nodes, dt.Nodes)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	for _, n := range nodes {
		h.Write([]byte(n.Name))
		h.Write([]byte{0})
		h.Write([]byte(n.Compatible))
		h.Write([]byte{0})
		h.Write([]byte(n.Vendor))
		h.Write([]byte{0})
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], n.MMIOBase)
		h.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], n.MMIOSize)
		h.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], uint64(int64(n.IRQ)))
		h.Write(b[:])
		if n.Secure {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// FuseBank stores hardware secrets (root-of-trust keys) burned at
// manufacturing time. After Lock, fuses are read-only.
type FuseBank struct {
	fuses  map[string][]byte
	locked bool
}

// NewFuseBank creates an empty bank.
func NewFuseBank() *FuseBank { return &FuseBank{fuses: make(map[string][]byte)} }

// Burn writes a fuse value. Fails after Lock.
func (f *FuseBank) Burn(name string, value []byte) error {
	if f.locked {
		return fmt.Errorf("hw: fuse bank locked")
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	f.fuses[name] = cp
	return nil
}

// Lock makes the bank read-only.
func (f *FuseBank) Lock() { f.locked = true }

// Read returns a copy of the fuse value. Only the secure world may read
// fuses.
func (f *FuseBank) Read(w World, name string) ([]byte, error) {
	if w != SecureWorld {
		return nil, &Fault{Kind: FaultTZPC, Space: "fuse:" + name, World: w}
	}
	v, ok := f.fuses[name]
	if !ok {
		return nil, fmt.Errorf("hw: no fuse %q", name)
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, nil
}
