package hw

import "cronus/internal/metrics"

// Isolation-hardware denial accounting. The hardware layer has no notion of
// virtual time or processes, so it only counts; the SPM installs a denial
// hook at boot that turns each denial into a trace instant stamped with the
// kernel clock.
var (
	mTZASCDenials = metrics.Default.Counter("hw.tzasc.denials")
	mTZPCDenials  = metrics.Default.Counter("hw.tzpc.denials")
	mSMMUFaults   = metrics.Default.Counter("hw.smmu.faults")
)

// denialHook observes every TZASC/TZPC/SMMU denial fault.
var denialHook func(f *Fault)

// SetDenialHook installs the denial observer (nil removes it). The hook runs
// synchronously on the faulting path and must not touch the machine.
func SetDenialHook(h func(f *Fault)) { denialHook = h }

// reportDenial counts a denial on the matching instrument and forwards it to
// the installed hook.
func reportDenial(f *Fault) {
	switch f.Kind {
	case FaultTZASC:
		mTZASCDenials.Inc()
	case FaultTZPC:
		mTZPCDenials.Inc()
	case FaultSMMU:
		mSMMUFaults.Inc()
	}
	if denialHook != nil {
		denialHook(f)
	}
}
