package hw

import "testing"

// BenchmarkPhysMemWrite4K measures one page-sized guarded physical write
// (TZASC check + page copy).
func BenchmarkPhysMemWrite4K(b *testing.B) {
	m := NewMachine(Config{NormalMemBytes: 1 << 20, SecureMemBytes: 1 << 20})
	pa, _ := m.Mem.AllocPages("secure", 1)
	buf := make([]byte, PageSize)
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Mem.Write(SecureWorld, pa, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslate measures one page-table lookup with permission check.
func BenchmarkTranslate(b *testing.B) {
	a := NewAddrSpace("bench")
	a.MapRange(0, 1000, 512, PermRW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, f := a.Translate(uint64(i)&511, PermW); f != nil {
			b.Fatal(f)
		}
	}
}

// BenchmarkTZASCCheck measures one world-isolation verdict against a locked
// configuration with many region slots (binary-searched index).
func BenchmarkTZASCCheck(b *testing.B) {
	tz := NewTZASC()
	for i := 0; i < 16; i++ {
		// 16 non-overlapping 1 MiB regions with 1 MiB gaps.
		_ = tz.SetRegion(i, PA(uint64(i)*2<<20), 1<<20, i%2 == 0)
	}
	tz.Lock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tz.Check(SecureWorld, PA(uint64(i%16)*2<<20)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSMMUTranslate measures one device DMA translation.
func BenchmarkSMMUTranslate(b *testing.B) {
	s := NewSMMU()
	s.Stream("gpu0").MapRange(0, 2000, 256, PermRW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, f := s.Translate("gpu0", uint64(i%256)<<PageShift, PermR); f != nil {
			b.Fatal(f)
		}
	}
}
