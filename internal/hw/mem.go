package hw

import "fmt"

// PhysMem is the machine's physical memory: sparse 4 KiB pages guarded by
// the TZASC. Every read and write declares the world it originates from.
type PhysMem struct {
	size    uint64
	pages   map[uint64][]byte
	tzasc   *TZASC
	regions map[string]*MemRegion
}

// MemRegion is a named physical range with a simple page-frame allocator.
type MemRegion struct {
	Name string
	Base PA
	Size uint64
	next uint64 // next free page index within the region
	free []uint64
}

// NewPhysMem creates memory of the given size guarded by tzasc.
func NewPhysMem(size uint64, tzasc *TZASC) *PhysMem {
	return &PhysMem{
		size:    size,
		pages:   make(map[uint64][]byte),
		tzasc:   tzasc,
		regions: make(map[string]*MemRegion),
	}
}

// Size returns the total physical address space size in bytes.
func (m *PhysMem) Size() uint64 { return m.size }

// AddRegion registers a named allocatable region.
func (m *PhysMem) AddRegion(name string, base PA, size uint64) {
	m.regions[name] = &MemRegion{Name: name, Base: base, Size: size}
}

// Region returns a registered region (nil if absent).
func (m *PhysMem) Region(name string) *MemRegion { return m.regions[name] }

// AllocPages grabs n contiguous-frame-numbered pages from the named region
// and returns the base physical address. The pages are zeroed.
func (m *PhysMem) AllocPages(region string, n int) (PA, error) {
	r := m.regions[region]
	if r == nil {
		return 0, fmt.Errorf("hw: unknown memory region %q", region)
	}
	if n <= 0 {
		return 0, fmt.Errorf("hw: AllocPages(%d): count must be positive", n)
	}
	// Reuse a freed frame for single-page requests; contiguous requests
	// always bump-allocate.
	if n == 1 && len(r.free) > 0 {
		idx := r.free[len(r.free)-1]
		r.free = r.free[:len(r.free)-1]
		pa := r.Base + PA(idx*PageSize)
		m.zeroPage(pa.PFN())
		return pa, nil
	}
	if (r.next+uint64(n))*PageSize > r.Size {
		return 0, fmt.Errorf("hw: region %q out of memory (%d pages requested)", region, n)
	}
	pa := r.Base + PA(r.next*PageSize)
	r.next += uint64(n)
	for i := 0; i < n; i++ {
		m.zeroPage(pa.PFN() + uint64(i))
	}
	return pa, nil
}

// FreePage returns a single page to its region's free list and scrubs it.
func (m *PhysMem) FreePage(region string, pa PA) {
	r := m.regions[region]
	if r == nil {
		return
	}
	m.zeroPage(pa.PFN())
	r.free = append(r.free, (uint64(pa)-uint64(r.Base))/PageSize)
}

func (m *PhysMem) zeroPage(pfn uint64) {
	if pg, ok := m.pages[pfn]; ok {
		for i := range pg {
			pg[i] = 0
		}
	}
}

// page returns the backing slice for a frame, allocating on first touch.
func (m *PhysMem) page(pfn uint64) []byte {
	pg, ok := m.pages[pfn]
	if !ok {
		pg = make([]byte, PageSize)
		m.pages[pfn] = pg
	}
	return pg
}

// Read copies len(buf) bytes starting at pa into buf, checking the TZASC for
// every touched page against the accessing world.
func (m *PhysMem) Read(w World, pa PA, buf []byte) error {
	return m.access(w, pa, buf, false)
}

// Write copies data into memory starting at pa, with TZASC checks.
func (m *PhysMem) Write(w World, pa PA, data []byte) error {
	return m.access(w, pa, data, true)
}

func (m *PhysMem) access(w World, pa PA, buf []byte, write bool) error {
	if uint64(pa)+uint64(len(buf)) > m.size {
		return &Fault{Kind: FaultUnmapped, Space: "physmem", Addr: uint64(pa), World: w}
	}
	off := 0
	for off < len(buf) {
		cur := pa + PA(off)
		if err := m.tzasc.Check(w, cur); err != nil {
			return err
		}
		pg := m.page(cur.PFN())
		po := int(cur.Offset())
		n := PageSize - po
		if n > len(buf)-off {
			n = len(buf) - off
		}
		if write {
			copy(pg[po:po+n], buf[off:off+n])
		} else {
			copy(buf[off:off+n], pg[po:po+n])
		}
		off += n
	}
	return nil
}

// ScrubPage zeroes a physical page regardless of world — used by the SPM's
// failure-clearing logic (it runs at the highest privilege).
func (m *PhysMem) ScrubPage(pa PA) { m.zeroPage(pa.PFN()) }

// TZASC filters physical memory accesses by world, region by region
// (the TrustZone Address Space Controller).
type TZASC struct {
	regions map[int]tzRegion
	locked  bool
}

type tzRegion struct {
	base   PA
	size   uint64
	secure bool
}

// NewTZASC creates an empty controller; unconfigured addresses default to
// normal-world accessible.
func NewTZASC() *TZASC { return &TZASC{regions: make(map[int]tzRegion)} }

// SetRegion configures region slot id. Panics if the controller was locked
// (the secure monitor locks it at boot to resist reconfiguration attacks).
func (t *TZASC) SetRegion(id int, base PA, size uint64, secure bool) error {
	if t.locked {
		return fmt.Errorf("hw: TZASC locked")
	}
	t.regions[id] = tzRegion{base: base, size: size, secure: secure}
	return nil
}

// Lock freezes the configuration (done by the secure monitor during boot).
func (t *TZASC) Lock() { t.locked = true }

// Locked reports whether the configuration is frozen.
func (t *TZASC) Locked() bool { return t.locked }

// Check validates a single access at pa from world w.
func (t *TZASC) Check(w World, pa PA) error {
	secure := false
	for _, r := range t.regions {
		if pa >= r.base && uint64(pa) < uint64(r.base)+r.size {
			secure = r.secure
			break
		}
	}
	if secure && w != SecureWorld {
		f := &Fault{Kind: FaultTZASC, Space: "tzasc", Addr: uint64(pa), World: w}
		reportDenial(f)
		return f
	}
	return nil
}

// IsSecure reports whether pa falls inside a secure region.
func (t *TZASC) IsSecure(pa PA) bool {
	for _, r := range t.regions {
		if pa >= r.base && uint64(pa) < uint64(r.base)+r.size {
			return r.secure
		}
	}
	return false
}

// TZPC filters peripheral (MMIO) access by world (the TrustZone Protection
// Controller). Devices not registered default to normal-world.
type TZPC struct {
	secure map[string]bool
	locked bool
}

// NewTZPC creates an empty controller.
func NewTZPC() *TZPC { return &TZPC{secure: make(map[string]bool)} }

// SetSecure assigns a device to the secure world.
func (t *TZPC) SetSecure(dev string, secure bool) error {
	if t.locked {
		return fmt.Errorf("hw: TZPC locked")
	}
	t.secure[dev] = secure
	return nil
}

// Lock freezes the configuration.
func (t *TZPC) Lock() { t.locked = true }

// Check validates access to dev from world w.
func (t *TZPC) Check(w World, dev string) error {
	if t.secure[dev] && w != SecureWorld {
		f := &Fault{Kind: FaultTZPC, Space: "tzpc:" + dev, World: w}
		reportDenial(f)
		return f
	}
	return nil
}

// IsSecure reports whether the device is assigned to the secure world.
func (t *TZPC) IsSecure(dev string) bool { return t.secure[dev] }
