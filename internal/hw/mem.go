package hw

import (
	"fmt"
	"sort"
	"sync"
)

// PhysMem is the machine's physical memory: sparse 4 KiB pages guarded by
// the TZASC. Every read and write declares the world it originates from.
//
// Concurrency: when the simulation kernel runs in its parallel sharded phase
// (sim.Parallelize), processes on different shards access disjoint guarded
// ranges concurrently. The page table (first-touch allocation) and the watch
// registry are the only structures those accesses share, so both are guarded
// here; page contents themselves are disjoint by the isolation the TZASC and
// stage-2 tables enforce.
type PhysMem struct {
	size    uint64
	pageMu  sync.RWMutex
	pages   map[uint64][]byte
	tzasc   *TZASC
	regions map[string]*MemRegion
	watchMu sync.Mutex
	watches []memWatch
	watchID int
}

// MemRegion is a named physical range with a simple page-frame allocator.
type MemRegion struct {
	Name string
	Base PA
	Size uint64
	next uint64 // next free page index within the region
	free []uint64
}

// memWatch is one registered write observer (a simulated doorbell): fn runs
// after any guarded write that overlaps [lo, hi).
type memWatch struct {
	id     int
	lo, hi PA
	fn     func()
}

// NewPhysMem creates memory of the given size guarded by tzasc.
func NewPhysMem(size uint64, tzasc *TZASC) *PhysMem {
	return &PhysMem{
		size:    size,
		pages:   make(map[uint64][]byte),
		tzasc:   tzasc,
		regions: make(map[string]*MemRegion),
	}
}

// Size returns the total physical address space size in bytes.
func (m *PhysMem) Size() uint64 { return m.size }

// AddRegion registers a named allocatable region.
func (m *PhysMem) AddRegion(name string, base PA, size uint64) {
	m.regions[name] = &MemRegion{Name: name, Base: base, Size: size}
}

// Region returns a registered region (nil if absent).
func (m *PhysMem) Region(name string) *MemRegion { return m.regions[name] }

// AllocPages grabs n contiguous-frame-numbered pages from the named region
// and returns the base physical address. The pages are zeroed.
func (m *PhysMem) AllocPages(region string, n int) (PA, error) {
	r := m.regions[region]
	if r == nil {
		return 0, fmt.Errorf("hw: unknown memory region %q", region)
	}
	if n <= 0 {
		return 0, fmt.Errorf("hw: AllocPages(%d): count must be positive", n)
	}
	// Reuse a freed frame for single-page requests; contiguous requests
	// always bump-allocate.
	if n == 1 && len(r.free) > 0 {
		idx := r.free[len(r.free)-1]
		r.free = r.free[:len(r.free)-1]
		pa := r.Base + PA(idx*PageSize)
		m.zeroPage(pa.PFN())
		return pa, nil
	}
	if (r.next+uint64(n))*PageSize > r.Size {
		return 0, fmt.Errorf("hw: region %q out of memory (%d pages requested)", region, n)
	}
	pa := r.Base + PA(r.next*PageSize)
	r.next += uint64(n)
	for i := 0; i < n; i++ {
		m.zeroPage(pa.PFN() + uint64(i))
	}
	return pa, nil
}

// FreePage returns a single page to its region's free list and scrubs it.
// The page must be page-aligned and lie inside the named region; freeing a
// foreign address would scrub a frame the region allocator never owned and
// corrupt its free list.
func (m *PhysMem) FreePage(region string, pa PA) error {
	r := m.regions[region]
	if r == nil {
		return fmt.Errorf("hw: FreePage: unknown memory region %q", region)
	}
	if pa.Offset() != 0 {
		return fmt.Errorf("hw: FreePage(%q, %#x): address not page-aligned", region, uint64(pa))
	}
	if pa < r.Base || uint64(pa)+PageSize > uint64(r.Base)+r.Size {
		return fmt.Errorf("hw: FreePage(%q, %#x): address outside region [%#x, %#x)",
			region, uint64(pa), uint64(r.Base), uint64(r.Base)+r.Size)
	}
	m.zeroPage(pa.PFN())
	r.free = append(r.free, (uint64(pa)-uint64(r.Base))/PageSize)
	return nil
}

func (m *PhysMem) zeroPage(pfn uint64) {
	m.pageMu.RLock()
	pg, ok := m.pages[pfn]
	m.pageMu.RUnlock()
	if ok {
		for i := range pg {
			pg[i] = 0
		}
	}
}

// page returns the backing slice for a frame, allocating on first touch.
func (m *PhysMem) page(pfn uint64) []byte {
	m.pageMu.RLock()
	pg, ok := m.pages[pfn]
	m.pageMu.RUnlock()
	if ok {
		return pg
	}
	m.pageMu.Lock()
	defer m.pageMu.Unlock()
	if pg, ok = m.pages[pfn]; !ok {
		pg = make([]byte, PageSize)
		m.pages[pfn] = pg
	}
	return pg
}

// Read copies len(buf) bytes starting at pa into buf, checking the TZASC for
// every touched page against the accessing world.
func (m *PhysMem) Read(w World, pa PA, buf []byte) error {
	return m.access(w, pa, buf, false)
}

// Write copies data into memory starting at pa, with TZASC checks.
func (m *PhysMem) Write(w World, pa PA, data []byte) error {
	return m.access(w, pa, data, true)
}

func (m *PhysMem) access(w World, pa PA, buf []byte, write bool) error {
	if uint64(pa)+uint64(len(buf)) > m.size {
		return &Fault{Kind: FaultUnmapped, Space: "physmem", Addr: uint64(pa), World: w}
	}
	off := 0
	okUntil := pa // addresses below this have already passed the TZASC
	for off < len(buf) {
		cur := pa + PA(off)
		if cur >= okUntil {
			// One TZASC verdict covers the whole uniform span (the
			// configured region, or the gap up to the next region), so
			// a multi-page access inside one region checks once.
			end, err := m.tzasc.CheckSpan(w, cur)
			if err != nil {
				return err
			}
			okUntil = end
		}
		pg := m.page(cur.PFN())
		po := int(cur.Offset())
		n := PageSize - po
		if n > len(buf)-off {
			n = len(buf) - off
		}
		if write {
			copy(pg[po:po+n], buf[off:off+n])
		} else {
			copy(buf[off:off+n], pg[po:po+n])
		}
		off += n
	}
	if write {
		m.fireWatches(pa, pa+PA(len(buf)))
	}
	return nil
}

// WatchWrite registers fn to run after every guarded write that overlaps
// [pa, pa+n) — a simulated doorbell on a physical range. Watches observe only
// Write traffic: ScrubPage and allocator zeroing are privileged maintenance,
// not producer stores. The returned cancel removes the watch; watches fire in
// registration order so wakeup order is deterministic.
func (m *PhysMem) WatchWrite(pa PA, n uint64, fn func()) (cancel func()) {
	m.watchMu.Lock()
	m.watchID++
	id := m.watchID
	m.watches = append(m.watches, memWatch{id: id, lo: pa, hi: pa + PA(n), fn: fn})
	m.watchMu.Unlock()
	return func() {
		m.watchMu.Lock()
		defer m.watchMu.Unlock()
		for i := range m.watches {
			if m.watches[i].id == id {
				m.watches = append(m.watches[:i], m.watches[i+1:]...)
				return
			}
		}
	}
}

func (m *PhysMem) fireWatches(lo, hi PA) {
	// Snapshot the overlapping watches under the lock (registration order —
	// wakeup order stays deterministic), then fire outside it so callbacks
	// may cancel watches, including their own. A watch cancelled by an
	// earlier callback of the same write is skipped: its pre-fire existence
	// is re-checked under the lock, matching the pre-concurrency behaviour.
	m.watchMu.Lock()
	if len(m.watches) == 0 {
		m.watchMu.Unlock()
		return
	}
	var snap []memWatch
	for _, w := range m.watches {
		if w.lo < hi && lo < w.hi {
			snap = append(snap, w)
		}
	}
	m.watchMu.Unlock()
	for _, w := range snap {
		m.watchMu.Lock()
		live := false
		for i := range m.watches {
			if m.watches[i].id == w.id {
				live = true
				break
			}
		}
		m.watchMu.Unlock()
		if live {
			w.fn()
		}
	}
}

// ScrubPage zeroes a physical page regardless of world — used by the SPM's
// failure-clearing logic (it runs at the highest privilege).
func (m *PhysMem) ScrubPage(pa PA) { m.zeroPage(pa.PFN()) }

// TZASC filters physical memory accesses by world, region by region
// (the TrustZone Address Space Controller).
type TZASC struct {
	regions map[int]tzRegion
	locked  bool

	// Region slots sorted by id: the deterministic pre-lock scan order
	// (the map's iteration order must never decide a verdict).
	order []tzSlot
	dirty bool

	// index is the immutable lookup structure built when the secure
	// monitor locks the configuration at boot: region slots sorted by
	// base, binary-searched per access. With overlapping regions the
	// sorted index cannot answer span queries, so checks fall back to
	// the slot-ordered scan (overlap=true).
	index   []tzSlot
	overlap bool
}

type tzRegion struct {
	base   PA
	size   uint64
	secure bool
}

type tzSlot struct {
	id int
	tzRegion
}

// NewTZASC creates an empty controller; unconfigured addresses default to
// normal-world accessible.
func NewTZASC() *TZASC { return &TZASC{regions: make(map[int]tzRegion)} }

// SetRegion configures region slot id. Fails if the controller was locked
// (the secure monitor locks it at boot to resist reconfiguration attacks).
func (t *TZASC) SetRegion(id int, base PA, size uint64, secure bool) error {
	if t.locked {
		return fmt.Errorf("hw: TZASC locked")
	}
	t.regions[id] = tzRegion{base: base, size: size, secure: secure}
	t.dirty = true
	return nil
}

// Lock freezes the configuration (done by the secure monitor during boot)
// and builds the sorted region index consulted on every subsequent check.
func (t *TZASC) Lock() {
	t.locked = true
	t.rebuildOrder()
	t.index = make([]tzSlot, len(t.order))
	copy(t.index, t.order)
	sort.SliceStable(t.index, func(i, j int) bool { return t.index[i].base < t.index[j].base })
	t.overlap = false
	for i := 1; i < len(t.index); i++ {
		prev := t.index[i-1]
		if uint64(prev.base)+prev.size > uint64(t.index[i].base) {
			t.overlap = true
			break
		}
	}
}

// Locked reports whether the configuration is frozen.
func (t *TZASC) Locked() bool { return t.locked }

// rebuildOrder refreshes the slot-id-ordered scan list.
func (t *TZASC) rebuildOrder() {
	t.order = t.order[:0]
	ids := make([]int, 0, len(t.regions))
	for id := range t.regions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		t.order = append(t.order, tzSlot{id: id, tzRegion: t.regions[id]})
	}
	t.dirty = false
}

// lookup resolves the verdict for pa and the end of the uniform-verdict span
// containing it: the end of the configured region, or — for unconfigured
// addresses — the base of the next region above pa (PA max if none). With an
// overlapping (or not yet locked) configuration the span degrades to the
// single page containing pa.
func (t *TZASC) lookup(pa PA) (secure bool, spanEnd PA) {
	pageEnd := PA((pa.PFN() + 1) << PageShift)
	if !t.locked || t.overlap {
		if t.dirty {
			t.rebuildOrder()
		}
		for _, r := range t.order {
			if pa >= r.base && uint64(pa) < uint64(r.base)+r.size {
				return r.secure, pageEnd
			}
		}
		return false, pageEnd
	}
	// Binary search: first region with base > pa; the candidate container
	// is the one before it (regions are non-overlapping here).
	i := sort.Search(len(t.index), func(i int) bool { return t.index[i].base > pa })
	if i > 0 {
		r := t.index[i-1]
		if uint64(pa) < uint64(r.base)+r.size {
			return r.secure, PA(uint64(r.base) + r.size)
		}
	}
	if i < len(t.index) {
		return false, t.index[i].base
	}
	return false, PA(^uint64(0))
}

// Check validates a single access at pa from world w.
func (t *TZASC) Check(w World, pa PA) error {
	secure, _ := t.lookup(pa)
	if secure && w != SecureWorld {
		f := &Fault{Kind: FaultTZASC, Space: "tzasc", Addr: uint64(pa), World: w}
		reportDenial(f)
		return f
	}
	return nil
}

// CheckSpan validates an access at pa from world w and, when allowed, returns
// the first address past pa where the verdict may change — callers touching a
// contiguous range need one check per returned span, not one per page.
func (t *TZASC) CheckSpan(w World, pa PA) (spanEnd PA, err error) {
	secure, end := t.lookup(pa)
	if secure && w != SecureWorld {
		f := &Fault{Kind: FaultTZASC, Space: "tzasc", Addr: uint64(pa), World: w}
		reportDenial(f)
		return 0, f
	}
	return end, nil
}

// IsSecure reports whether pa falls inside a secure region.
func (t *TZASC) IsSecure(pa PA) bool {
	secure, _ := t.lookup(pa)
	return secure
}

// TZPC filters peripheral (MMIO) access by world (the TrustZone Protection
// Controller). Devices not registered default to normal-world.
type TZPC struct {
	secure map[string]bool
	locked bool
}

// NewTZPC creates an empty controller.
func NewTZPC() *TZPC { return &TZPC{secure: make(map[string]bool)} }

// SetSecure assigns a device to the secure world.
func (t *TZPC) SetSecure(dev string, secure bool) error {
	if t.locked {
		return fmt.Errorf("hw: TZPC locked")
	}
	t.secure[dev] = secure
	return nil
}

// Lock freezes the configuration.
func (t *TZPC) Lock() { t.locked = true }

// Check validates access to dev from world w.
func (t *TZPC) Check(w World, dev string) error {
	if t.secure[dev] && w != SecureWorld {
		f := &Fault{Kind: FaultTZPC, Space: "tzpc:" + dev, World: w}
		reportDenial(f)
		return f
	}
	return nil
}

// IsSecure reports whether the device is assigned to the secure world.
func (t *TZPC) IsSecure(dev string) bool { return t.secure[dev] }
