package hw

import "fmt"

// IRQHandler is invoked (in the raiser's simulated context) when a line
// fires.
type IRQHandler func()

// GIC is the interrupt controller. Like the TZPC for MMIO, it partitions
// interrupt lines between the worlds, and — using the validated, frozen
// device tree — it refuses interrupt spoofing: a source may only raise the
// line the device tree assigned to it (§IV-A's TrustPath-style defence
// against "interrupt spoofing attacks").
type GIC struct {
	dt       *DeviceTree
	secure   map[int]bool
	handlers map[int]irqSlot
	locked   bool
	// Delivered counts per line, for drivers and tests.
	delivered map[int]int
}

type irqSlot struct {
	world World
	h     IRQHandler
}

// NewGIC creates a controller bound to the platform device tree.
func NewGIC(dt *DeviceTree) *GIC {
	return &GIC{
		dt:        dt,
		secure:    make(map[int]bool),
		handlers:  make(map[int]irqSlot),
		delivered: make(map[int]int),
	}
}

// ConfigureSecure assigns a line to the secure world. Fails after Lock.
func (g *GIC) ConfigureSecure(irq int, secure bool) error {
	if g.locked {
		return fmt.Errorf("hw: GIC locked")
	}
	g.secure[irq] = secure
	return nil
}

// Lock freezes the world assignment (done by the secure monitor at boot).
func (g *GIC) Lock() { g.locked = true }

// Register installs a handler for a line. A secure line only accepts a
// secure-world handler; registering from the normal world for a secure line
// is refused (the mirror of the TZPC check).
func (g *GIC) Register(irq int, w World, h IRQHandler) error {
	if g.secure[irq] && w != SecureWorld {
		return &Fault{Kind: FaultTZPC, Space: fmt.Sprintf("gic:irq%d", irq), World: w}
	}
	g.handlers[irq] = irqSlot{world: w, h: h}
	return nil
}

// Unregister removes a handler.
func (g *GIC) Unregister(irq int) { delete(g.handlers, irq) }

// Raise fires a line on behalf of a named source device. The source must be
// the device-tree owner of that line: a malicious or misconfigured device
// cannot inject interrupts bound to another device's driver.
func (g *GIC) Raise(source string, irq int) error {
	node, ok := g.dt.Find(source)
	if !ok {
		return fmt.Errorf("hw: interrupt from unknown source %q", source)
	}
	if node.IRQ != irq {
		return fmt.Errorf("hw: interrupt spoofing rejected: %q owns IRQ %d, raised %d", source, node.IRQ, irq)
	}
	g.delivered[irq]++
	if slot, ok := g.handlers[irq]; ok && slot.h != nil {
		slot.h()
	}
	return nil
}

// Delivered returns how many times a line fired.
func (g *GIC) Delivered(irq int) int { return g.delivered[irq] }
