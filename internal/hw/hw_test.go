package hw

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func testMachine() *Machine {
	return NewMachine(Config{NormalMemBytes: 1 << 20, SecureMemBytes: 1 << 20})
}

func TestPhysMemReadWriteRoundTrip(t *testing.T) {
	m := testMachine()
	pa, err := m.Mem.AllocPages("normal", 2)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, physical world")
	if err := m.Mem.Write(NormalWorld, pa+17, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.Mem.Read(NormalWorld, pa+17, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
}

func TestPhysMemPageCrossing(t *testing.T) {
	m := testMachine()
	pa, _ := m.Mem.AllocPages("normal", 2)
	data := make([]byte, PageSize+100)
	for i := range data {
		data[i] = byte(i)
	}
	start := pa + PA(PageSize-50)
	if err := m.Mem.Write(NormalWorld, start, data[:149]); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 149)
	if err := m.Mem.Read(NormalWorld, start, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:149]) {
		t.Fatal("page-crossing data mismatch")
	}
}

func TestTZASCBlocksNormalWorldFromSecureMemory(t *testing.T) {
	m := testMachine()
	pa, err := m.Mem.AllocPages("secure", 1)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("model weights")
	if err := m.Mem.Write(SecureWorld, pa, secret); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(secret))
	err = m.Mem.Read(NormalWorld, pa, buf)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultTZASC {
		t.Fatalf("err = %v, want TZASC fault", err)
	}
	if err := m.Mem.Write(NormalWorld, pa, []byte("overwrite")); err == nil {
		t.Fatal("normal world wrote secure memory")
	}
	// Secure world still reads its own data.
	if err := m.Mem.Read(SecureWorld, pa, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, secret) {
		t.Fatal("secure data corrupted")
	}
}

func TestTZASCLockPreventsReconfiguration(t *testing.T) {
	m := testMachine()
	m.TZASC.Lock()
	if err := m.TZASC.SetRegion(5, 0, 4096, false); err == nil {
		t.Fatal("locked TZASC accepted reconfiguration")
	}
}

func TestAllocFreeReuseScrubsPage(t *testing.T) {
	m := testMachine()
	pa, _ := m.Mem.AllocPages("secure", 1)
	m.Mem.Write(SecureWorld, pa, []byte("sensitive"))
	if err := m.Mem.FreePage("secure", pa); err != nil {
		t.Fatalf("FreePage: %v", err)
	}
	pa2, _ := m.Mem.AllocPages("secure", 1)
	if pa2 != pa {
		t.Fatalf("free page not reused: %#x vs %#x", pa2, pa)
	}
	buf := make([]byte, 9)
	m.Mem.Read(SecureWorld, pa2, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("recycled page leaked previous contents")
		}
	}
}

func TestRegionExhaustion(t *testing.T) {
	m := NewMachine(Config{NormalMemBytes: 4 * PageSize, SecureMemBytes: 4 * PageSize})
	if _, err := m.Mem.AllocPages("normal", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mem.AllocPages("normal", 1); err == nil {
		t.Fatal("over-allocation succeeded")
	}
}

func TestAddrSpaceTranslateFaults(t *testing.T) {
	a := NewAddrSpace("test")
	a.Map(10, 99, PermR)
	if pfn, f := a.Translate(10, PermR); f != nil || pfn != 99 {
		t.Fatalf("translate: pfn=%d fault=%v", pfn, f)
	}
	if _, f := a.Translate(10, PermW); f == nil || f.Kind != FaultPerm {
		t.Fatalf("want perm fault, got %v", f)
	}
	if _, f := a.Translate(11, PermR); f == nil || f.Kind != FaultUnmapped {
		t.Fatalf("want unmapped fault, got %v", f)
	}
	a.Invalidate(10)
	if _, f := a.Translate(10, PermR); f == nil || f.Kind != FaultInvalidated {
		t.Fatalf("want invalidated fault, got %v", f)
	}
	// Invalidated is distinguishable from unmapped: the proceed-trap
	// handler needs to know a mapping was revoked, not never present.
	a.Unmap(10)
	if _, f := a.Translate(10, PermR); f == nil || f.Kind != FaultUnmapped {
		t.Fatalf("want unmapped after unmap, got %v", f)
	}
}

func TestAddrSpaceInvalidateWhere(t *testing.T) {
	a := NewAddrSpace("s2")
	a.MapRange(0, 100, 8, PermRW)
	n := a.InvalidateWhere(func(vpn, pfn uint64) bool { return pfn >= 104 })
	if n != 4 {
		t.Fatalf("invalidated %d, want 4", n)
	}
	if _, f := a.Translate(3, PermR); f != nil {
		t.Fatal("entry below cutoff should stay valid")
	}
	if _, f := a.Translate(4, PermR); f == nil || f.Kind != FaultInvalidated {
		t.Fatalf("want invalidated, got %v", f)
	}
}

func TestAddrSpaceGenBumpsOnChange(t *testing.T) {
	a := NewAddrSpace("g")
	g0 := a.Gen()
	a.Map(1, 2, PermR)
	if a.Gen() == g0 {
		t.Fatal("gen did not change on map")
	}
	g1 := a.Gen()
	a.Invalidate(1)
	if a.Gen() == g1 {
		t.Fatal("gen did not change on invalidate")
	}
}

func TestDeviceTreeValidation(t *testing.T) {
	cases := []struct {
		name  string
		nodes []DTNode
		bad   string
	}{
		{
			name: "valid",
			nodes: []DTNode{
				{Name: "gpu0", MMIOBase: 0x1000, MMIOSize: 0x1000, IRQ: 32},
				{Name: "npu0", MMIOBase: 0x2000, MMIOSize: 0x1000, IRQ: 33},
			},
		},
		{
			name: "mmio overlap",
			nodes: []DTNode{
				{Name: "gpu0", MMIOBase: 0x1000, MMIOSize: 0x1001, IRQ: 32},
				{Name: "npu0", MMIOBase: 0x2000, MMIOSize: 0x1000, IRQ: 33},
			},
			bad: "overlap",
		},
		{
			name: "irq spoof",
			nodes: []DTNode{
				{Name: "gpu0", MMIOBase: 0x1000, MMIOSize: 0x1000, IRQ: 32},
				{Name: "npu0", MMIOBase: 0x2000, MMIOSize: 0x1000, IRQ: 32},
			},
			bad: "IRQ",
		},
		{
			name: "duplicate name",
			nodes: []DTNode{
				{Name: "gpu0", MMIOBase: 0x1000, MMIOSize: 0x1000, IRQ: 32},
				{Name: "gpu0", MMIOBase: 0x2000, MMIOSize: 0x1000, IRQ: 33},
			},
			bad: "duplicate",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dt := &DeviceTree{}
			for _, n := range tc.nodes {
				if err := dt.Add(n); err != nil {
					t.Fatal(err)
				}
			}
			err := dt.Validate()
			if tc.bad == "" {
				if err != nil {
					t.Fatalf("valid tree rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.bad) {
				t.Fatalf("err = %v, want containing %q", err, tc.bad)
			}
		})
	}
}

func TestDeviceTreeHashDeterministicAndOrderIndependent(t *testing.T) {
	a := &DeviceTree{}
	a.Add(DTNode{Name: "gpu0", Compatible: "nvidia,turing", IRQ: 32})
	a.Add(DTNode{Name: "npu0", Compatible: "vta,fsim", IRQ: 33})
	b := &DeviceTree{}
	b.Add(DTNode{Name: "npu0", Compatible: "vta,fsim", IRQ: 33})
	b.Add(DTNode{Name: "gpu0", Compatible: "nvidia,turing", IRQ: 32})
	if a.Hash() != b.Hash() {
		t.Fatal("hash must be order independent")
	}
	c := &DeviceTree{}
	c.Add(DTNode{Name: "gpu0", Compatible: "nvidia,kepler", IRQ: 32})
	c.Add(DTNode{Name: "npu0", Compatible: "vta,fsim", IRQ: 33})
	if a.Hash() == c.Hash() {
		t.Fatal("hash must change with content")
	}
}

func TestDeviceTreeFreeze(t *testing.T) {
	dt := &DeviceTree{}
	dt.Freeze()
	if err := dt.Add(DTNode{Name: "late"}); err == nil {
		t.Fatal("frozen device tree accepted node")
	}
}

func TestFuseBank(t *testing.T) {
	f := NewFuseBank()
	if err := f.Burn("rot", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(NormalWorld, "rot"); err == nil {
		t.Fatal("normal world read a fuse")
	}
	v, err := f.Read(SecureWorld, "rot")
	if err != nil || !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("fuse read = %v, %v", v, err)
	}
	v[0] = 99 // caller mutation must not affect the fuse
	v2, _ := f.Read(SecureWorld, "rot")
	if v2[0] != 1 {
		t.Fatal("fuse value aliased to caller buffer")
	}
	f.Lock()
	if err := f.Burn("rot2", []byte{4}); err == nil {
		t.Fatal("locked bank accepted burn")
	}
}

type fakeDevice struct {
	name  string
	reset int
}

func (d *fakeDevice) Name() string { return d.name }
func (d *fakeDevice) Reset()       { d.reset++ }

func TestBusAttachAndTZPC(t *testing.T) {
	m := testMachine()
	dev := &fakeDevice{name: "gpu0"}
	_, err := m.Bus.Attach(dev, DTNode{Name: "gpu0", Secure: true, IRQ: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Bus.CheckMMIO(NormalWorld, "gpu0"); err == nil {
		t.Fatal("normal world touched secure device MMIO")
	}
	if err := m.Bus.CheckMMIO(SecureWorld, "gpu0"); err != nil {
		t.Fatal(err)
	}
	if err := m.Bus.ResetDevice("gpu0"); err != nil || dev.reset != 1 {
		t.Fatalf("reset: err=%v count=%d", err, dev.reset)
	}
	// Duplicate attach rejected.
	if _, err := m.Bus.Attach(&fakeDevice{name: "gpu0"}, DTNode{Name: "gpu0"}); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	// Name mismatch rejected.
	if _, err := m.Bus.Attach(&fakeDevice{name: "x"}, DTNode{Name: "y"}); err == nil {
		t.Fatal("mismatched attach accepted")
	}
}

func TestDMAThroughSMMU(t *testing.T) {
	m := testMachine()
	dev := &fakeDevice{name: "gpu0"}
	port, err := m.Bus.Attach(dev, DTNode{Name: "gpu0", Secure: true, IRQ: 32})
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := m.Mem.AllocPages("secure", 1)
	// No SMMU mapping yet: DMA must fault.
	buf := make([]byte, 16)
	err = port.Read(0x5000, buf)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultSMMU {
		t.Fatalf("err = %v, want SMMU fault", err)
	}
	// Map IOVA page 5 -> the secure page, read-only.
	m.SMMU.Stream("gpu0").Map(5, pa.PFN(), PermR)
	m.Mem.Write(SecureWorld, pa+8, []byte("dma-data"))
	if err := port.Read(0x5008, buf[:8]); err != nil {
		t.Fatal(err)
	}
	if string(buf[:8]) != "dma-data" {
		t.Fatalf("dma read %q", buf[:8])
	}
	// Write through a read-only mapping must fault.
	if err := port.Write(0x5000, []byte("x")); err == nil {
		t.Fatal("write through RO SMMU mapping succeeded")
	}
}

func TestDMAWorldEnforcedByTZASC(t *testing.T) {
	m := testMachine()
	// A *normal-world* device with an SMMU mapping pointing at secure
	// memory must still be stopped by the TZASC.
	port, err := m.Bus.Attach(&fakeDevice{name: "nic0"}, DTNode{Name: "nic0", Secure: false, IRQ: 40})
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := m.Mem.AllocPages("secure", 1)
	m.SMMU.Stream("nic0").Map(7, pa.PFN(), PermRW)
	err = port.Read(7<<PageShift, make([]byte, 4))
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultTZASC {
		t.Fatalf("err = %v, want TZASC fault", err)
	}
}

// Property: physical memory behaves like an array — any sequence of writes
// followed by reads at the same offsets returns the written data.
func TestPhysMemQuickProperty(t *testing.T) {
	m := testMachine()
	pa, _ := m.Mem.AllocPages("normal", 8)
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		at := pa + PA(off)
		if err := m.Mem.Write(NormalWorld, at, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := m.Mem.Read(NormalWorld, at, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGICSecureLineRegistration(t *testing.T) {
	m := testMachine()
	_, err := m.Bus.Attach(&fakeDevice{name: "gpu0"}, DTNode{Name: "gpu0", Secure: true, IRQ: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Normal world cannot claim a secure line.
	if err := m.GIC.Register(32, NormalWorld, func() {}); err == nil {
		t.Fatal("normal world registered for a secure interrupt")
	}
	fired := 0
	if err := m.GIC.Register(32, SecureWorld, func() { fired++ }); err != nil {
		t.Fatal(err)
	}
	if err := m.Bus.RaiseIRQ("gpu0"); err != nil {
		t.Fatal(err)
	}
	if fired != 1 || m.GIC.Delivered(32) != 1 {
		t.Fatalf("fired=%d delivered=%d", fired, m.GIC.Delivered(32))
	}
}

func TestGICInterruptSpoofingRejected(t *testing.T) {
	m := testMachine()
	m.Bus.Attach(&fakeDevice{name: "gpu0"}, DTNode{Name: "gpu0", Secure: true, IRQ: 32})
	m.Bus.Attach(&fakeDevice{name: "nic0"}, DTNode{Name: "nic0", Secure: false, IRQ: 40})
	fired := 0
	m.GIC.Register(32, SecureWorld, func() { fired++ })
	// nic0 (normal world, owns IRQ 40) tries to inject the GPU's line.
	if err := m.GIC.Raise("nic0", 32); err == nil {
		t.Fatal("interrupt spoofing accepted")
	}
	if err := m.GIC.Raise("ghost-device", 32); err == nil {
		t.Fatal("unknown source accepted")
	}
	if fired != 0 {
		t.Fatal("handler ran for a spoofed interrupt")
	}
}

func TestGICLockPreventsReassignment(t *testing.T) {
	m := testMachine()
	m.GIC.Lock()
	if err := m.GIC.ConfigureSecure(5, true); err == nil {
		t.Fatal("locked GIC accepted reconfiguration")
	}
}
