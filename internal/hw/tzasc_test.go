package hw

import (
	"errors"
	"fmt"
	"testing"
)

// naiveCheck is the reference verdict: deterministic slot-ordered scan.
func naiveCheck(regions map[int]tzRegion, pa PA) bool {
	for id := 0; id < 64; id++ {
		r, ok := regions[id]
		if !ok {
			continue
		}
		if pa >= r.base && uint64(pa) < uint64(r.base)+r.size {
			return r.secure
		}
	}
	return false
}

// TestTZASCIndexMatchesNaiveScan cross-checks the locked binary-search index
// against a brute-force scan over a non-overlapping layout with gaps.
func TestTZASCIndexMatchesNaiveScan(t *testing.T) {
	tz := NewTZASC()
	// Deliberately unsorted slot order, with gaps between regions.
	_ = tz.SetRegion(3, 0x40000, 0x8000, true)
	_ = tz.SetRegion(0, 0x00000, 0x10000, false)
	_ = tz.SetRegion(7, 0x20000, 0x4000, true)
	_ = tz.SetRegion(1, 0x60000, 0x10000, false)
	tz.Lock()
	probes := []PA{0, 0xFFFF, 0x10000, 0x1FFFF, 0x20000, 0x23FFF, 0x24000,
		0x3FFFF, 0x40000, 0x47FFF, 0x48000, 0x60000, 0x6FFFF, 0x70000, 0x123456}
	for _, pa := range probes {
		want := naiveCheck(tz.regions, pa)
		if got := tz.IsSecure(pa); got != want {
			t.Fatalf("pa %#x: IsSecure=%v, naive=%v", uint64(pa), got, want)
		}
		err := tz.Check(NormalWorld, pa)
		if want && err == nil {
			t.Fatalf("pa %#x: secure address allowed from normal world", uint64(pa))
		}
		if !want && err != nil {
			t.Fatalf("pa %#x: normal address denied: %v", uint64(pa), err)
		}
	}
}

// TestTZASCCheckSpan asserts the span ends: inside a region the span runs to
// the region end; in a gap it runs to the next region's base; above the last
// region it is unbounded.
func TestTZASCCheckSpan(t *testing.T) {
	tz := NewTZASC()
	_ = tz.SetRegion(0, 0x10000, 0x10000, false)
	_ = tz.SetRegion(1, 0x30000, 0x8000, true)
	tz.Lock()
	cases := []struct {
		pa      PA
		wantEnd PA
	}{
		{0x0, 0x10000},       // gap below first region
		{0x10000, 0x20000},   // region 0 start
		{0x1C000, 0x20000},   // inside region 0
		{0x20000, 0x30000},   // gap between regions
		{0x38000, PA(^uint64(0))}, // above the last region: unbounded
	}
	for _, c := range cases {
		end, err := tz.CheckSpan(NormalWorld, c.pa)
		if err != nil {
			t.Fatalf("pa %#x: unexpected denial: %v", uint64(c.pa), err)
		}
		if end != c.wantEnd {
			t.Fatalf("pa %#x: span end %#x, want %#x", uint64(c.pa), uint64(end), uint64(c.wantEnd))
		}
	}
	// Secure region from the normal world: denied, and the denial carries
	// the faulting address.
	if _, err := tz.CheckSpan(NormalWorld, 0x30000); err == nil {
		t.Fatal("secure span allowed from normal world")
	}
	if end, err := tz.CheckSpan(SecureWorld, 0x30000); err != nil || end != 0x38000 {
		t.Fatalf("secure world span: end %#x err %v", uint64(end), err)
	}
}

// TestTZASCPreLockSpanIsPageGranular: before Lock() the configuration can
// still change, so spans must not extend past the probed page.
func TestTZASCPreLockSpanIsPageGranular(t *testing.T) {
	tz := NewTZASC()
	_ = tz.SetRegion(0, 0, 1<<20, false)
	end, err := tz.CheckSpan(NormalWorld, 0x1800)
	if err != nil {
		t.Fatal(err)
	}
	if end != 0x2000 {
		t.Fatalf("pre-lock span end %#x, want next page boundary 0x2000", uint64(end))
	}
}

// TestTZASCOverlapFallsBack: overlapping regions defeat the sorted index;
// verdicts must still match the deterministic slot-ordered scan (lowest slot
// id wins), at page granularity.
func TestTZASCOverlapFallsBack(t *testing.T) {
	tz := NewTZASC()
	_ = tz.SetRegion(0, 0x0000, 0x3000, false)
	_ = tz.SetRegion(1, 0x2000, 0x3000, true) // overlaps region 0
	tz.Lock()
	if !tz.overlap {
		t.Fatal("overlap not detected at Lock()")
	}
	// 0x2800 is covered by both; slot 0 (normal) wins.
	if tz.IsSecure(0x2800) {
		t.Fatal("overlap verdict should follow lowest slot id (normal)")
	}
	if tz.IsSecure(0x3000) != true {
		t.Fatal("0x3000 only in region 1: want secure")
	}
	end, err := tz.CheckSpan(SecureWorld, 0x2800)
	if err != nil {
		t.Fatal(err)
	}
	if end != 0x3000 {
		t.Fatalf("overlap span must be page-granular: end %#x", uint64(end))
	}
}

// TestFreePageValidation: FreePage must refuse foreign, misaligned, and
// out-of-range addresses instead of scrubbing frames it does not own.
func TestFreePageValidation(t *testing.T) {
	m := NewMachine(Config{NormalMemBytes: 4 * PageSize, SecureMemBytes: 4 * PageSize})
	pa, err := m.Mem.AllocPages("secure", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.FreePage("nope", pa); err == nil {
		t.Fatal("unknown region accepted")
	}
	if err := m.Mem.FreePage("secure", pa+1); err == nil {
		t.Fatal("misaligned address accepted")
	}
	if err := m.Mem.FreePage("normal", pa); err == nil {
		t.Fatal("address outside the named region accepted")
	}
	// The guarded page must be untouched by the failed frees.
	if err := m.Mem.Write(SecureWorld, pa, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.FreePage("normal", pa); err == nil {
		t.Fatal("secure frame freed through the normal region")
	}
	got := make([]byte, 1)
	if err := m.Mem.Read(SecureWorld, pa, got); err != nil || got[0] != 0xAB {
		t.Fatalf("failed FreePage scrubbed the page anyway: %v %v", got, err)
	}
	if err := m.Mem.FreePage("secure", pa); err != nil {
		t.Fatalf("legitimate free refused: %v", err)
	}
}

// TestPhysMemSpanCheckFaultAddr: a multi-page access crossing into a secure
// region must fault at the first denied byte, same as per-page checking.
func TestPhysMemSpanCheckFaultAddr(t *testing.T) {
	tz := NewTZASC()
	_ = tz.SetRegion(0, 0, 4*PageSize, false)
	_ = tz.SetRegion(1, 4*PageSize, 4*PageSize, true)
	tz.Lock()
	mem := NewPhysMem(8*PageSize, tz)
	buf := make([]byte, 3*PageSize)
	err := mem.Write(NormalWorld, PA(2*PageSize+16), buf)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want Fault, got %v", err)
	}
	if f.Kind != FaultTZASC {
		t.Fatalf("want FaultTZASC, got %v", f.Kind)
	}
	if f.Addr != uint64(4*PageSize) {
		t.Fatalf("fault addr %#x, want first denied page %#x", f.Addr, 4*PageSize)
	}
}

// TestWatchWrite covers the doorbell substrate: overlap filtering, firing
// order, no firing on reads or scrubs, and cancellation (including
// cancellation from inside a callback).
func TestWatchWrite(t *testing.T) {
	m := NewMachine(Config{NormalMemBytes: 16 * PageSize, SecureMemBytes: 4 * PageSize})
	var log []string
	c1 := m.Mem.WatchWrite(16, 8, func() { log = append(log, "w1") })
	defer c1()
	c2 := m.Mem.WatchWrite(24, 8, func() { log = append(log, "w2") })
	defer c2()

	// Write covering only the first watch.
	if err := m.Mem.Write(NormalWorld, 16, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	// Write covering both (overlap at [16,32)).
	if err := m.Mem.Write(NormalWorld, 20, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	// Write covering neither.
	if err := m.Mem.Write(NormalWorld, 4096, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	// Reads and scrubs never ring doorbells.
	if err := m.Mem.Read(NormalWorld, 16, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	m.Mem.ScrubPage(0)
	want := fmt.Sprintf("%v", []string{"w1", "w1", "w2"})
	if got := fmt.Sprintf("%v", log); got != want {
		t.Fatalf("firing log %v, want %v", got, want)
	}

	// Cancel removes the watch.
	c1()
	log = nil
	if err := m.Mem.Write(NormalWorld, 16, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", log) != fmt.Sprintf("%v", []string{"w2"}) {
		t.Fatalf("after cancel: %v", log)
	}

	// A callback cancelling its own watch mid-fire must not skip others.
	log = nil
	var c3 func()
	c3 = m.Mem.WatchWrite(100, 4, func() { log = append(log, "w3"); c3() })
	c4 := m.Mem.WatchWrite(100, 4, func() { log = append(log, "w4") })
	defer c4()
	if err := m.Mem.Write(NormalWorld, 100, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.Write(NormalWorld, 100, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	want = fmt.Sprintf("%v", []string{"w3", "w4", "w4"})
	if got := fmt.Sprintf("%v", log); got != want {
		t.Fatalf("self-cancel log %v, want %v", got, want)
	}
}
