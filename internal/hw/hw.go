// Package hw simulates the hardware platform CRONUS runs on: a
// TrustZone-style machine with a secure and a normal world, physical memory
// filtered by a TZASC, peripherals filtered by a TZPC, an SMMU in front of
// device DMA, a device tree describing the platform, and a fuse bank holding
// the hardware roots of trust.
//
// Isolation is enforced the way the hardware enforces it: every access to
// physical memory or to a device is checked against the TZASC/TZPC/SMMU
// configuration, and violations surface as typed *Fault values — exactly the
// events the CRONUS proceed-trap failover protocol (§IV-D) is built on.
package hw

import "fmt"

// World identifies which TrustZone world an access originates from.
type World int

const (
	// NormalWorld is the untrusted world (rich OS, applications).
	NormalWorld World = iota
	// SecureWorld is the trusted world (SPM, mOSes, mEnclaves).
	SecureWorld
)

func (w World) String() string {
	if w == SecureWorld {
		return "secure"
	}
	return "normal"
}

// PA is a physical address.
type PA uint64

// PageSize is the translation granule used throughout the platform.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PFN returns the page frame number containing pa.
func (pa PA) PFN() uint64 { return uint64(pa) >> PageShift }

// Offset returns the offset of pa within its page.
func (pa PA) Offset() uint64 { return uint64(pa) & (PageSize - 1) }

// FaultKind classifies a hardware access fault.
type FaultKind int

const (
	// FaultTZASC: normal world touched secure memory (or vice-versa for
	// regions locked to one world).
	FaultTZASC FaultKind = iota
	// FaultTZPC: an access to a peripheral assigned to the other world.
	FaultTZPC
	// FaultUnmapped: no translation exists for the address.
	FaultUnmapped
	// FaultInvalidated: a translation existed but was invalidated — the
	// signal the SPM raises after a partition failure (§IV-D step ①).
	FaultInvalidated
	// FaultPerm: the mapping exists but forbids the access.
	FaultPerm
	// FaultSMMU: a device DMA missed or violated its SMMU mapping.
	FaultSMMU
)

func (k FaultKind) String() string {
	switch k {
	case FaultTZASC:
		return "tzasc"
	case FaultTZPC:
		return "tzpc"
	case FaultUnmapped:
		return "unmapped"
	case FaultInvalidated:
		return "invalidated"
	case FaultPerm:
		return "permission"
	case FaultSMMU:
		return "smmu"
	}
	return "unknown"
}

// Fault is a typed hardware access fault.
type Fault struct {
	Kind  FaultKind
	Space string // name of the address space or checker that faulted
	Addr  uint64 // faulting address (VA, IPA, IOVA or PA depending on Space)
	World World
}

func (f *Fault) Error() string {
	return fmt.Sprintf("hw: %s fault in %s at %#x (world=%s)", f.Kind, f.Space, f.Addr, f.World)
}

// Machine aggregates the simulated platform. Construct with NewMachine.
type Machine struct {
	Mem   *PhysMem
	TZASC *TZASC
	TZPC  *TZPC
	SMMU  *SMMU
	Bus   *Bus
	Fuses *FuseBank
	DT    *DeviceTree
	GIC   *GIC
}

// Config sizes the machine.
type Config struct {
	NormalMemBytes uint64 // normal-world DRAM
	SecureMemBytes uint64 // secure-world DRAM (TZASC-protected)
}

// DefaultConfig mirrors the paper's QEMU guest: 8 GB normal + 4 GB secure.
// The simulation allocates pages lazily, so these are address-space sizes,
// not host allocations.
func DefaultConfig() Config {
	return Config{
		NormalMemBytes: 8 << 30,
		SecureMemBytes: 4 << 30,
	}
}

// NewMachine builds a machine: normal DRAM at [0, normal), secure DRAM at
// [normal, normal+secure), with the TZASC configured to protect the secure
// region, an empty TZPC, SMMU and PCIe bus.
func NewMachine(cfg Config) *Machine {
	tzasc := NewTZASC()
	tzasc.SetRegion(0, PA(0), cfg.NormalMemBytes, false)
	tzasc.SetRegion(1, PA(cfg.NormalMemBytes), cfg.SecureMemBytes, true)
	m := &Machine{
		Mem:   NewPhysMem(cfg.NormalMemBytes+cfg.SecureMemBytes, tzasc),
		TZASC: tzasc,
		TZPC:  NewTZPC(),
		Fuses: NewFuseBank(),
		DT:    &DeviceTree{},
	}
	m.SMMU = NewSMMU()
	m.Bus = NewBus(m)
	m.GIC = NewGIC(m.DT)
	// Frame allocators: normal world pages from low memory, secure pages
	// from the protected region.
	m.Mem.AddRegion("normal", PA(0), cfg.NormalMemBytes)
	m.Mem.AddRegion("secure", PA(cfg.NormalMemBytes), cfg.SecureMemBytes)
	return m
}

// SecureBase returns the base address of the secure DRAM region.
func (m *Machine) SecureBase() PA {
	r := m.Mem.Region("secure")
	return r.Base
}
