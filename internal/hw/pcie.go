package hw

import "fmt"

// Device is the contract every peripheral on the bus fulfils. Concrete
// devices (the GPU and NPU models) live in their own packages and expose
// richer typed APIs; the bus only needs identity and the ability to scrub
// all internal state, which the SPM's failure-clearing logic (§IV-D step ②)
// depends on.
type Device interface {
	Name() string
	Reset()
}

// Bus is the (simulated) PCIe fabric. Following the paper's QEMU setup
// (§V-A), devices bound to the secure world live on a "secure" bus segment:
// their MMIO is filtered by the TZPC and their DMA is constrained by the
// SMMU to the memory the SPM mapped for them.
type Bus struct {
	m       *Machine
	devices map[string]Device
	nodes   map[string]DTNode
}

// NewBus creates an empty bus for the machine.
func NewBus(m *Machine) *Bus {
	return &Bus{m: m, devices: make(map[string]Device), nodes: make(map[string]DTNode)}
}

// Attach registers a device under its device tree node and configures the
// TZPC if the node assigns it to the secure world. It returns the DMA port
// the device uses for host memory access.
func (b *Bus) Attach(dev Device, node DTNode) (*DMAPort, error) {
	if dev.Name() != node.Name {
		return nil, fmt.Errorf("hw: device %q does not match DT node %q", dev.Name(), node.Name)
	}
	if _, dup := b.devices[node.Name]; dup {
		return nil, fmt.Errorf("hw: device %q already attached", node.Name)
	}
	if err := b.m.DT.Add(node); err != nil {
		return nil, err
	}
	b.devices[node.Name] = dev
	b.nodes[node.Name] = node
	if node.Secure {
		if err := b.m.TZPC.SetSecure(node.Name, true); err != nil {
			return nil, err
		}
		if node.IRQ >= 0 {
			if err := b.m.GIC.ConfigureSecure(node.IRQ, true); err != nil {
				return nil, err
			}
		}
	}
	world := NormalWorld
	if node.Secure {
		world = SecureWorld
	}
	return &DMAPort{bus: b, dev: node.Name, world: world}, nil
}

// Device returns an attached device by name.
func (b *Bus) Device(name string) (Device, bool) {
	d, ok := b.devices[name]
	return d, ok
}

// Devices returns the names of all attached devices.
func (b *Bus) Devices() []string {
	out := make([]string, 0, len(b.devices))
	for n := range b.devices {
		out = append(out, n)
	}
	return out
}

// CheckMMIO validates that world w may touch the device's registers.
func (b *Bus) CheckMMIO(w World, dev string) error {
	if _, ok := b.devices[dev]; !ok {
		return fmt.Errorf("hw: no device %q on bus", dev)
	}
	return b.m.TZPC.Check(w, dev)
}

// RaiseIRQ fires the device's device-tree-assigned interrupt line.
func (b *Bus) RaiseIRQ(dev string) error {
	node, ok := b.nodes[dev]
	if !ok {
		return fmt.Errorf("hw: no device %q on bus", dev)
	}
	return b.m.GIC.Raise(dev, node.IRQ)
}

// ResetDevice scrubs a device's internal state (SPM failure clearing).
func (b *Bus) ResetDevice(dev string) error {
	d, ok := b.devices[dev]
	if !ok {
		return fmt.Errorf("hw: no device %q on bus", dev)
	}
	d.Reset()
	return nil
}

// DMAPort gives one device DMA access to host physical memory through the
// SMMU. The port carries the device's world identity: a secure-bus device
// reaches secure memory, a normal-bus device is blocked by the TZASC.
type DMAPort struct {
	bus   *Bus
	dev   string
	world World
}

// Dev returns the owning device name (the SMMU stream id).
func (d *DMAPort) Dev() string { return d.dev }

// World returns the world the device's DMA is issued as.
func (d *DMAPort) World() World { return d.world }

// Read DMAs len(buf) bytes from host memory at iova into the device.
func (d *DMAPort) Read(iova uint64, buf []byte) error {
	return d.transfer(iova, buf, false)
}

// Write DMAs data from the device into host memory at iova.
func (d *DMAPort) Write(iova uint64, data []byte) error {
	return d.transfer(iova, data, true)
}

func (d *DMAPort) transfer(iova uint64, buf []byte, write bool) error {
	want := PermR
	if write {
		want = PermW
	}
	off := 0
	for off < len(buf) {
		cur := iova + uint64(off)
		pa, f := d.bus.m.SMMU.Translate(d.dev, cur, want)
		if f != nil {
			f.World = d.world
			return f
		}
		n := PageSize - int(cur&(PageSize-1))
		if n > len(buf)-off {
			n = len(buf) - off
		}
		var err error
		if write {
			err = d.bus.m.Mem.Write(d.world, pa, buf[off:off+n])
		} else {
			err = d.bus.m.Mem.Read(d.world, pa, buf[off:off+n])
		}
		if err != nil {
			return err
		}
		off += n
	}
	return nil
}
