package hw

// Perm is a page permission mask.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota
	PermW
	PermX
	// PermRW is the common read-write mapping.
	PermRW = PermR | PermW
)

// PTE is one page table entry.
type PTE struct {
	Frame uint64 // target page frame number
	Perm  Perm
	Valid bool // false after explicit invalidation (faults differently)
}

// AddrSpace is a single-level page table mapping page numbers in one address
// domain to frame numbers in another. It is used for mEnclave stage-1 tables
// (VA→IPA), partition stage-2 tables (IPA→PA) and SMMU stream tables
// (IOVA→PA).
type AddrSpace struct {
	Name    string
	entries map[uint64]PTE
	gen     uint64 // bumped on every change, for TLB-style caching upstream
}

// NewAddrSpace creates an empty address space.
func NewAddrSpace(name string) *AddrSpace {
	return &AddrSpace{Name: name, entries: make(map[uint64]PTE)}
}

// Gen returns the mutation generation (any change bumps it).
func (a *AddrSpace) Gen() uint64 { return a.gen }

// Len returns the number of entries, valid or invalidated.
func (a *AddrSpace) Len() int { return len(a.entries) }

// Map installs a translation from page vpn to frame pfn.
func (a *AddrSpace) Map(vpn, pfn uint64, perm Perm) {
	a.entries[vpn] = PTE{Frame: pfn, Perm: perm, Valid: true}
	a.gen++
}

// MapRange installs n consecutive translations starting at (vpn, pfn).
func (a *AddrSpace) MapRange(vpn, pfn uint64, n int, perm Perm) {
	for i := 0; i < n; i++ {
		a.entries[vpn+uint64(i)] = PTE{Frame: pfn + uint64(i), Perm: perm, Valid: true}
	}
	a.gen++
}

// Unmap removes the translation entirely; later accesses fault as unmapped.
func (a *AddrSpace) Unmap(vpn uint64) {
	delete(a.entries, vpn)
	a.gen++
}

// Invalidate keeps the entry but marks it invalid, so later accesses raise
// FaultInvalidated — the distinguishable trap the proceed-trap protocol
// relies on (§IV-D step ①).
func (a *AddrSpace) Invalidate(vpn uint64) {
	if e, ok := a.entries[vpn]; ok {
		e.Valid = false
		a.entries[vpn] = e
		a.gen++
	}
}

// InvalidateWhere invalidates every entry whose frame satisfies pred and
// returns how many entries were invalidated.
func (a *AddrSpace) InvalidateWhere(pred func(vpn, pfn uint64) bool) int {
	n := 0
	for vpn, e := range a.entries {
		if e.Valid && pred(vpn, e.Frame) {
			e.Valid = false
			a.entries[vpn] = e
			n++
		}
	}
	if n > 0 {
		a.gen++
	}
	return n
}

// UnmapWhere removes every entry whose frame satisfies pred.
func (a *AddrSpace) UnmapWhere(pred func(vpn, pfn uint64) bool) int {
	n := 0
	for vpn, e := range a.entries {
		if pred(vpn, e.Frame) {
			delete(a.entries, vpn)
			n++
		}
	}
	if n > 0 {
		a.gen++
	}
	return n
}

// Lookup returns the raw entry for vpn.
func (a *AddrSpace) Lookup(vpn uint64) (PTE, bool) {
	e, ok := a.entries[vpn]
	return e, ok
}

// Translate resolves one page access. want is the permission required.
func (a *AddrSpace) Translate(vpn uint64, want Perm) (uint64, *Fault) {
	e, ok := a.entries[vpn]
	if !ok {
		return 0, &Fault{Kind: FaultUnmapped, Space: a.Name, Addr: vpn << PageShift}
	}
	if !e.Valid {
		return 0, &Fault{Kind: FaultInvalidated, Space: a.Name, Addr: vpn << PageShift}
	}
	if e.Perm&want != want {
		return 0, &Fault{Kind: FaultPerm, Space: a.Name, Addr: vpn << PageShift}
	}
	return e.Frame, nil
}

// Walk visits every entry (order unspecified).
func (a *AddrSpace) Walk(fn func(vpn uint64, e PTE)) {
	for vpn, e := range a.entries {
		fn(vpn, e)
	}
}

// Clear drops all entries.
func (a *AddrSpace) Clear() {
	a.entries = make(map[uint64]PTE)
	a.gen++
}

// SMMU is the system MMU translating device DMA addresses (IOVA) to physical
// addresses, one table per stream (device).
type SMMU struct {
	streams map[string]*AddrSpace
	gen     uint64
}

// NewSMMU creates an empty SMMU.
func NewSMMU() *SMMU { return &SMMU{streams: make(map[string]*AddrSpace)} }

// Stream returns (creating if needed) the translation table for a device.
func (s *SMMU) Stream(dev string) *AddrSpace {
	t, ok := s.streams[dev]
	if !ok {
		t = NewAddrSpace("smmu:" + dev)
		s.streams[dev] = t
	}
	return t
}

// Translate resolves a device DMA access.
func (s *SMMU) Translate(dev string, iova uint64, want Perm) (PA, *Fault) {
	t, ok := s.streams[dev]
	if !ok {
		f := &Fault{Kind: FaultSMMU, Space: "smmu:" + dev, Addr: iova}
		reportDenial(f)
		return 0, f
	}
	pfn, f := t.Translate(iova>>PageShift, want)
	if f != nil {
		f.Kind = FaultSMMU
		reportDenial(f)
		return 0, f
	}
	return PA(pfn<<PageShift | iova&(PageSize-1)), nil
}
