// Package wire is the compact binary codec used for mECall arguments,
// results and RPC records. It is deliberately tiny: little-endian integers
// and length-prefixed byte strings over a flat buffer.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Encoder appends values to a buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder creates an encoder, optionally around an existing buffer.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// U32 appends a uint32.
func (e *Encoder) U32(v uint32) *Encoder {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
	return e
}

// U64 appends a uint64.
func (e *Encoder) U64(v uint64) *Encoder {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
	return e
}

// I64 appends an int64.
func (e *Encoder) I64(v int64) *Encoder { return e.U64(uint64(v)) }

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) *Encoder {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
	return e
}

// Blob appends a length-prefixed byte string.
func (e *Encoder) Blob(b []byte) *Encoder {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
	return e
}

// ErrTruncated reports a decode past the end of the buffer.
var ErrTruncated = errors.New("wire: truncated message")

// Decoder reads values sequentially from a buffer.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a buffer.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U32 reads a uint32 (0 on error; check Err).
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := d.U32()
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// Blob reads a length-prefixed byte string (copied).
func (d *Decoder) Blob() []byte {
	n := d.U32()
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
