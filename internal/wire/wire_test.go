package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	e := NewEncoder().U32(7).U64(1 << 40).I64(-5).Str("mECall").Blob([]byte{1, 2, 3})
	d := NewDecoder(e.Bytes())
	if d.U32() != 7 || d.U64() != 1<<40 || d.I64() != -5 {
		t.Fatal("integer round trip failed")
	}
	if d.Str() != "mECall" {
		t.Fatal("string round trip failed")
	}
	if !bytes.Equal(d.Blob(), []byte{1, 2, 3}) {
		t.Fatal("blob round trip failed")
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestTruncationDetected(t *testing.T) {
	e := NewEncoder().Str("hello")
	buf := e.Bytes()[:3]
	d := NewDecoder(buf)
	_ = d.Str()
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", d.Err())
	}
	// Errors are sticky.
	_ = d.U32()
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatal("error not sticky")
	}
}

func TestBlobCopied(t *testing.T) {
	e := NewEncoder().Blob([]byte("abc"))
	raw := e.Bytes()
	d := NewDecoder(raw)
	b := d.Blob()
	b[0] = 'X'
	if raw[4+0] == 'X' {
		t.Fatal("decoded blob aliases the buffer")
	}
}

func TestQuickProperty(t *testing.T) {
	f := func(a uint32, b uint64, s string, blob []byte) bool {
		e := NewEncoder().U32(a).U64(b).Str(s).Blob(blob)
		d := NewDecoder(e.Bytes())
		return d.U32() == a && d.U64() == b && d.Str() == s &&
			bytes.Equal(d.Blob(), blob) && d.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
