// Package ipc implements the inter-enclave communication primitives the
// paper builds on trusted shared memory beyond RPC (§IV-C): byte pipes and
// spinlocks implemented with atomic operations on the shared region,
// avoiding any involvement of the untrusted OS.
//
// All primitives inherit the proceed-trap failure semantics (§IV-D): if the
// communicating partition or mEnclave fails, the next access traps and the
// primitive returns ErrPeerFailed instead of deadlocking — the paper's A2
// defence, demonstrated by the tests with a lock held by a dead partition.
package ipc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"cronus/internal/hw"
	"cronus/internal/mos"
	"cronus/internal/sim"
	"cronus/internal/spm"
)

// ErrPeerFailed reports that the other side's partition or enclave failed;
// the primitive's state was cleared.
var ErrPeerFailed = errors.New("ipc: peer failed; shared region revoked")

const pollQuantum = 300 * sim.Nanosecond

// Region is one trusted shared-memory region between two partitions,
// established through the SPM exactly like an sRPC smem region.
type Region struct {
	spm    *spm.SPM
	gid    int
	pages  int
	owner  *Endpoint
	peer   *Endpoint
	closed bool
}

// Endpoint is one side's handle: a memory view plus the region's base
// address in that side's address space.
type Endpoint struct {
	view  *spm.View
	base  uint64
	size  uint64
	costs *sim.CostModel
}

// NewRegion allocates pages of trusted memory owned by ownerEnc's enclave
// and shares them with peerPart, returning the region with both endpoints.
// In a full deployment the peer endpoint is handed to the peer enclave via
// an authenticated message (as sRPC does); tests and examples wire it
// directly.
func NewRegion(p *sim.Proc, ownerEnc *mos.Enclave, peerPart *spm.Partition, pages int) (*Region, error) {
	if pages < 1 {
		pages = 1
	}
	m := ownerEnc.MOS()
	ipa, err := ownerEnc.AllocShared(p, pages)
	if err != nil {
		return nil, err
	}
	peerIPA, gid, err := m.SPM.Share(m.Part, ipa, pages, peerPart)
	if err != nil {
		return nil, err
	}
	ownerEnc.TrackGrant(gid)
	p.Sleep(sim.Duration(pages) * m.Costs.MapPage)
	size := uint64(pages) * hw.PageSize
	return &Region{
		spm:   m.SPM,
		gid:   gid,
		pages: pages,
		owner: &Endpoint{view: ownerEnc.View(), base: ipa, size: size, costs: m.Costs},
		peer:  &Endpoint{view: m.SPM.NewView(peerPart, nil), base: peerIPA, size: size, costs: m.Costs},
	}, nil
}

// Owner returns the owning side's endpoint.
func (r *Region) Owner() *Endpoint { return r.owner }

// Peer returns the peer side's endpoint.
func (r *Region) Peer() *Endpoint { return r.peer }

// Close dissolves the share.
func (r *Region) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	return r.spm.Unshare(r.gid)
}

func (e *Endpoint) translate(err error) error {
	if err == nil {
		return nil
	}
	var pf *spm.PeerFault
	if errors.As(err, &pf) {
		return fmt.Errorf("%w (failed party: %s)", ErrPeerFailed, pf.Failed)
	}
	var down *spm.PartitionDownError
	if errors.As(err, &down) {
		return fmt.Errorf("%w (own partition restarted)", ErrPeerFailed)
	}
	return err
}

func (e *Endpoint) readU32(p *sim.Proc, off uint64) (uint32, error) {
	var b [4]byte
	if err := e.view.Read(p, e.base+off, b[:]); err != nil {
		return 0, e.translate(err)
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (e *Endpoint) writeU32(p *sim.Proc, off uint64, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return e.translate(e.view.Write(p, e.base+off, b[:]))
}

// SpinLock is a mutual-exclusion lock at a fixed offset of a shared region,
// implemented with compare-and-swap-style atomic access (the simulation's
// cooperative scheduler makes an unyielding read-modify-write atomic, the
// same guarantee the hardware CAS gives the real implementation). The
// paper replaces mutexes with spinlocks precisely so the untrusted OS is
// never involved in synchronization (§IV-C).
type SpinLock struct {
	ep  *Endpoint
	off uint64
	id  uint32 // this side's non-zero holder id
}

// NewSpinLock binds a lock at byte offset off with holder identity id.
// Both sides must use the same offset and distinct non-zero ids.
func NewSpinLock(ep *Endpoint, off uint64, id uint32) *SpinLock {
	if id == 0 {
		panic("ipc: spinlock id must be non-zero")
	}
	return &SpinLock{ep: ep, off: off, id: id}
}

// TryLock attempts one CAS; it reports whether the lock was taken.
func (l *SpinLock) TryLock(p *sim.Proc) (bool, error) {
	p.Sleep(l.ep.costs.SpinlockOp)
	v, err := l.ep.readU32(p, l.off)
	if err != nil {
		return false, err
	}
	if v != 0 {
		return false, nil
	}
	// No yield between the read and the write: atomic in the DES model.
	if err := l.ep.writeU32(p, l.off, l.id); err != nil {
		return false, err
	}
	return true, nil
}

// Lock spins until the lock is acquired. If the holder's partition fails,
// the next access traps and Lock returns ErrPeerFailed instead of spinning
// forever (A2).
func (l *SpinLock) Lock(p *sim.Proc) error {
	for {
		ok, err := l.TryLock(p)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		p.Sleep(pollQuantum)
	}
}

// Unlock releases the lock; it refuses to release a lock this side does not
// hold.
func (l *SpinLock) Unlock(p *sim.Proc) error {
	p.Sleep(l.ep.costs.SpinlockOp)
	v, err := l.ep.readU32(p, l.off)
	if err != nil {
		return err
	}
	if v != l.id {
		return fmt.Errorf("ipc: unlock of a lock held by %d, not us (%d)", v, l.id)
	}
	return l.ep.writeU32(p, l.off, 0)
}

// Pipe layout within a region (starting at a fixed offset):
//
//	off+0  head u32 (consumer index)
//	off+4  tail u32 (producer index)
//	off+8  closed u32
//	off+16 data ring
const (
	pipeHead   = 0
	pipeTail   = 4
	pipeClosed = 8
	pipeData   = 16
)

// Pipe is a byte stream over a shared region: single producer on one
// endpoint, single consumer on the other, flow-controlled by head/tail
// indices in the region itself.
type Pipe struct {
	ep   *Endpoint
	off  uint64
	size uint64 // ring capacity in bytes
}

// NewPipe binds a pipe of the given ring size at byte offset off. Both
// sides must use the same geometry; the ring must fit the region.
func NewPipe(ep *Endpoint, off uint64, ringBytes int) (*Pipe, error) {
	if off+pipeData+uint64(ringBytes) > ep.size {
		return nil, fmt.Errorf("ipc: pipe ring of %d bytes exceeds region", ringBytes)
	}
	return &Pipe{ep: ep, off: off, size: uint64(ringBytes)}, nil
}

// Write sends data, blocking (in virtual time) while the ring is full. It
// fails with ErrPeerFailed if the consumer's partition dies.
func (pp *Pipe) Write(p *sim.Proc, data []byte) error {
	sent := 0
	for sent < len(data) {
		head, err := pp.ep.readU32(p, pp.off+pipeHead)
		if err != nil {
			return err
		}
		tail, err := pp.ep.readU32(p, pp.off+pipeTail)
		if err != nil {
			return err
		}
		free := int(pp.size) - int(tail-head)
		if free <= 0 {
			p.Sleep(pollQuantum)
			continue
		}
		n := free
		if n > len(data)-sent {
			n = len(data) - sent
		}
		// Write possibly wrapping chunk.
		for n > 0 {
			pos := uint64(tail) % pp.size
			c := int(pp.size - pos)
			if c > n {
				c = n
			}
			if err := pp.ep.view.Write(p, pp.ep.base+pp.off+pipeData+pos, data[sent:sent+c]); err != nil {
				return pp.ep.translate(err)
			}
			p.Sleep(pp.ep.costs.Memcpy(c))
			sent += c
			tail += uint32(c)
			n -= c
		}
		if err := pp.ep.writeU32(p, pp.off+pipeTail, tail); err != nil {
			return err
		}
	}
	return nil
}

// Read fills buf, blocking until enough bytes arrive. ok=false means the
// pipe was closed by the producer after draining.
func (pp *Pipe) Read(p *sim.Proc, buf []byte) (int, error) {
	got := 0
	for got < len(buf) {
		head, err := pp.ep.readU32(p, pp.off+pipeHead)
		if err != nil {
			return got, err
		}
		tail, err := pp.ep.readU32(p, pp.off+pipeTail)
		if err != nil {
			return got, err
		}
		avail := int(tail - head)
		if avail <= 0 {
			closed, err := pp.ep.readU32(p, pp.off+pipeClosed)
			if err != nil {
				return got, err
			}
			if closed == 1 {
				return got, nil // EOF
			}
			p.Sleep(pollQuantum)
			continue
		}
		n := avail
		if n > len(buf)-got {
			n = len(buf) - got
		}
		for n > 0 {
			pos := uint64(head) % pp.size
			c := int(pp.size - pos)
			if c > n {
				c = n
			}
			if err := pp.ep.view.Read(p, pp.ep.base+pp.off+pipeData+pos, buf[got:got+c]); err != nil {
				return got, pp.ep.translate(err)
			}
			p.Sleep(pp.ep.costs.Memcpy(c))
			got += c
			head += uint32(c)
			n -= c
		}
		if err := pp.ep.writeU32(p, pp.off+pipeHead, head); err != nil {
			return got, err
		}
	}
	return got, nil
}

// CloseWrite marks the producer side closed (consumer sees EOF after
// draining).
func (pp *Pipe) CloseWrite(p *sim.Proc) error {
	return pp.ep.writeU32(p, pp.off+pipeClosed, 1)
}
