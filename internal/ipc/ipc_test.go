package ipc_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"cronus/internal/attest"
	"cronus/internal/enclave"
	"cronus/internal/ipc"
	"cronus/internal/mos"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/testrig"
)

func init() {
	enclave.RegisterCPULibrary(&enclave.CPULibrary{
		Name:  "ipc-test-lib",
		Funcs: map[string]enclave.CPUFunc{"noop": func(*sim.Proc, []byte) ([]byte, error) { return nil, nil }},
	})
}

// ownerEnclave creates a CPU enclave to own shared regions.
func ownerEnclave(t *testing.T, rig *testrig.Rig, p *sim.Proc) *mos.Enclave {
	t.Helper()
	files := map[string][]byte{
		"e.edl": enclave.BuildEDL(enclave.MECallSpec{Name: "noop", Async: false}),
		"e.so":  enclave.BuildCPUImage("ipc-test-lib"),
	}
	man := enclave.NewManifest("cpu", "e.edl", "e.so", files, enclave.Resources{Memory: "4M"})
	dh, err := attest.NewDHKey([]byte("ipc-owner"))
	if err != nil {
		t.Fatal(err)
	}
	_, e, err := rig.CPUOS.EM.Create(p, "ipc-owner", man, files, dh.Pub)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPipeTransfersDataAcrossPartitions(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		e := ownerEnclave(t, rig, p)
		region, err := ipc.NewRegion(p, e, rig.GPUPart, 2)
		if err != nil {
			return err
		}
		defer region.Close()
		// Producer in the CPU partition, consumer in the GPU partition.
		wPipe, err := ipc.NewPipe(region.Owner(), 0, 1024)
		if err != nil {
			return err
		}
		rPipe, err := ipc.NewPipe(region.Peer(), 0, 1024)
		if err != nil {
			return err
		}
		msg := make([]byte, 5000) // forces multiple ring wraps
		for i := range msg {
			msg[i] = byte(i * 13)
		}
		k := rig.K
		var got []byte
		wg := sim.NewWaitGroup(k)
		wg.Add(2)
		k.Spawn("producer", func(wp *sim.Proc) {
			defer wg.Done()
			if err := wPipe.Write(wp, msg); err != nil {
				t.Errorf("write: %v", err)
			}
			wPipe.CloseWrite(wp)
		})
		k.Spawn("consumer", func(rp *sim.Proc) {
			defer wg.Done()
			buf := make([]byte, len(msg))
			n, err := rPipe.Read(rp, buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			got = buf[:n]
		})
		wg.Wait(p)
		if !bytes.Equal(got, msg) {
			t.Errorf("pipe corrupted data: got %d bytes", len(got))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPipeEOFAfterCloseWrite(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		e := ownerEnclave(t, rig, p)
		region, err := ipc.NewRegion(p, e, rig.GPUPart, 1)
		if err != nil {
			return err
		}
		w, _ := ipc.NewPipe(region.Owner(), 0, 256)
		r, _ := ipc.NewPipe(region.Peer(), 0, 256)
		if err := w.Write(p, []byte("tail")); err != nil {
			return err
		}
		w.CloseWrite(p)
		buf := make([]byte, 16)
		n, err := r.Read(p, buf)
		if err != nil {
			return err
		}
		if n != 4 || string(buf[:4]) != "tail" {
			t.Errorf("read %d bytes %q", n, buf[:n])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPipeRejectsOversizedRing(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		e := ownerEnclave(t, rig, p)
		region, err := ipc.NewRegion(p, e, rig.GPUPart, 1)
		if err != nil {
			return err
		}
		if _, err := ipc.NewPipe(region.Owner(), 0, 8192); err == nil {
			t.Error("pipe larger than the region accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		e := ownerEnclave(t, rig, p)
		region, err := ipc.NewRegion(p, e, rig.GPUPart, 1)
		if err != nil {
			return err
		}
		k := rig.K
		counter := 0
		wg := sim.NewWaitGroup(k)
		worker := func(name string, ep *ipc.Endpoint, id uint32) {
			wg.Add(1)
			k.Spawn(name, func(wp *sim.Proc) {
				defer wg.Done()
				l := ipc.NewSpinLock(ep, 64, id)
				for i := 0; i < 50; i++ {
					if err := l.Lock(wp); err != nil {
						t.Errorf("%s lock: %v", name, err)
						return
					}
					// Non-atomic read-modify-write with a yield in the
					// middle: only mutual exclusion protects it.
					v := counter
					wp.Sleep(100)
					counter = v + 1
					if err := l.Unlock(wp); err != nil {
						t.Errorf("%s unlock: %v", name, err)
						return
					}
					wp.Sleep(37)
				}
			})
		}
		worker("cpu-side", region.Owner(), 1)
		worker("gpu-side", region.Peer(), 2)
		wg.Wait(p)
		if counter != 100 {
			t.Errorf("counter = %d, want 100 (lost updates)", counter)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpinLockUnlockValidation(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		e := ownerEnclave(t, rig, p)
		region, err := ipc.NewRegion(p, e, rig.GPUPart, 1)
		if err != nil {
			return err
		}
		a := ipc.NewSpinLock(region.Owner(), 0, 1)
		b := ipc.NewSpinLock(region.Peer(), 0, 2)
		if err := a.Lock(p); err != nil {
			return err
		}
		if err := b.Unlock(p); err == nil {
			t.Error("unlocked a lock held by the other side")
		}
		if ok, _ := b.TryLock(p); ok {
			t.Error("TryLock succeeded on a held lock")
		}
		if err := a.Unlock(p); err != nil {
			return err
		}
		if ok, _ := b.TryLock(p); !ok {
			t.Error("TryLock failed on a free lock")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The A2 attack from §IV-D: a lock is held by a partition that dies; the
// waiter must trap and get an error, not spin forever.
func TestA2DeadlockAvoidedWhenHolderPartitionDies(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		e := ownerEnclave(t, rig, p)
		region, err := ipc.NewRegion(p, e, rig.GPUPart, 1)
		if err != nil {
			return err
		}
		k := rig.K
		// The GPU side takes the lock, then its partition crashes.
		holder := ipc.NewSpinLock(region.Peer(), 0, 2)
		if err := holder.Lock(p); err != nil {
			return err
		}
		var waitErr error
		done := sim.NewSignal(k)
		k.Spawn("waiter", func(wp *sim.Proc) {
			waiter := ipc.NewSpinLock(region.Owner(), 0, 1)
			waitErr = waiter.Lock(wp)
			done.Fire()
		})
		k.Spawn("crash", func(cp *sim.Proc) {
			cp.Sleep(10 * sim.Microsecond)
			rig.SPM.Fail(rig.GPUPart, spm.FailPanic)
		})
		done.Wait(p)
		if !errors.Is(waitErr, ipc.ErrPeerFailed) {
			t.Errorf("waiter got %v, want ErrPeerFailed (A2 defence)", waitErr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Pipe reader blocked on a dead producer's partition also traps (A2 for
// blocking reads).
func TestPipeReaderUnblocksOnPeerFailure(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		e := ownerEnclave(t, rig, p)
		region, err := ipc.NewRegion(p, e, rig.GPUPart, 1)
		if err != nil {
			return err
		}
		r, _ := ipc.NewPipe(region.Owner(), 0, 256)
		k := rig.K
		var readErr error
		done := sim.NewSignal(k)
		k.Spawn("reader", func(rp *sim.Proc) {
			_, readErr = r.Read(rp, make([]byte, 16))
			done.Fire()
		})
		k.Spawn("crash", func(cp *sim.Proc) {
			cp.Sleep(5 * sim.Microsecond)
			rig.SPM.Fail(rig.GPUPart, spm.FailPanic)
		})
		done.Wait(p)
		if !errors.Is(readErr, ipc.ErrPeerFailed) {
			t.Errorf("reader got %v, want ErrPeerFailed", readErr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary write/read chunkings through the pipe preserve the
// byte stream exactly (ring wrap-around included).
func TestPipeChunkingQuickProperty(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		e := ownerEnclave(t, rig, p)
		region, err := ipc.NewRegion(p, e, rig.GPUPart, 1)
		if err != nil {
			return err
		}
		defer region.Close()
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 12; trial++ {
			off := uint64(trial * 320)
			ringBytes := 96 + rng.Intn(64)
			w, err := ipc.NewPipe(region.Owner(), off, ringBytes)
			if err != nil {
				return err
			}
			r, err := ipc.NewPipe(region.Peer(), off, ringBytes)
			if err != nil {
				return err
			}
			msg := make([]byte, 200+rng.Intn(800))
			rng.Read(msg)
			k := rig.K
			var got []byte
			wg := sim.NewWaitGroup(k)
			wg.Add(2)
			k.Spawn("w", func(wp *sim.Proc) {
				defer wg.Done()
				sent := 0
				for sent < len(msg) {
					n := 1 + rng.Intn(100)
					if n > len(msg)-sent {
						n = len(msg) - sent
					}
					if err := w.Write(wp, msg[sent:sent+n]); err != nil {
						t.Errorf("trial %d write: %v", trial, err)
						return
					}
					sent += n
				}
				w.CloseWrite(wp)
			})
			k.Spawn("r", func(rp *sim.Proc) {
				defer wg.Done()
				buf := make([]byte, len(msg))
				n, err := r.Read(rp, buf)
				if err != nil {
					t.Errorf("trial %d read: %v", trial, err)
					return
				}
				got = buf[:n]
			})
			wg.Wait(p)
			if !bytes.Equal(got, msg) {
				t.Fatalf("trial %d: stream corrupted (%d vs %d bytes)", trial, len(got), len(msg))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
