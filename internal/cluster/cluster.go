// Package cluster models a multi-node disaggregated fabric: N simulated
// machines, each booted as its own core.Platform (own SPM, partition pool,
// mOS instances, dispatcher) inside one shared discrete-event kernel, joined
// by a modeled inter-node transport. The transport charges latency,
// serialization, and bandwidth in virtual time from the same cost table that
// prices PCIe on a single machine, so cross-node placement decisions trade
// off against local ones in the same currency.
//
// The package owns three pieces:
//
//   - Fabric: the star-topology gateway↔node links. Per-link latency and
//     GBps are configurable; net-partition and slow-link fault windows are
//     registered before the kernel parallelizes and consulted afterwards as
//     pure functions of (node, time), so the fabric never mutates shared
//     state from a shard goroutine.
//   - Ring: seeded consistent hashing with virtual nodes and bounded-load
//     overflow, used by the serving plane's global placement tier for
//     tenant→node assignment and for re-homing on node loss.
//   - BootNodes: builds N platforms on one kernel and gives each node a
//     disjoint stream-id range so executor logical ids stay unique when the
//     kernel parallelizes.
//
// Determinism contract: node count, like shard count, only changes where
// work runs — never virtual-time outputs for a fixed configuration. All
// fault windows are fixed before Parallelize; cross-node deliveries ride
// sim.Port, so they land in the canonical (time, band, lid, seq) order.
package cluster

import (
	"fmt"

	"cronus/internal/sim"
)

// FaultKind names a node-level fault the fabric can model.
type FaultKind string

// Node-level fault kinds. NodeCrash kills a whole machine (its partition
// pool never comes back); NetPartition makes cross-node sends to the node
// fail typed until a heal instant; SlowLink multiplies the node's transport
// latency for a window.
const (
	NodeCrash    FaultKind = "node-crash"
	NetPartition FaultKind = "net-partition"
	SlowLink     FaultKind = "slow-link"
)

// Fault is one scheduled node-level fault. At and Until are offsets from
// serving start; Until is ignored for NodeCrash (crashes never heal) and
// Mult only applies to SlowLink.
type Fault struct {
	Kind  FaultKind
	Node  int
	At    sim.Duration
	Until sim.Duration
	Mult  float64
}

// String renders the fault deterministically for schedule reports.
func (f Fault) String() string {
	switch f.Kind {
	case NodeCrash:
		return fmt.Sprintf("node-crash n%d at +%s", f.Node, f.At)
	case NetPartition:
		return fmt.Sprintf("net-partition n%d +%s..+%s", f.Node, f.At, f.Until)
	case SlowLink:
		return fmt.Sprintf("slow-link n%d x%g +%s..+%s", f.Node, f.Mult, f.At, f.Until)
	}
	return fmt.Sprintf("%s n%d", f.Kind, f.Node)
}

// NetPartitionedError is the typed error completing a request that was
// dispatched across a partitioned link. It is the cluster-level analogue of
// serve's shed and quarantine errors: callers branch on it with errors.As.
type NetPartitionedError struct {
	Node   int
	Tenant string
}

// Error implements error.
func (e *NetPartitionedError) Error() string {
	return fmt.Sprintf("cluster: link to node n%d partitioned (tenant %s)", e.Node, e.Tenant)
}
