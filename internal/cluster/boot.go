package cluster

import (
	"fmt"

	"cronus/internal/core"
	"cronus/internal/sim"
)

// BootNodes builds n independent platforms — each with its own SPM,
// partition pool, mOS instances, attestation service, and dispatcher — on
// the calling proc's kernel. Node i's dispatcher mints stream ids from base
// i<<16, so executor logical ids (1<<20|streamID) are disjoint across nodes
// and the kernel can parallelize with every executor alive. 16 bits of
// stream space per node bounds a run at 65,535 streams per node, far above
// anything the serving plane opens.
func BootNodes(p *sim.Proc, n int, cfg core.Config) ([]*core.Platform, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	if n > 16 {
		return nil, fmt.Errorf("cluster: at most 16 nodes (stream-id ranges), got %d", n)
	}
	plats := make([]*core.Platform, 0, n)
	for i := 0; i < n; i++ {
		pl, err := core.BuildPlatform(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: boot node %d: %w", i, err)
		}
		pl.D.SetStreamBase(uint64(i) << 16)
		plats = append(plats, pl)
	}
	return plats, nil
}
