package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant-%d", i)
	}
	return keys
}

// TestRingDistributionBound places 1k tenants on 4 nodes with the serving
// plane's default 1.25 bounded-load factor and checks every node stays at
// or under the bound — i.e. max/mean load ≤ 1.25 — and no node is starved.
func TestRingDistributionBound(t *testing.T) {
	const nodes, tenants = 4, 1000
	r, err := NewRing(nodes, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	bound := (tenants*125 + nodes*100 - 1) / (nodes * 100) // ceil(1.25 * tenants / nodes)
	homes := r.Assign(ringKeys(tenants), bound)
	loads := make([]int, nodes)
	for i, n := range homes {
		if n < 0 || n >= nodes {
			t.Fatalf("key %d assigned out-of-range node %d", i, n)
		}
		loads[n]++
	}
	mean := float64(tenants) / float64(nodes)
	for n, l := range loads {
		if l > bound {
			t.Errorf("node %d load %d exceeds bound %d", n, l, bound)
		}
		if l == 0 {
			t.Errorf("node %d starved", n)
		}
		// max/mean ≤ configured bound/mean (1.252 here: the bound ceils).
		if ratio := float64(l) / mean; ratio > float64(bound)/mean {
			t.Errorf("node %d max/mean %.3f exceeds bound/mean %.3f", n, ratio, float64(bound)/mean)
		}
	}
}

// TestRingDeterminism re-assigns the same keys with the same seed (must be
// identical) and with a different seed (must differ somewhere — the seed
// perturbs every hash).
func TestRingDeterminism(t *testing.T) {
	keys := ringKeys(1000)
	r1, _ := NewRing(4, 64, 7)
	r2, _ := NewRing(4, 64, 7)
	a, b := r1.Assign(keys, 0), r2.Assign(keys, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at key %d: %d vs %d", i, a[i], b[i])
		}
	}
	r3, _ := NewRing(4, 64, 8)
	c := r3.Assign(keys, 0)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical assignments")
	}
}

// TestRingMinimalMovementJoin grows the ring from 4 to 5 nodes (same seed,
// unbounded walk) and checks the classic consistent-hashing property: every
// key either keeps its node or moves to the new node — no shuffling among
// the old nodes.
func TestRingMinimalMovementJoin(t *testing.T) {
	keys := ringKeys(1000)
	r4, _ := NewRing(4, 64, 11)
	r5, _ := NewRing(5, 64, 11)
	before, after := r4.Assign(keys, 0), r5.Assign(keys, 0)
	moved := 0
	for i := range keys {
		if before[i] != after[i] {
			moved++
			if after[i] != 4 {
				t.Fatalf("key %d moved %d→%d, not to the joining node 4", i, before[i], after[i])
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the joining node")
	}
	if moved > len(keys)/2 {
		t.Fatalf("join moved %d/%d keys — far beyond its arc share", moved, len(keys))
	}
}

// TestRingMinimalMovementLeave kills one node via the alive mask and checks
// only that node's keys re-home: survivors' keys are untouched because the
// clockwise walk only skips the dead node's points.
func TestRingMinimalMovementLeave(t *testing.T) {
	keys := ringKeys(1000)
	r, _ := NewRing(4, 64, 13)
	before := r.Assign(keys, 0)
	alive := []bool{true, true, false, true}
	moved := 0
	for i, k := range keys {
		n := r.Home(k, alive, nil, 0)
		if before[i] == 2 {
			if n == 2 || n < 0 {
				t.Fatalf("key %d still homed on the dead node (%d)", i, n)
			}
			moved++
		} else if n != before[i] {
			t.Fatalf("survivor key %d moved %d→%d on unrelated node death", i, before[i], n)
		}
	}
	if moved == 0 {
		t.Fatal("dead node owned no keys — distribution degenerate")
	}
}

// TestRingRebalanceScaleCycle models an autoscaler scale-down/scale-up cycle
// on one node: taking the node out moves only its own keys (the survivors
// never shuffle among themselves), and bringing it back restores the original
// assignment exactly — zero residual movement after a full cycle, so elastic
// capacity changes cannot slowly churn tenant homes.
func TestRingRebalanceScaleCycle(t *testing.T) {
	keys := ringKeys(1000)
	r, _ := NewRing(4, 64, 17)
	before := r.Assign(keys, 0)
	for down := 0; down < 4; down++ {
		alive := []bool{true, true, true, true}
		alive[down] = false
		moved := 0
		for i, k := range keys {
			n := r.Home(k, alive, nil, 0)
			if before[i] == down {
				if n == down || n < 0 {
					t.Fatalf("key %d still homed on scaled-down node %d", i, n)
				}
				moved++
			} else if n != before[i] {
				t.Fatalf("node %d scale-down moved unrelated key %d: %d→%d",
					down, i, before[i], n)
			}
		}
		if moved == 0 {
			t.Fatalf("node %d owned no keys — distribution degenerate", down)
		}
		// Scale back up: every key must return to its original home.
		for i, k := range keys {
			if n := r.Home(k, []bool{true, true, true, true}, nil, 0); n != before[i] {
				t.Fatalf("key %d did not return home after node %d scale cycle: %d→%d",
					i, down, before[i], n)
			}
		}
	}
}

// TestRingRebalanceCapacityBound models a capacity change through the
// bounded-load walk: saturating one node's load (its partitions migrated
// away, so it accepts no more tenants) overflows only the keys whose arc
// lands on it — every key homed elsewhere keeps its node, the minimal-
// movement property under capacity change rather than death.
func TestRingRebalanceCapacityBound(t *testing.T) {
	keys := ringKeys(1000)
	r, _ := NewRing(4, 64, 19)
	before := r.Assign(keys, 0)
	const full = 2 // the node whose capacity scaled to zero
	loads := make([]int, 4)
	loads[full] = 1000 // at any positive bound this node is over it
	moved := 0
	for i, k := range keys {
		n := r.Home(k, nil, loads, 1)
		if before[i] == full {
			if n == full {
				t.Fatalf("key %d stayed on the saturated node", i)
			}
			moved++
		} else if n != before[i] {
			t.Fatalf("saturating node %d moved unrelated key %d: %d→%d",
				full, i, before[i], n)
		}
	}
	if moved == 0 {
		t.Fatal("saturated node owned no keys — distribution degenerate")
	}
}

// TestRingAllDead returns -1 only when no node is alive.
func TestRingAllDead(t *testing.T) {
	r, _ := NewRing(3, 8, 1)
	if n := r.Home("x", []bool{false, false, false}, nil, 0); n != -1 {
		t.Fatalf("all-dead ring returned node %d", n)
	}
	if n := r.Home("x", []bool{false, true, false}, nil, 0); n != 1 {
		t.Fatalf("single-survivor ring returned node %d", n)
	}
}
