package cluster

import (
	"fmt"

	"cronus/internal/sim"
)

// window is a half-open [From, To) interval of virtual time.
type window struct {
	from, to sim.Time
}

// slowWindow is a window during which a link's latency is multiplied.
type slowWindow struct {
	window
	mult float64
}

// Fabric models the inter-node interconnect as a star: the serving gateway
// owns one full-duplex link per node. Latency is the one-way propagation
// delay (it must be at least the kernel lookahead so cross-shard sends stay
// legal); GBps is the link bandwidth; SerPerByte is the per-byte
// serialization cost charged on top, playing the role MemcpyPerByte plays
// for local staging.
//
// Fault windows (net-partition, slow-link) are registered while the kernel
// is still sequential and are immutable afterwards: every query is a pure
// function of (node, instant), which is what makes the fabric safe to
// consult from parallel shard execution.
type Fabric struct {
	nodes      int
	Latency    sim.Duration
	GBps       float64
	SerPerByte float64

	parts [][]window
	slows [][]slowWindow
}

// NewFabric builds a fabric for n nodes with the given per-link latency,
// bandwidth, and serialization cost.
func NewFabric(n int, latency sim.Duration, gbps, serPerByte float64) (*Fabric, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: fabric needs at least one node, got %d", n)
	}
	if latency <= 0 {
		return nil, fmt.Errorf("cluster: link latency must be positive, got %s", latency)
	}
	if gbps <= 0 {
		return nil, fmt.Errorf("cluster: link bandwidth must be positive, got %g GB/s", gbps)
	}
	return &Fabric{
		nodes:      n,
		Latency:    latency,
		GBps:       gbps,
		SerPerByte: serPerByte,
		parts:      make([][]window, n),
		slows:      make([][]slowWindow, n),
	}, nil
}

// Nodes returns the node count.
func (f *Fabric) Nodes() int { return f.nodes }

// AddPartition marks the link to node as partitioned over [from, to).
// Must be called before the kernel parallelizes.
func (f *Fabric) AddPartition(node int, from, to sim.Time) {
	f.parts[node] = append(f.parts[node], window{from: from, to: to})
}

// AddSlowLink multiplies the link's transport latency by mult over
// [from, to). Must be called before the kernel parallelizes.
func (f *Fabric) AddSlowLink(node int, mult float64, from, to sim.Time) {
	f.slows[node] = append(f.slows[node], slowWindow{window: window{from: from, to: to}, mult: mult})
}

// PartitionedAt reports whether the link to node is partitioned at the
// instant.
func (f *Fabric) PartitionedAt(node int, at sim.Time) bool {
	for _, w := range f.parts[node] {
		if at >= w.from && at < w.to {
			return true
		}
	}
	return false
}

// HealAt returns the instant the partition covering `at` heals. If
// overlapping windows chain past each other the latest end wins, so a
// flush scheduled at the returned instant always lands on a healed link
// (or re-arms — callers re-check PartitionedAt).
func (f *Fabric) HealAt(node int, at sim.Time) sim.Time {
	heal := at
	for _, w := range f.parts[node] {
		if at >= w.from && at < w.to && w.to > heal {
			heal = w.to
		}
	}
	return heal
}

// SlowMultAt returns the latency multiplier in force on the link to node at
// the instant (1 when no slow-link window covers it; overlapping windows
// compound by taking the largest multiplier).
func (f *Fabric) SlowMultAt(node int, at sim.Time) float64 {
	mult := 1.0
	for _, w := range f.slows[node] {
		if at >= w.from && at < w.to && w.mult > mult {
			mult = w.mult
		}
	}
	return mult
}

// TransferNS prices moving nbytes across the link to node at the instant:
// serialization (SerPerByte · n) plus bandwidth occupancy (n / GBps; one
// GB/s is one byte per ns) plus the slow-link round-trip surcharge
// 2·(mult−1)·Latency. The base propagation delay is NOT included — it is
// carried by the cross-shard port hop so event ordering and cost accounting
// agree on when bytes arrive.
func (f *Fabric) TransferNS(node int, nbytes int, at sim.Time) sim.Duration {
	ns := f.SerPerByte*float64(nbytes) + float64(nbytes)/f.GBps
	if mult := f.SlowMultAt(node, at); mult > 1 {
		ns += 2 * (mult - 1) * float64(f.Latency)
	}
	return sim.Duration(ns)
}
