package cluster

import (
	"fmt"
	"sort"
)

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node int
}

// Ring is a seeded consistent-hash ring with virtual nodes and bounded-load
// overflow. Placement walks the circle clockwise from the key's hash and
// takes the first node that is alive and under the load bound; with the
// bound disabled this is classic consistent hashing, which is what gives
// the minimal-movement property on node join/leave (only keys whose owning
// arc changes move). The seed perturbs every hash, so two rings with
// different seeds produce independent assignments while each individual
// ring is fully deterministic.
type Ring struct {
	nodes  int
	seed   int64
	points []ringPoint
}

// fnv64a is FNV-1a over a string followed by a murmur-style finalizer.
// Raw FNV barely avalanches on short strings that differ only in a trailing
// digit — every vnode of a node would collapse onto one arc — so the mix
// scatters the bits before the ring uses them.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRing builds a ring of nodes×vnodes points. vnodes controls balance
// (64 keeps max/mean load comfortably inside a 1.25 bound at 1k keys).
func NewRing(nodes, vnodes int, seed int64) (*Ring, error) {
	if nodes < 1 || vnodes < 1 {
		return nil, fmt.Errorf("cluster: ring needs nodes>=1 and vnodes>=1, got %d/%d", nodes, vnodes)
	}
	r := &Ring{nodes: nodes, seed: seed, points: make([]ringPoint, 0, nodes*vnodes)}
	for n := 0; n < nodes; n++ {
		for v := 0; v < vnodes; v++ {
			h := fnv64a(fmt.Sprintf("%d/n%d/v%d", seed, n, v))
			r.points = append(r.points, ringPoint{hash: h, node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the node count the ring was built for.
func (r *Ring) Nodes() int { return r.nodes }

// keyHash positions a key on the circle (seed-perturbed, so assignments
// across seeds are independent).
func (r *Ring) keyHash(key string) uint64 {
	return fnv64a(fmt.Sprintf("%d/%s", r.seed, key))
}

// Home walks clockwise from the key's position and returns the first node
// that is alive (alive == nil means all) and, when bound > 0 and loads is
// non-nil, carries fewer than bound keys. If every alive node is at the
// bound the walk relaxes it and returns the first alive node, so a valid
// home always exists while any node lives; -1 means no node is alive.
func (r *Ring) Home(key string, alive []bool, loads []int, bound int) int {
	h := r.keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	firstAlive := -1
	for i := 0; i < len(r.points); i++ {
		pt := r.points[(start+i)%len(r.points)]
		if alive != nil && !alive[pt.node] {
			continue
		}
		if firstAlive < 0 {
			firstAlive = pt.node
		}
		if bound > 0 && loads != nil && loads[pt.node] >= bound {
			continue
		}
		return pt.node
	}
	return firstAlive
}

// Assign places keys in order with all nodes alive, enforcing the load
// bound (0 disables it), and returns the per-key node. Earlier keys claim
// capacity first, so the assignment is deterministic in key order.
func (r *Ring) Assign(keys []string, bound int) []int {
	loads := make([]int, r.nodes)
	homes := make([]int, len(keys))
	for i, k := range keys {
		n := r.Home(k, nil, loads, bound)
		homes[i] = n
		if n >= 0 {
			loads[n]++
		}
	}
	return homes
}
