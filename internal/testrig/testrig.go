// Package testrig assembles a complete simulated CRONUS platform for tests:
// the machine, a booted SPM, one CPU partition, one GPU partition and one
// NPU partition, each running its mOS, plus the attestation service and
// vendor CAs — so package tests exercise realistic end-to-end stacks without
// re-writing boot plumbing.
package testrig

import (
	"fmt"

	"cronus/internal/attest"
	"cronus/internal/gpu"
	"cronus/internal/hw"
	"cronus/internal/mos"
	"cronus/internal/mos/driver"
	"cronus/internal/npu"
	"cronus/internal/sim"
	"cronus/internal/spm"
)

// Rig is a fully booted platform.
type Rig struct {
	K     *sim.Kernel
	M     *hw.Machine
	SPM   *spm.SPM
	Costs *sim.CostModel

	CPUPart *spm.Partition
	GPUPart *spm.Partition
	NPUPart *spm.Partition

	CPUOS *mos.MOS
	GPUOS *mos.MOS
	NPUOS *mos.MOS

	GPU *gpu.Device
	NPU *npu.Device

	Service  *attest.Service
	GPUCA    *attest.VendorCA
	NPUCA    *attest.VendorCA
	Verifier *attest.Verifier
}

// Options tunes the rig.
type Options struct {
	SecureMemBytes uint64
	GPUMemBytes    uint64
	GPUSMs         int
	MPS            bool
	ExtraGPUs      int // additional GPUs gpu1..gpuN with their own partitions
}

// DefaultOptions returns a small-but-realistic rig.
func DefaultOptions() Options {
	return Options{
		SecureMemBytes: 64 << 20,
		GPUMemBytes:    256 << 20,
		GPUSMs:         46,
		MPS:            true,
	}
}

// ExtraGPU holds an additional GPU partition (multi-GPU experiments).
type ExtraGPU struct {
	Part *spm.Partition
	OS   *mos.MOS
	Dev  *gpu.Device
}

// Build boots the platform inside proc p (mOS boot needs simulated time).
// It returns the rig and the extra GPUs, if requested.
func Build(p *sim.Proc, opts Options) (*Rig, []ExtraGPU, error) {
	k := p.Kernel()
	costs := sim.DefaultCosts()
	m := hw.NewMachine(hw.Config{NormalMemBytes: 64 << 20, SecureMemBytes: opts.SecureMemBytes})
	if err := m.Fuses.Burn("platform-rot", []byte("testrig-rot")); err != nil {
		return nil, nil, err
	}

	gpuCfg := gpu.Config{Name: "gpu0", MemBytes: opts.GPUMemBytes, SMs: opts.GPUSMs, CopyEngs: 2, MPS: opts.MPS, KeySeed: "turing/gpu0"}
	gdev := gpu.New(k, costs, gpuCfg)
	gpu.RegisterStdKernels(gdev.SMs())
	if _, err := m.Bus.Attach(gdev, hw.DTNode{
		Name: "gpu0", Compatible: "nvidia,turing", Vendor: "nvidia",
		MMIOBase: 0x1000_0000, MMIOSize: 0x100_0000, IRQ: 32, Secure: true,
	}); err != nil {
		return nil, nil, err
	}
	var extraDevs []*gpu.Device
	for i := 1; i <= opts.ExtraGPUs; i++ {
		name := fmt.Sprintf("gpu%d", i)
		cfg := gpu.Config{Name: name, MemBytes: opts.GPUMemBytes, SMs: opts.GPUSMs, CopyEngs: 2, MPS: opts.MPS, KeySeed: "turing/" + name}
		d := gpu.New(k, costs, cfg)
		if _, err := m.Bus.Attach(d, hw.DTNode{
			Name: name, Compatible: "nvidia,turing", Vendor: "nvidia",
			MMIOBase: 0x1000_0000 + uint64(i)*0x100_0000, MMIOSize: 0x100_0000, IRQ: 32 + i, Secure: true,
		}); err != nil {
			return nil, nil, err
		}
		extraDevs = append(extraDevs, d)
	}

	npuCfg := npu.Config{Name: "npu0", MemBytes: 64 << 20, KeySeed: "vta/npu0"}
	ndev := npu.New(k, costs, npuCfg)
	if _, err := m.Bus.Attach(ndev, hw.DTNode{
		Name: "npu0", Compatible: "vta,fsim", Vendor: "vta",
		MMIOBase: 0x2000_0000, MMIOSize: 0x10_0000, IRQ: 64, Secure: true,
	}); err != nil {
		return nil, nil, err
	}

	s, err := spm.Boot(k, m, costs)
	if err != nil {
		return nil, nil, err
	}

	// Attestation infrastructure.
	svc := attest.NewService([]byte("testrig-service"))
	svc.RegisterPlatform(s.RoTPub())
	cert, err := svc.EndorseAtK(s.RoTPub(), s.AtKPub, s.ProveAtK())
	if err != nil {
		return nil, nil, err
	}
	s.InstallAtKCert(cert)
	gpuCA := attest.NewVendorCA("nvidia")
	npuCA := attest.NewVendorCA("vta")
	verifier := attest.NewVerifier(svc.Identity)
	verifier.TrustVendor("nvidia", gpuCA.Identity)
	verifier.TrustVendor("vta", npuCA.Identity)

	// Partitions and mOSes.
	cpuPart, err := s.CreatePartition("cpu-part", "", []byte("optee-based CPU mOS image"))
	if err != nil {
		return nil, nil, err
	}
	gpuPart, err := s.CreatePartition("gpu-part", "gpu0", []byte("nouveau+gdev GPU mOS image"))
	if err != nil {
		return nil, nil, err
	}
	npuPart, err := s.CreatePartition("npu-part", "npu0", []byte("vta fsim NPU mOS image"))
	if err != nil {
		return nil, nil, err
	}

	cpuOS, err := mos.Boot(p, s, cpuPart, driver.NewCPU(costs))
	if err != nil {
		return nil, nil, err
	}
	gpuOS, err := mos.Boot(p, s, gpuPart, driver.NewGPU(gdev, costs, "nvidia", gpuCA.EndorseDevice(gdev.PubKey())))
	if err != nil {
		return nil, nil, err
	}
	npuOS, err := mos.Boot(p, s, npuPart, driver.NewNPU(ndev, costs, "vta", npuCA.EndorseDevice(ndev.PubKey())))
	if err != nil {
		return nil, nil, err
	}

	var extras []ExtraGPU
	for i, d := range extraDevs {
		part, err := s.CreatePartition(fmt.Sprintf("gpu-part%d", i+1), d.Name(), []byte("nouveau+gdev GPU mOS image"))
		if err != nil {
			return nil, nil, err
		}
		os, err := mos.Boot(p, s, part, driver.NewGPU(d, costs, "nvidia", gpuCA.EndorseDevice(d.PubKey())))
		if err != nil {
			return nil, nil, err
		}
		extras = append(extras, ExtraGPU{Part: part, OS: os, Dev: d})
	}

	return &Rig{
		K: k, M: m, SPM: s, Costs: costs,
		CPUPart: cpuPart, GPUPart: gpuPart, NPUPart: npuPart,
		CPUOS: cpuOS, GPUOS: gpuOS, NPUOS: npuOS,
		GPU: gdev, NPU: ndev,
		Service: svc, GPUCA: gpuCA, NPUCA: npuCA, Verifier: verifier,
	}, extras, nil
}

// Run executes body inside a fresh simulation with a booted rig and runs the
// kernel to completion, returning any simulation error.
func Run(opts Options, body func(rig *Rig, extras []ExtraGPU, p *sim.Proc) error) error {
	k := sim.NewKernel()
	var bodyErr error
	k.Spawn("main", func(p *sim.Proc) {
		// Service loops (sRPC executors, watchdogs) may still be polling
		// when the scenario completes; end the simulation with the body.
		defer k.Stop()
		rig, extras, err := Build(p, opts)
		if err != nil {
			bodyErr = err
			return
		}
		bodyErr = body(rig, extras, p)
	})
	if err := k.Run(); err != nil {
		k.Shutdown()
		return err
	}
	// Unwind leftover service loops (executors, watchdogs) so repeated
	// simulations do not accumulate goroutines.
	k.Shutdown()
	return bodyErr
}
