// Package elastic is the serving plane's elastic-capacity layer: a
// load-driven autoscaler control loop and the planned live-migration state
// machine (DESIGN.md §16). The package itself is pure policy — deterministic
// decision logic over signals the serving plane already collects (queue
// depth, shed rate, tenant p95, SLO burn rate) — while the mechanism
// (quiescing lanes, checkpointing mEnclaves, fabric transfer, exactly-once
// replay) lives in internal/serve, which consumes these types.
//
// The autoscaler has real dynamics on purpose: capacity changes are not
// free. Scaling a partition up charges mOS boot plus re-attestation cost in
// virtual time before the capacity is usable, and scaling down rides the
// migration primitive (drain, checkpoint, transfer, replay, release) plus a
// scrub of the vacated partition. The loop can therefore lag, overshoot and
// oscillate like a real controller, and the chaos harness drives it through
// a forced oscillation (scale-storm) to prove the serving invariants hold
// under rapid capacity change.
package elastic

import (
	"fmt"

	"cronus/internal/sim"
)

// Signals is one control-loop sample of the serving plane's load state.
// Every field is a deterministic function of virtual time, so the decisions
// derived from it replay byte-identically.
type Signals struct {
	// QueueDepth is the total number of requests inside the plane (queued,
	// batched, backlogged or in flight) across all tenants.
	QueueDepth int
	// ShedRate is the cumulative shed/offered ratio across all tenants.
	ShedRate float64
	// P95 is the worst per-tenant p95 latency observed so far.
	P95 sim.Duration
	// BurnRate is the worst per-tenant fast burn-rate signal (0 when the
	// SLO engine is off).
	BurnRate float64
}

// Action is one control-loop decision.
type Action int

const (
	// Hold keeps the current capacity.
	Hold Action = iota
	// ScaleUp re-activates a released partition (boot + attest charged
	// before the capacity is usable).
	ScaleUp
	// ScaleDown migrates a partition's load away and releases it.
	ScaleDown
)

// String renders the action for event logs.
func (a Action) String() string {
	switch a {
	case ScaleUp:
		return "scale-up"
	case ScaleDown:
		return "scale-down"
	}
	return "hold"
}

// Config tunes the autoscaler controller. The zero value of a field selects
// its documented default; LowDepth < 0 disables scale-down entirely (the
// inert configuration chaos baselines use, so an armed-but-idle controller
// never perturbs the run).
type Config struct {
	// Interval is the control-loop tick (default 250µs).
	Interval sim.Duration
	// HighDepth is the queue-depth watermark above which the loop scales up
	// (default 96).
	HighDepth int
	// LowDepth is the queue-depth watermark at or below which the loop may
	// scale down (default 8; negative disables scale-down).
	LowDepth int
	// HighShed is the shed-rate watermark above which the loop scales up
	// (default 0.05).
	HighShed float64
	// P95High, when > 0, scales up once the worst tenant p95 exceeds it.
	P95High sim.Duration
	// BurnHigh, when > 0, scales up once the worst fast burn rate exceeds it.
	BurnHigh float64
	// Cooldown is the minimum virtual time between two capacity actions
	// (default 1ms) — the hysteresis that damps oscillation.
	Cooldown sim.Duration
	// MinActive is the number of partitions per node the loop never scales
	// below (default 1).
	MinActive int
	// BootCost and AttestCost are charged, in virtual time, before a
	// scaled-up partition is usable (defaults 200µs and 50µs).
	BootCost   sim.Duration
	AttestCost sim.Duration
	// ScrubCost is charged after a scale-down releases a partition
	// (default 100µs) — the vacated enclave memory is scrubbed before the
	// capacity could ever be handed elsewhere.
	ScrubCost sim.Duration
	// EnclaveStateBytes sizes the per-enclave state a migration checkpoints
	// on top of the staging arenas (default 256 KiB).
	EnclaveStateBytes int
}

// Defaults fills unset fields with the documented defaults.
func (c *Config) Defaults() {
	if c.Interval <= 0 {
		c.Interval = 250 * sim.Microsecond
	}
	if c.HighDepth <= 0 {
		c.HighDepth = 96
	}
	if c.LowDepth == 0 {
		c.LowDepth = 8
	}
	if c.HighShed <= 0 {
		c.HighShed = 0.05
	}
	if c.Cooldown <= 0 {
		c.Cooldown = sim.Millisecond
	}
	if c.MinActive <= 0 {
		c.MinActive = 1
	}
	if c.BootCost <= 0 {
		c.BootCost = 200 * sim.Microsecond
	}
	if c.AttestCost <= 0 {
		c.AttestCost = 50 * sim.Microsecond
	}
	if c.ScrubCost <= 0 {
		c.ScrubCost = 100 * sim.Microsecond
	}
	if c.EnclaveStateBytes <= 0 {
		c.EnclaveStateBytes = 256 << 10
	}
}

// storm is one forced-oscillation window (the scale-storm chaos kind).
type storm struct {
	from, until sim.Time
}

// Controller is the autoscaler decision core: pure hysteresis logic over
// Signals samples, plus forced-oscillation windows for the chaos harness.
// It holds no serving-plane state, so it is unit-testable in isolation.
type Controller struct {
	cfg      Config
	lastAct  sim.Time
	acted    bool
	storms   []storm
	flipDown bool

	ups, downs, holds uint64
}

// NewController builds a controller with defaults applied.
func NewController(cfg Config) *Controller {
	cfg.Defaults()
	return &Controller{cfg: cfg}
}

// Config returns the defaulted configuration the controller runs with.
func (c *Controller) Config() Config { return c.cfg }

// AddStorm arms one forced-oscillation window: every Decide tick inside
// [from, until) alternates ScaleDown/ScaleUp regardless of the signals,
// bypassing the cooldown — the scale-storm chaos kind.
func (c *Controller) AddStorm(from, until sim.Time) {
	c.storms = append(c.storms, storm{from: from, until: until})
}

// StormActive reports whether a forced-oscillation window covers now.
func (c *Controller) StormActive(now sim.Time) bool {
	for _, s := range c.storms {
		if now >= s.from && now < s.until {
			return true
		}
	}
	return false
}

// Decide evaluates one control tick: scale up when any high watermark is
// breached, scale down when the plane is comfortably idle, hold otherwise.
// Both actions are gated by the cooldown. Inside a storm window the decision
// alternates down/up every tick, cooldown ignored.
func (c *Controller) Decide(now sim.Time, s Signals) Action {
	if c.StormActive(now) {
		c.flipDown = !c.flipDown
		if c.flipDown {
			return c.record(now, ScaleDown)
		}
		return c.record(now, ScaleUp)
	}
	up := s.QueueDepth > c.cfg.HighDepth ||
		s.ShedRate > c.cfg.HighShed ||
		(c.cfg.P95High > 0 && s.P95 > c.cfg.P95High) ||
		(c.cfg.BurnHigh > 0 && s.BurnRate > c.cfg.BurnHigh)
	down := !up && c.cfg.LowDepth >= 0 &&
		s.QueueDepth <= c.cfg.LowDepth && s.ShedRate <= c.cfg.HighShed/2
	act := Hold
	switch {
	case up:
		act = ScaleUp
	case down:
		act = ScaleDown
	}
	if act != Hold && c.acted && sim.Duration(now-c.lastAct) < c.cfg.Cooldown {
		act = Hold // hysteresis: too soon after the last capacity change
	}
	return c.record(now, act)
}

// record updates the action counters and the cooldown clock.
func (c *Controller) record(now sim.Time, act Action) Action {
	switch act {
	case ScaleUp:
		c.ups++
	case ScaleDown:
		c.downs++
	default:
		c.holds++
		return act
	}
	c.lastAct = now
	c.acted = true
	return act
}

// Counts returns the cumulative (scale-up, scale-down, hold) decision counts.
func (c *Controller) Counts() (ups, downs, holds uint64) {
	return c.ups, c.downs, c.holds
}

// Endpoint names one (node, partition) slot of the serving pool — the source
// or destination of a migration. Node is 0 on a single-node plane.
type Endpoint struct {
	Node int
	Part int
}

// String renders the endpoint in the serving plane's partition namespace.
func (e Endpoint) String() string {
	return fmt.Sprintf("n%d/gpu-part%d", e.Node, e.Part)
}
