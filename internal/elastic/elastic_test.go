package elastic

import (
	"testing"

	"cronus/internal/sim"
)

func TestDefaults(t *testing.T) {
	var c Config
	c.Defaults()
	if c.Interval != 250*sim.Microsecond || c.HighDepth != 96 || c.LowDepth != 8 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.MinActive != 1 || c.BootCost != 200*sim.Microsecond || c.EnclaveStateBytes != 256<<10 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	// Negative LowDepth (scale-down disabled) must survive defaulting.
	c2 := Config{LowDepth: -1}
	c2.Defaults()
	if c2.LowDepth != -1 {
		t.Fatalf("LowDepth -1 overwritten to %d", c2.LowDepth)
	}
}

func TestDecideWatermarks(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    Signals
		want Action
	}{
		{"idle scales down", Signals{QueueDepth: 2}, ScaleDown},
		{"nominal holds", Signals{QueueDepth: 50}, Hold},
		{"deep queue scales up", Signals{QueueDepth: 200}, ScaleUp},
		{"shedding scales up", Signals{QueueDepth: 50, ShedRate: 0.2}, ScaleUp},
		{"slow p95 scales up", Signals{QueueDepth: 50, P95: 2 * sim.Millisecond}, ScaleUp},
		{"burn scales up", Signals{QueueDepth: 50, BurnRate: 20}, ScaleUp},
	} {
		c := NewController(Config{P95High: sim.Millisecond, BurnHigh: 10})
		if got := c.Decide(1000, tc.s); got != tc.want {
			t.Errorf("%s: Decide = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestDecideCooldown(t *testing.T) {
	c := NewController(Config{Cooldown: sim.Millisecond})
	hot := Signals{QueueDepth: 1000}
	if got := c.Decide(0, hot); got != ScaleUp {
		t.Fatalf("first decision = %v, want scale-up", got)
	}
	if got := c.Decide(sim.Time(100*sim.Microsecond), hot); got != Hold {
		t.Fatalf("decision inside cooldown = %v, want hold", got)
	}
	if got := c.Decide(sim.Time(2*sim.Millisecond), hot); got != ScaleUp {
		t.Fatalf("decision past cooldown = %v, want scale-up", got)
	}
	ups, downs, holds := c.Counts()
	if ups != 2 || downs != 0 || holds != 1 {
		t.Fatalf("Counts = %d/%d/%d, want 2/0/1", ups, downs, holds)
	}
}

func TestDecideScaleDownDisabled(t *testing.T) {
	c := NewController(Config{LowDepth: -1})
	if got := c.Decide(1000, Signals{}); got != Hold {
		t.Fatalf("Decide with LowDepth -1 = %v, want hold", got)
	}
}

func TestStormAlternates(t *testing.T) {
	c := NewController(Config{Cooldown: sim.Second}) // cooldown must not gate storms
	c.AddStorm(100, 200)
	if c.StormActive(50) || !c.StormActive(150) || c.StormActive(200) {
		t.Fatal("StormActive window wrong")
	}
	want := []Action{ScaleDown, ScaleUp, ScaleDown, ScaleUp}
	for i, w := range want {
		if got := c.Decide(sim.Time(100+i), Signals{QueueDepth: 50}); got != w {
			t.Fatalf("storm tick %d = %v, want %v", i, got, w)
		}
	}
	// Outside the window the nominal signal holds again.
	if got := c.Decide(5000, Signals{QueueDepth: 50}); got != Hold {
		t.Fatalf("post-storm decision = %v, want hold", got)
	}
}

func TestActionString(t *testing.T) {
	if Hold.String() != "hold" || ScaleUp.String() != "scale-up" || ScaleDown.String() != "scale-down" {
		t.Fatal("Action.String drifted")
	}
}

func TestEndpointString(t *testing.T) {
	if got := (Endpoint{Node: 1, Part: 3}).String(); got != "n1/gpu-part3" {
		t.Fatalf("Endpoint.String = %q", got)
	}
}
