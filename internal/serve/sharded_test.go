package serve_test

import (
	"testing"

	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/tvm"
	"cronus/internal/workload/rodinia"
)

// shardedConfig is the common sharded-plane test load: two open-loop
// inference tenants over two partitions, heavy enough that batching and
// both lanes engage.
func shardedConfig() serve.Config {
	return serve.Config{
		Seed:          23,
		Window:        4 * sim.Millisecond,
		Policy:        serve.RoundRobin,
		MaxBatch:      4,
		BatchWindow:   40 * sim.Microsecond,
		GPUPartitions: 2,
		GPUFlopsPerNs: 400,
		Shards:        2,
		KeepRequests:  true,
		Tenants: []serve.TenantSpec{
			{Name: "alpha", Arrival: serve.FixedRate, Rate: 60000, QueueCap: 64,
				Mix: []serve.WorkClass{{Name: "resnet50", Graph: tvm.ResNet50()}}},
			{Name: "beta", Arrival: serve.Poisson, Rate: 30000, QueueCap: 64,
				Mix: []serve.WorkClass{{Name: "resnet18", Graph: tvm.ResNet18()}}},
		},
	}
}

// requestsDigest renders the per-request records into a comparable string.
func requestsDigest(t *testing.T, res *serve.Result) string {
	t.Helper()
	out := ""
	for _, r := range res.Requests {
		out += r.Tenant + "/" + r.Class
		out += string(rune('0' + r.Replays))
		out += sim.Duration(r.Arrived).String() + "+" + r.Latency().String() + ";"
	}
	return out
}

// TestShardedDeterminism pins the canonical-total-order claim: the same
// config must produce byte-identical reports and per-request records across
// shard counts and with the parallel dispatchers on or off.
func TestShardedDeterminism(t *testing.T) {
	base := shardedConfig()
	ref, err := serve.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	refReport, refReqs := ref.Report(), requestsDigest(t, ref)
	if ref.Tenants[0].Completed == 0 || ref.Tenants[1].Completed == 0 {
		t.Fatalf("sharded run served nothing:\n%s", refReport)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*serve.Config)
	}{
		{"rerun", func(c *serve.Config) {}},
		{"shards=4", func(c *serve.Config) { c.Shards = 4 }},
		{"shards=8", func(c *serve.Config) { c.Shards = 8 }},
		{"parallel", func(c *serve.Config) { c.Parallel = true }},
		{"shards=4-parallel", func(c *serve.Config) { c.Shards = 4; c.Parallel = true }},
	} {
		cfg := shardedConfig()
		tc.mutate(&cfg)
		res, err := serve.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := res.Report(); got != refReport {
			t.Errorf("%s: report diverged\n--- ref ---\n%s--- got ---\n%s", tc.name, refReport, got)
		}
		if got := requestsDigest(t, res); got != refReqs {
			t.Errorf("%s: per-request records diverged", tc.name)
		}
	}
}

// TestShardedMatchesClassicAccounting runs the same config on both planes:
// the arrival timeline is shared (same seeds, same draw order), and under an
// unsaturated load neither plane sheds, so the offered / admitted /
// completed columns must agree exactly. Latency may differ — the planes
// model the data path differently — but conservation must hold on both.
func TestShardedMatchesClassicAccounting(t *testing.T) {
	cfg := shardedConfig()
	cfg.Shards = 0
	classic, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg = shardedConfig()
	sharded, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range classic.Tenants {
		c, s := classic.Tenants[i], sharded.Tenants[i]
		if c.Offered != s.Offered || c.Admitted != s.Admitted || c.Completed != s.Completed {
			t.Errorf("tenant %s: classic offered/admitted/completed %d/%d/%d, sharded %d/%d/%d",
				c.Name, c.Offered, c.Admitted, c.Completed, s.Offered, s.Admitted, s.Completed)
		}
		if s.Admitted != s.Completed+s.Failed {
			t.Errorf("tenant %s: sharded conservation broken: admitted %d != completed %d + failed %d",
				s.Name, s.Admitted, s.Completed, s.Failed)
		}
		if s.Duplicates != 0 {
			t.Errorf("tenant %s: %d duplicate completions", s.Name, s.Duplicates)
		}
	}
}

// TestShardedFailover injects the mid-run partition panic on the sharded
// plane. DeviceAffinity pins tenant alpha to the failing partition and a
// slow device keeps its lanes saturated, so the failure always catches
// batches in flight: they must replay (not vanish, not duplicate), the
// pinned tenant must drain through the recovery + backlog-flush path, the
// survivor must be untouched, and the report must stay byte-identical
// across shard counts and parallel mode.
func TestShardedFailover(t *testing.T) {
	mk := func(shards int, parallel bool) serve.Config {
		cfg := shardedConfig()
		cfg.Policy = serve.DeviceAffinity
		cfg.GPUFlopsPerNs = 100
		cfg.Shards = shards
		cfg.Parallel = parallel
		cfg.FailAt = 1500 * sim.Microsecond
		cfg.FailPartition = "gpu-part0"
		return cfg
	}
	ref, err := serve.Run(mk(2, false))
	if err != nil {
		t.Fatal(err)
	}
	total := func(res *serve.Result) (admitted, completed, failed, replayed, dups uint64) {
		for _, tr := range res.Tenants {
			admitted += tr.Admitted
			completed += tr.Completed
			failed += tr.Failed
			replayed += tr.Replayed
			dups += tr.Duplicates
		}
		return
	}
	admitted, completed, failed, replayed, dups := total(ref)
	if admitted != completed+failed {
		t.Errorf("conservation broken: admitted %d != completed %d + failed %d", admitted, completed, failed)
	}
	if replayed == 0 {
		t.Errorf("no replays recorded across a mid-run partition failure:\n%s", ref.Report())
	}
	if dups != 0 {
		t.Errorf("%d duplicate completions", dups)
	}
	if len(ref.Failures) != 1 || !ref.Failures[0].Recovered {
		t.Errorf("expected one recovered failure, got %+v", ref.Failures)
	}
	if surv := ref.Tenant("beta"); surv == nil || surv.Replayed != 0 || surv.Failed != 0 {
		t.Errorf("survivor tenant perturbed by the failover: %+v", surv)
	}
	refReport, refReqs := ref.Report(), requestsDigest(t, ref)
	for _, tc := range []struct {
		name     string
		shards   int
		parallel bool
	}{
		{"shards=4", 4, false},
		{"parallel", 2, true},
		{"shards=4-parallel", 4, true},
	} {
		res, err := serve.Run(mk(tc.shards, tc.parallel))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := res.Report(); got != refReport {
			t.Errorf("%s: faulted report diverged\n--- ref ---\n%s--- got ---\n%s", tc.name, refReport, got)
		}
		if got := requestsDigest(t, res); got != refReqs {
			t.Errorf("%s: faulted per-request records diverged", tc.name)
		}
	}
}

// TestShardedClosedLoop exercises the closed-loop arrival process on the
// sharded plane: synchronous clients must make progress and drain cleanly.
func TestShardedClosedLoop(t *testing.T) {
	cfg := shardedConfig()
	cfg.Tenants = append(cfg.Tenants, serve.TenantSpec{
		Name: "sync", Arrival: serve.ClosedLoop, Clients: 3, Think: 50 * sim.Microsecond,
		QueueCap: 16,
		Mix:      []serve.WorkClass{{Name: "resnet50", Graph: tvm.ResNet50()}},
	})
	res, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tenant("sync")
	if tr == nil || tr.Completed == 0 {
		t.Fatalf("closed-loop tenant served nothing:\n%s", res.Report())
	}
	if tr.Admitted != tr.Completed+tr.Failed {
		t.Errorf("closed-loop conservation broken: admitted %d != completed %d + failed %d",
			tr.Admitted, tr.Completed, tr.Failed)
	}
}

// TestShardsOneIsClassic pins the compatibility contract: Shards values
// below 2 must take the classic plane untouched, byte-identically.
func TestShardsOneIsClassic(t *testing.T) {
	cfg := shardedConfig()
	cfg.Shards = 0
	cfg.FailAt = 1500 * sim.Microsecond
	a, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 1
	b, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report() != b.Report() {
		t.Errorf("Shards=1 diverged from Shards=0\n--- 0 ---\n%s--- 1 ---\n%s", a.Report(), b.Report())
	}
	if requestsDigest(t, a) != requestsDigest(t, b) {
		t.Errorf("Shards=1 per-request records diverged from Shards=0")
	}
}

// TestShardedValidation pins the typed refusals of the sharded plane.
func TestShardedValidation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*serve.Config)
	}{
		{"trace", func(c *serve.Config) { c.Trace = true }},
		{"hang-report", func(c *serve.Config) { c.HangReportAfter = 2 }},
		{"bench-class", func(c *serve.Config) {
			nn := rodinia.NN()
			c.Tenants[0].Mix = []serve.WorkClass{{Name: "nn", Bench: &nn}}
		}},
	} {
		cfg := shardedConfig()
		tc.mutate(&cfg)
		if _, err := serve.Run(cfg); err == nil {
			t.Errorf("%s: sharded config accepted, want a validation error", tc.name)
		}
	}
	cfg := shardedConfig()
	cfg.Shards = 0
	cfg.Parallel = true
	if _, err := serve.Run(cfg); err == nil {
		t.Errorf("Parallel without Shards accepted, want a validation error")
	}
}

// TestShardedBatchCap verifies the batch-8 window actually fills batches on
// the sharded plane: at 90k fixed-rate the eighth arrival lands 77.8µs after
// the first, so an 80µs window must yield an average batch near 8.
func TestShardedBatchCap(t *testing.T) {
	cfg := shardedConfig()
	cfg.Tenants = cfg.Tenants[:1]
	cfg.Tenants[0].Rate = 90000
	cfg.GPUPartitions = 1
	cfg.MaxBatch = 8
	cfg.BatchWindow = 80 * sim.Microsecond
	res, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ab := res.AvgBatch(); ab < 7.5 {
		t.Errorf("avg batch %.2f, want >= 7.5 (the 80µs window must admit 8 arrivals at 90k req/s)", ab)
	}
}

// TestShardedRequestTimeout pins the lane-deadline model (PR 8): a
// RequestTimeout smaller than every batch's service time makes every request
// resolve as a watchdog timeout with the classic accounting — Attempts =
// MaxRetries+1, timeouts counted per attempt, retries per attempt after the
// first — while conservation still holds.
func TestShardedRequestTimeout(t *testing.T) {
	cfg := shardedConfig()
	cfg.RequestTimeout = 10 * sim.Microsecond // far below resnet service time
	cfg.MaxRetries = 2
	cfg.RetryBackoff = 5 * sim.Microsecond
	res, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tenants {
		if tr.Completed != 0 {
			t.Errorf("tenant %s: %d requests completed under an unreachable timeout", tr.Name, tr.Completed)
		}
		if tr.Admitted != tr.Failed {
			t.Errorf("tenant %s: conservation broken: admitted %d != failed %d", tr.Name, tr.Admitted, tr.Failed)
		}
		if tr.Admitted > 0 && tr.Timeouts == 0 {
			t.Errorf("tenant %s: no timeouts counted", tr.Name)
		}
	}
	attempts := cfg.MaxRetries + 1
	for _, r := range res.Requests {
		te, ok := r.Err.(*serve.TimeoutError)
		if !ok {
			t.Fatalf("request %d: error %v, want *TimeoutError", r.ID, r.Err)
		}
		if te.Attempts != attempts {
			t.Fatalf("request %d: %d attempts, want %d", r.ID, te.Attempts, attempts)
		}
		if r.Retries != attempts-1 {
			t.Fatalf("request %d: %d retries, want %d", r.ID, r.Retries, attempts-1)
		}
	}
}

// TestShardedTimeoutInert pins the other half of the lane-deadline model: a
// RequestTimeout no batch ever exceeds must leave the run byte-identical to
// the same config without one.
func TestShardedTimeoutInert(t *testing.T) {
	base := shardedConfig()
	ref, err := serve.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := shardedConfig()
	cfg.RequestTimeout = 10 * sim.Second // no lane ever serves this long
	res, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Report() != res.Report() {
		t.Errorf("an unreachable RequestTimeout changed the report\n--- without ---\n%s--- with ---\n%s",
			ref.Report(), res.Report())
	}
	if requestsDigest(t, ref) != requestsDigest(t, res) {
		t.Errorf("an unreachable RequestTimeout changed the per-request records")
	}
}
