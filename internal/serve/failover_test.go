package serve_test

import (
	"bytes"
	"testing"

	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/tvm"
)

// failoverConfig pins two tenants to distinct partitions (device-affinity:
// tenant index mod pool size) and proceed-traps the victim's partition in
// the middle of the load window.
func failoverConfig(seed int64) serve.Config {
	return serve.Config{
		Seed:          seed,
		Window:        30 * sim.Millisecond,
		Policy:        serve.DeviceAffinity,
		MaxBatch:      4,
		BatchWindow:   50 * sim.Microsecond,
		GPUPartitions: 2,
		KeepRequests:  true,
		FailAt:        11 * sim.Millisecond,
		FailPartition: "gpu-part0",
		Tenants: []serve.TenantSpec{
			{
				// Tenant 0 -> gpu-part0: the victim. ~0.8 utilization, so
				// the injection lands mid-request.
				Name: "victim", Arrival: serve.FixedRate, Rate: 7000, QueueCap: 256,
				Mix: []serve.WorkClass{{Name: "resnet18", Graph: tvm.ResNet18()}},
			},
			{
				// Tenant 1 -> gpu-part1: the survivor.
				Name: "survivor", Arrival: serve.FixedRate, Rate: 2000, QueueCap: 256,
				Mix: []serve.WorkClass{{Name: "resnet18", Graph: tvm.ResNet18()}},
			},
		},
	}
}

// TestConcurrentFailover is the ISSUE 3 failover acceptance: with two
// tenants on distinct partitions and a FailPanic injected mid-request on
// one of them, the survivor's requests complete untouched while the
// victim's in-flight requests are replayed exactly once — zero lost, zero
// duplicated in both tenants.
func TestConcurrentFailover(t *testing.T) {
	res, err := serve.Run(failoverConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, res)

	if len(res.Failures) != 1 {
		t.Fatalf("failures recorded = %d, want 1", len(res.Failures))
	}
	f := res.Failures[0]
	if f.Partition != "gpu-part0" {
		t.Errorf("failed partition = %s, want gpu-part0", f.Partition)
	}
	if !f.Recovered || f.DowntimeNS <= 0 {
		t.Errorf("no recovery recorded: recovered=%v downtime=%v", f.Recovered, f.DowntimeNS)
	}

	victim := res.Tenant("victim")
	survivor := res.Tenant("survivor")

	// Survivor: completely untouched — every admitted request completed,
	// none failed, none replayed.
	if survivor.Completed != survivor.Admitted || survivor.Failed != 0 {
		t.Errorf("survivor lost requests: admitted=%d completed=%d failed=%d",
			survivor.Admitted, survivor.Completed, survivor.Failed)
	}
	if survivor.Replayed != 0 {
		t.Errorf("survivor had %d replays, want 0", survivor.Replayed)
	}

	// Victim: zero lost (everything admitted completed after recovery),
	// zero duplicated, and the requests caught by the failure were
	// replayed exactly once.
	if victim.Completed != victim.Admitted || victim.Failed != 0 {
		t.Errorf("victim lost requests: admitted=%d completed=%d failed=%d",
			victim.Admitted, victim.Completed, victim.Failed)
	}
	if victim.Replayed == 0 {
		t.Error("victim recorded no replays; the injected failure caught nothing in flight")
	}

	// Per-request invariants from the retained records.
	for _, r := range res.Requests {
		if r.Done == 0 {
			t.Errorf("request %d (%s) never completed", r.ID, r.Tenant)
		}
		if r.Err != nil {
			t.Errorf("request %d (%s) failed: %v", r.ID, r.Tenant, r.Err)
		}
		switch r.Tenant {
		case "survivor":
			if r.Replays != 0 {
				t.Errorf("survivor request %d replayed %d times", r.ID, r.Replays)
			}
		case "victim":
			if r.Replays > 1 {
				t.Errorf("victim request %d replayed %d times, want at most once", r.ID, r.Replays)
			}
		}
	}

	// The single injected failure must replay at least the one batch that
	// was mid-request, but with one failure no request can replay twice —
	// "exactly once" for everything the failure caught.
	replayedReqs := 0
	for _, r := range res.Requests {
		if r.Replays == 1 {
			replayedReqs++
		}
	}
	if uint64(replayedReqs) != victim.Replayed {
		t.Errorf("replay accounting mismatch: %d requests with Replays=1, tenant counter %d",
			replayedReqs, victim.Replayed)
	}
}

// TestFailoverDeterministic: the failure-injected run is as deterministic
// as the healthy one — recovery timing is virtual-time too.
func TestFailoverDeterministic(t *testing.T) {
	a, err := serve.Run(failoverConfig(33))
	if err != nil {
		t.Fatal(err)
	}
	b, err := serve.Run(failoverConfig(33))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(a.Report()), []byte(b.Report())) {
		t.Fatalf("failover reports differ:\n--- A ---\n%s--- B ---\n%s", a.Report(), b.Report())
	}
}

// TestFailoverSharedPool: least-outstanding over a shared two-partition
// pool — both tenants have replicas on the failed partition, work routes
// around it during the outage, and still nothing is lost or duplicated.
func TestFailoverSharedPool(t *testing.T) {
	cfg := failoverConfig(55)
	cfg.Policy = serve.LeastOutstanding
	res, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, res)
	for _, tr := range res.Tenants {
		if tr.Completed != tr.Admitted || tr.Failed != 0 {
			t.Errorf("%s: admitted=%d completed=%d failed=%d",
				tr.Name, tr.Admitted, tr.Completed, tr.Failed)
		}
	}
}
