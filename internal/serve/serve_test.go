package serve_test

import (
	"bytes"
	"errors"
	"testing"

	"cronus/internal/core"
	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/tvm"
	"cronus/internal/workload/rodinia"
)

// twoTenantConfig is the shared base load: two Poisson tenants on a pool of
// two GPU partitions, inference-heavy with a sprinkle of general compute.
func twoTenantConfig(seed int64) serve.Config {
	nn := rodinia.NN()
	return serve.Config{
		Seed:          seed,
		Window:        20 * sim.Millisecond,
		Policy:        serve.LeastOutstanding,
		MaxBatch:      4,
		BatchWindow:   50 * sim.Microsecond,
		GPUPartitions: 2,
		KeepRequests:  true,
		Tenants: []serve.TenantSpec{
			{
				Name: "alpha", Arrival: serve.Poisson, Rate: 4000,
				Mix: []serve.WorkClass{
					{Name: "resnet18", Weight: 9, Graph: tvm.ResNet18()},
					{Name: "nn", Weight: 1, Bench: &nn},
				},
			},
			{
				Name: "beta", Arrival: serve.FixedRate, Rate: 800,
				Mix: []serve.WorkClass{
					{Name: "yolov3", Weight: 1, Graph: tvm.YoloV3()},
				},
			},
		},
	}
}

// checkAccounting asserts the conservation law every run must satisfy:
// offered = admitted + shed, admitted = completed + failed, no duplicates.
func checkAccounting(t *testing.T, res *serve.Result) {
	t.Helper()
	for _, tr := range res.Tenants {
		if tr.Offered != tr.Admitted+tr.Shed {
			t.Errorf("%s: offered %d != admitted %d + shed %d", tr.Name, tr.Offered, tr.Admitted, tr.Shed)
		}
		if tr.Admitted != tr.Completed+tr.Failed {
			t.Errorf("%s: admitted %d != completed %d + failed %d (lost requests)",
				tr.Name, tr.Admitted, tr.Completed, tr.Failed)
		}
		if tr.Duplicates != 0 {
			t.Errorf("%s: %d duplicate completions", tr.Name, tr.Duplicates)
		}
	}
}

func TestServeCompletesAllAdmitted(t *testing.T) {
	res, err := serve.Run(twoTenantConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, res)
	for _, tr := range res.Tenants {
		if tr.Admitted == 0 {
			t.Errorf("%s admitted no requests", tr.Name)
		}
		if tr.Failed != 0 {
			t.Errorf("%s: %d failed requests", tr.Name, tr.Failed)
		}
		if tr.P50NS <= 0 || tr.P95NS < tr.P50NS || tr.P99NS < tr.P95NS {
			t.Errorf("%s: non-monotone quantiles p50=%v p95=%v p99=%v",
				tr.Name, tr.P50NS, tr.P95NS, tr.P99NS)
		}
	}
	if res.Batches == 0 {
		t.Error("no batches placed")
	}
}

// TestServeDeterministic: same seed, byte-identical reports and request
// timelines across two full runs — the plane's determinism contract.
func TestServeDeterministic(t *testing.T) {
	a, err := serve.Run(twoTenantConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := serve.Run(twoTenantConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Report(), b.Report()
	if !bytes.Equal([]byte(ra), []byte(rb)) {
		t.Fatalf("reports differ across identical runs:\n--- run A ---\n%s--- run B ---\n%s", ra, rb)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("request counts differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		x, y := a.Requests[i], b.Requests[i]
		if x.ID != y.ID || x.Tenant != y.Tenant || x.Class != y.Class ||
			x.Arrived != y.Arrived || x.Done != y.Done || x.Replays != y.Replays {
			t.Fatalf("request %d differs: %+v vs %+v", i, x, y)
		}
	}
	// A different seed must actually change the timeline (the RNG is wired
	// through, not ignored).
	c, err := serve.Run(twoTenantConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal([]byte(ra), []byte(c.Report())) {
		t.Error("different seeds produced identical reports")
	}
}

// saturationConfig offers one tenant more load than an unbatched replica
// can serve, so batching amortization is visible in p50 latency. The high
// FLOPs rate makes per-item device work (~7µs) comparable to the fixed
// per-batch overhead (sRPC round trips, kernel dispatch), which is exactly
// the regime dynamic batching exists for.
func saturationConfig(maxBatch int) serve.Config {
	return serve.Config{
		Seed:          3,
		Window:        20 * sim.Millisecond,
		Policy:        serve.RoundRobin,
		MaxBatch:      maxBatch,
		BatchWindow:   40 * sim.Microsecond,
		GPUPartitions: 1,
		GPUFlopsPerNs: 400,
		Tenants: []serve.TenantSpec{
			{
				Name: "sat", Arrival: serve.FixedRate, Rate: 90000, QueueCap: 64,
				Mix: []serve.WorkClass{{Name: "resnet50", Graph: tvm.ResNet50()}},
			},
		},
	}
}

// TestBatchingAmortizes: at the same offered load, batched p50 per-request
// latency must be strictly below unbatched p50 (ISSUE 3 acceptance).
func TestBatchingAmortizes(t *testing.T) {
	unbatched, err := serve.Run(saturationConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	batched, err := serve.Run(saturationConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	u, b := unbatched.Tenants[0], batched.Tenants[0]
	if u.Completed == 0 || b.Completed == 0 {
		t.Fatalf("no completions: unbatched %d, batched %d", u.Completed, b.Completed)
	}
	if b.P50NS >= u.P50NS {
		t.Errorf("batched p50 %.0fns not below unbatched p50 %.0fns", b.P50NS, u.P50NS)
	}
	if batched.AvgBatch() <= 1.5 {
		t.Errorf("saturated run barely batched: avg %.2f", batched.AvgBatch())
	}
	if b.GoodputRPS <= u.GoodputRPS {
		t.Errorf("batched goodput %.0f/s not above unbatched %.0f/s", b.GoodputRPS, u.GoodputRPS)
	}
}

// TestAdmissionShedsTyped: beyond the queue bound, submissions shed with a
// typed *OverloadError, and the shed shows up in the result.
func TestAdmissionShedsTyped(t *testing.T) {
	cfg := serve.Config{
		Seed:          5,
		Window:        10 * sim.Millisecond,
		MaxBatch:      2,
		GPUPartitions: 1,
		Tenants: []serve.TenantSpec{
			{
				Name: "burst", Arrival: serve.FixedRate, Rate: 40000, QueueCap: 8,
				Mix: []serve.WorkClass{{Name: "yolov3", Graph: tvm.YoloV3()}},
			},
		},
	}
	res, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, res)
	tr := res.Tenants[0]
	if tr.Shed == 0 {
		t.Fatal("overloaded tenant shed nothing")
	}
	if tr.ShedRate <= 0 {
		t.Errorf("shed rate not reported: %v", tr.ShedRate)
	}
	// The typed error is visible to direct submitters.
	var oe *serve.OverloadError
	if !errors.As(&serve.OverloadError{Tenant: "x", Cap: 1}, &oe) {
		t.Fatal("OverloadError does not satisfy errors.As")
	}
	if oe.Error() == "" {
		t.Error("empty OverloadError message")
	}
}

// TestPolicies: every placement policy completes all admitted requests, and
// round-robin/least-outstanding actually spread across the pool.
func TestPolicies(t *testing.T) {
	for _, pol := range []serve.Policy{serve.RoundRobin, serve.LeastOutstanding, serve.DeviceAffinity} {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			cfg := twoTenantConfig(11)
			cfg.Policy = pol
			res, err := serve.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkAccounting(t, res)
			for _, tr := range res.Tenants {
				if tr.Completed == 0 {
					t.Errorf("%s completed nothing under %s", tr.Name, pol)
				}
			}
		})
	}
}

// TestClosedLoop: synchronous clients with think time never overrun the
// plane — sheds stay zero and every request completes.
func TestClosedLoop(t *testing.T) {
	cfg := serve.Config{
		Seed:          9,
		Window:        10 * sim.Millisecond,
		MaxBatch:      4,
		GPUPartitions: 1,
		Tenants: []serve.TenantSpec{
			{
				Name: "sync", Arrival: serve.ClosedLoop, Clients: 4, Think: 200 * sim.Microsecond,
				Mix: []serve.WorkClass{{Name: "resnet18", Graph: tvm.ResNet18()}},
			},
		},
	}
	res, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, res)
	tr := res.Tenants[0]
	if tr.Admitted == 0 {
		t.Fatal("closed-loop tenant admitted nothing")
	}
	if tr.Shed != 0 {
		t.Errorf("closed-loop with 4 clients shed %d requests", tr.Shed)
	}
}

// TestServeBadConfigs: constructor-level validation errors surface.
func TestServeBadConfigs(t *testing.T) {
	if _, err := serve.Run(serve.Config{}); err == nil {
		t.Error("no tenants: want error")
	}
	nn := rodinia.NN()
	bad := serve.Config{
		GPUPartitions: 1,
		Tenants: []serve.TenantSpec{{
			Name: "x", Rate: 100,
			Mix: []serve.WorkClass{{Name: "both", Graph: tvm.ResNet18(), Bench: &nn}},
		}},
	}
	if _, err := serve.Run(bad); err == nil {
		t.Error("class with both Graph and Bench: want error")
	}
	toomany := twoTenantConfig(1)
	toomany.GPUPartitions = 3
	pcfg := core.DefaultConfig()
	pcfg.GPUs = 2
	err := core.Run(pcfg, func(pl *core.Platform, p *sim.Proc) error {
		_, err := serve.New(p, pl, toomany)
		return err
	})
	if err == nil {
		t.Error("more partitions than GPUs: want error")
	}
}
