package serve

import (
	"fmt"

	"cronus/internal/metrics"
	"cronus/internal/otrace"
	"cronus/internal/sim"
	"cronus/internal/trace"
)

// OverloadError is the typed shed result of the admission controller: the
// tenant's bounded queue was full, so the request was refused instead of
// queueing without limit. Callers distinguish it from execution failures
// with errors.As.
type OverloadError struct {
	Tenant string
	Cap    int
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: tenant %s overloaded (queue cap %d)", e.Tenant, e.Cap)
}

// queue is one tenant's bounded admission queue. All access happens on
// simulated procs (the kernel runs one at a time), so no locking is needed;
// blocking uses the kernel's park/wake primitives.
type queue struct {
	k     *sim.Kernel
	cap   int
	items []*Request
	depth *metrics.Gauge
	cond  *sim.Cond
	// batching is the dispatcher proc currently holding a batch window
	// open in an interruptible sleep; a push cuts the sleep short so the
	// new arrival can join the batch.
	batching *sim.Proc
	closed   bool
}

func newQueue(k *sim.Kernel, capacity int, depth *metrics.Gauge) *queue {
	return &queue{k: k, cap: capacity, depth: depth, cond: sim.NewCond(k)}
}

// inSystem counts the tenant's requests currently inside the plane:
// queued, held by the dispatcher's open batch window, or outstanding on
// replicas. The admission bound applies to this total — a fast dispatcher
// moving requests onto replica queues must not defeat the cap.
func (t *tenant) inSystem() int {
	n := len(t.q.items) + t.held
	for _, rep := range t.reps {
		n += rep.outstanding
	}
	return n
}

// capacity reports the tenant's usable and total replica slots for the
// degraded-admission bound. Only retired replicas (quarantined or released
// by an elastic scale-down) count as lost: transient failovers recover in
// bounded time and must not perturb admission (survivor accounting under a
// one-shot fault stays identical to the baseline), and a draining replica
// still finishes its in-flight work. Released capacity shrinking the bound
// is also the autoscaler's feedback path — scale down too far and the shed
// rate climbs, which is exactly the signal that scales back up. Under
// DeviceAffinity the tenant only ever uses its pinned replica, so capacity
// is that single slot — unless the pin has retired and the scheduler is
// falling back to spreading over the survivors.
func (srv *Server) capacity(t *tenant) (usable, total int) {
	reps := srv.placementSet(t)
	if len(reps) == 0 {
		return 0, 0
	}
	if srv.cfg.Policy == DeviceAffinity && !reps[t.idx%len(reps)].retired() {
		return 1, 1
	}
	total = len(reps)
	for _, rep := range reps {
		if !rep.retired() {
			usable++
		}
	}
	return usable, total
}

// effectiveCap is the degraded-mode admission bound: the configured queue
// cap scaled by the fraction of usable replica capacity, so a pool running
// at half capacity admits half the in-flight work and sheds the rest with
// typed *OverloadError instead of letting queues collapse onto the
// survivors. Full capacity returns the configured cap unchanged; zero
// usable capacity admits nothing. With Config.SLOAdmission, a firing
// burn-rate signal additionally halves the cap (floor 1): the budget is
// burning too fast for the current intake, so shed early — before timeouts
// pile up and the circuit breaker reports the partition.
func (srv *Server) effectiveCap(t *tenant, now sim.Time) int {
	usable, total := srv.capacity(t)
	if usable == 0 {
		return 0
	}
	c := t.q.cap
	if usable != total {
		c = t.q.cap * usable / total
	}
	if srv.cl != nil && t.rehomed && srv.cl.aliveCnt < srv.cl.nodes {
		// Cross-node failover tightened the cluster: a re-homed tenant's cap
		// shrinks by the lost capacity fraction, so survivors shed the load
		// the dead node can no longer carry instead of absorbing it all.
		c = c * srv.cl.aliveCnt / srv.cl.nodes
	}
	if srv.cfg.SLOAdmission && t.slo != nil && t.slo.Signal(now).Firing {
		c /= 2
	}
	if c < 1 {
		c = 1
	}
	return c
}

// push appends an admitted request and wakes the dispatcher.
func (q *queue) push(r *Request) {
	q.items = append(q.items, r)
	q.depth.Set(int64(len(q.items)))
	q.cond.Broadcast()
	if q.batching != nil {
		q.k.Interrupt(q.batching)
	}
}

// pushFront re-enqueues replayed requests at the head, preserving their
// original order ahead of newer arrivals. Replays bypass the admission cap:
// the requests were already admitted once.
func (q *queue) pushFront(rs []*Request) {
	q.items = append(append(make([]*Request, 0, len(rs)+len(q.items)), rs...), q.items...)
	q.depth.Set(int64(len(q.items)))
	q.cond.Broadcast()
	if q.batching != nil {
		q.k.Interrupt(q.batching)
	}
}

// waitFirst blocks until a request is available and pops it. ok is false
// once the queue is closed and drained.
func (q *queue) waitFirst(p *sim.Proc) (*Request, bool) {
	for {
		if len(q.items) > 0 {
			return q.pop(), true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait(p)
	}
}

// popMatching pops the head request only if it belongs to cl — batches stay
// FIFO and single-class.
func (q *queue) popMatching(cl *workClass) *Request {
	if len(q.items) == 0 || q.items[0].class != cl {
		return nil
	}
	return q.pop()
}

func (q *queue) pop() *Request {
	r := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	q.depth.Set(int64(len(q.items)))
	return r
}

func (q *queue) close() {
	q.closed = true
	q.cond.Broadcast()
}

// submit runs the admission decision for one offered request: shed with a
// typed *OverloadError when the tenant's queue is at capacity, otherwise
// assign an id, record arrival time, and enqueue. withSignal attaches a
// completion signal for closed-loop callers.
func (srv *Server) submit(p *sim.Proc, t *tenant, cl *workClass, withSignal bool) (*Request, error) {
	t.offered++
	if limit := srv.effectiveCap(t, p.Now()); t.inSystem() >= limit {
		t.shed++
		return nil, &OverloadError{Tenant: t.spec.Name, Cap: limit}
	}
	srv.nextID++
	r := &Request{
		ID:      srv.nextID,
		Tenant:  t.spec.Name,
		Class:   cl.spec.Name,
		Arrived: p.Now(),
		class:   cl,
	}
	if srv.cfg.Trace {
		// The admission sequence (pre-increment) keys the deterministic
		// trace id; the root span id is only minted when the collector is
		// live (attribution works without the event spine).
		r.TraceID = otrace.DeriveTraceID(t.spec.Name, t.admitted)
		if trace.Default.Enabled() {
			r.spanID = trace.Default.NextSpanID()
		}
	}
	if withSignal {
		r.done = sim.NewSignal(srv.pl.K)
	}
	t.admitted++
	srv.admittedTotal++
	if srv.cfg.KeepRequests {
		srv.requests = append(srv.requests, r)
	}
	t.q.push(r)
	return r, nil
}
