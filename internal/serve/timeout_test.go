package serve_test

import (
	"errors"
	"testing"

	"cronus/internal/core"
	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/tvm"
)

// hangConfig is the shared load for the timeout/retry table: one tenant on
// one partition at a rate where every batch holds a single request, per-item
// device work (~11µs at 400 flops/ns) far below the 500µs watchdog, so only
// injected hangs ever trip it.
func hangConfig(maxRetries int, backoff sim.Duration) serve.Config {
	return serve.Config{
		Seed:           13,
		Window:         10 * sim.Millisecond,
		Policy:         serve.RoundRobin,
		MaxBatch:       4,
		BatchWindow:    50 * sim.Microsecond,
		GPUPartitions:  1,
		GPUFlopsPerNs:  400,
		KeepRequests:   true,
		RequestTimeout: 500 * sim.Microsecond,
		MaxRetries:     maxRetries,
		RetryBackoff:   backoff,
		Tenants: []serve.TenantSpec{
			{
				Name: "ten", Arrival: serve.FixedRate, Rate: 2000, QueueCap: 256,
				Mix: []serve.WorkClass{{Name: "resnet18", Graph: tvm.ResNet18()}},
			},
		},
	}
}

// runArmed boots a platform, builds the plane, lets the caller arm device
// faults, then serves — the handle tests need that serve.Run does not give.
func runArmed(t *testing.T, cfg serve.Config, arm func(pl *core.Platform)) *serve.Result {
	t.Helper()
	pcfg := core.DefaultConfig()
	pcfg.GPUs = cfg.GPUPartitions
	pcfg.NPUs = 0
	pcfg.MPS = true
	var res *serve.Result
	err := core.Run(pcfg, func(pl *core.Platform, p *sim.Proc) error {
		srv, err := serve.New(p, pl, cfg)
		if err != nil {
			return err
		}
		if arm != nil {
			arm(pl)
		}
		r, err := srv.Serve(p)
		res = r
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTimeoutRetryTable drives the watchdog through the ISSUE 4 scenarios:
// a hang on the first batch, a hang mid-stream, hangs up to and including
// the last permitted retry, and hangs on every attempt (budget exhausted).
// Launch ordinals are device-lifetime, so attempt k of the first batch is
// launch k and everything is deterministic.
func TestTimeoutRetryTable(t *testing.T) {
	cases := []struct {
		name       string
		hangAt     []uint64 // device launch ordinals that hang
		maxRetries int
		wantFailed bool // the hung batch exhausts its budget
	}{
		{"hang-first-batch", []uint64{1}, 2, false},
		{"hang-mid-stream", []uint64{4}, 2, false},
		{"hang-until-last-retry", []uint64{1, 2}, 2, false},
		{"hang-all-attempts", []uint64{1, 2, 3}, 2, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := hangConfig(tc.maxRetries, 100*sim.Microsecond)
			res := runArmed(t, cfg, func(pl *core.Platform) {
				for _, n := range tc.hangAt {
					pl.GPUs[0].Dev.ArmLaunchHang(n)
				}
			})
			checkAccounting(t, res)
			tr := res.Tenants[0]
			if tr.Timeouts != uint64(len(tc.hangAt)) {
				t.Errorf("timeouts = %d, want %d (one per armed hang)", tr.Timeouts, len(tc.hangAt))
			}
			if tr.Duplicates != 0 {
				t.Errorf("retries double-completed %d requests", tr.Duplicates)
			}
			var timeoutErrs int
			for _, r := range res.Requests {
				if r.Done == 0 {
					t.Errorf("request %d never completed (lost to the hang)", r.ID)
				}
				var te *serve.TimeoutError
				if errors.As(r.Err, &te) {
					timeoutErrs++
					if te.Attempts != tc.maxRetries+1 {
						t.Errorf("request %d gave up after %d attempts, want %d",
							r.ID, te.Attempts, tc.maxRetries+1)
					}
				} else if r.Err != nil {
					t.Errorf("request %d failed with %v, want nil or *TimeoutError", r.ID, r.Err)
				}
			}
			if tc.wantFailed {
				if tr.Failed == 0 || timeoutErrs != int(tr.Failed) {
					t.Errorf("failed = %d with %d typed timeout errors, want equal and > 0",
						tr.Failed, timeoutErrs)
				}
			} else {
				if tr.Failed != 0 || timeoutErrs != 0 {
					t.Errorf("failed = %d (typed %d), want 0 — retries should have recovered",
						tr.Failed, timeoutErrs)
				}
				if tr.Retried == 0 {
					t.Error("no retries recorded despite armed hangs")
				}
			}
		})
	}
}

// TestRetryBackoffPinned pins the exponential schedule: with MaxRetries=2 a
// budget-exhausting batch sleeps backoff + 2·backoff between its three
// attempts, so doubling the base backoff must shift the failing request's
// completion instant by exactly 3× the base — no more, no less. Everything
// else in the two runs is identical virtual time.
func TestRetryBackoffPinned(t *testing.T) {
	const base = 100 * sim.Microsecond
	run := func(backoff sim.Duration) *serve.Request {
		res := runArmed(t, hangConfig(2, backoff), func(pl *core.Platform) {
			for _, n := range []uint64{1, 2, 3} {
				pl.GPUs[0].Dev.ArmLaunchHang(n)
			}
		})
		checkAccounting(t, res)
		for _, r := range res.Requests {
			if r.Err != nil {
				return r
			}
		}
		t.Fatal("no failed request found")
		return nil
	}
	a := run(base)
	b := run(2 * base)
	if a.Arrived != b.Arrived {
		t.Fatalf("arrival instants differ across backoff settings: %v vs %v", a.Arrived, b.Arrived)
	}
	shift := sim.Duration(b.Done - a.Done)
	if shift != 3*base {
		t.Errorf("doubling backoff shifted completion by %v, want exactly %v (backoff+2·backoff)",
			shift, 3*base)
	}
	// The failing request's total latency bounds the schedule from below:
	// three timed-out attempts plus the two backoffs.
	minLat := 3*hangConfig(2, base).RequestTimeout + 3*base
	if a.Latency() < minLat {
		t.Errorf("failed request latency %v below the schedule floor %v", a.Latency(), minLat)
	}
}
