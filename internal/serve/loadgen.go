package serve

import (
	"fmt"
	"math/rand"

	"cronus/internal/sim"
)

// This file is the serving plane's load generator: per-tenant arrival
// processes driven by seeded math/rand streams. Every stream's seed is a
// pure function of Config.Seed and the tenant (and client) index, and every
// decision consumes the stream in a fixed order, so identical configs
// produce identical arrival timelines — the determinism contract the
// byte-identical-run acceptance test checks.

// tenantSeed derives the RNG seed for one tenant's arrival stream.
func tenantSeed(base int64, ti, client int) int64 {
	return base + int64(ti)*1_000_003 + int64(client)*7919
}

// pickClass samples the tenant's workload mix by cumulative weight.
func (t *tenant) pickClass(rng *rand.Rand) *workClass {
	total := t.classes[len(t.classes)-1].cum
	u := rng.Float64() * total
	for _, cl := range t.classes {
		if u < cl.cum {
			return cl
		}
	}
	return t.classes[len(t.classes)-1]
}

// startLoad spawns the arrival processes for every tenant. Open-loop
// tenants get one generator proc; closed-loop tenants get one proc per
// client. Generation stops at srv.endAt; in-flight requests drain after.
func (srv *Server) startLoad() {
	k := srv.pl.K
	for _, t := range srv.tenants {
		t := t
		switch t.spec.Arrival {
		case ClosedLoop:
			n := t.spec.Clients
			if n < 1 {
				n = 1
			}
			for ci := 0; ci < n; ci++ {
				ci := ci
				k.Spawn(fmt.Sprintf("serve-load-%s-c%d", t.spec.Name, ci), func(p *sim.Proc) {
					srv.closedLoopClient(p, t, ci)
				})
			}
		default:
			k.Spawn("serve-load-"+t.spec.Name, func(p *sim.Proc) {
				srv.openLoop(p, t)
			})
		}
	}
}

// openLoop submits requests on a Poisson or fixed-rate schedule. Rates at
// or below zero generate nothing. Shed requests are dropped on the floor —
// an open-loop source does not retry (that is what the shed-rate metric
// measures).
func (srv *Server) openLoop(p *sim.Proc, t *tenant) {
	rate := t.spec.Rate
	if rate <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(tenantSeed(srv.cfg.Seed, t.idx, 0)))
	for {
		var gap sim.Duration
		if t.spec.Arrival == FixedRate {
			gap = sim.Duration(1e9 / rate)
		} else {
			gap = sim.Duration(rng.ExpFloat64() / rate * 1e9)
		}
		if gap < 1 {
			gap = 1
		}
		p.Sleep(gap)
		if p.Now() >= srv.endAt {
			return
		}
		_, _ = srv.submit(p, t, t.pickClass(rng), false)
	}
}

// closedLoopClient is one synchronous caller: submit, wait for completion,
// think, repeat. A shed response counts as an instant (failed) reply, so an
// overloaded closed-loop tenant spins against the admission controller at
// think-time rate rather than queueing unboundedly.
func (srv *Server) closedLoopClient(p *sim.Proc, t *tenant, ci int) {
	rng := rand.New(rand.NewSource(tenantSeed(srv.cfg.Seed, t.idx, ci+1)))
	think := t.spec.Think
	if think <= 0 {
		think = 100 * sim.Microsecond
	}
	for p.Now() < srv.endAt {
		r, err := srv.submit(p, t, t.pickClass(rng), true)
		if err == nil {
			r.done.Wait(p)
		}
		p.Sleep(think)
	}
}
