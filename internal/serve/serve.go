// Package serve is CRONUS's multi-tenant serving plane: the policy layer
// that sits above internal/core sessions and turns the simulated platform
// into an inference server shared by mutually-distrusting tenants (the
// paper's multi-tenant sharing scenario, §VI-E, scaled toward the ROADMAP's
// "heavy traffic" north star).
//
// The plane has four parts:
//
//   - a load generator (loadgen.go): seeded, deterministic open-loop
//     (Poisson or fixed-rate) and closed-loop arrival processes per tenant,
//     with per-tenant workload mixes drawn from the repo's workload
//     packages (tvm inference graphs, rodinia general-compute passes);
//   - an admission controller (admission.go): one bounded FIFO queue per
//     tenant; requests beyond the bound are shed with a typed
//     *OverloadError so callers see backpressure instead of unbounded
//     queueing;
//   - a scheduler (sched.go): per-tenant dispatchers that form dynamic
//     batches (up to MaxBatch requests or BatchWindow of virtual time,
//     whichever first — amortizing sRPC and world-switch costs the way
//     Fig. 8 amortizes streaming) and place them onto a pool of accelerator
//     mEnclave replicas under a pluggable policy (round-robin,
//     least-outstanding, device-affinity);
//   - a failover-aware retry layer (replica.go): replicas subscribe to SPM
//     failure records, requests in flight on a proceed-trapped partition
//     are replayed exactly once after the mOS restarts, and survivors on
//     other partitions are untouched. A per-request watchdog
//     (Config.RequestTimeout) bounds each batch attempt: hung devices and
//     corrupted sRPC rings are recycled and retried with exponential
//     backoff up to Config.MaxRetries times, after which the batch
//     completes with a typed *TimeoutError — so conservation (offered =
//     completed + shed, zero duplicates) holds under every fault the chaos
//     harness injects.
//
// Tenant isolation is preserved end to end: every tenant owns its session
// (CPU mEnclave) and its own accelerator mEnclaves on each pooled
// partition; batches never mix tenants, only a tenant's own requests.
//
// Determinism contract: all decisions are functions of virtual time and
// per-tenant seeded RNG streams, so a Run with a fixed Config is
// byte-identical across invocations — reports, metrics snapshots and
// per-request records included.
package serve

import (
	"fmt"

	"cronus/internal/cluster"
	"cronus/internal/core"
	"cronus/internal/elastic"
	"cronus/internal/gpu"
	"cronus/internal/metrics"
	"cronus/internal/otrace"
	"cronus/internal/sim"
	"cronus/internal/slo"
	"cronus/internal/spm"
	"cronus/internal/trace"
	"cronus/internal/tvm"
	"cronus/internal/workload/rodinia"
)

// Policy selects how a tenant's batches are placed onto its replicas.
type Policy string

const (
	// RoundRobin cycles through the tenant's live replicas.
	RoundRobin Policy = "round-robin"
	// LeastOutstanding picks the live replica with the fewest queued or
	// executing requests (ties: lowest partition index).
	LeastOutstanding Policy = "least-outstanding"
	// DeviceAffinity pins each tenant to one partition (tenant index mod
	// pool size): no cross-tenant sharing of a device, at the price of no
	// load spreading.
	DeviceAffinity Policy = "device-affinity"
)

// ArrivalKind selects a tenant's arrival process.
type ArrivalKind string

const (
	// Poisson is an open-loop process with exponential inter-arrivals.
	Poisson ArrivalKind = "poisson"
	// FixedRate is an open-loop process with constant inter-arrivals.
	FixedRate ArrivalKind = "fixed"
	// ClosedLoop models Clients synchronous callers with think time.
	ClosedLoop ArrivalKind = "closed-loop"
)

// WorkClass is one entry of a tenant's workload mix.
type WorkClass struct {
	Name   string
	Weight float64
	// Graph makes this a batchable DNN inference class: per-item device
	// time is derived from the graph's FLOPs at the serving rate.
	Graph *tvm.Graph
	// Bench makes this an unbatchable general-compute class: one full
	// rodinia benchmark pass per request (forced batch size 1).
	Bench *rodinia.Benchmark
	// InBytes is the per-request input upload for inference classes
	// (default 1024).
	InBytes int
}

// TenantSpec describes one tenant's traffic.
type TenantSpec struct {
	Name    string
	Arrival ArrivalKind
	// Rate is the open-loop offered load in requests per virtual second.
	Rate float64
	// Clients and Think shape the closed-loop process.
	Clients int
	Think   sim.Duration
	// QueueCap bounds the admission queue (default 64).
	QueueCap int
	Mix      []WorkClass
}

// Config sizes one serving-plane run.
type Config struct {
	Seed   int64
	Window sim.Duration // load-generation window (drain runs past it)
	Policy Policy

	// MaxBatch and BatchWindow control dynamic batching: a batch closes at
	// MaxBatch requests or BatchWindow after its first request, whichever
	// comes first. MaxBatch 1 disables batching.
	MaxBatch    int
	BatchWindow sim.Duration

	Tenants []TenantSpec

	// GPUPartitions sizes the replica pool: each tenant gets one
	// accelerator mEnclave per partition.
	GPUPartitions int

	// FailAt / FailPartition inject one FailPanic proceed-trap mid-run
	// (0 = none), exercising the failover-aware retry layer.
	FailAt        sim.Duration
	FailPartition string

	// KeepRequests retains a per-request record in the Result (tests, and
	// the zero-lost/zero-duplicated accounting of cronus-serve).
	KeepRequests bool

	// GPUFlopsPerNs calibrates inference service time (default 40 — an
	// order of magnitude above the CPU fallback rate).
	GPUFlopsPerNs float64
	// SMShare is the SM fraction one batch kernel occupies (default 0.5,
	// so two tenants share a device spatially under MPS).
	SMShare float64

	// RequestTimeout bounds one batch execution attempt on a replica: a
	// watchdog abandons the attempt — stream and enclave torn down, a
	// fresh one connected — when it has not completed within the bound.
	// 0 disables the watchdog (attempts may block on a hung device
	// forever, the pre-chaos behaviour).
	RequestTimeout sim.Duration
	// MaxRetries bounds additional attempts per batch after the first
	// (default 3 when RequestTimeout is set; negative means no retries).
	// A batch that exhausts its attempts completes with a *TimeoutError,
	// keeping the conservation accounting exact.
	MaxRetries int
	// RetryBackoff is the pause before the first retry, doubling on each
	// subsequent one (default 200µs when RequestTimeout is set).
	RetryBackoff sim.Duration

	// Supervision, when set, enables SPM partition health supervision for
	// the run: every pooled partition's mOS publishes heartbeats, the SPM
	// watchdog fails silent partitions with FailHang, and the restart
	// backoff / crash-loop quarantine policy applies.
	Supervision *spm.Supervision
	// HangReportAfter arms the replica circuit breaker: that many
	// consecutive attempt timeouts make the replica report its partition
	// to the SPM as hung (FailHang) instead of retrying blindly. 0
	// disables the breaker.
	HangReportAfter int

	// ReconnectBackoff is the base delay between replica reconnect
	// attempts after a failover or recycle, doubling per attempt up to
	// ReconnectBackoffMax (defaults 1ms and 16ms). ReconnectMaxAttempts
	// (default 8) bounds the attempts against a quarantined partition,
	// after which the reconnect fails with a typed *spm.QuarantinedError.
	ReconnectBackoff     sim.Duration
	ReconnectBackoffMax  sim.Duration
	ReconnectMaxAttempts int

	// Trace enables end-to-end causal tracing: every admitted request gets
	// a deterministic TraceID (otrace.DeriveTraceID of tenant name and
	// admission sequence — never wall clock), its latency is decomposed
	// into conservative stage segments (Result.Traces), tail exemplars are
	// attached to the latency histograms, and — when the global trace
	// collector is enabled — linked spans are emitted through admission,
	// batching, placement, sRPC, mOS dispatch and device launch. Off, the
	// request path pays one branch per hook and allocates nothing extra.
	Trace bool

	// SLO, when set, arms a per-tenant SLO tracker with this objective:
	// every completion is scored good/bad and multi-window burn-rate
	// signals are evaluated (Result.SLOs).
	SLO *slo.Objective
	// SLOAdmission couples the burn-rate signal to admission: while a
	// tenant's signal fires, its effective queue cap is halved (floor 1),
	// shedding load with typed *OverloadError while the budget recovers —
	// degraded mode engaging before circuit breakers trip.
	SLOAdmission bool

	// Shards, when >= 2, selects the sharded data plane (sharded.go): the
	// simulation kernel is partitioned into one host shard plus Shards
	// device shards, GPU partitions are spread across the device shards,
	// and the per-request path runs as an event-driven flow model over the
	// fused zero-copy sRPC cost surface instead of per-batch worker procs.
	// 0 or 1 keeps the classic sequential plane byte-identically. The
	// sharded plane serves batchable inference mixes only and is mutually
	// exclusive with Trace, Supervision and RequestTimeout (see New).
	Shards int
	// Lanes is the number of parallel sRPC rings each sharded replica opens
	// (default 2); batches round-robin over the lanes, so service on one
	// lane does not queue behind an independent batch on another.
	Lanes int
	// Parallel runs the sharded event queues on one goroutine per shard
	// (conservative lookahead windows). Outputs are byte-identical with and
	// without it — it is an execution strategy, never a model change — and
	// it is an explicit opt-in so runs stay machine-invariant by default.
	// Requires Shards >= 2.
	Parallel bool

	// Nodes, when >= 2, selects cluster mode (cluster.go): the plane spans
	// that many simulated machines (cluster.BootNodes), each owning
	// GPUPartitions/Nodes partitions and Shards/Nodes kernel shards, joined
	// by a modeled fabric. Tenants hash onto home nodes (consistent hashing
	// with bounded-load overflow) and fail over across nodes when a home
	// pool is lost. Requires the sharded plane; Shards and GPUPartitions
	// must divide evenly over Nodes.
	Nodes int
	// LinkLatency is the one-way gateway↔node propagation delay (default
	// 5µs; must be at least the PCIe-latency kernel lookahead).
	LinkLatency sim.Duration
	// LinkGBps is the per-link bandwidth in GB/s (default 10).
	LinkGBps float64
	// HashBound is the bounded-load factor of the placement ring: no node
	// is assigned more than ceil(HashBound · tenants / nodes) home tenants
	// (default 1.25).
	HashBound float64
	// NodeFaults schedules node-level faults (offsets from serving start):
	// node-crash, net-partition, slow-link. The chaos harness compiles its
	// cluster schedules into this.
	NodeFaults []cluster.Fault

	// AttestTickets arms the attestation admission gate (attestor.go,
	// DESIGN.md §15): every batch dispatch is gated on the tenant holding a
	// valid session ticket for the target partition's measurement. A live
	// ticket resumes for one MAC check; a cold session pays the full quote
	// verification (through the per-epoch verification cache) and mints a
	// ticket. Off (the default), admission is byte-identical to earlier
	// revisions.
	AttestTickets bool
	// AttestTicketTTL is the virtual-time ticket lifetime (default 5ms).
	AttestTicketTTL sim.Duration
	// AttestCacheCap bounds the live-ticket LRU (default 1024).
	AttestCacheCap int
	// AttestReprobe, when > 0, starts the continuous re-measurement prober:
	// every AttestReprobe of virtual time each pooled partition's current
	// measurement is compared against the boot-pinned value, and a mismatch
	// revokes the partition (tickets purged, in-flight work shed with the
	// typed *attest.RevokedError, partition drained into quarantine).
	// Requires AttestTickets.
	AttestReprobe sim.Duration
	// AttestFaults schedules attestation faults (attest-storm ticket
	// flushes, stale-measurement tampering) — the chaos harness compiles
	// its attestation schedules into this. Requires AttestTickets.
	AttestFaults []AttestFault

	// Migrations schedules planned live migrations (elastic.go, DESIGN.md
	// §16): at each offset from serving start the source partition's lanes
	// quiesce, the mEnclave state checkpoints, transfers (fabric-priced
	// across nodes), and the source releases only after the in-flight work
	// replayed exactly once on the destination. Requires the sharded plane.
	Migrations []Migration
	// Autoscale, when set, runs the elastic autoscaler control loop over
	// the plane's load signals (queue depth, shed rate, p95, SLO burn
	// rate), scaling partitions down (via the migration primitive) and back
	// up (boot + attest charged in virtual time). Requires the sharded
	// plane.
	Autoscale *elastic.Config
	// ScaleStorms schedules forced autoscaler oscillation windows (the
	// scale-storm chaos kind): inside each window every control tick
	// alternates scale-down/scale-up regardless of load. Requires
	// Autoscale.
	ScaleStorms []ScaleStorm
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = 100 * sim.Millisecond
	}
	if c.Policy == "" {
		c.Policy = LeastOutstanding
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 1
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 50 * sim.Microsecond
	}
	if c.GPUPartitions < 1 {
		c.GPUPartitions = 1
	}
	if c.GPUFlopsPerNs <= 0 {
		c.GPUFlopsPerNs = 40
	}
	if c.SMShare <= 0 {
		c.SMShare = 0.5
	}
	if c.RequestTimeout > 0 {
		if c.MaxRetries == 0 {
			c.MaxRetries = 3
		}
		if c.RetryBackoff <= 0 {
			c.RetryBackoff = 200 * sim.Microsecond
		}
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = sim.Millisecond
	}
	if c.ReconnectBackoffMax <= 0 {
		c.ReconnectBackoffMax = 16 * sim.Millisecond
	}
	if c.ReconnectMaxAttempts <= 0 {
		c.ReconnectMaxAttempts = 8
	}
	if c.Shards >= 2 && c.Lanes < 1 {
		c.Lanes = 2
	}
	if c.Nodes >= 2 {
		if c.LinkLatency <= 0 {
			c.LinkLatency = 5 * sim.Microsecond
		}
		if c.LinkGBps <= 0 {
			c.LinkGBps = 10
		}
		if c.HashBound <= 0 {
			c.HashBound = 1.25
		}
	}
	if c.AttestTickets {
		if c.AttestTicketTTL <= 0 {
			c.AttestTicketTTL = 5 * sim.Millisecond
		}
		if c.AttestCacheCap <= 0 {
			c.AttestCacheCap = 1024
		}
	}
}

// Request is one admitted unit of tenant work.
type Request struct {
	ID      uint64
	Tenant  string
	Class   string
	Arrived sim.Time
	Done    sim.Time
	Err     error
	// Replays counts failover replays (0 for requests never caught by a
	// partition failure).
	Replays int
	// Retries counts watchdog-driven attempt retries (timeouts, ring
	// corruption) — distinct from Replays, which are partition failovers.
	Retries int
	// TraceID is the request's deterministic causal trace id (0 unless
	// Config.Trace is set).
	TraceID uint64

	class       *workClass
	done        *sim.Signal
	completions int
	// spanID is the request's root span (minted at admission when the
	// trace collector is enabled); marks are the ordered stage-entry
	// boundaries the conservative latency attribution is cut from.
	spanID uint64
	marks  []otrace.Mark
}

// Latency is the admitted-to-completed virtual time.
func (r *Request) Latency() sim.Duration { return sim.Duration(r.Done - r.Arrived) }

// workClass is a resolved mix entry with precomputed costs.
type workClass struct {
	spec    WorkClass
	itemNS  sim.Duration // per-item device work (inference classes)
	inBytes int
	cum     float64 // cumulative sampling weight
}

// tenant is the runtime state of one TenantSpec.
type tenant struct {
	spec    TenantSpec
	idx     int
	classes []*workClass
	sess    *core.Session
	q       *queue
	reps    []*replica
	rrNext  int
	// held counts requests popped into the dispatcher's open batch window
	// (out of the queue, not yet on a replica).
	held int

	latHist *metrics.Histogram
	// slo scores completions against Config.SLO (nil when unset).
	slo *slo.Tracker

	offered, admitted, shed uint64
	completed, failed       uint64
	replayed, duplicates    uint64
	retried, timeouts       uint64

	// Sharded-plane state (zero on the classic path). The open batch, its
	// generation counter (invalidates stale window timers), the host-side
	// in-flight count, the undispatchable-batch backlog and the per-tenant
	// kept-request stripe all live on the host shard; shAnchor is the
	// tenant's host-shard anchor proc whose (lid, seq) identity keys every
	// arrival and timer event of this tenant, making same-instant tie order
	// identical between sequential and parallel execution.
	shAnchor  *sim.Proc
	shOpen    *batch
	shGen     uint64
	shSeq     uint64
	shInFl    int
	shBacklog []*batch
	shKept    []*Request

	// Cluster-mode state (cluster.go; zero on single-node runs): one
	// session per node, the current and initial home node, whether a
	// failover re-hashed the tenant, and the gateway's no-split-brain
	// ledger (liveCnt requests in flight, all on liveNode).
	sessions []*core.Session
	home     int
	home0    int
	rehomed  bool
	liveNode int
	liveCnt  int
}

// Server is one booted serving plane.
type Server struct {
	// pl is the gateway-side platform (plats[0]); plats holds every node's
	// platform in cluster mode (a single element otherwise).
	pl    *core.Platform
	plats []*core.Platform
	cfg   Config
	reg   *metrics.Registry

	tenants []*tenant
	nextID  uint64

	endAt sim.Time // load-generation deadline

	admittedTotal  uint64
	completedTotal uint64
	drainCond      *sim.Cond

	batches   uint64
	batchReqs uint64

	ctrTimeouts    *metrics.Counter // watchdog-expired batch attempts
	ctrRetries     *metrics.Counter // batch attempts retried after recycle
	ctrReconnects  *metrics.Counter // replica reconnect attempts (failover/recycle)
	ctrHangReports *metrics.Counter // circuit-breaker FailHang reports to the SPM

	failures []*spm.FailureRecord
	// failNodes is the node index of each failures entry (always 0 on
	// single-node runs) — cluster reports prefix the partition name with it.
	failNodes  []int
	cancelFail func()

	requests []*Request // retained when cfg.KeepRequests

	// traces accumulates per-request causal records in completion order
	// (deterministic) when cfg.Trace is set.
	traces []otrace.RequestTrace

	// sh is the sharded data plane (nil on the classic path); cl is the
	// cluster placement tier (nil on single-node runs); at is the
	// attestation admission gate (nil unless Config.AttestTickets); el is
	// the elastic-capacity layer (nil unless migrations or autoscaling are
	// armed).
	sh *shState
	cl *clState
	at *attState
	el *elState
}

// serveKernel is the batchable inference kernel: its cost is carried in the
// launch arguments (total batch work in ns, SM demand), so one registration
// serves every class and calibration.
const serveKernel = "serve_infer"

func init() {
	gpu.Register(&gpu.Kernel{
		Name: serveKernel,
		Cost: func(_ gpu.Dim, args []uint64) gpu.LaunchCost {
			return gpu.LaunchCost{Work: sim.Duration(args[2]), SMDemand: float64(args[3])}
		},
		Func: func(e *gpu.Exec) error {
			out, err := e.Bytes(e.Arg(0), 4)
			if err != nil {
				return err
			}
			out[0]++
			return nil
		},
	})
}

// New boots a serving plane on an already-built platform: one session per
// tenant, one accelerator mEnclave per (tenant, pooled partition), buffers
// allocated, SPM failure records subscribed.
func New(p *sim.Proc, pl *core.Platform, cfg Config) (*Server, error) {
	return NewCluster(p, []*core.Platform{pl}, cfg)
}

// NewCluster boots a serving plane spanning the given node platforms (one
// element = the single-node plane New wraps). In cluster mode every tenant
// gets a session and a replica set on every node, a home node from the
// placement ring, and the gateway's fabric machinery is armed.
func NewCluster(p *sim.Proc, plats []*core.Platform, cfg Config) (*Server, error) {
	cfg.defaults()
	if len(plats) == 0 {
		return nil, fmt.Errorf("serve: no platforms")
	}
	pl := plats[0]
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("serve: no tenants configured")
	}
	partsPerNode := cfg.GPUPartitions
	if len(plats) >= 2 || cfg.Nodes >= 2 {
		if cfg.Nodes != len(plats) {
			return nil, fmt.Errorf("serve: Config.Nodes is %d but %d node platforms were booted",
				cfg.Nodes, len(plats))
		}
		if err := validateCluster(cfg); err != nil {
			return nil, err
		}
		partsPerNode = cfg.GPUPartitions / cfg.Nodes
	}
	for n, npl := range plats {
		if partsPerNode > len(npl.GPUs) {
			return nil, fmt.Errorf("serve: %d partitions requested on node %d, platform has %d GPUs",
				partsPerNode, n, len(npl.GPUs))
		}
	}
	if err := validateSharded(cfg); err != nil {
		return nil, err
	}
	if err := validateAttest(cfg); err != nil {
		return nil, err
	}
	if err := validateElastic(cfg); err != nil {
		return nil, err
	}
	// The pool's rodinia kernels live in the global GPU registry alongside
	// the std kernels BuildPlatform installs (Register replaces, so this
	// is idempotent across servers in one process).
	rodinia.RegisterKernels(pl.GPUs[0].Dev.SMs())
	reg := metrics.NewRegistry()
	reg.Enable()
	srv := &Server{
		pl:             pl,
		plats:          plats,
		cfg:            cfg,
		reg:            reg,
		drainCond:      sim.NewCond(pl.K),
		ctrTimeouts:    reg.Counter("serve.timeouts"),
		ctrRetries:     reg.Counter("serve.retries"),
		ctrReconnects:  reg.Counter("serve.reconnect.attempts"),
		ctrHangReports: reg.Counter("serve.hang_reports"),
	}
	if len(plats) >= 2 {
		// The placement tier must exist before shBoot: the partition→shard
		// mapping groups each node's partitions onto its shard block.
		if err := srv.clBoot(); err != nil {
			return nil, err
		}
	}
	if cfg.Shards >= 2 {
		// Partition the kernel and anchor the cross-shard ports before any
		// replica connects: executor placement reads the partition's shard.
		srv.shBoot()
	}
	if cfg.AttestTickets {
		// Pin every partition's boot measurement and build the ticket /
		// verification caches before any load exists, so the attestation
		// timeline is identical between baseline and faulted runs.
		srv.atBoot()
	}
	if len(cfg.Migrations) > 0 || cfg.Autoscale != nil {
		// Elastic-capacity layer: the controller and counters exist before
		// any load, so an armed-but-idle layer never perturbs the timeline.
		srv.elBoot()
	}
	// Partition health supervision: arm heartbeats on every pooled
	// partition and start the SPM watchdog before any load exists, so the
	// supervision timeline is identical between baseline and faulted runs.
	if cfg.Supervision != nil {
		pl.SPM.SetSupervision(*cfg.Supervision)
		sv := pl.SPM.SupervisionConfig()
		for pi := 0; pi < cfg.GPUPartitions; pi++ {
			pl.GPUs[pi].OS.StartHeartbeat(sv.HeartbeatEvery)
		}
		pl.SPM.StartWatchdog()
	}
	smDemand := uint64(pl.GPUs[0].Dev.SMs() * cfg.SMShare)
	if smDemand < 1 {
		smDemand = 1
	}
	for ti := range cfg.Tenants {
		spec := cfg.Tenants[ti]
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("tenant-%d", ti)
		}
		if spec.QueueCap <= 0 {
			spec.QueueCap = 64
		}
		if spec.Arrival == "" {
			spec.Arrival = Poisson
		}
		if len(spec.Mix) == 0 {
			return nil, fmt.Errorf("serve: tenant %s has an empty workload mix", spec.Name)
		}
		t := &tenant{spec: spec, idx: ti}
		cum := 0.0
		for _, wc := range spec.Mix {
			if (wc.Graph == nil) == (wc.Bench == nil) {
				return nil, fmt.Errorf("serve: class %s of tenant %s must set exactly one of Graph or Bench",
					wc.Name, spec.Name)
			}
			w := wc.Weight
			if w <= 0 {
				w = 1
			}
			cum += w
			cl := &workClass{spec: wc, inBytes: wc.InBytes, cum: cum}
			if cl.inBytes <= 0 {
				cl.inBytes = 1024
			}
			if wc.Graph != nil {
				cl.itemNS = sim.Duration(wc.Graph.FLOPs() / cfg.GPUFlopsPerNs)
			}
			t.classes = append(t.classes, cl)
		}
		// One session per node: the replica block on node n is owned by the
		// tenant's session on that node's platform (t.sess aliases node 0).
		for n := 0; n < len(plats); n++ {
			sess, err := plats[n].NewSession(p, spec.Name)
			if err != nil {
				return nil, fmt.Errorf("serve: session for %s on node %d: %w", spec.Name, n, err)
			}
			t.sessions = append(t.sessions, sess)
		}
		t.sess = t.sessions[0]
		t.q = newQueue(pl.K, spec.QueueCap,
			reg.Gauge("serve.tenant."+spec.Name+".queue_depth"))
		t.latHist = reg.Histogram("serve.tenant." + spec.Name + ".latency_ns")
		if cfg.SLO != nil {
			t.slo = slo.NewTracker(*cfg.SLO)
		}
		if srv.sh != nil {
			t.shAnchor = srv.shSpawnAnchor(0, lidTenantAnchor+uint64(ti),
				"serve-anchor-"+spec.Name)
		}
		if srv.cl != nil {
			srv.clAssignHome(t)
		}
		for n := 0; n < len(plats); n++ {
			for pi := 0; pi < partsPerNode; pi++ {
				rep, err := newReplica(p, srv, t, n, pi, smDemand)
				if err != nil {
					return nil, fmt.Errorf("serve: replica %s/n%d/gpu-part%d: %w", spec.Name, n, pi, err)
				}
				t.reps = append(t.reps, rep)
			}
		}
		srv.tenants = append(srv.tenants, t)
	}
	// Subscribe to SPM failure records: mark every replica on the failed
	// partition down the instant the proceed-trap fires, so the scheduler
	// routes around it while its mOS restarts. Every node's SPM is its own
	// failure domain, and partition names repeat across nodes ("gpu-part0"
	// exists on each), so the subscription matches (node, partition) pairs.
	cancels := make([]func(), 0, len(plats))
	for n := range plats {
		n := n
		cancels = append(cancels, plats[n].SPM.OnFailure(func(rec *spm.FailureRecord) {
			srv.failures = append(srv.failures, rec)
			srv.failNodes = append(srv.failNodes, n)
			for _, t := range srv.tenants {
				for _, rep := range t.reps {
					if rep.node == n && rep.partName == rec.Partition {
						rep.down = true
						if rec.Quarantined {
							// Crash-loop policy tripped: the scheduler must
							// stop waiting on this partition, not route
							// around a transient restart.
							rep.quarantined = true
						}
						if srv.sh != nil {
							srv.shReplicaDown(rep)
						} else {
							rep.cond.Broadcast() // wake an idle worker into failover
						}
					}
				}
			}
		}))
	}
	srv.cancelFail = func() {
		for _, c := range cancels {
			c()
		}
	}
	return srv, nil
}

// Registry exposes the run's private metrics registry.
func (srv *Server) Registry() *metrics.Registry { return srv.reg }

// mark records one stage-entry boundary on a request's timeline — the raw
// material the conservative latency attribution is cut from. A no-op unless
// Config.Trace is set.
func (srv *Server) mark(r *Request, st otrace.Stage, at sim.Time) {
	if !srv.cfg.Trace {
		return
	}
	r.marks = append(r.marks, otrace.Mark{Stage: st, At: at})
}

// markBatch marks every request of a batch at once.
func (srv *Server) markBatch(b *batch, st otrace.Stage, at sim.Time) {
	if !srv.cfg.Trace {
		return
	}
	for _, r := range b.reqs {
		r.marks = append(r.marks, otrace.Mark{Stage: st, At: at})
	}
}

// complete finalizes one request exactly once; duplicate completions are
// counted and dropped.
func (srv *Server) complete(p *sim.Proc, t *tenant, r *Request, err error) {
	r.completions++
	if r.completions > 1 {
		t.duplicates++
		return
	}
	r.Done = p.Now()
	r.Err = err
	if err != nil {
		t.failed++
	} else {
		t.completed++
		if srv.cfg.Trace {
			t.latHist.ObserveExemplar(int64(r.Latency()), r.TraceID)
		} else {
			t.latHist.Observe(int64(r.Latency()))
		}
	}
	if t.slo != nil {
		t.slo.Record(r.Done, r.Latency(), err != nil)
	}
	if srv.cfg.Trace {
		srv.finishTrace(t, r, err)
	}
	srv.completedTotal++
	if r.done != nil {
		r.done.Fire()
	}
	srv.drainCond.Broadcast()
}

// finishTrace cuts the request's conservative stage decomposition, retains
// the causal record, and — when the collector is live — emits the request's
// root span plus one child span per stage segment onto the tenant's track.
// Completion order is deterministic, so the emitted span ids are too.
func (srv *Server) finishTrace(t *tenant, r *Request, err error) {
	segs := otrace.SegmentsFromMarks(r.Arrived, r.Done, r.marks)
	srv.traces = append(srv.traces, otrace.RequestTrace{
		TraceID:  r.TraceID,
		Tenant:   t.spec.Name,
		Class:    r.Class,
		Arrived:  r.Arrived,
		Done:     r.Done,
		Failed:   err != nil,
		Retries:  uint32(r.Retries),
		Replays:  uint32(r.Replays),
		Segments: segs,
	})
	if !trace.Default.Enabled() || r.TraceID == 0 {
		return
	}
	track := "req:" + t.spec.Name
	trace.Default.SpanAtLinked(r.Arrived, r.Done, "req", track,
		"request "+r.Class, r.TraceID, r.spanID, 0)
	for _, s := range segs {
		trace.Default.SpanAtLinked(s.From, s.To, "req", track,
			string(s.Stage), r.TraceID, trace.Default.NextSpanID(), r.spanID)
	}
}
