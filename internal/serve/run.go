package serve

import (
	"fmt"

	"cronus/internal/cluster"
	"cronus/internal/core"
	"cronus/internal/sim"
	"cronus/internal/spm"
)

// Serve runs the configured load against the booted plane: spawn workers
// are already live (New started them); this starts dispatchers, the load
// generators and the optional failure injector, sleeps out the load window,
// then drains — it returns only after every admitted request has completed,
// so a Result never has requests unaccounted for.
func (srv *Server) Serve(p *sim.Proc) (*Result, error) {
	if srv.sh != nil {
		return srv.shServe(p)
	}
	srv.endAt = p.Now() + sim.Time(srv.cfg.Window)
	srv.startDispatchers()
	srv.startLoad()
	if srv.cfg.FailAt > 0 {
		srv.startFailInjector()
	}
	srv.atStart(p)
	p.Sleep(srv.cfg.Window)
	for srv.completedTotal < srv.admittedTotal {
		srv.drainCond.Wait(p)
	}
	srv.cancelFail()
	return srv.result(), nil
}

// startFailInjector arms the single mid-run FailPanic the config asked for:
// at FailAt, the named GPU partition (default gpu-part0) proceed-traps as
// if its mOS hit an unhandled fault. On the sharded plane the injector first
// sequentializes the kernel — a partition failure is a global, totally
// ordered control-plane event, so the parallel windows end here and the
// whole failover (cancellation, SPM restart, reconnect, backlog re-drive)
// runs single-threaded.
func (srv *Server) startFailInjector() {
	body := func(p *sim.Proc) {
		p.Sleep(srv.cfg.FailAt)
		if srv.sh != nil {
			p.Sequentialize()
			if part := srv.failPartition(); part != nil {
				srv.pl.SPM.Fail(part, spm.FailPanic)
			}
			return
		}
		name := srv.cfg.FailPartition
		if name == "" {
			name = "gpu-part0"
		}
		for _, g := range srv.pl.GPUs {
			if g.Part.Name == name {
				srv.pl.SPM.Fail(g.Part, spm.FailPanic)
				return
			}
		}
	}
	if srv.sh != nil {
		srv.pl.K.SpawnOn(0, lidFailInjector, "serve-fail-injector", body)
		return
	}
	srv.pl.K.Spawn("serve-fail-injector", body)
}

// Run boots a fresh platform sized for cfg, serves the configured load, and
// returns the drained Result — the one-call entry point used by
// cmd/cronus-serve, the ServeTable experiment and the tests. With Nodes >= 2
// it boots that many node platforms into one simulation and serves through
// the cluster gateway instead.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	if cfg.Nodes >= 2 {
		return runCluster(cfg)
	}
	pcfg := core.DefaultConfig()
	pcfg.GPUs = cfg.GPUPartitions
	pcfg.NPUs = 0 // the serving pool is GPU-backed; skip NPU boot time
	pcfg.MPS = true
	var res *Result
	err := core.Run(pcfg, func(pl *core.Platform, p *sim.Proc) error {
		srv, err := New(p, pl, cfg)
		if err != nil {
			return err
		}
		r, err := srv.Serve(p)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return res, nil
}

// runCluster is the multi-node Run body: one simulation kernel, Nodes
// independently-booted platforms (each with its own SPM, partition pool and
// mOS instances) joined by the modeled fabric, one serving plane spanning
// them.
func runCluster(cfg Config) (*Result, error) {
	pcfg := core.DefaultConfig()
	pcfg.GPUs = cfg.GPUPartitions / cfg.Nodes
	if pcfg.GPUs < 1 || cfg.GPUPartitions%cfg.Nodes != 0 {
		return nil, fmt.Errorf("serve: GPUPartitions (%d) must be a positive multiple of Nodes (%d)",
			cfg.GPUPartitions, cfg.Nodes)
	}
	pcfg.NPUs = 0
	pcfg.MPS = true
	var (
		res     *Result
		bodyErr error
	)
	k := sim.NewKernel()
	k.Spawn("main", func(p *sim.Proc) {
		defer k.Stop()
		plats, err := cluster.BootNodes(p, cfg.Nodes, pcfg)
		if err != nil {
			bodyErr = err
			return
		}
		srv, err := NewCluster(p, plats, cfg)
		if err != nil {
			bodyErr = err
			return
		}
		res, bodyErr = srv.Serve(p)
	})
	if err := k.Run(); err != nil {
		k.Shutdown()
		return nil, fmt.Errorf("serve: %w", err)
	}
	k.Shutdown()
	if bodyErr != nil {
		return nil, fmt.Errorf("serve: %w", bodyErr)
	}
	return res, nil
}
