package serve

import (
	"fmt"

	"cronus/internal/core"
	"cronus/internal/sim"
	"cronus/internal/spm"
)

// Serve runs the configured load against the booted plane: spawn workers
// are already live (New started them); this starts dispatchers, the load
// generators and the optional failure injector, sleeps out the load window,
// then drains — it returns only after every admitted request has completed,
// so a Result never has requests unaccounted for.
func (srv *Server) Serve(p *sim.Proc) (*Result, error) {
	if srv.sh != nil {
		return srv.shServe(p)
	}
	srv.endAt = p.Now() + sim.Time(srv.cfg.Window)
	srv.startDispatchers()
	srv.startLoad()
	if srv.cfg.FailAt > 0 {
		srv.startFailInjector()
	}
	p.Sleep(srv.cfg.Window)
	for srv.completedTotal < srv.admittedTotal {
		srv.drainCond.Wait(p)
	}
	srv.cancelFail()
	return srv.result(), nil
}

// startFailInjector arms the single mid-run FailPanic the config asked for:
// at FailAt, the named GPU partition (default gpu-part0) proceed-traps as
// if its mOS hit an unhandled fault. On the sharded plane the injector first
// sequentializes the kernel — a partition failure is a global, totally
// ordered control-plane event, so the parallel windows end here and the
// whole failover (cancellation, SPM restart, reconnect, backlog re-drive)
// runs single-threaded.
func (srv *Server) startFailInjector() {
	body := func(p *sim.Proc) {
		p.Sleep(srv.cfg.FailAt)
		if srv.sh != nil {
			p.Sequentialize()
			if part := srv.failPartition(); part != nil {
				srv.pl.SPM.Fail(part, spm.FailPanic)
			}
			return
		}
		name := srv.cfg.FailPartition
		if name == "" {
			name = "gpu-part0"
		}
		for _, g := range srv.pl.GPUs {
			if g.Part.Name == name {
				srv.pl.SPM.Fail(g.Part, spm.FailPanic)
				return
			}
		}
	}
	if srv.sh != nil {
		srv.pl.K.SpawnOn(0, lidFailInjector, "serve-fail-injector", body)
		return
	}
	srv.pl.K.Spawn("serve-fail-injector", body)
}

// Run boots a fresh platform sized for cfg, serves the configured load, and
// returns the drained Result — the one-call entry point used by
// cmd/cronus-serve, the ServeTable experiment and the tests.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	pcfg := core.DefaultConfig()
	pcfg.GPUs = cfg.GPUPartitions
	pcfg.NPUs = 0 // the serving pool is GPU-backed; skip NPU boot time
	pcfg.MPS = true
	var res *Result
	err := core.Run(pcfg, func(pl *core.Platform, p *sim.Proc) error {
		srv, err := New(p, pl, cfg)
		if err != nil {
			return err
		}
		r, err := srv.Serve(p)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return res, nil
}
