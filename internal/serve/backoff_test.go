package serve

import (
	"testing"

	"cronus/internal/sim"
)

func TestReconnectBackoffSchedule(t *testing.T) {
	base, max := sim.Millisecond, 16*sim.Millisecond
	cases := []struct {
		attempt int
		want    sim.Duration
	}{
		{1, sim.Millisecond},
		{2, 2 * sim.Millisecond},
		{3, 4 * sim.Millisecond},
		{4, 8 * sim.Millisecond},
		{5, 16 * sim.Millisecond},
		{6, 16 * sim.Millisecond}, // capped
		{10, 16 * sim.Millisecond},
	}
	for _, c := range cases {
		if got := reconnectBackoff(base, max, c.attempt); got != c.want {
			t.Errorf("reconnectBackoff(attempt=%d) = %v, want %v", c.attempt, got, c.want)
		}
	}
	if got := reconnectBackoff(20*sim.Millisecond, 16*sim.Millisecond, 1); got != 16*sim.Millisecond {
		t.Errorf("base above max = %v, want clamped to 16ms", got)
	}
}
