package serve

// The elastic-capacity layer (DESIGN.md §16): planned live migration and the
// load-driven autoscaler, both built on the sharded plane's existing
// exactly-once machinery rather than beside it.
//
// Planned migration generalizes the proceed-trap failover into a graceful
// path. The state machine is quiesce → checkpoint → transfer → replay →
// release: the source partition's replicas stop taking new placements but
// finish what they hold (quiesce), the mEnclave state snapshots at the
// host-memcpy rate like a dnn.Trainer checkpoint (checkpoint), the snapshot
// crosses the cluster fabric priced through TransferNS — or the local DMA
// engine on a same-node move (transfer), anything still in flight at the
// drain deadline is cancelled and requeued through shCancelInflight exactly
// once (replay), and only then does the source release (release). Because
// every partition boots the same mOS image, the destination carries the same
// measurement as the source: the tenant's attestation tickets stay valid
// across the move and re-admission costs one MAC resume, not a cold quote
// verification.
//
// The autoscaler is a control loop over signals the plane already exports —
// total queue depth, cumulative shed rate, worst tenant p95 and the SLO
// burn-rate — with watermark hysteresis and a cooldown (internal/elastic).
// Scale-down rides the migration primitive and then scrubs the vacated
// partition; scale-up re-boots a released partition, charging mOS boot plus
// re-attestation in virtual time before the capacity is usable. Released
// capacity shrinks the admission bound (capacity() counts it as lost), so
// the loop's own actions feed back into the signals it watches: it can
// oscillate, overshoot and be tuned like a real controller, and the
// scale-storm chaos kind forces exactly that oscillation.
//
// Fault discipline matches the rest of the sharded plane: every migration
// proc and every autoscaler action sequentializes the kernel before touching
// shared state (a no-op on sequential runs), so the mutations interleave
// deterministically with the data plane.

import (
	"fmt"

	"cronus/internal/elastic"
	"cronus/internal/metrics"
	"cronus/internal/sim"
	"cronus/internal/spm"
)

// Migration schedules one planned live migration: at offset At from serving
// start, move the serving capacity of the From partition onto To. Interrupt
// makes the source die mid-checkpoint instead (the migrate-interrupt chaos
// kind: the plane must fall back to crash-failover with nothing lost or
// duplicated); Race force-dispatches one in-flight batch onto the quiescing
// source (the drain-race chaos kind: the racing batch must still resolve
// exactly once).
type Migration struct {
	At        sim.Duration
	From      elastic.Endpoint
	To        elastic.Endpoint
	Interrupt bool
	Race      bool
}

// ScaleStorm schedules one forced autoscaler oscillation window [At, Until)
// (offsets from serving start): every control tick inside it alternates
// scale-down/scale-up regardless of load — the scale-storm chaos kind.
type ScaleStorm struct {
	At    sim.Duration
	Until sim.Duration
}

// validateElastic rejects elastic configurations the plane cannot model.
func validateElastic(cfg Config) error {
	if len(cfg.Migrations) == 0 && cfg.Autoscale == nil && len(cfg.ScaleStorms) == 0 {
		return nil
	}
	if cfg.Shards < 2 {
		return fmt.Errorf("serve: Migrations/Autoscale require the sharded data plane (Shards >= 2)")
	}
	if len(cfg.ScaleStorms) > 0 && cfg.Autoscale == nil {
		return fmt.Errorf("serve: ScaleStorms require Autoscale")
	}
	nodes := cfg.Nodes
	if nodes < 1 {
		nodes = 1
	}
	ppn := cfg.GPUPartitions / nodes
	for i, m := range cfg.Migrations {
		switch {
		case m.At <= 0:
			return fmt.Errorf("serve: Migrations[%d] needs At > 0", i)
		case m.From.Node < 0 || m.From.Node >= nodes || m.To.Node < 0 || m.To.Node >= nodes:
			return fmt.Errorf("serve: Migrations[%d] endpoints out of node range [0,%d)", i, nodes)
		case m.From.Part < 0 || m.From.Part >= ppn || m.To.Part < 0 || m.To.Part >= ppn:
			return fmt.Errorf("serve: Migrations[%d] endpoints out of partition range [0,%d)", i, ppn)
		case m.From == m.To:
			return fmt.Errorf("serve: Migrations[%d] migrates %s onto itself", i, m.From)
		}
	}
	for i, w := range cfg.ScaleStorms {
		if w.At <= 0 || w.Until <= w.At {
			return fmt.Errorf("serve: ScaleStorms[%d] needs 0 < At < Until", i)
		}
	}
	return nil
}

// elState is the elastic-capacity layer's server-side state. Only
// sequentialized procs (migration injectors, the autoscaler loop) mutate it.
type elState struct {
	ctl *elastic.Controller

	// released/booting track partition lifecycle by global partition index
	// (node·ppn + partition); the per-replica released flags mirror it.
	released []bool
	booting  []bool

	// busy serializes capacity actions: one migration at a time.
	busy bool

	migrations  uint64
	interrupted uint64
	races       uint64
	ups         uint64
	downs       uint64
	replayed    uint64

	ctrMigrations  *metrics.Counter
	ctrInterrupted *metrics.Counter
	ctrRaces       *metrics.Counter
	ctrUps         *metrics.Counter
	ctrDowns       *metrics.Counter
	ctrReplayed    *metrics.Counter

	events []string
}

// elBoot builds the elastic layer before any load exists.
func (srv *Server) elBoot() {
	ctlCfg := elastic.Config{}
	if srv.cfg.Autoscale != nil {
		ctlCfg = *srv.cfg.Autoscale
	}
	srv.el = &elState{
		ctl:            elastic.NewController(ctlCfg),
		released:       make([]bool, srv.cfg.GPUPartitions),
		booting:        make([]bool, srv.cfg.GPUPartitions),
		ctrMigrations:  srv.reg.Counter("serve.elastic.migrations"),
		ctrInterrupted: srv.reg.Counter("serve.elastic.interrupted"),
		ctrRaces:       srv.reg.Counter("serve.elastic.drain_races"),
		ctrUps:         srv.reg.Counter("serve.elastic.scale_ups"),
		ctrDowns:       srv.reg.Counter("serve.elastic.scale_downs"),
		ctrReplayed:    srv.reg.Counter("serve.elastic.replayed"),
	}
}

// event appends one timestamped line to the elastic event log.
func (el *elState) event(now sim.Time, msg string) {
	el.events = append(el.events, fmt.Sprintf("%s at %s", msg, sim.Duration(now)))
}

// elPPN is the partition count per node (the whole pool on a single node).
func (srv *Server) elPPN() int {
	if srv.cl != nil {
		return srv.cl.ppn
	}
	return srv.cfg.GPUPartitions
}

// elRepIdx maps an endpoint to its index in every tenant's replica slice.
func (srv *Server) elRepIdx(e elastic.Endpoint) int {
	return e.Node*srv.elPPN() + e.Part
}

// elStart arms the elastic layer from shServe: one injector proc per planned
// migration plus the autoscaler loop, all spawned before the kernel may
// parallelize (stable lids — part of the determinism contract). No-op when
// the layer is unarmed.
func (srv *Server) elStart(p *sim.Proc) {
	if srv.el == nil {
		return
	}
	start := p.Now()
	for i, m := range srv.cfg.Migrations {
		i, m := i, m
		srv.pl.K.SpawnOn(0, lidMigration+uint64(i),
			fmt.Sprintf("serve-migrate-%d", i), func(p *sim.Proc) {
				p.Sleep(m.At)
				p.Sequentialize()
				srv.elMigrate(p, m)
			})
	}
	if srv.cfg.Autoscale != nil {
		for _, w := range srv.cfg.ScaleStorms {
			srv.el.ctl.AddStorm(start+sim.Time(w.At), start+sim.Time(w.Until))
		}
		srv.pl.K.SpawnOn(0, lidAutoscaler, "serve-autoscaler", func(p *sim.Proc) {
			srv.elRun(p)
		})
	}
}

// elSignals samples the plane's load state for one control tick.
func (srv *Server) elSignals(now sim.Time) elastic.Signals {
	var s elastic.Signals
	var offered, shed uint64
	for _, t := range srv.tenants {
		s.QueueDepth += t.shInSystem()
		offered += t.offered
		shed += t.shed
		if p95 := sim.Duration(t.latHist.Quantile(0.95)); p95 > s.P95 {
			s.P95 = p95
		}
		if t.slo != nil {
			if f := t.slo.Signal(now).Fast; f > s.BurnRate {
				s.BurnRate = f
			}
		}
	}
	if offered > 0 {
		s.ShedRate = float64(shed) / float64(offered)
	}
	return s
}

// elRun is the autoscaler loop body: sample, decide, act, every control
// interval until the kernel stops (the same park-forever shape as the
// re-measurement prober). Every action runs sequentialized.
func (srv *Server) elRun(p *sim.Proc) {
	interval := srv.el.ctl.Config().Interval
	inStorm := false
	for {
		p.Sleep(interval)
		now := p.Now()
		storm := srv.el.ctl.StormActive(now)
		act := srv.el.ctl.Decide(now, srv.elSignals(now))
		if act == elastic.Hold && !(inStorm && !storm) {
			inStorm = storm
			continue
		}
		if srv.sh != nil {
			p.Sequentialize()
		}
		switch act {
		case elastic.ScaleUp:
			srv.elScaleUp(p)
		case elastic.ScaleDown:
			srv.elScaleDown(p)
		}
		if inStorm && !storm {
			// The storm window just closed: restore full capacity so the
			// plane converges back to its configured pool instead of
			// parking load behind whatever the last oscillation released.
			srv.elRestore(p)
		}
		inStorm = storm
	}
}

// elMigrate runs one migration through the state machine; config-scheduled
// migrations and autoscaler scale-downs both land here (drain-for-upgrade,
// consolidation and scale-down are one primitive). The source stays released
// afterwards — on a planned run that is the drain semantics, under the
// autoscaler the scale-up path re-boots it when load demands. Returns true
// when the source was released, false when the migration was skipped or
// interrupted.
func (srv *Server) elMigrate(p *sim.Proc, m Migration) bool {
	el := srv.el
	now := p.Now()
	label := fmt.Sprintf("migration %s -> %s", m.From, m.To)
	if el.busy {
		el.event(now, label+" skipped (another capacity action in progress)")
		return false
	}
	src, dst := srv.elRepIdx(m.From), srv.elRepIdx(m.To)
	if el.released[src] || el.booting[src] {
		el.event(now, label+" skipped (source out of service)")
		return false
	}
	if el.released[dst] || el.booting[dst] {
		el.event(now, label+" skipped (destination out of service)")
		return false
	}
	for _, t := range srv.tenants {
		if t.reps[src].down || t.reps[src].quarantined {
			el.event(now, label+" skipped (source failed)")
			return false
		}
		if t.reps[dst].quarantined {
			el.event(now, label+" skipped (destination quarantined)")
			return false
		}
	}
	el.busy = true
	// Quiesce: the source takes no new placements but finishes what its
	// lanes hold. Admission capacity is untouched — a draining partition is
	// still doing work.
	el.event(now, label+": quiesce")
	for _, t := range srv.tenants {
		t.reps[src].draining = true
	}
	if m.Race {
		srv.elDrainRace(now, m, src)
	}
	// Checkpoint: snapshot every tenant's mEnclave on the source at the
	// host-memcpy rate (the dnn.Trainer DtoH checkpoint path).
	ck := srv.elCheckpointBytes()
	ckNS := srv.pl.Costs.Memcpy(ck)
	if m.Interrupt {
		// The source dies halfway through the snapshot. Un-quiesce (the
		// partition is about to be down, not draining) and hand the wreck to
		// the ordinary crash-failover path: the SPM proceed-trap fires the
		// failure subscription, shCancelInflight replays the in-flight work,
		// and the partition rejoins after restart. The migration is
		// abandoned, nothing is lost or duplicated.
		p.Sleep(ckNS / 2)
		for _, t := range srv.tenants {
			t.reps[src].draining = false
		}
		el.interrupted++
		el.ctrInterrupted.Inc()
		el.busy = false
		el.event(p.Now(), label+" interrupted: source failed mid-checkpoint")
		srv.plats[m.From.Node].SPM.Fail(srv.plats[m.From.Node].GPUs[m.From.Part].Part, spm.FailPanic)
		return false
	}
	p.Sleep(ckNS)
	// Replay: the drain deadline. Whatever the source still holds is
	// cancelled and requeued through the failover primitive — each request
	// re-dispatches exactly once, on the destination, because the source is
	// still draining and about to release.
	replayed := 0
	for _, t := range srv.tenants {
		replayed += srv.shCancelInflight(t, t.reps[src])
	}
	el.replayed += uint64(replayed)
	el.ctrReplayed.Add(uint64(replayed))
	// Transfer: the snapshot crosses the fabric to another node (TransferNS
	// prices serialization, bandwidth and slow-link windows) or rides the
	// local DMA engine on a same-node move, then restores into the
	// destination enclaves at the memcpy rate.
	if srv.cl != nil && m.From.Node != m.To.Node {
		p.Sleep(srv.cl.fab.TransferNS(m.To.Node, ck, p.Now()))
	} else {
		p.Sleep(srv.pl.Costs.DMA(ck))
	}
	p.Sleep(srv.pl.Costs.Memcpy(ck))
	// Release: only now does the source leave service.
	done := p.Now()
	for _, t := range srv.tenants {
		t.reps[src].draining = false
		t.reps[src].released = true
	}
	el.released[src] = true
	el.migrations++
	el.ctrMigrations.Inc()
	el.busy = false
	el.event(done, fmt.Sprintf("%s completed (%d KiB state, %d replayed)", label, ck>>10, replayed))
	for _, t := range srv.tenants {
		if srv.cl != nil && t.home == m.From.Node && srv.clHomeUnusable(t) {
			// The release emptied the tenant's home placement set: the move
			// was effectively a node evacuation, so re-home (which also
			// flushes the backlog to the new home).
			if srv.clRehome(done, t, "migrated") {
				continue
			}
		}
		srv.shFlushBacklog(done, t)
	}
	return true
}

// elDrainRace injects the drain-race fault: one batch is force-dispatched
// onto the quiescing source after the placement policies already stopped
// picking it — the race between an admission decision and the quiesce. The
// batch either completes on the source before the drain deadline or is
// cancelled and replayed with everything else; exactly-once must hold either
// way. Only tenants whose placement set contains the source race (on a
// cluster that is the tenants homed on the source node — racing anyone else
// would fabricate a split-brain the real race cannot produce).
func (srv *Server) elDrainRace(now sim.Time, m Migration, src int) {
	for _, t := range srv.tenants {
		if srv.cl != nil && t.home != m.From.Node {
			continue
		}
		rep := t.reps[src]
		var b *batch
		switch {
		case t.shOpen != nil:
			// Seal the open batch early (shCloseBatch's bookkeeping) and aim
			// it at the source instead of letting the policy place it.
			b = t.shOpen
			t.shOpen = nil
			t.shGen++
			t.q.depth.Set(0)
		case len(t.shBacklog) > 0:
			b = t.shBacklog[0]
			t.shBacklog = t.shBacklog[1:]
		default:
			continue
		}
		srv.el.races++
		srv.el.ctrRaces.Inc()
		srv.el.event(now, fmt.Sprintf("drain-race: %s batch of %d admitted onto quiescing %s",
			t.spec.Name, len(b.reqs), m.From))
		srv.shDispatchTo(now, t, b, rep)
		return
	}
	srv.el.event(now, fmt.Sprintf("drain-race on %s: no batch available to race", m.From))
}

// elCheckpointBytes sizes one partition's migration snapshot: per tenant,
// the mEnclave state plus the staging arena contents.
func (srv *Server) elCheckpointBytes() int {
	state := srv.el.ctl.Config().EnclaveStateBytes
	total := 0
	for _, t := range srv.tenants {
		total += state + t.reps[0].inCap
	}
	return total
}

// elActive counts a node's in-service partitions (not released, not booting,
// not quarantined) and returns the highest- and lowest-indexed ones.
func (srv *Server) elActive(node int) (active, hi, lo int) {
	ppn := srv.elPPN()
	hi, lo = -1, -1
	for pi := 0; pi < ppn; pi++ {
		idx := node*ppn + pi
		if srv.el.released[idx] || srv.el.booting[idx] {
			continue
		}
		if srv.tenants[0].reps[idx].quarantined {
			continue
		}
		active++
		hi = pi
		if lo < 0 {
			lo = pi
		}
	}
	return active, hi, lo
}

// elScaleDown picks the node with the most active partitions (ties: lowest
// node), migrates its highest active partition onto its lowest, and scrubs
// the vacated one. MinActive partitions per node always survive.
func (srv *Server) elScaleDown(p *sim.Proc) {
	if srv.el.busy {
		return
	}
	nodes := 1
	if srv.cl != nil {
		nodes = srv.cl.nodes
	}
	best, bestActive := -1, 0
	for n := 0; n < nodes; n++ {
		if srv.cl != nil && !srv.cl.alive[n] {
			continue
		}
		if active, _, _ := srv.elActive(n); active > bestActive {
			best, bestActive = n, active
		}
	}
	if best < 0 || bestActive <= srv.el.ctl.Config().MinActive {
		return
	}
	_, hi, lo := srv.elActive(best)
	if hi == lo {
		return
	}
	m := Migration{
		From: elastic.Endpoint{Node: best, Part: hi},
		To:   elastic.Endpoint{Node: best, Part: lo},
	}
	if !srv.elMigrate(p, m) {
		return
	}
	srv.el.downs++
	srv.el.ctrDowns.Inc()
	p.Sleep(srv.el.ctl.Config().ScrubCost)
	srv.el.event(p.Now(), fmt.Sprintf("scale-down: %s released and scrubbed", m.From))
}

// elScaleUp re-activates the first released partition (node order, then
// partition order), charging mOS boot plus re-attestation in virtual time
// before the capacity is usable. The re-booted partition runs the same mOS
// image, so its measurement matches the boot-pinned value and existing
// tickets keep working.
func (srv *Server) elScaleUp(p *sim.Proc) {
	if srv.el.busy {
		return
	}
	idx := -1
	for i, rel := range srv.el.released {
		if rel && !srv.el.booting[i] {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	el := srv.el
	cfg := el.ctl.Config()
	ppn := srv.elPPN()
	ep := elastic.Endpoint{Node: idx / ppn, Part: idx % ppn}
	el.booting[idx] = true
	el.busy = true
	el.event(p.Now(), fmt.Sprintf("scale-up: booting %s (boot %s + attest %s)",
		ep, cfg.BootCost, cfg.AttestCost))
	p.Sleep(cfg.BootCost + cfg.AttestCost)
	for _, t := range srv.tenants {
		t.reps[idx].released = false
	}
	el.released[idx] = false
	el.booting[idx] = false
	el.busy = false
	el.ups++
	el.ctrUps.Inc()
	now := p.Now()
	el.event(now, fmt.Sprintf("scale-up: %s in service", ep))
	for _, t := range srv.tenants {
		srv.shFlushBacklog(now, t)
	}
}

// elRestore scales every released partition back into service — the
// post-storm convergence path, so a closed oscillation window leaves the
// plane at its configured capacity.
func (srv *Server) elRestore(p *sim.Proc) {
	for {
		remaining := 0
		for i, rel := range srv.el.released {
			if rel && !srv.el.booting[i] {
				remaining++
			}
		}
		if remaining == 0 {
			return
		}
		srv.elScaleUp(p)
		after := 0
		for i, rel := range srv.el.released {
			if rel && !srv.el.booting[i] {
				after++
			}
		}
		if after >= remaining {
			return // no progress (busy or stuck): never spin
		}
	}
}
