package serve

import (
	"errors"
	"fmt"

	"cronus/internal/core"
	"cronus/internal/gpu"
	"cronus/internal/otrace"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/srpc"
	"cronus/internal/trace"
)

// replica is one (tenant, partition) serving endpoint: a CUDA mEnclave on
// the partition, owned by the tenant's session, with a worker proc that
// executes placed batches in order. When the partition proceed-traps, the
// worker requeues everything it held (in-flight batch first, then pending,
// preserving FIFO order), waits out the SPM recovery, and reconnects with a
// fresh enclave in the partition's new epoch — the failover-aware retry
// layer of the plane.
type replica struct {
	srv      *Server
	t        *tenant
	node     int // owning fabric node (0 on a single-node plane)
	partIdx  int // node-local partition index
	partName string

	cubin    []byte
	inCap    int
	smDemand uint64

	conn   *core.CUDAConn
	outPtr uint64
	inPtr  uint64
	gen    int // enclave incarnation, bumped per reconnect for unique names

	pending     []*batch
	outstanding int
	down        bool
	quarantined bool // partition crash-looped into quarantine; park until release
	draining    bool // quiescing for a planned migration; finish in-flight, take no new work
	released    bool // partition released by elastic scale-down/migration; out of service
	cond        *sim.Cond

	// consecTimeouts is the circuit-breaker state: consecutive attempt
	// timeouts without an intervening success. Reaching
	// Config.HangReportAfter reports the partition to the SPM as hung.
	consecTimeouts int

	// Sharded-plane state (sharded.go; nil/zero on the classic path): the
	// per-lane flow-model stripes living on the replica's partition shard,
	// the host-side round-robin lane cursor, the host-side set of batches
	// dispatched but not yet completed (cancellation on failover), and the
	// mailbox port batches arrive on.
	lanes     []laneState
	nextLane  int
	inflightB []*batch
	lanePort  *sim.Port[*batch]
}

// plat returns the platform of the replica's owning node. Partition and SPM
// lookups must go through it: partIdx is node-local, and every node has its
// own SPM and "gpu-part%d" namespace.
func (rep *replica) plat() *core.Platform {
	return rep.srv.plats[rep.node]
}

// sess returns the tenant's session on the replica's node.
func (rep *replica) sess() *core.Session {
	return rep.t.sessions[rep.node]
}

// retired reports whether the replica's partition has left service for good
// barring operator/autoscaler action: crash-loop quarantine or an elastic
// release. Retired replicas count against admitted capacity and are skipped
// by placement, rehoming eligibility and the pool-dead check alike.
func (rep *replica) retired() bool {
	return rep.quarantined || rep.released
}

// unplaceable reports whether the placement policy must skip the replica:
// retired, mid-failover, or quiescing for a planned migration.
func (rep *replica) unplaceable() bool {
	return rep.down || rep.quarantined || rep.draining || rep.released
}

func newReplica(p *sim.Proc, srv *Server, t *tenant, node, pi int, smDemand uint64) (*replica, error) {
	kernels := []string{serveKernel}
	seen := map[string]bool{serveKernel: true}
	maxIn := 4
	for _, cl := range t.classes {
		if cl.spec.Bench != nil {
			for _, kn := range cl.spec.Bench.Kernels {
				if !seen[kn] {
					seen[kn] = true
					kernels = append(kernels, kn)
				}
			}
			continue
		}
		if cl.inBytes > maxIn {
			maxIn = cl.inBytes
		}
	}
	rep := &replica{
		srv:      srv,
		t:        t,
		node:     node,
		partIdx:  pi,
		partName: fmt.Sprintf("gpu-part%d", pi),
		cubin:    gpu.BuildCubin(kernels...),
		inCap:    maxIn * srv.cfg.MaxBatch,
		smDemand: smDemand,
		cond:     sim.NewCond(srv.pl.K),
	}
	if srv.sh != nil {
		srv.shInitReplica(rep)
	}
	if err := rep.connect(p); err != nil {
		return nil, err
	}
	if srv.sh == nil {
		srv.pl.K.Spawn(fmt.Sprintf("serve-worker-%s-p%d", t.spec.Name, pi), rep.run)
	}
	return rep, nil
}

// connect creates a fresh CUDA mEnclave on the replica's partition and
// allocates its staging buffers. Each incarnation gets a unique enclave
// name so post-failover attestation manifests stay distinguishable.
func (rep *replica) connect(p *sim.Proc) error {
	rep.gen++
	opts := core.CUDAOptions{
		Cubin:     rep.cubin,
		Partition: rep.partName,
		Name:      fmt.Sprintf("%s/r%d.%d", rep.t.spec.Name, rep.partIdx, rep.gen),
	}
	if rep.srv.sh != nil {
		// The sharded plane opens one real sRPC ring per modeled lane, each
		// with a zero-copy payload arena sized for a full batch: executors
		// land on the partition's kernel shard and the control-plane costs
		// (attestation, ring setup, arena grant) are paid for real.
		opts.Rings = rep.srv.cfg.Lanes
		opts.ZCPayload = rep.inCap
	}
	conn, err := rep.sess().OpenCUDA(p, opts)
	if err != nil {
		return err
	}
	out, err := conn.MemAlloc(p, 4)
	if err != nil {
		_ = conn.Close(p)
		return err
	}
	in, err := conn.MemAlloc(p, uint64(rep.inCap))
	if err != nil {
		_ = conn.Close(p)
		return err
	}
	rep.conn, rep.outPtr, rep.inPtr = conn, out, in
	return nil
}

// enqueue places a batch on the replica (called by the dispatcher).
func (rep *replica) enqueue(b *batch) {
	rep.pending = append(rep.pending, b)
	rep.outstanding += len(b.reqs)
	rep.cond.Broadcast()
}

// TimeoutError is the typed completion error of a batch that exhausted its
// retry budget: every attempt (the first plus Config.MaxRetries retries)
// was abandoned by the request watchdog. It counts as Failed in the tenant
// accounting, so conservation still holds.
type TimeoutError struct {
	Tenant   string
	Attempts int
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("serve: request timed out on tenant %s after %d attempts", e.Tenant, e.Attempts)
}

// errAttemptTimeout marks one batch attempt abandoned by the watchdog. It is
// internal: after retries it is rewrapped as *TimeoutError.
var errAttemptTimeout = errors.New("serve: batch attempt timed out")

// run is the worker body: execute pending batches in order; on peer failure
// requeue and reconnect.
func (rep *replica) run(p *sim.Proc) {
	for {
		if rep.quarantined {
			rep.awaitRelease(p)
			continue
		}
		if rep.down {
			rep.failover(p)
			continue
		}
		if len(rep.pending) == 0 {
			rep.cond.Wait(p)
			continue
		}
		b := rep.pending[0]
		rep.pending[0] = nil
		rep.pending = rep.pending[1:]
		err := rep.execWithRetry(p, b)
		if err != nil && errors.Is(err, srpc.ErrPeerFailed) {
			// The partition proceed-trapped under us. Requeue the
			// in-flight batch and everything behind it, oldest first, and
			// enter failover. Nothing completes here, so nothing is lost;
			// nothing completed earlier is requeued, so nothing
			// duplicates.
			rep.down = true
			rs := append([]*Request{}, b.reqs...)
			for _, pb := range rep.pending {
				rs = append(rs, pb.reqs...)
			}
			rep.pending = nil
			rep.requeue(rs)
			continue
		}
		rep.outstanding -= len(b.reqs)
		for _, r := range b.reqs {
			rep.srv.complete(p, rep.t, r, err)
		}
	}
}

// requeue sends held requests back through the tenant queue (at the front,
// bypassing admission: they were admitted once already) for re-placement on
// a live replica.
func (rep *replica) requeue(rs []*Request) {
	rep.outstanding -= len(rs)
	now := rep.srv.pl.K.Now()
	for _, r := range rs {
		r.Replays++
		rep.t.replayed++
		rep.srv.mark(r, otrace.StageRequeue, now)
	}
	rep.t.q.pushFront(rs)
}

// failover drains anything still held, waits for the SPM to finish the
// partition's proceed-trap recovery, and reconnects with bounded
// exponential backoff. A partition quarantined while we wait flips the
// replica into the release-parking path instead.
func (rep *replica) failover(p *sim.Proc) {
	rep.drainPending()
	part := rep.plat().GPUs[rep.partIdx].Part
	if err := rep.plat().SPM.AwaitReady(p, part); err != nil {
		rep.quarantined = true
		return
	}
	// Driver re-probe settle time before the session re-creates enclaves.
	p.Sleep(500 * sim.Microsecond)
	if err := rep.reconnect(p); err != nil {
		rep.quarantined = true
		return
	}
	rep.down = false
	rep.consecTimeouts = 0
}

// drainPending requeues every batch the replica still holds so the
// dispatcher re-places the load on surviving replicas.
func (rep *replica) drainPending() {
	if len(rep.pending) == 0 {
		return
	}
	var rs []*Request
	for _, b := range rep.pending {
		rs = append(rs, b.reqs...)
	}
	rep.pending = nil
	rep.requeue(rs)
}

// reconnectBackoff is the delay after reconnect attempt n (1-based): the
// base doubling per attempt, capped at max.
func reconnectBackoff(base, max sim.Duration, attempt int) sim.Duration {
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// reconnect re-creates the replica's enclave, retrying with exponential
// backoff (Config.ReconnectBackoff doubling up to ReconnectBackoffMax) and
// counting every attempt in serve.reconnect.attempts. It waits out any
// in-flight recovery before each attempt; a quarantined partition surfaces
// as a typed *spm.QuarantinedError — immediately via AwaitReady, or at the
// ReconnectMaxAttempts cap if the quarantine engaged mid-attempt. A
// partition that is merely slow keeps being retried at the capped backoff.
func (rep *replica) reconnect(p *sim.Proc) error {
	part := rep.plat().GPUs[rep.partIdx].Part
	cfg := &rep.srv.cfg
	for attempt := 1; ; attempt++ {
		if err := rep.plat().SPM.AwaitReady(p, part); err != nil {
			return err
		}
		rep.srv.ctrReconnects.Inc()
		if err := rep.connect(p); err == nil {
			return nil
		}
		if attempt >= cfg.ReconnectMaxAttempts && part.State() == spm.PartQuarantined {
			return &spm.QuarantinedError{Partition: rep.partName}
		}
		p.Sleep(reconnectBackoff(cfg.ReconnectBackoff, cfg.ReconnectBackoffMax, attempt))
	}
}

// awaitRelease parks the worker while its partition sits in quarantine:
// held batches are requeued so load re-places on surviving replicas, then
// the worker waits through the quarantine for the operator's release and
// rejoins the pool with a fresh enclave.
func (rep *replica) awaitRelease(p *sim.Proc) {
	rep.drainPending()
	part := rep.plat().GPUs[rep.partIdx].Part
	rep.plat().SPM.AwaitRelease(p, part)
	// Same driver re-probe settle as the failover path.
	p.Sleep(500 * sim.Microsecond)
	if err := rep.reconnect(p); err != nil {
		return // re-quarantined: the worker loop parks again
	}
	rep.quarantined = false
	rep.down = false
	rep.consecTimeouts = 0
}

// reportHang is the circuit breaker tripping: Config.HangReportAfter
// consecutive attempt timeouts mean the partition is wedged, so instead of
// retrying blindly the replica reports the symptom to the SPM — closing
// the loop from per-request timeout to FailHang — and hands its batch to
// the failover path by failing with ErrPeerFailed.
func (rep *replica) reportHang(p *sim.Proc) error {
	rep.consecTimeouts = 0
	rep.srv.ctrHangReports.Inc()
	rep.plat().SPM.Fail(rep.plat().GPUs[rep.partIdx].Part, spm.FailHang)
	return fmt.Errorf("serve: replica %s/p%d reported hang after consecutive timeouts: %w",
		rep.t.spec.Name, rep.partIdx, srpc.ErrPeerFailed)
}

// execWithRetry drives one batch through bounded attempts. Peer failures
// pass straight up to the failover path (they are handled by requeueing, not
// retrying); watchdog timeouts and ring corruption recycle the connection
// and retry with exponential backoff; any other error is a deterministic
// request failure and is returned as-is. Retries never complete a request —
// only the final return from run() does — so exactly-once accounting is
// preserved by construction.
func (rep *replica) execWithRetry(p *sim.Proc, b *batch) error {
	backoff := rep.srv.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		rep.srv.markBatch(b, otrace.StageExec, p.Now())
		err := rep.execAttempt(p, b)
		if err == nil {
			rep.consecTimeouts = 0
			return nil
		}
		if errors.Is(err, srpc.ErrPeerFailed) {
			return err
		}
		timedOut := errors.Is(err, errAttemptTimeout)
		if timedOut {
			rep.t.timeouts++
			rep.srv.ctrTimeouts.Inc()
			rep.consecTimeouts++
			if hr := rep.srv.cfg.HangReportAfter; hr > 0 && rep.consecTimeouts >= hr {
				return rep.reportHang(p)
			}
		} else {
			rep.consecTimeouts = 0
			if !errors.Is(err, srpc.ErrRingCorrupt) {
				return err
			}
		}
		// From here the batch is between attempts: recycle teardown and the
		// retry pause both attribute to the backoff stage.
		rep.srv.markBatch(b, otrace.StageBackoff, p.Now())
		if attempt >= rep.srv.cfg.MaxRetries {
			// Budget exhausted: still recycle, so the wedged stream does
			// not bleed one more timeout into the next batch.
			if rerr := rep.recycle(p); rerr != nil {
				return fmt.Errorf("serve: recycle refused: %v: %w", rerr, srpc.ErrPeerFailed)
			}
			if timedOut {
				return &TimeoutError{Tenant: rep.t.spec.Name, Attempts: attempt + 1}
			}
			return err
		}
		for _, r := range b.reqs {
			r.Retries++
		}
		rep.t.retried += uint64(len(b.reqs))
		rep.srv.ctrRetries.Inc()
		if rerr := rep.recycle(p); rerr != nil {
			return fmt.Errorf("serve: recycle refused: %v: %w", rerr, srpc.ErrPeerFailed)
		}
		p.Sleep(backoff)
		backoff *= 2
	}
}

// execAttempt runs one attempt of a batch. Without a configured
// RequestTimeout it is exactly exec. With one, exec runs on a child proc and
// this worker acts as the watchdog: it parks until the child finishes or the
// deadline passes, then kills an overdue child and reports errAttemptTimeout.
// The child signals completion through an interrupt, so a finishing attempt
// wakes the watchdog immediately rather than at the deadline.
func (rep *replica) execAttempt(p *sim.Proc, b *batch) error {
	to := rep.srv.cfg.RequestTimeout
	if to <= 0 {
		return rep.exec(p, b)
	}
	var (
		done    bool
		execErr error
	)
	child := rep.srv.pl.K.Spawn(
		fmt.Sprintf("serve-exec-%s-p%d", rep.t.spec.Name, rep.partIdx),
		func(cp *sim.Proc) {
			execErr = rep.exec(cp, b)
			done = true
			rep.srv.pl.K.Interrupt(p)
		})
	deadline := p.Now() + sim.Time(to)
	for !done && p.Now() < deadline {
		p.SleepInterruptible(sim.Duration(deadline - p.Now()))
	}
	if done {
		return execErr
	}
	rep.srv.pl.K.Kill(child)
	return errAttemptTimeout
}

// recycle tears the replica's connection down without draining it — the
// stream may be wedged on a hung launch or poisoned by corruption — and
// connects a fresh enclave incarnation. If the partition happens to be in
// proceed-trap recovery, the reconnect loop waits it out exactly like
// failover does; a quarantined partition surfaces the typed refusal.
func (rep *replica) recycle(p *sim.Proc) error {
	rep.conn.Abandon()
	return rep.reconnect(p)
}

// exec runs one batch on the device. Inference batches upload the combined
// input and launch the serve kernel once with the batch's total work —
// per-launch dispatch, world switches and sRPC round trips are paid once
// per batch instead of once per request. General-compute batches run the
// full rodinia pass (always a single request).
func (rep *replica) exec(p *sim.Proc, b *batch) error {
	// The batch executes on behalf of its head request's trace: one
	// batch-exec span on the partition track, under which the sRPC, mOS and
	// device hooks all link (the proc carries the context; a watchdog kill
	// still runs the deferred close during unwind, so the span is recorded
	// and the context restored either way).
	if rep.srv.cfg.Trace && trace.Default.Enabled() && b.reqs[0].TraceID != 0 {
		head := b.reqs[0]
		defer trace.Default.StartSpan(p, "serve", rep.partName, "batch-exec",
			trace.SpanCtx{Trace: head.TraceID, Span: head.spanID})()
	}
	cl := b.class
	if cl.spec.Bench != nil {
		return cl.spec.Bench.Run(p, rep.conn)
	}
	n := len(b.reqs)
	in := make([]byte, cl.inBytes*n)
	if err := rep.conn.HtoD(p, rep.inPtr, in); err != nil {
		return err
	}
	work := uint64(cl.itemNS) * uint64(n)
	if err := rep.conn.Launch(p, serveKernel, gpu.Dim{n, 1, 1},
		rep.outPtr, uint64(n), work, rep.smDemand); err != nil {
		return err
	}
	return rep.conn.Sync(p)
}
