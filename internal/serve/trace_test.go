package serve_test

import (
	"bytes"
	"strings"
	"testing"

	"cronus/internal/otrace"
	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/slo"
	"cronus/internal/trace"
)

// tracedConfig is the shared base load with causal tracing armed.
func tracedConfig(seed int64) serve.Config {
	cfg := twoTenantConfig(seed)
	cfg.Trace = true
	return cfg
}

// Every request trace must satisfy the conservative-attribution contract:
// segments contiguous over [Arrived, Done], durations summing exactly to the
// end-to-end latency — on clean runs and across failover.
func TestTraceAttributionConservative(t *testing.T) {
	for name, mod := range map[string]func(*serve.Config){
		"clean":    func(*serve.Config) {},
		"failover": func(cfg *serve.Config) { cfg.FailAt = 4 * sim.Millisecond },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := tracedConfig(3)
			mod(&cfg)
			res, err := serve.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkAccounting(t, res)
			var completed uint64
			for _, tr := range res.Tenants {
				completed += tr.Completed + tr.Failed
			}
			if uint64(len(res.Traces)) != completed {
				t.Fatalf("traces = %d, completions = %d", len(res.Traces), completed)
			}
			ids := make(map[uint64]bool, len(res.Traces))
			for i := range res.Traces {
				rt := &res.Traces[i]
				if err := rt.Validate(); err != nil {
					t.Fatal(err)
				}
				if rt.TraceID == 0 || ids[rt.TraceID] {
					t.Fatalf("trace id %#x zero or duplicated", rt.TraceID)
				}
				ids[rt.TraceID] = true
			}
			// The attribution analyzer preserves the conservation: stage
			// totals sum to the tenant's total latency exactly.
			for _, ta := range otrace.Attribute(res.Traces).Tenants {
				var sum sim.Duration
				for _, st := range ta.Stages {
					sum += st.Total
				}
				if sum != ta.TotalLatency {
					t.Errorf("%s: stage totals %v != total latency %v", ta.Tenant, sum, ta.TotalLatency)
				}
			}
		})
	}
}

// Two identical seeded runs with the collector on must export byte-identical
// Chrome trace JSON — the determinism contract cronus-trace relies on.
func TestTraceExportByteIdentical(t *testing.T) {
	export := func() []byte {
		trace.Default.Enable()
		defer trace.Default.Disable()
		if _, err := serve.Run(tracedConfig(7)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.Default.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if len(a) == 0 {
		t.Fatal("empty export")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical seeded runs exported different traces")
	}
	// The export carries linked request spans and the execution spine.
	for _, want := range []string{"req:alpha", "request resnet18", "batch-exec", `"trace":"0x`, "dispatch cuLaunchKernel"} {
		if !bytes.Contains(a, []byte(want)) {
			t.Errorf("export missing %q", want)
		}
	}
}

// With tracing on, completion latencies reach the tenant histograms as
// exemplars: the p99 tail points back at concrete trace ids.
func TestTraceTailExemplars(t *testing.T) {
	res, err := serve.Run(tracedConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	report := res.Report()
	if !strings.Contains(report, "degradation:") {
		t.Fatalf("report missing degradation breakdown:\n%s", report)
	}
	// The largest exemplar equals the tenant's max latency and names a
	// real trace id from this run.
	ids := make(map[uint64]bool)
	var maxLat sim.Duration
	for i := range res.Traces {
		ids[res.Traces[i].TraceID] = true
		if l := res.Traces[i].Latency(); l > maxLat {
			maxLat = l
		}
	}
	var best int64
	for _, h := range res.Metrics.Histograms {
		for _, ex := range h.Exemplars {
			if !ids[ex.TraceID] {
				t.Fatalf("exemplar trace %#x not in this run", ex.TraceID)
			}
			if ex.Value > best {
				best = ex.Value
			}
		}
	}
	if best != int64(maxLat) {
		t.Fatalf("largest exemplar %d != max latency %d", best, int64(maxLat))
	}
}

// SLO accounting must balance: good + bad == completed + failed, and the
// burn-rate report rows are present in the text report.
func TestSLOAccountingBalances(t *testing.T) {
	cfg := tracedConfig(9)
	cfg.SLO = &slo.Objective{
		LatencyTarget: 300 * sim.Microsecond,
		ErrorBudget:   0.05,
		Window:        cfg.Window,
	}
	res, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SLOs) != len(res.Tenants) {
		t.Fatalf("slo rows = %d, tenants = %d", len(res.SLOs), len(res.Tenants))
	}
	for i, s := range res.SLOs {
		tr := &res.Tenants[i]
		if s.Name != tr.Name {
			t.Fatalf("slo row %d is %s, tenant is %s", i, s.Name, tr.Name)
		}
		if s.Good+s.Bad != tr.Completed+tr.Failed {
			t.Errorf("%s: good %d + bad %d != completions %d",
				s.Name, s.Good, s.Bad, tr.Completed+tr.Failed)
		}
	}
	if !strings.Contains(res.Report(), "slo: ") {
		t.Fatalf("report missing slo rows:\n%s", res.Report())
	}
}

// SLOAdmission tightens the cap while the burn-rate signal fires: under an
// impossible latency target every completion is bad, the signal fires, and
// the degraded run sheds more than the same run without the coupling.
func TestSLOAdmissionDegrades(t *testing.T) {
	run := func(admission bool) *serve.Result {
		cfg := twoTenantConfig(11)
		// Load heavy enough that the admission cap binds: halving it under
		// a firing signal must change the shed count.
		for i := range cfg.Tenants {
			cfg.Tenants[i].Rate = 20000
			cfg.Tenants[i].QueueCap = 4
		}
		cfg.SLO = &slo.Objective{
			LatencyTarget: sim.Nanosecond, // unmeetable: everything is bad
			ErrorBudget:   0.01,
			Window:        cfg.Window,
		}
		cfg.SLOAdmission = admission
		res, err := serve.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkAccounting(t, res)
		return res
	}
	base, degraded := run(false), run(true)
	var baseShed, degradedShed uint64
	for i := range base.Tenants {
		baseShed += base.Tenants[i].Shed
		degradedShed += degraded.Tenants[i].Shed
	}
	if degradedShed <= baseShed {
		t.Fatalf("slo admission did not tighten: shed %d (coupled) vs %d (uncoupled)",
			degradedShed, baseShed)
	}
	for _, s := range degraded.SLOs {
		if !s.Firing {
			t.Errorf("%s: burn-rate signal not firing under unmeetable target", s.Name)
		}
	}
}
