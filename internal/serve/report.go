package serve

import (
	"fmt"
	"strings"

	"cronus/internal/metrics"
	"cronus/internal/otrace"
	"cronus/internal/sim"
	"cronus/internal/slo"
	"cronus/internal/spm"
)

// TenantResult is one tenant's per-run SLO accounting.
type TenantResult struct {
	Name string

	Offered    uint64
	Admitted   uint64
	Shed       uint64
	Completed  uint64
	Failed     uint64
	Replayed   uint64 // failover replays (requeue events, summed over requests)
	Retried    uint64 // watchdog retries (timeout/corruption, summed over requests)
	Timeouts   uint64 // batch attempts abandoned by the request watchdog
	Duplicates uint64 // duplicate completions observed (must stay 0)

	// Latency quantiles over completed requests, virtual nanoseconds.
	P50NS  float64
	P95NS  float64
	P99NS  float64
	MeanNS float64

	// GoodputRPS is completed requests per virtual second of load window.
	GoodputRPS float64
	// ShedRate is shed/offered (0 when nothing was offered).
	ShedRate float64

	// Home is the node the placement ring assigned at boot; Rehomed is set
	// when cross-node failover moved the tenant during the run. Zero-valued
	// on a single-node plane.
	Home    int
	Rehomed bool
}

// FailureSummary is one partition failure observed during the run.
// Recovered is false when the run drained before the partition's mOS
// restart completed (replays were absorbed by surviving replicas) — or,
// when Quarantined is set, because the crash-loop policy refused the
// restart outright.
type FailureSummary struct {
	Partition   string
	Reason      spm.FailReason
	FailedAt    sim.Time
	Recovered   bool
	Quarantined bool
	DowntimeNS  sim.Duration
}

// Result is the outcome of one serving-plane run. All fields derive from
// virtual time and seeded RNG streams, so Report() is byte-identical across
// runs of the same Config.
type Result struct {
	Seed     int64
	Policy   Policy
	MaxBatch int
	Window   sim.Duration

	Tenants []TenantResult

	Batches   uint64
	BatchReqs uint64

	Failures []FailureSummary

	// Requests is the per-request record (set when Config.KeepRequests).
	Requests []*Request

	// Traces is the per-request causal record in completion order (set
	// when Config.Trace): feed it to otrace.Attribute for the per-tenant
	// per-stage latency attribution table.
	Traces []otrace.RequestTrace

	// SLOs is the per-tenant burn-rate accounting (set when Config.SLO).
	SLOs []TenantSLO

	// Metrics is the run's final metrics snapshot — including the tenant
	// latency histograms, whose tails carry trace-id exemplars when
	// Config.Trace is set.
	Metrics *metrics.Snapshot

	// DrainedAt is the virtual time the last admitted request completed.
	DrainedAt sim.Time

	// Nodes is the fabric node count (0 or 1 means single-node). SplitBrain
	// counts no-split-brain invariant violations — dispatches to a node while
	// another still carried the tenant's live requests — and must stay 0.
	// NodeEvents is the deterministic cluster event log (crashes, re-homes).
	Nodes      int
	SplitBrain uint64
	NodeEvents []string

	// Elastic is the elastic-capacity summary (nil unless migrations or
	// autoscaling were armed).
	Elastic *ElasticResult
}

// ElasticResult summarizes the elastic-capacity layer's run: completed and
// interrupted migrations, injected drain races, autoscaler actions, requests
// replayed at migration drain deadlines, and the deterministic event log.
type ElasticResult struct {
	Migrations  uint64
	Interrupted uint64
	DrainRaces  uint64
	ScaleUps    uint64
	ScaleDowns  uint64
	Replayed    uint64
	Events      []string
}

// TenantSLO is one tenant's SLO outcome at drain time.
type TenantSLO struct {
	Name      string
	Objective slo.Objective
	// Good/Bad are cumulative outcome counts over the whole run.
	Good uint64
	Bad  uint64
	// BudgetConsumed is the fraction of the cumulative error budget burned
	// (>1 means the objective was violated).
	BudgetConsumed float64
	// FastBurn/SlowBurn/Firing are the burn-rate signal at drain time.
	FastBurn float64
	SlowBurn float64
	Firing   bool
}

// AvgBatch is the mean requests per placed batch.
func (r *Result) AvgBatch() float64 {
	if r.Batches == 0 {
		return 0
	}
	return float64(r.BatchReqs) / float64(r.Batches)
}

// Tenant returns the named tenant's result row.
func (r *Result) Tenant(name string) *TenantResult {
	for i := range r.Tenants {
		if r.Tenants[i].Name == name {
			return &r.Tenants[i]
		}
	}
	return nil
}

// Report renders the run as a deterministic text table.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving plane: seed=%d policy=%s max-batch=%d window=%s avg-batch=%.2f\n",
		r.Seed, r.Policy, r.MaxBatch, r.Window, r.AvgBatch())
	if r.Nodes >= 2 {
		fmt.Fprintf(&b, "cluster: nodes=%d split-brain=%d\n", r.Nodes, r.SplitBrain)
		for _, t := range r.Tenants {
			fmt.Fprintf(&b, "cluster: %-12s home=n%d rehomed=%v\n", t.Name, t.Home, t.Rehomed)
		}
		for _, ev := range r.NodeEvents {
			fmt.Fprintf(&b, "node-event: %s\n", ev)
		}
	}
	if r.Elastic != nil {
		e := r.Elastic
		fmt.Fprintf(&b, "elastic: migrations=%d interrupted=%d drain-races=%d scale-ups=%d scale-downs=%d replayed=%d\n",
			e.Migrations, e.Interrupted, e.DrainRaces, e.ScaleUps, e.ScaleDowns, e.Replayed)
		for _, ev := range e.Events {
			fmt.Fprintf(&b, "elastic-event: %s\n", ev)
		}
	}
	fmt.Fprintf(&b, "%-12s %8s %8s %6s %9s %6s %7s %7s %5s %10s %10s %10s %9s %6s\n",
		"tenant", "offered", "admitted", "shed", "completed", "failed", "replays", "retries", "dups",
		"p50", "p95", "p99", "goodput/s", "shed%")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "%-12s %8d %8d %6d %9d %6d %7d %7d %5d %10s %10s %10s %9.0f %5.1f%%\n",
			t.Name, t.Offered, t.Admitted, t.Shed, t.Completed, t.Failed, t.Replayed, t.Retried, t.Duplicates,
			fmtQ(t.P50NS), fmtQ(t.P95NS), fmtQ(t.P99NS), t.GoodputRPS, t.ShedRate*100)
	}
	// Degradation breakdown: where the non-goodput went, per tenant. Shed,
	// timeouts and retries were always counted; this surfaces them next to
	// the quantiles they explain.
	fmt.Fprintf(&b, "degradation: %-12s %8s %9s %8s %8s %7s\n",
		"tenant", "shed", "timeouts", "retries", "replays", "failed")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "degradation: %-12s %8d %9d %8d %8d %7d\n",
			t.Name, t.Shed, t.Timeouts, t.Retried, t.Replayed, t.Failed)
	}
	for _, s := range r.SLOs {
		fmt.Fprintf(&b, "slo: %-12s %s good=%d bad=%d budget-burned=%.1f%% burn fast=%.2f slow=%.2f firing=%v\n",
			s.Name, s.Objective, s.Good, s.Bad, s.BudgetConsumed*100, s.FastBurn, s.SlowBurn, s.Firing)
	}
	for _, f := range r.Failures {
		switch {
		case f.Quarantined && f.Reason == spm.FailRevoked:
			fmt.Fprintf(&b, "failover: %s failed at %s (%s), quarantined by measurement revocation\n",
				f.Partition, sim.Duration(f.FailedAt), f.Reason)
		case f.Quarantined:
			fmt.Fprintf(&b, "failover: %s failed at %s (%s), quarantined by crash-loop policy\n",
				f.Partition, sim.Duration(f.FailedAt), f.Reason)
		case f.Recovered:
			fmt.Fprintf(&b, "failover: %s failed at %s (%s), down %s\n",
				f.Partition, sim.Duration(f.FailedAt), f.Reason, f.DowntimeNS)
		default:
			fmt.Fprintf(&b, "failover: %s failed at %s (%s), still recovering when the run drained\n",
				f.Partition, sim.Duration(f.FailedAt), f.Reason)
		}
	}
	if len(r.Failures) > 0 {
		byReason := r.FailuresByReason()
		fmt.Fprintf(&b, "failures by reason: requested=%d panic=%d hang=%d",
			byReason[spm.FailRequested], byReason[spm.FailPanic], byReason[spm.FailHang])
		if n := byReason[spm.FailRevoked]; n > 0 {
			// Appended only when present, so pre-attestation reports stay
			// byte-identical.
			fmt.Fprintf(&b, " revoked=%d", n)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FailuresByReason counts the run's partition failures per FailReason —
// the report's split of watchdog detections from panics and requested
// restarts.
func (r *Result) FailuresByReason() map[spm.FailReason]int {
	out := make(map[spm.FailReason]int)
	for _, f := range r.Failures {
		out[f.Reason]++
	}
	return out
}

func fmtQ(ns float64) string { return sim.Duration(ns).String() }

// result assembles the Result after the drain completes.
func (srv *Server) result() *Result {
	res := &Result{
		Seed:      srv.cfg.Seed,
		Policy:    srv.cfg.Policy,
		MaxBatch:  srv.cfg.MaxBatch,
		Window:    srv.cfg.Window,
		Batches:   srv.batches,
		BatchReqs: srv.batchReqs,
		DrainedAt: srv.pl.K.Now(),
		Requests:  srv.requests,
		Traces:    srv.traces,
		Metrics:   srv.reg.Snapshot(),
	}
	if srv.sh != nil {
		// Fold the sharded plane's striped state in deterministic tenant →
		// replica → lane order: per-lane batch counters and the per-tenant
		// kept-request stripes (admission order within each stripe).
		for _, t := range srv.tenants {
			for _, rep := range t.reps {
				for i := range rep.lanes {
					res.Batches += rep.lanes[i].batches
					res.BatchReqs += rep.lanes[i].reqs
				}
			}
			res.Requests = append(res.Requests, t.shKept...)
		}
	}
	winSec := float64(srv.cfg.Window) / 1e9
	for _, t := range srv.tenants {
		tr := TenantResult{
			Name:       t.spec.Name,
			Offered:    t.offered,
			Admitted:   t.admitted,
			Shed:       t.shed,
			Completed:  t.completed,
			Failed:     t.failed,
			Replayed:   t.replayed,
			Retried:    t.retried,
			Timeouts:   t.timeouts,
			Duplicates: t.duplicates,
			P50NS:      t.latHist.Quantile(0.50),
			P95NS:      t.latHist.Quantile(0.95),
			P99NS:      t.latHist.Quantile(0.99),
		}
		if n := t.latHist.Count(); n > 0 {
			tr.MeanNS = float64(srv.latSum(t)) / float64(n)
		}
		if winSec > 0 {
			tr.GoodputRPS = float64(t.completed) / winSec
		}
		if t.offered > 0 {
			tr.ShedRate = float64(t.shed) / float64(t.offered)
		}
		if srv.cl != nil {
			tr.Home = t.home0
			tr.Rehomed = t.rehomed
		}
		res.Tenants = append(res.Tenants, tr)
		if t.slo != nil {
			good, bad := t.slo.Totals()
			sig := t.slo.Signal(res.DrainedAt)
			res.SLOs = append(res.SLOs, TenantSLO{
				Name:           t.spec.Name,
				Objective:      t.slo.Objective(),
				Good:           good,
				Bad:            bad,
				BudgetConsumed: t.slo.BudgetConsumed(),
				FastBurn:       sig.Fast,
				SlowBurn:       sig.Slow,
				Firing:         sig.Firing,
			})
		}
	}
	for i, rec := range srv.failures {
		fs := FailureSummary{
			Partition:   rec.Partition,
			Reason:      rec.Reason,
			FailedAt:    rec.FailedAt,
			Quarantined: rec.Quarantined,
		}
		if srv.cl != nil && i < len(srv.failNodes) {
			// Partition names repeat across nodes; qualify them.
			fs.Partition = fmt.Sprintf("n%d/%s", srv.failNodes[i], rec.Partition)
		}
		if rec.ReadyAt > 0 {
			fs.Recovered = true
			fs.DowntimeNS = rec.Downtime()
		}
		res.Failures = append(res.Failures, fs)
	}
	if srv.cl != nil {
		res.Nodes = srv.cl.nodes
		res.SplitBrain = srv.cl.splitBrain
		res.NodeEvents = append([]string(nil), srv.cl.events...)
	}
	if srv.el != nil {
		res.Elastic = &ElasticResult{
			Migrations:  srv.el.migrations,
			Interrupted: srv.el.interrupted,
			DrainRaces:  srv.el.races,
			ScaleUps:    srv.el.ups,
			ScaleDowns:  srv.el.downs,
			Replayed:    srv.el.replayed,
			Events:      append([]string(nil), srv.el.events...),
		}
	}
	return res
}

// latSum reads the tenant's total completed latency from the histogram
// snapshot (the histogram keeps the exact sum).
func (srv *Server) latSum(t *tenant) int64 {
	snap := srv.reg.Snapshot()
	return snap.Histograms["serve.tenant."+t.spec.Name+".latency_ns"].Sum
}
