package serve_test

import (
	"testing"

	"cronus/internal/core"
	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/tvm"
)

// superviseConfig is the shared base load for the supervision tests: one
// inference tenant over a configurable pool, with the request watchdog on so
// hangs become timeouts.
func superviseConfig(seed int64, partitions int, policy serve.Policy) serve.Config {
	return serve.Config{
		Seed:           seed,
		Window:         10 * sim.Millisecond,
		Policy:         policy,
		MaxBatch:       4,
		BatchWindow:    50 * sim.Microsecond,
		GPUPartitions:  partitions,
		GPUFlopsPerNs:  400,
		KeepRequests:   true,
		RequestTimeout: 500 * sim.Microsecond,
		MaxRetries:     3,
		RetryBackoff:   100 * sim.Microsecond,
		Tenants: []serve.TenantSpec{
			{
				Name: "tenant-0", Arrival: serve.Poisson, Rate: 3000, QueueCap: 256,
				Mix: []serve.WorkClass{{Name: "resnet18", Graph: tvm.ResNet18()}},
			},
		},
	}
}

// runSupervised boots a platform for cfg and runs body before Serve — the
// hook the tests use to arm device hangs or spawn crash injectors.
func runSupervised(t *testing.T, cfg serve.Config, body func(pl *core.Platform)) *serve.Result {
	t.Helper()
	pcfg := core.DefaultConfig()
	pcfg.GPUs = cfg.GPUPartitions
	pcfg.NPUs = 0
	pcfg.MPS = true
	var res *serve.Result
	err := core.Run(pcfg, func(pl *core.Platform, p *sim.Proc) error {
		srv, err := serve.New(p, pl, cfg)
		if err != nil {
			return err
		}
		if body != nil {
			body(pl)
		}
		r, err := srv.Serve(p)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestHangReportBreakerRaisesFailHang: two launch hangs armed on adjacent
// ordinals give the single replica two consecutive attempt timeouts; with
// HangReportAfter=2 the circuit breaker reports the partition to the SPM as
// hung instead of retrying blindly, and the run records a FailHang failover.
func TestHangReportBreakerRaisesFailHang(t *testing.T) {
	cfg := superviseConfig(5, 1, serve.DeviceAffinity)
	cfg.HangReportAfter = 2
	res := runSupervised(t, cfg, func(pl *core.Platform) {
		pl.GPUs[0].Dev.ArmLaunchHang(5)
		pl.GPUs[0].Dev.ArmLaunchHang(6)
	})
	checkAccounting(t, res)
	if got := res.FailuresByReason()[spm.FailHang]; got < 1 {
		t.Fatalf("FailHang failovers = %d, want >= 1 (breaker never tripped)", got)
	}
}

// TestCrashLoopQuarantineKeepsPoolServing: three injected panics inside the
// failure window quarantine partition 0; the pinned tenant's load (device
// affinity keeps the drain open across all three recoveries) re-places on
// partition 1 once quarantine engages, and every admitted request still
// completes exactly once.
func TestCrashLoopQuarantineKeepsPoolServing(t *testing.T) {
	cfg := superviseConfig(7, 2, serve.DeviceAffinity)
	cfg.Supervision = &spm.Supervision{
		HeartbeatEvery:  200 * sim.Microsecond,
		MissedBeats:     3,
		RestartBackoff:  500 * sim.Microsecond,
		QuarantineAfter: 3,
		FailureWindow:   sim.Second,
	}
	res := runSupervised(t, cfg, func(pl *core.Platform) {
		part := pl.GPUs[0].Part
		pl.K.Spawn("test-crash-loop", func(cp *sim.Proc) {
			cp.Sleep(2 * sim.Millisecond)
			for n := 0; n < 3; {
				if rec := pl.SPM.Fail(part, spm.FailPanic); rec != nil {
					n++
					if rec.Quarantined {
						return
					}
				}
				if err := pl.SPM.AwaitReady(cp, part); err != nil {
					return
				}
			}
		})
	})
	checkAccounting(t, res)
	if len(res.Failures) != 3 {
		t.Fatalf("failures recorded = %d, want 3", len(res.Failures))
	}
	last := res.Failures[len(res.Failures)-1]
	if !last.Quarantined {
		t.Fatalf("third failure not quarantined: %+v", last)
	}
	if last.Reason != spm.FailPanic {
		t.Errorf("quarantining failure reason = %v, want panic", last.Reason)
	}
	if tr := res.Tenant("tenant-0"); tr == nil || tr.Completed == 0 {
		t.Fatal("pool stopped serving after quarantine")
	}
}

// TestRefailDuringReconnectDoesNotDoubleRequeue is the regression for a
// partition failing again while its replica is mid-settle/mid-connect after
// the first recovery: the replica holds no batches at that point, so the
// second failover must not requeue (and hence duplicate or lose) anything.
func TestRefailDuringReconnectDoesNotDoubleRequeue(t *testing.T) {
	cfg := superviseConfig(11, 1, serve.DeviceAffinity)
	res := runSupervised(t, cfg, func(pl *core.Platform) {
		part := pl.GPUs[0].Part
		pl.K.Spawn("test-refail", func(cp *sim.Proc) {
			cp.Sleep(2 * sim.Millisecond)
			pl.SPM.Fail(part, spm.FailPanic)
			if err := pl.SPM.AwaitReady(cp, part); err != nil {
				return
			}
			// The replica is now inside its 500µs settle sleep; land the
			// second trap before its reconnect finishes.
			cp.Sleep(300 * sim.Microsecond)
			pl.SPM.Fail(part, spm.FailPanic)
		})
	})
	checkAccounting(t, res)
	if len(res.Failures) != 2 {
		t.Fatalf("failures recorded = %d, want 2", len(res.Failures))
	}
	if tr := res.Tenant("tenant-0"); tr == nil || tr.Completed == 0 {
		t.Fatal("nothing completed after the double failure")
	}
}
