package serve

import (
	"fmt"

	"cronus/internal/otrace"
	"cronus/internal/sim"
)

// This file is the scheduler: one dispatcher proc per tenant pulls admitted
// requests, forms dynamic batches, and places them on replicas under the
// configured policy.

// batch is one placement unit: same tenant, same work class, FIFO order.
// The fields below class and reqs belong to the sharded plane (sharded.go),
// which routes batch pointers through cross-shard ports: t and rep identify
// the owners on each side, lane the modeled ring, submitNS the host-side
// submit cost folded into lane service, and cancelled neuters the pending
// lane/completion events of a batch requeued by a failover.
type batch struct {
	class *workClass
	reqs  []*Request

	t         *tenant
	rep       *replica
	lane      int
	submitNS  sim.Duration
	cancelled bool

	// attempts is set by the sharded lane-deadline model when the batch's
	// service time exceeds RequestTimeout: the number of watchdog attempts
	// (MaxRetries+1) the lane burned before the batch resolved as a timeout.
	attempts int
}

// startDispatchers spawns the per-tenant dispatcher procs.
func (srv *Server) startDispatchers() {
	for _, t := range srv.tenants {
		t := t
		srv.pl.K.Spawn("serve-dispatch-"+t.spec.Name, func(p *sim.Proc) {
			srv.dispatch(p, t)
		})
	}
}

// dispatch is the dispatcher body: pop the queue head, hold a batch window
// open for more same-class arrivals (dynamic batching), then place the
// batch. The window closes at MaxBatch requests or BatchWindow after the
// first request, whichever comes first; general-compute (rodinia) classes
// are unbatchable and always ship alone.
func (srv *Server) dispatch(p *sim.Proc, t *tenant) {
	for {
		first, ok := t.q.waitFirst(p)
		if !ok {
			return
		}
		srv.mark(first, otrace.StageBatch, p.Now())
		b := &batch{class: first.class, reqs: []*Request{first}}
		t.held = 1
		if first.class.spec.Graph != nil && srv.cfg.MaxBatch > 1 {
			deadline := p.Now() + sim.Time(srv.cfg.BatchWindow)
			for len(b.reqs) < srv.cfg.MaxBatch {
				if next := t.q.popMatching(b.class); next != nil {
					srv.mark(next, otrace.StageBatch, p.Now())
					b.reqs = append(b.reqs, next)
					t.held++
					continue
				}
				// Head is a different class (close the batch so FIFO order
				// holds) or the queue is empty (wait out the window).
				if len(t.q.items) > 0 {
					break
				}
				remaining := sim.Duration(deadline - p.Now())
				if remaining <= 0 {
					break
				}
				t.q.batching = p
				interrupted := p.SleepInterruptible(remaining)
				t.q.batching = nil
				if !interrupted {
					break
				}
			}
		}
		rep, err := srv.place(p, t, b)
		if err != nil {
			// No usable replica can ever take this batch (the whole pool
			// is quarantined): complete the admitted requests with the
			// typed error so conservation holds instead of polling
			// forever.
			for _, r := range b.reqs {
				srv.complete(p, t, r, err)
			}
			t.held = 0
			continue
		}
		// Attestation gate (attestor.go): resume on a live session ticket
		// (one MAC) or attest cold through the verification cache, sleeping
		// the delay on the dispatcher; a revoked partition sheds the batch
		// with the typed error instead of dispatching untrusted work.
		if d, aerr := srv.attestGate(t, rep, p.Now()); aerr != nil {
			for _, r := range b.reqs {
				srv.complete(p, t, r, aerr)
			}
			t.held = 0
			continue
		} else if d > 0 {
			p.Sleep(d)
		}
		srv.markBatch(b, otrace.StageReplica, p.Now())
		rep.enqueue(b)
		t.held = 0
	}
}

// PoolQuarantinedError is the typed completion error of an admitted request
// that can never be placed: every replica of its tenant sits on a
// quarantined partition, so no reconnect will revive capacity until an
// operator releases one. It counts as Failed in the tenant accounting.
type PoolQuarantinedError struct {
	Tenant string
}

// Error implements error.
func (e *PoolQuarantinedError) Error() string {
	return fmt.Sprintf("serve: tenant %s has no usable replica (all partitions quarantined)", e.Tenant)
}

// place picks a replica for the batch under the configured policy, waiting
// out transient outages (every replica down, e.g. mid-failover on a one-
// partition pool) by polling: the batch is already popped, so it must land
// somewhere. A pool that is entirely quarantined is not transient — place
// gives up with a *PoolQuarantinedError instead of polling forever.
func (srv *Server) place(p *sim.Proc, t *tenant, b *batch) (*replica, error) {
	for {
		if rep := srv.pick(t); rep != nil {
			srv.batches++
			srv.batchReqs += uint64(len(b.reqs))
			return rep, nil
		}
		if srv.allQuarantined(t) {
			return nil, &PoolQuarantinedError{Tenant: t.spec.Name}
		}
		p.Sleep(100 * sim.Microsecond)
	}
}

// allQuarantined reports whether every replica of the tenant has retired from
// service: parked on a quarantined partition or released by an elastic
// scale-down. Neither comes back without operator (or autoscaler) action, so
// the pool is not transiently unavailable — it is gone.
func (srv *Server) allQuarantined(t *tenant) bool {
	for _, rep := range t.reps {
		if !rep.retired() {
			return false
		}
	}
	return true
}

// placementSet is the replica slice the placement policy ranges over: the
// whole pool on a single-node plane, the tenant's home-node block on a
// cluster (node-local placement — the global tier picks the node, the
// existing policies pick within it).
func (srv *Server) placementSet(t *tenant) []*replica {
	if srv.cl == nil {
		return t.reps
	}
	return t.reps[t.home*srv.cl.ppn : (t.home+1)*srv.cl.ppn]
}

// pick applies the placement policy over the tenant's live replicas.
// Quarantined, released and draining replicas are skipped everywhere; a
// DeviceAffinity tenant whose pinned partition has retired or is quiescing
// degrades to least-outstanding over the surviving replicas (re-placing load
// beats refusing it — affinity is a performance preference, quarantine,
// release and quiesce availability facts).
func (srv *Server) pick(t *tenant) *replica {
	reps := srv.placementSet(t)
	switch srv.cfg.Policy {
	case DeviceAffinity:
		rep := reps[t.idx%len(reps)]
		if rep.retired() || rep.draining {
			return pickLeastOutstanding(reps)
		}
		if rep.down {
			return nil
		}
		return rep
	case RoundRobin:
		for i := 0; i < len(reps); i++ {
			rep := reps[t.rrNext%len(reps)]
			t.rrNext++
			if !rep.unplaceable() {
				return rep
			}
		}
		return nil
	case LeastOutstanding:
		return pickLeastOutstanding(reps)
	default:
		panic(fmt.Sprintf("serve: unknown policy %q", srv.cfg.Policy))
	}
}

// pickLeastOutstanding picks the usable replica with the fewest queued or
// executing requests (ties: lowest partition index).
func pickLeastOutstanding(reps []*replica) *replica {
	var best *replica
	for _, rep := range reps {
		if rep.unplaceable() {
			continue
		}
		if best == nil || rep.outstanding < best.outstanding {
			best = rep
		}
	}
	return best
}
