package serve

import (
	"fmt"

	"cronus/internal/sim"
)

// This file is the scheduler: one dispatcher proc per tenant pulls admitted
// requests, forms dynamic batches, and places them on replicas under the
// configured policy.

// batch is one placement unit: same tenant, same work class, FIFO order.
type batch struct {
	class *workClass
	reqs  []*Request
}

// startDispatchers spawns the per-tenant dispatcher procs.
func (srv *Server) startDispatchers() {
	for _, t := range srv.tenants {
		t := t
		srv.pl.K.Spawn("serve-dispatch-"+t.spec.Name, func(p *sim.Proc) {
			srv.dispatch(p, t)
		})
	}
}

// dispatch is the dispatcher body: pop the queue head, hold a batch window
// open for more same-class arrivals (dynamic batching), then place the
// batch. The window closes at MaxBatch requests or BatchWindow after the
// first request, whichever comes first; general-compute (rodinia) classes
// are unbatchable and always ship alone.
func (srv *Server) dispatch(p *sim.Proc, t *tenant) {
	for {
		first, ok := t.q.waitFirst(p)
		if !ok {
			return
		}
		b := &batch{class: first.class, reqs: []*Request{first}}
		t.held = 1
		if first.class.spec.Graph != nil && srv.cfg.MaxBatch > 1 {
			deadline := p.Now() + sim.Time(srv.cfg.BatchWindow)
			for len(b.reqs) < srv.cfg.MaxBatch {
				if next := t.q.popMatching(b.class); next != nil {
					b.reqs = append(b.reqs, next)
					t.held++
					continue
				}
				// Head is a different class (close the batch so FIFO order
				// holds) or the queue is empty (wait out the window).
				if len(t.q.items) > 0 {
					break
				}
				remaining := sim.Duration(deadline - p.Now())
				if remaining <= 0 {
					break
				}
				t.q.batching = p
				interrupted := p.SleepInterruptible(remaining)
				t.q.batching = nil
				if !interrupted {
					break
				}
			}
		}
		rep := srv.place(p, t, b)
		rep.enqueue(b)
		t.held = 0
	}
}

// place picks a replica for the batch under the configured policy, waiting
// out total outages (every replica down, e.g. mid-failover on a one-
// partition pool) by polling: the batch is already popped, so it must land
// somewhere.
func (srv *Server) place(p *sim.Proc, t *tenant, b *batch) *replica {
	for {
		if rep := srv.pick(t); rep != nil {
			srv.batches++
			srv.batchReqs += uint64(len(b.reqs))
			return rep
		}
		p.Sleep(100 * sim.Microsecond)
	}
}

// pick applies the placement policy over the tenant's live replicas.
func (srv *Server) pick(t *tenant) *replica {
	switch srv.cfg.Policy {
	case DeviceAffinity:
		rep := t.reps[t.idx%len(t.reps)]
		if rep.down {
			return nil
		}
		return rep
	case RoundRobin:
		for i := 0; i < len(t.reps); i++ {
			rep := t.reps[t.rrNext%len(t.reps)]
			t.rrNext++
			if !rep.down {
				return rep
			}
		}
		return nil
	case LeastOutstanding:
		var best *replica
		for _, rep := range t.reps {
			if rep.down {
				continue
			}
			if best == nil || rep.outstanding < best.outstanding {
				best = rep
			}
		}
		return best
	default:
		panic(fmt.Sprintf("serve: unknown policy %q", srv.cfg.Policy))
	}
}
