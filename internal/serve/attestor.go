package serve

// The attestation admission gate (DESIGN.md §15): the serving-plane half of
// attestation at scale. With Config.AttestTickets set, every batch dispatch
// is gated on the dispatching tenant holding a valid attestation of the
// target partition:
//
//   - a session with a live ticket for (tenant, partition measurement)
//     resumes for one MAC check (Costs.MACFixed) and skips the quote
//     round-trip entirely;
//   - a cold session pays the quote verification (Costs.VerifyFixed × 2,
//     the same cost Platform.RemoteAttest charges) through the shared
//     VerifyCache — memoized per (measurement, epoch) and coalesced with
//     identical in-flight verifications — plus one MAC to seal the fresh
//     ticket it mints;
//   - the delay lands where admission cost lives on each plane: folded
//     into the batch submit cost on the sharded plane, slept on the
//     dispatcher proc on the classic plane.
//
// Continuous re-measurement (Config.AttestReprobe) spawns a background
// virtual-time prober that compares every pooled partition's current mOS
// measurement against the value pinned at boot. A mismatch revokes the
// partition: its tickets are purged and its verification verdicts dropped,
// every batch in flight on it fails with the typed *attest.RevokedError
// (results from a partition with a flipped measurement are untrusted, so
// they are shed, not replayed), and the partition drains through the
// existing quarantine machinery — spm.Revoke parks it in PartQuarantined,
// the OnFailure subscription marks its replicas, and placement routes
// around it exactly like a FailHang, including cross-node rehoming in
// cluster mode. No request ever completes on a revoked partition
// (serve.attest.post_revoke_completions must stay 0; the chaos harness
// asserts it).
//
// Fault injection: AttestStorm flushes the whole ticket cache at a drawn
// instant (mass expiry — every session goes back through cold
// attestation), and StaleMeasurement flips a word of a victim partition's
// measurement so the next probe catches it. Both are ordinary control
// flow on the production paths, like the FailAt injector.

import (
	"fmt"

	"cronus/internal/attest"
	"cronus/internal/metrics"
	"cronus/internal/sim"
	"cronus/internal/spm"
)

// Attestation fault kinds (Config.AttestFaults).
const (
	// AttestStorm flushes the ticket cache at Fault.At: a mass expiry
	// that sends every session back through cold attestation at once.
	AttestStorm = "attest-storm"
	// StaleMeasurement flips a word of the victim partition's recorded
	// measurement at Fault.At; the re-measurement prober detects the
	// mismatch on its next pass and revokes the partition.
	StaleMeasurement = "stale-measurement"
)

// AttestFault schedules one attestation fault (offset from serving start).
// The chaos harness compiles attest-storm / stale-measurement schedules
// into this, the way node-level faults compile into Config.NodeFaults.
type AttestFault struct {
	Kind string       // AttestStorm or StaleMeasurement
	At   sim.Duration // injection instant, offset from serving start
	// Node/Part pick the StaleMeasurement victim: partition Part on node
	// Node (Node is 0 on a single-node plane). Ignored by AttestStorm.
	Node int
	Part int
}

// attState is the serving plane's attestation-gate state. All of it is
// host-shard / sequentialized-injector territory, so no locking is needed.
type attState struct {
	tickets *attest.TicketCache
	verify  *attest.VerifyCache

	// pinned[n][pi] is partition pi of node n's measurement at boot — the
	// reference continuous re-measurement compares against.
	pinned [][]attest.Measurement
	// revoked maps (node, partition index) to the revocation instant.
	revoked map[[2]int]sim.Time

	coldCost   sim.Duration // quote verification (VerifyFixed × 2)
	resumeCost sim.Duration // ticket MAC check / mint seal (MACFixed)

	ctrCold       *metrics.Counter   // dispatches that attested cold
	ctrResumed    *metrics.Counter   // dispatches that resumed on a ticket
	ctrProbes     *metrics.Counter   // re-measurement probes taken
	ctrRevoked    *metrics.Counter   // partitions revoked
	ctrPostRevoke *metrics.Counter   // completions on a revoked partition (must stay 0)
	hAdmitNS      *metrics.Histogram // attestation delay charged per dispatch
	hColdNS       *metrics.Histogram // ... split: cold-path dispatches only
	hResumeNS     *metrics.Histogram // ... split: ticket-resume dispatches only
}

// validateAttest rejects attestation configurations the plane cannot run.
func validateAttest(cfg Config) error {
	if !cfg.AttestTickets {
		if cfg.AttestReprobe > 0 || len(cfg.AttestFaults) > 0 {
			return fmt.Errorf("serve: AttestReprobe/AttestFaults require AttestTickets")
		}
		return nil
	}
	partsPerNode := cfg.GPUPartitions
	nodes := 1
	if cfg.Nodes >= 2 {
		nodes = cfg.Nodes
		partsPerNode = cfg.GPUPartitions / cfg.Nodes
	}
	for i, f := range cfg.AttestFaults {
		switch f.Kind {
		case AttestStorm:
			if f.At <= 0 {
				return fmt.Errorf("serve: AttestFaults[%d] (%s) needs At > 0", i, f.Kind)
			}
		case StaleMeasurement:
			if f.At <= 0 {
				return fmt.Errorf("serve: AttestFaults[%d] (%s) needs At > 0", i, f.Kind)
			}
			if cfg.AttestReprobe <= 0 {
				return fmt.Errorf("serve: AttestFaults[%d] (%s) needs AttestReprobe > 0 (nothing would detect it)", i, f.Kind)
			}
			if f.Node < 0 || f.Node >= nodes || f.Part < 0 || f.Part >= partsPerNode {
				return fmt.Errorf("serve: AttestFaults[%d] targets n%d/gpu-part%d of a %d-node × %d-partition pool",
					i, f.Node, f.Part, nodes, partsPerNode)
			}
		default:
			return fmt.Errorf("serve: AttestFaults[%d] has unknown kind %q", i, f.Kind)
		}
	}
	return nil
}

// atBoot builds the attestation gate: caches registered in the run's
// metrics registry, boot measurements pinned for the prober.
func (srv *Server) atBoot() {
	seed := []byte(fmt.Sprintf("serve-attest/%d", srv.cfg.Seed))
	a := &attState{
		tickets:       attest.NewTicketCache(seed, srv.cfg.AttestCacheCap, srv.cfg.AttestTicketTTL, srv.reg),
		verify:        attest.NewVerifyCache(srv.reg),
		revoked:       make(map[[2]int]sim.Time),
		coldCost:      srv.pl.Costs.VerifyFixed * 2,
		resumeCost:    srv.pl.Costs.MACFixed,
		ctrCold:       srv.reg.Counter("serve.attest.cold"),
		ctrResumed:    srv.reg.Counter("serve.attest.resumed"),
		ctrProbes:     srv.reg.Counter("serve.attest.probes"),
		ctrRevoked:    srv.reg.Counter("serve.attest.revocations"),
		ctrPostRevoke: srv.reg.Counter("serve.attest.post_revoke_completions"),
		hAdmitNS:      srv.reg.Histogram("serve.attest.admission_ns"),
		hColdNS:       srv.reg.Histogram("serve.attest.cold_ns"),
		hResumeNS:     srv.reg.Histogram("serve.attest.resume_ns"),
	}
	ppn := srv.cfg.GPUPartitions
	if srv.cl != nil {
		ppn = srv.cl.ppn
	}
	for n := range srv.plats {
		row := make([]attest.Measurement, ppn)
		for pi := 0; pi < ppn; pi++ {
			row[pi] = srv.plats[n].GPUs[pi].Part.MOSHash()
		}
		a.pinned = append(a.pinned, row)
	}
	srv.at = a
}

// attestGate runs the admission-path attestation for tenant t dispatching
// to rep at now: it returns the virtual delay to charge (ticket resume or
// cold attestation through the verify cache), or the typed *RevokedError
// when the target partition's measurement has been revoked.
func (srv *Server) attestGate(t *tenant, rep *replica, now sim.Time) (sim.Duration, error) {
	a := srv.at
	if a == nil {
		return 0, nil
	}
	part := rep.plat().GPUs[rep.partIdx].Part
	meas, epoch := part.MOSHash(), part.Epoch()
	if _, ok := a.revoked[[2]int{rep.node, rep.partIdx}]; ok {
		return 0, &attest.RevokedError{Tenant: t.spec.Name, Partition: rep.partName, Meas: meas}
	}
	hit, err := a.tickets.Resume(t.spec.Name, meas, epoch, now)
	if err != nil {
		return 0, err
	}
	var d sim.Duration
	if hit {
		// Ticket resumption: one MAC check, no quote round-trip.
		d = a.resumeCost
		a.ctrResumed.Inc()
		a.hResumeNS.Observe(int64(d))
	} else {
		// Cold attestation: the quote verification (memoized per epoch,
		// coalesced with identical in-flight ones) plus the seal of the
		// fresh ticket this session mints.
		d = a.verify.Delay(meas, epoch, now, a.coldCost) + a.resumeCost
		a.tickets.Mint(t.spec.Name, meas, epoch, now+sim.Time(d))
		a.ctrCold.Inc()
		a.hColdNS.Observe(int64(d))
	}
	a.hAdmitNS.Observe(int64(d))
	return d, nil
}

// atStart arms the run's attestation machinery after the load exists: the
// continuous re-measurement prober and the scheduled fault injectors. On
// the sharded plane both sequentialize the kernel before mutating global
// state, exactly like the FailAt and node-crash injectors.
func (srv *Server) atStart(p *sim.Proc) {
	if srv.at == nil {
		return
	}
	if srv.cfg.AttestReprobe > 0 {
		if srv.sh != nil {
			srv.pl.K.SpawnOn(0, lidAttestProber, "serve-attest-prober", srv.atProbe)
		} else {
			srv.pl.K.Spawn("serve-attest-prober", srv.atProbe)
		}
	}
	for i, f := range srv.cfg.AttestFaults {
		f := f
		body := func(p *sim.Proc) {
			p.Sleep(f.At)
			if srv.sh != nil {
				p.Sequentialize()
			}
			switch f.Kind {
			case AttestStorm:
				n := srv.at.tickets.Storm(p.Now())
				if srv.cl != nil {
					srv.cl.events = append(srv.cl.events,
						fmt.Sprintf("attest-storm flushed %d tickets at %s", n, sim.Duration(p.Now())))
				}
			case StaleMeasurement:
				part := srv.plats[f.Node].GPUs[f.Part].Part
				srv.plats[f.Node].SPM.TamperMeasurement(part)
			}
		}
		if srv.sh != nil {
			srv.pl.K.SpawnOn(0, lidAttestFault+uint64(i),
				fmt.Sprintf("serve-attest-fault-%d", i), body)
		} else {
			srv.pl.K.Spawn(fmt.Sprintf("serve-attest-fault-%d", i), body)
		}
	}
}

// atProbe is the continuous re-measurement loop: every AttestReprobe of
// virtual time, compare each ready partition's current measurement against
// the boot-pinned value and revoke on mismatch. Reads are parallel-safe
// (only sequentialized injectors mutate measurements on this plane); the
// revocation itself sequentializes first — it is a global, totally ordered
// control-plane event, like a partition failure.
func (srv *Server) atProbe(p *sim.Proc) {
	a := srv.at
	ppn := len(a.pinned[0])
	for {
		p.Sleep(srv.cfg.AttestReprobe)
		for n := range srv.plats {
			for pi := 0; pi < ppn; pi++ {
				part := srv.plats[n].GPUs[pi].Part
				a.ctrProbes.Inc()
				if part.State() != spm.PartReady {
					continue
				}
				if part.MOSHash() == a.pinned[n][pi] {
					continue
				}
				if srv.sh != nil {
					p.Sequentialize()
				}
				srv.atRevoke(p, n, pi, part)
			}
		}
	}
}

// atRevoke revokes one partition whose measurement went stale: tickets
// minted against the divergent (tampered) measurement are purged and its
// verification verdicts dropped, in-flight batches on the partition are shed
// with the typed error, and the partition drains into quarantine through the
// SPM — from where the existing failure subscription propagates it to
// placement (replica quarantine, backlog re-drive, cluster rehome) exactly
// like a hang. The boot-pinned measurement stays trusted: every other
// partition in the pool legitimately runs that same image, so their tickets
// and cached verdicts must survive — only the divergent value and the
// divergent partition are poisoned.
func (srv *Server) atRevoke(p *sim.Proc, n, pi int, part *spm.Partition) {
	a := srv.at
	key := [2]int{n, pi}
	if _, ok := a.revoked[key]; ok {
		return
	}
	now := p.Now()
	a.revoked[key] = now
	a.ctrRevoked.Inc()
	partName := fmt.Sprintf("gpu-part%d", pi)
	tampered := part.MOSHash()
	a.tickets.RevokeMeasurement(partName, tampered)
	a.verify.Invalidate(tampered)
	if srv.cl != nil {
		srv.cl.events = append(srv.cl.events,
			fmt.Sprintf("partition n%d/%s measurement revoked at %s", n, partName, sim.Duration(now)))
	}
	if srv.sh != nil {
		// Shed everything in flight on the revoked partition before the
		// quarantine drain runs: its results are untrusted, so the requests
		// fail typed instead of replaying a measurement we no longer trust.
		ppn := len(a.pinned[0])
		for _, t := range srv.tenants {
			rep := t.reps[n*ppn+pi]
			if len(rep.inflightB) == 0 {
				continue
			}
			err := &attest.RevokedError{Tenant: t.spec.Name, Partition: partName, Meas: tampered}
			for _, b := range rep.inflightB {
				b.cancelled = true
				rep.outstanding -= len(b.reqs)
				t.shInFl -= len(b.reqs)
				if srv.cl != nil {
					t.liveCnt -= len(b.reqs)
				}
				for _, r := range b.reqs {
					srv.shFinish(t, r, now, err)
				}
			}
			rep.inflightB = nil
			for i := range rep.lanes {
				rep.lanes[i].busyUntil = 0
			}
		}
	}
	// Quarantine drain: spm.Revoke bypasses the crash-loop count (a stale
	// measurement is never a transient) and parks the partition in
	// PartQuarantined; the OnFailure subscription marks every replica on it
	// quarantined the same instant.
	srv.plats[n].SPM.Revoke(part)
	if srv.cl != nil {
		// A revoked partition never comes back (the quarantine is forced and
		// marked before Revoke returns), so don't wait out the device scrub
		// before re-routing: re-home every tenant whose home pool this
		// revocation emptied, exactly like a node crash does. The eventual
		// shRecover → shQuarantined pass is then a no-op for these tenants
		// (their home already moved off node n).
		for _, t := range srv.tenants {
			if t.home != n || !srv.clHomeUnusable(t) {
				continue
			}
			if !srv.clRehome(now, t, "measurement-revoked") {
				// No survivor can take the tenant: complete its backlog with
				// the typed pool error so the drain is never stranded.
				backlog := t.shBacklog
				t.shBacklog = nil
				err := &PoolQuarantinedError{Tenant: t.spec.Name}
				for _, b := range backlog {
					for _, r := range b.reqs {
						srv.shFinish(t, r, now, err)
					}
				}
			}
		}
	}
}
