package serve

// The global placement tier: the serving plane's cluster mode, selected by
// Config.Nodes >= 2. N platforms (cluster.BootNodes) share one simulation
// kernel; the host shard is the serving gateway — arrivals, admission,
// batching and placement all run there — and node i owns the kernel shards
// [1+i·spn, 1+(i+1)·spn) together with a contiguous block of the partition
// pool, so per-node partition groups map onto per-node shard groups.
//
// Placement is two-tier: tenants hash onto home nodes over a seeded
// consistent-hash ring with bounded-load overflow (cluster.Ring), and the
// existing pluggable policies (round-robin, least-outstanding,
// device-affinity) place each batch inside the home node's partition group.
// Batches cross the fabric through the replica's mailbox port with the
// link latency as the hop; serialization, bandwidth occupancy and slow-link
// surcharges are folded into the submit cost (cluster.Fabric.TransferNS);
// completions ride per-node return ports with the same hop.
//
// Cross-node failover: when a node crashes (clCrashNode — the injector
// sequentializes the kernel first, like FailAt) or a tenant's whole home
// pool quarantines, the tenant re-hashes to a surviving node. In-flight
// batches on the lost node are cancelled and replayed through the same
// completion accounting the single-node plane uses (cancelled batches'
// events become no-ops, requests requeue exactly once), and admission caps
// tighten by the lost capacity fraction for rehomed tenants.
//
// No-split-brain invariant: a tenant's requests are never concurrently
// live on two nodes. The gateway maintains the ledger — liveCnt/liveNode
// per tenant, updated at dispatch, completion and cancellation, all on the
// host shard — and counts violations in Result.SplitBrain (must be 0).
//
// Net-partition windows yield typed *cluster.NetPartitionedError on
// dispatch; completions arriving at the gateway while the link is
// partitioned park in a heal queue and flush at the heal instant.

import (
	"fmt"
	"math"

	"cronus/internal/cluster"
	"cronus/internal/sim"
)

// clState is the serving plane's cluster-mode state. Everything here is
// gateway-side: only host-shard events (dispatch, completion, heal flush)
// and sequentialized fault injectors touch it.
type clState struct {
	nodes int
	ppn   int // partitions per node
	spn   int // kernel shards per node

	fab  *cluster.Fabric
	ring *cluster.Ring
	// loads/bound drive the boot-time bounded-load assignment; loads is
	// also recomputed on rehome.
	loads []int
	bound int

	alive    []bool
	aliveCnt int

	gw    *sim.Proc           // gateway anchor proc (host shard, lidGateway)
	compl []*sim.Port[*batch] // per-node completion return ports
	healQ [][]*batch          // completions parked during a net-partition

	splitBrain uint64
	events     []string
}

// validateCluster rejects cluster configurations the plane cannot model.
func validateCluster(cfg Config) error {
	switch {
	case cfg.Nodes > 16:
		return fmt.Errorf("serve: at most 16 nodes, got %d", cfg.Nodes)
	case cfg.Shards < 2:
		return fmt.Errorf("serve: cluster mode (Nodes >= 2) requires the sharded data plane (Shards >= 2)")
	case cfg.Shards%cfg.Nodes != 0:
		return fmt.Errorf("serve: Shards (%d) must divide evenly over Nodes (%d)", cfg.Shards, cfg.Nodes)
	case cfg.GPUPartitions%cfg.Nodes != 0:
		return fmt.Errorf("serve: GPUPartitions (%d) must divide evenly over Nodes (%d)", cfg.GPUPartitions, cfg.Nodes)
	}
	for i, f := range cfg.NodeFaults {
		if f.Node < 0 || f.Node >= cfg.Nodes {
			return fmt.Errorf("serve: NodeFaults[%d] targets node %d of %d", i, f.Node, cfg.Nodes)
		}
		switch f.Kind {
		case cluster.NodeCrash:
			if f.At <= 0 {
				return fmt.Errorf("serve: NodeFaults[%d] (%s) needs At > 0", i, f.Kind)
			}
		case cluster.NetPartition, cluster.SlowLink:
			if f.At <= 0 || f.Until <= f.At {
				return fmt.Errorf("serve: NodeFaults[%d] (%s) needs 0 < At < Until", i, f.Kind)
			}
			if f.Kind == cluster.SlowLink && f.Mult < 1 {
				return fmt.Errorf("serve: NodeFaults[%d] slow-link needs Mult >= 1, got %g", i, f.Mult)
			}
		default:
			return fmt.Errorf("serve: NodeFaults[%d] has unknown kind %q", i, f.Kind)
		}
	}
	return nil
}

// clBoot builds the cluster state — fabric, placement ring, liveness — from
// the validated config. Runs before shBoot so partition→shard mapping can
// consult it.
func (srv *Server) clBoot() error {
	nodes := len(srv.plats)
	if la := srv.pl.Costs.PCIeLatency; srv.cfg.LinkLatency < la {
		return fmt.Errorf("serve: LinkLatency (%s) must be at least the kernel lookahead (%s)",
			srv.cfg.LinkLatency, la)
	}
	fab, err := cluster.NewFabric(nodes, srv.cfg.LinkLatency, srv.cfg.LinkGBps, srv.pl.Costs.MemcpyPerByte)
	if err != nil {
		return err
	}
	ring, err := cluster.NewRing(nodes, 64, srv.cfg.Seed)
	if err != nil {
		return err
	}
	alive := make([]bool, nodes)
	for i := range alive {
		alive[i] = true
	}
	srv.cl = &clState{
		nodes:    nodes,
		ppn:      srv.cfg.GPUPartitions / nodes,
		spn:      srv.cfg.Shards / nodes,
		fab:      fab,
		ring:     ring,
		loads:    make([]int, nodes),
		bound:    clBound(srv.cfg.HashBound, len(srv.cfg.Tenants), nodes),
		alive:    alive,
		aliveCnt: nodes,
		healQ:    make([][]*batch, nodes),
	}
	return nil
}

// clBound is the bounded-load cap: ceil(factor · tenants / nodes).
func clBound(factor float64, tenants, nodes int) int {
	return int(math.Ceil(factor * float64(tenants) / float64(nodes)))
}

// clAssignHome homes one tenant at boot: clockwise walk with the bounded-
// load cap, earlier tenants claiming capacity first (ring.Assign order).
func (srv *Server) clAssignHome(t *tenant) {
	t.home = srv.cl.ring.Home(t.spec.Name, nil, srv.cl.loads, srv.cl.bound)
	srv.cl.loads[t.home]++
	t.home0 = t.home
}

// clComplArrive is the per-node completion return handler on the gateway.
// A completion landing while the node's link is partitioned parks in the
// heal queue; the queue flushes at the heal instant (re-arming if another
// partition window is already in force then).
func (srv *Server) clComplArrive(n int, at sim.Time, b *batch) {
	if b.cancelled {
		return
	}
	if srv.cl.fab.PartitionedAt(n, at) {
		if len(srv.cl.healQ[n]) == 0 {
			heal := srv.cl.fab.HealAt(n, at)
			srv.cl.gw.CallAt(heal, func() { srv.clFlushHeal(n, heal) })
		}
		srv.cl.healQ[n] = append(srv.cl.healQ[n], b)
		return
	}
	srv.shDone(at, b)
}

// clFlushHeal delivers the completions a net-partition parked, in arrival
// order, at the heal instant.
func (srv *Server) clFlushHeal(n int, at sim.Time) {
	q := srv.cl.healQ[n]
	srv.cl.healQ[n] = nil
	for _, b := range q {
		srv.clComplArrive(n, at, b)
	}
}

// clArmFaults registers the scheduled node faults. Net-partition and
// slow-link windows are static fabric state fixed here, before the kernel
// parallelizes — afterwards they are consulted read-only, which keeps them
// parallel-safe. Node crashes mutate global placement state, so each crash
// injector sequentializes the kernel first, exactly like the FailAt
// injector.
func (srv *Server) clArmFaults(p *sim.Proc) {
	start := p.Now()
	for i, f := range srv.cfg.NodeFaults {
		switch f.Kind {
		case cluster.NetPartition:
			srv.cl.fab.AddPartition(f.Node, start+sim.Time(f.At), start+sim.Time(f.Until))
		case cluster.SlowLink:
			srv.cl.fab.AddSlowLink(f.Node, f.Mult, start+sim.Time(f.At), start+sim.Time(f.Until))
		case cluster.NodeCrash:
			f := f
			srv.pl.K.SpawnOn(0, lidNodeFault+uint64(i),
				fmt.Sprintf("serve-node-fault-%d", i), func(p *sim.Proc) {
					p.Sleep(f.At)
					p.Sequentialize()
					srv.clCrashNode(p, f.Node)
				})
		}
	}
}

// clCrashNode kills a whole node: its replicas quarantine permanently (the
// machine is gone — this is not a restartable proceed-trap), every batch in
// flight there is cancelled and requeued exactly once through the same
// accounting shReplicaDown uses, and each tenant homed on the node re-hashes
// to a survivor. Runs sequentialized.
func (srv *Server) clCrashNode(p *sim.Proc, n int) {
	cl := srv.cl
	if !cl.alive[n] {
		return
	}
	now := p.Now()
	cl.alive[n] = false
	cl.aliveCnt--
	cl.events = append(cl.events, fmt.Sprintf("node n%d crashed at %s", n, sim.Duration(now)))
	for _, t := range srv.tenants {
		var requeued []*batch
		for _, rep := range t.reps[n*cl.ppn : (n+1)*cl.ppn] {
			rep.down = true
			rep.quarantined = true
			for _, b := range rep.inflightB {
				b.cancelled = true
				rep.outstanding -= len(b.reqs)
				t.shInFl -= len(b.reqs)
				t.liveCnt -= len(b.reqs)
				for _, r := range b.reqs {
					r.Replays++
					t.replayed++
				}
				requeued = append(requeued, &batch{class: b.class, reqs: b.reqs, t: t})
			}
			rep.inflightB = nil
			for i := range rep.lanes {
				rep.lanes[i].busyUntil = 0
			}
		}
		if len(requeued) > 0 {
			t.shBacklog = append(requeued, t.shBacklog...)
		}
		if t.home == n && !srv.clRehome(now, t, "node-crash") {
			// No survivor can take the tenant: complete its backlog with the
			// typed pool error so the drain is never stranded.
			backlog := t.shBacklog
			t.shBacklog = nil
			err := &PoolQuarantinedError{Tenant: t.spec.Name}
			for _, b := range backlog {
				for _, r := range b.reqs {
					srv.shFinish(t, r, now, err)
				}
			}
		}
	}
}

// clHomeUnusable reports whether every replica in the tenant's home
// partition group has retired (quarantined, or released by an elastic
// migration/scale-down) — the trigger for cross-node failover. Replicas
// that are merely down (transient proceed-trap recovery) do not count:
// those heal in bounded time and rehoming on them would make
// single-partition failovers diverge from the single-node plane.
func (srv *Server) clHomeUnusable(t *tenant) bool {
	for _, rep := range srv.placementSet(t) {
		if !rep.retired() {
			return false
		}
	}
	return true
}

// clRehome re-hashes a tenant onto a surviving node: the clockwise walk
// skips dead nodes and nodes where the tenant's pool has fully retired
// (quarantined or released), with the bounded-load cap recomputed over the
// survivors. On success the backlog flushes to the new home. Returns false
// when no eligible node remains.
func (srv *Server) clRehome(now sim.Time, t *tenant, why string) bool {
	cl := srv.cl
	eligible := make([]bool, cl.nodes)
	nEligible := 0
	for n := 0; n < cl.nodes; n++ {
		if !cl.alive[n] {
			continue
		}
		for _, rep := range t.reps[n*cl.ppn : (n+1)*cl.ppn] {
			if !rep.retired() {
				eligible[n] = true
				nEligible++
				break
			}
		}
	}
	if nEligible == 0 {
		return false
	}
	loads := make([]int, cl.nodes)
	for _, u := range srv.tenants {
		if u != t && eligible[u.home] {
			loads[u.home]++
		}
	}
	bound := clBound(srv.cfg.HashBound, len(srv.tenants), nEligible)
	home := cl.ring.Home(t.spec.Name, eligible, loads, bound)
	if home < 0 {
		return false
	}
	old := t.home
	t.home = home
	t.rehomed = true
	cl.events = append(cl.events, fmt.Sprintf("tenant %s rehomed n%d -> n%d (%s) at %s",
		t.spec.Name, old, home, why, sim.Duration(now)))
	srv.shFlushBacklog(now, t)
	return true
}
