package serve_test

import (
	"testing"

	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/tvm"
)

// benchConfig is the saturation load used for BENCH_serve.json: one tenant
// offering more than an unbatched replica can serve, swept over batch caps.
func benchConfig(maxBatch int) serve.Config {
	return serve.Config{
		Seed:          17,
		Window:        20 * sim.Millisecond,
		Policy:        serve.RoundRobin,
		MaxBatch:      maxBatch,
		BatchWindow:   40 * sim.Microsecond,
		GPUPartitions: 1,
		GPUFlopsPerNs: 400,
		Tenants: []serve.TenantSpec{
			{
				Name: "load", Arrival: serve.FixedRate, Rate: 90000, QueueCap: 64,
				Mix: []serve.WorkClass{{Name: "resnet50", Graph: tvm.ResNet50()}},
			},
		},
	}
}

// benchServe runs the serving plane and reports virtual-time throughput and
// latency as custom metrics; ns/op is host time and machine-dependent, the
// vreq/s and vp50_ns metrics are deterministic.
func benchServe(b *testing.B, maxBatch int) {
	b.Helper()
	var last *serve.Result
	for i := 0; i < b.N; i++ {
		res, err := serve.Run(benchConfig(maxBatch))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	tr := last.Tenants[0]
	b.ReportMetric(tr.GoodputRPS, "vreq/s")
	b.ReportMetric(tr.P50NS, "vp50_ns")
	b.ReportMetric(last.AvgBatch(), "vbatch")
}

func BenchmarkServeLoadBatch1(b *testing.B) { benchServe(b, 1) }
func BenchmarkServeLoadBatch4(b *testing.B) { benchServe(b, 4) }
func BenchmarkServeLoadBatch8(b *testing.B) { benchServe(b, 8) }
