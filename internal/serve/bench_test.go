package serve_test

import (
	"flag"
	"fmt"
	"testing"

	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/tvm"
)

// shardsFlag reruns the ServeLoad benchmarks on the sharded data plane:
//
//	go test ./internal/serve -bench ServeLoad -shards 4
//
// 0 (the default) keeps the classic sequential plane. The shard count is
// reported as the "shards" metric so BENCH_serve.json rows from both planes
// stay distinguishable.
var shardsFlag = flag.Int("shards", 0, "run ServeLoad benchmarks with this many kernel shards (0 = classic plane)")

// benchConfig is the saturation load used for BENCH_serve.json: one tenant
// offering more than an unbatched replica can serve, swept over batch caps.
// The batch window must cover MaxBatch arrivals at the offered rate: at 90k
// fixed-rate the gap is 11.11µs, so 40µs fills a batch of 4 but caps at 4
// for larger batches — caps above 4 widen the window to 80µs so the eighth
// arrival (77.8µs after the first) still joins.
func benchConfig(maxBatch int) serve.Config {
	window := 40 * sim.Microsecond
	if maxBatch > 4 {
		window = 80 * sim.Microsecond
	}
	return serve.Config{
		Seed:          17,
		Window:        20 * sim.Millisecond,
		Policy:        serve.RoundRobin,
		MaxBatch:      maxBatch,
		BatchWindow:   window,
		GPUPartitions: 1,
		GPUFlopsPerNs: 400,
		Shards:        *shardsFlag,
		Tenants: []serve.TenantSpec{
			{
				Name: "load", Arrival: serve.FixedRate, Rate: 90000, QueueCap: 64,
				Mix: []serve.WorkClass{{Name: "resnet50", Graph: tvm.ResNet50()}},
			},
		},
	}
}

// benchServe runs the serving plane and reports virtual-time throughput and
// latency as custom metrics; ns/op is host time and machine-dependent, the
// vreq/s, vp50_ns, vbatch and shards metrics are deterministic.
func benchServe(b *testing.B, maxBatch int) {
	b.Helper()
	var last *serve.Result
	for i := 0; i < b.N; i++ {
		res, err := serve.Run(benchConfig(maxBatch))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	tr := last.Tenants[0]
	b.ReportMetric(tr.GoodputRPS, "vreq/s")
	b.ReportMetric(tr.P50NS, "vp50_ns")
	b.ReportMetric(last.AvgBatch(), "vbatch")
	b.ReportMetric(float64(*shardsFlag), "shards")
}

func BenchmarkServeLoadBatch1(b *testing.B) { benchServe(b, 1) }
func BenchmarkServeLoadBatch4(b *testing.B) { benchServe(b, 4) }
func BenchmarkServeLoadBatch8(b *testing.B) { benchServe(b, 8) }

// BenchmarkServeLoadScaleOut is the sharded plane's aggregate-throughput
// row: four tenants, each offering the single-tenant saturation load on its
// own partition (DeviceAffinity), served with four kernel shards. The
// vreq/s metric is the aggregate goodput across tenants — the number that
// moves past the single-partition 90k plateau.
func BenchmarkServeLoadScaleOut(b *testing.B) {
	shards := 4
	if *shardsFlag > 0 {
		shards = *shardsFlag
	}
	cfg := benchConfig(4)
	cfg.Shards = shards
	cfg.GPUPartitions = 4
	cfg.Policy = serve.DeviceAffinity
	cfg.Tenants = nil
	for ti := 0; ti < 4; ti++ {
		cfg.Tenants = append(cfg.Tenants, serve.TenantSpec{
			Name: fmt.Sprintf("load%d", ti), Arrival: serve.FixedRate, Rate: 90000, QueueCap: 64,
			Mix: []serve.WorkClass{{Name: "resnet50", Graph: tvm.ResNet50()}},
		})
	}
	var last *serve.Result
	for i := 0; i < b.N; i++ {
		res, err := serve.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	var agg float64
	var p50 float64
	for _, tr := range last.Tenants {
		agg += tr.GoodputRPS
		if tr.P50NS > p50 {
			p50 = tr.P50NS
		}
	}
	b.ReportMetric(agg, "vreq/s")
	b.ReportMetric(p50, "vp50_ns")
	b.ReportMetric(last.AvgBatch(), "vbatch")
	b.ReportMetric(float64(shards), "shards")
}

// BenchmarkServeLoadMultiNode is the fabric cluster's aggregate-throughput
// row: eight tenants, each offering the single-tenant saturation load, over
// eight partitions and eight kernel shards split across two nodes. Tenants
// hash onto home nodes (HashBound 1.0 forces an even four-per-node split)
// and DeviceAffinity pins each to its own partition inside the home group,
// so the vreq/s aggregate is the two-node scale-out of the four-partition
// ScaleOut row — inter-node transfer costs included.
func BenchmarkServeLoadMultiNode(b *testing.B) {
	benchMultiNode(b, 2)
}

// BenchmarkServeLoadMultiNode4 pushes the scale-out row to four nodes: sixteen
// tenants over sixteen partitions and sixteen kernel shards, four per node —
// the -nodes 4 -partitions 16 -shards 16 configuration. Together with the
// two-node row it shows how the aggregate scales as the fabric doubles.
func BenchmarkServeLoadMultiNode4(b *testing.B) {
	benchMultiNode(b, 4)
}

// benchMultiNode runs the fabric scale-out row over `nodes` nodes with four
// partitions, four shards and four pinned tenants per node.
func benchMultiNode(b *testing.B, nodes int) {
	cfg := benchConfig(4)
	cfg.Nodes = nodes
	cfg.Shards = 4 * nodes
	cfg.GPUPartitions = 4 * nodes
	cfg.Policy = serve.DeviceAffinity
	cfg.HashBound = 1.0
	cfg.Tenants = nil
	for ti := 0; ti < 4*nodes; ti++ {
		cfg.Tenants = append(cfg.Tenants, serve.TenantSpec{
			Name: fmt.Sprintf("load%d", ti), Arrival: serve.FixedRate, Rate: 90000, QueueCap: 64,
			Mix: []serve.WorkClass{{Name: "resnet50", Graph: tvm.ResNet50()}},
		})
	}
	var last *serve.Result
	for i := 0; i < b.N; i++ {
		res, err := serve.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	var agg float64
	var p50 float64
	for _, tr := range last.Tenants {
		agg += tr.GoodputRPS
		if tr.P50NS > p50 {
			p50 = tr.P50NS
		}
	}
	b.ReportMetric(agg, "vreq/s")
	b.ReportMetric(p50, "vp50_ns")
	b.ReportMetric(last.AvgBatch(), "vbatch")
	b.ReportMetric(float64(cfg.Shards), "shards")
	b.ReportMetric(float64(cfg.Nodes), "nodes")
}
