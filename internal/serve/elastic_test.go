package serve_test

import (
	"strings"
	"testing"

	"cronus/internal/elastic"
	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/tvm"
)

// elasticConfig is the common migration test load: a saturating fixed-rate
// tenant plus a Poisson tenant over four partitions, sharded.
func elasticConfig() serve.Config {
	return serve.Config{
		Seed:          29,
		Window:        4 * sim.Millisecond,
		Policy:        serve.RoundRobin,
		MaxBatch:      4,
		BatchWindow:   40 * sim.Microsecond,
		GPUPartitions: 4,
		GPUFlopsPerNs: 400,
		Shards:        4,
		KeepRequests:  true,
		Tenants: []serve.TenantSpec{
			{Name: "alpha", Arrival: serve.FixedRate, Rate: 90000, QueueCap: 64,
				Mix: []serve.WorkClass{{Name: "resnet50", Graph: tvm.ResNet50()}}},
			{Name: "beta", Arrival: serve.Poisson, Rate: 30000, QueueCap: 64,
				Mix: []serve.WorkClass{{Name: "resnet18", Graph: tvm.ResNet18()}}},
		},
	}
}

// elasticTotals asserts the conservation and exactly-once invariants that
// every elastic scenario must preserve.
func elasticTotals(t *testing.T, res *serve.Result) {
	t.Helper()
	for _, tr := range res.Tenants {
		if tr.Offered != tr.Admitted+tr.Shed {
			t.Errorf("tenant %s: offered %d != admitted %d + shed %d", tr.Name, tr.Offered, tr.Admitted, tr.Shed)
		}
		if tr.Admitted != tr.Completed+tr.Failed {
			t.Errorf("tenant %s: admitted %d != completed %d + failed %d", tr.Name, tr.Admitted, tr.Completed, tr.Failed)
		}
		if tr.Duplicates != 0 {
			t.Errorf("tenant %s: %d duplicate completions", tr.Name, tr.Duplicates)
		}
	}
	if res.SplitBrain != 0 {
		t.Errorf("no-split-brain invariant violated %d times", res.SplitBrain)
	}
}

func hasEvent(res *serve.Result, substr string) bool {
	if res.Elastic == nil {
		return false
	}
	for _, ev := range res.Elastic.Events {
		if strings.Contains(ev, substr) {
			return true
		}
	}
	return false
}

// TestPlannedMigration pins the acceptance criterion: a planned migration
// under saturating load completes with zero lost or duplicated requests, the
// full quiesce→checkpoint→transfer→replay→release event trail lands in the
// result, and the released source stops serving.
func TestPlannedMigration(t *testing.T) {
	cfg := elasticConfig()
	cfg.Migrations = []serve.Migration{{
		At:   2 * sim.Millisecond,
		From: elastic.Endpoint{Part: 3},
		To:   elastic.Endpoint{Part: 0},
	}}
	res, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	elasticTotals(t, res)
	if res.Elastic == nil {
		t.Fatal("Result.Elastic is nil with a migration armed")
	}
	if res.Elastic.Migrations != 1 || res.Elastic.Interrupted != 0 {
		t.Fatalf("migrations=%d interrupted=%d, want 1/0\n%s",
			res.Elastic.Migrations, res.Elastic.Interrupted, res.Report())
	}
	if !hasEvent(res, "migration n0/gpu-part3 -> n0/gpu-part0: quiesce") {
		t.Errorf("missing quiesce event:\n%s", res.Report())
	}
	if !hasEvent(res, "completed") {
		t.Errorf("missing completion event:\n%s", res.Report())
	}
	if c := res.Metrics.Counters["serve.elastic.migrations"]; c != 1 {
		t.Errorf("serve.elastic.migrations counter = %d, want 1", c)
	}
	for _, tr := range res.Tenants {
		if tr.Completed == 0 {
			t.Errorf("tenant %s served nothing across the migration", tr.Name)
		}
	}
}

// TestMigrateInterrupt pins the degradation contract of migrate-interrupt:
// a source dying mid-checkpoint falls back to the ordinary crash-failover
// path — the SPM records a panic on the source partition, in-flight work
// replays exactly once, and nothing is lost or duplicated.
func TestMigrateInterrupt(t *testing.T) {
	cfg := elasticConfig()
	cfg.Migrations = []serve.Migration{{
		At:        2 * sim.Millisecond,
		From:      elastic.Endpoint{Part: 1},
		To:        elastic.Endpoint{Part: 2},
		Interrupt: true,
	}}
	res, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	elasticTotals(t, res)
	if res.Elastic.Interrupted != 1 || res.Elastic.Migrations != 0 {
		t.Fatalf("interrupted=%d migrations=%d, want 1/0\n%s",
			res.Elastic.Interrupted, res.Elastic.Migrations, res.Report())
	}
	if !hasEvent(res, "interrupted: source failed mid-checkpoint") {
		t.Errorf("missing interrupt event:\n%s", res.Report())
	}
	foundPanic := false
	for _, f := range res.Failures {
		if f.Partition == "gpu-part1" && f.Reason == spm.FailPanic {
			foundPanic = true
		}
	}
	if !foundPanic {
		t.Errorf("no FailPanic record for gpu-part1 — crash-failover did not engage: %+v", res.Failures)
	}
}

// TestDrainRace pins the drain-race fault: a batch force-dispatched onto the
// quiescing source after the policies stopped picking it must still resolve
// exactly once — either completing on the source before the drain deadline
// or replaying with the rest of the in-flight work.
func TestDrainRace(t *testing.T) {
	cfg := elasticConfig()
	cfg.Migrations = []serve.Migration{{
		At:   2 * sim.Millisecond,
		From: elastic.Endpoint{Part: 0},
		To:   elastic.Endpoint{Part: 1},
		Race: true,
	}}
	res, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	elasticTotals(t, res)
	if res.Elastic.DrainRaces != 1 {
		t.Fatalf("drain-races=%d, want 1\n%s", res.Elastic.DrainRaces, res.Report())
	}
	if res.Elastic.Migrations != 1 {
		t.Fatalf("migrations=%d, want 1 (the raced migration must still complete)", res.Elastic.Migrations)
	}
}

// TestScaleStorm forces the autoscaler through an oscillation window: the
// loop must scale down and back up at least once, the post-storm restore
// must return the plane to full capacity, and all serving invariants hold
// throughout.
func TestScaleStorm(t *testing.T) {
	cfg := elasticConfig()
	cfg.Autoscale = &elastic.Config{
		Interval:  100 * sim.Microsecond,
		HighDepth: 1 << 30, // inert outside the storm
		LowDepth:  -1,
		HighShed:  2,
	}
	cfg.ScaleStorms = []serve.ScaleStorm{{At: sim.Millisecond, Until: 2 * sim.Millisecond}}
	res, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	elasticTotals(t, res)
	if res.Elastic.ScaleDowns < 1 || res.Elastic.ScaleUps < 1 {
		t.Fatalf("scale-downs=%d scale-ups=%d, want >= 1 each\n%s",
			res.Elastic.ScaleDowns, res.Elastic.ScaleUps, res.Report())
	}
	// Post-storm restore: every release must be matched by a re-activation.
	if res.Elastic.ScaleUps < res.Elastic.ScaleDowns {
		t.Errorf("storm left capacity released: downs=%d ups=%d",
			res.Elastic.ScaleDowns, res.Elastic.ScaleUps)
	}
}

// TestMigrationTicketSurvival pins the attestation contract of a migration:
// every partition boots the same mOS image, so a cross-node move lands on a
// partition with the same measurement — existing session tickets keep
// working (resumes, not cold verifies) and the migrated run pays exactly as
// many cold attestations as an identical run without the migration.
func TestMigrationTicketSurvival(t *testing.T) {
	mk := func(migrate bool) serve.Config {
		cfg := clusterConfig()
		cfg.AttestTickets = true
		cfg.AttestTicketTTL = 10 * sim.Millisecond
		if migrate {
			cfg.Migrations = []serve.Migration{{
				At:   2 * sim.Millisecond,
				From: elastic.Endpoint{Node: 0, Part: 1},
				To:   elastic.Endpoint{Node: 1, Part: 1},
			}}
		}
		return cfg
	}
	base, err := serve.Run(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	moved, err := serve.Run(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	elasticTotals(t, moved)
	if moved.Elastic == nil || moved.Elastic.Migrations != 1 {
		t.Fatalf("cross-node migration did not complete:\n%s", moved.Report())
	}
	baseCold := base.Metrics.Counters["serve.attest.cold"]
	movedCold := moved.Metrics.Counters["serve.attest.cold"]
	if movedCold != baseCold {
		t.Errorf("cold attestations changed across a same-measurement move: base=%d moved=%d",
			baseCold, movedCold)
	}
	if moved.Metrics.Counters["serve.attest.resumed"] == 0 {
		t.Error("no ticket resumes after the migration — tickets did not survive the move")
	}
}

// TestElasticDeterminism pins the determinism contract over every elastic
// scenario: reports and per-request records replay byte-identically, with
// the parallel engine on or off.
func TestElasticDeterminism(t *testing.T) {
	mk := func(parallel bool) serve.Config {
		cfg := elasticConfig()
		cfg.Parallel = parallel
		cfg.Migrations = []serve.Migration{
			{At: 1500 * sim.Microsecond, From: elastic.Endpoint{Part: 3}, To: elastic.Endpoint{Part: 0}, Race: true},
			{At: 2500 * sim.Microsecond, From: elastic.Endpoint{Part: 2}, To: elastic.Endpoint{Part: 1}, Interrupt: true},
		}
		cfg.Autoscale = &elastic.Config{HighDepth: 1 << 30, LowDepth: -1, HighShed: 2}
		cfg.ScaleStorms = []serve.ScaleStorm{{At: 3 * sim.Millisecond, Until: 3500 * sim.Microsecond}}
		return cfg
	}
	ref, err := serve.Run(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	refReport, refReqs := ref.Report(), requestsDigest(t, ref)
	for _, tc := range []struct {
		name     string
		parallel bool
	}{
		{"rerun", false},
		{"parallel", true},
	} {
		res, err := serve.Run(mk(tc.parallel))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := res.Report(); got != refReport {
			t.Errorf("%s: report diverged\n--- ref ---\n%s--- got ---\n%s", tc.name, refReport, got)
		}
		if got := requestsDigest(t, res); got != refReqs {
			t.Errorf("%s: per-request records diverged", tc.name)
		}
	}
}

// TestElasticValidation pins the typed usage errors of the elastic layer.
func TestElasticValidation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*serve.Config)
	}{
		{"migration on classic plane", func(c *serve.Config) {
			c.Shards = 0
			c.Migrations = []serve.Migration{{At: sim.Millisecond, To: elastic.Endpoint{Part: 1}}}
		}},
		{"storm without autoscale", func(c *serve.Config) {
			c.ScaleStorms = []serve.ScaleStorm{{At: sim.Millisecond, Until: 2 * sim.Millisecond}}
		}},
		{"self migration", func(c *serve.Config) {
			c.Migrations = []serve.Migration{{At: sim.Millisecond}}
		}},
		{"partition out of range", func(c *serve.Config) {
			c.Migrations = []serve.Migration{{At: sim.Millisecond, To: elastic.Endpoint{Part: 9}}}
		}},
		{"missing At", func(c *serve.Config) {
			c.Migrations = []serve.Migration{{To: elastic.Endpoint{Part: 1}}}
		}},
	} {
		cfg := elasticConfig()
		tc.mutate(&cfg)
		if _, err := serve.Run(cfg); err == nil {
			t.Errorf("%s: Run accepted an invalid config", tc.name)
		}
	}
}
