package serve_test

import (
	"errors"
	"testing"

	"cronus/internal/cluster"
	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/tvm"
)

// clusterConfig is the common two-node test load: four tenants hashed over
// two nodes (HashBound 1.0 forces an even 2/2 split), eight partitions in
// four-per-node blocks, eight kernel shards in four-per-node groups.
func clusterConfig() serve.Config {
	return serve.Config{
		Seed:          23,
		Window:        4 * sim.Millisecond,
		Policy:        serve.RoundRobin,
		MaxBatch:      4,
		BatchWindow:   40 * sim.Microsecond,
		GPUPartitions: 8,
		GPUFlopsPerNs: 400,
		Shards:        8,
		Nodes:         2,
		HashBound:     1.0,
		KeepRequests:  true,
		Tenants: []serve.TenantSpec{
			{Name: "alpha", Arrival: serve.FixedRate, Rate: 40000, QueueCap: 64,
				Mix: []serve.WorkClass{{Name: "resnet50", Graph: tvm.ResNet50()}}},
			{Name: "beta", Arrival: serve.Poisson, Rate: 20000, QueueCap: 64,
				Mix: []serve.WorkClass{{Name: "resnet18", Graph: tvm.ResNet18()}}},
			{Name: "gamma", Arrival: serve.FixedRate, Rate: 30000, QueueCap: 64,
				Mix: []serve.WorkClass{{Name: "resnet18", Graph: tvm.ResNet18()}}},
			{Name: "delta", Arrival: serve.Poisson, Rate: 15000, QueueCap: 64,
				Mix: []serve.WorkClass{{Name: "resnet50", Graph: tvm.ResNet50()}}},
		},
	}
}

func clusterTotals(t *testing.T, res *serve.Result) {
	t.Helper()
	for _, tr := range res.Tenants {
		if tr.Offered != tr.Admitted+tr.Shed {
			t.Errorf("tenant %s: offered %d != admitted %d + shed %d", tr.Name, tr.Offered, tr.Admitted, tr.Shed)
		}
		if tr.Admitted != tr.Completed+tr.Failed {
			t.Errorf("tenant %s: admitted %d != completed %d + failed %d", tr.Name, tr.Admitted, tr.Completed, tr.Failed)
		}
		if tr.Duplicates != 0 {
			t.Errorf("tenant %s: %d duplicate completions", tr.Name, tr.Duplicates)
		}
	}
	if res.SplitBrain != 0 {
		t.Errorf("no-split-brain invariant violated %d times", res.SplitBrain)
	}
}

// TestClusterPlacement pins the boot-time global placement: with HashBound
// 1.0 the four tenants must split two-and-two over the nodes, every tenant
// must be served, and the run must satisfy conservation and no-split-brain.
func TestClusterPlacement(t *testing.T) {
	res, err := serve.Run(clusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	clusterTotals(t, res)
	if res.Nodes != 2 {
		t.Fatalf("Result.Nodes = %d, want 2", res.Nodes)
	}
	loads := map[int]int{}
	for _, tr := range res.Tenants {
		loads[tr.Home]++
		if tr.Completed == 0 {
			t.Errorf("tenant %s (home n%d) served nothing", tr.Name, tr.Home)
		}
		if tr.Rehomed {
			t.Errorf("tenant %s rehomed without any fault", tr.Name)
		}
	}
	if loads[0] != 2 || loads[1] != 2 {
		t.Errorf("bounded-load split is %v, want 2 tenants per node", loads)
	}
}

// TestClusterDeterminism pins the acceptance criterion: a 2-node run replays
// byte-identically across repeats and across -parallel on/off, with and
// without a scheduled node crash.
func TestClusterDeterminism(t *testing.T) {
	for _, fault := range []bool{false, true} {
		mk := func(parallel bool) serve.Config {
			cfg := clusterConfig()
			cfg.Parallel = parallel
			if fault {
				cfg.GPUFlopsPerNs = 100
				cfg.NodeFaults = []cluster.Fault{
					{Kind: cluster.NodeCrash, Node: 1, At: 1500 * sim.Microsecond},
				}
			}
			return cfg
		}
		ref, err := serve.Run(mk(false))
		if err != nil {
			t.Fatal(err)
		}
		refReport, refReqs := ref.Report(), requestsDigest(t, ref)
		for _, tc := range []struct {
			name     string
			parallel bool
		}{
			{"rerun", false},
			{"parallel", true},
		} {
			res, err := serve.Run(mk(tc.parallel))
			if err != nil {
				t.Fatalf("fault=%v %s: %v", fault, tc.name, err)
			}
			if got := res.Report(); got != refReport {
				t.Errorf("fault=%v %s: report diverged\n--- ref ---\n%s--- got ---\n%s",
					fault, tc.name, refReport, got)
			}
			if got := requestsDigest(t, res); got != refReqs {
				t.Errorf("fault=%v %s: per-request records diverged", fault, tc.name)
			}
		}
	}
}

// TestClusterNodeCrash kills node 1 mid-window under a saturating load: every
// tenant homed there must re-hash to node 0 and drain exactly once through
// the completion accounting (in-flight batches replayed, zero duplicates,
// zero split brain), and the crash must land in the node event log.
func TestClusterNodeCrash(t *testing.T) {
	cfg := clusterConfig()
	cfg.GPUFlopsPerNs = 100 // slow devices keep lanes saturated at the crash
	cfg.NodeFaults = []cluster.Fault{
		{Kind: cluster.NodeCrash, Node: 1, At: 1500 * sim.Microsecond},
	}
	res, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusterTotals(t, res)
	victims, replays := 0, uint64(0)
	for _, tr := range res.Tenants {
		if tr.Home == 1 {
			victims++
			if !tr.Rehomed {
				t.Errorf("victim tenant %s not rehomed after its node crashed", tr.Name)
			}
			replays += tr.Replayed
			if tr.Completed == 0 {
				t.Errorf("victim tenant %s completed nothing on the survivor", tr.Name)
			}
		} else if tr.Rehomed {
			t.Errorf("survivor tenant %s rehomed", tr.Name)
		}
	}
	if victims == 0 {
		t.Fatal("no tenant homed on the crashed node — placement degenerate")
	}
	if replays == 0 {
		t.Errorf("no in-flight replays across a node crash under saturation:\n%s", res.Report())
	}
	if len(res.NodeEvents) == 0 {
		t.Error("node crash left no node events")
	}
}

// TestClusterNetPartition cuts node 1's link for a window mid-run: dispatches
// into the cut fail with the typed *cluster.NetPartitionedError, completions
// in flight at the cut park until the heal instant, and after the heal the
// tenant serves again — with conservation intact throughout.
func TestClusterNetPartition(t *testing.T) {
	cfg := clusterConfig()
	cfg.NodeFaults = []cluster.Fault{
		{Kind: cluster.NetPartition, Node: 1, At: 1 * sim.Millisecond, Until: 2 * sim.Millisecond},
	}
	res, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusterTotals(t, res)
	partitioned := 0
	for _, r := range res.Requests {
		if r.Err == nil {
			continue
		}
		var npe *cluster.NetPartitionedError
		if errors.As(r.Err, &npe) {
			partitioned++
			if npe.Node != 1 {
				t.Errorf("partition error names node %d, want 1", npe.Node)
			}
		} else {
			t.Errorf("unexpected error type under net-partition: %v", r.Err)
		}
	}
	if partitioned == 0 {
		t.Errorf("no typed NetPartitionedError failures during a 1ms cut:\n%s", res.Report())
	}
	for _, tr := range res.Tenants {
		if tr.Home == 1 && tr.Completed == 0 {
			t.Errorf("tenant %s on the partitioned node never completed (heal drain broken)", tr.Name)
		}
		if tr.Rehomed {
			t.Errorf("tenant %s rehomed on a transient partition", tr.Name)
		}
	}
}

// TestClusterSlowLink multiplies node 1's link latency for the whole window
// and checks the victims' tail latency moves while node-0 tenants' rows stay
// byte-identical to the unfaulted run.
func TestClusterSlowLink(t *testing.T) {
	base, err := serve.Run(clusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := clusterConfig()
	cfg.NodeFaults = []cluster.Fault{
		{Kind: cluster.SlowLink, Node: 1, Mult: 8, At: 1, Until: cfg.Window},
	}
	slow, err := serve.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusterTotals(t, slow)
	for i := range base.Tenants {
		b, s := base.Tenants[i], slow.Tenants[i]
		switch b.Home {
		case 1:
			if s.P95NS <= b.P95NS {
				t.Errorf("tenant %s on the slowed link: p95 %.0f <= baseline %.0f", b.Name, s.P95NS, b.P95NS)
			}
		default:
			if s.P50NS != b.P50NS || s.Completed != b.Completed {
				t.Errorf("tenant %s off the slowed link perturbed: p50 %.0f vs %.0f", b.Name, s.P50NS, b.P50NS)
			}
		}
	}
}

// TestClusterValidation pins the typed refusals of cluster mode.
func TestClusterValidation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*serve.Config)
	}{
		{"no-shards", func(c *serve.Config) { c.Shards = 0 }},
		{"shards-indivisible", func(c *serve.Config) { c.Shards = 5 }},
		{"partitions-indivisible", func(c *serve.Config) { c.GPUPartitions = 7 }},
		{"too-many-nodes", func(c *serve.Config) { c.Nodes = 17 }},
		{"fault-bad-node", func(c *serve.Config) {
			c.NodeFaults = []cluster.Fault{{Kind: cluster.NodeCrash, Node: 5, At: sim.Millisecond}}
		}},
		{"fault-bad-window", func(c *serve.Config) {
			c.NodeFaults = []cluster.Fault{{Kind: cluster.NetPartition, Node: 1, At: sim.Millisecond, Until: sim.Microsecond}}
		}},
		{"fault-bad-mult", func(c *serve.Config) {
			c.NodeFaults = []cluster.Fault{{Kind: cluster.SlowLink, Node: 1, At: 1, Until: sim.Millisecond, Mult: 0.5}}
		}},
		{"fault-unknown-kind", func(c *serve.Config) {
			c.NodeFaults = []cluster.Fault{{Kind: "meteor-strike", Node: 0, At: 1}}
		}},
	} {
		cfg := clusterConfig()
		tc.mutate(&cfg)
		if _, err := serve.Run(cfg); err == nil {
			t.Errorf("%s: cluster config accepted, want a validation error", tc.name)
		}
	}
}

// TestCheckShardLayout pins the CLI-facing divisibility check (PR 8
// satellite): a -shards value that does not divide the partition count is a
// typed usage error, as is any shard/partition count that does not divide
// across nodes.
func TestCheckShardLayout(t *testing.T) {
	for _, tc := range []struct {
		shards, partitions, nodes int
		wantErr                   bool
	}{
		{0, 2, 0, false},  // classic plane: no constraint
		{1, 3, 0, false},  // still classic
		{2, 2, 0, false},  // even split
		{4, 8, 0, false},  // even split
		{4, 2, 0, true},   // partitions do not divide over shards
		{3, 8, 0, true},   // 8 % 3 != 0
		{8, 8, 2, false},  // cluster, even everywhere
		{4, 8, 2, false},  // 2 shards + 4 partitions per node
		{4, 8, 3, true},   // shards do not divide over nodes
		{8, 10, 2, true},  // partitions divide over nodes but not shards
		{2, 6, 4, true},   // partitions do not divide over nodes
		{0, 8, 2, true},   // cluster requires the sharded plane
	} {
		err := serve.CheckShardLayout(tc.shards, tc.partitions, tc.nodes)
		if (err != nil) != tc.wantErr {
			t.Errorf("CheckShardLayout(%d, %d, %d) = %v, wantErr %v",
				tc.shards, tc.partitions, tc.nodes, err, tc.wantErr)
		}
		if err != nil {
			var sle *serve.ShardLayoutError
			if !errors.As(err, &sle) {
				t.Errorf("CheckShardLayout(%d, %d, %d): error is %T, want *ShardLayoutError",
					tc.shards, tc.partitions, tc.nodes, err)
			}
		}
	}
}
