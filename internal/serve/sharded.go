package serve

// The sharded data plane: the serving path selected by Config.Shards >= 2.
//
// The classic plane burns a proc handshake (park + wake, ~1µs of host time)
// for every queue push, batch window, replica enqueue and sRPC doorbell —
// fine at Fig.-8 scale, but at 90k requests per virtual second the host time
// of one 20ms window is dominated by scheduler churn, not by the model. The
// sharded plane keeps the control plane real (platform boot, per-tenant
// sessions, CUDA mEnclave creation with local attestation, multi-ring sRPC
// streams with zero-copy arenas, SPM failure subscription and reconnect) and
// replaces the per-request machinery with an event-driven flow model over
// the exact same cost surface:
//
//   - arrivals are CallAt chains on the host shard (one event per request,
//     no generator proc wakeups);
//   - admission and dynamic batching run inline in the arrival event
//     (single-class FIFO batches, closed at MaxBatch or BatchWindow);
//   - a closed batch crosses to its replica's partition shard through a
//     mailbox Port whose hop is the PCIe latency — exactly the kernel
//     lookahead, so conservative parallel windows never stall on it;
//   - the lane handler serializes service on one of Config.Lanes modeled
//     rings and charges the fused zero-copy path: RingPush + SpanCheck on
//     the host side, RingPoll + SpanCheck + two RPC dispatches + payload
//     DMA + kernel dispatch + per-item device work on the lane
//     (srpc.CallZC's cost surface; see zerocopy.go);
//   - completion crosses back through a host-shard Port whose inline
//     handler finalizes every request of the batch — histograms, SLO
//     scoring, closed-loop signals, drain bookkeeping.
//
// Determinism. Every cross-entity interaction rides a Port, and Port sends
// are (sender lid, sender seq)-keyed in both sequential and parallel modes;
// every same-tenant tie (arrival vs. window timer) is keyed by the tenant's
// single anchor proc, so its order is the scheduling order in both modes;
// ties across tenants touch no shared order-sensitive state (tenants own
// disjoint replicas, stripes and histograms; the only shared words are
// commutative totals). Hence a run's outputs are byte-identical across
// shard counts and with Parallel on or off — asserted by the tests.
//
// Counters that the classic plane kept global are striped here: each lane
// counts its own batches, requests and busy time on its partition shard,
// and result() folds the stripes in deterministic tenant → replica → lane
// order at snapshot time.
//
// Faults. The only failure source the sharded plane admits is the FailAt
// injector (Supervision and HangReportAfter are validated out; a
// RequestTimeout is modeled as a lane deadline — a batch whose service time
// exceeds it burns MaxRetries+1 timeout windows plus the doubling backoff
// gaps on its lane and completes with the typed TimeoutError, matching the
// classic watchdog's accounting), and the
// injector sequentializes the kernel before pulling the trigger, so every
// failover runs single-threaded: in-flight batches on the dead replica are
// cancelled (their pending lane/completion events become no-ops) and their
// requests requeued to the tenant backlog, a recovery proc waits out the
// SPM restart and reconnects for real, then the backlog re-dispatches.
// Attestation revocations (attestor.go) follow the same discipline: the
// re-measurement prober and the attestation fault procs sequentialize the
// kernel before mutating global state, and a revocation sheds the revoked
// replica's in-flight batches (typed *attest.RevokedError, never requeued —
// results from a partition with a stale measurement are untrusted) before
// draining the partition through the quarantine path.

import (
	"fmt"
	"math/rand"

	"cronus/internal/cluster"
	"cronus/internal/sim"
	"cronus/internal/spm"
)

// Logical proc ids of the sharded plane. Every proc alive when the kernel
// goes parallel needs a stable non-zero lid: event keys derive from it, so
// the assignment is part of the determinism contract.
const (
	lidMain         uint64 = 1       // the proc driving Serve
	lidFailInjector uint64 = 7       // the FailAt injector
	lidTenantAnchor uint64 = 0x100   // + tenant index (host shard)
	lidShardAnchor  uint64 = 0x200   // + shard id (device shards)
	lidNodeFault    uint64 = 0x300   // + node index (cluster fault procs)
	lidGateway      uint64 = 0x400   // the cluster gateway anchor (host shard)
	lidAttestProber uint64 = 0x480   // the continuous re-measurement prober
	lidAttestFault  uint64 = 0x500   // + fault index (attestation fault procs)
	lidMigration    uint64 = 0x600   // + migration index (planned migration procs)
	lidAutoscaler   uint64 = 0x680   // the elastic autoscaler control loop
	lidClosedLoop   uint64 = 0x10000 // * (tenant index + 1) + client + 1
)

// laneState is one modeled parallel sRPC ring of a replica. It lives on the
// replica's partition shard: only lane-arrival handlers and the completion
// CallAt closures touch it, so it needs no locking even in parallel windows.
type laneState struct {
	busyUntil sim.Time
	batches   uint64
	reqs      uint64
	busyNS    sim.Duration
}

// shState is the sharded plane's kernel-facing state.
type shState struct {
	n       int          // device shards (Config.Shards)
	hop     sim.Duration // Port hop == kernel lookahead (PCIe latency)
	anchors []*sim.Proc  // per-shard anchor procs, index = kernel shard id
	compl   *sim.Port[*batch]
}

// ShardLayoutError is the typed usage error for a shard/partition/node
// layout that cannot be mapped cleanly: partition counts that do not divide
// across shards, or shard/partition counts that do not divide across nodes.
// CLIs report it and exit with a usage status instead of booting a lopsided
// plane.
type ShardLayoutError struct {
	Shards     int
	Partitions int
	Nodes      int
}

// Error implements error.
func (e *ShardLayoutError) Error() string {
	if e.Nodes >= 2 {
		return fmt.Sprintf("serve: layout -shards %d -partitions %d -nodes %d: shards and partitions must each be positive multiples of the node count",
			e.Shards, e.Partitions, e.Nodes)
	}
	return fmt.Sprintf("serve: layout -shards %d -partitions %d: the partition count must be a positive multiple of the shard count",
		e.Shards, e.Partitions)
}

// CheckShardLayout validates a CLI-facing shard/partition/node combination:
// with shards >= 2 the partitions must divide evenly over the shards, and
// with nodes >= 2 both shards and partitions must divide evenly over the
// nodes. Library configs are not forced through this (benchmarks legitimately
// run one partition over many shards); it exists so command-line layouts fail
// fast with a typed usage error instead of producing a surprising mapping.
func CheckShardLayout(shards, partitions, nodes int) error {
	if nodes >= 2 {
		if shards < 2 || shards%nodes != 0 || partitions < 1 || partitions%nodes != 0 {
			return &ShardLayoutError{Shards: shards, Partitions: partitions, Nodes: nodes}
		}
	}
	if shards >= 2 && (partitions < 1 || partitions%shards != 0) {
		return &ShardLayoutError{Shards: shards, Partitions: partitions, Nodes: nodes}
	}
	return nil
}

// validateSharded rejects configurations the sharded plane does not model.
// The checks run after defaults(), on every New.
func validateSharded(cfg Config) error {
	if cfg.Shards < 2 {
		if cfg.Parallel {
			return fmt.Errorf("serve: Parallel requires Shards >= 2")
		}
		return nil
	}
	switch {
	case cfg.Trace:
		return fmt.Errorf("serve: the sharded data plane does not support Trace (use Shards <= 1)")
	case cfg.Supervision != nil:
		return fmt.Errorf("serve: the sharded data plane does not support Supervision (use Shards <= 1)")
	case cfg.HangReportAfter > 0:
		return fmt.Errorf("serve: the sharded data plane does not support HangReportAfter (use Shards <= 1)")
	}
	for _, spec := range cfg.Tenants {
		for _, wc := range spec.Mix {
			if wc.Bench != nil {
				return fmt.Errorf("serve: the sharded data plane serves batchable inference classes only; class %s of tenant %s is a rodinia pass",
					wc.Name, spec.Name)
			}
		}
	}
	return nil
}

// shBoot partitions the kernel (one host shard plus cfg.Shards device
// shards), spreads the pooled GPU partitions across the device shards, and
// anchors the cross-shard machinery: one parked anchor proc per device shard
// (the stable identity that keys CallAt and Port events raised from handler
// context there) and the host-shard completion port. Runs before any replica
// connects, so executor placement sees the partition's shard.
func (srv *Server) shBoot() {
	k := srv.pl.K
	hop := srv.pl.Costs.PCIeLatency
	k.EnableSharding(1+srv.cfg.Shards, hop)
	srv.sh = &shState{
		n:       srv.cfg.Shards,
		hop:     hop,
		anchors: make([]*sim.Proc, 1+srv.cfg.Shards),
	}
	if srv.cl != nil {
		// Cluster layout: node n's partitions map onto its own shard block
		// [1+n·spn, 1+(n+1)·spn), so no kernel shard ever hosts partitions
		// of two nodes and a node crash quiesces a whole shard group.
		for n := 0; n < srv.cl.nodes; n++ {
			for pi := 0; pi < srv.cl.ppn; pi++ {
				srv.plats[n].GPUs[pi].Part.SetShard(1 + n*srv.cl.spn + pi%srv.cl.spn)
			}
		}
	} else {
		for pi := 0; pi < srv.cfg.GPUPartitions; pi++ {
			srv.pl.GPUs[pi].Part.SetShard(1 + pi%srv.cfg.Shards)
		}
	}
	for s := 1; s <= srv.cfg.Shards; s++ {
		srv.sh.anchors[s] = srv.shSpawnAnchor(s, lidShardAnchor+uint64(s),
			fmt.Sprintf("serve-anchor-shard%d", s))
	}
	if srv.cl != nil {
		// The gateway anchor keys the heal-queue flush timers, and each node
		// gets its own completion port whose hop is the fabric link latency:
		// a completion crossing node→gateway pays the propagation delay in
		// the port hop and the serialization/bandwidth cost in submitNS.
		srv.cl.gw = srv.shSpawnAnchor(0, lidGateway, "serve-gateway")
		srv.cl.compl = make([]*sim.Port[*batch], srv.cl.nodes)
		for n := 0; n < srv.cl.nodes; n++ {
			n := n
			srv.cl.compl[n] = sim.NewPort[*batch](k, 0,
				fmt.Sprintf("serve-compl-n%d", n), srv.cfg.LinkLatency)
			srv.cl.compl[n].SetHandler(func(at sim.Time, b *batch) {
				srv.clComplArrive(n, at, b)
			})
		}
		return
	}
	srv.sh.compl = sim.NewPort[*batch](k, 0, "serve-completions", hop)
	srv.sh.compl.SetHandler(srv.shDone)
}

// shSpawnAnchor spawns a proc that parks forever on the given shard: its
// (lid, seq) identity keys the events raised on its shard's behalf.
func (srv *Server) shSpawnAnchor(shard int, lid uint64, name string) *sim.Proc {
	park := sim.NewSignal(srv.pl.K)
	return srv.pl.K.SpawnOn(shard, lid, name, func(p *sim.Proc) {
		park.Wait(p) // never fired: the anchor exists for its identity
	})
}

// shInitReplica attaches the lane stripes and the partition-shard mailbox
// port to a replica being built (before its first connect).
func (srv *Server) shInitReplica(rep *replica) {
	rep.lanes = make([]laneState, srv.cfg.Lanes)
	shard := rep.plat().GPUs[rep.partIdx].Part.Shard()
	hop := srv.sh.hop
	name := fmt.Sprintf("serve-lane-%s-p%d", rep.t.spec.Name, rep.partIdx)
	if srv.cl != nil {
		// Gateway→node crossings ride the fabric, not PCIe: the port hop is
		// the inter-node link latency (validated ≥ the kernel lookahead).
		hop = srv.cfg.LinkLatency
		name = fmt.Sprintf("serve-lane-%s-n%d-p%d", rep.t.spec.Name, rep.node, rep.partIdx)
	}
	rep.lanePort = sim.NewPort[*batch](srv.pl.K, shard, name, hop)
	rep.lanePort.SetHandler(func(at sim.Time, b *batch) {
		srv.shLaneArrive(rep, at, b)
	})
}

// shServe is the Serve body of the sharded plane: arm the arrival chains and
// the injector, optionally go parallel, sleep out the window, drain, then
// sequentialize for the snapshot.
func (srv *Server) shServe(p *sim.Proc) (*Result, error) {
	if p.LID() == 0 {
		p.SetLID(lidMain)
	}
	srv.endAt = p.Now() + sim.Time(srv.cfg.Window)
	srv.shStartLoad(p)
	if srv.cfg.FailAt > 0 {
		srv.startFailInjector()
	}
	if srv.cl != nil {
		srv.clArmFaults(p)
	}
	srv.atStart(p)
	srv.elStart(p)
	if srv.cfg.Parallel {
		srv.pl.K.Parallelize()
	}
	p.Sleep(srv.cfg.Window)
	for srv.completedTotal < srv.admittedTotal {
		srv.drainCond.Wait(p)
	}
	// Snapshot reads cross-shard stripes; fold them single-threaded.
	p.Sequentialize()
	srv.cancelFail()
	return srv.result(), nil
}

// shStartLoad arms the per-tenant arrival processes: open-loop tenants get a
// CallAt chain (one event per arrival, zero proc wakeups), closed-loop
// tenants one host-shard proc per client, exactly like the classic plane.
// RNG streams, seeds and draw order match loadgen.go, so the offered
// timeline of a config is identical on both planes.
func (srv *Server) shStartLoad(p *sim.Proc) {
	for _, t := range srv.tenants {
		t := t
		switch t.spec.Arrival {
		case ClosedLoop:
			n := t.spec.Clients
			if n < 1 {
				n = 1
			}
			for ci := 0; ci < n; ci++ {
				ci := ci
				srv.pl.K.SpawnOn(0, lidClosedLoop*uint64(t.idx+1)+uint64(ci)+1,
					fmt.Sprintf("serve-load-%s-c%d", t.spec.Name, ci), func(p *sim.Proc) {
						srv.shClosedLoopClient(p, t, ci)
					})
			}
		default:
			srv.shArmOpenLoop(p.Now(), t)
		}
	}
}

// shArmOpenLoop schedules the tenant's open-loop arrivals as a CallAt chain
// on the tenant's anchor: each arrival event submits one request and
// schedules the next. The last gap that lands at or past endAt is discarded
// without submitting — the same cutoff openLoop applies after its sleep.
func (srv *Server) shArmOpenLoop(start sim.Time, t *tenant) {
	rate := t.spec.Rate
	if rate <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(tenantSeed(srv.cfg.Seed, t.idx, 0)))
	var schedule func(prev sim.Time)
	schedule = func(prev sim.Time) {
		var gap sim.Duration
		if t.spec.Arrival == FixedRate {
			gap = sim.Duration(1e9 / rate)
		} else {
			gap = sim.Duration(rng.ExpFloat64() / rate * 1e9)
		}
		if gap < 1 {
			gap = 1
		}
		ta := prev + sim.Time(gap)
		t.shAnchor.CallAt(ta, func() {
			if ta >= srv.endAt {
				return
			}
			_, _ = srv.shSubmit(ta, t, t.pickClass(rng), false)
			schedule(ta)
		})
	}
	schedule(start)
}

// shClosedLoopClient mirrors closedLoopClient on the sharded plane: submit,
// wait for the completion signal (fired by the host-shard completion
// handler, so the wake never crosses shards), think, repeat.
func (srv *Server) shClosedLoopClient(p *sim.Proc, t *tenant, ci int) {
	rng := rand.New(rand.NewSource(tenantSeed(srv.cfg.Seed, t.idx, ci+1)))
	think := t.spec.Think
	if think <= 0 {
		think = 100 * sim.Microsecond
	}
	for p.Now() < srv.endAt {
		r, err := srv.shSubmit(p.Now(), t, t.pickClass(rng), true)
		if err == nil {
			r.done.Wait(p)
		}
		p.Sleep(think)
	}
}

// shInSystem counts the tenant's requests inside the sharded plane: held by
// the open batch window, parked in the backlog, or in flight on a lane. The
// admission bound applies to this total, like inSystem on the classic path.
func (t *tenant) shInSystem() int {
	n := t.shInFl
	if t.shOpen != nil {
		n += len(t.shOpen.reqs)
	}
	for _, b := range t.shBacklog {
		n += len(b.reqs)
	}
	return n
}

// shSubmit is the sharded admission decision, run inline in arrival events
// and closed-loop procs (all host shard). Request ids are per-tenant —
// tenant index in the high word, admission sequence in the low — so id
// assignment never depends on how a same-instant tie between two tenants'
// arrivals resolved.
func (srv *Server) shSubmit(now sim.Time, t *tenant, cl *workClass, withSignal bool) (*Request, error) {
	t.offered++
	if limit := srv.effectiveCap(t, now); t.shInSystem() >= limit {
		t.shed++
		return nil, &OverloadError{Tenant: t.spec.Name, Cap: limit}
	}
	t.shSeq++
	r := &Request{
		ID:      uint64(t.idx+1)<<32 | t.shSeq,
		Tenant:  t.spec.Name,
		Class:   cl.spec.Name,
		Arrived: now,
		class:   cl,
	}
	if withSignal {
		r.done = sim.NewSignal(srv.pl.K)
	}
	t.admitted++
	srv.admittedTotal++
	if srv.cfg.KeepRequests {
		t.shKept = append(t.shKept, r) // striped; folded at result()
	}
	srv.shBatchIn(now, t, r)
	return r, nil
}

// shBatchIn runs dynamic batching inline: append to the tenant's open batch
// when the class matches, close it at MaxBatch, close it early on a class
// change (FIFO order must hold), and arm a window timer when a new batch
// opens. The timer is a no-op if the batch already closed — the generation
// counter invalidates it.
func (srv *Server) shBatchIn(now sim.Time, t *tenant, r *Request) {
	if t.shOpen != nil {
		if t.shOpen.class == r.class {
			t.shOpen.reqs = append(t.shOpen.reqs, r)
			if len(t.shOpen.reqs) >= srv.cfg.MaxBatch {
				srv.shCloseBatch(now, t)
			} else {
				t.q.depth.Set(int64(len(t.shOpen.reqs)))
			}
			return
		}
		srv.shCloseBatch(now, t)
	}
	t.shOpen = &batch{class: r.class, reqs: []*Request{r}, t: t}
	if srv.cfg.MaxBatch <= 1 {
		srv.shCloseBatch(now, t)
		return
	}
	t.q.depth.Set(1)
	gen := t.shGen
	t.shAnchor.CallAt(now+sim.Time(srv.cfg.BatchWindow), func() {
		if t.shOpen != nil && t.shGen == gen {
			srv.shCloseBatch(now+sim.Time(srv.cfg.BatchWindow), t)
		}
	})
}

// shCloseBatch seals the open batch and dispatches it.
func (srv *Server) shCloseBatch(now sim.Time, t *tenant) {
	b := t.shOpen
	t.shOpen = nil
	t.shGen++
	t.q.depth.Set(0)
	srv.shDispatch(now, t, b)
}

// shDispatch places one sealed batch: pick a replica under the configured
// policy, round-robin a lane, charge the host-side submit cost (span check
// of the arena write plus the ring push) and send the batch through the
// replica's mailbox port. With no usable replica the batch parks in the
// tenant backlog (re-driven after recovery) — unless the whole pool is
// quarantined, which completes the requests with the typed error.
func (srv *Server) shDispatch(now sim.Time, t *tenant, b *batch) {
	rep := srv.pick(t)
	if rep == nil && srv.cl != nil && srv.clHomeUnusable(t) {
		// The tenant's whole home-node placement set is quarantined: re-hash
		// onto a surviving node before giving up on the batch.
		if srv.clRehome(now, t, "pool-quarantined") {
			rep = srv.pick(t)
		}
	}
	if rep == nil {
		if srv.allQuarantined(t) {
			err := &PoolQuarantinedError{Tenant: t.spec.Name}
			for _, r := range b.reqs {
				srv.shFinish(t, r, now, err)
			}
			return
		}
		t.shBacklog = append(t.shBacklog, b)
		return
	}
	srv.shDispatchTo(now, t, b, rep)
}

// shDispatchTo ships one sealed batch to a chosen replica: fabric check,
// attestation gate, submit-cost pricing, split-brain ledger, mailbox send.
// shDispatch calls it after policy pick; the elastic drain-race injector
// calls it directly to force a batch onto a quiescing replica the policies
// would skip.
func (srv *Server) shDispatchTo(now sim.Time, t *tenant, b *batch, rep *replica) {
	if srv.cl != nil && srv.cl.fab.PartitionedAt(rep.node, now) {
		// The gateway→node link is partitioned: the send fails with the
		// typed fabric error instead of silently vanishing into the cut.
		err := &cluster.NetPartitionedError{Node: rep.node, Tenant: t.spec.Name}
		for _, r := range b.reqs {
			srv.shFinish(t, r, now, err)
		}
		return
	}
	// Attestation gate: a live ticket resumes for one MAC, a cold session
	// pays the (cached, coalesced) quote verification; either way the delay
	// folds into the host-side submit cost. A revoked partition sheds the
	// batch with the typed error instead of dispatching untrusted work.
	attNS, aerr := srv.attestGate(t, rep, now)
	if aerr != nil {
		for _, r := range b.reqs {
			srv.shFinish(t, r, now, aerr)
		}
		return
	}
	b.rep = rep
	b.lane = rep.nextLane % len(rep.lanes)
	rep.nextLane++
	b.submitNS = attNS + srv.pl.Costs.SpanCheck + srv.pl.Costs.RingPush
	if srv.cl != nil {
		// Fabric transfer: serialization + bandwidth (+ slow-link penalty)
		// for the batch payload; the base propagation delay rides the port
		// hop. The no-split-brain ledger also advances here: a dispatch to
		// a node other than the one carrying the tenant's live requests is
		// a split brain.
		b.submitNS += srv.cl.fab.TransferNS(rep.node, b.class.inBytes*len(b.reqs), now)
		if t.liveCnt > 0 && t.liveNode != rep.node {
			srv.cl.splitBrain++
		}
		t.liveNode = rep.node
		t.liveCnt += len(b.reqs)
	}
	rep.outstanding += len(b.reqs)
	rep.inflightB = append(rep.inflightB, b)
	t.shInFl += len(b.reqs)
	rep.lanePort.Send(t.shAnchor, b)
}

// shLaneArrive is the partition-shard mailbox handler: serialize the batch
// on its lane and schedule the completion crossing at the service-done
// instant. The service time is the fused zero-copy path of srpc.CallZC —
// ring poll, arena span check, the copy and exec dispatches, the payload
// DMA and the batch's device work — plus the host-side submit cost carried
// on the batch.
func (srv *Server) shLaneArrive(rep *replica, at sim.Time, b *batch) {
	if b.cancelled {
		return
	}
	c := srv.pl.Costs
	n := len(b.reqs)
	service := b.submitNS +
		c.RingPoll + c.SpanCheck + 2*c.RPCDispatch +
		c.DMA(b.class.inBytes*n) +
		c.KernelDispatch + b.class.itemNS*sim.Duration(n)
	if to := srv.cfg.RequestTimeout; to > 0 && service > to {
		// Lane-deadline model of the classic watchdog: a batch whose service
		// exceeds the timeout occupies its lane for MaxRetries+1 timeout
		// windows plus the doubling backoff gaps, then completes with the
		// typed TimeoutError. The accounting is applied host-side in shDone.
		attempts := srv.cfg.MaxRetries + 1
		total := sim.Duration(0)
		backoff := srv.cfg.RetryBackoff
		for i := 0; i < attempts; i++ {
			total += to
			if i < attempts-1 {
				total += backoff
				backoff *= 2
			}
		}
		b.attempts = attempts
		service = total
	}
	ln := &rep.lanes[b.lane]
	start := at
	if ln.busyUntil > start {
		start = ln.busyUntil
	}
	done := start + sim.Time(service)
	ln.busyUntil = done
	ln.batches++
	ln.reqs += uint64(n)
	ln.busyNS += service
	anchor := srv.sh.anchors[rep.plat().GPUs[rep.partIdx].Part.Shard()]
	compl := srv.sh.compl
	if srv.cl != nil {
		compl = srv.cl.compl[rep.node]
	}
	anchor.CallAt(done, func() {
		if b.cancelled {
			return
		}
		compl.Send(anchor, b)
	})
}

// shDone is the host-shard completion handler: one port event finalizes the
// whole batch inline — no worker wakeup, no drain polling.
func (srv *Server) shDone(at sim.Time, b *batch) {
	if b.cancelled {
		return
	}
	if a := srv.at; a != nil && b.rep != nil {
		// Invariant counter: a completion landing after its partition's
		// revocation would mean untrusted results leaked past the drain.
		// Revocation cancels everything in flight, so this must stay 0 —
		// the chaos harness asserts it.
		if revAt, ok := a.revoked[[2]int{b.rep.node, b.rep.partIdx}]; ok && at >= revAt {
			a.ctrPostRevoke.Inc()
		}
	}
	t := b.t
	b.rep.outstanding -= len(b.reqs)
	b.rep.dropInflight(b)
	t.shInFl -= len(b.reqs)
	if srv.cl != nil {
		t.liveCnt -= len(b.reqs)
	}
	var err error
	if b.attempts > 0 {
		// The lane-deadline model resolved this batch as a watchdog timeout:
		// apply the classic plane's accounting — one timeout per attempt,
		// one retry record per attempt after the first — host-side, where
		// the totals live.
		err = &TimeoutError{Tenant: t.spec.Name, Attempts: b.attempts}
		t.timeouts += uint64(b.attempts)
		srv.ctrTimeouts.Add(uint64(b.attempts))
		if retries := b.attempts - 1; retries > 0 {
			t.retried += uint64(retries * len(b.reqs))
			srv.ctrRetries.Add(uint64(retries))
			for _, r := range b.reqs {
				r.Retries += retries
			}
		}
	}
	for _, r := range b.reqs {
		srv.shFinish(t, r, at, err)
	}
}

// shFinish finalizes one request exactly once on the sharded plane — the
// complete() of this path, taking the completion instant instead of a proc.
func (srv *Server) shFinish(t *tenant, r *Request, at sim.Time, err error) {
	r.completions++
	if r.completions > 1 {
		t.duplicates++
		return
	}
	r.Done = at
	r.Err = err
	if err != nil {
		t.failed++
	} else {
		t.completed++
		t.latHist.Observe(int64(r.Latency()))
	}
	if t.slo != nil {
		t.slo.Record(r.Done, r.Latency(), err != nil)
	}
	srv.completedTotal++
	if r.done != nil {
		r.done.Fire()
	}
	srv.drainCond.Broadcast()
}

// dropInflight removes a batch from the replica's in-flight set.
func (rep *replica) dropInflight(b *batch) {
	for i, ib := range rep.inflightB {
		if ib == b {
			rep.inflightB = append(rep.inflightB[:i], rep.inflightB[i+1:]...)
			return
		}
	}
}

// shReplicaDown is the sharded half of the SPM failure subscription. It runs
// single-threaded by construction: the only failure source the sharded plane
// admits is the FailAt injector, which sequentializes the kernel before
// calling SPM.Fail. Every batch in flight on the replica is cancelled — its
// pending lane and completion events become no-ops — and requeued to the
// front of the tenant backlog as a fresh batch (composition preserved, FIFO
// order kept), then a recovery proc waits out the restart and reconnects.
func (srv *Server) shReplicaDown(rep *replica) {
	t := rep.t
	srv.shCancelInflight(t, rep)
	name := fmt.Sprintf("serve-failover-%s-p%d", t.spec.Name, rep.partIdx)
	if srv.cl != nil {
		name = fmt.Sprintf("serve-failover-%s-n%d-p%d", t.spec.Name, rep.node, rep.partIdx)
	}
	srv.pl.K.Spawn(name, func(p *sim.Proc) { srv.shRecover(p, rep) })
}

// shCancelInflight is the shared replay primitive of failover and planned
// migration: every batch in flight on the replica is cancelled — its pending
// lane and completion events become no-ops — and requeued to the front of
// the tenant backlog as a fresh batch (composition preserved, FIFO order
// kept), with the split-brain ledger and per-request replay accounting
// applied. Lanes reset to idle. Returns the number of requests replayed.
// Runs single-threaded by construction: every caller (the FailAt injector
// path, node crashes, migrations) sequentializes the kernel first.
func (srv *Server) shCancelInflight(t *tenant, rep *replica) int {
	replayed := 0
	if n := len(rep.inflightB); n > 0 {
		requeued := make([]*batch, 0, n)
		for _, b := range rep.inflightB {
			b.cancelled = true
			rep.outstanding -= len(b.reqs)
			t.shInFl -= len(b.reqs)
			if srv.cl != nil {
				t.liveCnt -= len(b.reqs)
			}
			for _, r := range b.reqs {
				r.Replays++
				t.replayed++
			}
			replayed += len(b.reqs)
			requeued = append(requeued, &batch{class: b.class, reqs: b.reqs, t: t})
		}
		rep.inflightB = nil
		t.shBacklog = append(requeued, t.shBacklog...)
	}
	for i := range rep.lanes {
		rep.lanes[i].busyUntil = 0
	}
	return replayed
}

// shRecover is the recovery proc body: wait for the SPM to finish the
// partition's proceed-trap recovery, let the driver re-probe settle, then
// reconnect (real OpenCUDA — rings, arenas and executors in the partition's
// new epoch) and re-drive the tenant's backlog. A quarantine refusal parks
// the replica and, when it was the last usable one, fails the backlog with
// the typed pool error so the drain is never stranded.
func (srv *Server) shRecover(p *sim.Proc, rep *replica) {
	part := rep.plat().GPUs[rep.partIdx].Part
	if err := rep.plat().SPM.AwaitReady(p, part); err != nil {
		srv.shQuarantined(p, rep)
		return
	}
	// Same driver re-probe settle as the classic failover path.
	p.Sleep(500 * sim.Microsecond)
	if err := rep.reconnect(p); err != nil {
		srv.shQuarantined(p, rep)
		return
	}
	rep.down = false
	srv.shFlushBacklog(p.Now(), rep.t)
}

// shQuarantined parks a replica that cannot come back and, if that leaves
// the tenant with no usable pool, completes the backlog with the typed
// error (mirrors the classic place() giving up).
func (srv *Server) shQuarantined(p *sim.Proc, rep *replica) {
	rep.quarantined = true
	t := rep.t
	if srv.cl != nil && rep.node == t.home && srv.clHomeUnusable(t) {
		// The quarantine emptied the tenant's home placement set: re-home to
		// a surviving node, which also re-drives the backlog there.
		if srv.clRehome(p.Now(), t, "pool-quarantined") {
			return
		}
	}
	if !srv.allQuarantined(t) {
		return
	}
	err := &PoolQuarantinedError{Tenant: t.spec.Name}
	backlog := t.shBacklog
	t.shBacklog = nil
	for _, b := range backlog {
		for _, r := range b.reqs {
			srv.shFinish(t, r, p.Now(), err)
		}
	}
}

// shFlushBacklog re-dispatches every parked batch of the tenant, oldest
// first. Batches that still find no usable replica land back in the backlog.
func (srv *Server) shFlushBacklog(now sim.Time, t *tenant) {
	backlog := t.shBacklog
	t.shBacklog = nil
	for _, b := range backlog {
		srv.shDispatch(now, t, b)
	}
}

// failPartition resolves the partition the FailAt injector targets.
func (srv *Server) failPartition() *spm.Partition {
	name := srv.cfg.FailPartition
	if name == "" {
		name = "gpu-part0"
	}
	for _, g := range srv.pl.GPUs {
		if g.Part.Name == name {
			return g.Part
		}
	}
	return nil
}
