// Package tvm is the TVM-style compiler of the reproduction (§VI-C): it
// lowers layer graphs (ResNet18, ResNet50, YoloV3) to VTA instruction
// streams and runs quantized int8 inference on the NPU through any
// accel.NPU implementation, keeping activations device-resident between
// layers. It also models CPU-fallback inference for the Figure 10b CPU
// bars.
package tvm

import (
	"fmt"
	"math/rand"

	"cronus/internal/accel"
	"cronus/internal/dnn"
	"cronus/internal/npu"
	"cronus/internal/sim"
	"cronus/internal/workload/vtabench"
)

// Graph is an inference network: a named sequence of matmul-lowered layers.
type Graph struct {
	Name   string
	Layers []dnn.Layer
}

// FLOPs returns total inference FLOPs (batch 1).
func (g *Graph) FLOPs() float64 {
	var s float64
	for _, l := range g.Layers {
		s += l.FLOPs(1)
	}
	return s
}

// FromModel converts a training model definition into an inference graph.
func FromModel(m *dnn.Model) *Graph {
	return &Graph{Name: m.Name, Layers: m.Layers}
}

// ResNet18 (channels scaled /16, spatial /4 like the training models).
func ResNet18() *Graph {
	var ls []dnn.Layer
	ls = append(ls, dnn.Layer{Name: "stem", Spatial: 64, K: 3 * 49, N: 16})
	idx := 0
	stage := func(blocks, spatial, cin, cout int) {
		for b := 0; b < blocks; b++ {
			in := cout
			if b == 0 {
				in = cin
			}
			ls = append(ls,
				dnn.Layer{Name: fmt.Sprintf("b%d.1", idx), Spatial: spatial, K: in * 9, N: cout},
				dnn.Layer{Name: fmt.Sprintf("b%d.2", idx), Spatial: spatial, K: cout * 9, N: cout},
			)
			idx++
		}
	}
	stage(2, 64, 16, 16)
	stage(2, 16, 16, 32)
	stage(2, 4, 32, 64)
	stage(2, 1, 64, 128)
	ls = append(ls, dnn.Layer{Name: "fc", Spatial: 1, K: 128, N: 10})
	return &Graph{Name: "ResNet18", Layers: ls}
}

// ResNet50 reuses the training definition.
func ResNet50() *Graph { return FromModel(dnn.ResNet50()) }

// YoloV3: Darknet-53 backbone plus detection heads (scaled /16) — the
// layer-heaviest inference graph (~75 convs).
func YoloV3() *Graph {
	var ls []dnn.Layer
	conv := func(name string, spatial, cin, cout int) {
		ls = append(ls, dnn.Layer{Name: name, Spatial: spatial, K: cin * 9, N: cout})
	}
	conv("stem", 64, 3, 8)
	idx := 0
	res := func(n, spatial, ch int) {
		conv(fmt.Sprintf("down%d", idx), spatial, ch/2, ch)
		for i := 0; i < n; i++ {
			conv(fmt.Sprintf("r%d.a", idx), spatial, ch, ch/2)
			conv(fmt.Sprintf("r%d.b", idx), spatial, ch/2, ch)
			idx++
		}
	}
	res(1, 64, 16)
	res(2, 16, 32)
	res(8, 8, 64)
	res(8, 4, 128)
	res(4, 2, 256)
	// Detection heads.
	for h := 0; h < 3; h++ {
		for i := 0; i < 3; i++ {
			conv(fmt.Sprintf("head%d.%d", h, i), 2, 256>>h, 128>>h)
		}
	}
	return &Graph{Name: "YoloV3", Layers: ls}
}

// InferenceGraphs returns the Figure 10b networks in paper order.
func InferenceGraphs() []*Graph {
	return []*Graph{ResNet18(), ResNet50(), YoloV3()}
}

func roundUp(v, m int) int { return (v + m - 1) / m * m }

// Engine is a compiled inference engine bound to one NPU context.
type Engine struct {
	Graph *Graph
	ops   accel.NPU

	progs  [][]npu.Insn
	inAddr uint64 // raw input upload
	arenaA uint64 // ping-pong activation arenas (device resident)
	arenaB uint64
	outLen int // final layer output bytes
	InLen  int // input bytes per inference
}

// Compile quantizes synthetic weights, uploads them, allocates the
// activation arenas and emits one instruction stream per layer.
func Compile(p *sim.Proc, ops accel.NPU, g *Graph) (*Engine, error) {
	rng := rand.New(rand.NewSource(99))
	maxBuf := 0
	for _, l := range g.Layers {
		k := roundUp(l.K, npu.BlockIn)
		n := roundUp(l.N, npu.BlockOut)
		if s := l.Spatial * k; s > maxBuf {
			maxBuf = s
		}
		if s := l.Spatial * n; s > maxBuf {
			maxBuf = s
		}
	}
	e := &Engine{Graph: g, ops: ops}
	var err error
	first := g.Layers[0]
	e.InLen = first.Spatial * roundUp(first.K, npu.BlockIn)
	if e.inAddr, err = ops.MemAlloc(p, uint64(e.InLen)); err != nil {
		return nil, err
	}
	if e.arenaA, err = ops.MemAlloc(p, uint64(maxBuf)); err != nil {
		return nil, err
	}
	if e.arenaB, err = ops.MemAlloc(p, uint64(maxBuf)); err != nil {
		return nil, err
	}
	src, dst := e.arenaA, e.arenaB
	for li, l := range g.Layers {
		k := roundUp(l.K, npu.BlockIn)
		n := roundUp(l.N, npu.BlockOut)
		// Scratchpad capacity limits the weight tile: split N if needed.
		kb := k / npu.BlockIn
		maxNb := npu.WgtBufBlocks / kb
		if maxNb == 0 {
			return nil, fmt.Errorf("tvm: layer %s contraction %d exceeds the weight scratchpad", l.Name, k)
		}
		w := make([]byte, k*n)
		for i := range w {
			w[i] = byte(int8(rng.Intn(7) - 3))
		}
		packed := vtabench.PackWeights(w, k, n)
		wAddr, err := ops.MemAlloc(p, uint64(len(packed)))
		if err != nil {
			return nil, err
		}
		if err := ops.HtoD(p, wAddr, packed); err != nil {
			return nil, err
		}
		in := src
		if li == 0 {
			in = e.inAddr
		}
		var prog []npu.Insn
		nb := n / npu.BlockOut
		for base := 0; base < nb; base += maxNb {
			cnt := maxNb
			if cnt > nb-base {
				cnt = nb - base
			}
			prog = append(prog, tileProgram(in, wAddr+uint64(base*kb*npu.WgtBlockBytes),
				dst+uint64(base*npu.BlockOut), l.Spatial, cnt, kb, n)...)
		}
		prog = append(prog, npu.Insn{Op: npu.OpFinish})
		e.progs = append(e.progs, prog)
		e.outLen = l.Spatial * n
		src, dst = dst, src
	}
	// After the loop, src holds the final output arena.
	e.arenaA, e.arenaB = src, dst
	return e, nil
}

// tileProgram emits the stream computing cnt output blocks of one layer
// tile: for each spatial row, load the input row, GEMM over kb blocks per
// output block, commit and store with the full-row stride.
func tileProgram(inAddr, wAddr, outAddr uint64, rows, cnt, kb, rowStride int) []npu.Insn {
	var insns []npu.Insn
	insns = append(insns, npu.Insn{Op: npu.OpLoad, Mem: npu.MemWgt, DRAMAddr: wAddr, Count: uint32(cnt * kb)})
	for r := 0; r < rows; r++ {
		insns = append(insns, npu.Insn{
			Op: npu.OpLoad, Mem: npu.MemInp,
			DRAMAddr: inAddr + uint64(r*kb*npu.BlockIn), Count: uint32(kb),
		})
		for j := 0; j < cnt; j++ {
			insns = append(insns, npu.Insn{
				Op:     npu.OpGemm,
				InpIdx: 0, InpStride: 1,
				WgtIdx: uint32(j * kb), WgtStride: 1,
				AccIdx: uint32(j), AccStride: 0,
				Count: uint32(kb), Reset: true,
			})
		}
		insns = append(insns,
			npu.Insn{Op: npu.OpAlu, Alu: npu.AluMax, UseImm: true, Imm: 0, Count: uint32(cnt)}, // ReLU
			npu.Insn{Op: npu.OpCommit, Count: uint32(cnt)},
			npu.Insn{Op: npu.OpStore, Mem: npu.MemOut, DRAMAddr: outAddr + uint64(r*rowStride), Count: uint32(cnt)},
		)
	}
	return insns
}

// Infer runs one inference: input upload, per-layer streams, result
// download. It returns the output logits (int8).
func (e *Engine) Infer(p *sim.Proc, input []byte) ([]byte, error) {
	if len(input) > e.InLen {
		input = input[:e.InLen]
	}
	if err := e.ops.HtoD(p, e.inAddr, input); err != nil {
		return nil, err
	}
	for _, prog := range e.progs {
		if err := e.ops.Run(p, prog); err != nil {
			return nil, err
		}
	}
	out, err := e.ops.DtoH(p, e.arenaA, e.outLen)
	if err != nil {
		return nil, err
	}
	return out, e.ops.Sync(p)
}

// CPUInferenceTime models running the same graph on the CPU enclave
// (Figure 10b's CPU bars): quantized inference at a calibrated scalar rate.
const cpuFlopsPerNs = 4.0

// CPUInfer charges the CPU-side inference time for the graph.
func CPUInfer(p *sim.Proc, g *Graph) sim.Duration {
	d := sim.Duration(g.FLOPs() / cpuFlopsPerNs)
	p.Sleep(d)
	return d
}
