package tvm_test

import (
	"bytes"
	"testing"

	"cronus/internal/baseline"
	"cronus/internal/core"
	"cronus/internal/npu"
	"cronus/internal/sim"
	"cronus/internal/tvm"
)

func nativeNPU(p *sim.Proc) *baseline.NativeNPU {
	costs := sim.DefaultCosts()
	dev := npu.New(p.Kernel(), costs, npu.Config{Name: "n", MemBytes: 256 << 20, KeySeed: "t"})
	return baseline.NewNativeNPU(dev, costs)
}

func TestGraphShapes(t *testing.T) {
	for _, g := range tvm.InferenceGraphs() {
		if len(g.Layers) == 0 || g.FLOPs() <= 0 {
			t.Fatalf("%s malformed", g.Name)
		}
	}
	if n := len(tvm.ResNet18().Layers); n != 18 {
		t.Errorf("ResNet18 has %d layers", n)
	}
	if n := len(tvm.YoloV3().Layers); n < 60 {
		t.Errorf("YoloV3 has only %d layers", n)
	}
}

func TestCompileAndInferDeterministic(t *testing.T) {
	k := sim.NewKernel()
	var fail error
	k.Spawn("main", func(p *sim.Proc) {
		defer k.Stop()
		ops := nativeNPU(p)
		e, err := tvm.Compile(p, ops, tvm.ResNet18())
		if err != nil {
			fail = err
			return
		}
		input := make([]byte, e.InLen)
		for i := range input {
			input[i] = byte(int8(i%7 - 3))
		}
		out1, err := e.Infer(p, input)
		if err != nil {
			fail = err
			return
		}
		out2, err := e.Infer(p, input)
		if err != nil {
			fail = err
			return
		}
		if len(out1) == 0 {
			t.Error("empty inference output")
		}
		if !bytes.Equal(out1, out2) {
			t.Error("inference not deterministic for identical input")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatal(fail)
	}
}

func TestAllGraphsInferOnNative(t *testing.T) {
	for _, g := range tvm.InferenceGraphs() {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			k := sim.NewKernel()
			var fail error
			var lat sim.Duration
			k.Spawn("main", func(p *sim.Proc) {
				defer k.Stop()
				ops := nativeNPU(p)
				e, err := tvm.Compile(p, ops, g)
				if err != nil {
					fail = err
					return
				}
				input := make([]byte, e.InLen)
				start := p.Now()
				if _, err := e.Infer(p, input); err != nil {
					fail = err
					return
				}
				lat = sim.Duration(p.Now() - start)
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if fail != nil {
				t.Fatal(fail)
			}
			if lat <= 0 {
				t.Fatal("no latency recorded")
			}
			t.Logf("%s NPU latency %v", g.Name, lat)
		})
	}
}

func TestInferOnCRONUSLowOverhead(t *testing.T) {
	g := tvm.ResNet18()
	var native, cronus sim.Duration
	{
		k := sim.NewKernel()
		var fail error
		k.Spawn("main", func(p *sim.Proc) {
			defer k.Stop()
			ops := nativeNPU(p)
			e, err := tvm.Compile(p, ops, g)
			if err != nil {
				fail = err
				return
			}
			input := make([]byte, e.InLen)
			start := p.Now()
			if _, err := e.Infer(p, input); err != nil {
				fail = err
				return
			}
			native = sim.Duration(p.Now() - start)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if fail != nil {
			t.Fatal(fail)
		}
	}
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "tvm")
		if err != nil {
			return err
		}
		ops, err := s.OpenNPU(p, core.NPUOptions{RingPages: 257, Memory: "128M"})
		if err != nil {
			return err
		}
		defer ops.Close(p)
		e, err := tvm.Compile(p, ops, g)
		if err != nil {
			return err
		}
		input := make([]byte, e.InLen)
		start := p.Now()
		if _, err := e.Infer(p, input); err != nil {
			return err
		}
		cronus = sim.Duration(p.Now() - start)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(cronus) / float64(native)
	t.Logf("ResNet18: native %v, cronus %v (%.3fx)", native, cronus, ratio)
	if ratio > 1.1 {
		t.Errorf("CRONUS inference overhead %.2fx outside Figure 10b band", ratio)
	}
}

func TestCPUInferCharges(t *testing.T) {
	k := sim.NewKernel()
	k.Spawn("main", func(p *sim.Proc) {
		defer k.Stop()
		d := tvm.CPUInfer(p, tvm.ResNet18())
		if d <= 0 {
			t.Error("CPU inference charged no time")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
