// Package slo implements per-tenant service-level objectives over virtual
// time: latency/error objectives, error budgets, and multi-window burn-rate
// signals in the SRE style (a fast window catches sharp regressions, a slow
// window confirms they are sustained, and only both together fire).
//
// Everything is virtual-time and integer-bucketed: identical seeded runs
// produce identical signals, so burn-rate behaviour can be asserted in chaos
// invariants and replayed byte-identically. The serving plane feeds one
// Record per completed request and reads Signal at admission time to tighten
// degraded-mode caps before circuit breakers trip.
package slo

import (
	"fmt"

	"cronus/internal/sim"
)

// Objective is one tenant's service-level objective.
type Objective struct {
	// LatencyTarget: a request is "good" iff it completes without error
	// within this virtual-time latency.
	LatencyTarget sim.Duration
	// ErrorBudget is the tolerated bad fraction over Window (e.g. 0.01
	// allows 1% of requests to miss the target). Burn rate 1.0 means the
	// budget is being consumed exactly at the sustainable pace.
	ErrorBudget float64
	// Window is the budget window and the slow burn-rate window.
	Window sim.Duration
	// FastWindow is the fast burn-rate window; defaults to Window/12.
	FastWindow sim.Duration
	// FastBurn/SlowBurn are the firing thresholds for the two windows;
	// defaults 14.4 and 6 (the classic multi-window page thresholds).
	FastBurn float64
	SlowBurn float64
}

// withDefaults fills unset objective fields.
func (o Objective) withDefaults() Objective {
	if o.ErrorBudget <= 0 {
		o.ErrorBudget = 0.01
	}
	if o.Window <= 0 {
		o.Window = 20 * sim.Millisecond
	}
	if o.FastWindow <= 0 {
		o.FastWindow = o.Window / 12
	}
	if o.FastBurn <= 0 {
		o.FastBurn = 14.4
	}
	if o.SlowBurn <= 0 {
		o.SlowBurn = 6
	}
	return o
}

// trackerBuckets is the ring resolution: the slow window is covered by this
// many buckets, so the fast window (Window/12 by default) still spans
// several buckets and short bursts are not quantized away.
const trackerBuckets = 60

// bucket accumulates good/bad outcomes for one slice of virtual time.
type bucket struct {
	epoch int64 // bucket index since time zero; -1 when empty
	good  uint64
	bad   uint64
}

// Tracker accumulates one tenant's outcomes against an objective. Not safe
// for concurrent use; the serving plane records from kernel context, which
// is single-threaded by construction.
type Tracker struct {
	obj   Objective
	width sim.Duration
	ring  [trackerBuckets]bucket
	// Cumulative totals (whole run, not windowed).
	good uint64
	bad  uint64
}

// NewTracker returns a tracker for the objective (defaults applied).
func NewTracker(o Objective) *Tracker {
	o = o.withDefaults()
	t := &Tracker{obj: o, width: sim.Duration(int64(o.Window) / trackerBuckets)}
	if t.width <= 0 {
		t.width = 1
	}
	for i := range t.ring {
		t.ring[i].epoch = -1
	}
	return t
}

// Objective returns the tracker's objective with defaults applied.
func (t *Tracker) Objective() Objective { return t.obj }

// Good reports whether an outcome meets the objective.
func (t *Tracker) Good(latency sim.Duration, failed bool) bool {
	return !failed && latency <= t.obj.LatencyTarget
}

// Record accumulates one completed request's outcome at virtual time now.
func (t *Tracker) Record(now sim.Time, latency sim.Duration, failed bool) {
	good := t.Good(latency, failed)
	if good {
		t.good++
	} else {
		t.bad++
	}
	epoch := int64(now) / int64(t.width)
	b := &t.ring[epoch%trackerBuckets]
	if b.epoch != epoch {
		*b = bucket{epoch: epoch}
	}
	if good {
		b.good++
	} else {
		b.bad++
	}
}

// burnOver computes the burn rate over the window ending at now: the bad
// fraction in the window divided by the error budget. An empty window burns
// nothing.
func (t *Tracker) burnOver(now sim.Time, w sim.Duration) float64 {
	lastEpoch := int64(now) / int64(t.width)
	n := int64(w) / int64(t.width)
	if n < 1 {
		n = 1
	}
	if n > trackerBuckets {
		n = trackerBuckets
	}
	var good, bad uint64
	for e := lastEpoch - n + 1; e <= lastEpoch; e++ {
		if e < 0 {
			continue
		}
		b := &t.ring[e%trackerBuckets]
		if b.epoch == e {
			good += b.good
			bad += b.bad
		}
	}
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / t.obj.ErrorBudget
}

// Signal is the burn-rate state at one instant.
type Signal struct {
	// Fast/Slow are the burn rates over the fast and slow windows.
	Fast float64
	Slow float64
	// Firing means both windows exceed their thresholds: the budget is
	// burning fast AND the burn is sustained — tighten admission.
	Firing bool
}

// Signal evaluates the multi-window burn-rate signal at virtual time now.
func (t *Tracker) Signal(now sim.Time) Signal {
	s := Signal{
		Fast: t.burnOver(now, t.obj.FastWindow),
		Slow: t.burnOver(now, t.obj.Window),
	}
	s.Firing = s.Fast >= t.obj.FastBurn && s.Slow >= t.obj.SlowBurn
	return s
}

// Totals returns the cumulative good/bad counts for the whole run.
func (t *Tracker) Totals() (good, bad uint64) { return t.good, t.bad }

// BudgetConsumed returns the fraction of the cumulative error budget burned:
// bad / (total * ErrorBudget). 1.0 means the whole budget is gone; values
// above 1 mean the objective was violated.
func (t *Tracker) BudgetConsumed() float64 {
	total := t.good + t.bad
	if total == 0 {
		return 0
	}
	return float64(t.bad) / (float64(total) * t.obj.ErrorBudget)
}

// String renders the objective compactly for reports.
func (o Objective) String() string {
	return fmt.Sprintf("p100<%v budget=%.2g%% window=%v", o.LatencyTarget, o.ErrorBudget*100, o.Window)
}
