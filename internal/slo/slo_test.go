package slo

import (
	"testing"

	"cronus/internal/sim"
)

func obj() Objective {
	return Objective{
		LatencyTarget: 100 * sim.Microsecond,
		ErrorBudget:   0.1,
		Window:        sim.Millisecond,
	}
}

func TestDefaults(t *testing.T) {
	o := Objective{LatencyTarget: sim.Microsecond}.withDefaults()
	if o.ErrorBudget != 0.01 || o.Window != 20*sim.Millisecond {
		t.Fatalf("defaults = %+v", o)
	}
	if o.FastWindow != o.Window/12 || o.FastBurn != 14.4 || o.SlowBurn != 6 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestGood(t *testing.T) {
	tr := NewTracker(obj())
	if !tr.Good(100*sim.Microsecond, false) {
		t.Fatal("at-target latency should be good")
	}
	if tr.Good(101*sim.Microsecond, false) {
		t.Fatal("over-target latency should be bad")
	}
	if tr.Good(sim.Microsecond, true) {
		t.Fatal("failed request should be bad regardless of latency")
	}
}

func TestTotalsAndBudget(t *testing.T) {
	tr := NewTracker(obj())
	now := sim.Time(0)
	for i := 0; i < 18; i++ {
		tr.Record(now, sim.Microsecond, false)
		now += sim.Time(10 * sim.Microsecond)
	}
	tr.Record(now, sim.Millisecond, false) // misses latency target
	tr.Record(now, sim.Microsecond, true)  // errors
	good, bad := tr.Totals()
	if good != 18 || bad != 2 {
		t.Fatalf("totals = %d/%d", good, bad)
	}
	// 2 bad of 20 with a 10% budget: exactly the whole budget.
	if got := tr.BudgetConsumed(); got != 1.0 {
		t.Fatalf("budget consumed = %v", got)
	}
}

func TestSignalFiresOnSustainedBurn(t *testing.T) {
	tr := NewTracker(obj())
	// All-bad traffic with a 10% budget burns at 1/0.1 = 10 in both
	// windows — over the slow threshold (6) but under the fast one
	// (14.4), so the multi-window signal must NOT fire.
	now := sim.Time(0)
	for i := 0; i < 50; i++ {
		tr.Record(now, sim.Millisecond, false)
		now += sim.Time(20 * sim.Microsecond)
	}
	s := tr.Signal(now)
	if s.Fast != 10 || s.Slow != 10 {
		t.Fatalf("burns = %+v", s)
	}
	if s.Firing {
		t.Fatal("burn 10 is under the 14.4 fast threshold; must not fire")
	}
	// Tighten the budget so the same traffic burns at 50x: both windows
	// exceed their thresholds and the signal fires.
	o := obj()
	o.ErrorBudget = 0.02
	tr = NewTracker(o)
	now = 0
	for i := 0; i < 50; i++ {
		tr.Record(now, sim.Millisecond, false)
		now += sim.Time(20 * sim.Microsecond)
	}
	s = tr.Signal(now)
	if !s.Firing || s.Fast != 50 || s.Slow != 50 {
		t.Fatalf("signal = %+v", s)
	}
}

func TestFastWindowRecovers(t *testing.T) {
	o := obj()
	o.ErrorBudget = 0.02
	tr := NewTracker(o)
	// A burst of bad requests early in the window...
	now := sim.Time(0)
	for i := 0; i < 20; i++ {
		tr.Record(now, sim.Millisecond, false)
		now += sim.Time(5 * sim.Microsecond)
	}
	if !tr.Signal(now).Firing {
		t.Fatal("burst should fire")
	}
	// ...followed by healthy traffic: the fast window clears first and
	// the signal stops firing even though the slow window still burns.
	for i := 0; i < 40; i++ {
		tr.Record(now, sim.Microsecond, false)
		now += sim.Time(5 * sim.Microsecond)
	}
	s := tr.Signal(now)
	if s.Fast != 0 {
		t.Fatalf("fast window did not clear: %+v", s)
	}
	if s.Firing {
		t.Fatal("recovered traffic must not fire")
	}
	if s.Slow == 0 {
		t.Fatalf("slow window forgot the burst too early: %+v", s)
	}
}

func TestWindowExpiry(t *testing.T) {
	o := obj()
	o.ErrorBudget = 0.02
	tr := NewTracker(o)
	tr.Record(0, sim.Millisecond, false) // bad at t=0
	// Far outside the window, one good request: the stale bucket's epoch
	// no longer matches, so the window holds only the good outcome.
	later := sim.Time(10 * sim.Millisecond)
	tr.Record(later, sim.Microsecond, false)
	s := tr.Signal(later)
	if s.Fast != 0 || s.Slow != 0 {
		t.Fatalf("stale bad leaked into the window: %+v", s)
	}
	// Cumulative totals still remember everything.
	good, bad := tr.Totals()
	if good != 1 || bad != 1 {
		t.Fatalf("totals = %d/%d", good, bad)
	}
}

func TestEmptyTracker(t *testing.T) {
	tr := NewTracker(obj())
	if s := tr.Signal(500); s.Fast != 0 || s.Slow != 0 || s.Firing {
		t.Fatalf("empty tracker signal = %+v", s)
	}
	if tr.BudgetConsumed() != 0 {
		t.Fatal("empty tracker burned budget")
	}
}

func TestObjectiveString(t *testing.T) {
	got := obj().String()
	want := "p100<100.00us budget=10% window=1000.00us"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
