package attest

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// This file implements the two communication-security building blocks of
// §IV-A/§IV-C: the Diffie-Hellman secret (secret_dhke) established at
// mEnclave creation, and MAC-protected sequenced messages for everything
// that travels through untrusted memory before trusted shared memory exists.

// DHKey is one side of an X25519 exchange.
type DHKey struct {
	priv *ecdh.PrivateKey
	Pub  []byte
}

// NewDHKey derives a deterministic X25519 key from seed material.
func NewDHKey(seed []byte) (*DHKey, error) {
	h := sha256.Sum256(append([]byte("dhke/"), seed...))
	priv, err := ecdh.X25519().NewPrivateKey(h[:])
	if err != nil {
		return nil, fmt.Errorf("attest: dh key: %w", err)
	}
	return &DHKey{priv: priv, Pub: priv.PublicKey().Bytes()}, nil
}

// Shared computes the shared secret with the peer's public key.
func (k *DHKey) Shared(peerPub []byte) ([]byte, error) {
	pub, err := ecdh.X25519().NewPublicKey(peerPub)
	if err != nil {
		return nil, fmt.Errorf("attest: peer dh key: %w", err)
	}
	s, err := k.priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("attest: dh agree: %w", err)
	}
	d := sha256.Sum256(s) // KDF
	return d[:], nil
}

// SealedMsg is a MAC'd, sequence-numbered message for untrusted channels.
type SealedMsg struct {
	Seq     uint64
	Payload []byte
	MAC     []byte
}

// Channel provides ordered, integrity-protected messaging over an untrusted
// transport using secret_dhke. It defeats the §III-B attacks on untrusted
// memory: tampering (MAC), replay and reorder (strictly increasing sequence
// numbers), and cross-channel splicing (per-direction labels).
type Channel struct {
	key     []byte
	label   string
	sendSeq uint64
	recvSeq uint64
}

// NewChannel builds a directional channel. Both sides must construct the
// send direction with the same label the receiver uses for its receive
// direction; conventionally "a->b" and "b->a".
func NewChannel(secret []byte, label string) *Channel {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte("channel/" + label))
	return &Channel{key: mac.Sum(nil), label: label}
}

func (c *Channel) mac(seq uint64, payload []byte) []byte {
	m := hmac.New(sha256.New, c.key)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seq)
	m.Write(b[:])
	m.Write(payload)
	return m.Sum(nil)
}

// Seal wraps a payload for sending.
func (c *Channel) Seal(payload []byte) SealedMsg {
	mChannelSeals.Inc()
	c.sendSeq++
	cp := make([]byte, len(payload))
	copy(cp, payload)
	return SealedMsg{Seq: c.sendSeq, Payload: cp, MAC: c.mac(c.sendSeq, cp)}
}

// ErrTampered reports a MAC failure.
var ErrTampered = errors.New("attest: message MAC invalid (tampered or wrong peer)")

// ErrReplayed reports a sequence violation (replayed, reordered or dropped
// traffic).
var ErrReplayed = errors.New("attest: message sequence violation (replay/reorder/drop)")

// Open verifies and unwraps a received message, enforcing exactly-once
// in-order delivery.
func (c *Channel) Open(m SealedMsg) ([]byte, error) {
	if !hmac.Equal(m.MAC, c.mac(m.Seq, m.Payload)) {
		return nil, ErrTampered
	}
	if m.Seq != c.recvSeq+1 {
		return nil, fmt.Errorf("%w: got seq %d, want %d", ErrReplayed, m.Seq, c.recvSeq+1)
	}
	c.recvSeq = m.Seq
	mChannelOpens.Inc()
	return m.Payload, nil
}

// LocalSealer is the SPM-held local seal key (LSK) used for local
// attestation between mEnclaves on the same machine (§IV-A). Only code
// running in the secure world ever holds a *LocalSealer.
type LocalSealer struct {
	key []byte
}

// NewLocalSealer derives the LSK from platform fuse material.
func NewLocalSealer(seed []byte) *LocalSealer {
	h := sha256.Sum256(append([]byte("lsk/"), seed...))
	return &LocalSealer{key: h[:]}
}

// LocalReport identifies an mEnclave to a co-located challenger.
type LocalReport struct {
	EnclaveID   uint32
	EnclaveHash Measurement
	MOSHash     Measurement
	Nonce       uint64
}

func (r *LocalReport) encode() []byte {
	buf := make([]byte, 4+32+32+8)
	binary.LittleEndian.PutUint32(buf[0:], r.EnclaveID)
	copy(buf[4:], r.EnclaveHash[:])
	copy(buf[36:], r.MOSHash[:])
	binary.LittleEndian.PutUint64(buf[68:], r.Nonce)
	return buf
}

// Seal MACs a local report with the LSK.
func (s *LocalSealer) Seal(r LocalReport) []byte {
	mLocalSeals.Inc()
	return s.seal(r)
}

func (s *LocalSealer) seal(r LocalReport) []byte {
	m := hmac.New(sha256.New, s.key)
	m.Write(r.encode())
	return m.Sum(nil)
}

// Verify checks that a local report was sealed by this machine's SPM.
func (s *LocalSealer) Verify(r LocalReport, mac []byte) bool {
	return hmac.Equal(mac, s.seal(r))
}
