package attest

import "cronus/internal/metrics"

// Attestation-path accounting: how often the crypto plumbing actually runs.
// The channel counters pair naturally with srpc.calls — every lock-step
// mECall costs one seal and one open on each side, which is exactly the
// overhead streaming sRPC amortizes away. The ticket/verify-cache counters
// (attest.tickets.*, attest.verify.*) register per-cache — in whichever
// registry the serving plane hands NewTicketCache/NewVerifyCache — so each
// run's amortization accounting stays isolated and deterministic.
var (
	mReportsVerified = metrics.Default.Counter("attest.reports.verified")
	mChannelSeals    = metrics.Default.Counter("attest.channel.seals")
	mChannelOpens    = metrics.Default.Counter("attest.channel.opens")
	mLocalSeals      = metrics.Default.Counter("attest.local_reports.sealed")
)
