package attest

import (
	"strings"
	"testing"

	"cronus/internal/metrics"
	"cronus/internal/sim"
)

func testCache(capacity int, ttl sim.Duration) (*TicketCache, *metrics.Registry) {
	reg := metrics.NewRegistry()
	reg.Enable()
	return NewTicketCache([]byte("seed"), capacity, ttl, reg), reg
}

func counter(t *testing.T, reg *metrics.Registry, name string) uint64 {
	t.Helper()
	snap := reg.Snapshot()
	return snap.Counters[name]
}

func TestTicketTTLBoundaries(t *testing.T) {
	const ttl = 1000 * sim.Microsecond
	meas := Measure([]byte("mos"))
	cases := []struct {
		name    string
		mintAt  sim.Time
		tryAt   sim.Time
		wantHit bool
	}{
		{"immediately after mint", 0, 1, true},
		{"one tick before expiry", 0, sim.Time(ttl) - 1, true},
		{"exactly at expiry", 0, sim.Time(ttl), false},
		{"after expiry", 0, sim.Time(ttl) + 1, false},
		{"late mint still honors ttl", 5000, 5000 + sim.Time(ttl) - 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, _ := testCache(8, ttl)
			c.Mint("tenant-a", meas, 1, tc.mintAt)
			hit, err := c.Resume("tenant-a", meas, 1, tc.tryAt)
			if err != nil {
				t.Fatalf("Resume: %v", err)
			}
			if hit != tc.wantHit {
				t.Fatalf("Resume at %d after mint at %d: hit=%v, want %v",
					tc.tryAt, tc.mintAt, hit, tc.wantHit)
			}
		})
	}
}

// TestTicketSurvivesSameMeasurementMove pins the property planned live
// migration relies on: tickets are keyed by (tenant, measurement), not by
// partition, so moving a tenant's enclave onto another partition booted from
// the same mOS image resumes on the existing ticket — no cold quote
// verification — while a move onto differently-measured firmware misses.
func TestTicketSurvivesSameMeasurementMove(t *testing.T) {
	c, reg := testCache(8, sim.Second)
	meas := Measure([]byte("mos-image"))
	c.Mint("tenant-a", meas, 1, 0)
	// The migration destination boots the same image: same measurement, and
	// the partition identity is nowhere in the key — the ticket holds.
	hit, err := c.Resume("tenant-a", meas, 1, 100)
	if err != nil || !hit {
		t.Fatalf("post-migration Resume (same measurement) = %v, %v, want hit", hit, err)
	}
	if n := counter(t, reg, "attest.tickets.hits"); n != 1 {
		t.Fatalf("ticket hits = %d, want 1", n)
	}
	// A destination with different firmware is a different session entirely.
	other := Measure([]byte("mos-image-v2"))
	hit, err = c.Resume("tenant-a", other, 1, 100)
	if err != nil || hit {
		t.Fatalf("Resume on a different measurement = %v, %v, want cold miss", hit, err)
	}
	if n := counter(t, reg, "attest.tickets.misses"); n != 1 {
		t.Fatalf("ticket misses = %d, want 1", n)
	}
}

func TestTicketLRUCapacityPressure(t *testing.T) {
	c, reg := testCache(2, sim.Duration(1)*sim.Second)
	m1, m2, m3 := Measure([]byte("a")), Measure([]byte("b")), Measure([]byte("c"))
	c.Mint("t", m1, 1, 0)
	c.Mint("t", m2, 1, 1)
	// Touch m1 so m2 becomes least-recently-used.
	if hit, _ := c.Resume("t", m1, 1, 2); !hit {
		t.Fatal("m1 should resume before eviction")
	}
	c.Mint("t", m3, 1, 3) // evicts m2
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if hit, _ := c.Resume("t", m2, 1, 4); hit {
		t.Fatal("m2 should have been evicted as LRU")
	}
	if hit, _ := c.Resume("t", m1, 1, 5); !hit {
		t.Fatal("m1 should have survived eviction")
	}
	if hit, _ := c.Resume("t", m3, 1, 6); !hit {
		t.Fatal("m3 should be live")
	}
	if got := counter(t, reg, "attest.tickets.evicted"); got != 1 {
		t.Fatalf("evicted = %d, want 1", got)
	}
}

func TestTicketEpochBumpInvalidates(t *testing.T) {
	c, reg := testCache(8, sim.Duration(1)*sim.Second)
	meas := Measure([]byte("mos"))
	c.Mint("t", meas, 3, 0)
	if hit, _ := c.Resume("t", meas, 3, 1); !hit {
		t.Fatal("same-epoch resume should hit")
	}
	// The partition restarted: epoch bumped 3 -> 4. The old ticket is dead.
	if hit, _ := c.Resume("t", meas, 4, 2); hit {
		t.Fatal("epoch-bumped resume must miss")
	}
	if got := counter(t, reg, "attest.tickets.epoch_stale"); got != 1 {
		t.Fatalf("epoch_stale = %d, want 1", got)
	}
	// And the slot is gone entirely, so the next try is a plain miss.
	if hit, _ := c.Resume("t", meas, 4, 3); hit {
		t.Fatal("slot should have been dropped")
	}
	if got := counter(t, reg, "attest.tickets.misses"); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
}

func TestTicketRevocation(t *testing.T) {
	c, reg := testCache(8, sim.Duration(1)*sim.Second)
	good, bad := Measure([]byte("good")), Measure([]byte("bad"))
	c.Mint("t1", bad, 1, 0)
	c.Mint("t2", bad, 1, 0)
	c.Mint("t1", good, 1, 0)
	if n := c.RevokeMeasurement("gpu-part0", bad); n != 2 {
		t.Fatalf("RevokeMeasurement purged %d tickets, want 2", n)
	}
	_, err := c.Resume("t1", bad, 1, 1)
	re, ok := err.(*RevokedError)
	if !ok {
		t.Fatalf("Resume after revocation: err = %v, want *RevokedError", err)
	}
	if re.Partition != "gpu-part0" || re.Tenant != "t1" || re.Meas != bad {
		t.Fatalf("RevokedError fields wrong: %+v", re)
	}
	if hit, err := c.Resume("t1", good, 1, 1); err != nil || !hit {
		t.Fatalf("unrelated measurement affected by revocation: hit=%v err=%v", hit, err)
	}
	if got := counter(t, reg, "attest.tickets.revoked"); got != 2 {
		t.Fatalf("revoked = %d, want 2", got)
	}
}

func TestTicketStorm(t *testing.T) {
	c, reg := testCache(8, sim.Duration(1)*sim.Second)
	for _, blob := range []string{"a", "b", "c"} {
		c.Mint("t", Measure([]byte(blob)), 1, 0)
	}
	if n := c.Storm(10); n != 3 {
		t.Fatalf("Storm flushed %d, want 3", n)
	}
	if c.Len() != 0 {
		t.Fatalf("Len after storm = %d, want 0", c.Len())
	}
	if hit, _ := c.Resume("t", Measure([]byte("a")), 1, 11); hit {
		t.Fatal("post-storm resume must go cold")
	}
	if got := counter(t, reg, "attest.tickets.stormed"); got != 3 {
		t.Fatalf("stormed = %d, want 3", got)
	}
}

func TestTicketSealRejectsTamper(t *testing.T) {
	c, _ := testCache(8, sim.Duration(1)*sim.Second)
	meas := Measure([]byte("mos"))
	tk := c.Mint("t", meas, 1, 0)
	tk.Epoch = 99 // tamper with the cached ticket body
	if hit, _ := c.Resume("t", meas, 99, 1); hit {
		t.Fatal("tampered ticket must not resume")
	}
}

func TestVerifyCacheDelay(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Enable()
	vc := NewVerifyCache(reg)
	meas := Measure([]byte("mos"))
	const cost = 480 * sim.Microsecond

	if d := vc.Delay(meas, 1, 1000, cost); d != cost {
		t.Fatalf("cold delay = %s, want %s", d, cost)
	}
	// In flight: a second session 100us later waits only the remainder.
	at2 := sim.Time(1000) + sim.Time(100*sim.Microsecond)
	if d := vc.Delay(meas, 1, at2, cost); d != cost-100*sim.Microsecond {
		t.Fatalf("coalesced delay = %s, want %s", d, cost-100*sim.Microsecond)
	}
	// Memoized: after completion the verdict is free.
	at3 := sim.Time(1000) + sim.Time(cost) + 1
	if d := vc.Delay(meas, 1, at3, cost); d != 0 {
		t.Fatalf("memoized delay = %s, want 0", d)
	}
	// A different epoch is a fresh verification.
	if d := vc.Delay(meas, 2, at3, cost); d != cost {
		t.Fatalf("epoch-bumped delay = %s, want %s", d, cost)
	}
	snap := reg.Snapshot()
	if snap.Counters["attest.verify.misses"] != 2 ||
		snap.Counters["attest.verify.coalesced"] != 1 ||
		snap.Counters["attest.verify.hits"] != 1 {
		t.Fatalf("counter mix wrong: %v", snap.Counters)
	}
	// Invalidate drops every epoch of the measurement.
	vc.Invalidate(meas)
	if d := vc.Delay(meas, 1, at3+sim.Time(cost)*4, cost); d != cost {
		t.Fatalf("post-invalidate delay = %s, want %s", d, cost)
	}
}

// TestTicketDeterminism pins that two identical operation sequences produce
// byte-identical metrics snapshots — the replay contract the chaos harness
// relies on.
func TestTicketDeterminism(t *testing.T) {
	run := func() string {
		c, reg := testCache(4, 500*sim.Microsecond)
		vc := NewVerifyCache(reg)
		now := sim.Time(0)
		for i := 0; i < 64; i++ {
			meas := Measure([]byte{byte(i % 6)})
			epoch := uint64(1 + i/32)
			if hit, err := c.Resume("tenant", meas, epoch, now); err == nil && !hit {
				vc.Delay(meas, epoch, now, 480*sim.Microsecond)
				c.Mint("tenant", meas, epoch, now)
			}
			if i == 40 {
				c.RevokeMeasurement("gpu-part1", Measure([]byte{2}))
			}
			if i == 50 {
				c.Storm(now)
			}
			now += sim.Time(37 * sim.Microsecond)
		}
		var b strings.Builder
		if err := reg.Snapshot().WriteJSON(&b); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return b.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("snapshots diverged:\n%s\n---\n%s", a, b)
	}
}
