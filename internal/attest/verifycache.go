package attest

import (
	"cronus/internal/metrics"
	"cronus/internal/sim"
)

// This file implements batched + cached quote verification for the serve
// admission path. Verifying a platform quote costs two signature checks;
// at scale many tenants hit the same partition within the same epoch, so
// the verifier (1) memoizes verified (measurement, epoch) pairs — later
// admissions pay nothing — and (2) coalesces identical in-flight
// verifications single-flight style: a session that arrives while the same
// quote is still being verified waits only for the remaining slice of the
// first verification instead of starting its own.

// vkey identifies one verification: a measurement at a partition epoch.
// The epoch is part of the key so an mOS restart (epoch bump) can never
// be satisfied by a stale cached verdict.
type vkey struct {
	meas  Measurement
	epoch uint64
}

// VerifyCache memoizes quote verifications per (measurement, epoch) and
// coalesces identical in-flight ones. It is driven entirely by virtual
// time passed in by the caller, so runs replay byte-identically.
type VerifyCache struct {
	done map[vkey]sim.Time // verification completion instant

	mHits, mMisses, mCoalesced *metrics.Counter
}

// NewVerifyCache builds an empty verification cache. Counters register in
// reg (metrics.Default when nil).
func NewVerifyCache(reg *metrics.Registry) *VerifyCache {
	if reg == nil {
		reg = metrics.Default
	}
	return &VerifyCache{
		done:       make(map[vkey]sim.Time),
		mHits:      reg.Counter("attest.verify.hits"),
		mMisses:    reg.Counter("attest.verify.misses"),
		mCoalesced: reg.Counter("attest.verify.coalesced"),
	}
}

// Delay returns the admission delay a session must pay at virtual instant
// now to have (meas, epoch) verified, where a cold verification costs
// cost. Three cases:
//
//   - memoized (a prior verification already completed): 0, counted a hit;
//   - in flight (a verification of the same key completes at a future
//     instant): the remaining slice of that verification, counted
//     coalesced;
//   - cold: the full cost, counted a miss; the completion instant is
//     recorded so concurrent sessions coalesce onto it.
func (c *VerifyCache) Delay(meas Measurement, epoch uint64, now sim.Time, cost sim.Duration) sim.Duration {
	k := vkey{meas, epoch}
	if at, ok := c.done[k]; ok {
		if at <= now {
			c.mHits.Inc()
			return 0
		}
		c.mCoalesced.Inc()
		return sim.Duration(at - now)
	}
	c.mMisses.Inc()
	c.done[k] = now + sim.Time(cost)
	return cost
}

// Invalidate drops every cached verdict for meas (all epochs) — the
// revocation hook: a measurement caught stale by re-measurement must be
// re-verified from scratch if it ever reappears.
func (c *VerifyCache) Invalidate(meas Measurement) {
	for k := range c.done {
		if k.meas == meas {
			delete(c.done, k)
		}
	}
}
