package attest

import (
	"container/list"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"cronus/internal/metrics"
	"cronus/internal/sim"
)

// This file implements session-ticket resumption: the amortization layer
// that lets dynamic attestation gate every session without dominating the
// admission path. A successful dynamic attestation mints a sealed,
// epoch-bound Ticket keyed by (tenant, partition measurement); later
// sessions present the ticket and skip the quote round-trip entirely,
// paying one MAC check instead of two signature verifications. Tickets
// expire on a deterministic virtual-time TTL, are invalidated by a
// partition epoch bump (every mOS restart changes the epoch), and are
// revoked in bulk when continuous re-measurement detects a stale or
// mismatched measurement.

// RevokedError is the typed shed returned when a session presents (or is
// bound for) a partition whose measurement has been revoked by continuous
// re-measurement. Requests failed with it never completed on the revoked
// partition; the client must re-attest against a healthy partition.
type RevokedError struct {
	Tenant    string      // tenant whose session was shed
	Partition string      // partition whose measurement was revoked
	Meas      Measurement // the revoked measurement
}

// Error renders the shed for logs and typed-error matching.
func (e *RevokedError) Error() string {
	return fmt.Sprintf("attest: tenant %s shed: partition %s measurement %s revoked",
		e.Tenant, e.Partition, e.Meas)
}

// Ticket is a sealed session-resumption credential: proof that this tenant
// completed a full dynamic attestation of a partition carrying this exact
// measurement at this exact epoch. The seal is a MAC under a key only the
// issuing cache holds, so a forged or tampered ticket never resumes.
type Ticket struct {
	Tenant  string      // session owner
	Meas    Measurement // partition measurement pinned at mint time
	Epoch   uint64      // partition epoch pinned at mint time
	Expires sim.Time    // virtual-time expiry (mint time + TTL)
	MAC     []byte      // seal over the four fields above
}

// ticketKey identifies a cache slot: one live ticket per (tenant,
// measurement) pair.
type ticketKey struct {
	tenant string
	meas   Measurement
}

// TicketCache is the server-side ticket store: an LRU-bounded,
// virtual-time-TTL'd map from (tenant, partition measurement) to the live
// sealed ticket. All state transitions land in the metrics registry
// (attest.tickets.* counters), and every operation is deterministic — the
// LRU order is maintained explicitly, never derived from map iteration.
type TicketCache struct {
	key     []byte // seal key, derived from platform seed material
	cap     int
	ttl     sim.Duration
	byKey   map[ticketKey]*list.Element
	lru     *list.List             // front = most recently used
	revoked map[Measurement]string // measurement -> partition name

	mMinted, mHits, mMisses  *metrics.Counter
	mExpired, mEvicted       *metrics.Counter
	mRevoked, mEpochStale    *metrics.Counter
	mStormed, mRevokedLookup *metrics.Counter
	gSize                    *metrics.Gauge
}

// entry is one LRU slot.
type entry struct {
	key ticketKey
	tk  *Ticket
}

// NewTicketCache builds a ticket cache sealing with key material derived
// from seed, bounded to capacity live tickets with the given virtual-time
// TTL. Counters register in reg (metrics.Default when nil).
func NewTicketCache(seed []byte, capacity int, ttl sim.Duration, reg *metrics.Registry) *TicketCache {
	if reg == nil {
		reg = metrics.Default
	}
	h := sha256.Sum256(append([]byte("ticket-seal/"), seed...))
	return &TicketCache{
		key:            h[:],
		cap:            capacity,
		ttl:            ttl,
		byKey:          make(map[ticketKey]*list.Element),
		lru:            list.New(),
		revoked:        make(map[Measurement]string),
		mMinted:        reg.Counter("attest.tickets.minted"),
		mHits:          reg.Counter("attest.tickets.hits"),
		mMisses:        reg.Counter("attest.tickets.misses"),
		mExpired:       reg.Counter("attest.tickets.expired"),
		mEvicted:       reg.Counter("attest.tickets.evicted"),
		mRevoked:       reg.Counter("attest.tickets.revoked"),
		mEpochStale:    reg.Counter("attest.tickets.epoch_stale"),
		mStormed:       reg.Counter("attest.tickets.stormed"),
		mRevokedLookup: reg.Counter("attest.tickets.revoked_lookups"),
		gSize:          reg.Gauge("attest.tickets.size"),
	}
}

// TTL is the cache's virtual-time ticket lifetime.
func (c *TicketCache) TTL() sim.Duration { return c.ttl }

// Cap is the cache's live-ticket bound.
func (c *TicketCache) Cap() int { return c.cap }

// Len is the number of live tickets.
func (c *TicketCache) Len() int { return c.lru.Len() }

// seal MACs the ticket body under the cache key.
func (c *TicketCache) seal(t *Ticket) []byte {
	m := hmac.New(sha256.New, c.key)
	m.Write([]byte(t.Tenant))
	m.Write(t.Meas[:])
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], t.Epoch)
	binary.LittleEndian.PutUint64(b[8:], uint64(t.Expires))
	m.Write(b[:])
	return m.Sum(nil)
}

// Mint seals a fresh ticket for (tenant, meas) at the given epoch, caches
// it (evicting the least-recently-used ticket at capacity) and returns it.
// Call it exactly once per completed cold attestation.
func (c *TicketCache) Mint(tenant string, meas Measurement, epoch uint64, now sim.Time) *Ticket {
	t := &Ticket{Tenant: tenant, Meas: meas, Epoch: epoch, Expires: now + sim.Time(c.ttl)}
	t.MAC = c.seal(t)
	k := ticketKey{tenant, meas}
	if el, ok := c.byKey[k]; ok {
		el.Value.(*entry).tk = t
		c.lru.MoveToFront(el)
	} else {
		if c.cap > 0 && c.lru.Len() >= c.cap {
			// Evict the least-recently-used ticket to stay in bound.
			back := c.lru.Back()
			delete(c.byKey, back.Value.(*entry).key)
			c.lru.Remove(back)
			c.mEvicted.Inc()
		}
		c.byKey[k] = c.lru.PushFront(&entry{key: k, tk: t})
	}
	c.mMinted.Inc()
	c.gSize.Set(int64(c.lru.Len()))
	return t
}

// Resume looks up and validates the live ticket for (tenant, meas) at the
// given current epoch and virtual instant. It returns true when the session
// may skip the quote round-trip: the ticket exists, its seal checks, its
// epoch still matches and its TTL has not lapsed. It returns false (cold
// attestation required) on a miss, an epoch bump, or expiry — each counted
// distinctly — and a *RevokedError when the measurement has been revoked.
func (c *TicketCache) Resume(tenant string, meas Measurement, epoch uint64, now sim.Time) (bool, error) {
	if part, ok := c.revoked[meas]; ok {
		c.mRevokedLookup.Inc()
		return false, &RevokedError{Tenant: tenant, Partition: part, Meas: meas}
	}
	k := ticketKey{tenant, meas}
	el, ok := c.byKey[k]
	if !ok {
		c.mMisses.Inc()
		return false, nil
	}
	t := el.Value.(*entry).tk
	if t.Epoch != epoch {
		c.drop(el)
		c.mEpochStale.Inc()
		return false, nil
	}
	if now >= t.Expires {
		c.drop(el)
		c.mExpired.Inc()
		return false, nil
	}
	if !hmac.Equal(t.MAC, c.seal(t)) {
		c.drop(el)
		c.mMisses.Inc()
		return false, nil
	}
	c.lru.MoveToFront(el)
	c.mHits.Inc()
	return true, nil
}

// drop removes one slot and updates the size gauge.
func (c *TicketCache) drop(el *list.Element) {
	delete(c.byKey, el.Value.(*entry).key)
	c.lru.Remove(el)
	c.gSize.Set(int64(c.lru.Len()))
}

// RevokeMeasurement purges every ticket minted against meas and marks the
// measurement revoked: later Resume calls for it return *RevokedError until
// the partition restarts under a fresh (re-attested) measurement/epoch. It
// returns the number of tickets revoked. partition names the victim for the
// typed error.
func (c *TicketCache) RevokeMeasurement(partition string, meas Measurement) int {
	c.revoked[meas] = partition
	n := 0
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*entry).key.meas == meas {
			c.drop(el)
			n++
		}
		el = next
	}
	c.mRevoked.Add(uint64(n))
	return n
}

// Storm force-expires every live ticket at the given instant — the
// attest-storm chaos fault: a mass expiry that sends every session back
// through cold attestation at once. Returns the number of tickets flushed.
func (c *TicketCache) Storm(now sim.Time) int {
	n := c.lru.Len()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		c.drop(el)
		el = next
	}
	c.mStormed.Add(uint64(n))
	c.mExpired.Add(uint64(n))
	return n
}
