package attest

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestKeyFromSeedDeterministic(t *testing.T) {
	a := KeyFromSeed([]byte("seed"))
	b := KeyFromSeed([]byte("seed"))
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different keys")
	}
	c := KeyFromSeed([]byte("other"))
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced the same key")
	}
	msg := []byte("measurement")
	if !Verify(a.Public().(PublicKey), msg, Sign(a, msg)) {
		t.Fatal("self signature failed")
	}
}

func TestReportEncodeCanonical(t *testing.T) {
	r1 := Report{
		MOSHashes:     map[string]Measurement{"p1": Measure([]byte("a")), "p2": Measure([]byte("b"))},
		EnclaveHashes: map[string]Measurement{"e1": Measure([]byte("c"))},
		DTHash:        Measure([]byte("dt")),
		DeviceKeys:    map[string]PublicKey{"gpu0": KeyFromSeed([]byte("g")).Public().(PublicKey)},
		Nonce:         7,
	}
	// Same content, maps built in a different order.
	r2 := Report{
		MOSHashes:     map[string]Measurement{"p2": Measure([]byte("b")), "p1": Measure([]byte("a"))},
		EnclaveHashes: map[string]Measurement{"e1": Measure([]byte("c"))},
		DTHash:        Measure([]byte("dt")),
		DeviceKeys:    map[string]PublicKey{"gpu0": KeyFromSeed([]byte("g")).Public().(PublicKey)},
		Nonce:         7,
	}
	if !bytes.Equal(r1.Encode(), r2.Encode()) {
		t.Fatal("encoding not canonical")
	}
	r2.Nonce = 8
	if bytes.Equal(r1.Encode(), r2.Encode()) {
		t.Fatal("nonce not covered by encoding")
	}
}

// buildChain assembles a full valid attestation chain and returns the
// pieces so tests can corrupt individual links.
func buildChain(t *testing.T, nonce uint64) (*Verifier, *SignedReport, Expected) {
	t.Helper()
	svc := NewService([]byte("svc"))
	rotPriv := KeyFromSeed([]byte("platform-rot"))
	rotPub := rotPriv.Public().(PublicKey)
	svc.RegisterPlatform(rotPub)

	// Secure monitor derives AtK and proves it with the RoT.
	atkPriv := KeyFromSeed([]byte("atk"))
	atkPub := atkPriv.Public().(PublicKey)
	atkCert, err := svc.EndorseAtK(rotPub, atkPub, Sign(rotPriv, atkPub))
	if err != nil {
		t.Fatal(err)
	}

	// GPU vendor endorses the device key.
	ca := NewVendorCA("nvidia")
	devPriv := KeyFromSeed([]byte("gpu0-fuse"))
	devPub := devPriv.Public().(PublicKey)

	report := Report{
		MOSHashes:     map[string]Measurement{"gpu-part": Measure([]byte("gpu mOS image"))},
		EnclaveHashes: map[string]Measurement{"cuda-e": Measure([]byte("cuda runtime+cubin"))},
		DTHash:        Measure([]byte("device tree")),
		DeviceKeys:    map[string]PublicKey{"gpu0": devPub},
		Nonce:         nonce,
	}
	sr := &SignedReport{
		Report:        report,
		Sig:           Sign(atkPriv, report.Encode()),
		AtK:           atkPub,
		AtKCert:       atkCert,
		DeviceCerts:   map[string][]byte{"gpu0": ca.EndorseDevice(devPub)},
		DeviceVendors: map[string]string{"gpu0": "nvidia"},
	}
	v := NewVerifier(svc.Identity)
	v.TrustVendor("nvidia", ca.Identity)
	want := Expected{
		MOSHashes:     map[string]Measurement{"gpu-part": Measure([]byte("gpu mOS image"))},
		EnclaveHashes: map[string]Measurement{"cuda-e": Measure([]byte("cuda runtime+cubin"))},
		Nonce:         nonce,
	}
	return v, sr, want
}

func TestVerifyReportFullChain(t *testing.T) {
	v, sr, want := buildChain(t, 42)
	if err := v.VerifyReport(sr, want); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyReportRejectsTamperedMOS(t *testing.T) {
	v, sr, want := buildChain(t, 1)
	// Substituted mOS: report hash differs from the pinned one.
	sr.Report.MOSHashes["gpu-part"] = Measure([]byte("malicious mOS"))
	sr.Sig = nil // attacker cannot re-sign
	if err := v.VerifyReport(sr, want); err == nil {
		t.Fatal("tampered report accepted")
	}
}

func TestVerifyReportRejectsStaleNonce(t *testing.T) {
	v, sr, want := buildChain(t, 1)
	want.Nonce = 2 // client issued a fresh challenge; replayed old report
	if err := v.VerifyReport(sr, want); err == nil {
		t.Fatal("replayed report accepted")
	}
}

func TestVerifyReportRejectsFabricatedDevice(t *testing.T) {
	v, sr, want := buildChain(t, 1)
	// Fabricated accelerator: key not endorsed by any trusted vendor.
	fake := KeyFromSeed([]byte("fake-gpu")).Public().(PublicKey)
	sr.Report.DeviceKeys["gpu0"] = fake
	// Attacker re-signs with... nothing; but even if the report were
	// re-signed, the device cert would not verify. Simulate the stronger
	// attacker who controls AtK-signed content by rebuilding the sig with
	// a bogus AtK — the service endorsement then fails instead.
	if err := v.VerifyReport(sr, want); err == nil {
		t.Fatal("fabricated device accepted")
	}
}

func TestVerifyReportRejectsUntrustedVendor(t *testing.T) {
	v, sr, want := buildChain(t, 1)
	sr.DeviceVendors["gpu0"] = "knockoff-inc"
	if err := v.VerifyReport(sr, want); err == nil {
		t.Fatal("untrusted vendor accepted")
	}
}

func TestServiceRejectsUnknownRoT(t *testing.T) {
	svc := NewService([]byte("svc"))
	rogue := KeyFromSeed([]byte("rogue-rot"))
	atk := KeyFromSeed([]byte("atk")).Public().(PublicKey)
	_, err := svc.EndorseAtK(rogue.Public().(PublicKey), atk, Sign(rogue, atk))
	if err == nil {
		t.Fatal("service endorsed AtK from unregistered platform")
	}
}

func TestServiceRejectsUnprovenAtK(t *testing.T) {
	svc := NewService([]byte("svc"))
	rot := KeyFromSeed([]byte("rot"))
	svc.RegisterPlatform(rot.Public().(PublicKey))
	atk := KeyFromSeed([]byte("atk")).Public().(PublicKey)
	if _, err := svc.EndorseAtK(rot.Public().(PublicKey), atk, []byte("garbage")); err == nil {
		t.Fatal("service endorsed AtK without RoT proof")
	}
}

func TestDHKeyAgreement(t *testing.T) {
	a, err := NewDHKey([]byte("enclave-a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDHKey([]byte("enclave-b"))
	if err != nil {
		t.Fatal(err)
	}
	sab, err := a.Shared(b.Pub)
	if err != nil {
		t.Fatal(err)
	}
	sba, err := b.Shared(a.Pub)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sab, sba) {
		t.Fatal("shared secrets differ")
	}
	c, _ := NewDHKey([]byte("eve"))
	sec, _ := c.Shared(a.Pub)
	if bytes.Equal(sec, sab) {
		t.Fatal("third party derived the same secret")
	}
}

func TestChannelSealOpenRoundTrip(t *testing.T) {
	secret := []byte("secret_dhke-material-32-bytes!!!")
	tx := NewChannel(secret, "a->b")
	rx := NewChannel(secret, "a->b")
	for i := 0; i < 5; i++ {
		m := tx.Seal([]byte{byte(i)})
		got, err := rx.Open(m)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("payload %d mangled", i)
		}
	}
}

func TestChannelDetectsTampering(t *testing.T) {
	secret := []byte("k")
	tx := NewChannel(secret, "a->b")
	rx := NewChannel(secret, "a->b")
	m := tx.Seal([]byte("params"))
	m.Payload = []byte("PARAMS") // attacker flips the RPC arguments
	if _, err := rx.Open(m); !errors.Is(err, ErrTampered) {
		t.Fatalf("err = %v, want ErrTampered", err)
	}
}

func TestChannelDetectsReplayReorderDrop(t *testing.T) {
	secret := []byte("k")
	tx := NewChannel(secret, "a->b")
	rx := NewChannel(secret, "a->b")
	m1 := tx.Seal([]byte("1"))
	m2 := tx.Seal([]byte("2"))
	m3 := tx.Seal([]byte("3"))
	if _, err := rx.Open(m1); err != nil {
		t.Fatal(err)
	}
	// Replay.
	if _, err := rx.Open(m1); !errors.Is(err, ErrReplayed) {
		t.Fatalf("replay: err = %v", err)
	}
	// Reorder (m3 before m2) — also covers drop of m2.
	if _, err := rx.Open(m3); !errors.Is(err, ErrReplayed) {
		t.Fatalf("reorder: err = %v", err)
	}
	if _, err := rx.Open(m2); err != nil {
		t.Fatal(err)
	}
}

func TestChannelDirectionLabelsIndependent(t *testing.T) {
	secret := []byte("k")
	ab := NewChannel(secret, "a->b")
	ba := NewChannel(secret, "b->a")
	m := ab.Seal([]byte("hello"))
	// Splicing a message from the a->b direction into b->a must fail.
	if _, err := ba.Open(m); !errors.Is(err, ErrTampered) {
		t.Fatalf("cross-direction splice: err = %v", err)
	}
}

func TestLocalSealer(t *testing.T) {
	lsk := NewLocalSealer([]byte("platform-fuse"))
	r := LocalReport{EnclaveID: 0x01000002, EnclaveHash: Measure([]byte("e")), MOSHash: Measure([]byte("m")), Nonce: 9}
	mac := lsk.Seal(r)
	if !lsk.Verify(r, mac) {
		t.Fatal("genuine local report rejected")
	}
	r2 := r
	r2.EnclaveID = 0x02000001 // different partition claims the identity
	if lsk.Verify(r2, mac) {
		t.Fatal("forged local report accepted")
	}
	other := NewLocalSealer([]byte("other-machine"))
	if other.Verify(r, mac) {
		t.Fatal("report from another machine accepted (co-location check broken)")
	}
}

// Property: Channel round-trips arbitrary payloads and never accepts a
// bit-flipped MAC.
func TestChannelQuickProperty(t *testing.T) {
	f := func(payload []byte, flip uint8) bool {
		secret := []byte("property-secret")
		tx := NewChannel(secret, "p")
		rx := NewChannel(secret, "p")
		m := tx.Seal(payload)
		good, err := rx.Open(m)
		if err != nil || !bytes.Equal(good, payload) {
			return false
		}
		m2 := tx.Seal(payload)
		m2.MAC[int(flip)%len(m2.MAC)] ^= 0x80
		_, err = rx.Open(m2)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
