// Package attest implements CRONUS's attestation machinery (§IV-A), from
// the one-shot primitives up to the amortization layer that makes
// attestation cheap enough to gate every session at serving scale.
//
// # Primitives
//
// The platform root of trust signs an attestation key (AtK) that a trusted
// attestation Service endorses; the SPM uses the AtK to sign dynamic
// platform Reports covering mOS images, mEnclave measurements, the device
// tree and accelerator keys (each endorsed by its VendorCA). A client-side
// Verifier checks the complete chain against the Expected measurements it
// pinned from the application manifest. Local attestation between
// co-located mEnclaves goes through the SPM-held LocalSealer, and
// Channel/DHKey provide MAC-protected sequenced messaging plus the
// Diffie-Hellman ownership secret for everything crossing untrusted memory.
//
// # Attestation at scale
//
// Three pieces amortize the per-session cost (DESIGN.md §15):
//
//   - TicketCache: a successful dynamic attestation mints a sealed,
//     epoch-bound Ticket keyed by (tenant, partition measurement); later
//     sessions Resume on the ticket and skip the quote round-trip, with
//     deterministic virtual-time TTL expiry and an LRU bound.
//   - VerifyCache: quote verifications are memoized per (measurement,
//     epoch) and identical in-flight verifications coalesce single-flight
//     style, so admission cost is shared across tenants hitting the same
//     partition.
//   - Revocation: when continuous re-measurement catches a stale or
//     flipped measurement, RevokeMeasurement purges the partition's
//     tickets and later lookups shed with the typed *RevokedError.
//
// All asymmetric cryptography is Ed25519; key material is derived
// deterministically from hardware fuse values, and the caches are driven
// entirely by caller-supplied virtual time, so simulations are
// reproducible byte-for-byte.
package attest

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// PublicKey is an attestation-capable public key.
type PublicKey = ed25519.PublicKey

// PrivateKey is the corresponding private key.
type PrivateKey = ed25519.PrivateKey

// Measurement is a SHA-256 digest of code or configuration.
type Measurement [32]byte

// Measure hashes a blob into a Measurement.
func Measure(data []byte) Measurement { return sha256.Sum256(data) }

// String renders the first bytes of the digest for logs.
func (m Measurement) String() string { return fmt.Sprintf("%x", m[:8]) }

// KeyFromSeed derives a deterministic Ed25519 private key from arbitrary
// seed material (a fuse value).
func KeyFromSeed(seed []byte) PrivateKey {
	h := sha256.Sum256(seed)
	return ed25519.NewKeyFromSeed(h[:])
}

// Sign signs msg.
func Sign(priv PrivateKey, msg []byte) []byte { return ed25519.Sign(priv, msg) }

// Verify checks sig over msg.
func Verify(pub PublicKey, msg, sig []byte) bool { return ed25519.Verify(pub, msg, sig) }

// Report is the platform attestation report (§IV-A):
// ⟨hash(mEnclave), hash(mOS), DT, PubK_acc⟩ plus a client nonce.
type Report struct {
	MOSHashes     map[string]Measurement // partition name -> mOS image hash
	EnclaveHashes map[string]Measurement // enclave id -> runtime+image hash
	DTHash        Measurement            // device tree digest
	DeviceKeys    map[string]PublicKey   // device name -> PubK_acc
	Nonce         uint64                 // client freshness challenge
}

// Encode produces the canonical byte encoding that is signed.
func (r *Report) Encode() []byte {
	var buf []byte
	appendStr := func(s string) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		buf = append(buf, n[:]...)
		buf = append(buf, s...)
	}
	appendMeasurements := func(m map[string]Measurement) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(keys)))
		buf = append(buf, n[:]...)
		for _, k := range keys {
			appendStr(k)
			h := m[k]
			buf = append(buf, h[:]...)
		}
	}
	appendMeasurements(r.MOSHashes)
	appendMeasurements(r.EnclaveHashes)
	buf = append(buf, r.DTHash[:]...)
	keys := make([]string, 0, len(r.DeviceKeys))
	for k := range r.DeviceKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(keys)))
	buf = append(buf, n[:]...)
	for _, k := range keys {
		appendStr(k)
		buf = append(buf, r.DeviceKeys[k]...)
	}
	var nn [8]byte
	binary.LittleEndian.PutUint64(nn[:], r.Nonce)
	buf = append(buf, nn[:]...)
	return buf
}

// SignedReport bundles a report with its attestation-key signature and the
// credentials a client needs to verify the chain.
type SignedReport struct {
	Report Report
	Sig    []byte    // AtK signature over Report.Encode()
	AtK    PublicKey // attestation key
	// AtKCert is the attestation service's endorsement of AtK.
	AtKCert []byte
	// DeviceCerts maps device name -> vendor CA endorsement of its key.
	DeviceCerts map[string][]byte
	// DeviceVendors maps device name -> vendor whose CA endorsed it.
	DeviceVendors map[string]string
}

// Service is the (trusted third party) attestation service: it knows which
// platform roots of trust are genuine and endorses attestation keys derived
// from them, mirroring the paper's "AtK is endorsed by the attestation
// service".
type Service struct {
	priv     PrivateKey
	genuine  map[string]bool // hex(rot pub) -> genuine
	Identity PublicKey
}

// NewService creates an attestation service with a deterministic identity.
func NewService(seed []byte) *Service {
	priv := KeyFromSeed(append([]byte("attestation-service/"), seed...))
	return &Service{
		priv:     priv,
		genuine:  make(map[string]bool),
		Identity: priv.Public().(PublicKey),
	}
}

// RegisterPlatform marks a platform root-of-trust public key as genuine.
func (s *Service) RegisterPlatform(rot PublicKey) {
	s.genuine[string(rot)] = true
}

// EndorseAtK verifies that atk was signed by a genuine platform RoT and
// returns the service's endorsement of atk.
func (s *Service) EndorseAtK(rot PublicKey, atk PublicKey, rotSig []byte) ([]byte, error) {
	if !s.genuine[string(rot)] {
		return nil, errors.New("attest: unknown platform root of trust")
	}
	if !Verify(rot, atk, rotSig) {
		return nil, errors.New("attest: AtK not proven by platform root of trust")
	}
	return Sign(s.priv, atk), nil
}

// VendorCA is an accelerator vendor's certificate authority endorsing device
// keys (hardware authenticity, §IV-A).
type VendorCA struct {
	Name     string
	priv     PrivateKey
	Identity PublicKey
}

// NewVendorCA creates a deterministic vendor CA.
func NewVendorCA(name string) *VendorCA {
	priv := KeyFromSeed([]byte("vendor-ca/" + name))
	return &VendorCA{Name: name, priv: priv, Identity: priv.Public().(PublicKey)}
}

// EndorseDevice signs a device public key.
func (ca *VendorCA) EndorseDevice(devPub PublicKey) []byte {
	return Sign(ca.priv, devPub)
}

// Verifier is the client side: it trusts the attestation service and a set
// of vendor CAs, and checks full report chains.
type Verifier struct {
	Service   PublicKey
	VendorCAs map[string]PublicKey // vendor name -> CA identity
}

// NewVerifier creates a verifier trusting the given anchors.
func NewVerifier(service PublicKey) *Verifier {
	return &Verifier{Service: service, VendorCAs: make(map[string]PublicKey)}
}

// TrustVendor adds a vendor CA trust anchor.
func (v *Verifier) TrustVendor(name string, ca PublicKey) { v.VendorCAs[name] = ca }

// Expected pins the measurements a client requires, from the application
// manifest it reviewed.
type Expected struct {
	MOSHashes     map[string]Measurement
	EnclaveHashes map[string]Measurement
	DTHash        *Measurement // nil = accept any validated tree
	Nonce         uint64
}

// VerifyReport checks the complete chain: AtK endorsed by the service, the
// report signed by AtK, nonce freshness, pinned measurements present and
// matching, and every device key endorsed by a trusted vendor CA.
func (v *Verifier) VerifyReport(sr *SignedReport, want Expected) error {
	if !Verify(v.Service, sr.AtK, sr.AtKCert) {
		return errors.New("attest: AtK not endorsed by attestation service")
	}
	if !Verify(sr.AtK, sr.Report.Encode(), sr.Sig) {
		return errors.New("attest: report signature invalid")
	}
	if sr.Report.Nonce != want.Nonce {
		return fmt.Errorf("attest: stale report (nonce %d, want %d)", sr.Report.Nonce, want.Nonce)
	}
	for name, h := range want.MOSHashes {
		got, ok := sr.Report.MOSHashes[name]
		if !ok {
			return fmt.Errorf("attest: report missing mOS %q", name)
		}
		if got != h {
			return fmt.Errorf("attest: mOS %q measurement mismatch", name)
		}
	}
	for name, h := range want.EnclaveHashes {
		got, ok := sr.Report.EnclaveHashes[name]
		if !ok {
			return fmt.Errorf("attest: report missing enclave %q", name)
		}
		if got != h {
			return fmt.Errorf("attest: enclave %q measurement mismatch", name)
		}
	}
	if want.DTHash != nil && sr.Report.DTHash != *want.DTHash {
		return errors.New("attest: device tree measurement mismatch")
	}
	for dev, pub := range sr.Report.DeviceKeys {
		vendor := sr.DeviceVendors[dev]
		ca, ok := v.VendorCAs[vendor]
		if !ok {
			return fmt.Errorf("attest: device %q from untrusted vendor %q", dev, vendor)
		}
		cert := sr.DeviceCerts[dev]
		if !Verify(ca, pub, cert) {
			return fmt.Errorf("attest: device %q key not endorsed by vendor %q", dev, vendor)
		}
	}
	mReportsVerified.Inc()
	return nil
}
