package normal_test

import (
	"strings"
	"testing"

	"cronus/internal/attest"
	"cronus/internal/enclave"
	"cronus/internal/gpu"
	"cronus/internal/mos/driver"
	"cronus/internal/normal"
	"cronus/internal/sim"
	"cronus/internal/testrig"
)

func gpuManifest() (enclave.Manifest, map[string][]byte) {
	files := map[string][]byte{
		"cuda.edl":  driver.CUDAEDL(),
		"app.cubin": gpu.BuildCubin("vec_add"),
	}
	return enclave.NewManifest("gpu", "cuda.edl", "app.cubin", files, enclave.Resources{Memory: "16M"}), files
}

func npuManifest() (enclave.Manifest, map[string][]byte) {
	files := map[string][]byte{"npu.edl": driver.NPUEDL()}
	return enclave.NewManifest("npu", "npu.edl", "", files, enclave.Resources{Memory: "16M"}), files
}

func dispatcher(rig *testrig.Rig) *normal.Dispatcher {
	d := normal.NewDispatcher(rig.SPM)
	d.RegisterMOS(rig.CPUOS)
	d.RegisterMOS(rig.GPUOS)
	d.RegisterMOS(rig.NPUOS)
	return d
}

func TestRoutingByDeviceType(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		d := dispatcher(rig)
		dh, _ := attest.NewDHKey([]byte("r"))
		gman, gfiles := gpuManifest()
		res, err := d.CreateEnclave(p, "g", gman, gfiles, dh.Pub)
		if err != nil {
			return err
		}
		if uint32(res.EID>>24) != uint32(rig.GPUPart.ID) {
			t.Errorf("gpu manifest routed to partition %d", res.EID>>24)
		}
		nman, nfiles := npuManifest()
		res2, err := d.CreateEnclave(p, "n", nman, nfiles, dh.Pub)
		if err != nil {
			return err
		}
		if uint32(res2.EID>>24) != uint32(rig.NPUPart.ID) {
			t.Errorf("npu manifest routed to partition %d", res2.EID>>24)
		}
		// The dispatcher registered sRPC endpoints for both.
		if d.Server(res.EID) == nil || d.Server(res2.EID) == nil {
			t.Error("missing sRPC endpoints")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRoutingUnknownDeviceType(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		d := dispatcher(rig)
		files := map[string][]byte{"f.edl": enclave.BuildEDL()}
		man := enclave.NewManifest("fpga", "f.edl", "", files, enclave.Resources{})
		dh, _ := attest.NewDHKey([]byte("r"))
		_, err := d.CreateEnclave(p, "f", man, files, dh.Pub)
		if err == nil || !strings.Contains(err.Error(), "no partition hosts") {
			t.Errorf("err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRouteOverrideIsMaliciousButHarmless(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		d := dispatcher(rig)
		// The malicious OS redirects GPU requests to the NPU partition;
		// the mOS's device-type check stops it (§III-B).
		d.RouteOverride = func(string) string { return "npu-part" }
		dh, _ := attest.NewDHKey([]byte("r"))
		gman, gfiles := gpuManifest()
		_, err := d.CreateEnclave(p, "g", gman, gfiles, dh.Pub)
		if err == nil || !strings.Contains(err.Error(), "wrong partition") {
			t.Errorf("err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateEnclaveAtUnknownPartition(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		d := dispatcher(rig)
		dh, _ := attest.NewDHKey([]byte("r"))
		gman, gfiles := gpuManifest()
		if _, err := d.CreateEnclaveAt(p, "mars-part", "g", gman, gfiles, dh.Pub); err == nil {
			t.Error("unknown partition accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinAcrossSameTypePartitions(t *testing.T) {
	opts := testrig.DefaultOptions()
	opts.ExtraGPUs = 1
	err := testrig.Run(opts, func(rig *testrig.Rig, extras []testrig.ExtraGPU, p *sim.Proc) error {
		d := dispatcher(rig)
		d.RegisterMOS(extras[0].OS)
		dh, _ := attest.NewDHKey([]byte("r"))
		gman, gfiles := gpuManifest()
		seen := map[uint32]bool{}
		for i := 0; i < 4; i++ {
			res, err := d.CreateEnclave(p, "g", gman, gfiles, dh.Pub)
			if err != nil {
				return err
			}
			seen[res.EID>>24] = true
		}
		if len(seen) != 2 {
			t.Errorf("round robin used %d partitions, want 2", len(seen))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvokeSealedToUnknownEID(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		d := dispatcher(rig)
		_, err := d.InvokeSealed(p, 0xFF000001, attest.SealedMsg{})
		if err == nil {
			t.Error("invoke to unknown partition accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuildReportAggregatesAllPartitions(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		d := dispatcher(rig)
		dh, _ := attest.NewDHKey([]byte("r"))
		gman, gfiles := gpuManifest()
		if _, err := d.CreateEnclave(p, "report-e", gman, gfiles, dh.Pub); err != nil {
			return err
		}
		sr := d.BuildReport(p, 9)
		if len(sr.Report.MOSHashes) != 3 {
			t.Errorf("report covers %d mOSes, want 3", len(sr.Report.MOSHashes))
		}
		if _, ok := sr.Report.EnclaveHashes["report-e"]; !ok {
			t.Error("enclave missing from report")
		}
		dt := rig.SPM.DTHash()
		if err := rig.Verifier.VerifyReport(sr, attest.Expected{DTHash: &dt, Nonce: 9}); err != nil {
			t.Errorf("verification failed: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
