package normal

import "cronus/internal/metrics"

// World-switch accounting, counted where the switches are charged to virtual
// time: every `2 * WorldSwitch` sleep is a normal→secure→normal round trip,
// and an executor thread pays a single entry switch when it parks inside the
// callee's partition. The name carries the spm prefix because S-EL2 owns the
// world boundary; the normal world merely pays the toll.
var mWorldSwitches = metrics.Default.Counter("spm.world_switches")
