// Package normal models CRONUS's untrusted normal world (§III-A): the rich
// OS and the Enclave Dispatcher that routes enclave requests to partitions,
// relays establishment messages, and creates executor threads. Everything in
// this package is untrusted: the dispatcher exposes attack knobs that let
// tests play the malicious-OS role from the threat model (§III-B) —
// misrouting, tampering, replaying, dropping — and the secure world must
// stay safe regardless.
package normal

import (
	"fmt"

	"cronus/internal/attest"
	"cronus/internal/enclave"
	"cronus/internal/mos"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/srpc"
)

// Dispatcher is the normal world's Enclave Dispatcher. It records each
// partition's device type and mOS so requests can be routed (§III-A), and
// implements srpc.Transport.
type Dispatcher struct {
	K     *sim.Kernel
	SPM   *spm.SPM
	Costs *sim.CostModel

	byPart map[spm.PartitionID]*mos.MOS
	byType map[string][]*mos.MOS
	rr     map[string]int // round-robin cursor per device type

	servers map[uint32]*srpc.Server

	// nextStream is this platform's stream-id counter (srpc.Transport
	// requires per-platform minting so co-resident platforms stay
	// deterministic).
	nextStream uint64

	// Attack knobs — everything a malicious normal OS could do.
	RouteOverride   func(deviceType string) string                              // dispatch to the wrong partition
	TamperSetup     func(msg attest.SealedMsg) attest.SealedMsg                 // corrupt sRPC setup traffic
	ReplaySetup     bool                                                        // replay the previous setup message
	FakeLocalReport func(eid uint32, nonce uint64) (attest.LocalReport, []byte) // forge local attestation
	TamperInvoke    func(msg attest.SealedMsg) attest.SealedMsg                 // corrupt lock-step mECalls
	DropExecutor    bool                                                        // refuse to create executor threads
	lastSetup       map[uint32]setupRecord
}

type setupRecord struct {
	streamID uint64
	msg      attest.SealedMsg
}

// NewDispatcher creates the dispatcher for a platform.
func NewDispatcher(s *spm.SPM) *Dispatcher {
	return &Dispatcher{
		K:         s.K,
		SPM:       s,
		Costs:     s.Costs,
		byPart:    make(map[spm.PartitionID]*mos.MOS),
		byType:    make(map[string][]*mos.MOS),
		rr:        make(map[string]int),
		servers:   make(map[uint32]*srpc.Server),
		lastSetup: make(map[uint32]setupRecord),
	}
}

// RegisterMOS records a booted mOS (its partition's device type and usable
// resources) for routing.
func (d *Dispatcher) RegisterMOS(m *mos.MOS) {
	d.byPart[m.Part.ID] = m
	t := m.HAL.DeviceType()
	d.byType[t] = append(d.byType[t], m)
}

// NextStreamID implements srpc.Transport: ids are minted per platform,
// starting at 1 (or at SetStreamBase+1 on multi-node fabrics).
func (d *Dispatcher) NextStreamID() uint64 {
	d.nextStream++
	return d.nextStream
}

// SetStreamBase offsets this platform's stream-id counter. Multi-node
// fabrics boot several platforms into one simulation kernel; executor procs
// derive their logical ids from stream ids, and logical ids must be unique
// across every process alive when the kernel parallelizes — so each node
// gets a disjoint stream-id range (cluster.BootNodes assigns node<<16).
// Call it before the first stream is minted.
func (d *Dispatcher) SetStreamBase(base uint64) {
	d.nextStream = base
}

// mosFor locates the mOS hosting an enclave id.
func (d *Dispatcher) mosFor(eid uint32) (*mos.MOS, error) {
	m, ok := d.byPart[spm.PartitionID(eid>>24)]
	if !ok {
		return nil, fmt.Errorf("normal: no partition for eid %#x", eid)
	}
	return m, nil
}

// selectMOS picks a partition for a device type, round-robin across
// partitions of the same type (multi-GPU placement).
func (d *Dispatcher) selectMOS(deviceType string) (*mos.MOS, error) {
	if d.RouteOverride != nil {
		if name := d.RouteOverride(deviceType); name != "" {
			for _, m := range d.byPart {
				if m.Part.Name == name {
					return m, nil
				}
			}
			return nil, fmt.Errorf("normal: no partition %q", name)
		}
	}
	list := d.byType[deviceType]
	if len(list) == 0 {
		return nil, fmt.Errorf("normal: no partition hosts device type %q", deviceType)
	}
	i := d.rr[deviceType] % len(list)
	d.rr[deviceType]++
	return list[i], nil
}

// CreateEnclave routes a creation request to a partition of the manifest's
// device type and returns the creation result. The world switch into the
// secure world is charged; the mOS enforces that the manifest matches its
// device (so misrouting fails safe).
func (d *Dispatcher) CreateEnclave(p *sim.Proc, name string, man enclave.Manifest, files map[string][]byte, callerDHPub []byte) (*mos.CreateResult, error) {
	m, err := d.selectMOS(man.DeviceType)
	if err != nil {
		return nil, err
	}
	return d.createAt(p, m, name, man, files, callerDHPub)
}

// CreateEnclaveAt routes creation to a named partition (explicit placement).
func (d *Dispatcher) CreateEnclaveAt(p *sim.Proc, partName, name string, man enclave.Manifest, files map[string][]byte, callerDHPub []byte) (*mos.CreateResult, error) {
	for _, m := range d.byPart {
		if m.Part.Name == partName {
			return d.createAt(p, m, name, man, files, callerDHPub)
		}
	}
	return nil, fmt.Errorf("normal: no partition %q", partName)
}

func (d *Dispatcher) createAt(p *sim.Proc, m *mos.MOS, name string, man enclave.Manifest, files map[string][]byte, callerDHPub []byte) (*mos.CreateResult, error) {
	mWorldSwitches.Add(2)
	p.Sleep(2 * d.Costs.WorldSwitch)
	res, e, err := m.EM.Create(p, name, man, files, callerDHPub)
	if err != nil {
		return nil, err
	}
	d.servers[res.EID] = srpc.NewServer(e)
	return res, nil
}

// InvokeSealed is the lock-step mECall path over untrusted memory: four
// world/context switches round trip, used by normal-world applications and
// by the HIX baseline.
func (d *Dispatcher) InvokeSealed(p *sim.Proc, eid uint32, msg attest.SealedMsg) (attest.SealedMsg, error) {
	if d.TamperInvoke != nil {
		msg = d.TamperInvoke(msg)
	}
	m, err := d.mosFor(eid)
	if err != nil {
		return attest.SealedMsg{}, err
	}
	mWorldSwitches.Add(2)
	p.Sleep(2*d.Costs.WorldSwitch + d.Costs.UntrustedMsg)
	reply, err := m.EM.InvokeSealed(p, eid, msg)
	if err != nil {
		return attest.SealedMsg{}, err
	}
	mWorldSwitches.Add(2)
	p.Sleep(2 * d.Costs.WorldSwitch)
	return reply, nil
}

// BuildReport relays a remote attestation request into the secure world.
func (d *Dispatcher) BuildReport(p *sim.Proc, nonce uint64) *attest.SignedReport {
	mWorldSwitches.Add(2)
	p.Sleep(2 * d.Costs.WorldSwitch)
	enclaves := make(map[string]attest.Measurement)
	for _, m := range d.byPart {
		for n, h := range m.EM.Measurements() {
			enclaves[n] = h
		}
	}
	return d.SPM.BuildReport(enclaves, nonce)
}

// Server returns the sRPC endpoint for an enclave (nil if unknown).
func (d *Dispatcher) Server(eid uint32) *srpc.Server { return d.servers[eid] }

// --- srpc.Transport implementation -------------------------------------

// LocalReport implements srpc.Transport.
func (d *Dispatcher) LocalReport(p *sim.Proc, eid uint32, nonce uint64) (attest.LocalReport, []byte, error) {
	if d.FakeLocalReport != nil {
		r, mac := d.FakeLocalReport(eid, nonce)
		return r, mac, nil
	}
	m, err := d.mosFor(eid)
	if err != nil {
		return attest.LocalReport{}, nil, err
	}
	mWorldSwitches.Add(2)
	p.Sleep(2 * d.Costs.WorldSwitch)
	return m.EM.LocalReport(eid, nonce)
}

// StreamSetup implements srpc.Transport.
func (d *Dispatcher) StreamSetup(p *sim.Proc, eid uint32, streamID uint64, msg attest.SealedMsg) (attest.SealedMsg, error) {
	if d.ReplaySetup {
		if old, ok := d.lastSetup[eid]; ok {
			msg, streamID = old.msg, old.streamID
		}
	}
	d.lastSetup[eid] = setupRecord{streamID: streamID, msg: msg}
	if d.TamperSetup != nil {
		msg = d.TamperSetup(msg)
	}
	srv := d.servers[eid]
	if srv == nil {
		return attest.SealedMsg{}, fmt.Errorf("normal: no sRPC endpoint for eid %#x", eid)
	}
	mWorldSwitches.Add(2)
	p.Sleep(2 * d.Costs.WorldSwitch)
	return srv.HandleSetup(p, streamID, msg)
}

// SpawnExecutor implements srpc.Transport: the normal world creates the
// executor thread, which immediately enters the secure world and loops
// inside the callee's partition.
func (d *Dispatcher) SpawnExecutor(p *sim.Proc, eid uint32, streamID uint64) error {
	if d.DropExecutor {
		return fmt.Errorf("normal: executor creation refused (malicious OS)")
	}
	srv := d.servers[eid]
	if srv == nil {
		return fmt.Errorf("normal: no sRPC endpoint for eid %#x", eid)
	}
	m, err := d.mosFor(eid)
	if err != nil {
		return err
	}
	body := func(tp *sim.Proc) {
		m.Part.Register(tp)
		defer m.Part.Unregister(tp)
		mWorldSwitches.Inc()
		tp.Sleep(d.Costs.WorldSwitch)
		srv.RunExecutor(tp, streamID)
	}
	name := fmt.Sprintf("executor-%#x-%d", eid, streamID)
	if d.K.Sharded() {
		// Place the executor on its partition's event shard so record
		// execution parallelizes with other partitions. The logical id
		// derives from the platform-minted stream id, so event keys — and
		// therefore all virtual-time outputs — are placement-invariant.
		// Connect and reconnect both run in sequential contexts, so SpawnOn
		// is always legal here.
		d.K.SpawnOn(m.Part.Shard(), 1<<20|streamID, name, body)
	} else {
		d.K.Spawn(name, body)
	}
	return nil
}
