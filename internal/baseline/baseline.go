// Package baseline implements the three comparison systems of the paper's
// evaluation (§VI-A) behind the same accel interfaces CRONUS uses, so every
// workload runs unmodified on all four systems:
//
//   - Native: unprotected Linux + gdev — direct device access, no TEE costs.
//   - TrustZone: the monolithic secure-world OS (OPTEE-style) with all
//     drivers inside one TEE — driver calls are intra-world function calls
//     (fast), but there is no fault or security isolation: recovery from any
//     driver fault is a whole-machine reboot.
//   - HIX-TrustZone: the paper's HIX emulation — an application enclave and
//     a GPU-driver enclave communicating by lock-step encrypted RPC over
//     untrusted memory, one RPC per hardware control message.
package baseline

import (
	"fmt"

	"cronus/internal/accel"
	"cronus/internal/gpu"
	"cronus/internal/npu"
	"cronus/internal/sim"
)

// System identifies one evaluated system.
type System string

// The four systems of the evaluation.
const (
	Native    System = "linux"
	TrustZone System = "trustzone"
	HIX       System = "hix-trustzone"
	CRONUS    System = "cronus"
)

// RecoveryTime returns each system's recovery cost after an accelerator
// stack fault (§VI-D): CRONUS restarts one mOS; the monolithic systems
// reboot the whole machine.
func RecoveryTime(s System, c *sim.CostModel) sim.Duration {
	switch s {
	case CRONUS:
		return c.DeviceClear + c.MOSRestart
	case Native, TrustZone, HIX:
		return c.MachineReboot
	}
	return 0
}

// NativeCUDA is unprotected gdev: direct driver access.
type NativeCUDA struct {
	Ctx   *gpu.Context
	Costs *sim.CostModel
}

var _ accel.CUDA = (*NativeCUDA)(nil)

// NewNativeCUDA creates a native context on the device.
func NewNativeCUDA(d *gpu.Device, costs *sim.CostModel, cubin []byte) (*NativeCUDA, error) {
	ctx := d.CreateContext()
	if err := ctx.LoadModule(cubin); err != nil {
		return nil, err
	}
	return &NativeCUDA{Ctx: ctx, Costs: costs}, nil
}

// MemAlloc implements accel.CUDA.
func (n *NativeCUDA) MemAlloc(p *sim.Proc, size uint64) (uint64, error) {
	return n.Ctx.MemAlloc(size)
}

// MemFree implements accel.CUDA.
func (n *NativeCUDA) MemFree(p *sim.Proc, ptr uint64) error { return n.Ctx.MemFree(ptr) }

// HtoD implements accel.CUDA.
func (n *NativeCUDA) HtoD(p *sim.Proc, dst uint64, data []byte) error {
	return n.Ctx.HtoD(p, dst, data)
}

// DtoH implements accel.CUDA.
func (n *NativeCUDA) DtoH(p *sim.Proc, src uint64, size int) ([]byte, error) {
	buf := make([]byte, size)
	if err := n.Ctx.DtoH(p, buf, src); err != nil {
		return nil, err
	}
	return buf, nil
}

// Launch implements accel.CUDA.
func (n *NativeCUDA) Launch(p *sim.Proc, kernel string, grid gpu.Dim, args ...uint64) error {
	return n.Ctx.Launch(p, kernel, grid, args...)
}

// Sync implements accel.CUDA.
func (n *NativeCUDA) Sync(p *sim.Proc) error { return nil }

// Close implements accel.CUDA.
func (n *NativeCUDA) Close(p *sim.Proc) error {
	n.Ctx = nil
	return nil
}

// TrustZoneCUDA is the monolithic secure-world OS: the application and all
// drivers share one TEE. Driver invocations are intra-world calls with a
// syscall-style trap; entering/leaving the TEE around application phases is
// amortized. No isolation between the co-resident driver stacks.
type TrustZoneCUDA struct {
	inner NativeCUDA
}

var _ accel.CUDA = (*TrustZoneCUDA)(nil)

// NewTrustZoneCUDA creates the monolithic-TEE context.
func NewTrustZoneCUDA(d *gpu.Device, costs *sim.CostModel, cubin []byte) (*TrustZoneCUDA, error) {
	n, err := NewNativeCUDA(d, costs, cubin)
	if err != nil {
		return nil, err
	}
	return &TrustZoneCUDA{inner: *n}, nil
}

func (t *TrustZoneCUDA) trap(p *sim.Proc) { p.Sleep(t.inner.Costs.SyscallTrap) }

// MemAlloc implements accel.CUDA.
func (t *TrustZoneCUDA) MemAlloc(p *sim.Proc, size uint64) (uint64, error) {
	t.trap(p)
	return t.inner.MemAlloc(p, size)
}

// MemFree implements accel.CUDA.
func (t *TrustZoneCUDA) MemFree(p *sim.Proc, ptr uint64) error {
	t.trap(p)
	return t.inner.MemFree(p, ptr)
}

// HtoD implements accel.CUDA.
func (t *TrustZoneCUDA) HtoD(p *sim.Proc, dst uint64, data []byte) error {
	t.trap(p)
	return t.inner.HtoD(p, dst, data)
}

// DtoH implements accel.CUDA.
func (t *TrustZoneCUDA) DtoH(p *sim.Proc, src uint64, size int) ([]byte, error) {
	t.trap(p)
	return t.inner.DtoH(p, src, size)
}

// Launch implements accel.CUDA.
func (t *TrustZoneCUDA) Launch(p *sim.Proc, kernel string, grid gpu.Dim, args ...uint64) error {
	t.trap(p)
	return t.inner.Launch(p, kernel, grid, args...)
}

// Sync implements accel.CUDA.
func (t *TrustZoneCUDA) Sync(p *sim.Proc) error {
	t.trap(p)
	return nil
}

// Close implements accel.CUDA.
func (t *TrustZoneCUDA) Close(p *sim.Proc) error { return t.inner.Close(p) }

// HIXCUDA is the HIX-TrustZone emulation (§VI-A): the application enclave
// reaches the GPU-driver enclave by synchronous, encrypted RPC over
// untrusted memory. Every hardware control message is one lock-step RPC:
// the caller pays encryption of the payload, the world/context switches,
// and the reply path, serially.
type HIXCUDA struct {
	inner NativeCUDA
	// ctrlMsgs maps one driver operation to its hardware control message
	// count (command submission, doorbell, fence wait, ...).
}

var _ accel.CUDA = (*HIXCUDA)(nil)

// NewHIXCUDA creates the HIX-emulation context.
func NewHIXCUDA(d *gpu.Device, costs *sim.CostModel, cubin []byte) (*HIXCUDA, error) {
	n, err := NewNativeCUDA(d, costs, cubin)
	if err != nil {
		return nil, err
	}
	return &HIXCUDA{inner: *n}, nil
}

// rpc charges one lock-step encrypted RPC round trip carrying n payload
// bytes (§II-C synchronous approach; §VI-B "HIX conducts an RPC for each
// hardware control message").
func (h *HIXCUDA) rpc(p *sim.Proc, n int) {
	c := h.inner.Costs
	p.Sleep(c.Encrypt(n))      // seal request
	p.Sleep(c.SyncRPCSwitch()) // 4 context switches in
	p.Sleep(c.UntrustedMsg)    // untrusted memory handoff
	p.Sleep(c.Encrypt(n))      // peer opens request
	p.Sleep(c.Encrypt(64))     // seal reply (ack/status)
	p.Sleep(c.SyncRPCSwitch()) // 4 context switches back
	p.Sleep(c.Encrypt(64))     // open reply
}

// Hardware control messages per driver operation.
const (
	hixMsgsAlloc  = 2 // allocate + map
	hixMsgsCopy   = 3 // stage command + DMA kick + completion fence
	hixMsgsLaunch = 4 // push module state + command + doorbell + fence
	hixMsgsSync   = 1
)

// MemAlloc implements accel.CUDA.
func (h *HIXCUDA) MemAlloc(p *sim.Proc, size uint64) (uint64, error) {
	for i := 0; i < hixMsgsAlloc; i++ {
		h.rpc(p, 64)
	}
	return h.inner.MemAlloc(p, size)
}

// MemFree implements accel.CUDA.
func (h *HIXCUDA) MemFree(p *sim.Proc, ptr uint64) error {
	h.rpc(p, 64)
	return h.inner.MemFree(p, ptr)
}

// HtoD implements accel.CUDA: the payload crosses untrusted memory
// encrypted.
func (h *HIXCUDA) HtoD(p *sim.Proc, dst uint64, data []byte) error {
	h.rpc(p, len(data))
	for i := 1; i < hixMsgsCopy; i++ {
		h.rpc(p, 64)
	}
	return h.inner.HtoD(p, dst, data)
}

// DtoH implements accel.CUDA.
func (h *HIXCUDA) DtoH(p *sim.Proc, src uint64, size int) ([]byte, error) {
	h.rpc(p, size)
	for i := 1; i < hixMsgsCopy; i++ {
		h.rpc(p, 64)
	}
	return h.inner.DtoH(p, src, size)
}

// Launch implements accel.CUDA: lock-step, so the caller also waits for the
// kernel itself.
func (h *HIXCUDA) Launch(p *sim.Proc, kernel string, grid gpu.Dim, args ...uint64) error {
	for i := 0; i < hixMsgsLaunch; i++ {
		h.rpc(p, 128)
	}
	return h.inner.Launch(p, kernel, grid, args...)
}

// Sync implements accel.CUDA.
func (h *HIXCUDA) Sync(p *sim.Proc) error {
	h.rpc(p, 64)
	return nil
}

// Close implements accel.CUDA.
func (h *HIXCUDA) Close(p *sim.Proc) error { return h.inner.Close(p) }

// NativeNPU is unprotected VTA fsim access.
type NativeNPU struct {
	Ctx   *npu.Context
	Costs *sim.CostModel
}

var _ accel.NPU = (*NativeNPU)(nil)

// NewNativeNPU creates a native NPU context.
func NewNativeNPU(d *npu.Device, costs *sim.CostModel) *NativeNPU {
	return &NativeNPU{Ctx: d.CreateContext(), Costs: costs}
}

// MemAlloc implements accel.NPU.
func (n *NativeNPU) MemAlloc(p *sim.Proc, size uint64) (uint64, error) { return n.Ctx.MemAlloc(size) }

// HtoD implements accel.NPU.
func (n *NativeNPU) HtoD(p *sim.Proc, dst uint64, data []byte) error { return n.Ctx.HtoD(p, dst, data) }

// DtoH implements accel.NPU.
func (n *NativeNPU) DtoH(p *sim.Proc, src uint64, size int) ([]byte, error) {
	buf := make([]byte, size)
	if err := n.Ctx.DtoH(p, buf, src); err != nil {
		return nil, err
	}
	return buf, nil
}

// Run implements accel.NPU.
func (n *NativeNPU) Run(p *sim.Proc, insns []npu.Insn) error { return n.Ctx.Run(p, insns) }

// Sync implements accel.NPU.
func (n *NativeNPU) Sync(p *sim.Proc) error { return nil }

// Close implements accel.NPU.
func (n *NativeNPU) Close(p *sim.Proc) error {
	n.Ctx = nil
	return nil
}

// TrustZoneNPU is the monolithic-TEE NPU stack.
type TrustZoneNPU struct {
	inner *NativeNPU
}

var _ accel.NPU = (*TrustZoneNPU)(nil)

// NewTrustZoneNPU creates the monolithic-TEE NPU context.
func NewTrustZoneNPU(d *npu.Device, costs *sim.CostModel) *TrustZoneNPU {
	return &TrustZoneNPU{inner: NewNativeNPU(d, costs)}
}

func (t *TrustZoneNPU) trap(p *sim.Proc) { p.Sleep(t.inner.Costs.SyscallTrap) }

// MemAlloc implements accel.NPU.
func (t *TrustZoneNPU) MemAlloc(p *sim.Proc, size uint64) (uint64, error) {
	t.trap(p)
	return t.inner.MemAlloc(p, size)
}

// HtoD implements accel.NPU.
func (t *TrustZoneNPU) HtoD(p *sim.Proc, dst uint64, data []byte) error {
	t.trap(p)
	return t.inner.HtoD(p, dst, data)
}

// DtoH implements accel.NPU.
func (t *TrustZoneNPU) DtoH(p *sim.Proc, src uint64, size int) ([]byte, error) {
	t.trap(p)
	return t.inner.DtoH(p, src, size)
}

// Run implements accel.NPU.
func (t *TrustZoneNPU) Run(p *sim.Proc, insns []npu.Insn) error {
	t.trap(p)
	return t.inner.Run(p, insns)
}

// Sync implements accel.NPU.
func (t *TrustZoneNPU) Sync(p *sim.Proc) error {
	t.trap(p)
	return nil
}

// Close implements accel.NPU.
func (t *TrustZoneNPU) Close(p *sim.Proc) error { return t.inner.Close(p) }

// Describe returns the qualitative requirement matrix row for a system
// (Table I).
func Describe(s System) (r1General, r2Spatial, r31Fault, r32Security bool, err error) {
	switch s {
	case Native:
		return true, true, false, false, nil
	case TrustZone:
		return true, true, false, false, nil
	case HIX:
		return false, false, false, true, nil
	case CRONUS:
		return true, true, true, true, nil
	}
	return false, false, false, false, fmt.Errorf("baseline: unknown system %q", s)
}
