package provision_test

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"cronus/internal/attest"
	"cronus/internal/core"
	"cronus/internal/provision"
	"cronus/internal/sim"
)

// attestedPair spins up a platform, attests it, and returns a bound client
// and the matching enclave-side receiver.
func attestedPair(t *testing.T) (*provision.Client, *provision.Receiver) {
	t.Helper()
	var client *provision.Client
	var recv *provision.Receiver
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "prov")
		if err != nil {
			return err
		}
		client, err = provision.NewClient([]byte("user-7"), pl.Verifier)
		if err != nil {
			return err
		}
		// The session enclave's provisioning key (held in the secure
		// world; the seed stands for enclave-private entropy).
		enclaveSeed := []byte("session-enclave-provision-key")
		pub, err := provision.EnclavePub(enclaveSeed)
		if err != nil {
			return err
		}
		dt := pl.SPM.DTHash()
		report := pl.D.BuildReport(p, 5)
		want := attest.Expected{
			EnclaveHashes: s.EnclaveMeasurements(),
			DTHash:        &dt,
			Nonce:         5,
		}
		if err := client.VerifyAndBind(report, want, pub); err != nil {
			return err
		}
		recv, err = provision.NewReceiver(enclaveSeed, client.Pub())
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return client, recv
}

func TestProvisionRoundTrip(t *testing.T) {
	client, recv := attestedPair(t)
	data := []byte("training labels: cat, dog, cat, bird")
	blob, err := client.Seal(nil, data)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := recv.Open(nil, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, data) {
		t.Fatal("plaintext mangled")
	}
}

func TestSealRefusedBeforeAttestation(t *testing.T) {
	v := attest.NewVerifier(attest.KeyFromSeed([]byte("svc")).Public().(attest.PublicKey))
	c, err := provision.NewClient([]byte("u"), v)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Seal(nil, []byte("secret")); !errors.Is(err, provision.ErrNotAttested) {
		t.Fatalf("err = %v, want ErrNotAttested", err)
	}
}

func TestBindRefusedOnBadReport(t *testing.T) {
	err := core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		client, err := provision.NewClient([]byte("u"), pl.Verifier)
		if err != nil {
			return err
		}
		report := pl.D.BuildReport(p, 1)
		// Client pins a different enclave hash (substituted image).
		want := attest.Expected{
			EnclaveHashes: map[string]attest.Measurement{"x": attest.Measure([]byte("other"))},
			Nonce:         1,
		}
		pub, _ := provision.EnclavePub([]byte("seed"))
		if err := client.VerifyAndBind(report, want, pub); err == nil {
			t.Error("client released its key to an unattested platform")
		}
		if _, err := client.Seal(nil, []byte("d")); !errors.Is(err, provision.ErrNotAttested) {
			t.Error("client seals despite failed attestation")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTamperReplayReorderRejected(t *testing.T) {
	client, recv := attestedPair(t)
	b1, _ := client.Seal(nil, []byte("chunk-1"))
	b2, _ := client.Seal(nil, []byte("chunk-2"))
	b3, _ := client.Seal(nil, []byte("chunk-3"))

	// Tamper.
	bad := b1
	bad.Ciphertext = append([]byte{}, b1.Ciphertext...)
	bad.Ciphertext[0] ^= 0xff
	if _, err := recv.Open(nil, bad); !errors.Is(err, provision.ErrDecrypt) {
		t.Fatalf("tampered blob: err = %v", err)
	}
	if _, err := recv.Open(nil, b1); err != nil {
		t.Fatal(err)
	}
	// Replay.
	if _, err := recv.Open(nil, b1); !errors.Is(err, provision.ErrDecrypt) {
		t.Fatal("replayed blob accepted")
	}
	// Reorder (b3 before b2).
	if _, err := recv.Open(nil, b3); !errors.Is(err, provision.ErrDecrypt) {
		t.Fatal("reordered blob accepted")
	}
	if _, err := recv.Open(nil, b2); err != nil {
		t.Fatal(err)
	}
}

func TestEavesdropperCannotDecrypt(t *testing.T) {
	client, _ := attestedPair(t)
	blob, _ := client.Seal(nil, []byte("weights"))
	// The untrusted OS sees the blob but has neither side's private key.
	evil, err := provision.NewReceiver([]byte("attacker guess"), client.Pub())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := evil.Open(nil, blob); err == nil {
		t.Fatal("eavesdropper decrypted the dataset")
	}
}

func TestProvisionQuickProperty(t *testing.T) {
	client, recv := attestedPair(t)
	f := func(data []byte) bool {
		blob, err := client.Seal(nil, data)
		if err != nil {
			return false
		}
		pt, err := recv.Open(nil, blob)
		return err == nil && bytes.Equal(pt, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
