// Package provision implements the sensitive-data provisioning flow of the
// application workflow (§III-D): after remote attestation succeeds, the
// user derives a session key bound to the attested enclave (X25519 +
// HKDF-style derivation), encrypts the dataset under AES-GCM, and ships the
// ciphertext through the untrusted world; only the attested CPU mEnclave
// can decrypt it.
package provision

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"cronus/internal/attest"
	"cronus/internal/sim"
)

// ErrNotAttested reports provisioning attempted before attestation.
var ErrNotAttested = errors.New("provision: session not attested")

// ErrDecrypt reports an undecryptable blob (wrong key or tampered).
var ErrDecrypt = errors.New("provision: cannot decrypt (tampered or wrong enclave)")

// deriveKey binds the data key to the shared secret and a context label.
func deriveKey(shared []byte, label string) []byte {
	m := hmac.New(sha256.New, shared)
	m.Write([]byte("cronus-provision/" + label))
	return m.Sum(nil)
}

// Client is the user side: it refuses to release data until it has verified
// the platform.
type Client struct {
	dh       *attest.DHKey
	verifier *attest.Verifier
	attested bool
	key      []byte
	seq      uint64
}

// NewClient creates a provisioning client with its own ephemeral key.
func NewClient(seed []byte, verifier *attest.Verifier) (*Client, error) {
	dh, err := attest.NewDHKey(append([]byte("provision-client/"), seed...))
	if err != nil {
		return nil, err
	}
	return &Client{dh: dh, verifier: verifier}, nil
}

// Pub returns the client's key-agreement public key (sent to the enclave).
func (c *Client) Pub() []byte { return c.dh.Pub }

// VerifyAndBind checks the platform report against the pinned expectations
// and, only on success, derives the data key with the enclave's public key.
func (c *Client) VerifyAndBind(report *attest.SignedReport, want attest.Expected, enclavePub []byte) error {
	if err := c.verifier.VerifyReport(report, want); err != nil {
		return fmt.Errorf("provision: attestation failed, refusing to release data: %w", err)
	}
	shared, err := c.dh.Shared(enclavePub)
	if err != nil {
		return err
	}
	c.key = deriveKey(shared, "dataset")
	c.attested = true
	return nil
}

// Blob is one encrypted dataset chunk travelling through the untrusted
// world.
type Blob struct {
	Seq        uint64
	Nonce      [12]byte
	Ciphertext []byte
}

// Seal encrypts a dataset chunk. It fails before attestation (the client
// never releases plaintext-derived material early).
func (c *Client) Seal(p *sim.Proc, plaintext []byte) (Blob, error) {
	if !c.attested {
		return Blob{}, ErrNotAttested
	}
	c.seq++
	var nonce [12]byte
	binary.LittleEndian.PutUint64(nonce[:8], c.seq)
	block, err := aes.NewCipher(c.key)
	if err != nil {
		return Blob{}, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return Blob{}, err
	}
	if p != nil {
		p.Sleep(sim.DefaultCosts().Encrypt(len(plaintext)))
	}
	ct := gcm.Seal(nil, nonce[:], plaintext, nonce[:8])
	return Blob{Seq: c.seq, Nonce: nonce, Ciphertext: ct}, nil
}

// Receiver is the enclave side: it derives the same key from its own DH key
// and the client's public key, and enforces in-order exactly-once delivery.
type Receiver struct {
	key  []byte
	last uint64
}

// NewReceiver derives the receiver from the enclave's key-agreement private
// seed and the client's public key. In deployment this runs inside the
// attested CPU mEnclave.
func NewReceiver(enclaveSeed, clientPub []byte) (*Receiver, error) {
	dh, err := attest.NewDHKey(enclaveSeed)
	if err != nil {
		return nil, err
	}
	shared, err := dh.Shared(clientPub)
	if err != nil {
		return nil, err
	}
	return &Receiver{key: deriveKey(shared, "dataset")}, nil
}

// EnclavePub returns the public half the client binds against.
func EnclavePub(enclaveSeed []byte) ([]byte, error) {
	dh, err := attest.NewDHKey(enclaveSeed)
	if err != nil {
		return nil, err
	}
	return dh.Pub, nil
}

// Open decrypts a blob, rejecting tampering, replay and reordering.
func (r *Receiver) Open(p *sim.Proc, b Blob) ([]byte, error) {
	if b.Seq != r.last+1 {
		return nil, fmt.Errorf("%w: sequence %d, want %d", ErrDecrypt, b.Seq, r.last+1)
	}
	block, err := aes.NewCipher(r.key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if p != nil {
		p.Sleep(sim.DefaultCosts().Encrypt(len(b.Ciphertext)))
	}
	pt, err := gcm.Open(nil, b.Nonce[:], b.Ciphertext, b.Nonce[:8])
	if err != nil {
		return nil, ErrDecrypt
	}
	r.last = b.Seq
	return pt, nil
}
