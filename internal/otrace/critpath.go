// Critical-path analysis: fold per-request stage decompositions into
// per-tenant, per-stage attribution tables, and surface the requests in the
// latency tail as exemplars with their dominant stage — the tool the
// "where does the p99 go" question needs.
package otrace

import (
	"fmt"
	"sort"
	"strings"

	"cronus/internal/sim"
)

// StageStat aggregates one (tenant, stage) cell of the attribution table.
type StageStat struct {
	Stage Stage
	// Count is how many requests spent any time in the stage.
	Count uint64
	// Total is the summed virtual time attributed to the stage.
	Total sim.Duration
	// Max is the largest single-request time attributed to the stage.
	Max sim.Duration
}

// TenantAttribution is one tenant's row group: its request population and
// the stage cells, in canonical stage order (stages with zero time omitted).
type TenantAttribution struct {
	Tenant   string
	Requests uint64
	Failed   uint64
	// TotalLatency is the summed end-to-end latency — by the conservative
	// contract, exactly the sum of the stage totals.
	TotalLatency sim.Duration
	Stages       []StageStat
}

// Outlier is one latency-tail exemplar: a concrete trace id a human can pull
// out of the Perfetto export, with the stage that dominated it.
type Outlier struct {
	TraceID  uint64
	Latency  sim.Duration
	TopStage Stage
	// TopShare is TopStage's fraction of the request's latency.
	TopShare float64
}

// TenantOutliers is one tenant's latency tail: the threshold used and up to
// K exemplars at or above it, largest first.
type TenantOutliers struct {
	Tenant    string
	Quantile  float64
	Threshold sim.Duration
	Exemplars []Outlier
}

// Attribution is the folded result over a set of request traces.
type Attribution struct {
	Tenants []TenantAttribution
	traces  map[string][]RequestTrace // per tenant, presentation order
}

// Attribute folds request traces into per-tenant, per-stage attribution.
// Input order does not matter; the result is deterministic (tenants sorted,
// stages in canonical order).
func Attribute(traces []RequestTrace) *Attribution {
	byTenant := make(map[string][]RequestTrace)
	for _, rt := range sortTraces(traces) {
		byTenant[rt.Tenant] = append(byTenant[rt.Tenant], rt)
	}
	names := make([]string, 0, len(byTenant))
	for n := range byTenant {
		names = append(names, n)
	}
	sort.Strings(names)
	a := &Attribution{traces: byTenant}
	for _, n := range names {
		ta := TenantAttribution{Tenant: n}
		cells := make(map[Stage]*StageStat)
		for _, rt := range byTenant[n] {
			ta.Requests++
			if rt.Failed {
				ta.Failed++
			}
			ta.TotalLatency += rt.Latency()
			perStage := make(map[Stage]sim.Duration)
			for _, s := range rt.Segments {
				perStage[s.Stage] += s.Dur()
			}
			for st, d := range perStage {
				c := cells[st]
				if c == nil {
					c = &StageStat{Stage: st}
					cells[st] = c
				}
				c.Count++
				c.Total += d
				if d > c.Max {
					c.Max = d
				}
			}
		}
		for _, st := range StageOrder {
			if c := cells[st]; c != nil {
				ta.Stages = append(ta.Stages, *c)
			}
		}
		a.Tenants = append(a.Tenants, ta)
	}
	return a
}

// Outliers returns each tenant's latency tail at quantile q: the threshold
// is the exact order statistic over that tenant's latencies, and up to k
// requests at or above it are returned largest-first (ties broken by
// earlier arrival, then smaller trace id — deterministic).
func (a *Attribution) Outliers(q float64, k int) []TenantOutliers {
	var out []TenantOutliers
	for _, ta := range a.Tenants {
		ts := a.traces[ta.Tenant]
		if len(ts) == 0 {
			continue
		}
		lats := make([]sim.Duration, len(ts))
		for i, rt := range ts {
			lats[i] = rt.Latency()
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		idx := int(q * float64(len(lats)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(lats) {
			idx = len(lats) - 1
		}
		threshold := lats[idx]
		tail := make([]RequestTrace, 0, k)
		for _, rt := range ts {
			if rt.Latency() >= threshold {
				tail = append(tail, rt)
			}
		}
		sort.SliceStable(tail, func(i, j int) bool {
			if tail[i].Latency() != tail[j].Latency() {
				return tail[i].Latency() > tail[j].Latency()
			}
			if tail[i].Arrived != tail[j].Arrived {
				return tail[i].Arrived < tail[j].Arrived
			}
			return tail[i].TraceID < tail[j].TraceID
		})
		if len(tail) > k {
			tail = tail[:k]
		}
		to := TenantOutliers{Tenant: ta.Tenant, Quantile: q, Threshold: threshold}
		for _, rt := range tail {
			top, share := dominantStage(&rt)
			to.Exemplars = append(to.Exemplars, Outlier{
				TraceID: rt.TraceID, Latency: rt.Latency(),
				TopStage: top, TopShare: share,
			})
		}
		out = append(out, to)
	}
	return out
}

// dominantStage returns the stage with the most attributed time in one
// request (ties resolve to the earlier stage in canonical order).
func dominantStage(rt *RequestTrace) (Stage, float64) {
	perStage := make(map[Stage]sim.Duration)
	for _, s := range rt.Segments {
		perStage[s.Stage] += s.Dur()
	}
	var top Stage
	var best sim.Duration = -1
	for _, st := range StageOrder {
		if d, ok := perStage[st]; ok && d > best {
			top, best = st, d
		}
	}
	lat := rt.Latency()
	if lat <= 0 {
		return top, 0
	}
	return top, float64(best) / float64(lat)
}

// Table renders the attribution as a fixed-width text table, deterministic
// for identical inputs. Shares are of the tenant's total latency; mean is
// per request that visited the stage.
func (a *Attribution) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latency attribution (virtual time):\n")
	fmt.Fprintf(&b, "  %-10s %-14s %10s %8s %12s %12s %12s\n",
		"tenant", "stage", "reqs", "share", "total", "mean", "max")
	for _, ta := range a.Tenants {
		fmt.Fprintf(&b, "  %-10s %-14s %10d %8s %12v %12s %12v\n",
			ta.Tenant, "(all)", ta.Requests, "100.0%", ta.TotalLatency,
			meanDur(ta.TotalLatency, ta.Requests), "")
		for _, st := range ta.Stages {
			share := 0.0
			if ta.TotalLatency > 0 {
				share = 100 * float64(st.Total) / float64(ta.TotalLatency)
			}
			fmt.Fprintf(&b, "  %-10s %-14s %10d %7.1f%% %12v %12s %12v\n",
				"", string(st.Stage), st.Count, share, st.Total,
				meanDur(st.Total, st.Count), st.Max)
		}
	}
	return b.String()
}

// OutlierReport renders the latency tails as text, deterministic for
// identical inputs.
func OutlierReport(outs []TenantOutliers) string {
	var b strings.Builder
	for _, to := range outs {
		fmt.Fprintf(&b, "p%g outliers for %s (threshold %v):\n",
			to.Quantile*100, to.Tenant, to.Threshold)
		for _, ex := range to.Exemplars {
			fmt.Fprintf(&b, "  trace %#016x  latency %-10v dominant %s (%.0f%%)\n",
				ex.TraceID, ex.Latency, ex.TopStage, ex.TopShare*100)
		}
	}
	return b.String()
}

func meanDur(total sim.Duration, n uint64) string {
	if n == 0 {
		return "-"
	}
	return sim.Duration(int64(total) / int64(n)).String()
}
