// Package otrace builds end-to-end causal observability on top of the raw
// trace.Collector event spine: deterministic per-request trace ids, named
// latency stages whose attributions are conservative by construction, a
// critical-path analyzer with per-tenant attribution tables and p99-outlier
// exemplars, and a bounded per-partition flight recorder.
//
// Everything here is virtual-time only. Trace ids derive from the tenant
// name and the tenant-local admission sequence — never from wall clock — and
// stage segments are cut from ordered in-request marks, so two identical
// seeded runs produce byte-identical traces, tables and exports.
package otrace

import (
	"fmt"
	"sort"

	"cronus/internal/sim"
)

// Stage names one portion of a request's end-to-end latency. Stages are
// exclusive and ordered in virtual time: a request is in exactly one stage
// at any instant between admission and completion, which is what makes the
// attribution conservative (stage durations sum to the latency exactly).
type Stage string

// The serving-plane stage taxonomy, in the order a fault-free request moves
// through it. Faulted requests revisit stages (retry loops re-enter
// StageExec, failover re-enters StageQueue via StageRequeue).
const (
	// StageQueue: admitted, waiting in the tenant queue for a dispatcher.
	StageQueue Stage = "queue"
	// StageBatch: popped by the dispatcher; batch formation and placement.
	StageBatch Stage = "batch"
	// StageReplica: placed, waiting behind earlier batches on the replica.
	StageReplica Stage = "replica-queue"
	// StageExec: one execution attempt — sRPC transfer, mOS dispatch,
	// device launch and sync.
	StageExec Stage = "execute"
	// StageBackoff: between attempts after a watchdog timeout.
	StageBackoff Stage = "retry-backoff"
	// StageRequeue: pushed back to the head of the tenant queue by
	// failover, waiting to be re-dispatched.
	StageRequeue Stage = "requeue"
)

// StageOrder is the canonical presentation order for attribution tables.
var StageOrder = []Stage{StageQueue, StageBatch, StageReplica, StageExec, StageBackoff, StageRequeue}

// DeriveTraceID computes the deterministic trace id for the seq'th admitted
// request of a tenant: an FNV-1a hash of the tenant name finalized with a
// splitmix64-style mix of the sequence number. No wall clock, no randomness
// — identical runs mint identical ids — and the mixing keeps ids from
// adjacent sequence numbers far apart so truncated ids stay distinguishable
// in reports. The result is never 0 (0 means "untraced" everywhere).
func DeriveTraceID(tenant string, seq uint64) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= fnvPrime
	}
	z := h + seq*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Mark is one stage-entry boundary inside a request's lifetime.
type Mark struct {
	Stage Stage
	At    sim.Time
}

// Segment is one attributed slice of a request's latency.
type Segment struct {
	Stage Stage
	From  sim.Time
	To    sim.Time
}

// Dur returns the segment's virtual-time length.
func (s Segment) Dur() sim.Duration { return sim.Duration(s.To - s.From) }

// RequestTrace is the per-request causal record the serving plane emits at
// completion: identity, outcome, and the conservative stage decomposition of
// its end-to-end latency.
type RequestTrace struct {
	TraceID uint64
	Tenant  string
	Class   string
	Arrived sim.Time
	Done    sim.Time
	// Failed is true when the request completed with an error (timeout,
	// pool quarantine); its latency still decomposes into stages.
	Failed bool
	// Retries counts watchdog-triggered re-executions.
	Retries uint32
	// Replays counts failover requeues.
	Replays uint32
	Segments []Segment
}

// Latency returns the request's end-to-end virtual-time latency.
func (rt *RequestTrace) Latency() sim.Duration { return sim.Duration(rt.Done - rt.Arrived) }

// Validate checks the conservative-attribution contract: segments are
// contiguous, non-negative, start at Arrived and end at Done — so their
// durations sum to Latency exactly.
func (rt *RequestTrace) Validate() error {
	if len(rt.Segments) == 0 {
		return fmt.Errorf("trace %#x: no segments", rt.TraceID)
	}
	if got := rt.Segments[0].From; got != rt.Arrived {
		return fmt.Errorf("trace %#x: first segment starts at %v, arrived %v", rt.TraceID, got, rt.Arrived)
	}
	for i, s := range rt.Segments {
		if s.To < s.From {
			return fmt.Errorf("trace %#x: segment %d (%s) has negative duration", rt.TraceID, i, s.Stage)
		}
		if i > 0 && s.From != rt.Segments[i-1].To {
			return fmt.Errorf("trace %#x: gap between segment %d and %d", rt.TraceID, i-1, i)
		}
	}
	if got := rt.Segments[len(rt.Segments)-1].To; got != rt.Done {
		return fmt.Errorf("trace %#x: last segment ends at %v, done %v", rt.TraceID, got, rt.Done)
	}
	var sum sim.Duration
	for _, s := range rt.Segments {
		sum += s.Dur()
	}
	if sum != rt.Latency() {
		return fmt.Errorf("trace %#x: segments sum to %v, latency %v", rt.TraceID, sum, rt.Latency())
	}
	return nil
}

// SegmentsFromMarks cuts the conservative stage decomposition from a
// request's ordered stage-entry marks: each mark opens its stage until the
// next mark (the last until done). Zero-length slices are dropped; adjacent
// slices of the same stage merge. The result always covers [arrived, done]
// with no gaps, so durations sum to the latency by construction.
func SegmentsFromMarks(arrived, done sim.Time, marks []Mark) []Segment {
	segs := make([]Segment, 0, len(marks))
	push := func(st Stage, from, to sim.Time) {
		if to <= from {
			return
		}
		if n := len(segs); n > 0 && segs[n-1].Stage == st && segs[n-1].To == from {
			segs[n-1].To = to
			return
		}
		segs = append(segs, Segment{Stage: st, From: from, To: to})
	}
	prev := Mark{Stage: StageQueue, At: arrived}
	for _, m := range marks {
		push(prev.Stage, prev.At, m.At)
		prev = m
	}
	push(prev.Stage, prev.At, done)
	if len(segs) == 0 {
		// Zero-latency request: one empty segment keeps the contract
		// (covers [arrived, done] trivially).
		segs = append(segs, Segment{Stage: prev.Stage, From: arrived, To: done})
	}
	return segs
}

// sortTraces orders traces deterministically for presentation: by tenant,
// then by arrival, then by trace id.
func sortTraces(ts []RequestTrace) []RequestTrace {
	out := make([]RequestTrace, len(ts))
	copy(out, ts)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		if out[i].Arrived != out[j].Arrived {
			return out[i].Arrived < out[j].Arrived
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}
