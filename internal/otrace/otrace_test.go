package otrace

import (
	"strings"
	"testing"

	"cronus/internal/sim"
	"cronus/internal/trace"
)

func TestDeriveTraceID(t *testing.T) {
	a := DeriveTraceID("tenant-0", 1)
	if a == 0 {
		t.Fatal("trace id 0 is reserved for untraced")
	}
	if b := DeriveTraceID("tenant-0", 1); b != a {
		t.Fatalf("not deterministic: %#x vs %#x", a, b)
	}
	if b := DeriveTraceID("tenant-0", 2); b == a {
		t.Fatal("adjacent sequence numbers collided")
	}
	if b := DeriveTraceID("tenant-1", 1); b == a {
		t.Fatal("distinct tenants collided")
	}
}

func TestSegmentsFromMarksNoMarks(t *testing.T) {
	segs := SegmentsFromMarks(100, 250, nil)
	if len(segs) != 1 || segs[0].Stage != StageQueue || segs[0].From != 100 || segs[0].To != 250 {
		t.Fatalf("segs = %+v", segs)
	}
}

func TestSegmentsFromMarksFullPath(t *testing.T) {
	marks := []Mark{
		{StageBatch, 120},
		{StageReplica, 130},
		{StageExec, 150},
		{StageBackoff, 180},
		{StageExec, 200},
	}
	rt := RequestTrace{TraceID: 1, Arrived: 100, Done: 260,
		Segments: SegmentsFromMarks(100, 260, marks)}
	if err := rt.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []Segment{
		{StageQueue, 100, 120},
		{StageBatch, 120, 130},
		{StageReplica, 130, 150},
		{StageExec, 150, 180},
		{StageBackoff, 180, 200},
		{StageExec, 200, 260},
	}
	if len(rt.Segments) != len(want) {
		t.Fatalf("segments = %+v", rt.Segments)
	}
	for i, s := range rt.Segments {
		if s != want[i] {
			t.Errorf("segment %d = %+v, want %+v", i, s, want[i])
		}
	}
}

func TestSegmentsFromMarksMergeAndDrop(t *testing.T) {
	// Two marks at the same instant: the zero-length slice drops; two
	// adjacent slices of the same stage merge.
	marks := []Mark{
		{StageBatch, 120},
		{StageExec, 120},  // batch slice is zero-length -> dropped
		{StageExec, 140},  // same stage, contiguous -> merged
		{StageQueue, 160}, // requeue-style return to queue survives
	}
	rt := RequestTrace{TraceID: 2, Arrived: 100, Done: 200,
		Segments: SegmentsFromMarks(100, 200, marks)}
	if err := rt.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []Segment{
		{StageQueue, 100, 120},
		{StageExec, 120, 160},
		{StageQueue, 160, 200},
	}
	if len(rt.Segments) != len(want) {
		t.Fatalf("segments = %+v", rt.Segments)
	}
	for i, s := range rt.Segments {
		if s != want[i] {
			t.Errorf("segment %d = %+v, want %+v", i, s, want[i])
		}
	}
}

func TestSegmentsFromMarksZeroLatency(t *testing.T) {
	rt := RequestTrace{TraceID: 3, Arrived: 50, Done: 50,
		Segments: SegmentsFromMarks(50, 50, []Mark{{StageBatch, 50}})}
	if err := rt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsGaps(t *testing.T) {
	rt := RequestTrace{TraceID: 4, Arrived: 0, Done: 30, Segments: []Segment{
		{StageQueue, 0, 10},
		{StageExec, 15, 30}, // gap 10..15
	}}
	if err := rt.Validate(); err == nil {
		t.Fatal("gap not detected")
	}
	rt.Segments = []Segment{{StageQueue, 0, 20}}
	if err := rt.Validate(); err == nil {
		t.Fatal("short coverage not detected")
	}
}

// sample builds a deterministic two-tenant trace set for analyzer tests.
func sample() []RequestTrace {
	mk := func(tenant string, seq uint64, arrived, done sim.Time, marks ...Mark) RequestTrace {
		return RequestTrace{
			TraceID: DeriveTraceID(tenant, seq), Tenant: tenant, Class: "c",
			Arrived: arrived, Done: done,
			Segments: SegmentsFromMarks(arrived, done, marks),
		}
	}
	return []RequestTrace{
		mk("b", 1, 0, 100, Mark{StageExec, 40}),
		mk("a", 1, 0, 10, Mark{StageExec, 2}),
		mk("a", 2, 5, 45, Mark{StageBatch, 10}, Mark{StageExec, 15}),
		mk("a", 3, 9, 1009, Mark{StageExec, 19}), // the outlier: execute-dominated
	}
}

func TestAttributeConservation(t *testing.T) {
	a := Attribute(sample())
	if len(a.Tenants) != 2 || a.Tenants[0].Tenant != "a" || a.Tenants[1].Tenant != "b" {
		t.Fatalf("tenants = %+v", a.Tenants)
	}
	for _, ta := range a.Tenants {
		var sum sim.Duration
		for _, st := range ta.Stages {
			sum += st.Total
		}
		if sum != ta.TotalLatency {
			t.Errorf("%s: stage totals %v != latency %v", ta.Tenant, sum, ta.TotalLatency)
		}
	}
	// Input order must not matter.
	rev := sample()
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if Attribute(rev).Table() != a.Table() {
		t.Fatal("attribution depends on input order")
	}
}

func TestOutliers(t *testing.T) {
	a := Attribute(sample())
	outs := a.Outliers(0.99, 2)
	if len(outs) != 2 {
		t.Fatalf("outliers = %+v", outs)
	}
	oa := outs[0]
	if oa.Tenant != "a" || len(oa.Exemplars) == 0 {
		t.Fatalf("tenant a outliers = %+v", oa)
	}
	top := oa.Exemplars[0]
	if top.TraceID != DeriveTraceID("a", 3) || top.Latency != 1000 {
		t.Fatalf("top exemplar = %+v", top)
	}
	if top.TopStage != StageExec || top.TopShare < 0.9 {
		t.Fatalf("dominant stage = %+v", top)
	}
	if !strings.Contains(OutlierReport(outs), "dominant execute") {
		t.Fatalf("report:\n%s", OutlierReport(outs))
	}
}

func TestFlightRecorderRingAndAutoDump(t *testing.T) {
	c := &trace.Collector{}
	c.Enable()
	fr := NewFlightRecorder(3)
	fr.Attach(c)
	defer fr.Detach(c)
	for i := 0; i < 5; i++ {
		c.InstantAt(sim.Time(i), "mos", "part0", "dispatch", nil)
	}
	c.InstantAt(99, "spm", "part0", "partition-quarantined", nil)
	dumps := fr.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d", len(dumps))
	}
	d := dumps[0]
	if d.Track != "part0" || d.Reason != "partition-quarantined" || d.At != 99 {
		t.Fatalf("dump = %+v", d)
	}
	// Ring cap 3: the two oldest dispatches were evicted; the dump holds
	// the last two dispatches plus the quarantine event itself.
	if len(d.Events) != 3 || d.Events[0].Start != 3 || d.Events[2].Name != "partition-quarantined" {
		t.Fatalf("dump events = %+v", d.Events)
	}
	if !strings.Contains(d.String(), "flight dump [part0]") {
		t.Fatalf("render:\n%s", d)
	}
}

func TestFlightRecorderDumpAllSorted(t *testing.T) {
	c := &trace.Collector{}
	c.Enable()
	fr := NewFlightRecorder(0)
	fr.Attach(c)
	defer fr.Detach(c)
	c.InstantAt(1, "mos", "zeta", "e", nil)
	c.InstantAt(2, "mos", "alpha", "e", nil)
	dumps := fr.DumpAll("invariant-violation", 50)
	if len(dumps) != 2 || dumps[0].Track != "alpha" || dumps[1].Track != "zeta" {
		t.Fatalf("dumps = %+v", dumps)
	}
	if got := len(fr.Dumps()); got != 2 {
		t.Fatalf("recorded dumps = %d", got)
	}
}
