// Flight recorder: a bounded per-track ring of the most recent trace events,
// kept cheap enough to run alongside chaos campaigns, and dumped when
// something goes wrong — automatically when supervision quarantines a
// partition, and on demand when a chaos invariant fails. The dump answers
// "what were the last things this partition did" without retaining the full
// event stream.
package otrace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cronus/internal/sim"
	"cronus/internal/trace"
)

// DefaultRingEvents bounds each track's ring when NewFlightRecorder is given
// a non-positive capacity.
const DefaultRingEvents = 128

// quarantineEvent is the supervision event name whose appearance triggers an
// automatic dump of the quarantined partition's ring (see
// internal/spm supervision instrumentation).
const quarantineEvent = "partition-quarantined"

// Dump is one captured ring: the track it watched, why and when it was cut,
// and the retained events oldest-first.
type Dump struct {
	Track  string
	Reason string
	At     sim.Time
	Events []trace.Event
}

// FlightRecorder taps a trace.Collector and retains the last N events per
// track. It is safe for concurrent use (the collector calls the tap under
// its own lock from whichever goroutine records).
type FlightRecorder struct {
	mu    sync.Mutex
	cap   int
	rings map[string][]trace.Event
	dumps []Dump
}

// NewFlightRecorder returns a recorder retaining up to perTrack events per
// track (DefaultRingEvents if perTrack <= 0).
func NewFlightRecorder(perTrack int) *FlightRecorder {
	if perTrack <= 0 {
		perTrack = DefaultRingEvents
	}
	return &FlightRecorder{cap: perTrack, rings: make(map[string][]trace.Event)}
}

// Attach installs the recorder as the collector's tap. Only one tap can be
// installed at a time; Detach before attaching another recorder.
func (fr *FlightRecorder) Attach(c *trace.Collector) { c.SetTap(fr.record) }

// Detach removes the recorder from the collector.
func (fr *FlightRecorder) Detach(c *trace.Collector) { c.SetTap(nil) }

// record is the tap: append to the track's ring, trim, and auto-dump on a
// quarantine event.
func (fr *FlightRecorder) record(e trace.Event) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	ring := append(fr.rings[e.Track], e)
	if len(ring) > fr.cap {
		ring = ring[len(ring)-fr.cap:]
	}
	fr.rings[e.Track] = ring
	if e.Name == quarantineEvent {
		fr.dumps = append(fr.dumps, Dump{
			Track: e.Track, Reason: quarantineEvent, At: e.Start,
			Events: append([]trace.Event(nil), ring...),
		})
	}
}

// DumpTrack cuts a dump of one track's current ring (for invariant-violation
// handlers). The dump is recorded and returned.
func (fr *FlightRecorder) DumpTrack(track, reason string, at sim.Time) Dump {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	d := Dump{Track: track, Reason: reason, At: at,
		Events: append([]trace.Event(nil), fr.rings[track]...)}
	fr.dumps = append(fr.dumps, d)
	return d
}

// DumpAll cuts a dump of every track's current ring, in sorted track order.
func (fr *FlightRecorder) DumpAll(reason string, at sim.Time) []Dump {
	fr.mu.Lock()
	tracks := make([]string, 0, len(fr.rings))
	for t := range fr.rings {
		tracks = append(tracks, t)
	}
	fr.mu.Unlock()
	sort.Strings(tracks)
	out := make([]Dump, 0, len(tracks))
	for _, t := range tracks {
		out = append(out, fr.DumpTrack(t, reason, at))
	}
	return out
}

// Dumps returns the dumps cut so far, in capture order.
func (fr *FlightRecorder) Dumps() []Dump {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]Dump, len(fr.dumps))
	copy(out, fr.dumps)
	return out
}

// String renders the dump as indented text, deterministic for identical
// inputs: newest events last, spans with duration and causal ids.
func (d Dump) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight dump [%s] at %v (%s), %d event(s):\n",
		d.Track, d.At, d.Reason, len(d.Events))
	for _, e := range d.Events {
		fmt.Fprintf(&b, "  %12v %-6s %s", e.Start, e.Cat, e.Name)
		if e.Dur > 0 {
			fmt.Fprintf(&b, " dur=%v", e.Dur)
		}
		if e.TraceID != 0 {
			fmt.Fprintf(&b, " trace=%#x", e.TraceID)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
