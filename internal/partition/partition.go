// Package partition reproduces CRONUS's automatic partitioning tool (§V-B):
// it takes a monolithic enclave program — a sequence of annotated
// device-level calls, as produced from manifest annotations — and splits it
// into per-device mEnclaves, converting every CUDA/VTA call into an
// mEnclave RPC and classifying each as streaming (async) or synchronizing
// from the device EDLs.
//
// The tool enforces the paper's precondition that automatic partitioning
// "requires no shared application state between mEnclaves": a buffer
// produced on one device and consumed on another must cross through an
// explicit transfer step, otherwise partitioning fails with a diagnosis.
package partition

import (
	"fmt"
	"sort"
	"strings"

	"cronus/internal/enclave"
	"cronus/internal/mos/driver"
)

// Step is one operation of the monolithic program.
type Step struct {
	// Device annotation: "cpu", "gpu" or "npu".
	Device string
	// Call is the device-level call name (e.g. driver.CallLaunch).
	Call string
	// Reads / Writes name the logical buffers the step touches.
	Reads  []string
	Writes []string
	// Transfer marks an explicit cross-device data movement: the step
	// reads buffers on one device and re-materializes them on its own.
	Transfer bool
}

// Program is a monolithic enclave: a single trusted binary mixing CPU
// compute with accelerator calls.
type Program struct {
	Name  string
	Steps []Step
}

// Placement is one mEnclave the partitioner creates.
type Placement struct {
	Device  string
	Name    string
	Calls   []string // the mECall surface this enclave needs
	EDLFile []byte
}

// PlannedStep is one routed step.
type PlannedStep struct {
	Step    Step
	Enclave string // placement name
	Async   bool   // streams under sRPC without waiting
}

// Plan is the partitioned program.
type Plan struct {
	Program    string
	Placements []Placement
	Steps      []PlannedStep
	// AsyncRatio is the fraction of accelerator calls that stream.
	AsyncRatio float64
}

// Error diagnoses a partitioning failure.
type Error struct {
	StepIndex int
	Reason    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("partition: step %d: %s", e.StepIndex, e.Reason)
}

// deviceEDL returns the mECall table for a device kind.
func deviceEDL(device string) (*enclave.EDL, []byte, error) {
	var raw []byte
	switch device {
	case "gpu":
		raw = driver.CUDAEDL()
	case "npu":
		raw = driver.NPUEDL()
	case "cpu":
		// CPU steps stay in the session enclave; calls are direct.
		return &enclave.EDL{Calls: map[string]enclave.MECallSpec{}}, nil, nil
	default:
		return nil, nil, fmt.Errorf("partition: unknown device %q", device)
	}
	edl, err := enclave.ParseEDL(raw)
	if err != nil {
		return nil, nil, err
	}
	return edl, raw, nil
}

// Partition splits the program. It returns the plan or a diagnosis of why
// the monolithic enclave cannot be automatically partitioned.
func Partition(prog *Program) (*Plan, error) {
	if len(prog.Steps) == 0 {
		return nil, fmt.Errorf("partition: empty program")
	}
	plan := &Plan{Program: prog.Name}
	placements := make(map[string]*Placement)
	edls := make(map[string]*enclave.EDL)

	// Track which device each buffer currently lives on.
	bufferHome := make(map[string]string)

	asyncCalls, accelCalls := 0, 0
	for i, s := range prog.Steps {
		edl, raw, err := deviceEDL(s.Device)
		if err != nil {
			return nil, &Error{StepIndex: i, Reason: err.Error()}
		}
		if s.Device != "cpu" {
			pl, ok := placements[s.Device]
			if !ok {
				pl = &Placement{
					Device:  s.Device,
					Name:    prog.Name + "/" + s.Device,
					EDLFile: raw,
				}
				placements[s.Device] = pl
				edls[s.Device] = edl
			}
			spec, ok := edl.Lookup(s.Call)
			if !ok {
				return nil, &Error{StepIndex: i,
					Reason: fmt.Sprintf("call %q is not in the %s mEnclave surface", s.Call, s.Device)}
			}
			if !contains(pl.Calls, s.Call) {
				pl.Calls = append(pl.Calls, s.Call)
			}
			accelCalls++
			if spec.Async {
				asyncCalls++
			}
			plan.Steps = append(plan.Steps, PlannedStep{Step: s, Enclave: pl.Name, Async: spec.Async})
		} else {
			plan.Steps = append(plan.Steps, PlannedStep{Step: s, Enclave: prog.Name + "/cpu", Async: false})
		}

		// Shared-state analysis: reads must find their buffers on this
		// device (or the step is an explicit transfer).
		for _, b := range s.Reads {
			home, known := bufferHome[b]
			if !known {
				return nil, &Error{StepIndex: i,
					Reason: fmt.Sprintf("buffer %q read before any write", b)}
			}
			if home != s.Device && !s.Transfer {
				return nil, &Error{StepIndex: i,
					Reason: fmt.Sprintf("buffer %q lives on %s but step runs on %s — implicit shared state; insert an explicit transfer",
						b, home, s.Device)}
			}
		}
		for _, b := range s.Writes {
			bufferHome[b] = s.Device
		}
	}
	names := make([]string, 0, len(placements))
	for n := range placements {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sort.Strings(placements[n].Calls)
		plan.Placements = append(plan.Placements, *placements[n])
	}
	if accelCalls > 0 {
		plan.AsyncRatio = float64(asyncCalls) / float64(accelCalls)
	}
	return plan, nil
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Summary renders the plan the way the tool reports it.
func (p *Plan) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %q partitioned into %d accelerator mEnclave(s) + the CPU session enclave\n",
		p.Program, len(p.Placements))
	for _, pl := range p.Placements {
		fmt.Fprintf(&b, "  mEnclave %-24s device=%-4s mECalls: %s\n",
			pl.Name, pl.Device, strings.Join(pl.Calls, ", "))
	}
	fmt.Fprintf(&b, "  %d steps; %.0f%% of accelerator calls stream asynchronously under sRPC\n",
		len(p.Steps), 100*p.AsyncRatio)
	return b.String()
}
