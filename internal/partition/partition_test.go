package partition

import (
	"errors"
	"strings"
	"testing"

	"cronus/internal/mos/driver"
)

// matmulProgram is the paper's running example (Figure 4): a monolithic
// enclave mixing CPU pre/post-processing with CUDA matrix computation.
func matmulProgram() *Program {
	return &Program{
		Name: "matadd",
		Steps: []Step{
			{Device: "cpu", Call: "decrypt_input", Writes: []string{"host_a", "host_b"}},
			{Device: "gpu", Call: driver.CallMemAlloc, Writes: []string{"dev_a"}},
			{Device: "gpu", Call: driver.CallMemAlloc, Writes: []string{"dev_b"}},
			{Device: "gpu", Call: driver.CallMemAlloc, Writes: []string{"dev_c"}},
			{Device: "gpu", Call: driver.CallHtoD, Reads: []string{"host_a"}, Writes: []string{"dev_a"}, Transfer: true},
			{Device: "gpu", Call: driver.CallHtoD, Reads: []string{"host_b"}, Writes: []string{"dev_b"}, Transfer: true},
			{Device: "gpu", Call: driver.CallLaunch, Reads: []string{"dev_a", "dev_b"}, Writes: []string{"dev_c"}},
			{Device: "gpu", Call: driver.CallDtoH, Reads: []string{"dev_c"}, Writes: []string{"host_c"}, Transfer: true},
			{Device: "cpu", Call: "encrypt_output", Reads: []string{"host_c"}},
		},
	}
}

func TestPartitionMatmulProgram(t *testing.T) {
	// Fix the cpu step's buffer home: host_c is written by DtoH on gpu
	// (transfer), so the read on cpu needs a transfer flag or a cpu-side
	// home. Mark the cpu read step as a transfer-consumer.
	prog := matmulProgram()
	prog.Steps[8].Transfer = true
	plan, err := Partition(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Placements) != 1 {
		t.Fatalf("placements = %d, want 1 (gpu)", len(plan.Placements))
	}
	pl := plan.Placements[0]
	if pl.Device != "gpu" {
		t.Fatalf("placement device %q", pl.Device)
	}
	for _, call := range []string{driver.CallMemAlloc, driver.CallHtoD, driver.CallLaunch, driver.CallDtoH} {
		found := false
		for _, c := range pl.Calls {
			if c == call {
				found = true
			}
		}
		if !found {
			t.Errorf("call %s missing from the mEnclave surface", call)
		}
	}
	// Launch and HtoD stream; DtoH and MemAlloc synchronize.
	for _, s := range plan.Steps {
		switch s.Step.Call {
		case driver.CallLaunch, driver.CallHtoD:
			if !s.Async {
				t.Errorf("%s should stream asynchronously", s.Step.Call)
			}
		case driver.CallDtoH, driver.CallMemAlloc:
			if s.Async {
				t.Errorf("%s should synchronize", s.Step.Call)
			}
		}
	}
	if plan.AsyncRatio < 0.4 {
		t.Errorf("async ratio %.2f too low", plan.AsyncRatio)
	}
	if !strings.Contains(plan.Summary(), "matadd") {
		t.Error("summary missing program name")
	}
}

func TestPartitionHeterogeneousProgram(t *testing.T) {
	prog := &Program{
		Name: "hetero",
		Steps: []Step{
			{Device: "cpu", Call: "prep", Writes: []string{"h"}},
			{Device: "gpu", Call: driver.CallHtoD, Reads: []string{"h"}, Writes: []string{"g"}, Transfer: true},
			{Device: "gpu", Call: driver.CallLaunch, Reads: []string{"g"}, Writes: []string{"g2"}},
			{Device: "gpu", Call: driver.CallDtoH, Reads: []string{"g2"}, Writes: []string{"h2"}, Transfer: true},
			{Device: "npu", Call: driver.CallVTAHtoD, Reads: []string{"h2"}, Writes: []string{"n"}, Transfer: true},
			{Device: "npu", Call: driver.CallVTARun, Reads: []string{"n"}, Writes: []string{"n2"}},
			{Device: "npu", Call: driver.CallVTADtoH, Reads: []string{"n2"}, Writes: []string{"out"}, Transfer: true},
		},
	}
	plan, err := Partition(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Placements) != 2 {
		t.Fatalf("placements = %d, want 2 (gpu + npu)", len(plan.Placements))
	}
	devices := map[string]bool{}
	for _, pl := range plan.Placements {
		devices[pl.Device] = true
	}
	if !devices["gpu"] || !devices["npu"] {
		t.Errorf("devices %v", devices)
	}
}

func TestPartitionRejectsImplicitSharedState(t *testing.T) {
	prog := &Program{
		Name: "leaky",
		Steps: []Step{
			{Device: "cpu", Call: "prep", Writes: []string{"buf"}},
			// GPU reads a CPU buffer with no explicit transfer: the
			// precondition "no shared application state" is violated.
			{Device: "gpu", Call: driver.CallLaunch, Reads: []string{"buf"}},
		},
	}
	_, err := Partition(prog)
	if err == nil || !strings.Contains(err.Error(), "shared state") {
		t.Fatalf("err = %v, want shared-state diagnosis", err)
	}
	var pe *Error
	if !errors.As(err, &pe) || pe.StepIndex != 1 {
		t.Fatalf("diagnosis step index wrong: %v", err)
	}
}

func TestPartitionRejectsUnknownCallAndDevice(t *testing.T) {
	_, err := Partition(&Program{Name: "bad", Steps: []Step{
		{Device: "gpu", Call: "cuBackdoor"},
	}})
	if err == nil || !strings.Contains(err.Error(), "not in the gpu mEnclave surface") {
		t.Fatalf("err = %v", err)
	}
	_, err = Partition(&Program{Name: "bad2", Steps: []Step{
		{Device: "fpga", Call: "x"},
	}})
	if err == nil || !strings.Contains(err.Error(), "unknown device") {
		t.Fatalf("err = %v", err)
	}
	if _, err := Partition(&Program{Name: "empty"}); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestPartitionRejectsReadBeforeWrite(t *testing.T) {
	_, err := Partition(&Program{Name: "uninit", Steps: []Step{
		{Device: "gpu", Call: driver.CallLaunch, Reads: []string{"ghost"}},
	}})
	if err == nil || !strings.Contains(err.Error(), "before any write") {
		t.Fatalf("err = %v", err)
	}
}
