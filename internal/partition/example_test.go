package partition_test

import (
	"fmt"

	"cronus/internal/mos/driver"
	"cronus/internal/partition"
)

// Partition the paper's monolithic matrix-add enclave (Figure 4) into a CPU
// part and a CUDA mEnclave, with every accelerator call converted to sRPC.
func ExamplePartition() {
	prog := &partition.Program{
		Name: "matadd",
		Steps: []partition.Step{
			{Device: "cpu", Call: "decrypt", Writes: []string{"host_in"}},
			{Device: "gpu", Call: driver.CallMemAlloc, Writes: []string{"dev_in"}},
			{Device: "gpu", Call: driver.CallHtoD, Reads: []string{"host_in"}, Writes: []string{"dev_in"}, Transfer: true},
			{Device: "gpu", Call: driver.CallLaunch, Reads: []string{"dev_in"}, Writes: []string{"dev_out"}},
			{Device: "gpu", Call: driver.CallDtoH, Reads: []string{"dev_out"}, Writes: []string{"host_out"}, Transfer: true},
			{Device: "cpu", Call: "encrypt", Reads: []string{"host_out"}, Transfer: true},
		},
	}
	plan, err := partition.Partition(prog)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(plan.Summary())
	// Output:
	// program "matadd" partitioned into 1 accelerator mEnclave(s) + the CPU session enclave
	//   mEnclave matadd/gpu               device=gpu  mECalls: cuLaunchKernel, cuMemAlloc, cuMemcpyDtoH, cuMemcpyHtoD
	//   6 steps; 50% of accelerator calls stream asynchronously under sRPC
}

// The shared-state analysis rejects implicit cross-device data flow.
func ExamplePartition_sharedState() {
	prog := &partition.Program{
		Name: "leaky",
		Steps: []partition.Step{
			{Device: "cpu", Call: "prep", Writes: []string{"buf"}},
			{Device: "gpu", Call: driver.CallLaunch, Reads: []string{"buf"}},
		},
	}
	_, err := partition.Partition(prog)
	fmt.Println(err)
	// Output:
	// partition: step 1: buffer "buf" lives on cpu but step runs on gpu — implicit shared state; insert an explicit transfer
}
