package srpc

import "cronus/internal/sim"

// callHook, when non-nil, observes every successful record push on every
// stream in the process. It exists solely for the chaos harness.
var callHook func(p *sim.Proc, c *Client, n uint64)

// SetCallHook installs (or, with nil, removes) a package-level observer that
// runs after each record push, on the pushing Proc, at the virtual instant
// the record became visible to the executor. n is the 1-based ordinal of the
// push on that client's stream, which is how the chaos harness implements
// "inject on the Nth sRPC call on stream S" triggers deterministically.
//
// Exactly one campaign may install the hook at a time, and it must be
// removed (SetCallHook(nil)) before another simulated platform runs, or the
// hook would observe — and possibly perturb — an unrelated run.
func SetCallHook(fn func(p *sim.Proc, c *Client, n uint64)) { callHook = fn }
