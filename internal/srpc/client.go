package srpc

import (
	"errors"
	"fmt"

	"cronus/internal/enclave"
	"cronus/internal/mos"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/trace"
	"cronus/internal/wire"
)

// Client is the caller-side (owner) end of one sRPC stream: it belongs to
// one calling thread of mE_A and streams mECalls to mE_B (§IV-C "to support
// multi-threading, CRONUS makes each thread create its own stream").
type Client struct {
	owner   *mos.Enclave
	peerEID uint32
	edl     *enclave.EDL
	tr      Transport

	ring     *ring
	streamID uint64
	track    string // precomputed trace track name ("stream-N")
	rid      uint64 // next free slot (producer index)
	calls    uint64 // records pushed on this stream (chaos hook ordinal)
	lastRec  uint64 // slot index of the most recently pushed record
	smem     uint64 // owner-side IPA of the region
	gid      int
	arena    *arena // zero-copy payload grant (nil until GrantArena)
	zcSeq    uint64 // fused-call ordinal, rotates arena slots
	closed   bool
	dead     bool

	costs *sim.CostModel
}

// Connect establishes a stream from the owner enclave to peer eid (§IV-C):
// ① local attestation of the peer (automatic, verified against want),
// ② trusted shared memory establishment through the SPM,
// ③ dCheck — the peer proves secret_dhke possession through the region,
// ④ executor thread creation in the peer's partition.
//
// secret is secret_dhke from the peer's creation (the owner created it);
// peerEDL is the mECall table from the manifest the owner supplied.
func Connect(p *sim.Proc, owner *mos.Enclave, peerEID uint32, secret []byte, peerEDL *enclave.EDL, want Expected, tr Transport, pages int) (*Client, error) {
	if pages < 2 {
		pages = DefaultPages
	}
	m := owner.MOS()
	costs := m.Costs

	// ① Local attestation via untrusted memory, MAC-verified through the
	// SPM's local seal key; binds identity, measurement and co-location.
	// Stream ids come from the transport so independently booted platforms
	// in one process cannot interleave each other's id sequences.
	streamID := tr.NextStreamID()
	track := fmt.Sprintf("stream-%d", streamID)
	defer trace.Default.Span(p, "srpc", track, "connect")()
	nonce := streamID*2654435761 + 12345
	p.Sleep(costs.UntrustedMsg)
	rep, mac, err := tr.LocalReport(p, peerEID, nonce)
	if err != nil {
		return nil, fmt.Errorf("srpc: local attestation failed: %w", err)
	}
	p.Sleep(costs.LocalAttest)
	if !m.SPM.LSK().Verify(rep, mac) {
		return nil, fmt.Errorf("srpc: local report not sealed by this machine's SPM")
	}
	if rep.EnclaveID != peerEID || rep.Nonce != nonce {
		return nil, fmt.Errorf("srpc: local report identity mismatch")
	}
	if rep.EnclaveHash != want.EnclaveHash {
		return nil, fmt.Errorf("srpc: peer enclave measurement mismatch (substituted mEnclave?)")
	}
	if rep.MOSHash != want.MOSHash {
		return nil, fmt.Errorf("srpc: peer mOS measurement mismatch (substituted mOS?)")
	}

	// ② Allocate smem in the owner's partition and share it with the
	// peer's partition through the SPM.
	ipa, err := owner.AllocShared(p, pages)
	if err != nil {
		return nil, err
	}
	peerPart, ok := m.SPM.Partition(spmPartID(peerEID))
	if !ok {
		return nil, fmt.Errorf("srpc: no partition for eid %#x", peerEID)
	}
	peerIPA, gid, err := m.SPM.Share(m.Part, ipa, pages, peerPart)
	if err != nil {
		return nil, err
	}
	owner.TrackGrant(gid)
	p.Sleep(sim.Duration(pages) * costs.MapPage)

	c := &Client{
		owner:    owner,
		peerEID:  peerEID,
		edl:      peerEDL,
		tr:       tr,
		ring:     newRing(owner.View(), ipa, pages),
		streamID: streamID,
		track:    track,
		smem:     ipa,
		gid:      gid,
		costs:    costs,
	}
	// Initialize the header.
	challenge := nonce ^ 0xdeadbeefcafef00d
	if err := c.ring.writeU64(p, offMagic, streamMagic); err != nil {
		return nil, translateFault(err)
	}
	if err := c.ring.writeU64(p, offChal, challenge); err != nil {
		return nil, translateFault(err)
	}

	// ③ Sealed setup request through the untrusted world + dCheck. The
	// establishment channels are bound to this stream's id so concurrent
	// per-thread streams (§IV-C) have independent replay windows. The
	// owner sends on the "owner->enclave" direction and receives on the
	// other — the mirror of the server's setupChannels.
	ownerTx, ownerRx := setupChannels(secret, streamID)
	req := wire.NewEncoder().U64(streamID).U64(peerIPA).U32(uint32(pages)).U64(challenge).Bytes()
	p.Sleep(costs.UntrustedMsg + costs.MACFixed)
	reply, err := tr.StreamSetup(p, peerEID, streamID, ownerTx.Seal(req))
	if err != nil {
		return nil, fmt.Errorf("srpc: stream setup failed: %w", err)
	}
	if _, err := ownerRx.Open(reply); err != nil {
		return nil, fmt.Errorf("srpc: setup reply rejected: %w", err)
	}
	status, err := c.ring.readU32(p, offDCheck)
	if err != nil {
		return nil, translateFault(err)
	}
	if status != 1 {
		return nil, fmt.Errorf("srpc: dCheck not performed")
	}
	gotMAC := make([]byte, 32)
	if err := c.ring.view.Read(p, c.ring.base+offDMAC, gotMAC); err != nil {
		return nil, translateFault(err)
	}
	wantMAC := dcheckMAC(secret, streamID, challenge)
	if !macEqual(gotMAC, wantMAC) {
		return nil, fmt.Errorf("srpc: dCheck failed — region not shared with the genuine peer")
	}

	// ④ The normal world creates the executor thread on demand.
	p.Sleep(costs.ThreadCreate)
	if err := tr.SpawnExecutor(p, peerEID, streamID); err != nil {
		return nil, fmt.Errorf("srpc: executor creation failed: %w", err)
	}
	mStreams.Inc()
	return c, nil
}

func macEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var diff byte
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}

func spmPartID(eid uint32) spm.PartitionID { return spm.PartitionID(eid >> 24) }

// teardown clears stream state: revokes the smem grant and marks the stream
// dead so subsequent calls fail fast instead of touching the ring.
func (c *Client) teardown() {
	if !c.dead {
		c.dead = true
		_ = c.owner.MOS().SPM.Unshare(c.gid)
		if c.arena != nil {
			_ = c.owner.MOS().SPM.Unshare(c.arena.gid)
		}
		dropNotifies(c.streamID)
	}
}

// markDead clears stream state after a peer failure (§IV-D: "CRONUS's sRPC
// automatically clears state when getting the signal").
func (c *Client) markDead() {
	if !c.dead {
		mPeerFailures.Inc()
		c.teardown()
	}
}

func (c *Client) fail(err error) error {
	err = translateFault(err)
	switch {
	case errors.Is(err, ErrPeerFailed):
		c.markDead()
	case errors.Is(err, ErrRingCorrupt):
		c.teardown() // counted as srpc.ring.corruptions by the detector
	}
	return err
}

// corruptf builds an ErrRingCorrupt-wrapped error for an owner-side
// consistency violation.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrRingCorrupt, fmt.Sprintf(format, args...))
}

// Call issues an mECall on the stream. Calls declared async in the EDL
// return immediately after enqueuing (no context switch, no wait);
// synchronous calls block until the executor publishes the result.
func (c *Client) Call(p *sim.Proc, name string, args []byte) ([]byte, error) {
	if c.closed {
		return nil, ErrStreamClosed
	}
	if c.dead {
		return nil, ErrPeerFailed
	}
	spec, ok := c.edl.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("srpc: mECall %q not in peer EDL", name)
	}
	if spec.Async {
		return nil, c.push(p, name, args, kindAsync, 0)
	}
	return c.CallSyncCap(p, name, args, 4096)
}

// CallSyncCap issues a synchronous mECall reserving respCap bytes for the
// result (use for large DtoH transfers).
func (c *Client) CallSyncCap(p *sim.Proc, name string, args []byte, respCap int) ([]byte, error) {
	if c.closed {
		return nil, ErrStreamClosed
	}
	if c.dead {
		return nil, ErrPeerFailed
	}
	if _, ok := c.edl.Lookup(name); !ok {
		return nil, fmt.Errorf("srpc: mECall %q not in peer EDL", name)
	}
	recSlot := c.rid
	if err := c.push(p, name, args, kindSync, respCap); err != nil {
		return nil, err
	}
	// Wait for the executor to pass the record (it publishes the result
	// before advancing Sid).
	mSyncWaits.Inc()
	if err := c.waitSidPast(p, c.rid); err != nil {
		return nil, c.fail(err)
	}
	if err := c.checkSticky(p); err != nil {
		return nil, err
	}
	out, err := c.ring.readSlots(p, recSlot, int(c.rid-recSlot)*SlotSize)
	if err != nil {
		return nil, c.fail(err)
	}
	d := wire.NewDecoder(out)
	if status := d.U32(); status != 0 {
		return nil, fmt.Errorf("srpc: mECall %q failed: %s", name, d.Str())
	}
	res := d.Blob()
	return res, d.Err()
}

// push serializes and enqueues one record, with slot-level flow control.
func (c *Client) push(p *sim.Proc, name string, args []byte, kind uint32, respCap int) error {
	payload := wire.NewEncoder().Str(name).Blob(args).Bytes()
	body := recHdrSize + len(payload)
	if respCap+8 > len(payload) {
		body = recHdrSize + respCap + 8
	}
	slots := slotsFor(body)
	if slots > c.ring.slots {
		return fmt.Errorf("srpc: record of %d bytes exceeds ring capacity", body)
	}
	// Flow control: wait until the ring has room. Same read grid as the
	// polling loop it replaced — immediately, then every quantum — with a
	// doorbell park instead of per-quantum timer events.
	first := p.Now()
	var db *doorbell
	for {
		sid, err := c.ring.readU64(p, offSid)
		if err != nil {
			if db != nil {
				db.disarm()
			}
			return c.fail(err)
		}
		if sid > c.rid {
			// The consumer can never pass the producer; either the Sid
			// word was corrupted or the executor poisoned it after
			// detecting corruption on its side. Without this check a
			// poisoned Sid underflows the occupancy computation below and
			// the pusher waits forever.
			if db != nil {
				db.disarm()
			}
			return c.fail(corruptf("consumer index %d ahead of producer %d", sid, c.rid))
		}
		if c.rid+slots-sid <= c.ring.slots {
			if db != nil {
				db.disarm()
			}
			// Fused records are pushed from parallel shards; a last-writer
			// gauge there would make snapshots depend on host scheduling.
			if kind != kindNotify {
				gRingOcc.Set(int64(c.rid + slots - sid))
			}
			break
		}
		if db == nil {
			db = c.ring.armDoorbell(p.Kernel(), [2]uint64{offSid, 8})
		}
		if db == nil {
			mDoorbellFallback.Inc()
			p.Sleep(pollQuantum)
			continue
		}
		alignedWait(p, db, first, pollQuantum, p.Now())
	}
	rec := wire.NewEncoder().U32(uint32(len(payload))).U32(kind).U32(uint32(slots)).U32(uint32(respCap))
	full := append(rec.Bytes(), payload...)
	// Bulk payloads are produced directly into the trusted shared region
	// (zero-copy staging, §IV-C); only the record metadata is copied by
	// the sRPC layer itself.
	meta := len(full)
	if meta > 256 {
		meta = 256
	}
	p.Sleep(c.costs.RingPush + c.costs.Memcpy(meta))
	if err := c.ring.writeSlots(p, c.rid, full); err != nil {
		return c.fail(err)
	}
	c.lastRec = c.rid
	c.rid += slots
	if err := c.ring.writeU64(p, offRid, c.rid); err != nil {
		return c.fail(err)
	}
	// Propagate the caller's span context to the executor that will consume
	// this record — the simulated analogue of a trace-context header,
	// carried out-of-band so ring layout and virtual-time costs are
	// untouched (see trace.PutFlow).
	if trace.Default.Enabled() {
		if tid, sid := p.TraceCtx(); tid != 0 {
			trace.Default.PutFlow(c.streamID, c.lastRec, trace.SpanCtx{Trace: tid, Span: sid})
		}
	}
	mCalls.Inc()
	mBytesMoved.Add(uint64(len(full)))
	c.calls++
	if callHook != nil {
		callHook(p, c, c.calls)
	}
	return nil
}

// waitSidPast blocks until the executor advances Sid past target. It models
// the polling loop it replaced — first read RingPoll after entry, then one
// read every RingPoll+pollQuantum — but parks on a doorbell between reads
// instead of scheduling a timer event per quantum; alignedWait restores the
// grid instant before each re-read, so the observed Sid values, faults, and
// the return instant are identical to polling.
func (c *Client) waitSidPast(p *sim.Proc, target uint64) error {
	defer trace.Default.Span(p, "srpc", c.track, "sync-wait")()
	first := p.Now() + sim.Time(c.costs.RingPoll)
	period := c.costs.RingPoll + pollQuantum
	var db *doorbell
	defer func() {
		if db != nil {
			db.disarm()
		}
	}()
	p.Sleep(c.costs.RingPoll)
	for {
		sid, err := c.ring.readU64(p, offSid)
		if err != nil {
			return err
		}
		if sid > c.rid {
			// Poisoned or corrupted consumer index (see push). Surfacing
			// this as ErrRingCorrupt — not a satisfied wait — is what lets
			// a caller blocked in a synchronous mECall escape when the
			// executor aborts on a corrupt record.
			return corruptf("consumer index %d ahead of producer %d", sid, c.rid)
		}
		if sid >= target {
			return nil
		}
		if db == nil {
			db = c.ring.armDoorbell(p.Kernel(), [2]uint64{offSid, 8})
		}
		if db == nil {
			// Header word not mapped (teardown in progress): keep the
			// plain polling cadence; the next read faults.
			mDoorbellFallback.Inc()
			p.Sleep(period)
			continue
		}
		alignedWait(p, db, first, period, p.Now())
	}
}

func (c *Client) checkSticky(p *sim.Proc) error {
	sticky, err := c.ring.readU32(p, offSticky)
	if err != nil {
		return c.fail(err)
	}
	if sticky == stickyNone {
		return nil
	}
	n, err := c.ring.readU32(p, offErrLen)
	if err != nil {
		return c.fail(err)
	}
	if n > maxErrMsg {
		n = maxErrMsg
	}
	msg := make([]byte, n)
	if err := c.ring.view.Read(p, c.ring.base+offErrMsg, msg); err != nil {
		return c.fail(err)
	}
	if sticky == stickyCorrupt {
		// The executor aborted on a corrupt record; the stream is
		// unusable. Do not clear the word — every later caller must see
		// the same terminal condition.
		return c.fail(corruptf("executor aborted: %s", msg))
	}
	_ = c.ring.writeU32(p, offSticky, stickyNone) // consumed
	return fmt.Errorf("srpc: asynchronous mECall failed: %s", msg)
}

// Barrier is streamCheck (§IV-C): it blocks until every enqueued record has
// executed (Sid == Rid) and surfaces any sticky asynchronous error.
func (c *Client) Barrier(p *sim.Proc) error {
	if c.closed {
		return ErrStreamClosed
	}
	if c.dead {
		return ErrPeerFailed
	}
	mSyncWaits.Inc()
	if err := c.waitSidPast(p, c.rid); err != nil {
		return c.fail(err)
	}
	return c.checkSticky(p)
}

// Close drains the stream, signals the executor to stop, and releases the
// shared region.
func (c *Client) Close(p *sim.Proc) error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.dead {
		return nil
	}
	if err := c.waitSidPast(p, c.rid); err != nil {
		c.markDead()
		return nil // peer already gone; state cleared
	}
	_ = c.ring.writeU32(p, offClosed, 1)
	_ = c.owner.MOS().SPM.Unshare(c.gid)
	if c.arena != nil {
		_ = c.owner.MOS().SPM.Unshare(c.arena.gid)
	}
	dropNotifies(c.streamID)
	c.dead = true
	return nil
}

// Dead reports whether the stream was torn down by a peer failure.
func (c *Client) Dead() bool { return c.dead }

// StreamID returns the transport-minted id of this stream (deterministic
// 1,2,3,… per platform); chaos fault triggers are keyed on it.
func (c *Client) StreamID() uint64 { return c.streamID }

// Abandon tears the owner side of the stream down without draining the ring
// or signalling the executor: the grant is revoked and the client marked
// closed. It is the recovery action after a timed-out or corrupted stream —
// the executor, if still alive, faults on its next ring access and exits.
// Abandon is idempotent and never blocks.
func (c *Client) Abandon() {
	if c.closed {
		return
	}
	c.closed = true
	c.teardown()
}

// InjectRingCorruption XORs the ring header's producer index (Rid) with
// mask, modelling a flipped word in the trusted shared region. It exists for
// the chaos harness (internal/chaos): the executor must detect the
// inconsistent header on its next read and surface ErrRingCorrupt — by
// poisoning Sid and publishing a sticky corrupt code — rather than misparse.
func (c *Client) InjectRingCorruption(p *sim.Proc, mask uint64) error {
	if c.closed || c.dead {
		return ErrStreamClosed
	}
	v, err := c.ring.readU64(p, offRid)
	if err != nil {
		return c.fail(err)
	}
	if err := c.ring.writeU64(p, offRid, v^mask); err != nil {
		return c.fail(err)
	}
	return nil
}

// InjectRecordCorruption XORs the slots word in the header of the most
// recently pushed record, in place in the ring. Unlike a Rid flip — which
// the owner's next push rewrites with a clean value — a record header is
// written exactly once, so the corruption reliably reaches the executor
// whenever it has not yet consumed the record. The executor's framing
// validation (recordSlots) must reject it and abort the stream with
// ErrRingCorrupt semantics.
func (c *Client) InjectRecordCorruption(p *sim.Proc, mask uint32) error {
	if c.closed || c.dead {
		return ErrStreamClosed
	}
	if mask == 0 {
		mask = 1
	}
	addr := c.ring.slotAddr(c.lastRec) - c.ring.base + 8 // slots word
	v, err := c.ring.readU32(p, addr)
	if err != nil {
		return c.fail(err)
	}
	if err := c.ring.writeU32(p, addr, v^mask); err != nil {
		return c.fail(err)
	}
	return nil
}
