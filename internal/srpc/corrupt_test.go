package srpc_test

import (
	"errors"
	"testing"

	"cronus/internal/mos/driver"
	"cronus/internal/sim"
	"cronus/internal/srpc"
)

// TestRingCorruptionTypedError is the ISSUE 4 regression test for the ring
// header trusting seq/len words unconditionally: a corrupted producer index
// must surface as the typed ErrRingCorrupt on the owner — even for a caller
// already blocked in a synchronous wait — never as a misparse or a hang.
//
// The corruption is injected through the chaos call hook exactly the way the
// chaos harness does it: after the Nth push on the stream, while the caller
// is about to enter its sync wait. The executor observes the out-of-window
// producer index, aborts, publishes the sticky corrupt code and poisons Sid;
// the blocked caller escapes through the poisoned doorbell with the typed
// error.
func TestRingCorruptionTypedError(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		defer srpc.SetCallHook(nil)
		injected := false
		srpc.SetCallHook(func(hp *sim.Proc, hc *srpc.Client, n uint64) {
			if hc.StreamID() == c.StreamID() && n == 3 {
				injected = true
				_ = hc.InjectRingCorruption(hp, 1<<63)
			}
		})

		ptr := func(n uint64) uint64 {
			res, err := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(n))
			if err != nil {
				t.Fatal(err)
			}
			v, _ := driver.DecodePtr(res)
			return v
		}
		a := ptr(64) // call 1 (sync)
		if _, err := c.Call(p, driver.CallHtoD, driver.EncodeHtoD(a, make([]byte, 64))); err != nil {
			return err // call 2 (async)
		}
		// Call 3 is synchronous: the hook corrupts Rid right after its
		// record is pushed, so this caller blocks on a stream nobody will
		// legitimately advance again.
		_, err = c.Call(p, driver.CallDtoH, driver.EncodeDtoH(a, 64))
		if !injected {
			t.Fatal("corruption hook never fired")
		}
		if err == nil {
			t.Fatal("sync call on corrupted ring succeeded; want ErrRingCorrupt")
		}
		if !errors.Is(err, srpc.ErrRingCorrupt) {
			t.Fatalf("sync call error = %v; want ErrRingCorrupt", err)
		}
		if !c.Dead() {
			t.Error("stream not marked dead after corruption")
		}

		// Recovery is re-establishment: a fresh stream to the same enclave
		// works (the executor cleaned its stream state up when it aborted).
		c2, err := h.connect(p)
		if err != nil {
			return err
		}
		if _, err := c2.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(16)); err != nil {
			t.Fatalf("fresh stream after corruption: %v", err)
		}
		return c2.Close(p)
	})
}

// TestRingCorruptionFlowControl: a pusher parked in flow control (ring full)
// must also escape with the typed error when the executor poisons Sid —
// the poisoned index would otherwise underflow the occupancy computation
// and park the pusher forever.
func TestRingCorruptionFlowControl(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		defer srpc.SetCallHook(nil)
		srpc.SetCallHook(func(hp *sim.Proc, hc *srpc.Client, n uint64) {
			if hc.StreamID() == c.StreamID() && n == 2 {
				// Corrupt the record header in place: the executor's
				// framing validation must reject it when it drains this
				// far, long after the owner has moved on to later pushes.
				_ = hc.InjectRecordCorruption(hp, 0x10)
			}
		})
		res, err := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(1<<16))
		if err != nil {
			return err
		}
		dst, _ := driver.DecodePtr(res)
		// Stream large uploads until either a push observes the poisoned
		// Sid in flow control or a sync call surfaces the sticky code.
		var lastErr error
		for i := 0; i < 64 && lastErr == nil; i++ {
			_, lastErr = c.Call(p, driver.CallHtoD, driver.EncodeHtoD(dst, make([]byte, 16<<10)))
		}
		if lastErr == nil {
			lastErr = c.Barrier(p)
		}
		if lastErr == nil {
			t.Fatal("no error surfaced after ring corruption")
		}
		if !errors.Is(lastErr, srpc.ErrRingCorrupt) {
			t.Fatalf("error = %v; want ErrRingCorrupt", lastErr)
		}
		return nil
	})
}

// TestAbandonIdempotent: Abandon never blocks, is idempotent, and leaves the
// client returning fast errors instead of touching the ring.
func TestAbandonIdempotent(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		if _, err := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(16)); err != nil {
			return err
		}
		c.Abandon()
		c.Abandon()
		if !c.Dead() {
			t.Error("abandoned stream not dead")
		}
		if _, err := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(16)); err == nil {
			t.Error("call on abandoned stream succeeded")
		}
		return nil
	})
}
