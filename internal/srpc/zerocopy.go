package srpc

// Zero-copy payload grants and fused execution records (the sRPC data-plane
// optimization of the sharded serving path).
//
// The classic streamed path moves every bulk payload through the ring: the
// owner pays RingPush + a bounded memcpy per record, and a batched inference
// costs three records (HtoD, Launch, Barrier) with a synchronous wait on the
// last. With a payload *arena* — a second trusted shared region granted next
// to the ring — the owner stages bulk bytes in place through its span-checked
// view (the PR 2 TLB caches the walk; the TZASC verdict rides on the physical
// access), then pushes ONE small fused record describing where the payload
// sits and which two mECalls to run. The executor span-checks the arena
// range, reads the payload in place, runs the copy call and the exec call
// back to back, and reports completion through a registered callback — no
// synchronous wait, no barrier record, no ring copy of the payload. The only
// virtual time charged for payload movement is the span permission check;
// the device DMA itself is still charged by the driver, exactly as before.
//
// Completion callbacks run in the executor's process context, possibly on a
// different kernel shard than the submitter. They must not block; sending on
// a sim.Port, firing a Signal or waking a condition are the intended uses.

import (
	"fmt"
	"sync"

	"cronus/internal/hw"
	"cronus/internal/sim"
	"cronus/internal/wire"
)

// ZCExecName is the pseudo-mECall name carried by fused records. It is
// intercepted by the executor before EDL dispatch, so it never appears in
// any enclave's EDL.
const ZCExecName = "__zc_exec"

// maxZCBytes bounds a fused record's declared payload length before the
// executor allocates a staging buffer for it (sanity limit, not a protocol
// constant: arenas are far smaller in practice).
const maxZCBytes = 1 << 24

// NotifyFn is a fused-record completion callback: the executor invokes it
// inline after the record's calls finish, with the first failing call's
// error (nil on success). p is the executor's process — callbacks may use it
// to send on ports or fire signals, but must not block or sleep.
type NotifyFn func(p *sim.Proc, err error)

type notifyKey struct{ stream, slot uint64 }

// notifyReg maps in-flight fused records to their completion callbacks,
// keyed by (stream id, record slot). A process-global registry — like the
// tracer's flow map — keeps the ring layout and virtual-time costs
// untouched; the mutex makes registration from submitter shards and
// consumption from executor shards race-free during parallel windows.
var (
	notifyMu  sync.Mutex
	notifyReg = map[notifyKey]NotifyFn{}
)

func putNotify(stream, slot uint64, fn NotifyFn) {
	notifyMu.Lock()
	notifyReg[notifyKey{stream, slot}] = fn
	notifyMu.Unlock()
}

func takeNotify(stream, slot uint64) (NotifyFn, bool) {
	notifyMu.Lock()
	k := notifyKey{stream, slot}
	fn, ok := notifyReg[k]
	if ok {
		delete(notifyReg, k)
	}
	notifyMu.Unlock()
	return fn, ok
}

// dropNotifies removes every registered callback of one stream without
// invoking it — teardown path. In-flight work lost to a peer failure is
// re-driven by the layer above (the serving plane's failover), which owns
// the authoritative in-flight set; firing half-dead callbacks here would
// race with that recovery.
func dropNotifies(stream uint64) {
	notifyMu.Lock()
	for k := range notifyReg {
		if k.stream == stream {
			delete(notifyReg, k)
		}
	}
	notifyMu.Unlock()
}

// arena is the owner side of a zero-copy payload grant: a second shared
// region, granted to the same peer as the ring, whose pages hold bulk
// payloads in place. It is carved into one payload slot per ring slot so
// the ring's own flow control doubles as arena reclamation (see CallZC).
type arena struct {
	base      uint64 // owner-side IPA
	peerIPA   uint64 // callee-side IPA
	pages     int
	gid       int
	slotBytes uint64 // payload capacity of one arena slot
	nslots    uint64 // == ring slot count
}

// GrantArena allocates a payload arena sized for fused calls carrying up to
// payloadCap bytes each and shares it with the stream's peer partition. Must
// be called once, after Connect, before any CallZC. The arena holds one
// payload slot per ring slot, which is what makes slot rotation in CallZC
// safe without any extra synchronization. The grant is tracked on the owning
// enclave and revoked with the stream.
func (c *Client) GrantArena(p *sim.Proc, payloadCap int) error {
	if c.closed {
		return ErrStreamClosed
	}
	if c.dead {
		return ErrPeerFailed
	}
	if c.arena != nil {
		return fmt.Errorf("srpc: stream %d already has an arena", c.streamID)
	}
	if payloadCap < 1 {
		return fmt.Errorf("srpc: arena payload capacity must be positive")
	}
	nslots := c.ring.slots
	slotBytes := (uint64(payloadCap) + 63) &^ 63 // cache-line rounded
	npages := int((nslots*slotBytes + hw.PageSize - 1) / hw.PageSize)
	m := c.owner.MOS()
	ipa, err := c.owner.AllocShared(p, npages)
	if err != nil {
		return err
	}
	peerPart, ok := m.SPM.Partition(spmPartID(c.peerEID))
	if !ok {
		return fmt.Errorf("srpc: no partition for eid %#x", c.peerEID)
	}
	peerIPA, gid, err := m.SPM.Share(m.Part, ipa, npages, peerPart)
	if err != nil {
		return err
	}
	c.owner.TrackGrant(gid)
	p.Sleep(sim.Duration(npages) * c.costs.MapPage)
	c.arena = &arena{base: ipa, peerIPA: peerIPA, pages: npages, gid: gid, slotBytes: slotBytes, nslots: nslots}
	return nil
}

// ArenaSize returns the granted arena's capacity in bytes (0 when no arena).
func (c *Client) ArenaSize() uint64 {
	if c.arena == nil {
		return 0
	}
	return uint64(c.arena.pages) * hw.PageSize
}

// ArenaWrite stages payload bytes at off in the arena. The bytes land in the
// trusted shared region through the owner's view — no ring copy — so the
// virtual time charged is only the span permission check.
func (c *Client) ArenaWrite(p *sim.Proc, off uint64, data []byte) error {
	if c.closed {
		return ErrStreamClosed
	}
	if c.dead {
		return ErrPeerFailed
	}
	if c.arena == nil {
		return fmt.Errorf("srpc: stream %d has no arena", c.streamID)
	}
	if off+uint64(len(data)) > c.ArenaSize() {
		return fmt.Errorf("srpc: arena write [%d,%d) exceeds %d-byte arena", off, off+uint64(len(data)), c.ArenaSize())
	}
	p.Sleep(c.costs.SpanCheck)
	if err := c.ring.view.Write(p, c.arena.base+off, data); err != nil {
		return c.fail(err)
	}
	mArenaBytes.Add(uint64(len(data)))
	return nil
}

// ZCRequest describes one fused zero-copy invocation: the payload bytes to
// stage, the mECall that consumes them (invoked with wire(U64 Dst, Blob
// payload) arguments — the cuMemcpyHtoD framing), and the follow-up exec
// mECall with caller-encoded arguments.
type ZCRequest struct {
	Payload  []byte // staged in the arena; at most GrantArena's payloadCap
	CopyCall string // payload-consuming mECall (e.g. cuMemcpyHtoD)
	Dst      uint64 // destination pointer passed to CopyCall
	ExecCall string // follow-up mECall (e.g. cuLaunchKernel)
	ExecArgs []byte // pre-encoded arguments for ExecCall
}

// CallZC stages the payload in the arena and pushes one fused record:
// CopyCall on the payload, then ExecCall, with completion (or the first
// error) delivered through notify. It returns after the push — there is no
// synchronous wait and no barrier record; callers needing back-pressure
// count outstanding notifications.
//
// Arena slots rotate with each call. Reuse is safe with no extra handshake
// because the arena has one payload slot per ring slot and every fused
// record occupies at least one ring slot: by the time slot k is reused,
// nslots fused records have been pushed since it was written, and push's
// flow control guarantees the executor consumed — payload read included —
// every record more than one ring of slots behind the producer index.
func (c *Client) CallZC(p *sim.Proc, req ZCRequest, notify NotifyFn) error {
	if c.closed {
		return ErrStreamClosed
	}
	if c.dead {
		return ErrPeerFailed
	}
	if c.arena == nil {
		return fmt.Errorf("srpc: stream %d has no arena", c.streamID)
	}
	if uint64(len(req.Payload)) > c.arena.slotBytes {
		return fmt.Errorf("srpc: fused payload of %d bytes exceeds %d-byte arena slot", len(req.Payload), c.arena.slotBytes)
	}
	if _, ok := c.edl.Lookup(req.CopyCall); !ok {
		return fmt.Errorf("srpc: mECall %q not in peer EDL", req.CopyCall)
	}
	if _, ok := c.edl.Lookup(req.ExecCall); !ok {
		return fmt.Errorf("srpc: mECall %q not in peer EDL", req.ExecCall)
	}
	off := (c.zcSeq % c.arena.nslots) * c.arena.slotBytes
	c.zcSeq++
	if err := c.ArenaWrite(p, off, req.Payload); err != nil {
		return err
	}
	args := wire.NewEncoder().
		U64(c.arena.peerIPA).U64(off).U64(uint64(len(req.Payload))).
		Str(req.CopyCall).U64(req.Dst).
		Str(req.ExecCall).Blob(req.ExecArgs).Bytes()
	slot := c.rid
	if notify != nil {
		putNotify(c.streamID, slot, notify)
	}
	if err := c.push(p, ZCExecName, args, kindNotify, 0); err != nil {
		if notify != nil {
			takeNotify(c.streamID, slot)
		}
		return err
	}
	mZCCalls.Inc()
	return nil
}

// execZC is the executor-side half of CallZC: span-check and read the arena
// payload in place, then run the two mECalls back to back in the executor's
// enclave context.
func (s *Server) execZC(p *sim.Proc, name string, args []byte) error {
	if name != ZCExecName {
		return fmt.Errorf("srpc: unexpected fused record %q", name)
	}
	d := wire.NewDecoder(args)
	arenaIPA := d.U64()
	off := d.U64()
	n := d.U64()
	copyCall := d.Str()
	dst := d.U64()
	execCall := d.Str()
	execArgs := d.Blob()
	if err := d.Err(); err != nil {
		return err
	}
	if n > maxZCBytes {
		return fmt.Errorf("srpc: fused payload of %d bytes exceeds sanity limit", n)
	}
	costs := s.enc.MOS().Costs
	// The arena pages are already mapped in this partition: the only
	// virtual time the payload handoff costs is the span permission check.
	// The view read underneath still performs the real TZASC + stage-2
	// checks, so a revoked grant faults exactly as the ring would.
	p.Sleep(costs.SpanCheck)
	payload := make([]byte, n)
	if err := s.enc.View().Read(p, arenaIPA+off, payload); err != nil {
		return translateFault(err)
	}
	if _, err := s.enc.InvokeStreamed(p, copyCall, wire.NewEncoder().U64(dst).Blob(payload).Bytes()); err != nil {
		return err
	}
	_, err := s.enc.InvokeStreamed(p, execCall, execArgs)
	return err
}
