package srpc_test

import (
	"testing"

	"cronus/internal/metrics"
	"cronus/internal/mos/driver"
	"cronus/internal/sim"
	"cronus/internal/testrig"
)

// BenchmarkSRPCSyncCall measures host time per synchronous mECall round trip
// (push + doorbell wait + result read) on an established stream — the path
// dominated by the ring-wait mechanics this package optimizes.
func BenchmarkSRPCSyncCall(b *testing.B) {
	b.ReportAllocs()
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		h, err := setup(p, rig)
		if err != nil {
			return err
		}
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		args := driver.EncodeMemAlloc(4096)
		if _, err := c.Call(p, driver.CallMemAlloc, args); err != nil {
			return err
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Call(p, driver.CallMemAlloc, args); err != nil {
				return err
			}
		}
		b.StopTimer()
		return c.Close(p)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// TestSyncCallEventBudget is the event-efficiency regression guard: with the
// doorbell waits in place, a synchronous mECall must cost a bounded number of
// simulator events regardless of how long the executor takes. The polling
// implementation this replaced burned ~33 events per call on this workload
// (two timer events per 480 ns quantum); the doorbell version needs ~8. The
// bound sits between the two so a regression to per-quantum polling fails.
func TestSyncCallEventBudget(t *testing.T) {
	const calls = 100
	metrics.Default.Reset()
	metrics.Default.Enable()
	defer metrics.Default.Disable()
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		h, err := setup(p, rig)
		if err != nil {
			return err
		}
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		args := driver.EncodeMemAlloc(4096)
		if _, err := c.Call(p, driver.CallMemAlloc, args); err != nil {
			return err
		}
		pre := metrics.Default.Snapshot()
		for i := 0; i < calls; i++ {
			if _, err := c.Call(p, driver.CallMemAlloc, args); err != nil {
				return err
			}
		}
		post := metrics.Default.Snapshot()
		perCall := post.CounterDelta(pre, "sim.events.dispatched") / calls
		if perCall > 16 {
			t.Errorf("sync call costs %d dispatched events; the doorbell wait should need at most 16", perCall)
		}
		return c.Close(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}
