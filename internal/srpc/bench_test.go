package srpc_test

import (
	"fmt"
	"testing"

	"cronus/internal/gpu"
	"cronus/internal/metrics"
	"cronus/internal/mos/driver"
	"cronus/internal/sim"
	"cronus/internal/srpc"
	"cronus/internal/testrig"
)

// BenchmarkSRPCSyncCall measures host time per synchronous mECall round trip
// (push + doorbell wait + result read) on an established stream — the path
// dominated by the ring-wait mechanics this package optimizes.
func BenchmarkSRPCSyncCall(b *testing.B) {
	b.ReportAllocs()
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		h, err := setup(p, rig)
		if err != nil {
			return err
		}
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		args := driver.EncodeMemAlloc(4096)
		if _, err := c.Call(p, driver.CallMemAlloc, args); err != nil {
			return err
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Call(p, driver.CallMemAlloc, args); err != nil {
				return err
			}
		}
		b.StopTimer()
		return c.Close(p)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// TestSyncCallEventBudget is the event-efficiency regression guard: with the
// doorbell waits in place, a synchronous mECall must cost a bounded number of
// simulator events regardless of how long the executor takes. The polling
// implementation this replaced burned ~33 events per call on this workload
// (two timer events per 480 ns quantum); the doorbell version needs ~8. The
// bound sits between the two so a regression to per-quantum polling fails.
func TestSyncCallEventBudget(t *testing.T) {
	const calls = 100
	metrics.Default.Reset()
	metrics.Default.Enable()
	defer metrics.Default.Disable()
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		h, err := setup(p, rig)
		if err != nil {
			return err
		}
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		args := driver.EncodeMemAlloc(4096)
		if _, err := c.Call(p, driver.CallMemAlloc, args); err != nil {
			return err
		}
		pre := metrics.Default.Snapshot()
		for i := 0; i < calls; i++ {
			if _, err := c.Call(p, driver.CallMemAlloc, args); err != nil {
				return err
			}
		}
		post := metrics.Default.Snapshot()
		perCall := post.CounterDelta(pre, "sim.events.dispatched") / calls
		if perCall > 16 {
			t.Errorf("sync call costs %d dispatched events; the doorbell wait should need at most 16", perCall)
		}
		return c.Close(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// BenchmarkSrpcMultiRing measures host time per fused zero-copy call when
// the load is spread over parallel rings to one enclave. One ring serializes
// every record behind a single executor and doorbell; with several rings,
// independent submitter/executor pairs never touch each other's header
// words. Host ns/op is the tracked number (exported to BENCH_hotpath.json).
func BenchmarkSrpcMultiRing(b *testing.B) {
	for _, rings := range []int{1, 4} {
		rings := rings
		b.Run(fmt.Sprintf("rings=%d", rings), func(b *testing.B) {
			err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
				h, err := setup(p, rig)
				if err != nil {
					return err
				}
				clients := make([]*srpc.Client, rings)
				dsts := make([]uint64, rings)
				for i := range clients {
					c, err := h.connect(p)
					if err != nil {
						return err
					}
					if err := c.GrantArena(p, 1024); err != nil {
						return err
					}
					res, err := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(4096))
					if err != nil {
						return err
					}
					dsts[i], _ = driver.DecodePtr(res)
					clients[i] = c
				}
				payload := make([]byte, 1024)
				perRing := b.N/rings + 1
				done := sim.NewSignal(p.Kernel())
				remaining := rings
				b.ResetTimer()
				for i := range clients {
					c, dst := clients[i], dsts[i]
					p.Kernel().Spawn(fmt.Sprintf("pusher-%d", i), func(q *sim.Proc) {
						launch := driver.EncodeLaunch("saxpy", gpu.Dim{16, 1, 1}, dst, dst, 2)
						for n := 0; n < perRing; n++ {
							if err := c.CallZC(q, srpc.ZCRequest{
								Payload: payload, CopyCall: driver.CallHtoD, Dst: dst,
								ExecCall: driver.CallLaunch, ExecArgs: launch,
							}, nil); err != nil {
								b.Error(err)
								break
							}
						}
						if err := c.Barrier(q); err != nil {
							b.Error(err)
						}
						remaining--
						if remaining == 0 {
							done.Fire()
						}
					})
				}
				done.Wait(p)
				b.StopTimer()
				for _, c := range clients {
					if err := c.Close(p); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
