package srpc

import "cronus/internal/metrics"

// Stream accounting lives in the process-wide registry rather than on the
// Client so experiments read aggregates from one snapshot and the hot paths
// stay branch-plus-atomic when metrics are disabled. Names never embed the
// stream id — ids keep incrementing across runs in one process and would
// break snapshot determinism.
var (
	mCalls        = metrics.Default.Counter("srpc.calls")
	mSyncWaits    = metrics.Default.Counter("srpc.sync_waits")
	mBytesMoved   = metrics.Default.Counter("srpc.bytes_moved")
	mStreams      = metrics.Default.Counter("srpc.streams.opened")
	mPeerFailures = metrics.Default.Counter("srpc.streams.peer_failures")
	gRingOcc      = metrics.Default.Gauge("srpc.ring.occupancy_slots")
	// mDoorbellFallback counts waits that fell back to plain quantum
	// polling because a doorbell could not be armed (header word unmapped,
	// e.g. teardown in progress). Serving-plane runs watch this to detect
	// event-efficient waits silently degrading.
	mDoorbellFallback = metrics.Default.Counter("srpc.doorbell.fallback")
	// mZCCalls counts fused zero-copy records (CallZC); mArenaBytes counts
	// payload bytes staged in arena grants instead of pushed through rings.
	mZCCalls    = metrics.Default.Counter("srpc.zc.calls")
	mArenaBytes = metrics.Default.Counter("srpc.zc.arena_bytes")
	// mRingCorrupt counts streams aborted by a failed ring-consistency
	// check (corrupted producer index or record header). Each abort tears
	// exactly one stream down and surfaces ErrRingCorrupt to its owner.
	mRingCorrupt = metrics.Default.Counter("srpc.ring.corruptions")
)
