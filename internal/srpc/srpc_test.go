package srpc_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cronus/internal/attest"
	"cronus/internal/enclave"
	"cronus/internal/gpu"
	"cronus/internal/mos"
	"cronus/internal/mos/driver"
	"cronus/internal/normal"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/srpc"
	"cronus/internal/testrig"
)

// harness wires a CPU owner enclave and a CUDA callee enclave through a
// dispatcher, mirroring the paper's Figure 4 partitioned application.
type harness struct {
	rig   *testrig.Rig
	disp  *normal.Dispatcher
	owner *mos.Enclave // mE_A (CPU)
	eidB  uint32       // mE_C (CUDA)
	secB  []byte       // secret_dhke with mE_C
	edlB  *enclave.EDL
	wantB srpc.Expected
}

func cpuOwnerManifest() (enclave.Manifest, map[string][]byte) {
	files := map[string][]byte{
		"app.edl": enclave.BuildEDL(enclave.MECallSpec{Name: "main", Async: false}),
		"app.so":  enclave.BuildCPUImage("srpc-test-app"),
	}
	return enclave.NewManifest("cpu", "app.edl", "app.so", files, enclave.Resources{Memory: "4M"}), files
}

func cudaManifest() (enclave.Manifest, map[string][]byte) {
	files := map[string][]byte{
		"cuda.edl":  driver.CUDAEDL(),
		"mat.cubin": gpu.BuildCubin("vec_add", "matmul", "saxpy"),
	}
	return enclave.NewManifest("gpu", "cuda.edl", "mat.cubin", files, enclave.Resources{Memory: "64M"}), files
}

func init() {
	enclave.RegisterCPULibrary(&enclave.CPULibrary{
		Name:  "srpc-test-app",
		Funcs: map[string]enclave.CPUFunc{"main": func(*sim.Proc, []byte) ([]byte, error) { return nil, nil }},
	})
}

// setup builds the platform, both enclaves and returns the harness.
func setup(p *sim.Proc, rig *testrig.Rig) (*harness, error) {
	disp := normal.NewDispatcher(rig.SPM)
	disp.RegisterMOS(rig.CPUOS)
	disp.RegisterMOS(rig.GPUOS)
	disp.RegisterMOS(rig.NPUOS)

	manA, filesA := cpuOwnerManifest()
	dhA, err := attest.NewDHKey([]byte("app"))
	if err != nil {
		return nil, err
	}
	resA, encA, err := rig.CPUOS.EM.Create(p, "mE-A", manA, filesA, dhA.Pub)
	if err != nil {
		return nil, err
	}
	_ = resA

	// mE_A creates the CUDA enclave through the dispatcher.
	manB, filesB := cudaManifest()
	dhAB, err := attest.NewDHKey([]byte("mE-A-to-C"))
	if err != nil {
		return nil, err
	}
	resB, err := disp.CreateEnclave(p, "mE-C", manB, filesB, dhAB.Pub)
	if err != nil {
		return nil, err
	}
	secret, err := dhAB.Shared(resB.DHPub)
	if err != nil {
		return nil, err
	}
	edl, err := enclave.ParseEDL(filesB["cuda.edl"])
	if err != nil {
		return nil, err
	}
	return &harness{
		rig:   rig,
		disp:  disp,
		owner: encA,
		eidB:  resB.EID,
		secB:  secret,
		edlB:  edl,
		wantB: srpc.Expected{EnclaveHash: manB.Measure(filesB), MOSHash: rig.GPUPart.MOSHash()},
	}, nil
}

func run(t *testing.T, body func(h *harness, p *sim.Proc) error) {
	t.Helper()
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		h, err := setup(p, rig)
		if err != nil {
			return err
		}
		return body(h, p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func (h *harness) connect(p *sim.Proc) (*srpc.Client, error) {
	return srpc.Connect(p, h.owner, h.eidB, h.secB, h.edlB, h.wantB, h.disp, 0)
}

func TestStreamEndToEndCompute(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		alloc := func(n uint64) uint64 {
			res, err := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(n))
			if err != nil {
				t.Fatal(err)
			}
			ptr, _ := driver.DecodePtr(res)
			return ptr
		}
		a, b, cc := alloc(16), alloc(16), alloc(16)
		// Async stream: two copies and a launch, no waiting.
		if _, err := c.Call(p, driver.CallHtoD, driver.EncodeHtoD(a, gpu.PackF32([]float32{1, 2, 3, 4}))); err != nil {
			return err
		}
		if _, err := c.Call(p, driver.CallHtoD, driver.EncodeHtoD(b, gpu.PackF32([]float32{5, 6, 7, 8}))); err != nil {
			return err
		}
		if _, err := c.Call(p, driver.CallLaunch, driver.EncodeLaunch("vec_add", gpu.Dim{4, 1, 1}, a, b, cc)); err != nil {
			return err
		}
		// Sync call returns the data (implicit streamCheck ordering).
		res, err := c.Call(p, driver.CallDtoH, driver.EncodeDtoH(cc, 16))
		if err != nil {
			return err
		}
		blob, _ := driver.DecodeBlob(res)
		got := gpu.UnpackF32(blob)
		want := []float32{6, 8, 10, 12}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("result %v, want %v", got, want)
				break
			}
		}
		return c.Close(p)
	})
}

func TestAsyncCallsDoNotBlock(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		// 1 MiB payload needs a ring bigger than the default 64 KiB.
		c, err := srpc.Connect(p, h.owner, h.eidB, h.secB, h.edlB, h.wantB, h.disp, 300)
		if err != nil {
			return err
		}
		res, err := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(256*256*4*3))
		if err != nil {
			return err
		}
		base, _ := driver.DecodePtr(res)
		a, b, cc := base, base+256*256*4, base+2*256*256*4
		// A 256³ matmul costs milliseconds of device time; the async
		// launch must return after only the enqueue cost.
		start := p.Now()
		if _, err := c.Call(p, driver.CallLaunch, driver.EncodeLaunch("matmul", gpu.Dim{256, 256, 1}, a, b, cc, 256, 256, 256)); err != nil {
			return err
		}
		enqueue := sim.Duration(p.Now() - start)
		if enqueue > 100*sim.Microsecond {
			t.Errorf("async launch enqueue took %v (not streaming)", enqueue)
		}
		// Barrier waits for the kernel (streamCheck).
		if err := c.Barrier(p); err != nil {
			return err
		}
		if total := sim.Duration(p.Now() - start); total < 10*enqueue {
			t.Errorf("barrier returned after %v; kernel cannot have run", total)
		}
		return c.Close(p)
	})
}

func TestOrderingPreservedAcrossAsyncCalls(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		res, _ := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(4))
		ptr, _ := driver.DecodePtr(res)
		// 20 async overwrites; the final sync read must observe the last.
		for i := 1; i <= 20; i++ {
			if _, err := c.Call(p, driver.CallHtoD, driver.EncodeHtoD(ptr, gpu.PackF32([]float32{float32(i)}))); err != nil {
				return err
			}
		}
		out, err := c.Call(p, driver.CallDtoH, driver.EncodeDtoH(ptr, 4))
		if err != nil {
			return err
		}
		blob, _ := driver.DecodeBlob(out)
		if v := gpu.UnpackF32(blob)[0]; v != 20 {
			t.Errorf("final value %v, want 20 (RPCs reordered?)", v)
		}
		return c.Close(p)
	})
}

func TestStickyAsyncErrorSurfacesAtSyncPoint(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		// Async launch of a kernel that is not loaded fails in the
		// executor; the error must surface at the next barrier.
		if _, err := c.Call(p, driver.CallLaunch, driver.EncodeLaunch("reduce_sum", gpu.Dim{1, 1, 1}, 0, 0)); err != nil {
			return err // enqueue itself must succeed
		}
		err = c.Barrier(p)
		if err == nil || !strings.Contains(err.Error(), "not loaded") {
			t.Errorf("barrier err = %v, want sticky launch failure", err)
		}
		// The stream stays usable after consuming the sticky error.
		if _, err := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(16)); err != nil {
			t.Errorf("stream dead after sticky error: %v", err)
		}
		return c.Close(p)
	})
}

func TestLargePayloadSpansSlots(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		res, _ := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(48<<10))
		ptr, _ := driver.DecodePtr(res)
		payload := make([]byte, 20<<10) // 10 slots
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		if _, err := c.Call(p, driver.CallHtoD, driver.EncodeHtoD(ptr, payload)); err != nil {
			return err
		}
		out, err := c.CallSyncCap(p, driver.CallDtoH, driver.EncodeDtoH(ptr, uint64(len(payload))), len(payload)+64)
		if err != nil {
			return err
		}
		blob, _ := driver.DecodeBlob(out)
		if len(blob) != len(payload) {
			t.Fatalf("got %d bytes back, want %d", len(blob), len(payload))
		}
		for i := range blob {
			if blob[i] != payload[i] {
				t.Fatalf("byte %d corrupted through the ring", i)
			}
		}
		return c.Close(p)
	})
}

func TestFlowControlWhenRingFull(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		res, _ := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(1<<20))
		ptr, _ := driver.DecodePtr(res)
		// Push far more async bytes than the ring holds: flow control
		// must block-and-drain rather than corrupt or fail.
		chunk := make([]byte, 8<<10)
		for i := 0; i < 40; i++ {
			if _, err := c.Call(p, driver.CallHtoD, driver.EncodeHtoD(ptr, chunk)); err != nil {
				return err
			}
		}
		return c.Close(p)
	})
}

func TestEDLUnknownCallRejectedClientSide(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		if _, err := c.Call(p, "cuEvilExfiltrate", nil); err == nil {
			t.Error("call outside EDL accepted")
		}
		return c.Close(p)
	})
}

func TestConnectRejectsSubstitutedEnclaveMeasurement(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		bad := h.wantB
		bad.EnclaveHash = attest.Measure([]byte("some other image"))
		_, err := srpc.Connect(p, h.owner, h.eidB, h.secB, h.edlB, bad, h.disp, 0)
		if err == nil || !strings.Contains(err.Error(), "measurement mismatch") {
			t.Errorf("err = %v, want measurement mismatch", err)
		}
		return nil
	})
}

func TestConnectRejectsForgedLocalReport(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		// The malicious OS forges a local report (it cannot: no LSK).
		h.disp.FakeLocalReport = func(eid uint32, nonce uint64) (attest.LocalReport, []byte) {
			r := attest.LocalReport{EnclaveID: eid, EnclaveHash: h.wantB.EnclaveHash, MOSHash: h.wantB.MOSHash, Nonce: nonce}
			fake := attest.NewLocalSealer([]byte("attacker guess"))
			return r, fake.Seal(r)
		}
		_, err := h.connect(p)
		if err == nil || !strings.Contains(err.Error(), "SPM") {
			t.Errorf("err = %v, want LSK verification failure", err)
		}
		return nil
	})
}

func TestSetupTamperAndReplayDetected(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		h.disp.TamperSetup = func(m attest.SealedMsg) attest.SealedMsg {
			if len(m.Payload) > 0 {
				m.Payload[0] ^= 0xff
			}
			return m
		}
		if _, err := h.connect(p); err == nil {
			t.Error("tampered setup accepted")
		}
		h.disp.TamperSetup = nil
		// First legitimate connect primes lastSetup; the replayed copy
		// must then be rejected by the channel sequence check.
		good, err := h.connect(p)
		if err != nil {
			return err
		}
		defer good.Close(p)
		h.disp.ReplaySetup = true
		if _, err := h.connect(p); err == nil {
			t.Error("replayed setup accepted")
		}
		return nil
	})
}

func TestDroppedExecutorFailsEstablishment(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		h.disp.DropExecutor = true
		if _, err := h.connect(p); err == nil {
			t.Error("connect succeeded without an executor")
		}
		return nil
	})
}

func TestPeerPartitionFailureTearsDownStream(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		if _, err := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(16)); err != nil {
			return err
		}
		// The GPU partition crashes (malicious or buggy).
		h.rig.SPM.Fail(h.rig.GPUPart, spm.FailPanic)
		// The owner's next stream access traps and the stream reports
		// the failure instead of deadlocking (A2) or silently writing
		// into a substituted partition (A1).
		_, err = c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(16))
		if !errors.Is(err, srpc.ErrPeerFailed) {
			t.Errorf("call after peer failure: err = %v, want ErrPeerFailed", err)
		}
		if !c.Dead() {
			t.Error("stream not marked dead")
		}
		// Later calls fail fast.
		if _, err := c.Call(p, driver.CallSync, nil); !errors.Is(err, srpc.ErrPeerFailed) {
			t.Errorf("second call: err = %v", err)
		}
		return nil
	})
}

func TestOwnerCanRebuildAfterPeerRecovery(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		h.rig.SPM.Fail(h.rig.GPUPart, spm.FailPanic)
		if _, err := c.Call(p, driver.CallSync, nil); !errors.Is(err, srpc.ErrPeerFailed) {
			t.Errorf("err = %v", err)
		}
		h.rig.SPM.AwaitReady(p, h.rig.GPUPart)
		p.Sleep(sim.Millisecond) // let mOS reinit run
		// Recreate the enclave (the task is resubmitted, §VI-D) and
		// connect a fresh stream.
		manB, filesB := cudaManifest()
		dh, _ := attest.NewDHKey([]byte("retry"))
		resB, err := h.disp.CreateEnclave(p, "mE-C2", manB, filesB, dh.Pub)
		if err != nil {
			return err
		}
		sec, _ := dh.Shared(resB.DHPub)
		c2, err := srpc.Connect(p, h.owner, resB.EID, sec, h.edlB,
			srpc.Expected{EnclaveHash: manB.Measure(filesB), MOSHash: h.rig.GPUPart.MOSHash()}, h.disp, 0)
		if err != nil {
			return err
		}
		if _, err := c2.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(16)); err != nil {
			return err
		}
		return c2.Close(p)
	})
}

func TestEnclaveFailureNotifiesOwner(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		if _, err := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(16)); err != nil {
			return err
		}
		// Only the callee mEnclave dies (not the partition). Note the
		// grant is owned by mE_A; enclave-level kill revokes via the EM.
		srv := h.disp.Server(h.eidB)
		srv.Enclave().Kill(p)
		_, err = c.Call(p, driver.CallDtoH, driver.EncodeDtoH(0, 4))
		if err == nil {
			t.Error("call to killed enclave succeeded")
		}
		return nil
	})
}

func TestCloseStopsExecutor(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		if _, err := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(16)); err != nil {
			return err
		}
		if err := c.Close(p); err != nil {
			return err
		}
		// Calls after close fail.
		if _, err := c.Call(p, driver.CallSync, nil); !errors.Is(err, srpc.ErrStreamClosed) {
			t.Errorf("err = %v, want ErrStreamClosed", err)
		}
		return nil
		// The executor proc exits on its own; kernel.Run would report a
		// deadlock otherwise.
	})
}

func TestTwoStreamsOneCalleeInterleave(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		// A second CUDA enclave in the same partition, each with its own
		// stream (multi-threading: one stream per thread, §IV-C).
		manB, filesB := cudaManifest()
		dh2, _ := attest.NewDHKey([]byte("second"))
		res2, err := h.disp.CreateEnclave(p, "mE-C2", manB, filesB, dh2.Pub)
		if err != nil {
			return err
		}
		sec2, _ := dh2.Shared(res2.DHPub)
		c1, err := h.connect(p)
		if err != nil {
			return err
		}
		c2, err := srpc.Connect(p, h.owner, res2.EID, sec2, h.edlB,
			srpc.Expected{EnclaveHash: manB.Measure(filesB), MOSHash: h.rig.GPUPart.MOSHash()}, h.disp, 0)
		if err != nil {
			return err
		}
		r1, _ := c1.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(16))
		r2, _ := c2.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(16))
		p1, _ := driver.DecodePtr(r1)
		p2, _ := driver.DecodePtr(r2)
		c1.Call(p, driver.CallHtoD, driver.EncodeHtoD(p1, gpu.PackF32([]float32{1, 1, 1, 1})))
		c2.Call(p, driver.CallHtoD, driver.EncodeHtoD(p2, gpu.PackF32([]float32{2, 2, 2, 2})))
		o1, err := c1.Call(p, driver.CallDtoH, driver.EncodeDtoH(p1, 16))
		if err != nil {
			return err
		}
		o2, err := c2.Call(p, driver.CallDtoH, driver.EncodeDtoH(p2, 16))
		if err != nil {
			return err
		}
		b1, _ := driver.DecodeBlob(o1)
		b2, _ := driver.DecodeBlob(o2)
		if gpu.UnpackF32(b1)[0] != 1 || gpu.UnpackF32(b2)[0] != 2 {
			t.Error("streams interfered with each other")
		}
		c1.Close(p)
		c2.Close(p)
		return nil
	})
}

func TestSRPCBeatsLockStepLatency(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		// Stream 50 async calls via sRPC.
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		res, _ := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(64))
		ptr, _ := driver.DecodePtr(res)
		data := gpu.PackF32(make([]float32, 16))
		start := p.Now()
		for i := 0; i < 50; i++ {
			if _, err := c.Call(p, driver.CallHtoD, driver.EncodeHtoD(ptr, data)); err != nil {
				return err
			}
		}
		if err := c.Barrier(p); err != nil {
			return err
		}
		srpcTime := p.Now() - start
		c.Close(p)

		// Same 50 calls via the lock-step sealed path (owner channels).
		manB, filesB := cudaManifest()
		dh, _ := attest.NewDHKey([]byte("lockstep"))
		resB, err := h.disp.CreateEnclave(p, "mE-lock", manB, filesB, dh.Pub)
		if err != nil {
			return err
		}
		sec, _ := dh.Shared(resB.DHPub)
		tx := attest.NewChannel(sec, "owner->enclave")
		rx := attest.NewChannel(sec, "enclave->owner")
		reply, err := h.disp.InvokeSealed(p, resB.EID, mos.SealRequest(tx, driver.CallMemAlloc, driver.EncodeMemAlloc(64)))
		if err != nil {
			return err
		}
		out, err := mos.OpenReply(rx, reply)
		if err != nil {
			return err
		}
		lptr, _ := driver.DecodePtr(out)
		start = p.Now()
		for i := 0; i < 50; i++ {
			reply, err := h.disp.InvokeSealed(p, resB.EID, mos.SealRequest(tx, driver.CallHtoD, driver.EncodeHtoD(lptr, data)))
			if err != nil {
				return err
			}
			if _, err := mos.OpenReply(rx, reply); err != nil {
				return err
			}
		}
		lockTime := p.Now() - start
		if float64(lockTime) < 1.5*float64(srpcTime) {
			t.Errorf("sRPC %v vs lock-step %v: expected streaming to be much faster", srpcTime, lockTime)
		}
		return nil
	})
}

func TestTwoStreamsToTheSameEnclave(t *testing.T) {
	// §IV-C: "To support multi-threading, CRONUS makes each thread create
	// its own stream." Two streams from the same owner to the SAME callee
	// must establish and operate independently.
	run(t, func(h *harness, p *sim.Proc) error {
		c1, err := h.connect(p)
		if err != nil {
			return err
		}
		c2, err := h.connect(p)
		if err != nil {
			return fmt.Errorf("second stream to the same enclave failed: %w", err)
		}
		r1, err := c1.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(16))
		if err != nil {
			return err
		}
		r2, err := c2.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(16))
		if err != nil {
			return err
		}
		p1, _ := driver.DecodePtr(r1)
		p2, _ := driver.DecodePtr(r2)
		if p1 == p2 {
			t.Error("both streams returned the same allocation")
		}
		if err := c1.Close(p); err != nil {
			return err
		}
		// Closing one stream must not affect the other.
		if _, err := c2.Call(p, driver.CallSync, nil); err != nil {
			t.Errorf("surviving stream broken after sibling close: %v", err)
		}
		return c2.Close(p)
	})
}

func TestDuplicateExecutorSpawnIsHarmless(t *testing.T) {
	// A malicious OS spawning a second executor for a live stream must
	// not reset Sid / re-execute records.
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		res, _ := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(4))
		ptr, _ := driver.DecodePtr(res)
		if _, err := c.Call(p, driver.CallHtoD, driver.EncodeHtoD(ptr, gpu.PackF32([]float32{42}))); err != nil {
			return err
		}
		if err := c.Barrier(p); err != nil {
			return err
		}
		// Attacker duplicates the executor (stream id 1 belongs to this
		// stream: ids are process-global and this is the only stream).
		_ = h.disp.SpawnExecutor(p, h.eidB, 1)
		p.Sleep(10 * sim.Microsecond)
		// The stream still behaves: one more overwrite, one read.
		if _, err := c.Call(p, driver.CallHtoD, driver.EncodeHtoD(ptr, gpu.PackF32([]float32{43}))); err != nil {
			return err
		}
		out, err := c.Call(p, driver.CallDtoH, driver.EncodeDtoH(ptr, 4))
		if err != nil {
			return err
		}
		blob, _ := driver.DecodeBlob(out)
		if v := gpu.UnpackF32(blob)[0]; v != 43 {
			t.Errorf("value %v after duplicate-executor attack, want 43", v)
		}
		return c.Close(p)
	})
}

// Property: an arbitrary interleaving of asynchronous writes, synchronous
// reads and barriers through the ring behaves exactly like a flat byte
// array (the shadow model) — slot spanning, wrap-around and flow control
// included.
func TestStreamRandomOpsProperty(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := srpc.Connect(p, h.owner, h.eidB, h.secB, h.edlB, h.wantB, h.disp, 33)
		if err != nil {
			return err
		}
		defer c.Close(p)
		const bufSize = 64 << 10
		res, err := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(bufSize))
		if err != nil {
			return err
		}
		ptr, _ := driver.DecodePtr(res)
		shadow := make([]byte, bufSize)
		rng := rand.New(rand.NewSource(20220815))
		for op := 0; op < 120; op++ {
			switch rng.Intn(5) {
			case 0, 1, 2: // async write
				n := 1 + rng.Intn(20<<10)
				off := rng.Intn(bufSize - n)
				data := make([]byte, n)
				rng.Read(data)
				if _, err := c.Call(p, driver.CallHtoD, driver.EncodeHtoD(ptr+uint64(off), data)); err != nil {
					return fmt.Errorf("op %d write: %w", op, err)
				}
				copy(shadow[off:], data)
			case 3: // sync read + compare
				n := 1 + rng.Intn(20<<10)
				off := rng.Intn(bufSize - n)
				out, err := c.CallSyncCap(p, driver.CallDtoH, driver.EncodeDtoH(ptr+uint64(off), uint64(n)), n+64)
				if err != nil {
					return fmt.Errorf("op %d read: %w", op, err)
				}
				blob, err := driver.DecodeBlob(out)
				if err != nil {
					return err
				}
				if !bytes.Equal(blob, shadow[off:off+n]) {
					t.Fatalf("op %d: device bytes diverged from the shadow at [%d,%d)", op, off, off+n)
				}
			case 4: // barrier
				if err := c.Barrier(p); err != nil {
					return fmt.Errorf("op %d barrier: %w", op, err)
				}
			}
		}
		// Final full comparison.
		out, err := c.CallSyncCap(p, driver.CallDtoH, driver.EncodeDtoH(ptr, bufSize), bufSize+64)
		if err != nil {
			return err
		}
		blob, _ := driver.DecodeBlob(out)
		if !bytes.Equal(blob, shadow) {
			t.Fatal("final device state diverged from the shadow")
		}
		return nil
	})
}

// BenchmarkStreamAsyncCall measures one streamed (async) mECall through the
// full stack: ring push, executor dispatch, device no-op.
func BenchmarkStreamAsyncCall(b *testing.B) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		h, err := setup(p, rig)
		if err != nil {
			return err
		}
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		defer c.Close(p)
		res, err := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(64))
		if err != nil {
			return err
		}
		ptr, _ := driver.DecodePtr(res)
		args := driver.EncodeHtoD(ptr, make([]byte, 64))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Call(p, driver.CallHtoD, args); err != nil {
				return err
			}
		}
		return c.Barrier(p)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStreamSyncCall measures one synchronous mECall round trip
// (push, executor dispatch, result publish, wait).
func BenchmarkStreamSyncCall(b *testing.B) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		h, err := setup(p, rig)
		if err != nil {
			return err
		}
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		defer c.Close(p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Call(p, driver.CallSync, nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
