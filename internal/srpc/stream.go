// Package srpc implements CRONUS's streaming remote procedure call protocol
// (§IV-C) and its failover behaviour (§IV-D).
//
// A stream connects a caller mEnclave (the owner, mE_A) to a callee mEnclave
// (mE_B) through trusted shared memory: the owner allocates the smem region,
// the SPM maps it into the callee's partition, the callee proves possession
// of secret_dhke through the region itself (dCheck), and from then on the
// owner streams mECall records into a ring buffer while an executor thread
// in the callee's partition drains and executes them. The owner only blocks
// when it needs data (synchronous mECalls) or an explicit barrier
// (streamCheck). Attackers never see the ring: it lives in TZASC-protected
// memory, so reorder/replay/drop of in-flight RPCs is impossible by
// construction, and RPC timing is hidden.
//
// When a partition or mEnclave on either end fails, the SPM's proceed-trap
// procedure invalidates the stage-2 mappings of the region; the next ring
// access traps, surfaces as *spm.PeerFault, and the stream cleanly reports
// ErrPeerFailed instead of deadlocking or leaking data to a substituted
// peer (attacks A1-A3).
//
// Neither side trusts the ring's control words: the executor validates the
// producer index against its consumed window and every record header
// against the owner's framing before acting on them. A violation aborts the
// stream — the executor publishes a sticky corruption code and poisons the
// consumer index so even owners already parked in a synchronous wait or in
// flow control escape promptly — and every owner-side call from then on
// returns the typed ErrRingCorrupt. Recovery is re-establishment: Abandon
// the dead client and Connect a fresh stream. The chaos harness drives this
// path deliberately via SetCallHook + InjectRecordCorruption.
package srpc

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"cronus/internal/attest"
	"cronus/internal/sim"
	"cronus/internal/spm"
)

// Stream geometry.
const (
	headerBytes = 4096 // one page of stream header
	// SlotSize is the ring slot granularity; records span consecutive
	// slots when larger.
	SlotSize = 2048
	// DefaultPages is the default smem size (1 header page + ring).
	DefaultPages = 17 // 64 KiB ring

	pollQuantum = 400 * sim.Nanosecond
)

// Header field offsets within page 0.
const (
	offMagic   = 0
	offRid     = 8
	offSid     = 16
	offClosed  = 24
	offSticky  = 28
	offDCheck  = 32
	offDMAC    = 40 // 32 bytes
	offChal    = 72
	offLock    = 80
	offErrLen  = 128
	offErrMsg  = 132
	maxErrMsg  = 890
	slotBase   = headerBytes
	recHdrSize = 16
)

const streamMagic = 0x5352504356310001 // "SRPCV1" + version

// Record kinds.
const (
	kindAsync = 0
	kindSync  = 1
	// kindNotify is a fused zero-copy record (zerocopy.go): the bulk
	// payload lives in the stream's arena grant rather than the ring, and
	// completion is delivered through a registered callback instead of a
	// synchronous wait on Sid.
	kindNotify = 2
)

// Sticky-word codes (offSticky). The executor publishes asynchronous
// failures here; the owner consumes them at the next synchronization point.
const (
	stickyNone    = 0 // healthy
	stickyAppErr  = 1 // an asynchronous mECall returned an error
	stickyCorrupt = 2 // the executor detected ring-header corruption
)

// ErrPeerFailed reports that the communicating partition or mEnclave failed
// while the stream was live; the stream has cleared its state (§IV-D).
var ErrPeerFailed = errors.New("srpc: peer failed; stream torn down")

// ErrStreamClosed reports use of a closed stream.
var ErrStreamClosed = errors.New("srpc: stream closed")

// ErrRingCorrupt reports that a ring-header word (producer/consumer index or
// a record header) failed consistency validation. The side that detects the
// corruption stops parsing immediately — a corrupt length or slot count is
// never trusted — poisons the stream so blocked peers wake with this same
// typed error, and tears its state down. Callers recover exactly as for
// ErrPeerFailed: abandon the stream and re-establish.
var ErrRingCorrupt = errors.New("srpc: ring corruption detected; stream torn down")

// recordSlots is the slot footprint the owner computes in push for a record
// with the given header words; the executor re-derives it to validate that a
// decoded header is self-consistent before trusting any length field.
func recordSlots(payloadLen, respCap uint32) uint64 {
	body := recHdrSize + int(payloadLen)
	if int(respCap)+8 > int(payloadLen) {
		body = recHdrSize + int(respCap) + 8
	}
	return slotsFor(body)
}

// ring provides byte access to an smem region through a memory view,
// translating PeerFault into the stream-dead condition.
type ring struct {
	view  *spm.View
	base  uint64 // IPA of the smem region in this side's partition
	pages int
	slots uint64
}

func newRing(view *spm.View, base uint64, pages int) *ring {
	return &ring{
		view:  view,
		base:  base,
		pages: pages,
		slots: uint64((pages*4096 - headerBytes) / SlotSize),
	}
}

func (r *ring) slotAddr(idx uint64) uint64 {
	return r.base + slotBase + (idx%r.slots)*SlotSize
}

func (r *ring) readU64(p *sim.Proc, off uint64) (uint64, error) {
	var b [8]byte
	if err := r.view.Read(p, r.base+off, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (r *ring) writeU64(p *sim.Proc, off uint64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return r.view.Write(p, r.base+off, b[:])
}

func (r *ring) readU32(p *sim.Proc, off uint64) (uint32, error) {
	var b [4]byte
	if err := r.view.Read(p, r.base+off, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (r *ring) writeU32(p *sim.Proc, off uint64, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return r.view.Write(p, r.base+off, b[:])
}

// writeSlots writes data starting at slot idx, wrapping modularly.
func (r *ring) writeSlots(p *sim.Proc, idx uint64, data []byte) error {
	off := 0
	for off < len(data) {
		n := SlotSize
		if n > len(data)-off {
			n = len(data) - off
		}
		if err := r.view.Write(p, r.slotAddr(idx), data[off:off+n]); err != nil {
			return err
		}
		idx++
		off += n
	}
	return nil
}

// readSlots reads n bytes starting at slot idx.
func (r *ring) readSlots(p *sim.Proc, idx uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	off := 0
	for off < n {
		c := SlotSize
		if c > n-off {
			c = n - off
		}
		if err := r.view.Read(p, r.slotAddr(idx), out[off:off+c]); err != nil {
			return nil, err
		}
		idx++
		off += c
	}
	return out, nil
}

func slotsFor(n int) uint64 {
	return uint64((n + SlotSize - 1) / SlotSize)
}

// doorbell is the event-efficient replacement for ring-header poll loops: a
// condition wired to physical write-watches on the header words a waiter
// polls, plus the SPM's isolation-change hook (failure paths tear mappings
// down without writing the words). Waking is a host-level optimization only —
// the waiter still performs its reads on the exact virtual-time grid the
// polling loop would have used (see alignedWait), so simulated results are
// unchanged; the event queue just carries one wakeup instead of one timer
// per poll quantum.
type doorbell struct {
	cond    *sim.Cond
	cancels []func()
}

// armDoorbell watches the given (offset, length) header words. It returns
// nil when any word is not currently mapped — callers then keep the plain
// polling loop, whose next read faults or observes the teardown.
func (r *ring) armDoorbell(k *sim.Kernel, watch ...[2]uint64) *doorbell {
	db := &doorbell{cond: sim.NewCond(k)}
	for _, w := range watch {
		cancel, ok := r.view.WatchWrite(r.base+w[0], w[1], db.cond.Broadcast)
		if !ok {
			db.disarm()
			return nil
		}
		db.cancels = append(db.cancels, cancel)
	}
	db.cancels = append(db.cancels, r.view.OnIsolationChange(db.cond.Broadcast))
	return db
}

func (db *doorbell) disarm() {
	for _, c := range db.cancels {
		c()
	}
	db.cancels = nil
}

// alignedWait parks p until the doorbell rings, then sleeps to the next read
// instant on the polling grid {first + k·period} that is strictly after
// lastRead — the instant the replaced polling loop would have performed its
// next read. A wake landing exactly on a grid instant reads immediately
// (zero sleep): the producer's write is already visible, as it would be to a
// poll read dispatched after the write at the same instant.
func alignedWait(p *sim.Proc, db *doorbell, first sim.Time, period sim.Duration, lastRead sim.Time) {
	db.cond.Wait(p)
	readAt := sim.NextPollInstant(first, period, p.Now())
	if readAt <= lastRead {
		readAt = lastRead + sim.Time(period)
	}
	if d := sim.Duration(readAt - p.Now()); d > 0 {
		p.Sleep(d)
	}
}

// dcheckMAC computes the dCheck proof: possession of secret_dhke bound to
// this stream and challenge, written through the shared region itself.
func dcheckMAC(secret []byte, streamID, challenge uint64) []byte {
	m := hmac.New(sha256.New, secret)
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], streamID)
	binary.LittleEndian.PutUint64(b[8:], challenge)
	m.Write([]byte("srpc-dcheck"))
	m.Write(b[:])
	return m.Sum(nil)
}

// translateFault converts memory errors into stream-level errors.
func translateFault(err error) error {
	var pf *spm.PeerFault
	if errors.As(err, &pf) {
		return fmt.Errorf("%w (failed party: %s)", ErrPeerFailed, pf.Failed)
	}
	var down *spm.PartitionDownError
	if errors.As(err, &down) {
		return fmt.Errorf("%w (own partition restarted)", ErrPeerFailed)
	}
	return err
}

// Expected pins what the caller requires the peer to be (local attestation,
// §IV-A): the enclave measurement from the manifest the caller reviewed, and
// the mOS measurement of the partition it trusts.
type Expected struct {
	EnclaveHash attest.Measurement
	MOSHash     attest.Measurement
}
