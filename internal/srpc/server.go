package srpc

import (
	"fmt"

	"cronus/internal/attest"
	"cronus/internal/mos"
	"cronus/internal/sim"
	"cronus/internal/trace"
	"cronus/internal/wire"
)

// noopEnd is the shared do-nothing span closer for the disabled-trace path.
var noopEnd = func() {}

// Transport is the untrusted normal world's relay role in sRPC: it carries
// the (MAC-protected) establishment messages and creates executor threads.
// The normal world can drop or corrupt this traffic — establishment then
// fails safe — but it cannot forge it.
type Transport interface {
	// LocalReport fetches an SPM-sealed local attestation report for eid.
	LocalReport(p *sim.Proc, eid uint32, nonce uint64) (attest.LocalReport, []byte, error)
	// StreamSetup relays a sealed stream-setup request for one stream to
	// eid's mOS.
	StreamSetup(p *sim.Proc, eid uint32, streamID uint64, msg attest.SealedMsg) (attest.SealedMsg, error)
	// SpawnExecutor asks the normal world to start the executor thread
	// for an established stream.
	SpawnExecutor(p *sim.Proc, eid uint32, streamID uint64) error
	// NextStreamID mints the next stream id on this platform. Keeping the
	// counter on the transport (not a package global) means independently
	// booted platforms in one process each get a deterministic 1,2,3,…
	// sequence regardless of interleaving.
	NextStreamID() uint64
}

// Server is the callee-side sRPC endpoint wrapped around one mEnclave. The
// dispatcher creates one per enclave; its mOS hosts the executor threads.
// One enclave serves many streams (one per caller thread, §IV-C).
type Server struct {
	enc     *mos.Enclave
	streams map[uint64]*serverStream
}

type serverStream struct {
	id      uint64
	ring    *ring
	track   string // precomputed trace track name ("stream-N")
	sid     uint64
	running bool
}

// NewServer wraps an enclave as an sRPC endpoint.
func NewServer(e *mos.Enclave) *Server {
	return &Server{
		enc:     e,
		streams: make(map[uint64]*serverStream),
	}
}

// setupChannels derives the per-stream establishment channels from
// secret_dhke: binding the stream id into the key defeats cross-stream
// splicing, and the per-direction sequence defeats replay within a stream.
func setupChannels(secret []byte, streamID uint64) (rx, tx *attest.Channel) {
	rx = attest.NewChannel(secret, fmt.Sprintf("srpc-setup:%d:owner->enclave", streamID))
	tx = attest.NewChannel(secret, fmt.Sprintf("srpc-setup:%d:enclave->owner", streamID))
	return rx, tx
}

// EID returns the wrapped enclave's id.
func (s *Server) EID() uint32 { return s.enc.EID }

// Enclave returns the wrapped enclave.
func (s *Server) Enclave() *mos.Enclave { return s.enc }

// HandleSetup processes a sealed stream-setup request relayed through the
// untrusted world: it maps the shared region granted by the owner, performs
// dCheck by writing the secret_dhke proof through the region, and registers
// the stream. Request payload: wire(streamID u64, peerIPA u64, pages u32,
// challenge u64).
//
// A setup for an already-registered stream id is refused: a replayed setup
// would otherwise reset Sid and re-execute consumed records.
func (s *Server) HandleSetup(p *sim.Proc, streamID uint64, msg attest.SealedMsg) (attest.SealedMsg, error) {
	if _, dup := s.streams[streamID]; dup {
		return attest.SealedMsg{}, fmt.Errorf("srpc: stream %d already established (replayed setup?)", streamID)
	}
	rx, tx := setupChannels(s.enc.Secret(), streamID)
	payload, err := rx.Open(msg)
	if err != nil {
		return attest.SealedMsg{}, fmt.Errorf("srpc: setup rejected: %w", err)
	}
	d := wire.NewDecoder(payload)
	innerID := d.U64()
	peerIPA := d.U64()
	pages := d.U32()
	challenge := d.U64()
	if err := d.Err(); err != nil {
		return attest.SealedMsg{}, err
	}
	if innerID != streamID {
		return attest.SealedMsg{}, fmt.Errorf("srpc: stream id mismatch (spliced setup?)")
	}
	costs := s.enc.MOS().Costs
	p.Sleep(costs.StreamSetup)
	st := &serverStream{
		id:    streamID,
		ring:  newRing(s.enc.View(), peerIPA, int(pages)),
		track: fmt.Sprintf("stream-%d", streamID),
	}
	// dCheck: prove possession of secret_dhke through the shared memory
	// itself (§IV-C). If the SPM mapped us the wrong region — or we are a
	// substituted enclave — the owner's verification fails.
	mac := dcheckMAC(s.enc.Secret(), streamID, challenge)
	if err := st.ring.view.Write(p, st.ring.base+offDMAC, mac); err != nil {
		return attest.SealedMsg{}, translateFault(err)
	}
	if err := st.ring.writeU32(p, offDCheck, 1); err != nil {
		return attest.SealedMsg{}, translateFault(err)
	}
	s.streams[streamID] = st
	return tx.Seal(wire.NewEncoder().U64(streamID).Bytes()), nil
}

// RunExecutor is the body of the executor thread T (§IV-C): it drains the
// ring, executes each mECall strictly in order, publishes results for
// synchronous records, and advances Sid. It returns when the stream closes
// or the peer fails.
func (s *Server) RunExecutor(p *sim.Proc, streamID uint64) {
	st, ok := s.streams[streamID]
	if !ok || st.running {
		return // unknown stream, or a duplicated executor (replay attempt)
	}
	st.running = true
	defer delete(s.streams, streamID)
	costs := s.enc.MOS().Costs
	r := st.ring
	// Idle stretches poll Rid/Closed on the grid {anchor + k·(RingPoll+
	// quantum)}; between grid reads the thread parks on a doorbell instead
	// of burning a timer event per quantum. idleAnchor < 0 means the last
	// iteration did work, so the next read is RingPoll after it finished —
	// exactly the replaced loop's cadence.
	idleAnchor := sim.Time(-1)
	idlePeriod := costs.RingPoll + pollQuantum
	var db *doorbell
	defer func() {
		if db != nil {
			db.disarm()
		}
	}()
	for {
		if idleAnchor < 0 {
			p.Sleep(costs.RingPoll)
		}
		rid, err := r.readU64(p, offRid)
		if err != nil {
			return // peer failed: traps handled, thread exits (no deadlock, A2)
		}
		if rid < st.sid || rid-st.sid > r.slots {
			// The producer index can never regress below our consumer
			// index, and flow control bounds it to one ring of backlog. A
			// value outside that window is a corrupted header word — abort
			// before trusting any record it implies.
			s.corrupt(p, st, fmt.Sprintf("producer index %d outside window [%d, %d]", rid, st.sid, st.sid+r.slots))
			return
		}
		if st.sid >= rid {
			closed, err := r.readU32(p, offClosed)
			if err != nil || closed == 1 {
				delete(s.streams, streamID)
				return
			}
			if idleAnchor < 0 {
				idleAnchor = p.Now()
			}
			if db == nil {
				db = r.armDoorbell(p.Kernel(), [2]uint64{offRid, 8}, [2]uint64{offClosed, 4})
			}
			if db == nil {
				mDoorbellFallback.Inc()
				p.Sleep(idlePeriod)
				continue
			}
			alignedWait(p, db, idleAnchor, idlePeriod, p.Now())
			continue
		}
		idleAnchor = -1
		// Read the record header at sid.
		hdr, err := r.readSlots(p, st.sid, recHdrSize)
		if err != nil {
			return
		}
		hd := wire.NewDecoder(hdr)
		payloadLen := hd.U32()
		kind := hd.U32()
		slots := hd.U32()
		respCap := hd.U32()
		// Validate the record header before trusting any field: the kind
		// must be known, and the slot count must match what push would have
		// computed for these lengths (which also bounds payloadLen to the
		// record and the record to the ring). A mismatch means a corrupted
		// header — misparsing it would desynchronize Sid from the record
		// framing for the rest of the stream's life.
		if hd.Err() != nil || kind > kindNotify || slots == 0 ||
			uint64(slots) > r.slots || uint64(slots) != recordSlots(payloadLen, respCap) {
			s.corrupt(p, st, fmt.Sprintf("corrupt record header at sid %d (len=%d kind=%d slots=%d respCap=%d)",
				st.sid, payloadLen, kind, slots, respCap))
			return
		}
		body, err := r.readSlots(p, st.sid, recHdrSize+int(payloadLen))
		if err != nil {
			return
		}
		bd := wire.NewDecoder(body[recHdrSize:])
		name := bd.Str()
		args := bd.Blob()
		var res []byte
		var callErr error
		if err := bd.Err(); err != nil {
			callErr = err
		} else if kind == kindNotify {
			// Fused zero-copy record: the payload lives in the arena grant,
			// not the ring; execute both calls, then deliver completion
			// through the registered callback below.
			callErr = s.execZC(p, name, args)
		} else {
			// Name concatenation only happens when tracing is on — the
			// executor loop is the hot path of every streamed mECall.
			end := noopEnd
			if trace.Default.Enabled() {
				// Claim the span context the pushing client stashed for
				// this record (the out-of-band trace header), so the exec
				// span — and the mOS dispatch and device hooks under it —
				// link into the caller's request tree. The context is
				// scoped to this record: cleared once the span closes.
				if ctx, ok := trace.Default.TakeFlow(st.id, st.sid); ok {
					p.SetTraceCtx(ctx.Trace, ctx.Span)
				}
				spanEnd := trace.Default.BeginSpan(p, "srpc", st.track, "exec "+name)
				end = func() {
					spanEnd()
					p.SetTraceCtx(0, 0)
				}
			}
			res, callErr = s.enc.InvokeStreamed(p, name, args)
			end()
		}
		if kind == kindSync {
			// Publish the result in place, then advance Sid.
			e := wire.NewEncoder()
			if callErr != nil {
				e.U32(1).Str(callErr.Error())
			} else {
				e.U32(0).Blob(res)
			}
			out := e.Bytes()
			if len(out) > int(slots)*SlotSize {
				e2 := wire.NewEncoder().U32(1).Str("srpc: result exceeds record capacity")
				out = e2.Bytes()
			}
			if err := r.writeSlots(p, st.sid, out); err != nil {
				return
			}
		} else if callErr != nil && kind != kindNotify {
			// Asynchronous failure: sticky error, surfaced at the
			// next synchronization point (CUDA-style).
			s.sticky(p, r, stickyAppErr, callErr.Error())
		}
		recSlot := st.sid
		st.sid += uint64(slots)
		if err := r.writeU64(p, offSid, st.sid); err != nil {
			return
		}
		if kind == kindNotify {
			// Completion callback, after the Sid advance so the ring state
			// observed from the callback is consistent. A fused record with
			// no registered callback surfaces failures sticky, like async.
			if fn, ok := takeNotify(st.id, recSlot); ok {
				fn(p, callErr)
			} else if callErr != nil {
				s.sticky(p, r, stickyAppErr, callErr.Error())
			}
		}
	}
}

func (s *Server) sticky(p *sim.Proc, r *ring, code uint32, msg string) {
	if len(msg) > maxErrMsg {
		msg = msg[:maxErrMsg]
	}
	_ = r.view.Write(p, r.base+offErrMsg, []byte(msg))
	_ = r.writeU32(p, offErrLen, uint32(len(msg)))
	_ = r.writeU32(p, offSticky, code)
}

// corrupt is the executor's abort path for a failed ring-consistency check:
// record the event, publish a sticky corrupt code, then poison Sid to the
// maximum so every owner-side waiter — sync waits and flow control alike —
// wakes through the Sid doorbell, observes consumer > producer, and fails
// with the typed ErrRingCorrupt instead of hanging on a stream nobody will
// ever advance again.
func (s *Server) corrupt(p *sim.Proc, st *serverStream, detail string) {
	mRingCorrupt.Inc()
	s.sticky(p, st.ring, stickyCorrupt, detail)
	_ = st.ring.writeU64(p, offSid, ^uint64(0))
}
