package srpc_test

import (
	"fmt"
	"testing"

	"cronus/internal/gpu"
	"cronus/internal/mos/driver"
	"cronus/internal/sim"
	"cronus/internal/srpc"
)

// TestZeroCopyFusedExec drives the fused data plane end to end: the payload
// is staged in the arena grant, one kindNotify record replaces the HtoD +
// Launch pair, and the completion callback fires in the executor's context.
// The device result must match what the classic streamed path computes.
func TestZeroCopyFusedExec(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		if err := c.GrantArena(p, 4096); err != nil {
			return err
		}
		alloc := func(n uint64) uint64 {
			res, err := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(n))
			if err != nil {
				t.Fatal(err)
			}
			ptr, _ := driver.DecodePtr(res)
			return ptr
		}
		a, b, cc := alloc(16), alloc(16), alloc(16)
		if _, err := c.Call(p, driver.CallHtoD, driver.EncodeHtoD(b, gpu.PackF32([]float32{5, 6, 7, 8}))); err != nil {
			return err
		}
		done := sim.NewSignal(p.Kernel())
		var notifyErr error
		req := srpc.ZCRequest{
			Payload:  gpu.PackF32([]float32{1, 2, 3, 4}),
			CopyCall: driver.CallHtoD,
			Dst:      a,
			ExecCall: driver.CallLaunch,
			ExecArgs: driver.EncodeLaunch("vec_add", gpu.Dim{4, 1, 1}, a, b, cc),
		}
		if err := c.CallZC(p, req, func(_ *sim.Proc, err error) {
			notifyErr = err
			done.Fire()
		}); err != nil {
			return err
		}
		done.Wait(p)
		if notifyErr != nil {
			return fmt.Errorf("fused exec failed: %w", notifyErr)
		}
		res, err := c.Call(p, driver.CallDtoH, driver.EncodeDtoH(cc, 16))
		if err != nil {
			return err
		}
		blob, _ := driver.DecodeBlob(res)
		got := gpu.UnpackF32(blob)
		want := []float32{6, 8, 10, 12}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("fused result %v, want %v", got, want)
				break
			}
		}
		return c.Close(p)
	})
}

// TestZeroCopyArenaRotation pushes far more fused records than the arena has
// slots, forcing rotation, and asserts every completion observed the payload
// written for it — the flow-control reclamation argument of CallZC.
func TestZeroCopyArenaRotation(t *testing.T) {
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		if err := c.GrantArena(p, 64); err != nil {
			return err
		}
		alloc := func(n uint64) uint64 {
			res, err := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(n))
			if err != nil {
				t.Fatal(err)
			}
			ptr, _ := driver.DecodePtr(res)
			return ptr
		}
		a, b, cc := alloc(16), alloc(16), alloc(16)
		if _, err := c.Call(p, driver.CallHtoD, driver.EncodeHtoD(b, gpu.PackF32([]float32{0, 0, 0, 0}))); err != nil {
			return err
		}
		const calls = 100 // > ring slots, so arena slots rotate
		completions := 0
		var firstErr error
		for i := 0; i < calls; i++ {
			v := float32(i)
			req := srpc.ZCRequest{
				Payload:  gpu.PackF32([]float32{v, v, v, v}),
				CopyCall: driver.CallHtoD,
				Dst:      a,
				ExecCall: driver.CallLaunch,
				ExecArgs: driver.EncodeLaunch("vec_add", gpu.Dim{4, 1, 1}, a, b, cc),
			}
			if err := c.CallZC(p, req, func(_ *sim.Proc, err error) {
				completions++
				if err != nil && firstErr == nil {
					firstErr = err
				}
			}); err != nil {
				return err
			}
		}
		if err := c.Barrier(p); err != nil {
			return err
		}
		if firstErr != nil {
			return fmt.Errorf("fused exec failed: %w", firstErr)
		}
		if completions != calls {
			t.Errorf("got %d completions, want %d", completions, calls)
		}
		// The executor runs records strictly in order, so the last fused
		// HtoD to land in a must carry the last payload.
		res, err := c.Call(p, driver.CallDtoH, driver.EncodeDtoH(a, 16))
		if err != nil {
			return err
		}
		blob, _ := driver.DecodeBlob(res)
		got := gpu.UnpackF32(blob)
		for i := range got {
			if got[i] != float32(calls-1) {
				t.Errorf("payload slot reused too early: device saw %v, want all %v", got, float32(calls-1))
				break
			}
		}
		return c.Close(p)
	})
}

// TestZeroCopyEventBudget pins the event saving that motivates the fused
// path: one CallZC must dispatch far fewer simulator events than the HtoD +
// Launch + Barrier triple it replaces (the Barrier alone costs a sync wait).
func TestZeroCopyEventBudget(t *testing.T) {
	const calls = 50
	run(t, func(h *harness, p *sim.Proc) error {
		c, err := h.connect(p)
		if err != nil {
			return err
		}
		if err := c.GrantArena(p, 4096); err != nil {
			return err
		}
		res, err := c.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(4096))
		if err != nil {
			return err
		}
		dst, _ := driver.DecodePtr(res)
		payload := make([]byte, 1024)
		launch := driver.EncodeLaunch("saxpy", gpu.Dim{16, 1, 1}, dst, dst, 2)
		start := p.Now()
		for i := 0; i < calls; i++ {
			if err := c.CallZC(p, srpc.ZCRequest{
				Payload: payload, CopyCall: driver.CallHtoD, Dst: dst,
				ExecCall: driver.CallLaunch, ExecArgs: launch,
			}, nil); err != nil {
				return err
			}
		}
		if err := c.Barrier(p); err != nil {
			return err
		}
		fusedTime := p.Now() - start
		// Classic path for the same work: two pushes plus a barrier each.
		start = p.Now()
		for i := 0; i < calls; i++ {
			if _, err := c.Call(p, driver.CallHtoD, driver.EncodeHtoD(dst, payload)); err != nil {
				return err
			}
			if _, err := c.Call(p, driver.CallLaunch, launch); err != nil {
				return err
			}
			if err := c.Barrier(p); err != nil {
				return err
			}
		}
		classicTime := p.Now() - start
		if fusedTime >= classicTime {
			t.Errorf("fused path not faster in virtual time: fused %v vs classic %v", fusedTime, classicTime)
		}
		return c.Close(p)
	})
}
