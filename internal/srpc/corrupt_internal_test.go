package srpc

import "testing"

// TestRecordSlotsConsistency pins the executor's header validation to the
// owner's framing: recordSlots must reproduce exactly the slot count push
// computes for any (payloadLen, respCap), so a header that round-trips
// uncorrupted always validates and any flipped slots word is rejected.
func TestRecordSlotsConsistency(t *testing.T) {
	cases := []struct{ payload, respCap int }{
		{0, 0}, {1, 0}, {100, 0}, {100, 2048}, {2032, 0}, {2033, 0},
		{4096, 0}, {4096, 65536}, {10, 100000}, {SlotSize * 3, SlotSize},
	}
	for _, c := range cases {
		// The owner-side computation from push.
		body := recHdrSize + c.payload
		if c.respCap+8 > c.payload {
			body = recHdrSize + c.respCap + 8
		}
		want := slotsFor(body)
		if got := recordSlots(uint32(c.payload), uint32(c.respCap)); got != want {
			t.Errorf("recordSlots(%d, %d) = %d, push computes %d", c.payload, c.respCap, got, want)
		}
		// Any single-bit corruption of the slots word breaks the equality
		// the executor checks.
		for bit := uint32(1); bit < 1<<20; bit <<= 1 {
			if uint64(uint32(want)^bit) == recordSlots(uint32(c.payload), uint32(c.respCap)) {
				t.Errorf("flipped slots word %d still validates for (%d, %d)", uint32(want)^bit, c.payload, c.respCap)
			}
		}
	}
}
