package spm

import (
	"encoding/binary"
	"fmt"

	"cronus/internal/attest"
	"cronus/internal/hw"
	"cronus/internal/sim"
	"cronus/internal/trace"
)

// Supervision is the SPM's partition health policy: how hang detection,
// restart backoff, and crash-loop quarantine behave. The zero value (after
// defaulting) reproduces the legacy watchdog — a deadline of three missed
// heartbeat periods — with backoff and quarantine disabled, so recovery
// timing for a first failure is exactly DeviceClear+MOSRestart.
type Supervision struct {
	// HeartbeatEvery is the period on which each supervised mOS publishes
	// its heartbeat word (and the watchdog's poll period). Defaults to the
	// cost model's HangPollEvery.
	HeartbeatEvery sim.Duration
	// MissedBeats is K: the watchdog fails a partition with FailHang once
	// no heartbeat progress was observed for more than K periods.
	// Defaults to 3.
	MissedBeats int
	// RestartBackoff is the base of the exponential restart delay: the
	// n-th failure inside FailureWindow (n ≥ 2) delays the mOS reload by
	// RestartBackoff·2^(n-2), capped at MaxBackoff. Zero disables backoff.
	RestartBackoff sim.Duration
	// MaxBackoff caps the exponential restart delay. Defaults to
	// 8×RestartBackoff when backoff is enabled.
	MaxBackoff sim.Duration
	// QuarantineAfter is M: reaching M panic/hang failures inside
	// FailureWindow moves the partition to PartQuarantined instead of
	// restarting it. Zero disables quarantine.
	QuarantineAfter int
	// FailureWindow is the sliding window over which failures are counted
	// for backoff and quarantine. Defaults to one virtual second.
	FailureWindow sim.Duration
}

// withDefaults fills the zero fields from the cost model.
func (sv Supervision) withDefaults(costs *sim.CostModel) Supervision {
	if sv.HeartbeatEvery <= 0 {
		sv.HeartbeatEvery = costs.HangPollEvery
	}
	if sv.MissedBeats <= 0 {
		sv.MissedBeats = 3
	}
	if sv.RestartBackoff > 0 && sv.MaxBackoff <= 0 {
		sv.MaxBackoff = 8 * sv.RestartBackoff
	}
	if sv.FailureWindow <= 0 {
		sv.FailureWindow = sim.Second
	}
	return sv
}

// SetSupervision installs the health policy. Call before StartWatchdog;
// changing the policy mid-run is not supported.
func (s *SPM) SetSupervision(sv Supervision) { s.sup = sv }

// SupervisionConfig returns the effective (defaulted) health policy.
func (s *SPM) SupervisionConfig() Supervision { return s.sup.withDefaults(s.Costs) }

// HangDetectionBound is the worst-case latency from an mOS wedging to the
// watchdog raising FailHang: up to one poll period for the watchdog to
// observe the final pre-wedge beat (resetting its progress clock as late as
// wedge+period), then MissedBeats periods of required silence, then one more
// period of poll phase slack before the deadline check strictly exceeds —
// MissedBeats+2 periods in all.
func (s *SPM) HangDetectionBound() sim.Duration {
	sv := s.SupervisionConfig()
	return sv.HeartbeatEvery * sim.Duration(sv.MissedBeats+2)
}

// restartBackoff is the exponential restart delay applied before the mOS
// reload when the partition has failed `recent` times inside the sliding
// window (this failure included): zero for a first failure, then
// base·2^(recent-2) capped at max.
func restartBackoff(sv Supervision, recent int) sim.Duration {
	if sv.RestartBackoff <= 0 || recent < 2 {
		return 0
	}
	d := sv.RestartBackoff
	for i := 2; i < recent; i++ {
		d *= 2
		if d >= sv.MaxBackoff {
			return sv.MaxBackoff
		}
	}
	if d > sv.MaxBackoff {
		return sv.MaxBackoff
	}
	return d
}

// recordFailure appends a failure instant to the partition's sliding-window
// history and returns how many failures (this one included) fall inside the
// window. Operator-requested restarts (FailRequested, including UpdateMOS)
// are deliberately excluded: a planned rollout is not crash-loop evidence.
func (s *SPM) recordFailure(p *Partition, at sim.Time, reason FailReason) int {
	if reason == FailRequested {
		return 0
	}
	sv := s.SupervisionConfig()
	cut := at - sim.Time(sv.FailureWindow)
	keep := p.failTimes[:0]
	for _, t := range p.failTimes {
		if t > cut {
			keep = append(keep, t)
		}
	}
	p.failTimes = append(keep, at)
	return len(p.failTimes)
}

// QuarantinedError reports an operation refused because the partition is
// quarantined: its crash-loop history exceeded the supervision policy and
// the SPM refuses to restart it until ReleaseQuarantine.
type QuarantinedError struct {
	Partition string
}

// Error describes the refusal.
func (e *QuarantinedError) Error() string {
	return fmt.Sprintf("spm: partition %q is quarantined (crash-loop); release required", e.Partition)
}

// ArmHeartbeat registers the IPA of the partition's heartbeat word for the
// current incarnation. The mOS bumps the 64-bit little-endian word at that
// address on every heartbeat period; the watchdog reads it through the
// partition's own stage-2 table, so a wedged mOS cannot fake progress and a
// dead stage-2 mapping counts as silence. Re-arm after every restart (the
// page was scrubbed and the epoch moved).
func (p *Partition) ArmHeartbeat(ipa uint64) {
	p.beatIPA = ipa
	p.beatEpoch = p.epoch
	p.beatArmed = true
	p.beatSeen = 0
	p.lastBeat = p.spm.K.Now()
}

// WatchHangs opts the partition into watchdog supervision.
func (p *Partition) WatchHangs() {
	p.hangable = true
	p.lastBeat = p.spm.K.Now()
}

// Heartbeat refreshes the watchdog timestamp directly. Kept for callers
// without a shared heartbeat word (tests); supervised mOS instances publish
// through the word armed with ArmHeartbeat instead.
func (p *Partition) Heartbeat(t sim.Time) { p.lastBeat = t }

// beatProgress samples the partition's heartbeat word (if armed for the
// current incarnation) and returns the virtual time of the latest observed
// progress. Reading happens through the partition's stage-2 table into
// secure memory — the same path the hardware would walk — so an unmapped or
// scrubbed word reads as silence, never as progress.
func (s *SPM) beatProgress(p *Partition, now sim.Time) sim.Time {
	if p.beatArmed && p.beatEpoch == p.epoch && p.state == PartReady {
		if pfn, f := p.stage2.Translate(p.beatIPA>>hw.PageShift, hw.PermR); f == nil {
			var buf [8]byte
			pa := hw.PA(pfn<<hw.PageShift | p.beatIPA&(1<<hw.PageShift-1))
			if err := s.M.Mem.Read(hw.SecureWorld, pa, buf[:]); err == nil {
				word := binary.LittleEndian.Uint64(buf[:])
				if word != p.beatSeen {
					p.beatSeen = word
					p.lastBeat = now
				}
			}
		}
	}
	return p.lastBeat
}

// StartWatchdog starts the SPM hang detector: every HeartbeatEvery it
// samples each supervised partition's heartbeat (the shared word armed via
// ArmHeartbeat, or direct Heartbeat timestamps) and fails partitions silent
// for more than MissedBeats periods with FailHang. Detection latency is
// bounded by HangDetectionBound. Kill the returned proc to stop it.
func (s *SPM) StartWatchdog() *sim.Proc {
	sv := s.SupervisionConfig()
	deadline := sim.Time(sim.Duration(sv.MissedBeats) * sv.HeartbeatEvery)
	return s.K.Spawn("spm-watchdog", func(proc *sim.Proc) {
		for {
			proc.Sleep(sv.HeartbeatEvery)
			now := proc.Now()
			for _, p := range s.Partitions() { // id order: deterministic
				if !p.hangable || p.state != PartReady {
					continue
				}
				if now-s.beatProgress(p, now) > deadline {
					s.Fail(p, FailHang)
				}
			}
		}
	})
}

// EnableWatchdog starts the SPM hang detector with the installed (or
// default) supervision policy. Deprecated spelling of StartWatchdog, kept
// for the original watchdog tests.
func (s *SPM) EnableWatchdog() *sim.Proc { return s.StartWatchdog() }

// AwaitReady blocks proc until the partition's in-flight recovery (if any)
// completes. If the partition is (or becomes) quarantined, AwaitReady
// returns a *QuarantinedError immediately instead of parking forever —
// quarantine only lifts on an operator's ReleaseQuarantine, which callers
// must wait for explicitly via AwaitRelease.
func (s *SPM) AwaitReady(proc *sim.Proc, p *Partition) error {
	for p.state != PartReady {
		if p.state == PartQuarantined {
			return &QuarantinedError{Partition: p.Name}
		}
		p.restartSig.Wait(proc)
	}
	return nil
}

// AwaitRelease blocks proc until the partition is ready, waiting through a
// quarantine (unlike AwaitReady, which refuses). It returns when an
// operator released the partition and its restart completed.
func (s *SPM) AwaitRelease(proc *sim.Proc, p *Partition) {
	for p.state != PartReady {
		p.restartSig.Wait(proc)
	}
}

// ReleaseQuarantine is the operator action that lifts a quarantine: the
// failure history is cleared and the partition goes through the mOS reload
// half of recovery (device and memory were already scrubbed when the
// quarantine engaged). Returns an error unless the partition is currently
// quarantined.
func (s *SPM) ReleaseQuarantine(p *Partition) error {
	if p.state != PartQuarantined {
		return fmt.Errorf("spm: partition %q is %s, not quarantined", p.Name, p.state)
	}
	p.quarantine = false
	p.failTimes = nil
	p.state = PartRestarting
	mPartsReleased.Inc()
	trace.Default.InstantAt(s.K.Now(), "spm", p.Name, "quarantine-released", nil)
	sig := p.restartSig
	s.K.Spawn(fmt.Sprintf("spm-release-%s", p.Name), func(proc *sim.Proc) {
		proc.Sleep(s.Costs.MOSRestart)
		if p.pendingImage != nil {
			p.mosHash = attest.Measure(p.pendingImage)
			p.pendingImage = nil
		}
		p.epoch++
		p.lastBeat = proc.Now()
		p.state = PartReady
		trace.Default.Instant(proc, "spm", p.Name, "partition-ready", nil)
		p.restartSig = sim.NewSignal(s.K)
		s.isolationChanged()
		if p.onRestart != nil {
			p.onRestart(p.epoch)
		}
		sig.Fire()
	})
	return nil
}
