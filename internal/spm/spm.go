// Package spm implements CRONUS's Secure Partition Manager — the S-EL2
// hypervisor of the MicroTEE architecture (§III-A). The SPM owns every
// stage-2 page table, creates and isolates partitions (one per device, each
// running one mOS), brokers trusted shared memory between partitions
// (§IV-C), and drives the proceed-trap failure recovery procedure (§IV-D).
//
// The SPM also plays the secure monitor's attestation role (§IV-A): it
// derives the platform attestation key from the fused root of trust,
// measures mOS images, and signs platform reports.
//
// Failure handling is the proceed-trap procedure of §IV-D (recover.go):
// Fail invalidates a partition's isolation state in one step — stage-2
// tables cleared, shared-memory grants revoked, registered procs killed —
// then restarts the device and mOS in a new partition epoch while peers
// observe *PeerFault on their next access instead of blocking. OnFailure
// lets policy layers (the serving plane's scheduler) learn of a trap the
// instant it fires; AwaitReady parks callers until the recovery completes.
//
// Health supervision (supervise.go) closes the watchdog loop of §IV-D's
// third failure circumstance: each supervised mOS publishes a monotonic
// heartbeat word into SPM-visible memory, a watchdog process fails silent
// partitions with FailHang after MissedBeats periods, restart backoff grows
// exponentially with the sliding-window failure history, and a partition
// that crash-loops past QuarantineAfter is parked in PartQuarantined until
// an operator's ReleaseQuarantine.
//
// Two hooks exist for deterministic fault injection (the chaos harness):
// Fail itself doubles as the crash injection point, and SetAttestFault can
// veto local-attestation reports to model provisioning outages during a
// replica restart. Both are ordinary control flow — no test-only build
// tags — so injected faults exercise exactly the production paths.
package spm

import (
	"fmt"
	"sync"

	"cronus/internal/attest"
	"cronus/internal/hw"
	"cronus/internal/sim"
	"cronus/internal/trace"
)

// PartitionID identifies an S-EL2 partition (the mOS id — the top 8 bits of
// every enclave id minted inside it).
type PartitionID uint8

// PartState is a partition's lifecycle state.
type PartState int

const (
	// PartReady: the partition is serving requests.
	PartReady PartState = iota
	// PartFailed: a failure was detected; stage-2 entries of sharers are
	// already invalidated (r_f = 1) and recovery is in progress.
	PartFailed
	// PartRestarting: device clearing and mOS reload are underway.
	PartRestarting
	// PartQuarantined: the partition crash-looped past the supervision
	// policy's window; the SPM scrubbed it but refuses to restart it until
	// an operator calls ReleaseQuarantine.
	PartQuarantined
)

// String names the lifecycle state.
func (s PartState) String() string {
	switch s {
	case PartReady:
		return "ready"
	case PartFailed:
		return "failed"
	case PartRestarting:
		return "restarting"
	case PartQuarantined:
		return "quarantined"
	}
	return "unknown"
}

// Partition is one isolated S-EL2 partition: a device, its mOS, and the
// mEnclaves running on it.
type Partition struct {
	ID     PartitionID
	Name   string
	Device string // device tree node this partition owns ("" for CPU-only)

	spm          *SPM
	stage2       *hw.AddrSpace // IPA -> PA
	shard        int           // kernel shard hosting this partition's procs (0 = host shard)
	ipaNext      uint64        // bump allocator for IPA page numbers
	state        PartState
	epoch        uint64 // incremented every restart; stale views/eids die
	mosHash      attest.Measurement
	pendingImage []byte // staged mOS update, applied at the next restart

	// ownPages tracks pages allocated to this partition (for scrubbing on
	// failure): IPA page -> {PA frame, region}.
	ownPages map[uint64]ownedPage

	// procs are the simulated threads running inside this partition; they
	// are killed when the partition fails.
	procs map[*sim.Proc]struct{}

	// beats is the watchdog heartbeat timestamp.
	lastBeat sim.Time
	hangable bool // partition participates in hang detection

	// Heartbeat word published by the supervised mOS (ArmHeartbeat): the
	// watchdog reads the 64-bit word at IPA beatIPA through this
	// partition's stage-2 table and treats any change since beatSeen as
	// progress. Valid only for the incarnation beatEpoch.
	beatIPA   uint64
	beatEpoch uint64
	beatArmed bool
	beatSeen  uint64

	// Crash-loop supervision state: panic/hang failure instants inside
	// the sliding window, and whether the partition is quarantined.
	// forceQuarantine makes the next Fail quarantine unconditionally —
	// the measurement-revocation path (Revoke), which never restarts.
	failTimes       []sim.Time
	quarantine      bool
	forceQuarantine bool

	// onRestart is installed by the mOS layer to re-initialize services
	// after recovery completes.
	onRestart func(epoch uint64)

	restartSig *sim.Signal // fires when the current recovery completes
}

type ownedPage struct {
	pfn    uint64
	region string
}

// State returns the partition's lifecycle state.
func (p *Partition) State() PartState { return p.state }

// Epoch returns the partition incarnation (bumped on every restart).
func (p *Partition) Epoch() uint64 { return p.epoch }

// MOSHash returns the measured mOS image hash.
func (p *Partition) MOSHash() attest.Measurement { return p.mosHash }

// SetShard records the kernel shard this partition's processes run on when
// the serving plane shards the event queue; executors spawned for the
// partition are placed there. Zero (the default) means the host shard.
func (p *Partition) SetShard(sh int) { p.shard = sh }

// Shard returns the kernel shard assigned by SetShard.
func (p *Partition) Shard() int { return p.shard }

// Register adds a simulated thread to the partition so a failure kills it.
func (p *Partition) Register(proc *sim.Proc) { p.procs[proc] = struct{}{} }

// Unregister removes a finished thread.
func (p *Partition) Unregister(proc *sim.Proc) { delete(p.procs, proc) }

// SetRestartHook installs the mOS reload callback.
func (p *Partition) SetRestartHook(fn func(epoch uint64)) { p.onRestart = fn }

// failObserver is one registered OnFailure callback.
type failObserver struct {
	id int
	fn func(*FailureRecord)
}

// OnFailure registers an observer invoked synchronously from Fail, right
// after step ① completes (sharers invalidated, r_f set, partition threads
// killed) and before the asynchronous recovery starts. The record's
// ReadyAt/Epoch fields are filled in later, when the recovery completes;
// observers wanting the ready instant should AwaitReady. Observers must not
// block; they run in the failing caller's context. The returned function
// cancels the registration.
func (s *SPM) OnFailure(fn func(*FailureRecord)) func() {
	s.failNext++
	id := s.failNext
	s.failObs = append(s.failObs, failObserver{id: id, fn: fn})
	return func() {
		for i, o := range s.failObs {
			if o.id == id {
				s.failObs = append(s.failObs[:i], s.failObs[i+1:]...)
				return
			}
		}
	}
}

// notifyFailure runs the registered OnFailure observers in registration
// order.
func (s *SPM) notifyFailure(rec *FailureRecord) {
	for _, o := range s.failObs {
		o.fn(rec)
	}
}

// SPM is the secure partition manager.
type SPM struct {
	K     *sim.Kernel
	M     *hw.Machine
	Costs *sim.CostModel

	parts  map[PartitionID]*Partition
	nextID PartitionID
	grants map[int]*grant
	nextG  int
	// sharedPFN enforces the §IV-D rule that a physical page may be
	// shared at most once: pfn -> grant id.
	sharedPFN map[uint64]int

	// isoWatches are the isolation-change observers (see tlb.go): waiters
	// parked on shared-memory doorbells that must re-check state when the
	// SPM tears down a mapping without writing the watched word. isoMu
	// guards the list: doorbell waiters register and cancel from partition
	// shards during parallel windows, while teardown notifications always
	// run in sequential contexts.
	isoMu      sync.Mutex
	isoWatches []isoWatch
	isoNext    int

	// failObs are the failure-record observers (OnFailure): policy layers
	// above the sessions (e.g. the serving plane's scheduler) that must
	// learn of a proceed-trap recovery the instant it starts.
	failObs  []failObserver
	failNext int

	// sup is the partition health policy (SetSupervision); the zero value
	// reproduces the legacy watchdog with backoff/quarantine disabled.
	sup Supervision

	// attestFault, when non-nil, can veto local attestation for a
	// partition's enclaves (SetAttestFault) — the chaos harness's model of
	// provisioning/attestation infrastructure failing while a replica
	// restarts.
	attestFault func(p *Partition) error

	// Attestation state.
	rotPriv    attest.PrivateKey
	atkPriv    attest.PrivateKey
	AtKPub     attest.PublicKey
	AtKCert    []byte // installed after the attestation service endorses AtK
	lsk        *attest.LocalSealer
	dtHash     attest.Measurement
	deviceKeys map[string]attest.PublicKey
	deviceCert map[string][]byte
	deviceVend map[string]string

	booted bool
}

// Boot initializes the SPM on a machine: it validates and freezes the device
// tree, locks the TZASC/TZPC and fuse bank, and derives the platform keys
// from the fused root of trust. It mirrors CRONUS's boot sequence (§V-A).
func Boot(k *sim.Kernel, m *hw.Machine, costs *sim.CostModel) (*SPM, error) {
	if err := m.DT.Validate(); err != nil {
		return nil, fmt.Errorf("spm: rejecting device tree: %w", err)
	}
	m.DT.Freeze()
	m.TZASC.Lock()
	m.TZPC.Lock()
	m.GIC.Lock()
	rotSeed, err := m.Fuses.Read(hw.SecureWorld, "platform-rot")
	if err != nil {
		return nil, fmt.Errorf("spm: no platform root of trust fused: %w", err)
	}
	m.Fuses.Lock()
	rot := attest.KeyFromSeed(rotSeed)
	atk := attest.KeyFromSeed(append([]byte("atk/"), rotSeed...))
	dth := m.DT.Hash()
	s := &SPM{
		K:          k,
		M:          m,
		Costs:      costs,
		parts:      make(map[PartitionID]*Partition),
		nextID:     1,
		grants:     make(map[int]*grant),
		sharedPFN:  make(map[uint64]int),
		rotPriv:    rot,
		atkPriv:    atk,
		AtKPub:     atk.Public().(attest.PublicKey),
		lsk:        attest.NewLocalSealer(rotSeed),
		dtHash:     attest.Measurement(dth),
		deviceKeys: make(map[string]attest.PublicKey),
		deviceCert: make(map[string][]byte),
		deviceVend: make(map[string]string),
		booted:     true,
	}
	// The isolation hardware has no clock; the SPM lends it one so every
	// TZASC/TZPC/SMMU denial shows up as a trace instant at the time the
	// access was refused.
	hw.SetDenialHook(func(f *hw.Fault) {
		if trace.Default.Enabled() {
			trace.Default.InstantAt(k.Now(), "hw", f.Space, "access-denied ("+f.Kind.String()+")", nil)
		}
	})
	return s, nil
}

// RoTPub returns the platform root-of-trust public key (for registering the
// platform with an attestation service).
func (s *SPM) RoTPub() attest.PublicKey { return s.rotPriv.Public().(attest.PublicKey) }

// ProveAtK returns the RoT's signature over the attestation key, which the
// attestation service verifies before endorsing AtK.
func (s *SPM) ProveAtK() []byte { return attest.Sign(s.rotPriv, s.AtKPub) }

// InstallAtKCert stores the service endorsement for inclusion in reports.
func (s *SPM) InstallAtKCert(cert []byte) { s.AtKCert = cert }

// DTHash returns the frozen device tree measurement.
func (s *SPM) DTHash() attest.Measurement { return s.dtHash }

// LSK exposes the local seal key to secure-world components only. The
// normal world has no path to this value.
func (s *SPM) LSK() *attest.LocalSealer { return s.lsk }

// CreatePartition carves out a new S-EL2 partition owning the named device
// ("" for a CPU partition) and measures its mOS image. One partition per
// device and vice versa (§III-A).
func (s *SPM) CreatePartition(name, device string, mosImage []byte) (*Partition, error) {
	if !s.booted {
		return nil, fmt.Errorf("spm: not booted")
	}
	if device != "" {
		if _, ok := s.M.DT.Find(device); !ok {
			return nil, fmt.Errorf("spm: device %q not in device tree", device)
		}
		for _, p := range s.parts {
			if p.Device == device {
				return nil, fmt.Errorf("spm: device %q already owned by partition %q", device, p.Name)
			}
		}
	}
	id := s.nextID
	s.nextID++
	p := &Partition{
		ID:         id,
		Name:       name,
		Device:     device,
		spm:        s,
		stage2:     hw.NewAddrSpace(fmt.Sprintf("stage2:%s", name)),
		ipaNext:    1, // IPA page 0 kept unmapped to catch nil derefs
		ownPages:   make(map[uint64]ownedPage),
		procs:      make(map[*sim.Proc]struct{}),
		restartSig: sim.NewSignal(s.K),
		mosHash:    attest.Measure(mosImage),
	}
	s.parts[id] = p
	mPartsCreated.Inc()
	trace.Default.InstantAt(s.K.Now(), "spm", name, "partition-created", nil)
	return p, nil
}

// Partition returns a partition by id.
func (s *SPM) Partition(id PartitionID) (*Partition, bool) {
	p, ok := s.parts[id]
	return p, ok
}

// Partitions lists all partitions.
func (s *SPM) Partitions() []*Partition {
	out := make([]*Partition, 0, len(s.parts))
	for id := PartitionID(1); id < s.nextID; id++ {
		if p, ok := s.parts[id]; ok {
			out = append(out, p)
		}
	}
	return out
}

// RegisterDeviceKey records an accelerator's authenticity material after the
// mOS verified key ownership (§IV-A): the device public key, its vendor and
// the vendor CA endorsement, all included in platform reports.
func (s *SPM) RegisterDeviceKey(device, vendor string, pub attest.PublicKey, cert []byte) {
	s.deviceKeys[device] = pub
	s.deviceCert[device] = cert
	s.deviceVend[device] = vendor
}

// BuildReport assembles and signs the platform attestation report for the
// given enclave measurements and client nonce.
func (s *SPM) BuildReport(enclaves map[string]attest.Measurement, nonce uint64) *attest.SignedReport {
	r := attest.Report{
		MOSHashes:     make(map[string]attest.Measurement),
		EnclaveHashes: enclaves,
		DTHash:        s.dtHash,
		DeviceKeys:    make(map[string]attest.PublicKey),
		Nonce:         nonce,
	}
	for _, p := range s.parts {
		r.MOSHashes[p.Name] = p.mosHash
	}
	for d, k := range s.deviceKeys {
		r.DeviceKeys[d] = k
	}
	certs := make(map[string][]byte, len(s.deviceCert))
	vends := make(map[string]string, len(s.deviceVend))
	for d, c := range s.deviceCert {
		certs[d] = c
	}
	for d, v := range s.deviceVend {
		vends[d] = v
	}
	return &attest.SignedReport{
		Report:        r,
		Sig:           attest.Sign(s.atkPriv, r.Encode()),
		AtK:           s.AtKPub,
		AtKCert:       s.AtKCert,
		DeviceCerts:   certs,
		DeviceVendors: vends,
	}
}

// LocalReportFor seals a local attestation report for an enclave hosted in
// partition p — used during sRPC establishment (§IV-A "Local Attestation").
func (s *SPM) LocalReportFor(p *Partition, eid uint32, enclaveHash attest.Measurement, nonce uint64) (attest.LocalReport, []byte, error) {
	if p.state != PartReady {
		return attest.LocalReport{}, nil, fmt.Errorf("spm: partition %q not ready", p.Name)
	}
	if s.attestFault != nil {
		if err := s.attestFault(p); err != nil {
			mAttestFaults.Inc()
			return attest.LocalReport{}, nil, fmt.Errorf("spm: local attestation for partition %q refused: %w", p.Name, err)
		}
	}
	if PartitionID(eid>>24) != p.ID {
		return attest.LocalReport{}, nil, fmt.Errorf("spm: eid %#x does not belong to partition %d", eid, p.ID)
	}
	r := attest.LocalReport{
		EnclaveID:   eid,
		EnclaveHash: enclaveHash,
		MOSHash:     p.mosHash,
		Nonce:       nonce,
	}
	return r, s.lsk.Seal(r), nil
}

// SetAttestFault installs (or, with nil, removes) a veto hook consulted on
// every local-attestation report request. Returning a non-nil error makes
// the report fail as if the attestation/provisioning infrastructure were
// unavailable; callers (sRPC establishment, replica reconnect loops) must
// treat it as transient and retry. The hook exists for the chaos harness
// and must be removed before an unrelated platform runs.
func (s *SPM) SetAttestFault(fn func(p *Partition) error) { s.attestFault = fn }
