package spm

import (
	"testing"

	"cronus/internal/hw"
	"cronus/internal/sim"
)

// benchRig boots a minimal SPM with one CPU partition holding npages of
// mapped memory — no simulated procs needed, since the warm access path
// charges no virtual time.
func benchRig(tb testing.TB, npages int) (*View, uint64) {
	tb.Helper()
	k := sim.NewKernel()
	m := hw.NewMachine(hw.Config{NormalMemBytes: 4 << 20, SecureMemBytes: 64 << 20})
	if err := m.Fuses.Burn("platform-rot", []byte("bench")); err != nil {
		tb.Fatal(err)
	}
	s, err := Boot(k, m, sim.DefaultCosts())
	if err != nil {
		tb.Fatal(err)
	}
	p, err := s.CreatePartition("bench", "", []byte("img"))
	if err != nil {
		tb.Fatal(err)
	}
	ipa, err := s.AllocMem(p, npages)
	if err != nil {
		tb.Fatal(err)
	}
	return s.NewView(p, nil), ipa
}

// BenchmarkViewAccess measures the per-access cost of the view hot path —
// one warm 4 KiB page read: TLB hit, one TZASC span check, one page copy.
func BenchmarkViewAccess(b *testing.B) {
	v, ipa := benchRig(b, 1)
	buf := make([]byte, hw.PageSize)
	if err := v.Read(nil, ipa, buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Read(nil, ipa, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViewAccess64K is the multi-page variant: a 64 KiB read spanning
// 16 pages exercises the per-page TLB hits and the span-level TZASC check.
func BenchmarkViewAccess64K(b *testing.B) {
	v, ipa := benchRig(b, 16)
	buf := make([]byte, 16*hw.PageSize)
	if err := v.Read(nil, ipa, buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Read(nil, ipa, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViewAccessWord is the ring-header pattern: an 8-byte warm read.
func BenchmarkViewAccessWord(b *testing.B) {
	v, ipa := benchRig(b, 1)
	var buf [8]byte
	if err := v.Read(nil, ipa, buf[:]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Read(nil, ipa, buf[:]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTLBHitPathZeroAllocs guards the hot path the same way the metrics and
// trace packages guard theirs: a warm view access must not allocate.
func TestTLBHitPathZeroAllocs(t *testing.T) {
	v, ipa := benchRig(t, 1)
	var buf [64]byte
	if err := v.Read(nil, ipa, buf[:]); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := v.Read(nil, ipa, buf[:]); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("TLB hit path allocates %.1f times per access; want 0", n)
	}
}
