package spm

import (
	"fmt"
	"sort"

	"cronus/internal/attest"
	"cronus/internal/hw"
	"cronus/internal/sim"
	"cronus/internal/trace"
)

// FailReason classifies how the SPM learned of a partition failure (§IV-D
// lists the three circumstances).
type FailReason int

const (
	// FailRequested: the partition or the untrusted OS asked for a
	// restart (mOS update / reconfiguration).
	FailRequested FailReason = iota
	// FailPanic: the partition trapped into the SPM with an unhandled
	// hardware or software failure.
	FailPanic
	// FailHang: the SPM watchdog found the partition unresponsive.
	FailHang
	// FailRevoked: continuous re-measurement found the partition's
	// measurement stale or mismatched and revoked its attestation; the
	// partition drains straight into quarantine (never auto-restarts).
	FailRevoked
)

// String names the failure reason.
func (r FailReason) String() string {
	switch r {
	case FailRequested:
		return "requested"
	case FailPanic:
		return "panic"
	case FailHang:
		return "hang"
	case FailRevoked:
		return "revoked"
	}
	return "unknown"
}

// FailureRecord captures one recovery for inspection by tests and the
// failover experiment.
type FailureRecord struct {
	Partition string
	Reason    FailReason
	FailedAt  sim.Time
	ReadyAt   sim.Time // zero while recovering, and forever if quarantined
	Epoch     uint64   // epoch after recovery
	// Backoff is the exponential restart delay this recovery serves before
	// reloading the mOS (zero for a first failure or disabled backoff).
	Backoff sim.Duration
	// Quarantined reports that this failure tripped the crash-loop policy:
	// the partition is scrubbed but not restarted (ReadyAt stays zero)
	// until an operator calls ReleaseQuarantine.
	Quarantined bool
}

// Downtime is how long the partition was unavailable.
func (r FailureRecord) Downtime() sim.Duration { return sim.Duration(r.ReadyAt - r.FailedAt) }

// Fail starts the proceed-trap recovery of partition p (§IV-D). Step ① runs
// synchronously: every sharer's stage-2 and SMMU entries for memory shared
// with p are invalidated, closing the TOCTOU window before anything else can
// run, and r_f is set so new share requests are refused. Steps ② and ③ are
// asynchronous: a recovery process clears the device and shared memory,
// reloads the mOS, and later traps deliver fault signals to survivors.
//
// Calling Fail on a partition that is already failed is a no-op (concurrent
// failure reports collapse; step ① execution is serialized by construction).
func (s *SPM) Fail(p *Partition, reason FailReason) *FailureRecord {
	if p.state != PartReady {
		return nil
	}
	failedAt := s.K.Now()

	// Step ①: invalidate stage-2 and SMMU entries of every partition that
	// shares memory with p, in both directions. Only the incarnation a
	// grant was created in is touched — IPA numbers from an older epoch
	// belong to unrelated current allocations.
	for _, gid := range s.sortedGrantIDs() {
		g := s.grants[gid]
		if g.dead || (g.owner != p && g.peer != p) {
			continue
		}
		g.dead = true
		g.failedBy = p.Name
		other, otherBase, otherEpoch := g.peer, g.peerIPA, g.peerEpoch
		if g.peer == p {
			other, otherBase, otherEpoch = g.owner, g.ownerIPA, g.ownerEpoch
		}
		if other.epoch == otherEpoch {
			for i := 0; i < g.npages; i++ {
				other.stage2.Invalidate(otherBase + uint64(i))
			}
		}
		s.invalidateSMMU(g)
	}

	// r_f = 1: all subsequent share requests against p are refused.
	p.state = PartFailed

	// The partition's simulated threads are torn down (the hardware
	// context is gone). Kill in a stable order for determinism.
	procs := make([]*sim.Proc, 0, len(p.procs))
	for proc := range p.procs {
		procs = append(procs, proc)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].ID() < procs[j].ID() })
	for _, proc := range procs {
		s.K.Kill(proc)
	}
	p.procs = make(map[*sim.Proc]struct{})

	rec := &FailureRecord{Partition: p.Name, Reason: reason, FailedAt: failedAt}
	sv := s.SupervisionConfig()
	recent := s.recordFailure(p, failedAt, reason)
	if p.forceQuarantine || (sv.QuarantineAfter > 0 && recent >= sv.QuarantineAfter) {
		rec.Quarantined = true
		p.quarantine = true
		p.forceQuarantine = false
	} else {
		rec.Backoff = restartBackoff(sv, recent)
	}
	sig := p.restartSig
	s.isolationChanged()
	mPartsFailed.Inc()
	countFailReason(reason)
	trace.Default.InstantAt(failedAt, "spm", p.Name, "partition-failed ("+reason.String()+")", nil)
	s.notifyFailure(rec)

	// Steps ②: clear the device and the partition's memory, then reload
	// the mOS. Runs concurrently with other partitions' recoveries.
	s.K.Spawn(fmt.Sprintf("spm-recover-%s", p.Name), func(proc *sim.Proc) {
		p.state = PartRestarting
		endClear := trace.Default.Span(proc, "spm", p.Name, "failover:device-clear")
		proc.Sleep(s.Costs.DeviceClear)
		// Scrub every page the failed partition owned (A3: crashed
		// information leaks) and return it to the allocator, in IPA
		// order so the free list stays deterministic.
		vpns := make([]uint64, 0, len(p.ownPages))
		for vpn := range p.ownPages {
			vpns = append(vpns, vpn)
		}
		sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
		for _, vpn := range vpns {
			op := p.ownPages[vpn]
			delete(s.sharedPFN, op.pfn)
			_ = s.M.Mem.FreePage(op.region, hw.PA(op.pfn<<hw.PageShift))
		}
		p.ownPages = make(map[uint64]ownedPage)
		if p.Device != "" {
			_ = s.M.Bus.ResetDevice(p.Device)
			s.M.SMMU.Stream(p.Device).Clear()
		}
		endClear()
		// The failed incarnation's address space dies here: stage-2
		// cleared, IPA allocator reset, epoch bumped so stale views and
		// enclave ids are refused, and grants no incarnation can ever
		// trap again (both sides moved past the grant's epochs)
		// garbage-collected.
		p.stage2.Clear()
		p.ipaNext = 1
		p.epoch++
		for _, gid := range s.sortedGrantIDs() {
			g := s.grants[gid]
			if g.owner.epoch != g.ownerEpoch && g.peer.epoch != g.peerEpoch {
				for _, pfn := range g.pfns {
					if s.sharedPFN[pfn] == gid {
						delete(s.sharedPFN, pfn)
					}
				}
				delete(s.grants, gid)
			}
		}
		if rec.Quarantined {
			// Crash-loop policy tripped: the partition is scrubbed and
			// isolated but the SPM refuses the mOS reload until an
			// operator calls ReleaseQuarantine. ReadyAt stays zero.
			p.state = PartQuarantined
			mPartsQuarantined.Inc()
			// The reason and failure count travel in args so a flight-
			// recorder dump of this track is self-explanatory. Allocated
			// only when tracing is on (Instant checks first).
			var args map[string]string
			if trace.Default.Enabled() {
				args = map[string]string{
					"reason":   reason.String(),
					"failures": fmt.Sprintf("%d", recent),
				}
			}
			trace.Default.Instant(proc, "spm", p.Name, "partition-quarantined", args)
			p.restartSig = sim.NewSignal(s.K)
			s.isolationChanged()
			sig.Fire()
			return
		}
		// Exponential restart backoff: repeated failures inside the
		// sliding window delay the reload so a flapping partition cannot
		// monopolize the recovery path.
		if rec.Backoff > 0 {
			endBackoff := trace.Default.Span(proc, "spm", p.Name, "failover:restart-backoff")
			proc.Sleep(rec.Backoff)
			endBackoff()
		}
		// Reload and initialize the mOS image — the pending image if a
		// software update was requested, else the same image.
		endRestart := trace.Default.Span(proc, "spm", p.Name, "failover:mos-restart")
		proc.Sleep(s.Costs.MOSRestart)
		if p.pendingImage != nil {
			p.mosHash = attest.Measure(p.pendingImage)
			p.pendingImage = nil
		}
		endRestart()
		p.lastBeat = proc.Now()
		p.state = PartReady // r_f = 0
		rec.ReadyAt = proc.Now()
		rec.Epoch = p.epoch
		mPartsRecovered.Inc()
		hFailoverNS.Observe(int64(rec.ReadyAt - rec.FailedAt))
		trace.Default.SpanAt(rec.FailedAt, rec.ReadyAt, "spm", p.Name, "failover", nil)
		trace.Default.Instant(proc, "spm", p.Name, "partition-ready", nil)
		p.restartSig = sim.NewSignal(s.K)
		s.isolationChanged()
		if p.onRestart != nil {
			p.onRestart(p.epoch)
		}
		sig.Fire()
	})
	return rec
}

// UpdateMOS performs a requested mOS software update (§IV-D's first failure
// circumstance: "a restart ... often caused by an update or configuration
// of mOS"): the partition goes through the full proceed-trap recovery —
// sharers are invalidated, the device is scrubbed — and comes back running
// the new, freshly measured image, so attestation reports immediately
// reflect the update.
func (s *SPM) UpdateMOS(p *Partition, newImage []byte) *FailureRecord {
	p.pendingImage = newImage
	rec := s.Fail(p, FailRequested)
	if rec == nil {
		p.pendingImage = nil
	}
	return rec
}

// Revoke drains p through the proceed-trap machinery straight into
// quarantine: the same step-① sharer invalidation and scrub a FailHang
// gets, but with the crash-loop counting bypassed — a revoked measurement
// is never a transient, so the partition parks in PartQuarantined
// regardless of its failure history and stays there until an operator
// re-provisions it (ReleaseQuarantine). This is the recovery half of
// continuous re-measurement (DESIGN.md §15): the serving plane calls it
// when a background probe finds the partition's measurement stale or
// mismatched, and the quarantine propagates to placement exactly like a
// hang does today.
func (s *SPM) Revoke(p *Partition) *FailureRecord {
	p.forceQuarantine = true
	rec := s.Fail(p, FailRevoked)
	if rec == nil {
		p.forceQuarantine = false
	}
	return rec
}

// TamperMeasurement flips one word of p's recorded mOS measurement and
// returns the tampered value. It is the stale-measurement fault-injection
// surface: like SetAttestFault it is ordinary control flow (no test-only
// build tags), and everything downstream — the re-measurement probe, the
// ticket revocation, the quarantine drain — is the production path.
func (s *SPM) TamperMeasurement(p *Partition) attest.Measurement {
	for i := 0; i < 8; i++ {
		p.mosHash[i] ^= 0xa5
	}
	return p.mosHash
}

