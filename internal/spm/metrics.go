package spm

import "cronus/internal/metrics"

// SPM-level accounting: partition lifecycle, shared-memory grant churn,
// proceed-trap activity, and the failover latency distribution (§IV-D). The
// histogram is registered eagerly so metrics snapshots always carry it, even
// for runs with no fault — "zero failovers" is a result, not a gap.
var (
	mPartsCreated   = metrics.Default.Counter("spm.partitions.created")
	mPartsFailed    = metrics.Default.Counter("spm.partitions.failed")
	mPartsRecovered = metrics.Default.Counter("spm.partitions.recovered")
	mGrantsShared   = metrics.Default.Counter("spm.grants.shared")
	mGrantsUnshared = metrics.Default.Counter("spm.grants.unshared")
	mGrantsRevoked  = metrics.Default.Counter("spm.grants.revoked")
	mTrapsHandled   = metrics.Default.Counter("spm.traps.handled")
	hFailoverNS     = metrics.Default.Histogram("spm.failover.latency_ns")

	// Per-reason failure counters (§IV-D's three circumstances), so soak
	// output distinguishes watchdog detections from panics, plus the
	// crash-loop quarantine lifecycle.
	mFailRequested    = metrics.Default.Counter("spm.partitions.failed.requested")
	mFailPanic        = metrics.Default.Counter("spm.partitions.failed.panic")
	mFailHang         = metrics.Default.Counter("spm.partitions.failed.hang")
	mFailRevoked      = metrics.Default.Counter("spm.partitions.failed.revoked")
	mPartsQuarantined = metrics.Default.Counter("spm.partitions.quarantined")
	mPartsReleased    = metrics.Default.Counter("spm.partitions.released")

	// Simulated-TLB effectiveness (tlb.go): hits skip both stage walks,
	// flushes count whole-cache invalidations after a table mutation.
	mTLBHits    = metrics.Default.Counter("spm.tlb.hits")
	mTLBMisses  = metrics.Default.Counter("spm.tlb.misses")
	mTLBFlushes = metrics.Default.Counter("spm.tlb.flushes")

	// mAttestFaults counts local-attestation reports refused by an
	// installed SetAttestFault hook (chaos-injected provisioning outages).
	mAttestFaults = metrics.Default.Counter("spm.attest.faults_injected")
)

// countFailReason bumps the per-reason failure counter.
func countFailReason(r FailReason) {
	switch r {
	case FailRequested:
		mFailRequested.Inc()
	case FailPanic:
		mFailPanic.Inc()
	case FailHang:
		mFailHang.Inc()
	case FailRevoked:
		mFailRevoked.Inc()
	}
}
