package spm

import (
	"math/rand"
	"testing"

	"cronus/internal/hw"
	"cronus/internal/sim"
)

// TestShareFailureStateMachineFuzz drives the SPM's grant/failure state
// machine with a long random schedule of allocations, shares, unshares,
// partition failures, recoveries and memory accesses, and checks the
// §IV-C/§IV-D invariants after every step:
//
//	I1  a physical frame is referenced by at most one live grant
//	I2  every live grant's owner and peer hold stage-2 entries for it,
//	    valid unless one party failed
//	I3  after a trap is delivered, the surviving owner regains exclusive,
//	    working access to its own pages
//	I4  accesses through healthy, unshared allocations always succeed
//	I5  no operation ever panics or deadlocks the simulation
func TestShareFailureStateMachineFuzz(t *testing.T) {
	const (
		rounds = 400
		seed   = 0xC0FFEE
	)
	k := sim.NewKernel()
	m := hw.NewMachine(hw.Config{NormalMemBytes: 4 << 20, SecureMemBytes: 32 << 20})
	if err := m.Fuses.Burn("platform-rot", []byte("fuzz")); err != nil {
		t.Fatal(err)
	}
	m.DT.Add(hw.DTNode{Name: "gpu0", IRQ: 32, Secure: true})
	m.DT.Add(hw.DTNode{Name: "npu0", IRQ: 33, Secure: true})
	s, err := Boot(k, m, sim.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*Partition, 3)
	parts[0], _ = s.CreatePartition("p0", "", []byte("a"))
	parts[1], _ = s.CreatePartition("p1", "gpu0", []byte("b"))
	parts[2], _ = s.CreatePartition("p2", "npu0", []byte("c"))

	type alloc struct {
		part  *Partition
		epoch uint64
		ipa   uint64
		gid   int // 0: unshared
		peer  *Partition
		// view is persistent across rounds, so its simulated TLB holds
		// warm translations when shares are torn down, partitions fail,
		// or pages are freed — the cache-staleness oracle.
		view *View
	}
	var allocs []*alloc
	rng := rand.New(rand.NewSource(seed))

	k.Spawn("fuzz", func(p *sim.Proc) {
		defer k.Stop()
		for round := 0; round < rounds; round++ {
			switch rng.Intn(10) {
			case 0, 1, 2: // allocate a page on a random ready partition
				part := parts[rng.Intn(len(parts))]
				if part.State() != PartReady {
					continue
				}
				ipa, err := s.AllocMem(part, 1)
				if err != nil {
					t.Fatalf("round %d: alloc: %v", round, err)
				}
				a := &alloc{part: part, epoch: part.Epoch(), ipa: ipa, view: s.NewView(part, nil)}
				// Warm the view's TLB immediately so later teardown paths
				// race against a populated cache.
				if err := a.view.Write(p, a.ipa, []byte{0xAA}); err != nil {
					t.Fatalf("round %d: warming access failed: %v", round, err)
				}
				allocs = append(allocs, a)
			case 3, 4: // share an unshared allocation with another partition
				if len(allocs) == 0 {
					continue
				}
				a := allocs[rng.Intn(len(allocs))]
				if a.gid != 0 || a.part.State() != PartReady || a.epoch != a.part.Epoch() {
					continue
				}
				peer := parts[rng.Intn(len(parts))]
				if peer == a.part || peer.State() != PartReady {
					continue
				}
				_, gid, err := s.Share(a.part, a.ipa, 1, peer)
				if err != nil {
					t.Fatalf("round %d: share: %v", round, err)
				}
				a.gid, a.peer = gid, peer
				// I1: sharing the same page again must fail.
				if _, _, err := s.Share(a.part, a.ipa, 1, peer); err == nil {
					t.Fatalf("round %d: double share accepted", round)
				}
			case 5: // unshare
				if len(allocs) == 0 {
					continue
				}
				a := allocs[rng.Intn(len(allocs))]
				if a.gid == 0 || a.epoch != a.part.Epoch() || a.part.State() != PartReady {
					continue
				}
				_ = s.Unshare(a.gid)
				a.gid, a.peer = 0, nil
			case 6: // fail a random partition
				part := parts[rng.Intn(len(parts))]
				s.Fail(part, FailPanic)
			case 7: // wait for all recoveries
				for _, part := range parts {
					s.AwaitReady(p, part)
				}
				// Drop allocations from dead incarnations.
				live := allocs[:0]
				for _, a := range allocs {
					if a.epoch == a.part.Epoch() {
						live = append(live, a)
					}
				}
				allocs = live
			default: // access a random allocation
				if len(allocs) == 0 {
					continue
				}
				a := allocs[rng.Intn(len(allocs))]
				if a.epoch != a.part.Epoch() || a.part.State() != PartReady {
					// A view from a dead incarnation must never succeed,
					// no matter what its TLB cached before the restart.
					if a.epoch != a.part.Epoch() {
						if err := a.view.Write(p, a.ipa, []byte{byte(round)}); err == nil {
							t.Fatalf("round %d: stale-epoch view access succeeded", round)
						}
					}
					continue
				}
				v := a.view
				err := v.Write(p, a.ipa, []byte{byte(round)})
				if err != nil {
					// Only legal reason: a peer involved in the grant
					// failed; the trap must have cleared it so the
					// NEXT access works (I3).
					if a.gid == 0 {
						t.Fatalf("round %d: unshared access failed: %v", round, err)
					}
					a.gid, a.peer = 0, nil
					if err2 := v.Write(p, a.ipa, []byte{byte(round)}); err2 != nil {
						t.Fatalf("round %d: access after trap still fails: %v", round, err2)
					}
				}
			}
			// Global invariant I1: no frame appears in two LIVE grants.
			// (A dead grant may hold a stale frame list until its
			// survivor traps; it never acts on frames, so overlap with
			// a recycled frame is benign.)
			seen := make(map[uint64]int)
			for gid, g := range s.grants {
				if g.dead {
					continue
				}
				for _, pfn := range g.pfns {
					if prev, dup := seen[pfn]; dup {
						t.Fatalf("round %d: frame %d in live grants %d and %d", round, pfn, prev, gid)
					}
					seen[pfn] = gid
				}
			}
			for pfn, gid := range s.sharedPFN {
				if _, ok := s.grants[gid]; !ok {
					t.Fatalf("round %d: sharedPFN[%d] -> dangling grant %d", round, pfn, gid)
				}
			}
			// Epoch hygiene: no live, unshared allocation's frame may be
			// registered in sharedPFN (the stale-grant corruption class).
			for _, a := range allocs {
				if a.epoch != a.part.Epoch() || a.gid != 0 || a.part.State() != PartReady {
					continue
				}
				if e, ok := a.part.stage2.Lookup(a.ipa >> hw.PageShift); ok && e.Valid {
					if gid, bad := s.sharedPFN[e.Frame]; bad {
						t.Fatalf("round %d: unshared alloc's frame %d registered to grant %d", round, e.Frame, gid)
					}
				}
			}
		}
		// Drain all recoveries before the simulation ends.
		for _, part := range parts {
			s.AwaitReady(p, part)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("simulation error (I5): %v", err)
	}
}
