package spm

import (
	"strings"
	"testing"

	"cronus/internal/metrics"
	"cronus/internal/sim"
	"cronus/internal/trace"
)

// A mid-run partition fault must leave a coherent observability record: the
// partition-failed instant at the fault time, the partition-ready instant at
// the recovery time, in that order, and a failover-latency histogram sample
// equal to the recorded downtime.
func TestFailTraceAndFailoverHistogram(t *testing.T) {
	k, _, s := testRig(t)
	p, err := s.CreatePartition("gpu-part", "gpu0", []byte("gpu mOS"))
	if err != nil {
		t.Fatal(err)
	}

	trace.Default.Enable()
	defer trace.Default.Disable()
	metrics.Default.Reset()
	metrics.Default.Enable()
	defer metrics.Default.Disable()

	var rec *FailureRecord
	k.Spawn("driver", func(proc *sim.Proc) {
		defer k.Stop()
		proc.Sleep(5 * sim.Microsecond)
		rec = s.Fail(p, FailPanic)
		s.AwaitReady(proc, p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.ReadyAt <= rec.FailedAt {
		t.Fatalf("bad failure record: %+v", rec)
	}

	var failed, ready *trace.Event
	for _, e := range trace.Default.Events() {
		e := e
		switch {
		case strings.HasPrefix(e.Name, "partition-failed"):
			failed = &e
		case e.Name == "partition-ready":
			ready = &e
		}
	}
	if failed == nil || ready == nil {
		t.Fatalf("trace missing failure lifecycle instants (failed=%v ready=%v)", failed, ready)
	}
	if failed.Start != rec.FailedAt {
		t.Errorf("partition-failed at %d, record says %d", failed.Start, rec.FailedAt)
	}
	if ready.Start != rec.ReadyAt {
		t.Errorf("partition-ready at %d, record says %d", ready.Start, rec.ReadyAt)
	}
	if !strings.Contains(failed.Name, "panic") {
		t.Errorf("partition-failed instant does not carry the reason: %q", failed.Name)
	}

	snap := metrics.Default.Snapshot()
	h, ok := snap.Histograms["spm.failover.latency_ns"]
	if !ok {
		t.Fatal("snapshot missing spm.failover.latency_ns")
	}
	if h.Count != 1 {
		t.Fatalf("failover histogram count = %d, want 1", h.Count)
	}
	if want := int64(rec.Downtime()); h.Sum != want || h.Min != want || h.Max != want {
		t.Errorf("failover sample = {sum %d min %d max %d}, want all %d", h.Sum, h.Min, h.Max, want)
	}
	if got := snap.Counters["spm.partitions.failed"]; got != 1 {
		t.Errorf("spm.partitions.failed = %d, want 1", got)
	}
	if got := snap.Counters["spm.partitions.recovered"]; got != 1 {
		t.Errorf("spm.partitions.recovered = %d, want 1", got)
	}
}
