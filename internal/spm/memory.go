package spm

import (
	"fmt"
	"sort"

	"cronus/internal/hw"
	"cronus/internal/sim"
	"cronus/internal/trace"
)

// grant records one inter-partition memory share (Figure 6). The §IV-D
// restriction that a physical page may be shared at most once keeps this a
// strict pairwise relationship, which is what makes trap handling complete.
type grant struct {
	id       int
	owner    *Partition
	peer     *Partition
	ownerIPA uint64 // first IPA page number in the owner
	peerIPA  uint64 // first IPA page number in the peer
	npages   int
	pfns     []uint64
	dead     bool
	failedBy string // name of the failed party once dead
	// IPA page numbers only mean something within one partition
	// incarnation: every grant records the epochs it was created in, and
	// no path may touch a partition's stage-2 through a grant from a
	// different epoch (a restarted partition reuses the same IPA range
	// for unrelated allocations).
	ownerEpoch uint64
	peerEpoch  uint64
}

// coversOwner reports whether vpn falls in the grant's owner-side range AND
// the owner is still the same incarnation the grant was created in.
func (g *grant) coversOwner(vpn uint64) bool {
	return g.owner.epoch == g.ownerEpoch &&
		vpn >= g.ownerIPA && vpn < g.ownerIPA+uint64(g.npages)
}

// coversPeer is the peer-side analogue.
func (g *grant) coversPeer(vpn uint64) bool {
	return g.peer.epoch == g.peerEpoch &&
		vpn >= g.peerIPA && vpn < g.peerIPA+uint64(g.npages)
}

// AllocMem allocates npages of secure memory to partition p and maps them
// read-write into its stage-2 table. It returns the base IPA.
func (s *SPM) AllocMem(p *Partition, npages int) (uint64, error) {
	if p.state != PartReady {
		return 0, fmt.Errorf("spm: partition %q not ready (r_f set)", p.Name)
	}
	base := p.ipaNext
	for i := 0; i < npages; i++ {
		pa, err := s.M.Mem.AllocPages("secure", 1)
		if err != nil {
			return 0, err
		}
		vpn := p.ipaNext
		p.ipaNext++
		p.stage2.Map(vpn, pa.PFN(), hw.PermRW)
		p.ownPages[vpn] = ownedPage{pfn: pa.PFN(), region: "secure"}
	}
	return base << hw.PageShift, nil
}

// FreeMem unmaps and scrubs pages previously allocated with AllocMem.
func (s *SPM) FreeMem(p *Partition, ipa uint64, npages int) {
	vpn := ipa >> hw.PageShift
	for i := 0; i < npages; i++ {
		op, ok := p.ownPages[vpn+uint64(i)]
		if !ok {
			continue
		}
		delete(p.ownPages, vpn+uint64(i))
		delete(s.sharedPFN, op.pfn)
		p.stage2.Unmap(vpn + uint64(i))
		// ownPages records the region each frame came from, so this
		// cannot fail unless the SPM's own bookkeeping is corrupt.
		_ = s.M.Mem.FreePage(op.region, hw.PA(op.pfn<<hw.PageShift))
	}
	s.isolationChanged()
}

// Share maps npages of owner's memory (starting at ownerIPA) into peer's
// stage-2 table and returns the peer-side IPA and the grant id. It enforces
// the share-once rule and refuses while either side has r_f set.
func (s *SPM) Share(owner *Partition, ownerIPA uint64, npages int, peer *Partition) (uint64, int, error) {
	if owner.state != PartReady {
		return 0, 0, fmt.Errorf("spm: share refused, owner %q not ready", owner.Name)
	}
	if peer.state != PartReady {
		return 0, 0, fmt.Errorf("spm: share refused, peer %q not ready (r_f set)", peer.Name)
	}
	if owner == peer {
		return 0, 0, fmt.Errorf("spm: cannot share a page with the owning partition")
	}
	vpn := ownerIPA >> hw.PageShift
	pfns := make([]uint64, npages)
	for i := 0; i < npages; i++ {
		op, ok := owner.ownPages[vpn+uint64(i)]
		if !ok {
			return 0, 0, fmt.Errorf("spm: partition %q does not own IPA page %#x", owner.Name, (vpn+uint64(i))<<hw.PageShift)
		}
		if gid, shared := s.sharedPFN[op.pfn]; shared {
			return 0, 0, fmt.Errorf("spm: page already shared (grant %d) — pages may be shared only once", gid)
		}
		pfns[i] = op.pfn
	}
	peerBase := peer.ipaNext
	peer.ipaNext += uint64(npages)
	for i := 0; i < npages; i++ {
		peer.stage2.Map(peerBase+uint64(i), pfns[i], hw.PermRW)
	}
	s.nextG++
	g := &grant{
		id:         s.nextG,
		owner:      owner,
		peer:       peer,
		ownerIPA:   vpn,
		peerIPA:    peerBase,
		npages:     npages,
		pfns:       pfns,
		ownerEpoch: owner.epoch,
		peerEpoch:  peer.epoch,
	}
	s.grants[g.id] = g
	for _, pfn := range pfns {
		s.sharedPFN[pfn] = g.id
	}
	mGrantsShared.Inc()
	if trace.Default.Enabled() {
		trace.Default.InstantAt(s.K.Now(), "spm", owner.Name, "grant-shared to "+peer.Name, nil)
	}
	return peerBase << hw.PageShift, g.id, nil
}

// Unshare dissolves a grant cleanly (stream closed): the peer's mappings are
// removed and the pages become shareable again. Stage-2 tables are only
// touched for partition incarnations the grant was created in; if the grant
// died from a peer failure, the owner's invalidated entries are restored
// (the same recovery the trap path performs).
func (s *SPM) Unshare(gid int) error {
	g, ok := s.grants[gid]
	if !ok {
		return fmt.Errorf("spm: no grant %d", gid)
	}
	if g.peer.epoch == g.peerEpoch {
		for i := 0; i < g.npages; i++ {
			g.peer.stage2.Unmap(g.peerIPA + uint64(i))
		}
	}
	if g.dead && g.owner.epoch == g.ownerEpoch {
		for i := 0; i < g.npages; i++ {
			g.owner.stage2.Map(g.ownerIPA+uint64(i), g.pfns[i], hw.PermRW)
		}
	}
	for _, pfn := range g.pfns {
		if s.sharedPFN[pfn] == gid {
			delete(s.sharedPFN, pfn)
		}
	}
	delete(s.grants, gid)
	mGrantsUnshared.Inc()
	s.isolationChanged()
	return nil
}

// RevokeGrant is the mEnclave-failure path (§IV-D "Handling mEnclave
// failures"): both sides' stage-2 entries for the share are invalidated so
// the surviving communicating mEnclave traps and is notified.
func (s *SPM) RevokeGrant(gid int, failedBy string) error {
	g, ok := s.grants[gid]
	if !ok {
		return fmt.Errorf("spm: no grant %d", gid)
	}
	if g.dead {
		return nil
	}
	g.dead = true
	g.failedBy = failedBy
	for i := 0; i < g.npages; i++ {
		if g.owner.epoch == g.ownerEpoch {
			g.owner.stage2.Invalidate(g.ownerIPA + uint64(i))
		}
		if g.peer.epoch == g.peerEpoch {
			g.peer.stage2.Invalidate(g.peerIPA + uint64(i))
		}
	}
	s.invalidateSMMU(g)
	mGrantsRevoked.Inc()
	if trace.Default.Enabled() {
		trace.Default.InstantAt(s.K.Now(), "spm", g.owner.Name, "grant-revoked ("+failedBy+" failed)", nil)
	}
	s.isolationChanged()
	return nil
}

// invalidateSMMU drops any SMMU mappings of the grant's frames for both
// partitions' devices (spt²(P_i, P_a) in the paper's notation).
func (s *SPM) invalidateSMMU(g *grant) {
	inFrame := func(_, pfn uint64) bool {
		for _, f := range g.pfns {
			if f == pfn {
				return true
			}
		}
		return false
	}
	// Only a device whose partition is still the grant's incarnation can
	// hold SMMU entries from this grant; a recovered partition's stream
	// was cleared and its frames may have been recycled.
	if g.owner.Device != "" && g.owner.epoch == g.ownerEpoch {
		s.M.SMMU.Stream(g.owner.Device).InvalidateWhere(inFrame)
	}
	if g.peer.Device != "" && g.peer.epoch == g.peerEpoch {
		s.M.SMMU.Stream(g.peer.Device).InvalidateWhere(inFrame)
	}
}

// sortedGrantIDs returns grant ids in ascending order so grant scans are
// deterministic (map iteration order would make same-timestamp behaviour
// schedule-dependent).
func (s *SPM) sortedGrantIDs() []int {
	ids := make([]int, 0, len(s.grants))
	for id := range s.grants {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// PeerFault is the fault signal delivered to an mEnclave whose shared-memory
// access trapped because the communicating partition or mEnclave failed
// (§IV-D step ③). sRPC turns it into a clean stream teardown; applications
// using raw shared memory see it as their exception-handler signal.
type PeerFault struct {
	Failed string // name of the failed partition or enclave
	IPA    uint64 // faulting intermediate physical address
}

// Error implements error.
func (e *PeerFault) Error() string {
	return fmt.Sprintf("spm: peer %q failed; shared memory at %#x revoked", e.Failed, e.IPA)
}

// PartitionDownError reports that the caller's own partition is not ready.
type PartitionDownError struct{ Name string }

// Error implements error.
func (e *PartitionDownError) Error() string {
	return fmt.Sprintf("spm: partition %q is down or restarted", e.Name)
}

// View is a memory view used by code executing inside a partition: an
// optional stage-1 table (the mEnclave's VA space) over the partition's
// stage-2 table. A per-view simulated TLB (tlb.go) caches completed walks;
// any table mutation bumps the backing AddrSpace generation and flushes it,
// so stage-2 invalidation still genuinely traps the access — the mechanism
// the proceed-trap protocol builds on.
type View struct {
	spm   *SPM
	part  *Partition
	s1    *hw.AddrSpace // nil: the view addresses IPA directly (mOS view)
	epoch uint64

	// Simulated TLB: vpn → cached walk result, valid only while the
	// generations below match the backing tables (see tlb.go).
	tlb      map[uint64]tlbEntry
	tlbS1Gen uint64
	tlbS2Gen uint64
}

// NewView creates a view for the partition's current incarnation.
func (s *SPM) NewView(p *Partition, s1 *hw.AddrSpace) *View {
	return &View{spm: s, part: p, s1: s1, epoch: p.epoch, tlb: make(map[uint64]tlbEntry)}
}

// Stage1 returns the view's stage-1 table (nil for an mOS view).
func (v *View) Stage1() *hw.AddrSpace { return v.s1 }

// Partition returns the partition this view executes in.
func (v *View) Partition() *Partition { return v.part }

// Read copies len(buf) bytes from va. proc (optional) is charged trap costs.
func (v *View) Read(proc *sim.Proc, va uint64, buf []byte) error {
	return v.access(proc, va, buf, false)
}

// Write copies data to va.
func (v *View) Write(proc *sim.Proc, va uint64, data []byte) error {
	return v.access(proc, va, data, true)
}

func (v *View) access(proc *sim.Proc, va uint64, buf []byte, write bool) error {
	if v.part.state != PartReady || v.part.epoch != v.epoch {
		return &PartitionDownError{Name: v.part.Name}
	}
	want := hw.PermR
	if write {
		want = hw.PermW
	}
	v.tlbValidate()
	off := 0
	for off < len(buf) {
		cur := va + uint64(off)
		vpn := cur >> hw.PageShift
		pfn, hit := v.tlbLookup(vpn, want)
		if !hit {
			var err error
			pfn, err = v.walkSlow(proc, vpn, want)
			if err != nil {
				return err
			}
		}
		pa := hw.PA(pfn<<hw.PageShift | cur&(hw.PageSize-1))
		n := hw.PageSize - int(cur&(hw.PageSize-1))
		if n > len(buf)-off {
			n = len(buf) - off
		}
		var err error
		if write {
			err = v.spm.M.Mem.Write(hw.SecureWorld, pa, buf[off:off+n])
		} else {
			err = v.spm.M.Mem.Read(hw.SecureWorld, pa, buf[off:off+n])
		}
		if err != nil {
			return err
		}
		off += n
	}
	return nil
}

// walkSlow is the TLB miss path: the full two-stage walk with the original
// fault semantics (stage-1 faults surface raw; an invalidated stage-2 entry
// enters the proceed-trap protocol), filling the TLB on success with the
// intersection of the stage-1 and stage-2 permissions so a cached read
// mapping can never satisfy a later write.
func (v *View) walkSlow(proc *sim.Proc, vpn uint64, want hw.Perm) (uint64, error) {
	ipaPage := vpn
	perm := hw.PermRW | hw.PermX
	if v.s1 != nil {
		p, f := v.s1.Translate(vpn, want)
		if f != nil {
			return 0, f
		}
		ipaPage = p
		e1, _ := v.s1.Lookup(vpn)
		perm = e1.Perm
	}
	pfn, f := v.part.stage2.Translate(ipaPage, want)
	if f != nil {
		if f.Kind == hw.FaultInvalidated {
			return 0, v.spm.handleTrap(proc, v.part, ipaPage, f)
		}
		return 0, f
	}
	e2, _ := v.part.stage2.Lookup(ipaPage)
	v.tlb[vpn] = tlbEntry{pfn: pfn, perm: perm & e2.Perm}
	return pfn, nil
}

// handleTrap implements §IV-D step ③: a partition touched shared memory
// whose mapping the SPM invalidated during a failure. The SPM restores the
// partition's access to pages it owns, reclaims mappings of pages the failed
// party owned, and delivers the fault signal.
func (s *SPM) handleTrap(proc *sim.Proc, q *Partition, ipaPage uint64, raw *hw.Fault) error {
	mTrapsHandled.Inc()
	if proc != nil {
		if trace.Default.Enabled() {
			trace.Default.Instant(proc, "spm", q.Name, "proceed-trap", nil)
		}
		proc.Sleep(s.Costs.PageFaultTrap)
	}
	for _, gid := range s.sortedGrantIDs() {
		g := s.grants[gid]
		if !g.dead {
			continue
		}
		switch {
		case g.owner == q && g.coversOwner(ipaPage):
			// Pages owned by the surviving partition: recover its
			// exclusive access (§IV-D: "CRONUS recovers P_i's
			// accesses to the page by changing pt²").
			for i := 0; i < g.npages; i++ {
				q.stage2.Map(g.ownerIPA+uint64(i), g.pfns[i], hw.PermRW)
			}
			for _, pfn := range g.pfns {
				if s.sharedPFN[pfn] == g.id {
					delete(s.sharedPFN, pfn)
				}
			}
			failed := g.failedBy
			delete(s.grants, g.id)
			s.isolationChanged()
			return &PeerFault{Failed: failed, IPA: ipaPage << hw.PageShift}
		case g.peer == q && g.coversPeer(ipaPage):
			// Pages owned by the failed partition: reclaim the
			// peer-side mappings; the frames are scrubbed by the
			// owner's recovery.
			for i := 0; i < g.npages; i++ {
				q.stage2.Unmap(g.peerIPA + uint64(i))
			}
			failed := g.failedBy
			delete(s.grants, g.id)
			s.isolationChanged()
			return &PeerFault{Failed: failed, IPA: ipaPage << hw.PageShift}
		}
	}
	return raw
}
