package spm

import (
	"errors"
	"strings"
	"testing"

	"cronus/internal/attest"
	"cronus/internal/hw"
	"cronus/internal/sim"
)

// testRig assembles a booted SPM on a small machine.
func testRig(t *testing.T) (*sim.Kernel, *hw.Machine, *SPM) {
	t.Helper()
	k := sim.NewKernel()
	m := hw.NewMachine(hw.Config{NormalMemBytes: 4 << 20, SecureMemBytes: 8 << 20})
	if err := m.Fuses.Burn("platform-rot", []byte("test-rot-seed")); err != nil {
		t.Fatal(err)
	}
	m.DT.Add(hw.DTNode{Name: "gpu0", Compatible: "nvidia,turing", IRQ: 32, Secure: true, Vendor: "nvidia"})
	m.DT.Add(hw.DTNode{Name: "npu0", Compatible: "vta,fsim", IRQ: 33, Secure: true, Vendor: "vta"})
	s, err := Boot(k, m, sim.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	return k, m, s
}

func TestBootRejectsInvalidDeviceTree(t *testing.T) {
	k := sim.NewKernel()
	m := hw.NewMachine(hw.Config{NormalMemBytes: 1 << 20, SecureMemBytes: 1 << 20})
	m.Fuses.Burn("platform-rot", []byte("seed"))
	m.DT.Add(hw.DTNode{Name: "a", IRQ: 1})
	m.DT.Add(hw.DTNode{Name: "b", IRQ: 1}) // IRQ spoofing setup
	if _, err := Boot(k, m, sim.DefaultCosts()); err == nil {
		t.Fatal("boot accepted a malicious device tree")
	}
}

func TestBootFreezesPlatform(t *testing.T) {
	_, m, _ := testRig(t)
	if !m.DT.Frozen() {
		t.Fatal("device tree not frozen after boot")
	}
	if !m.TZASC.Locked() {
		t.Fatal("TZASC not locked after boot")
	}
	if err := m.Fuses.Burn("rogue", []byte("x")); err == nil {
		t.Fatal("fuse bank not locked after boot")
	}
}

func TestBootRequiresRoTFuse(t *testing.T) {
	k := sim.NewKernel()
	m := hw.NewMachine(hw.Config{NormalMemBytes: 1 << 20, SecureMemBytes: 1 << 20})
	if _, err := Boot(k, m, sim.DefaultCosts()); err == nil {
		t.Fatal("boot succeeded without a fused root of trust")
	}
}

func TestCreatePartitionOnePerDevice(t *testing.T) {
	_, _, s := testRig(t)
	p1, err := s.CreatePartition("gpu-part", "gpu0", []byte("gpu mOS"))
	if err != nil {
		t.Fatal(err)
	}
	if p1.ID != 1 {
		t.Fatalf("first partition id = %d", p1.ID)
	}
	if _, err := s.CreatePartition("gpu-part2", "gpu0", []byte("x")); err == nil {
		t.Fatal("two partitions claimed the same device")
	}
	if _, err := s.CreatePartition("ghost", "tpu9", []byte("x")); err == nil {
		t.Fatal("partition created for a device not in the tree")
	}
	// CPU partitions need no device.
	if _, err := s.CreatePartition("cpu-part", "", []byte("cpu mOS")); err != nil {
		t.Fatal(err)
	}
}

func TestAllocAndViewReadWrite(t *testing.T) {
	k, _, s := testRig(t)
	p, _ := s.CreatePartition("cpu", "", []byte("mOS"))
	var done bool
	k.Spawn("test", func(proc *sim.Proc) {
		ipa, err := s.AllocMem(p, 2)
		if err != nil {
			t.Error(err)
			return
		}
		v := s.NewView(p, nil)
		msg := []byte("trusted data crossing a page boundary ok")
		if err := v.Write(proc, ipa+hw.PageSize-10, msg); err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, len(msg))
		if err := v.Read(proc, ipa+hw.PageSize-10, got); err != nil {
			t.Error(err)
			return
		}
		if string(got) != string(msg) {
			t.Errorf("got %q", got)
		}
		done = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test body did not run")
	}
}

func TestViewWithStage1Translation(t *testing.T) {
	k, _, s := testRig(t)
	p, _ := s.CreatePartition("cpu", "", []byte("mOS"))
	k.Spawn("test", func(proc *sim.Proc) {
		ipa, _ := s.AllocMem(p, 1)
		s1 := hw.NewAddrSpace("enclave-va")
		const va = 0x400000
		s1.Map(va>>hw.PageShift, ipa>>hw.PageShift, hw.PermRW)
		v := s.NewView(p, s1)
		if err := v.Write(proc, va+8, []byte("via-stage1")); err != nil {
			t.Error(err)
			return
		}
		// The same bytes are visible through the mOS (no stage-1) view.
		mosView := s.NewView(p, nil)
		got := make([]byte, 10)
		if err := mosView.Read(proc, ipa+8, got); err != nil {
			t.Error(err)
			return
		}
		if string(got) != "via-stage1" {
			t.Errorf("got %q", got)
		}
		// Unmapped VA faults as unmapped.
		err := v.Read(proc, 0x900000, got)
		var f *hw.Fault
		if !errors.As(err, &f) || f.Kind != hw.FaultUnmapped {
			t.Errorf("unmapped VA: err = %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestShareCrossPartition(t *testing.T) {
	k, _, s := testRig(t)
	pa, _ := s.CreatePartition("cpu", "", []byte("a"))
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	k.Spawn("test", func(proc *sim.Proc) {
		ipaA, _ := s.AllocMem(pa, 1)
		ipaB, _, err := s.Share(pa, ipaA, 1, pb)
		if err != nil {
			t.Error(err)
			return
		}
		va := s.NewView(pa, nil)
		vb := s.NewView(pb, nil)
		if err := va.Write(proc, ipaA, []byte("ring-record")); err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, 11)
		if err := vb.Read(proc, ipaB, got); err != nil {
			t.Error(err)
			return
		}
		if string(got) != "ring-record" {
			t.Errorf("peer read %q", got)
		}
		// Writes flow the other way too.
		if err := vb.Write(proc, ipaB, []byte("REPLY")); err != nil {
			t.Error(err)
		}
		if err := va.Read(proc, ipaA, got[:5]); err != nil {
			t.Error(err)
		}
		if string(got[:5]) != "REPLY" {
			t.Errorf("owner read %q", got[:5])
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestShareOnceRule(t *testing.T) {
	k, _, s := testRig(t)
	pa, _ := s.CreatePartition("cpu", "", []byte("a"))
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	pc, _ := s.CreatePartition("npu", "npu0", []byte("c"))
	k.Spawn("test", func(proc *sim.Proc) {
		ipaA, _ := s.AllocMem(pa, 1)
		if _, _, err := s.Share(pa, ipaA, 1, pb); err != nil {
			t.Error(err)
			return
		}
		_, _, err := s.Share(pa, ipaA, 1, pc)
		if err == nil || !strings.Contains(err.Error(), "shared only once") {
			t.Errorf("double share: err = %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestShareRefusedForForeignPages(t *testing.T) {
	k, _, s := testRig(t)
	pa, _ := s.CreatePartition("cpu", "", []byte("a"))
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	k.Spawn("test", func(proc *sim.Proc) {
		if _, _, err := s.Share(pa, 0x1000, 1, pb); err == nil {
			t.Error("shared pages the partition does not own")
		}
		if _, _, err := s.Share(pa, 0, 1, pa); err == nil {
			t.Error("self-share accepted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFailClosesTOCTOUWindowImmediately(t *testing.T) {
	k, _, s := testRig(t)
	pa, _ := s.CreatePartition("cpu", "", []byte("a"))
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	k.Spawn("test", func(proc *sim.Proc) {
		ipaA, _ := s.AllocMem(pa, 1)
		_, _, err := s.Share(pa, ipaA, 1, pb)
		if err != nil {
			t.Error(err)
			return
		}
		va := s.NewView(pa, nil)
		va.Write(proc, ipaA, []byte("pre-failure"))

		// pb fails. Step ① must synchronously revoke pa's access to
		// the shared page: A1 (TOCTOU) means pa must NOT be able to
		// keep writing secrets into memory a substituted pb could read.
		s.Fail(pb, FailPanic)
		err = va.Write(proc, ipaA, []byte("secret-after-failure"))
		var pf *PeerFault
		if !errors.As(err, &pf) {
			t.Errorf("write after peer failure: err = %v, want PeerFault", err)
			return
		}
		if pf.Failed != "gpu" {
			t.Errorf("fault names %q", pf.Failed)
		}
		// Trap handling restored pa's exclusive access to its own page
		// (the grant is dissolved), so the *next* access succeeds.
		if err := va.Write(proc, ipaA, []byte("cleanup")); err != nil {
			t.Errorf("post-trap access: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFailScrubsOwnedPagesBeforeRestart(t *testing.T) {
	k, m, s := testRig(t)
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	var pfn uint64
	k.Spawn("test", func(proc *sim.Proc) {
		ipa, _ := s.AllocMem(pb, 1)
		v := s.NewView(pb, nil)
		v.Write(proc, ipa, []byte("crashed secrets"))
		e, _ := pb.stage2.Lookup(ipa >> hw.PageShift)
		pfn = e.Frame
		s.Fail(pb, FailPanic)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// A3: after recovery the physical frame must contain zeroes.
	buf := make([]byte, 15)
	if err := m.Mem.Read(hw.SecureWorld, hw.PA(pfn<<hw.PageShift), buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("crashed partition's memory leaked across restart")
		}
	}
}

func TestFailRecoveryTimeline(t *testing.T) {
	k, _, s := testRig(t)
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	var rec *FailureRecord
	k.Spawn("test", func(proc *sim.Proc) {
		proc.Sleep(1000)
		rec = s.Fail(pb, FailRequested)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("no failure record")
	}
	want := sim.Duration(s.Costs.DeviceClear + s.Costs.MOSRestart)
	if rec.Downtime() != want {
		t.Fatalf("downtime = %v, want %v", rec.Downtime(), want)
	}
	if pb.State() != PartReady || pb.Epoch() != 1 {
		t.Fatalf("state=%v epoch=%d after recovery", pb.State(), pb.Epoch())
	}
	// Recovery is ~3 orders of magnitude faster than a machine reboot.
	if float64(rec.Downtime()) > float64(s.Costs.MachineReboot)/100 {
		t.Fatal("mOS restart not substantially faster than reboot")
	}
}

func TestFailKillsPartitionProcs(t *testing.T) {
	k, _, s := testRig(t)
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	ran := false
	k.Spawn("setup", func(proc *sim.Proc) {
		worker := k.Spawn("gpu-worker", func(w *sim.Proc) {
			w.Sleep(1_000_000)
			ran = true // must never happen
		})
		pb.Register(worker)
		proc.Sleep(100)
		s.Fail(pb, FailPanic)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("partition proc survived the failure")
	}
}

func TestSharesRefusedWhileRestarting(t *testing.T) {
	k, _, s := testRig(t)
	pa, _ := s.CreatePartition("cpu", "", []byte("a"))
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	k.Spawn("test", func(proc *sim.Proc) {
		ipaA, _ := s.AllocMem(pa, 1)
		s.Fail(pb, FailPanic)
		// r_f = 1: share must be refused during recovery.
		if _, _, err := s.Share(pa, ipaA, 1, pb); err == nil {
			t.Error("share accepted while partition restarting")
		}
		s.AwaitReady(proc, pb)
		if _, _, err := s.Share(pa, ipaA, 1, pb); err != nil {
			t.Errorf("share after recovery: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStaleViewDiesAcrossRestart(t *testing.T) {
	k, _, s := testRig(t)
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	k.Spawn("test", func(proc *sim.Proc) {
		ipa, _ := s.AllocMem(pb, 1)
		v := s.NewView(pb, nil)
		s.Fail(pb, FailPanic)
		s.AwaitReady(proc, pb)
		// The old incarnation's view must not read the new incarnation.
		err := v.Read(proc, ipa, make([]byte, 1))
		var down *PartitionDownError
		if !errors.As(err, &down) {
			t.Errorf("stale view: err = %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentFailuresRecoverIndependently(t *testing.T) {
	k, _, s := testRig(t)
	pa, _ := s.CreatePartition("cpu", "", []byte("a"))
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	pc, _ := s.CreatePartition("npu", "npu0", []byte("c"))
	k.Spawn("test", func(proc *sim.Proc) {
		s.Fail(pb, FailPanic)
		s.Fail(pc, FailPanic)
		// pa is unaffected throughout (fault isolation, R3.1).
		if pa.State() != PartReady {
			t.Error("healthy partition disturbed by failures")
		}
		s.AwaitReady(proc, pb)
		s.AwaitReady(proc, pc)
		// Recoveries ran concurrently: total elapsed is one recovery,
		// not two.
		want := sim.Time(s.Costs.DeviceClear + s.Costs.MOSRestart)
		if proc.Now() != want {
			t.Errorf("recovery of two partitions took %v, want %v (concurrent)", proc.Now(), want)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWatchdogDetectsHang(t *testing.T) {
	k, _, s := testRig(t)
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	pb.WatchHangs()
	wd := s.EnableWatchdog()
	k.Spawn("test", func(proc *sim.Proc) {
		// Beat for a while, then go silent (hang).
		for i := 0; i < 5; i++ {
			proc.Sleep(s.Costs.HangPollEvery)
			pb.Heartbeat(proc.Now())
		}
		// Wait long enough for the watchdog to notice and recovery to finish.
		proc.Sleep(5*s.Costs.HangPollEvery + s.Costs.DeviceClear + s.Costs.MOSRestart + sim.Millisecond)
		if pb.Epoch() != 1 {
			t.Errorf("epoch = %d, want 1 (hang detected and recovered)", pb.Epoch())
		}
		k.Kill(wd)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRevokeGrantNotifiesPeerOfEnclaveFailure(t *testing.T) {
	k, _, s := testRig(t)
	pa, _ := s.CreatePartition("cpu", "", []byte("a"))
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	k.Spawn("test", func(proc *sim.Proc) {
		ipaA, _ := s.AllocMem(pa, 1)
		ipaB, gid, err := s.Share(pa, ipaA, 1, pb)
		if err != nil {
			t.Error(err)
			return
		}
		// The enclave in pa dies; its mOS revokes the share.
		if err := s.RevokeGrant(gid, "enclave-a"); err != nil {
			t.Error(err)
			return
		}
		vb := s.NewView(pb, nil)
		err = vb.Read(proc, ipaB, make([]byte, 1))
		var pf *PeerFault
		if !errors.As(err, &pf) || pf.Failed != "enclave-a" {
			t.Errorf("peer read after revoke: err = %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalReportValidation(t *testing.T) {
	_, _, s := testRig(t)
	p, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	eid := uint32(p.ID)<<24 | 7
	r, mac, err := s.LocalReportFor(p, eid, attest.Measure([]byte("enclave")), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !s.LSK().Verify(r, mac) {
		t.Fatal("genuine local report rejected")
	}
	// eid claiming a different partition is refused (cross-mOS message
	// validation via the mOS bits of the eid).
	if _, _, err := s.LocalReportFor(p, uint32(99)<<24|7, attest.Measurement{}, 5); err == nil {
		t.Fatal("foreign eid accepted")
	}
}

func TestBuildReportCoversAllPartitions(t *testing.T) {
	_, _, s := testRig(t)
	s.CreatePartition("cpu", "", []byte("cpu mOS"))
	s.CreatePartition("gpu", "gpu0", []byte("gpu mOS"))
	sr := s.BuildReport(map[string]attest.Measurement{"e1": attest.Measure([]byte("e"))}, 42)
	if len(sr.Report.MOSHashes) != 2 {
		t.Fatalf("report has %d mOS hashes, want 2", len(sr.Report.MOSHashes))
	}
	if sr.Report.MOSHashes["gpu"] != attest.Measure([]byte("gpu mOS")) {
		t.Fatal("gpu mOS hash wrong")
	}
	if sr.Report.Nonce != 42 {
		t.Fatal("nonce not propagated")
	}
	if !attest.Verify(s.AtKPub, sr.Report.Encode(), sr.Sig) {
		t.Fatal("report signature invalid")
	}
	if sr.Report.DTHash != s.DTHash() {
		t.Fatal("DT hash missing from report")
	}
}

func TestFullAttestationChainThroughSPM(t *testing.T) {
	_, _, s := testRig(t)
	s.CreatePartition("gpu", "gpu0", []byte("gpu mOS"))

	svc := attest.NewService([]byte("svc"))
	svc.RegisterPlatform(s.RoTPub())
	cert, err := svc.EndorseAtK(s.RoTPub(), s.AtKPub, s.ProveAtK())
	if err != nil {
		t.Fatal(err)
	}
	s.InstallAtKCert(cert)

	ca := attest.NewVendorCA("nvidia")
	devPriv := attest.KeyFromSeed([]byte("gpu0-device-key"))
	devPub := devPriv.Public().(attest.PublicKey)
	s.RegisterDeviceKey("gpu0", "nvidia", devPub, ca.EndorseDevice(devPub))

	sr := s.BuildReport(nil, 9)
	v := attest.NewVerifier(svc.Identity)
	v.TrustVendor("nvidia", ca.Identity)
	dt := s.DTHash()
	err = v.VerifyReport(sr, attest.Expected{
		MOSHashes: map[string]attest.Measurement{"gpu": attest.Measure([]byte("gpu mOS"))},
		DTHash:    &dt,
		Nonce:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUpdateMOSChangesMeasurement(t *testing.T) {
	k, _, s := testRig(t)
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("mOS v1"))
	oldHash := pb.MOSHash()
	k.Spawn("test", func(proc *sim.Proc) {
		rec := s.UpdateMOS(pb, []byte("mOS v2 with the CVE fixed"))
		if rec == nil {
			t.Error("update did not trigger a restart")
			return
		}
		s.AwaitReady(proc, pb)
		if pb.MOSHash() == oldHash {
			t.Error("mOS measurement unchanged after update")
		}
		if pb.MOSHash() != attest.Measure([]byte("mOS v2 with the CVE fixed")) {
			t.Error("mOS measurement does not match the new image")
		}
		if rec.Reason != FailRequested {
			t.Errorf("reason = %v, want requested", rec.Reason)
		}
		// Attestation reports carry the new hash.
		sr := s.BuildReport(nil, 1)
		if sr.Report.MOSHashes["gpu"] != pb.MOSHash() {
			t.Error("report does not reflect the updated mOS")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateMOSTearsDownShares(t *testing.T) {
	k, _, s := testRig(t)
	pa, _ := s.CreatePartition("cpu", "", []byte("a"))
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	k.Spawn("test", func(proc *sim.Proc) {
		ipaA, _ := s.AllocMem(pa, 1)
		_, _, err := s.Share(pa, ipaA, 1, pb)
		if err != nil {
			t.Error(err)
			return
		}
		s.UpdateMOS(pb, []byte("b v2"))
		// The sharer traps exactly as in a crash: an update must not
		// leave a stale mapping into the new incarnation.
		va := s.NewView(pa, nil)
		err = va.Write(proc, ipaA, []byte("x"))
		var pf *PeerFault
		if !errors.As(err, &pf) {
			t.Errorf("err = %v, want PeerFault", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateMOSOnFailedPartitionDropsPendingImage(t *testing.T) {
	k, _, s := testRig(t)
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("v1"))
	k.Spawn("test", func(proc *sim.Proc) {
		s.Fail(pb, FailPanic)
		// Update while already failing is refused; the pending image
		// must not silently apply at the in-flight restart.
		if rec := s.UpdateMOS(pb, []byte("v2")); rec != nil {
			t.Error("update accepted while partition failing")
		}
		s.AwaitReady(proc, pb)
		if pb.MOSHash() != attest.Measure([]byte("v1")) {
			t.Error("pending image leaked into the crash recovery")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
