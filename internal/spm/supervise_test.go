package spm

import (
	"errors"
	"testing"

	"cronus/internal/sim"
)

func TestRestartBackoffSchedule(t *testing.T) {
	sv := Supervision{RestartBackoff: 500 * sim.Microsecond, MaxBackoff: 4 * sim.Millisecond}
	cases := []struct {
		recent int
		want   sim.Duration
	}{
		{0, 0},
		{1, 0}, // first failure in the window restarts immediately
		{2, 500 * sim.Microsecond},
		{3, sim.Millisecond},
		{4, 2 * sim.Millisecond},
		{5, 4 * sim.Millisecond},
		{6, 4 * sim.Millisecond}, // capped at MaxBackoff
		{12, 4 * sim.Millisecond},
	}
	for _, c := range cases {
		if got := restartBackoff(sv, c.recent); got != c.want {
			t.Errorf("restartBackoff(recent=%d) = %v, want %v", c.recent, got, c.want)
		}
	}
	if got := restartBackoff(Supervision{}, 5); got != 0 {
		t.Errorf("restartBackoff with backoff disabled = %v, want 0", got)
	}
}

func TestSlidingWindowQuarantineAndRelease(t *testing.T) {
	k, _, s := testRig(t)
	s.SetSupervision(Supervision{QuarantineAfter: 3, FailureWindow: sim.Second})
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	k.Spawn("test", func(proc *sim.Proc) {
		if err := s.ReleaseQuarantine(pb); err == nil {
			t.Error("ReleaseQuarantine accepted a healthy partition")
		}
		for i := 0; i < 2; i++ {
			rec := s.Fail(pb, FailPanic)
			if rec == nil || rec.Quarantined {
				t.Fatalf("failure %d: record %+v, want un-quarantined", i+1, rec)
			}
			if err := s.AwaitReady(proc, pb); err != nil {
				t.Fatalf("failure %d: AwaitReady: %v", i+1, err)
			}
		}
		rec := s.Fail(pb, FailPanic)
		if rec == nil || !rec.Quarantined {
			t.Fatalf("third failure inside the window: record %+v, want quarantined", rec)
		}
		var qe *QuarantinedError
		if err := s.AwaitReady(proc, pb); !errors.As(err, &qe) {
			t.Fatalf("AwaitReady on quarantined partition returned %v, want *QuarantinedError", err)
		}
		if pb.State() != PartQuarantined {
			t.Fatalf("state = %v, want %v", pb.State(), PartQuarantined)
		}
		if err := s.ReleaseQuarantine(pb); err != nil {
			t.Fatalf("ReleaseQuarantine: %v", err)
		}
		s.AwaitRelease(proc, pb)
		if pb.State() != PartReady {
			t.Fatalf("state after release = %v, want ready", pb.State())
		}
		// Release cleared the history: the next failure is a first failure
		// again, not the fourth.
		rec = s.Fail(pb, FailPanic)
		if rec == nil || rec.Quarantined || rec.Backoff != 0 {
			t.Fatalf("post-release failure record %+v, want a clean first failure", rec)
		}
		if err := s.AwaitReady(proc, pb); err != nil {
			t.Fatal(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFailureWindowExpiryPreventsQuarantine(t *testing.T) {
	k, _, s := testRig(t)
	s.SetSupervision(Supervision{QuarantineAfter: 2, FailureWindow: 400 * sim.Millisecond})
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	k.Spawn("test", func(proc *sim.Proc) {
		// Failures spaced wider than the window never accumulate.
		for i := 0; i < 4; i++ {
			rec := s.Fail(pb, FailPanic)
			if rec == nil {
				t.Fatalf("failure %d refused", i+1)
			}
			if rec.Quarantined {
				t.Fatalf("failure %d quarantined despite expired window", i+1)
			}
			if err := s.AwaitReady(proc, pb); err != nil {
				t.Fatal(err)
			}
			proc.Sleep(450 * sim.Millisecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRestartBackoffExtendsRecovery(t *testing.T) {
	k, _, s := testRig(t)
	s.SetSupervision(Supervision{RestartBackoff: sim.Millisecond})
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	k.Spawn("test", func(proc *sim.Proc) {
		rec1 := s.Fail(pb, FailPanic)
		if err := s.AwaitReady(proc, pb); err != nil {
			t.Fatal(err)
		}
		rec2 := s.Fail(pb, FailPanic)
		if err := s.AwaitReady(proc, pb); err != nil {
			t.Fatal(err)
		}
		if rec1.Backoff != 0 {
			t.Errorf("first failure backoff = %v, want 0", rec1.Backoff)
		}
		if rec2.Backoff != sim.Millisecond {
			t.Errorf("second failure backoff = %v, want 1ms", rec2.Backoff)
		}
		base := sim.Duration(s.Costs.DeviceClear + s.Costs.MOSRestart)
		if rec1.Downtime() != base {
			t.Errorf("first downtime = %v, want %v", rec1.Downtime(), base)
		}
		if rec2.Downtime() != base+sim.Millisecond {
			t.Errorf("second downtime = %v, want %v", rec2.Downtime(), base+sim.Millisecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRequestedRestartsAreNotCrashLoopEvidence(t *testing.T) {
	k, _, s := testRig(t)
	s.SetSupervision(Supervision{QuarantineAfter: 2, FailureWindow: sim.Second})
	pb, _ := s.CreatePartition("gpu", "gpu0", []byte("b"))
	k.Spawn("test", func(proc *sim.Proc) {
		// Two planned rollouts back to back: not crash-loop evidence.
		for i := 0; i < 2; i++ {
			if rec := s.Fail(pb, FailRequested); rec == nil || rec.Quarantined {
				t.Fatalf("requested restart %d: record %+v", i+1, rec)
			}
			if err := s.AwaitReady(proc, pb); err != nil {
				t.Fatal(err)
			}
		}
		// The first real panic right after is failure #1, not #3.
		if rec := s.Fail(pb, FailPanic); rec == nil || rec.Quarantined {
			t.Fatalf("panic after requested restarts: record %+v, want un-quarantined", rec)
		}
		if err := s.AwaitReady(proc, pb); err != nil {
			t.Fatal(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFailReasonStrings(t *testing.T) {
	cases := []struct {
		r    FailReason
		want string
	}{
		{FailRequested, "requested"},
		{FailPanic, "panic"},
		{FailHang, "hang"},
		{FailReason(99), "unknown"},
		{FailReason(-1), "unknown"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("FailReason(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}
