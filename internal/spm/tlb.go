package spm

import (
	"cronus/internal/hw"
)

// This file implements the simulated TLB: a per-View translation cache in
// front of the stage-1/stage-2 walks, plus the notification hooks (physical
// write watches and isolation-change callbacks) that let waiters model
// doorbell interrupts without polling.
//
// The TLB caches vpn → (stage-2 output frame, effective permission) and is
// validated against s1.Gen(), stage2.Gen() and the partition epoch before
// use, exactly like hardware TLB invalidation-on-TLBI: any Map/Unmap/
// Invalidate/Restore/Clear on either table bumps the generation and the next
// access flushes. Physical-layer checks (TZASC) are NOT cached here — every
// access still goes through PhysMem, so world-isolation verdicts cannot go
// stale. Faults therefore surface on exactly the accesses that would have
// faulted with the cache disabled.

// tlbEntry is one cached translation: the stage-2 output frame for a view
// page, and the intersection of the stage-1 and stage-2 permissions.
type tlbEntry struct {
	pfn  uint64
	perm hw.Perm
}

// tlbValidate flushes the cache if either backing table mutated since the
// last access. Called once per Read/Write: the tables cannot change while
// the page loop runs (translation never yields the simulated CPU).
func (v *View) tlbValidate() {
	s2g := v.part.stage2.Gen()
	var s1g uint64
	if v.s1 != nil {
		s1g = v.s1.Gen()
	}
	if len(v.tlb) > 0 && (v.tlbS1Gen != s1g || v.tlbS2Gen != s2g) {
		for vpn := range v.tlb {
			delete(v.tlb, vpn)
		}
		mTLBFlushes.Inc()
	}
	v.tlbS1Gen, v.tlbS2Gen = s1g, s2g
}

// tlbLookup is the hit path: zero allocations, no table walk.
func (v *View) tlbLookup(vpn uint64, want hw.Perm) (uint64, bool) {
	e, ok := v.tlb[vpn]
	if !ok || e.perm&want != want {
		mTLBMisses.Inc()
		return 0, false
	}
	mTLBHits.Inc()
	return e.pfn, true
}

// isoWatch is one registered isolation-change observer.
type isoWatch struct {
	id int
	fn func()
}

// OnIsolationChange registers fn to run whenever the SPM changes the
// isolation state of any partition — grant teardown (Unshare/RevokeGrant),
// FreeMem, partition failure, recovery completion, and proceed-trap
// resolution. Waiters parked on shared-memory doorbells use this to re-check
// their predicate on failure paths that never write the watched word.
// Callbacks run in registration order; the returned cancel removes the hook.
// Registration and cancel may run concurrently from different kernel shards
// (doorbell waiters arm on the poll path); isoMu serializes list mutation.
func (s *SPM) OnIsolationChange(fn func()) (cancel func()) {
	s.isoMu.Lock()
	s.isoNext++
	id := s.isoNext
	s.isoWatches = append(s.isoWatches, isoWatch{id: id, fn: fn})
	s.isoMu.Unlock()
	return func() {
		s.isoMu.Lock()
		defer s.isoMu.Unlock()
		for i := range s.isoWatches {
			if s.isoWatches[i].id == id {
				s.isoWatches = append(s.isoWatches[:i], s.isoWatches[i+1:]...)
				return
			}
		}
	}
}

// isolationChanged notifies every registered observer. Spurious
// notifications are harmless — observers re-check state and re-park.
func (s *SPM) isolationChanged() {
	// Callbacks may register/cancel watches; iterate a snapshot and skip
	// any watch cancelled between snapshot and fire.
	s.isoMu.Lock()
	ws := make([]isoWatch, len(s.isoWatches))
	copy(ws, s.isoWatches)
	s.isoMu.Unlock()
	for _, w := range ws {
		s.isoMu.Lock()
		live := false
		for i := range s.isoWatches {
			if s.isoWatches[i].id == w.id {
				live = true
				break
			}
		}
		s.isoMu.Unlock()
		if live {
			w.fn()
		}
	}
}

// ResolvePA resolves va to a physical address under the view's current
// mappings without charging virtual time or entering the trap protocol —
// used to locate doorbell words, never to authorize an access.
func (v *View) ResolvePA(va uint64) (hw.PA, bool) {
	if v.part.state != PartReady || v.part.epoch != v.epoch {
		return 0, false
	}
	vpn := va >> hw.PageShift
	ipa := vpn
	if v.s1 != nil {
		e, ok := v.s1.Lookup(vpn)
		if !ok || !e.Valid {
			return 0, false
		}
		ipa = e.Frame
	}
	e, ok := v.part.stage2.Lookup(ipa)
	if !ok || !e.Valid {
		return 0, false
	}
	return hw.PA(e.Frame<<hw.PageShift | va&(hw.PageSize-1)), true
}

// WatchWrite arms a doorbell on the n bytes at va: fn runs after every
// guarded physical write overlapping the range. The range must not cross a
// page boundary (doorbell words are within-page by construction). ok is
// false when va is not currently mapped — callers fall back to polling.
func (v *View) WatchWrite(va, n uint64, fn func()) (cancel func(), ok bool) {
	if (va&(hw.PageSize-1))+n > hw.PageSize {
		return nil, false
	}
	pa, ok := v.ResolvePA(va)
	if !ok {
		return nil, false
	}
	return v.spm.M.Mem.WatchWrite(pa, n, fn), true
}

// OnIsolationChange forwards to the owning SPM's registry.
func (v *View) OnIsolationChange(fn func()) (cancel func()) {
	return v.spm.OnIsolationChange(fn)
}
