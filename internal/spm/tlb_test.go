package spm

import (
	"errors"
	"testing"

	"cronus/internal/hw"
	"cronus/internal/metrics"
	"cronus/internal/sim"
)

// tlbRig is the common fixture for the TLB-staleness tests: a booted SPM
// with a CPU partition and a device partition, driven from one test proc.
type tlbRig struct {
	k    *sim.Kernel
	s    *SPM
	a, b *Partition
}

func runTLBCase(t *testing.T, body func(t *testing.T, p *sim.Proc, e *tlbRig)) {
	t.Helper()
	k := sim.NewKernel()
	m := hw.NewMachine(hw.Config{NormalMemBytes: 4 << 20, SecureMemBytes: 32 << 20})
	if err := m.Fuses.Burn("platform-rot", []byte("tlb")); err != nil {
		t.Fatal(err)
	}
	m.DT.Add(hw.DTNode{Name: "gpu0", IRQ: 32, Secure: true})
	s, err := Boot(k, m, sim.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	pa, err := s.CreatePartition("pa", "", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := s.CreatePartition("pb", "gpu0", []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("tlb-test", func(p *sim.Proc) {
		defer k.Stop()
		body(t, p, &tlbRig{k: k, s: s, a: pa, b: pb})
	})
	if err := k.Run(); err != nil {
		t.Fatalf("simulation error: %v", err)
	}
}

func faultKind(t *testing.T, err error, want hw.FaultKind) {
	t.Helper()
	var f *hw.Fault
	if !errors.As(err, &f) {
		t.Fatalf("want *hw.Fault(%v), got %v", want, err)
	}
	if f.Kind != want {
		t.Fatalf("want fault kind %v, got %v (%v)", want, f.Kind, err)
	}
}

// TestTLBInvalidation asserts that every teardown path flushes previously
// cached translations: a warm TLB entry must never outlive the mapping it
// caches. Each case warms a persistent view, mutates isolation state, and
// checks the very next access through the same view.
func TestTLBInvalidation(t *testing.T) {
	buf := []byte{0x5A}
	cases := []struct {
		name string
		run  func(t *testing.T, p *sim.Proc, e *tlbRig)
	}{
		{"freemem-unmaps-cached-page", func(t *testing.T, p *sim.Proc, e *tlbRig) {
			ipa, err := e.s.AllocMem(e.a, 1)
			if err != nil {
				t.Fatal(err)
			}
			v := e.s.NewView(e.a, nil)
			if err := v.Write(p, ipa, buf); err != nil {
				t.Fatalf("warm write: %v", err)
			}
			e.s.FreeMem(e.a, ipa, 1)
			faultKind(t, v.Write(p, ipa, buf), hw.FaultUnmapped)
		}},
		{"unshare-revokes-peer-cache", func(t *testing.T, p *sim.Proc, e *tlbRig) {
			ipa, err := e.s.AllocMem(e.a, 1)
			if err != nil {
				t.Fatal(err)
			}
			peerIPA, gid, err := e.s.Share(e.a, ipa, 1, e.b)
			if err != nil {
				t.Fatal(err)
			}
			pv := e.s.NewView(e.b, nil)
			if err := pv.Write(p, peerIPA, buf); err != nil {
				t.Fatalf("peer warm write: %v", err)
			}
			if err := e.s.Unshare(gid); err != nil {
				t.Fatal(err)
			}
			faultKind(t, pv.Write(p, peerIPA, buf), hw.FaultUnmapped)
		}},
		{"revoke-traps-warm-owner-then-recovers", func(t *testing.T, p *sim.Proc, e *tlbRig) {
			ipa, err := e.s.AllocMem(e.a, 1)
			if err != nil {
				t.Fatal(err)
			}
			_, gid, err := e.s.Share(e.a, ipa, 1, e.b)
			if err != nil {
				t.Fatal(err)
			}
			ov := e.s.NewView(e.a, nil)
			if err := ov.Write(p, ipa, buf); err != nil {
				t.Fatalf("owner warm write: %v", err)
			}
			if err := e.s.RevokeGrant(gid, "pb"); err != nil {
				t.Fatal(err)
			}
			var pf *PeerFault
			if err := ov.Write(p, ipa, buf); !errors.As(err, &pf) {
				t.Fatalf("want PeerFault through warm view, got %v", err)
			}
			// The trap restored exclusive access; the same view (with its
			// flushed cache) must work again.
			if err := ov.Write(p, ipa, buf); err != nil {
				t.Fatalf("post-trap write: %v", err)
			}
		}},
		{"revoke-traps-warm-peer-then-unmaps", func(t *testing.T, p *sim.Proc, e *tlbRig) {
			ipa, err := e.s.AllocMem(e.a, 1)
			if err != nil {
				t.Fatal(err)
			}
			peerIPA, gid, err := e.s.Share(e.a, ipa, 1, e.b)
			if err != nil {
				t.Fatal(err)
			}
			pv := e.s.NewView(e.b, nil)
			if err := pv.Write(p, peerIPA, buf); err != nil {
				t.Fatalf("peer warm write: %v", err)
			}
			if err := e.s.RevokeGrant(gid, "pa"); err != nil {
				t.Fatal(err)
			}
			var pf *PeerFault
			if err := pv.Write(p, peerIPA, buf); !errors.As(err, &pf) {
				t.Fatalf("want PeerFault through warm peer view, got %v", err)
			}
			faultKind(t, pv.Write(p, peerIPA, buf), hw.FaultUnmapped)
		}},
		{"restart-epoch-kills-warm-view", func(t *testing.T, p *sim.Proc, e *tlbRig) {
			ipa, err := e.s.AllocMem(e.a, 1)
			if err != nil {
				t.Fatal(err)
			}
			v := e.s.NewView(e.a, nil)
			if err := v.Write(p, ipa, buf); err != nil {
				t.Fatalf("warm write: %v", err)
			}
			e.s.Fail(e.a, FailPanic)
			e.s.AwaitReady(p, e.a)
			var down *PartitionDownError
			if err := v.Write(p, ipa, buf); !errors.As(err, &down) {
				t.Fatalf("want PartitionDownError through stale view, got %v", err)
			}
			// The new incarnation works through a fresh view.
			ipa2, err := e.s.AllocMem(e.a, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.s.NewView(e.a, nil).Write(p, ipa2, buf); err != nil {
				t.Fatalf("fresh-view write after restart: %v", err)
			}
		}},
		{"stage1-invalidate-then-restore", func(t *testing.T, p *sim.Proc, e *tlbRig) {
			ipa, err := e.s.AllocMem(e.a, 1)
			if err != nil {
				t.Fatal(err)
			}
			s1 := hw.NewAddrSpace("s1:test")
			const vpn = 0x40
			s1.Map(vpn, ipa>>hw.PageShift, hw.PermRW)
			v := e.s.NewView(e.a, s1)
			va := uint64(vpn << hw.PageShift)
			if err := v.Write(p, va, buf); err != nil {
				t.Fatalf("warm write: %v", err)
			}
			s1.Invalidate(vpn)
			faultKind(t, v.Write(p, va, buf), hw.FaultInvalidated)
			// Restore: re-mapping makes the same view work again.
			s1.Map(vpn, ipa>>hw.PageShift, hw.PermRW)
			if err := v.Write(p, va, buf); err != nil {
				t.Fatalf("write after restore: %v", err)
			}
		}},
		{"stage1-unmap-faults-warm-view", func(t *testing.T, p *sim.Proc, e *tlbRig) {
			ipa, err := e.s.AllocMem(e.a, 1)
			if err != nil {
				t.Fatal(err)
			}
			s1 := hw.NewAddrSpace("s1:test")
			const vpn = 0x40
			s1.Map(vpn, ipa>>hw.PageShift, hw.PermRW)
			v := e.s.NewView(e.a, s1)
			va := uint64(vpn << hw.PageShift)
			if err := v.Read(p, va, buf); err != nil {
				t.Fatalf("warm read: %v", err)
			}
			s1.Unmap(vpn)
			faultKind(t, v.Read(p, va, buf), hw.FaultUnmapped)
		}},
		{"cached-read-perm-never-satisfies-write", func(t *testing.T, p *sim.Proc, e *tlbRig) {
			ipa, err := e.s.AllocMem(e.a, 1)
			if err != nil {
				t.Fatal(err)
			}
			s1 := hw.NewAddrSpace("s1:test")
			const vpn = 0x40
			s1.Map(vpn, ipa>>hw.PageShift, hw.PermR)
			v := e.s.NewView(e.a, s1)
			va := uint64(vpn << hw.PageShift)
			if err := v.Read(p, va, buf); err != nil {
				t.Fatalf("warm read: %v", err)
			}
			faultKind(t, v.Write(p, va, buf), hw.FaultPerm)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runTLBCase(t, tc.run)
		})
	}
}

// TestTLBCounters checks the hit/miss/flush accounting: repeated access hits,
// a table mutation flushes, and the next access misses.
func TestTLBCounters(t *testing.T) {
	metrics.Default.Reset()
	metrics.Default.Enable()
	defer metrics.Default.Disable()
	runTLBCase(t, func(t *testing.T, p *sim.Proc, e *tlbRig) {
		ipa, err := e.s.AllocMem(e.a, 1)
		if err != nil {
			t.Fatal(err)
		}
		v := e.s.NewView(e.a, nil)
		buf := []byte{1}
		pre := metrics.Default.Snapshot()
		if err := v.Write(p, ipa, buf); err != nil {
			t.Fatal(err)
		}
		afterMiss := metrics.Default.Snapshot()
		if d := afterMiss.CounterDelta(pre, "spm.tlb.misses"); d != 1 {
			t.Fatalf("first access: want 1 miss, got %d", d)
		}
		for i := 0; i < 5; i++ {
			if err := v.Write(p, ipa, buf); err != nil {
				t.Fatal(err)
			}
		}
		afterHits := metrics.Default.Snapshot()
		if d := afterHits.CounterDelta(afterMiss, "spm.tlb.hits"); d != 5 {
			t.Fatalf("want 5 hits, got %d", d)
		}
		// Any stage-2 mutation flushes on the next access.
		if _, err := e.s.AllocMem(e.a, 1); err != nil {
			t.Fatal(err)
		}
		if err := v.Write(p, ipa, buf); err != nil {
			t.Fatal(err)
		}
		afterFlush := metrics.Default.Snapshot()
		if d := afterFlush.CounterDelta(afterHits, "spm.tlb.flushes"); d != 1 {
			t.Fatalf("want 1 flush after stage-2 mutation, got %d", d)
		}
		if d := afterFlush.CounterDelta(afterHits, "spm.tlb.misses"); d != 1 {
			t.Fatalf("want 1 miss after flush, got %d", d)
		}
	})
}
