package gpu

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"sync"

	"cronus/internal/sim"
	"cronus/internal/trace"
)

// Dim is a kernel launch grid (blocks × threads folded into three axes).
type Dim [3]int

// Elems returns the total number of launch elements.
func (d Dim) Elems() int {
	n := 1
	for _, v := range d {
		if v > 0 {
			n *= v
		}
	}
	return n
}

// LaunchCost is the execution model of one kernel launch: Work is the ideal
// duration at full SM allocation, SMDemand is how many SMs the grid fills.
type LaunchCost struct {
	Work     sim.Duration
	SMDemand float64
}

// Exec is the environment a kernel function executes in.
type Exec struct {
	Ctx  *Context
	Grid Dim
	Args []uint64
}

// Bytes resolves a device pointer argument into device memory.
func (e *Exec) Bytes(ptr uint64, n int) ([]byte, error) { return e.Ctx.resolve(ptr, n) }

// Arg returns the i-th launch argument.
func (e *Exec) Arg(i int) uint64 { return e.Args[i] }

// Kernel is a GPU kernel: a real computation plus its cost model.
type Kernel struct {
	Name string
	// Func performs the computation on device memory.
	Func func(e *Exec) error
	// Cost models the launch duration and SM footprint.
	Cost func(grid Dim, args []uint64) LaunchCost
}

// registry maps kernel names to implementations — the simulation's stand-in
// for compiled SASS inside a cubin.
var (
	regMu    sync.Mutex
	registry = make(map[string]*Kernel)
)

// Register installs a kernel implementation. Re-registering the same name
// replaces it (tests rely on this).
func Register(k *Kernel) {
	if k.Name == "" || k.Func == nil || k.Cost == nil {
		panic("gpu: Register: kernel needs Name, Func and Cost")
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[k.Name] = k
}

func lookup(name string) (*Kernel, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	k, ok := registry[name]
	return k, ok
}

// BuildCubin serializes a module image referencing the named kernels. The
// bytes are what manifests hash and attestation measures.
func BuildCubin(names ...string) []byte {
	var b bytes.Buffer
	b.WriteString("CUBIN v1\n")
	for _, n := range names {
		fmt.Fprintf(&b, "kernel %s\n", n)
	}
	return b.Bytes()
}

// ParseCubin extracts the kernel names from a module image.
func ParseCubin(image []byte) ([]string, error) {
	sc := bufio.NewScanner(bytes.NewReader(image))
	if !sc.Scan() || sc.Text() != "CUBIN v1" {
		return nil, fmt.Errorf("gpu: not a cubin image")
	}
	var names []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		name, ok := strings.CutPrefix(line, "kernel ")
		if !ok {
			return nil, fmt.Errorf("gpu: bad cubin line %q", line)
		}
		names = append(names, name)
	}
	return names, nil
}

// LoadModule loads a cubin image into the context, binding each referenced
// kernel. Loading fails if a kernel is not present in the "hardware"
// registry (like a missing SASS section).
func (c *Context) LoadModule(image []byte) error {
	if err := c.check(); err != nil {
		return err
	}
	names, err := ParseCubin(image)
	if err != nil {
		return err
	}
	for _, n := range names {
		k, ok := lookup(n)
		if !ok {
			return fmt.Errorf("gpu: cubin references unknown kernel %q", n)
		}
		c.modules[n] = k
	}
	return nil
}

// Launch executes a kernel synchronously at driver level: the caller's proc
// occupies the SM engine for the modelled duration and the computation runs
// on device memory. Streaming/asynchrony is provided above this layer by
// sRPC (§IV-C).
func (c *Context) Launch(p *sim.Proc, name string, grid Dim, args ...uint64) error {
	if err := c.check(); err != nil {
		return err
	}
	k, ok := c.modules[name]
	if !ok {
		return fmt.Errorf("gpu: kernel %q not loaded in context %d", name, c.id)
	}
	cost := k.Cost(grid, args)
	if c.dev.migSlices > 0 {
		// MIG: the kernel runs inside its context's static slice. Work
		// stretches by the demand it loses; the engine never sees
		// cross-tenant contention.
		slice := c.dev.sms.Capacity() / float64(c.dev.migSlices)
		if cost.SMDemand > slice {
			cost.Work = sim.Duration(float64(cost.Work) * cost.SMDemand / slice)
			cost.SMDemand = slice
		}
	}
	p.Sleep(c.dev.costs.KernelDispatch)
	c.dev.launches++
	if c.dev.hangAt[c.dev.launches] {
		// Chaos-injected hang: the launch was dispatched but never
		// completes. Park without touching the SM engine so co-resident
		// contexts see no contention; the parking proc is either killed
		// (partition failure, watchdog) or outlives the run harmlessly.
		delete(c.dev.hangAt, c.dev.launches)
		p.Sleep(hangPark)
		return fmt.Errorf("gpu: kernel %q launch hung (injected) and was released after %v", name, hangPark)
	}
	endSpan := trace.Default.Span(p, "gpu", c.dev.name, name)
	defer endSpan()
	if c.dev.mps || c.dev.migSlices > 0 {
		// Spatial sharing: kernels from different contexts share the
		// SM pool concurrently.
		c.dev.sms.Run(p, cost.SMDemand, cost.Work)
	} else {
		// Temporal sharing: one context owns the whole device at a time.
		c.dev.exclusive.Acquire(p, 1)
		c.dev.sms.Run(p, cost.SMDemand, cost.Work)
		c.dev.exclusive.Release(1)
	}
	if err := c.check(); err != nil {
		// The device was reset (partition failure) while we computed.
		return err
	}
	return k.Func(&Exec{Ctx: c, Grid: grid, Args: args})
}

// LinearCost builds a common cost model: perElem ns of ideal work per grid
// element, spread over demand SMs.
func LinearCost(perElem float64, demand float64) func(Dim, []uint64) LaunchCost {
	return func(grid Dim, _ []uint64) LaunchCost {
		return LaunchCost{
			Work:     sim.Duration(perElem * float64(grid.Elems())),
			SMDemand: demand,
		}
	}
}
