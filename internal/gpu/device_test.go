package gpu

import (
	"strings"
	"testing"
	"testing/quick"

	"cronus/internal/attest"
	"cronus/internal/sim"
)

func testGPU(k *sim.Kernel) *Device {
	cfg := TuringConfig("gpu0")
	cfg.MemBytes = 64 << 20
	d := New(k, sim.DefaultCosts(), cfg)
	RegisterStdKernels(d.SMs())
	return d
}

// inSim runs fn inside a one-process simulation.
func inSim(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	k := sim.NewKernel()
	k.Spawn("test", fn)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMemAllocCopyRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	d := testGPU(k)
	k.Spawn("test", func(p *sim.Proc) {
		ctx := d.CreateContext()
		ptr, err := ctx.MemAlloc(1024)
		if err != nil {
			t.Error(err)
			return
		}
		src := PackF32([]float32{1, 2, 3, 4})
		if err := ctx.HtoD(p, ptr, src); err != nil {
			t.Error(err)
			return
		}
		dst := make([]byte, len(src))
		if err := ctx.DtoH(p, dst, ptr); err != nil {
			t.Error(err)
			return
		}
		got := UnpackF32(dst)
		if got[0] != 1 || got[3] != 4 {
			t.Errorf("round trip got %v", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestContextIsolation(t *testing.T) {
	k := sim.NewKernel()
	d := testGPU(k)
	k.Spawn("test", func(p *sim.Proc) {
		a := d.CreateContext()
		b := d.CreateContext()
		ptrA, _ := a.MemAlloc(64)
		a.HtoD(p, ptrA, []byte("tenant-a secret weights............"))
		// Context b cannot resolve a's pointer (VA isolation, §V-B).
		if err := b.DtoH(p, make([]byte, 8), ptrA); err == nil {
			t.Error("context b read context a's memory")
		}
		// Nor can b forge a pointer into a's VA range.
		if _, err := b.resolve(ptrA, 8); err == nil {
			t.Error("pointer forgery resolved")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfMemory(t *testing.T) {
	k := sim.NewKernel()
	cfg := TuringConfig("gpu0")
	cfg.MemBytes = 1 << 20
	d := New(k, sim.DefaultCosts(), cfg)
	ctx := d.CreateContext()
	if _, err := ctx.MemAlloc(2 << 20); err == nil || !strings.Contains(err.Error(), "out of device memory") {
		t.Fatalf("err = %v", err)
	}
	// Free returns capacity.
	ptr, err := ctx.MemAlloc(512 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.MemAlloc(768 << 10); err == nil {
		t.Fatal("overcommit accepted")
	}
	if err := ctx.MemFree(ptr); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.MemAlloc(768 << 10); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestCubinRoundTrip(t *testing.T) {
	img := BuildCubin("vec_add", "matmul")
	names, err := ParseCubin(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "vec_add" || names[1] != "matmul" {
		t.Fatalf("names = %v", names)
	}
	if _, err := ParseCubin([]byte("ELF garbage")); err == nil {
		t.Fatal("garbage accepted as cubin")
	}
}

func TestLoadModuleUnknownKernel(t *testing.T) {
	k := sim.NewKernel()
	d := testGPU(k)
	ctx := d.CreateContext()
	if err := ctx.LoadModule(BuildCubin("no_such_kernel")); err == nil {
		t.Fatal("module with unknown kernel loaded")
	}
}

func TestLaunchVecAddComputes(t *testing.T) {
	k := sim.NewKernel()
	d := testGPU(k)
	k.Spawn("test", func(p *sim.Proc) {
		ctx := d.CreateContext()
		if err := ctx.LoadModule(BuildCubin("vec_add")); err != nil {
			t.Error(err)
			return
		}
		n := 256
		a, _ := ctx.MemAlloc(uint64(n * 4))
		b, _ := ctx.MemAlloc(uint64(n * 4))
		c, _ := ctx.MemAlloc(uint64(n * 4))
		av := make([]float32, n)
		bv := make([]float32, n)
		for i := range av {
			av[i] = float32(i)
			bv[i] = float32(2 * i)
		}
		ctx.HtoD(p, a, PackF32(av))
		ctx.HtoD(p, b, PackF32(bv))
		if err := ctx.Launch(p, "vec_add", Dim{n, 1, 1}, a, b, c); err != nil {
			t.Error(err)
			return
		}
		out := make([]byte, n*4)
		ctx.DtoH(p, out, c)
		cv := UnpackF32(out)
		for i := range cv {
			if cv[i] != float32(3*i) {
				t.Errorf("c[%d] = %v, want %v", i, cv[i], float32(3*i))
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchMatmulComputes(t *testing.T) {
	k := sim.NewKernel()
	d := testGPU(k)
	k.Spawn("test", func(p *sim.Proc) {
		ctx := d.CreateContext()
		ctx.LoadModule(BuildCubin("matmul"))
		// 2x3 × 3x2.
		a, _ := ctx.MemAlloc(24)
		b, _ := ctx.MemAlloc(24)
		c, _ := ctx.MemAlloc(16)
		ctx.HtoD(p, a, PackF32([]float32{1, 2, 3, 4, 5, 6}))
		ctx.HtoD(p, b, PackF32([]float32{7, 8, 9, 10, 11, 12}))
		if err := ctx.Launch(p, "matmul", Dim{2, 2, 1}, a, b, c, 2, 2, 3); err != nil {
			t.Error(err)
			return
		}
		out := make([]byte, 16)
		ctx.DtoH(p, out, c)
		got := UnpackF32(out)
		want := []float32{58, 64, 139, 154}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("C = %v, want %v", got, want)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchUnloadedKernelFails(t *testing.T) {
	k := sim.NewKernel()
	d := testGPU(k)
	k.Spawn("test", func(p *sim.Proc) {
		ctx := d.CreateContext()
		if err := ctx.Launch(p, "vec_add", Dim{1, 1, 1}); err == nil {
			t.Error("launch of unloaded kernel succeeded")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMPSSpatialSharingBeatsExclusive(t *testing.T) {
	// Two contexts each launching kernels that fill under half the SMs:
	// with MPS the total time is ~half the exclusive-mode time.
	run := func(mps bool) sim.Time {
		k := sim.NewKernel()
		cfg := TuringConfig("gpu0")
		cfg.MemBytes = 16 << 20
		cfg.MPS = mps
		d := New(k, sim.DefaultCosts(), cfg)
		RegisterStdKernels(d.SMs())
		Register(&Kernel{
			Name: "half_kernel",
			Cost: func(Dim, []uint64) LaunchCost {
				return LaunchCost{Work: sim.Duration(1 * sim.Millisecond), SMDemand: d.SMs() * 0.45}
			},
			Func: func(e *Exec) error { return nil },
		})
		var end sim.Time
		wg := sim.NewWaitGroup(k)
		for i := 0; i < 2; i++ {
			wg.Add(1)
			k.Spawn("tenant", func(p *sim.Proc) {
				ctx := d.CreateContext()
				ctx.LoadModule(BuildCubin("half_kernel"))
				for j := 0; j < 4; j++ {
					ctx.Launch(p, "half_kernel", Dim{1, 1, 1})
				}
				wg.Done()
			})
		}
		k.Spawn("wait", func(p *sim.Proc) { wg.Wait(p); end = p.Now() })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	spatial := run(true)
	temporal := run(false)
	ratio := float64(temporal) / float64(spatial)
	if ratio < 1.5 {
		t.Fatalf("spatial=%v temporal=%v ratio=%.2f, want >= 1.5", spatial, temporal, ratio)
	}
}

func TestResetScrubsMemoryAndKillsContexts(t *testing.T) {
	k := sim.NewKernel()
	d := testGPU(k)
	k.Spawn("test", func(p *sim.Proc) {
		ctx := d.CreateContext()
		ptr, _ := ctx.MemAlloc(64)
		ctx.HtoD(p, ptr, []byte("crashed enclave's data.........."))
		// Grab the backing to check the scrub (simulating a new tenant
		// who would be handed recycled memory).
		backing, _ := ctx.resolve(ptr, 32)
		d.Reset()
		for _, b := range backing {
			if b != 0 {
				t.Error("device memory leaked across reset (A3)")
				return
			}
		}
		if _, err := ctx.MemAlloc(64); err != ErrStaleContext {
			t.Errorf("stale context alloc: err = %v", err)
		}
		if err := ctx.HtoD(p, ptr, []byte("x")); err != ErrStaleContext {
			t.Errorf("stale context copy: err = %v", err)
		}
		if d.MemUsed() != 0 {
			t.Error("memory accounting not reset")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceAuthenticity(t *testing.T) {
	k := sim.NewKernel()
	d := testGPU(k)
	challenge := []byte("mOS nonce 12345")
	sig := d.Authenticate(challenge)
	if !attest.Verify(d.PubKey(), challenge, sig) {
		t.Fatal("genuine device signature rejected")
	}
	// A fabricated device with a different fuse cannot produce the
	// vendor-endorsed key's signature.
	fake := New(k, sim.DefaultCosts(), Config{Name: "gpu0", MemBytes: 1 << 20, KeySeed: "fake"})
	if attest.Verify(d.PubKey(), challenge, fake.Authenticate(challenge)) {
		t.Fatal("fabricated device impersonated the genuine key")
	}
}

func TestCopyPeerTransfersAcrossDevices(t *testing.T) {
	k := sim.NewKernel()
	d1 := testGPU(k)
	cfg := TuringConfig("gpu1")
	cfg.MemBytes = 16 << 20
	d2 := New(k, sim.DefaultCosts(), cfg)
	k.Spawn("test", func(p *sim.Proc) {
		c1 := d1.CreateContext()
		c2 := d2.CreateContext()
		p1, _ := c1.MemAlloc(32)
		p2, _ := c2.MemAlloc(32)
		c1.HtoD(p, p1, []byte("gradients for the all-reduce... "))
		if err := CopyPeer(p, c2, p2, c1, p1, 32); err != nil {
			t.Error(err)
			return
		}
		out := make([]byte, 32)
		c2.DtoH(p, out, p2)
		if string(out[:9]) != "gradients" {
			t.Errorf("peer copy got %q", out[:9])
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDtoDAndMemFreeScrub(t *testing.T) {
	k := sim.NewKernel()
	d := testGPU(k)
	k.Spawn("test", func(p *sim.Proc) {
		ctx := d.CreateContext()
		a, _ := ctx.MemAlloc(16)
		b, _ := ctx.MemAlloc(16)
		ctx.HtoD(p, a, []byte("0123456789abcdef"))
		if err := ctx.DtoD(p, b, a, 16); err != nil {
			t.Error(err)
			return
		}
		out := make([]byte, 16)
		ctx.DtoH(p, out, b)
		if string(out) != "0123456789abcdef" {
			t.Errorf("DtoD got %q", out)
		}
		backing, _ := ctx.resolve(a, 16)
		ctx.MemFree(a)
		for _, v := range backing {
			if v != 0 {
				t.Error("freed allocation not scrubbed")
				return
			}
		}
		if err := ctx.MemFree(a); err == nil {
			t.Error("double free accepted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: HtoD then DtoH is the identity for arbitrary payloads/offsets.
func TestCopyQuickProperty(t *testing.T) {
	k := sim.NewKernel()
	d := testGPU(k)
	var fail string
	k.Spawn("test", func(p *sim.Proc) {
		ctx := d.CreateContext()
		ptr, _ := ctx.MemAlloc(8192)
		f := func(data []byte, off uint16) bool {
			if len(data) == 0 {
				return true
			}
			if len(data) > 4096 {
				data = data[:4096]
			}
			at := ptr + uint64(off%4096)
			if err := ctx.HtoD(p, at, data); err != nil {
				return false
			}
			out := make([]byte, len(data))
			if err := ctx.DtoH(p, out, at); err != nil {
				return false
			}
			return string(out) == string(data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			fail = err.Error()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fail != "" {
		t.Fatal(fail)
	}
}

func TestGridElems(t *testing.T) {
	if (Dim{4, 5, 0}).Elems() != 20 {
		t.Fatal("zero axis must be ignored")
	}
	if (Dim{3, 1, 1}).Elems() != 3 {
		t.Fatal("elems wrong")
	}
}

func TestMIGSlicesIsolateTenants(t *testing.T) {
	// Two tenants with kernels that would each fill the device: under
	// MIG-2 each is confined to half the SMs — perfectly parallel (no
	// cross-tenant interference) but each kernel takes 2x its full-device
	// time. Under MPS the same pair time-shares the whole pool.
	run := func(mig int) sim.Time {
		k := sim.NewKernel()
		cfg := TuringConfig("gpu0")
		cfg.MemBytes = 16 << 20
		d := New(k, sim.DefaultCosts(), cfg)
		d.ConfigureMIG(mig)
		Register(&Kernel{
			Name: "full_kernel",
			Cost: func(Dim, []uint64) LaunchCost {
				return LaunchCost{Work: sim.Duration(1 * sim.Millisecond), SMDemand: d.SMs()}
			},
			Func: func(e *Exec) error { return nil },
		})
		var end sim.Time
		wg := sim.NewWaitGroup(k)
		for i := 0; i < 2; i++ {
			wg.Add(1)
			k.Spawn("tenant", func(p *sim.Proc) {
				ctx := d.CreateContext()
				ctx.LoadModule(BuildCubin("full_kernel"))
				for j := 0; j < 3; j++ {
					ctx.Launch(p, "full_kernel", Dim{1, 1, 1})
				}
				wg.Done()
			})
		}
		k.Spawn("wait", func(p *sim.Proc) { wg.Wait(p); end = p.Now() })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	mig := run(2)
	mps := run(0) // MPS (cfg default) with full-device kernels
	// MIG: each tenant runs 3 kernels at 2x duration in parallel -> ~6ms.
	// MPS: 6 full-device kernels share the pool -> also ~6ms aggregate,
	// but MIG's guarantee is *determinism*: both tenants finish at the
	// same time regardless of the other's behaviour.
	if mig <= 0 || mps <= 0 {
		t.Fatal("no time elapsed")
	}
	ratio := float64(mig) / float64(mps)
	if ratio < 0.9 || ratio > 1.3 {
		t.Errorf("MIG/MPS ratio %.2f outside the expected band", ratio)
	}
}

func TestMIGCapsKernelDemand(t *testing.T) {
	k := sim.NewKernel()
	cfg := TuringConfig("gpu0")
	cfg.MemBytes = 16 << 20
	d := New(k, sim.DefaultCosts(), cfg)
	d.ConfigureMIG(4)
	Register(&Kernel{
		Name: "half_demand",
		Cost: func(Dim, []uint64) LaunchCost {
			return LaunchCost{Work: sim.Duration(1 * sim.Millisecond), SMDemand: d.SMs() / 2}
		},
		Func: func(e *Exec) error { return nil },
	})
	var took sim.Duration
	k.Spawn("t", func(p *sim.Proc) {
		ctx := d.CreateContext()
		ctx.LoadModule(BuildCubin("half_demand"))
		start := p.Now()
		ctx.Launch(p, "half_demand", Dim{1, 1, 1})
		took = sim.Duration(p.Now() - start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Demand 23 capped to slice 11.5 -> work stretches 2x (plus dispatch).
	want := 2*sim.Millisecond + sim.DefaultCosts().KernelDispatch
	if took < want-sim.Microsecond || took > want+sim.Microsecond {
		t.Errorf("took %v, want ~%v", took, want)
	}
}
