package gpu

import (
	"encoding/binary"
	"fmt"
	"math"

	"cronus/internal/sim"
)

// F32 is a float32 view over device memory bytes.
type F32 []byte

// Len returns the number of float32 elements.
func (f F32) Len() int { return len(f) / 4 }

// Get reads element i.
func (f F32) Get(i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(f[i*4:]))
}

// Set writes element i.
func (f F32) Set(i int, v float32) {
	binary.LittleEndian.PutUint32(f[i*4:], math.Float32bits(v))
}

// PackF32 encodes a float32 slice into bytes (host-side staging helper).
func PackF32(xs []float32) []byte {
	out := make([]byte, 4*len(xs))
	f := F32(out)
	for i, x := range xs {
		f.Set(i, x)
	}
	return out
}

// UnpackF32 decodes bytes into float32s.
func UnpackF32(b []byte) []float32 {
	f := F32(b)
	out := make([]float32, f.Len())
	for i := range out {
		out[i] = f.Get(i)
	}
	return out
}

// Device-wide FMA throughput used by the FLOP-based cost model: ~8 TFLOP/s
// across the full SM pool, i.e. 8000 FLOPs per virtual nanosecond.
const flopsPerNsFullDevice = 8000.0

// FlopCost models a launch by FLOP count: the ideal duration at `demand` SMs
// for a kernel whose grid performs flops(grid, args) operations on a device
// with `sms` total SMs.
func FlopCost(sms float64, demand float64, flops func(grid Dim, args []uint64) float64) func(Dim, []uint64) LaunchCost {
	return func(grid Dim, args []uint64) LaunchCost {
		rate := flopsPerNsFullDevice * demand / sms
		return LaunchCost{
			Work:     sim.Duration(flops(grid, args) / rate),
			SMDemand: demand,
		}
	}
}

// RegisterStdKernels installs the standard kernel library (vector add,
// saxpy, matmul, relu, elementwise scale/sub, reductions) shared by the DNN
// workloads and examples. sms is the device SM count the cost model is
// calibrated against.
func RegisterStdKernels(sms float64) {
	// vec_add: c[i] = a[i] + b[i]; args: a, b, c; grid [n].
	Register(&Kernel{
		Name: "vec_add",
		Cost: FlopCost(sms, sms*0.5, func(g Dim, _ []uint64) float64 { return float64(g.Elems()) }),
		Func: func(e *Exec) error {
			n := e.Grid.Elems()
			a, err := e.Bytes(e.Arg(0), n*4)
			if err != nil {
				return err
			}
			b, err := e.Bytes(e.Arg(1), n*4)
			if err != nil {
				return err
			}
			c, err := e.Bytes(e.Arg(2), n*4)
			if err != nil {
				return err
			}
			fa, fb, fc := F32(a), F32(b), F32(c)
			for i := 0; i < n; i++ {
				fc.Set(i, fa.Get(i)+fb.Get(i))
			}
			return nil
		},
	})

	// saxpy: y[i] += alpha*x[i]; args: x, y, alphaBits; grid [n].
	Register(&Kernel{
		Name: "saxpy",
		Cost: FlopCost(sms, sms*0.5, func(g Dim, _ []uint64) float64 { return 2 * float64(g.Elems()) }),
		Func: func(e *Exec) error {
			n := e.Grid.Elems()
			x, err := e.Bytes(e.Arg(0), n*4)
			if err != nil {
				return err
			}
			y, err := e.Bytes(e.Arg(1), n*4)
			if err != nil {
				return err
			}
			alpha := math.Float32frombits(uint32(e.Arg(2)))
			fx, fy := F32(x), F32(y)
			for i := 0; i < n; i++ {
				fy.Set(i, fy.Get(i)+alpha*fx.Get(i))
			}
			return nil
		},
	})

	// matmul: C[M×N] = A[M×K] × B[K×N]; args: a, b, c, M, N, K.
	Register(&Kernel{
		Name: "matmul",
		Cost: FlopCost(sms, sms*0.75, func(_ Dim, args []uint64) float64 {
			m, n, k := float64(args[3]), float64(args[4]), float64(args[5])
			return 2 * m * n * k
		}),
		Func: func(e *Exec) error {
			m, n, k := int(e.Arg(3)), int(e.Arg(4)), int(e.Arg(5))
			ab, err := e.Bytes(e.Arg(0), m*k*4)
			if err != nil {
				return err
			}
			bb, err := e.Bytes(e.Arg(1), k*n*4)
			if err != nil {
				return err
			}
			cb, err := e.Bytes(e.Arg(2), m*n*4)
			if err != nil {
				return err
			}
			// Unpack once: the inner loop runs on raw float32 slices.
			a, b := UnpackF32(ab), UnpackF32(bb)
			c := make([]float32, m*n)
			for i := 0; i < m; i++ {
				ar := a[i*k : (i+1)*k]
				cr := c[i*n : (i+1)*n]
				for t := 0; t < k; t++ {
					av := ar[t]
					if av == 0 {
						continue
					}
					br := b[t*n : (t+1)*n]
					for j := range cr {
						cr[j] += av * br[j]
					}
				}
			}
			copy(cb, PackF32(c))
			return nil
		},
	})

	// relu: y[i] = max(0, x[i]); args: x, y; grid [n].
	Register(&Kernel{
		Name: "relu",
		Cost: FlopCost(sms, sms*0.4, func(g Dim, _ []uint64) float64 { return float64(g.Elems()) }),
		Func: func(e *Exec) error {
			n := e.Grid.Elems()
			x, err := e.Bytes(e.Arg(0), n*4)
			if err != nil {
				return err
			}
			y, err := e.Bytes(e.Arg(1), n*4)
			if err != nil {
				return err
			}
			fx, fy := F32(x), F32(y)
			for i := 0; i < n; i++ {
				v := fx.Get(i)
				if v < 0 {
					v = 0
				}
				fy.Set(i, v)
			}
			return nil
		},
	})

	// scale: x[i] *= alpha; args: x, alphaBits; grid [n].
	Register(&Kernel{
		Name: "scale",
		Cost: FlopCost(sms, sms*0.4, func(g Dim, _ []uint64) float64 { return float64(g.Elems()) }),
		Func: func(e *Exec) error {
			n := e.Grid.Elems()
			x, err := e.Bytes(e.Arg(0), n*4)
			if err != nil {
				return err
			}
			alpha := math.Float32frombits(uint32(e.Arg(1)))
			fx := F32(x)
			for i := 0; i < n; i++ {
				fx.Set(i, fx.Get(i)*alpha)
			}
			return nil
		},
	})

	// sub: c[i] = a[i] - b[i]; args: a, b, c; grid [n].
	Register(&Kernel{
		Name: "sub",
		Cost: FlopCost(sms, sms*0.5, func(g Dim, _ []uint64) float64 { return float64(g.Elems()) }),
		Func: func(e *Exec) error {
			n := e.Grid.Elems()
			a, err := e.Bytes(e.Arg(0), n*4)
			if err != nil {
				return err
			}
			b, err := e.Bytes(e.Arg(1), n*4)
			if err != nil {
				return err
			}
			c, err := e.Bytes(e.Arg(2), n*4)
			if err != nil {
				return err
			}
			fa, fb, fc := F32(a), F32(b), F32(c)
			for i := 0; i < n; i++ {
				fc.Set(i, fa.Get(i)-fb.Get(i))
			}
			return nil
		},
	})

	// reduce_sum: out[0] = sum(x); args: x, out; grid [n].
	Register(&Kernel{
		Name: "reduce_sum",
		Cost: FlopCost(sms, sms*0.6, func(g Dim, _ []uint64) float64 { return float64(g.Elems()) }),
		Func: func(e *Exec) error {
			n := e.Grid.Elems()
			x, err := e.Bytes(e.Arg(0), n*4)
			if err != nil {
				return err
			}
			out, err := e.Bytes(e.Arg(1), 4)
			if err != nil {
				return err
			}
			fx := F32(x)
			var s float32
			for i := 0; i < n; i++ {
				s += fx.Get(i)
			}
			F32(out).Set(0, s)
			return nil
		},
	})
}

// FloatBits packs a float32 into a launch argument.
func FloatBits(v float32) uint64 { return uint64(math.Float32bits(v)) }

// CheckFinite validates that a device buffer holds finite float32s — a
// debugging helper used by tests.
func CheckFinite(buf []byte) error {
	f := F32(buf)
	for i := 0; i < f.Len(); i++ {
		v := float64(f.Get(i))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("gpu: non-finite value %v at element %d", v, i)
		}
	}
	return nil
}
