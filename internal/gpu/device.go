// Package gpu implements the functional GPU device model used by CRONUS's
// CUDA mEnclaves: device memory with per-context virtual-address isolation,
// a kernel execution engine modelling streaming-multiprocessor occupancy
// (with MPS-style spatial sharing), DMA copy engines, PCIe peer-to-peer
// copies, and a fused device key for hardware authenticity attestation.
//
// Kernels really execute: they are Go functions operating on device memory,
// registered in a global registry and referenced from "cubin" module images,
// so workloads produce verifiable numerical results while the engine charges
// calibrated virtual time.
package gpu

import (
	"fmt"
	"sort"

	"cronus/internal/attest"
	"cronus/internal/sim"
)

// Device is one GPU. It implements hw.Device.
type Device struct {
	name    string
	k       *sim.Kernel
	costs   *sim.CostModel
	memSize uint64
	memUsed uint64

	sms       *sim.PSEngine // compute engine (SM pool)
	copyEng   *sim.Resource // DMA copy engines
	exclusive *sim.Resource // whole-device lock when MPS is off
	mps       bool          // spatial sharing enabled
	migSlices int           // >0: MIG-style static SM slices
	contexts  map[int]*Context
	nextCtx   int
	gen       uint64 // bumped on Reset; stale contexts die

	launches uint64          // device-lifetime kernel launch ordinal
	hangAt   map[uint64]bool // chaos: launch ordinals that never complete

	priv attest.PrivateKey // fused device key (PvK_acc)
}

// Config sizes a GPU.
type Config struct {
	Name     string
	MemBytes uint64
	SMs      int
	CopyEngs int
	MPS      bool   // allow concurrent kernels from different contexts
	KeySeed  string // device key fuse material
}

// TuringConfig approximates the paper's GTX 2080: 46 SMs, 8 GB, 2 copy
// engines. The nouveau/gdev stack in the paper has no MIG, but the GPU model
// supports MPS-style concurrent kernel execution (§VI-C).
func TuringConfig(name string) Config {
	return Config{Name: name, MemBytes: 8 << 30, SMs: 46, CopyEngs: 2, MPS: true, KeySeed: "turing/" + name}
}

// New creates a GPU device.
func New(k *sim.Kernel, costs *sim.CostModel, cfg Config) *Device {
	if cfg.SMs <= 0 {
		cfg.SMs = 46
	}
	if cfg.CopyEngs <= 0 {
		cfg.CopyEngs = 2
	}
	return &Device{
		name:      cfg.Name,
		k:         k,
		costs:     costs,
		memSize:   cfg.MemBytes,
		sms:       sim.NewPSEngine(k, cfg.Name+"/sms", float64(cfg.SMs)),
		copyEng:   sim.NewResource(k, cfg.Name+"/copy", cfg.CopyEngs),
		exclusive: sim.NewResource(k, cfg.Name+"/excl", 1),
		mps:       cfg.MPS,
		contexts:  make(map[int]*Context),
		priv:      attest.KeyFromSeed([]byte("gpu-device-key/" + cfg.KeySeed)),
	}
}

// Name implements hw.Device.
func (d *Device) Name() string { return d.name }

// SMs returns the compute capacity in SM units.
func (d *Device) SMs() float64 { return d.sms.Capacity() }

// MemBytes returns total device memory.
func (d *Device) MemBytes() uint64 { return d.memSize }

// MemUsed returns allocated device memory.
func (d *Device) MemUsed() uint64 { return d.memUsed }

// SetMPS enables or disables spatial sharing (concurrent kernels from
// different contexts).
func (d *Device) SetMPS(on bool) { d.mps = on }

// MPS reports whether spatial sharing is enabled.
func (d *Device) MPS() bool { return d.mps }

// ConfigureMIG statically partitions the SM pool into n equal slices
// (NVIDIA MIG-style, the isolation mechanism §V-B notes CRONUS would use
// when hardware provides it): every kernel's demand is capped to one
// slice, so tenants can never contend — stronger isolation than MPS at the
// cost of leaving capacity idle when a kernel could have used more.
// n = 0 disables MIG.
func (d *Device) ConfigureMIG(n int) {
	d.migSlices = n
}

// MIGSlices returns the configured slice count (0 = disabled).
func (d *Device) MIGSlices() int { return d.migSlices }

// Reset implements hw.Device: it drops every context and scrubs all device
// memory — the SPM's failure-clearing hook (A3).
func (d *Device) Reset() {
	for _, c := range d.contexts {
		for _, s := range c.spans {
			for i := range s.buf {
				s.buf[i] = 0
			}
		}
	}
	d.contexts = make(map[int]*Context)
	d.memUsed = 0
	d.gen++
	d.sms.Drain()
}

// hangPark is how long a hang-injected launch parks: far beyond any
// experiment window, but far from the int64 horizon so arithmetic on
// now+hangPark cannot overflow.
const hangPark = sim.Duration(1) << 61

// ArmLaunchHang makes the n-th kernel launch on this device (1-based,
// counted over the device's lifetime across all contexts) hang: the
// launching proc parks for hangPark virtual time without ever occupying the
// SM engine, modelling a wedged command queue. The arm is one-shot. Chaos
// uses this to exercise the serving plane's per-request timeout + retry
// path; co-resident contexts are unaffected because no engine capacity is
// held while parked.
func (d *Device) ArmLaunchHang(n uint64) {
	if d.hangAt == nil {
		d.hangAt = make(map[uint64]bool)
	}
	d.hangAt[n] = true
}

// Launches returns the device-lifetime kernel launch count.
func (d *Device) Launches() uint64 { return d.launches }

// PubKey returns the device's authenticity public key (PubK_acc).
func (d *Device) PubKey() attest.PublicKey { return d.priv.Public().(attest.PublicKey) }

// Authenticate signs a challenge, proving possession of the fused key — the
// mOS uses this to verify the accelerator is genuine before registering it
// for attestation (§IV-A).
func (d *Device) Authenticate(challenge []byte) []byte {
	return attest.Sign(d.priv, challenge)
}

// CreateContext makes an isolated GPU context (own VA space, own memory).
func (d *Device) CreateContext() *Context {
	d.nextCtx++
	c := &Context{id: d.nextCtx, dev: d, gen: d.gen, modules: make(map[string]*Kernel)}
	d.contexts[c.id] = c
	return c
}

// DestroyContext frees all of a context's memory (scrubbed).
func (d *Device) DestroyContext(c *Context) {
	if d.contexts[c.id] != c {
		return
	}
	for _, s := range c.spans {
		for i := range s.buf {
			s.buf[i] = 0
		}
		d.memUsed -= s.size
	}
	c.spans = nil
	delete(d.contexts, c.id)
}

// ErrStaleContext reports use of a context from before a device reset.
var ErrStaleContext = fmt.Errorf("gpu: context predates device reset")

// span is one device memory allocation (contiguous VA and backing).
type span struct {
	va   uint64
	size uint64
	buf  []byte
}

// Context is a GPU context: an isolated VA space with its loaded modules.
// Contexts are how CRONUS isolates co-resident CUDA mEnclaves on one GPU
// (§V-B "GPU virtual address isolation").
type Context struct {
	id      int
	dev     *Device
	gen     uint64
	spans   []*span // sorted by va
	nextVA  uint64
	modules map[string]*Kernel
}

// ID returns the context id.
func (c *Context) ID() int { return c.id }

func (c *Context) check() error {
	if c.gen != c.dev.gen {
		return ErrStaleContext
	}
	return nil
}

// MemAlloc allocates n bytes of device memory and returns its device VA.
func (c *Context) MemAlloc(n uint64) (uint64, error) {
	if err := c.check(); err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("gpu: zero-byte allocation")
	}
	if c.dev.memUsed+n > c.dev.memSize {
		return 0, fmt.Errorf("gpu: out of device memory (%d used of %d)", c.dev.memUsed, c.dev.memSize)
	}
	// VA layout: context id in the top bits makes cross-context pointer
	// forgery structurally impossible to resolve.
	va := uint64(c.id)<<40 | (c.nextVA + 0x1000)
	c.nextVA += (n + 0xfff) &^ 0xfff
	s := &span{va: va, size: n, buf: make([]byte, n)}
	c.spans = append(c.spans, s)
	sort.Slice(c.spans, func(i, j int) bool { return c.spans[i].va < c.spans[j].va })
	c.dev.memUsed += n
	return va, nil
}

// MemFree releases an allocation (scrubbed).
func (c *Context) MemFree(va uint64) error {
	for i, s := range c.spans {
		if s.va == va {
			for j := range s.buf {
				s.buf[j] = 0
			}
			c.dev.memUsed -= s.size
			c.spans = append(c.spans[:i], c.spans[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("gpu: MemFree(%#x): no such allocation", va)
}

// resolve finds the span containing [ptr, ptr+n).
func (c *Context) resolve(ptr uint64, n int) ([]byte, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	i := sort.Search(len(c.spans), func(i int) bool { return c.spans[i].va+c.spans[i].size > ptr })
	if i < len(c.spans) {
		s := c.spans[i]
		if ptr >= s.va && ptr+uint64(n) <= s.va+s.size {
			off := ptr - s.va
			return s.buf[off : off+uint64(n)], nil
		}
	}
	return nil, fmt.Errorf("gpu: invalid device pointer %#x (+%d) in context %d", ptr, n, c.id)
}

// HtoD copies host bytes to device memory, occupying a copy engine for the
// PCIe transfer time.
func (c *Context) HtoD(p *sim.Proc, dst uint64, src []byte) error {
	buf, err := c.resolve(dst, len(src))
	if err != nil {
		return err
	}
	c.dev.copyEng.Use(p, 1, c.dev.costs.DMA(len(src)))
	copy(buf, src)
	return nil
}

// DtoH copies device memory to host bytes.
func (c *Context) DtoH(p *sim.Proc, dst []byte, src uint64) error {
	buf, err := c.resolve(src, len(dst))
	if err != nil {
		return err
	}
	c.dev.copyEng.Use(p, 1, c.dev.costs.DMA(len(dst)))
	copy(dst, buf)
	return nil
}

// DtoD copies within the device (no PCIe; modelled at memcpy bandwidth).
func (c *Context) DtoD(p *sim.Proc, dst, src uint64, n int) error {
	sb, err := c.resolve(src, n)
	if err != nil {
		return err
	}
	db, err := c.resolve(dst, n)
	if err != nil {
		return err
	}
	c.dev.copyEng.Use(p, 1, c.dev.costs.Memcpy(n))
	copy(db, sb)
	return nil
}

// CopyPeer copies between two devices over PCIe (GPU P2P, Figure 11b).
func CopyPeer(p *sim.Proc, dst *Context, dstPtr uint64, src *Context, srcPtr uint64, n int) error {
	sb, err := src.resolve(srcPtr, n)
	if err != nil {
		return err
	}
	db, err := dst.resolve(dstPtr, n)
	if err != nil {
		return err
	}
	// Both devices' copy engines are busy for the transfer.
	src.dev.copyEng.Acquire(p, 1)
	dst.dev.copyEng.Acquire(p, 1)
	p.Sleep(src.dev.costs.DMA(n))
	src.dev.copyEng.Release(1)
	dst.dev.copyEng.Release(1)
	copy(db, sb)
	return nil
}
