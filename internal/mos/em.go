package mos

import (
	"encoding/binary"
	"fmt"

	"cronus/internal/attest"
	"cronus/internal/enclave"
	"cronus/internal/hw"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/trace"
	"cronus/internal/wire"
)

// EnclaveManager loads, measures and runs the mEnclaves of one mOS (§IV-A).
type EnclaveManager struct {
	mos       *MOS
	enclaves  map[uint32]*Enclave
	nextLocal uint32
	epoch     uint64
}

func newEnclaveManager(m *MOS) *EnclaveManager {
	return &EnclaveManager{
		mos:      m,
		enclaves: make(map[uint32]*Enclave),
		epoch:    m.Part.Epoch(),
	}
}

// Enclave is one loaded mEnclave: the black-box executor ⟨mECalls, state⟩
// plus the bookkeeping the Enclave Manager needs (ownership secret, resource
// accounting, measurement).
type Enclave struct {
	EID      uint32
	Name     string
	Manifest enclave.Manifest
	EDL      *enclave.EDL
	Hash     attest.Measurement
	Model    enclave.Model

	em      *EnclaveManager
	secret  []byte // secret_dhke with the owner (§IV-A)
	rxOwner *attest.Channel
	txOwner *attest.Channel
	memCap  uint64
	memUsed uint64
	dead    bool

	// grants tracks sRPC shared-memory grants owned by this enclave so
	// enclave failure can revoke them (§IV-D "Handling mEnclave failures").
	grants []int
}

// CreateResult is returned to the caller of create: the new enclave id and
// its DH public key so the caller can derive secret_dhke.
type CreateResult struct {
	EID   uint32
	DHPub []byte
	Hash  attest.Measurement
}

// Create implements the mEnclave creation flow (§IV-A): the Enclave Manager
// verifies the manifest against the images, allocates resources, loads the
// execution model (me_create), performs the Diffie-Hellman exchange with the
// caller, and mints an eid whose top 8 bits are the mOS id.
func (em *EnclaveManager) Create(p *sim.Proc, name string, man enclave.Manifest, files map[string][]byte, callerDHPub []byte) (*CreateResult, *Enclave, error) {
	if em.mos.Part.State() != spm.PartReady {
		return nil, nil, fmt.Errorf("mos: partition %q not ready", em.mos.Part.Name)
	}
	if man.DeviceType != em.mos.HAL.DeviceType() {
		return nil, nil, fmt.Errorf("mos: manifest device type %q does not match this mOS (%q) — wrong partition",
			man.DeviceType, em.mos.HAL.DeviceType())
	}
	if err := man.VerifyImages(files); err != nil {
		return nil, nil, err
	}
	edl, err := enclave.ParseEDL(files[man.MECalls])
	if err != nil {
		return nil, nil, err
	}
	memCap, err := man.Resources.MemoryBytes()
	if err != nil {
		return nil, nil, err
	}
	model, err := em.mos.HAL.NewModel(p)
	if err != nil {
		return nil, nil, err
	}
	var image []byte
	if man.Image != "" {
		image = files[man.Image]
	}
	if err := model.Create(p, image); err != nil {
		return nil, nil, err
	}
	// Measurement covers the manifest and all images (runtime + code).
	totalBytes := len(man.Encode())
	for _, b := range files {
		totalBytes += len(b)
	}
	p.Sleep(em.mos.Costs.Hash(totalBytes))
	hash := man.Measure(files)

	em.nextLocal++
	eid := uint32(em.mos.Part.ID)<<24 | (em.nextLocal & 0xffffff)

	// Diffie-Hellman with the caller establishes secret_dhke; every later
	// message over untrusted memory is authenticated with it.
	var seed [16]byte
	binary.LittleEndian.PutUint32(seed[:], eid)
	binary.LittleEndian.PutUint64(seed[4:], em.epoch)
	copy(seed[12:], em.mos.Part.Name)
	dh, err := attest.NewDHKey(seed[:])
	if err != nil {
		return nil, nil, err
	}
	secret, err := dh.Shared(callerDHPub)
	if err != nil {
		return nil, nil, fmt.Errorf("mos: caller DH key invalid: %w", err)
	}
	p.Sleep(em.mos.Costs.DhkeHandshake)

	e := &Enclave{
		EID:      eid,
		Name:     name,
		Manifest: man,
		EDL:      edl,
		Hash:     hash,
		Model:    model,
		em:       em,
		secret:   secret,
		rxOwner:  attest.NewChannel(secret, "owner->enclave"),
		txOwner:  attest.NewChannel(secret, "enclave->owner"),
		memCap:   memCap,
	}
	em.enclaves[eid] = e
	mEnclavesMade.Inc()
	return &CreateResult{EID: eid, DHPub: dh.Pub, Hash: hash}, e, nil
}

// Get returns a live enclave by id.
func (em *EnclaveManager) Get(eid uint32) (*Enclave, bool) {
	e, ok := em.enclaves[eid]
	if !ok || e.dead {
		return nil, false
	}
	return e, true
}

// Measurements returns name -> hash for every live enclave (for the
// platform attestation report).
func (em *EnclaveManager) Measurements() map[string]attest.Measurement {
	out := make(map[string]attest.Measurement, len(em.enclaves))
	for _, e := range em.enclaves {
		if !e.dead {
			out[e.Name] = e.Hash
		}
	}
	return out
}

// LocalReport produces an SPM-sealed local attestation report for one of
// this mOS's enclaves.
func (em *EnclaveManager) LocalReport(eid uint32, nonce uint64) (attest.LocalReport, []byte, error) {
	e, ok := em.Get(eid)
	if !ok {
		return attest.LocalReport{}, nil, fmt.Errorf("mos: no enclave %#x", eid)
	}
	return em.mos.SPM.LocalReportFor(em.mos.Part, eid, e.Hash, nonce)
}

// InvokeSealed executes an mECall arriving over untrusted memory. The
// message must be sealed with secret_dhke — this is what enforces "only the
// owner can invoke mECall of the created mEnclave" (§IV-A) — and the reply
// is sealed on the return channel. Payload format: wire(name, args).
func (em *EnclaveManager) InvokeSealed(p *sim.Proc, eid uint32, msg attest.SealedMsg) (attest.SealedMsg, error) {
	e, ok := em.Get(eid)
	if !ok {
		return attest.SealedMsg{}, fmt.Errorf("mos: no enclave %#x", eid)
	}
	p.Sleep(em.mos.Costs.MACFixed) // verify request MAC
	payload, err := e.rxOwner.Open(msg)
	if err != nil {
		return attest.SealedMsg{}, fmt.Errorf("mos: mECall rejected: %w", err)
	}
	d := wire.NewDecoder(payload)
	name := d.Str()
	args := d.Blob()
	if d.Err() != nil {
		return attest.SealedMsg{}, d.Err()
	}
	res, err := e.Invoke(p, name, args)
	reply := wire.NewEncoder()
	if err != nil {
		reply.U32(1).Str(err.Error())
	} else {
		reply.U32(0).Blob(res)
	}
	p.Sleep(em.mos.Costs.MACFixed) // seal reply
	return e.txOwner.Seal(reply.Bytes()), nil
}

// SealRequest is the owner-side helper pairing with InvokeSealed.
func SealRequest(ch *attest.Channel, name string, args []byte) attest.SealedMsg {
	return ch.Seal(wire.NewEncoder().Str(name).Blob(args).Bytes())
}

// OpenReply is the owner-side helper decoding an InvokeSealed reply.
func OpenReply(ch *attest.Channel, msg attest.SealedMsg) ([]byte, error) {
	payload, err := ch.Open(msg)
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(payload)
	if code := d.U32(); code != 0 {
		return nil, fmt.Errorf("mECall failed: %s", d.Str())
	}
	res := d.Blob()
	return res, d.Err()
}

// Invoke dispatches an mECall arriving from outside the enclave (the sealed
// untrusted-memory path): it pays the enclave entry plus dispatch.
func (e *Enclave) Invoke(p *sim.Proc, name string, args []byte) ([]byte, error) {
	if e.dead {
		return nil, fmt.Errorf("mos: enclave %#x is dead", e.EID)
	}
	if _, ok := e.EDL.Lookup(name); !ok {
		return nil, fmt.Errorf("mos: mECall %q not declared in EDL of enclave %#x", name, e.EID)
	}
	mSealedCalls.Inc()
	mCtxSwitchS2.Add(2) // enclave entry + exit each cross S-EL2
	p.Sleep(e.em.mos.Costs.EnclaveEntry + e.em.mos.Costs.RPCDispatch)
	return e.Model.Call(p, name, args)
}

// InvokeStreamed dispatches an mECall from the sRPC executor thread, which
// already executes inside the enclave (§IV-C: the execution loop runs in
// mE_B), so only the record dispatch is charged — this is precisely the
// context-switch saving that makes sRPC fast.
func (e *Enclave) InvokeStreamed(p *sim.Proc, name string, args []byte) ([]byte, error) {
	if e.dead {
		return nil, fmt.Errorf("mos: enclave %#x is dead", e.EID)
	}
	if _, ok := e.EDL.Lookup(name); !ok {
		return nil, fmt.Errorf("mos: mECall %q not declared in EDL of enclave %#x", name, e.EID)
	}
	mStreamedCalls.Inc()
	// The dispatch span sits between the executor's exec span and the
	// device hooks in the causal tree (the proc carries the span context).
	// The name concatenation only happens when tracing is on.
	if trace.Default.Enabled() {
		defer trace.Default.Span(p, "mos", e.em.mos.Part.Name, "dispatch "+name)()
	}
	p.Sleep(e.em.mos.Costs.RPCDispatch)
	return e.Model.Call(p, name, args)
}

// Spec returns the EDL entry for an mECall.
func (e *Enclave) Spec(name string) (enclave.MECallSpec, bool) { return e.EDL.Lookup(name) }

// Secret exposes secret_dhke to the in-partition runtime (sRPC dCheck).
// Nothing outside the secure world can reach this.
func (e *Enclave) Secret() []byte { return e.secret }

// AllocShared allocates trusted pages for sRPC shared memory, charged
// against the enclave's manifest memory cap.
func (e *Enclave) AllocShared(p *sim.Proc, npages int) (uint64, error) {
	need := uint64(npages) * hw.PageSize
	if e.memCap > 0 && e.memUsed+need > e.memCap {
		return 0, fmt.Errorf("mos: enclave %#x memory cap exceeded (%d + %d > %d)", e.EID, e.memUsed, need, e.memCap)
	}
	ipa, err := e.em.mos.Shim.AllocPages(p, npages)
	if err != nil {
		return 0, err
	}
	e.memUsed += need
	return ipa, nil
}

// TrackGrant records an SPM share grant owned by this enclave.
func (e *Enclave) TrackGrant(gid int) { e.grants = append(e.grants, gid) }

// View returns the memory view sRPC uses for this enclave's partition.
func (e *Enclave) View() *spm.View { return e.em.mos.Shim.View() }

// MOS returns the hosting MicroOS.
func (e *Enclave) MOS() *MOS { return e.em.mos }

// Kill tears down a single failed mEnclave (§IV-D "Handling mEnclave
// failures"): its device state is destroyed and every shared-memory grant it
// owned is revoked so communicating mEnclaves are notified by trap.
func (e *Enclave) Kill(p *sim.Proc) {
	if e.dead {
		return
	}
	e.dead = true
	mEnclavesDead.Inc()
	e.Model.Destroy(p)
	for _, gid := range e.grants {
		_ = e.em.mos.SPM.RevokeGrant(gid, e.Name)
	}
	delete(e.em.enclaves, e.EID)
}
