package driver

import (
	"encoding/binary"
	"fmt"

	"cronus/internal/attest"
	"cronus/internal/enclave"
	"cronus/internal/mos"
	"cronus/internal/npu"
	"cronus/internal/sim"
	"cronus/internal/trace"
	"cronus/internal/wire"
)

// NPU is the NPU partition's HAL: the VTA fsim driver. Each NPU mEnclave
// gets an isolated device memory context; instruction streams are submitted
// through the vtaRun mECall.
type NPU struct {
	dev    *npu.Device
	costs  *sim.CostModel
	vendor string
	cert   []byte
	nonce  uint64
	irqs   int
}

// NewNPU creates the NPU HAL.
func NewNPU(dev *npu.Device, costs *sim.CostModel, vendor string, cert []byte) *NPU {
	return &NPU{dev: dev, costs: costs, vendor: vendor, cert: cert}
}

// DeviceType implements mos.HAL.
func (g *NPU) DeviceType() string { return "npu" }

// Init implements mos.HAL.
func (g *NPU) Init(p *sim.Proc, sh *mos.Shim) error {
	if err := sh.Ioremap(p); err != nil {
		return err
	}
	g.nonce++
	var challenge [16]byte
	binary.LittleEndian.PutUint64(challenge[:], g.nonce)
	copy(challenge[8:], sh.DeviceName())
	sig := g.dev.Authenticate(challenge[:])
	p.Sleep(g.costs.VerifyFixed)
	if !attest.Verify(g.dev.PubKey(), challenge[:], sig) {
		return fmt.Errorf("driver: device %q failed authenticity check", sh.DeviceName())
	}
	sh.RegisterDeviceKey(g.vendor, g.dev.PubKey(), g.cert)
	// request_irq: fault/completion interrupts from the device are routed
	// to this partition's line (secure-world only, spoof-checked by the
	// GIC against the device tree).
	if err := sh.RequestIRQ(func() { g.irqs++ }); err != nil {
		return err
	}
	return nil
}

// IRQs reports how many device interrupts the driver has handled.
func (g *NPU) IRQs() int { return g.irqs }

// NewModel implements mos.HAL.
func (g *NPU) NewModel(p *sim.Proc) (enclave.Model, error) {
	p.Sleep(g.costs.EnclaveEntry)
	return &NPUModel{hal: g}, nil
}

// Reset implements mos.HAL.
func (g *NPU) Reset() {}

// Device exposes the underlying device model.
func (g *NPU) Device() *npu.Device { return g.dev }

// NPU mECall names.
const (
	CallVTAMemAlloc = "vtaMemAlloc"
	CallVTAHtoD     = "vtaCopyToDevice"
	CallVTADtoH     = "vtaCopyFromDevice"
	CallVTARun      = "vtaRun"
	CallVTASync     = "vtaSync"
)

// NPUEDL returns the EDL for NPU mEnclaves.
func NPUEDL() []byte {
	return enclave.BuildEDL(
		enclave.MECallSpec{Name: CallVTAMemAlloc, Async: false},
		enclave.MECallSpec{Name: CallVTAHtoD, Async: true},
		enclave.MECallSpec{Name: CallVTADtoH, Async: false},
		enclave.MECallSpec{Name: CallVTARun, Async: true},
		enclave.MECallSpec{Name: CallVTASync, Async: false},
	)
}

// NPUModel is the NPU mEnclave runtime (fsim runtime stand-in). Its image,
// when present, is a pre-verified instruction program; streams may also be
// submitted dynamically via vtaRun.
type NPUModel struct {
	hal *NPU
	ctx *npu.Context
}

// Create implements enclave.Model.
func (m *NPUModel) Create(p *sim.Proc, image []byte) error {
	m.ctx = m.hal.dev.CreateContext()
	if len(image) > 0 {
		p.Sleep(m.hal.costs.Hash(len(image)))
		if _, err := DecodeInsns(image); err != nil {
			return fmt.Errorf("driver: bad NPU program image: %w", err)
		}
	}
	return nil
}

// Call implements enclave.Model.
func (m *NPUModel) Call(p *sim.Proc, name string, args []byte) ([]byte, error) {
	if m.ctx == nil {
		return nil, fmt.Errorf("driver: NPU model not created")
	}
	d := wire.NewDecoder(args)
	switch name {
	case CallVTAMemAlloc:
		size := d.U64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		addr, err := m.ctx.MemAlloc(size)
		if err != nil {
			return nil, err
		}
		return wire.NewEncoder().U64(addr).Bytes(), nil
	case CallVTAHtoD:
		dst := d.U64()
		data := d.Blob()
		if err := d.Err(); err != nil {
			return nil, err
		}
		mNPUHtoDBytes.Add(uint64(len(data)))
		end := trace.Default.Span(p, "driver", m.hal.dev.Name(), "dma-htod")
		err := m.ctx.HtoD(p, dst, data)
		end()
		return nil, err
	case CallVTADtoH:
		src := d.U64()
		n := d.U64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		mNPUDtoHBytes.Add(n)
		buf := make([]byte, n)
		end := trace.Default.Span(p, "driver", m.hal.dev.Name(), "dma-dtoh")
		err := m.ctx.DtoH(p, buf, src)
		end()
		if err != nil {
			return nil, err
		}
		return wire.NewEncoder().Blob(buf).Bytes(), nil
	case CallVTARun:
		insns, err := DecodeInsns(args)
		if err != nil {
			return nil, err
		}
		mNPURuns.Inc()
		end := trace.Default.Span(p, "driver", m.hal.dev.Name(), "vta-run")
		err = m.ctx.Run(p, insns)
		end()
		return nil, err
	case CallVTASync:
		p.Sleep(m.hal.costs.DeviceMMIO)
		return nil, nil
	}
	return nil, fmt.Errorf("driver: unknown NPU mECall %q", name)
}

// Destroy implements enclave.Model.
func (m *NPUModel) Destroy(*sim.Proc) {
	if m.ctx != nil {
		m.hal.dev.DestroyContext(m.ctx)
		m.ctx = nil
	}
}

// EncodeInsns serializes an NPU instruction stream for vtaRun (also the NPU
// enclave image format).
func EncodeInsns(insns []npu.Insn) []byte {
	e := wire.NewEncoder()
	e.Str("VTAPROG v1")
	e.U32(uint32(len(insns)))
	for i := range insns {
		in := &insns[i]
		e.U32(uint32(in.Op)).U32(uint32(in.Mem))
		e.U64(in.DRAMAddr).U32(in.SRAMIdx).U32(in.Count)
		e.U32(in.InpIdx).U32(in.WgtIdx).U32(in.AccIdx)
		e.U32(in.InpStride).U32(in.WgtStride).U32(in.AccStride)
		if in.Reset {
			e.U32(1)
		} else {
			e.U32(0)
		}
		e.U32(uint32(in.Alu)).U32(in.DstIdx).U32(in.SrcIdx)
		if in.UseImm {
			e.U32(1)
		} else {
			e.U32(0)
		}
		e.U32(uint32(in.Imm))
	}
	return e.Bytes()
}

// DecodeInsns parses a vtaRun payload / NPU program image.
func DecodeInsns(data []byte) ([]npu.Insn, error) {
	d := wire.NewDecoder(data)
	if magic := d.Str(); magic != "VTAPROG v1" {
		return nil, fmt.Errorf("driver: not a VTA program (magic %q)", magic)
	}
	n := d.U32()
	insns := make([]npu.Insn, n)
	for i := range insns {
		in := &insns[i]
		in.Op = npu.Op(d.U32())
		in.Mem = npu.Mem(d.U32())
		in.DRAMAddr = d.U64()
		in.SRAMIdx = d.U32()
		in.Count = d.U32()
		in.InpIdx = d.U32()
		in.WgtIdx = d.U32()
		in.AccIdx = d.U32()
		in.InpStride = d.U32()
		in.WgtStride = d.U32()
		in.AccStride = d.U32()
		in.Reset = d.U32() == 1
		in.Alu = npu.AluOp(d.U32())
		in.DstIdx = d.U32()
		in.SrcIdx = d.U32()
		in.UseImm = d.U32() == 1
		in.Imm = int32(d.U32())
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return insns, nil
}
