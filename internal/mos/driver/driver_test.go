package driver_test

import (
	"strings"
	"testing"

	"cronus/internal/gpu"
	"cronus/internal/mos/driver"
	"cronus/internal/npu"
	"cronus/internal/sim"
	"cronus/internal/testrig"
	"cronus/internal/wire"
)

// model builds a CUDA model through the rig's GPU HAL.
func cudaModel(t *testing.T, rig *testrig.Rig, p *sim.Proc) *driver.CUDAModel {
	t.Helper()
	m, err := rig.GPUOS.HAL.NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	cm, ok := m.(*driver.CUDAModel)
	if !ok {
		t.Fatalf("model type %T", m)
	}
	if err := cm.Create(p, gpu.BuildCubin("vec_add")); err != nil {
		t.Fatal(err)
	}
	return cm
}

func TestCUDAModelArgValidation(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		m := cudaModel(t, rig, p)
		// Truncated arguments are rejected, not mis-decoded.
		if _, err := m.Call(p, driver.CallMemAlloc, []byte{1, 2}); err == nil {
			t.Error("truncated MemAlloc args accepted")
		}
		if _, err := m.Call(p, driver.CallHtoD, []byte{0}); err == nil {
			t.Error("truncated HtoD args accepted")
		}
		if _, err := m.Call(p, driver.CallLaunch, []byte{9}); err == nil {
			t.Error("truncated Launch args accepted")
		}
		// Unknown mECall name.
		if _, err := m.Call(p, "cuWarpDrive", nil); err == nil || !strings.Contains(err.Error(), "unknown CUDA mECall") {
			t.Errorf("err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCUDAModelLifecycle(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		m := cudaModel(t, rig, p)
		res, err := m.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(64))
		if err != nil {
			return err
		}
		ptr, err := driver.DecodePtr(res)
		if err != nil {
			return err
		}
		if _, err := m.Call(p, driver.CallHtoD, driver.EncodeHtoD(ptr, make([]byte, 64))); err != nil {
			return err
		}
		if _, err := m.Call(p, driver.CallMemFree, driver.EncodeMemFree(ptr)); err != nil {
			return err
		}
		// Freed pointer: the device rejects the access.
		if _, err := m.Call(p, driver.CallHtoD, driver.EncodeHtoD(ptr, make([]byte, 4))); err == nil {
			t.Error("use-after-free accepted")
		}
		m.Destroy(p)
		if _, err := m.Call(p, driver.CallMemAlloc, driver.EncodeMemAlloc(4)); err == nil {
			t.Error("destroyed model still callable")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCUDAModelRejectsBadCubin(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		m, err := rig.GPUOS.HAL.NewModel(p)
		if err != nil {
			return err
		}
		if err := m.Create(p, []byte("MZ...PE windows binary")); err == nil {
			t.Error("garbage image loaded as cubin")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNPUModelInsnCodec(t *testing.T) {
	insns := []npu.Insn{
		{Op: npu.OpLoad, Mem: npu.MemWgt, DRAMAddr: 0x1234, SRAMIdx: 7, Count: 3},
		{Op: npu.OpGemm, InpIdx: 1, WgtIdx: 2, AccIdx: 3, InpStride: 1, WgtStride: 2, AccStride: 0, Count: 9, Reset: true},
		{Op: npu.OpAlu, Alu: npu.AluShr, DstIdx: 4, UseImm: true, Imm: -2, Count: 5},
		{Op: npu.OpFinish},
	}
	enc := driver.EncodeInsns(insns)
	got, err := driver.DecodeInsns(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(insns) {
		t.Fatalf("decoded %d insns", len(got))
	}
	for i := range insns {
		if got[i] != insns[i] {
			t.Fatalf("insn %d mismatch: %+v vs %+v", i, got[i], insns[i])
		}
	}
	if _, err := driver.DecodeInsns([]byte("ELF")); err == nil {
		t.Fatal("garbage decoded as VTA program")
	}
}

func TestNPUModelValidatesProgramImage(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		m, err := rig.NPUOS.HAL.NewModel(p)
		if err != nil {
			return err
		}
		if err := m.Create(p, []byte("not a vta program")); err == nil {
			t.Error("bad NPU image accepted")
		}
		// Valid image and nil image both load.
		m2, _ := rig.NPUOS.HAL.NewModel(p)
		if err := m2.Create(p, driver.EncodeInsns([]npu.Insn{{Op: npu.OpFinish}})); err != nil {
			t.Errorf("valid program rejected: %v", err)
		}
		m3, _ := rig.NPUOS.HAL.NewModel(p)
		if err := m3.Create(p, nil); err != nil {
			t.Errorf("nil image rejected: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNPUModelRunAndSync(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		m, err := rig.NPUOS.HAL.NewModel(p)
		if err != nil {
			return err
		}
		if err := m.Create(p, nil); err != nil {
			return err
		}
		res, err := m.Call(p, driver.CallVTAMemAlloc, driver.EncodeMemAlloc(256))
		if err != nil {
			return err
		}
		addr, _ := driver.DecodePtr(res)
		if _, err := m.Call(p, driver.CallVTAHtoD, driver.EncodeHtoD(addr, make([]byte, 256))); err != nil {
			return err
		}
		prog := driver.EncodeInsns([]npu.Insn{
			{Op: npu.OpLoad, Mem: npu.MemInp, DRAMAddr: addr, Count: 4},
			{Op: npu.OpFinish},
		})
		if _, err := m.Call(p, driver.CallVTARun, prog); err != nil {
			return err
		}
		if _, err := m.Call(p, driver.CallVTASync, nil); err != nil {
			return err
		}
		out, err := m.Call(p, driver.CallVTADtoH, driver.EncodeDtoH(addr, 16))
		if err != nil {
			return err
		}
		blob, err := driver.DecodeBlob(out)
		if err != nil || len(blob) != 16 {
			t.Errorf("DtoH blob %d bytes, err=%v", len(blob), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDriverEncodersDecoders(t *testing.T) {
	// EncodeLaunch round-trips through a wire decoder the way the model
	// parses it.
	args := driver.EncodeLaunch("matmul", gpu.Dim{4, 5, 6}, 10, 20)
	d := wire.NewDecoder(args)
	if d.Str() != "matmul" {
		t.Fatal("kernel name mangled")
	}
	if d.U32() != 4 || d.U32() != 5 || d.U32() != 6 {
		t.Fatal("grid mangled")
	}
	if d.U32() != 2 || d.U64() != 10 || d.U64() != 20 {
		t.Fatal("args mangled")
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}
