// Package driver provides the Hardware Adaptation Layer implementations for
// CRONUS's three mEnclave kinds (§V-B): the CPU HAL (OPTEE-style), the GPU
// HAL (nouveau/gdev-style driving the functional GPU model) and the NPU HAL
// (the VTA fsim driver). Each also supplies the matching execution model
// (mEnclave runtime).
package driver

import (
	"cronus/internal/enclave"
	"cronus/internal/mos"
	"cronus/internal/sim"
)

// CPU is the CPU partition's HAL: no device to probe; the execution model is
// the libOS runtime running registered libraries.
type CPU struct {
	costs *sim.CostModel
}

// NewCPU creates the CPU HAL.
func NewCPU(costs *sim.CostModel) *CPU { return &CPU{costs: costs} }

// DeviceType implements mos.HAL.
func (c *CPU) DeviceType() string { return "cpu" }

// Init implements mos.HAL: the CPU needs no device bring-up.
func (c *CPU) Init(p *sim.Proc, sh *mos.Shim) error {
	p.Sleep(c.costs.EnclaveEntry)
	return nil
}

// NewModel implements mos.HAL.
func (c *CPU) NewModel(*sim.Proc) (enclave.Model, error) {
	return enclave.NewCPUModel(c.costs), nil
}

// Reset implements mos.HAL.
func (c *CPU) Reset() {}
