package driver

import (
	"encoding/binary"
	"fmt"

	"cronus/internal/attest"
	"cronus/internal/enclave"
	"cronus/internal/gpu"
	"cronus/internal/mos"
	"cronus/internal/sim"
	"cronus/internal/trace"
	"cronus/internal/wire"
)

// GPU is the GPU partition's HAL: the nouveau-style driver plus the
// gdev-style runtime factory. It authenticates the physical device at init
// and hands each CUDA mEnclave an isolated GPU context (§V-B).
type GPU struct {
	dev    *gpu.Device
	costs  *sim.CostModel
	vendor string
	cert   []byte // vendor CA endorsement of the device key
	nonce  uint64
	irqs   int
}

// NewGPU creates the GPU HAL for a device whose key the named vendor
// endorsed with cert.
func NewGPU(dev *gpu.Device, costs *sim.CostModel, vendor string, cert []byte) *GPU {
	return &GPU{dev: dev, costs: costs, vendor: vendor, cert: cert}
}

// DeviceType implements mos.HAL.
func (g *GPU) DeviceType() string { return "gpu" }

// Init implements mos.HAL: map the BARs (TZPC-checked), challenge the device
// to prove possession of its fused key (authenticity, §IV-A), and register
// the key with the SPM for attestation reports.
func (g *GPU) Init(p *sim.Proc, sh *mos.Shim) error {
	if err := sh.Ioremap(p); err != nil {
		return err
	}
	g.nonce++
	var challenge [16]byte
	binary.LittleEndian.PutUint64(challenge[:], g.nonce)
	copy(challenge[8:], sh.DeviceName())
	sig := g.dev.Authenticate(challenge[:])
	p.Sleep(g.costs.VerifyFixed)
	if !attest.Verify(g.dev.PubKey(), challenge[:], sig) {
		return fmt.Errorf("driver: device %q failed authenticity check (fabricated accelerator?)", sh.DeviceName())
	}
	sh.RegisterDeviceKey(g.vendor, g.dev.PubKey(), g.cert)
	// request_irq: fault/completion interrupts from the device are routed
	// to this partition's line (secure-world only, spoof-checked by the
	// GIC against the device tree).
	if err := sh.RequestIRQ(func() { g.irqs++ }); err != nil {
		return err
	}
	return nil
}

// IRQs reports how many device interrupts the driver has handled.
func (g *GPU) IRQs() int { return g.irqs }

// NewModel implements mos.HAL.
func (g *GPU) NewModel(p *sim.Proc) (enclave.Model, error) {
	p.Sleep(g.costs.EnclaveEntry)
	return &CUDAModel{hal: g}, nil
}

// Reset implements mos.HAL.
func (g *GPU) Reset() {}

// Device exposes the underlying device (experiments configure MPS through
// it).
func (g *GPU) Device() *gpu.Device { return g.dev }

// CUDAModel is the CUDA mEnclave runtime (gdev/ocelot stand-in): its image
// is a cubin and its mECalls are the CUDA driver API surface.
type CUDAModel struct {
	hal *GPU
	ctx *gpu.Context
}

// Create implements enclave.Model: parse the CUDA ELF and load it into a
// fresh isolated GPU context (me_create for CUDA, §IV-A).
func (m *CUDAModel) Create(p *sim.Proc, image []byte) error {
	m.ctx = m.hal.dev.CreateContext()
	if len(image) == 0 {
		return nil // fixed-function / modules loaded later
	}
	p.Sleep(m.hal.costs.Hash(len(image))) // image parse pass
	return m.ctx.LoadModule(image)
}

// CUDA mECall names served by every CUDA mEnclave.
const (
	CallMemAlloc = "cuMemAlloc"
	CallMemFree  = "cuMemFree"
	CallHtoD     = "cuMemcpyHtoD"
	CallDtoH     = "cuMemcpyDtoH"
	CallLaunch   = "cuLaunchKernel"
	CallSync     = "cuCtxSynchronize"
)

// CUDAEDL returns the EDL for CUDA mEnclaves: launches and HtoD copies
// stream asynchronously; allocation and DtoH return data, so they are
// synchronous (§IV-C: "checks the progress ... only when it needs data").
func CUDAEDL() []byte {
	return enclave.BuildEDL(
		enclave.MECallSpec{Name: CallMemAlloc, Async: false},
		enclave.MECallSpec{Name: CallMemFree, Async: true},
		enclave.MECallSpec{Name: CallHtoD, Async: true},
		enclave.MECallSpec{Name: CallDtoH, Async: false},
		enclave.MECallSpec{Name: CallLaunch, Async: true},
		enclave.MECallSpec{Name: CallSync, Async: false},
	)
}

// Call implements enclave.Model.
func (m *CUDAModel) Call(p *sim.Proc, name string, args []byte) ([]byte, error) {
	if m.ctx == nil {
		return nil, fmt.Errorf("driver: CUDA model not created")
	}
	d := wire.NewDecoder(args)
	switch name {
	case CallMemAlloc:
		size := d.U64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		ptr, err := m.ctx.MemAlloc(size)
		if err != nil {
			return nil, err
		}
		return wire.NewEncoder().U64(ptr).Bytes(), nil
	case CallMemFree:
		ptr := d.U64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, m.ctx.MemFree(ptr)
	case CallHtoD:
		dst := d.U64()
		data := d.Blob()
		if err := d.Err(); err != nil {
			return nil, err
		}
		mGPUHtoDBytes.Add(uint64(len(data)))
		end := trace.Default.Span(p, "driver", m.hal.dev.Name(), "dma-htod")
		err := m.ctx.HtoD(p, dst, data)
		end()
		return nil, err
	case CallDtoH:
		src := d.U64()
		n := d.U64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		mGPUDtoHBytes.Add(n)
		buf := make([]byte, n)
		end := trace.Default.Span(p, "driver", m.hal.dev.Name(), "dma-dtoh")
		err := m.ctx.DtoH(p, buf, src)
		end()
		if err != nil {
			return nil, err
		}
		return wire.NewEncoder().Blob(buf).Bytes(), nil
	case CallLaunch:
		kname := d.Str()
		var grid gpu.Dim
		for i := range grid {
			grid[i] = int(d.U32())
		}
		n := d.U32()
		kargs := make([]uint64, n)
		for i := range kargs {
			kargs[i] = d.U64()
		}
		if err := d.Err(); err != nil {
			return nil, err
		}
		mGPULaunches.Inc()
		end := trace.Default.Span(p, "driver", m.hal.dev.Name(), "kernel-launch")
		err := m.ctx.Launch(p, kname, grid, kargs...)
		end()
		return nil, err
	case CallSync:
		// Device-level synchronization: in the model, launches already
		// completed when executed; charge the driver round trip.
		p.Sleep(m.hal.costs.DeviceMMIO)
		return nil, nil
	}
	return nil, fmt.Errorf("driver: unknown CUDA mECall %q", name)
}

// Destroy implements enclave.Model.
func (m *CUDAModel) Destroy(*sim.Proc) {
	if m.ctx != nil {
		m.hal.dev.DestroyContext(m.ctx)
		m.ctx = nil
	}
}

// EncodeLaunch builds cuLaunchKernel arguments (client-side helper).
func EncodeLaunch(kernel string, grid gpu.Dim, kargs ...uint64) []byte {
	e := wire.NewEncoder().Str(kernel)
	for _, g := range grid {
		e.U32(uint32(g))
	}
	e.U32(uint32(len(kargs)))
	for _, a := range kargs {
		e.U64(a)
	}
	return e.Bytes()
}

// EncodeHtoD builds cuMemcpyHtoD arguments.
func EncodeHtoD(dst uint64, data []byte) []byte {
	return wire.NewEncoder().U64(dst).Blob(data).Bytes()
}

// EncodeDtoH builds cuMemcpyDtoH arguments.
func EncodeDtoH(src uint64, n uint64) []byte {
	return wire.NewEncoder().U64(src).U64(n).Bytes()
}

// EncodeMemAlloc builds cuMemAlloc arguments.
func EncodeMemAlloc(n uint64) []byte { return wire.NewEncoder().U64(n).Bytes() }

// EncodeMemFree builds cuMemFree arguments.
func EncodeMemFree(ptr uint64) []byte { return wire.NewEncoder().U64(ptr).Bytes() }

// DecodePtr reads a device pointer reply (cuMemAlloc).
func DecodePtr(res []byte) (uint64, error) {
	d := wire.NewDecoder(res)
	p := d.U64()
	return p, d.Err()
}

// DecodeBlob reads a data reply (cuMemcpyDtoH).
func DecodeBlob(res []byte) ([]byte, error) {
	d := wire.NewDecoder(res)
	b := d.Blob()
	return b, d.Err()
}
