package driver

import "cronus/internal/metrics"

// Device-driver traffic accounting: how many kernels each accelerator class
// launched and how many bytes moved over DMA in each direction. The byte
// counters complement srpc.bytes_moved — this is what reached the device,
// that is what crossed the trusted shared-memory ring.
var (
	mGPULaunches  = metrics.Default.Counter("driver.gpu.kernel_launches")
	mGPUHtoDBytes = metrics.Default.Counter("driver.gpu.htod_bytes")
	mGPUDtoHBytes = metrics.Default.Counter("driver.gpu.dtoh_bytes")
	mNPURuns      = metrics.Default.Counter("driver.npu.runs")
	mNPUHtoDBytes = metrics.Default.Counter("driver.npu.htod_bytes")
	mNPUDtoHBytes = metrics.Default.Counter("driver.npu.dtoh_bytes")
)
