package mos_test

import (
	"strings"
	"testing"

	"cronus/internal/attest"
	"cronus/internal/enclave"
	"cronus/internal/gpu"
	"cronus/internal/mos"
	"cronus/internal/mos/driver"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/testrig"
	"cronus/internal/wire"
)

func init() {
	enclave.RegisterCPULibrary(&enclave.CPULibrary{
		Name: "mathlib",
		Funcs: map[string]enclave.CPUFunc{
			"sum": func(p *sim.Proc, args []byte) ([]byte, error) {
				d := wire.NewDecoder(args)
				a, b := d.U64(), d.U64()
				return wire.NewEncoder().U64(a + b).Bytes(), d.Err()
			},
		},
	})
}

// cpuManifest builds a valid CPU enclave manifest + files.
func cpuManifest() (enclave.Manifest, map[string][]byte) {
	files := map[string][]byte{
		"math.edl": enclave.BuildEDL(enclave.MECallSpec{Name: "sum", Async: false}),
		"math.so":  enclave.BuildCPUImage("mathlib"),
	}
	man := enclave.NewManifest("cpu", "math.edl", "math.so", files, enclave.Resources{Memory: "1M"})
	return man, files
}

func gpuManifest() (enclave.Manifest, map[string][]byte) {
	files := map[string][]byte{
		"cuda.edl":  driver.CUDAEDL(),
		"mat.cubin": gpu.BuildCubin("vec_add", "matmul"),
	}
	man := enclave.NewManifest("gpu", "cuda.edl", "mat.cubin", files, enclave.Resources{Memory: "16M"})
	return man, files
}

func TestCreateAndInvokeCPUEnclave(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		man, files := cpuManifest()
		callerDH, err := attest.NewDHKey([]byte("app-owner"))
		if err != nil {
			return err
		}
		res, _, err := rig.CPUOS.EM.Create(p, "math-e", man, files, callerDH.Pub)
		if err != nil {
			return err
		}
		if spm.PartitionID(res.EID>>24) != rig.CPUPart.ID {
			t.Errorf("eid %#x not minted for CPU partition", res.EID)
		}
		secret, err := callerDH.Shared(res.DHPub)
		if err != nil {
			return err
		}
		tx := attest.NewChannel(secret, "owner->enclave")
		rx := attest.NewChannel(secret, "enclave->owner")
		msg := mos.SealRequest(tx, "sum", wire.NewEncoder().U64(19).U64(23).Bytes())
		reply, err := rig.CPUOS.EM.InvokeSealed(p, res.EID, msg)
		if err != nil {
			return err
		}
		out, err := mos.OpenReply(rx, reply)
		if err != nil {
			return err
		}
		if wire.NewDecoder(out).U64() != 42 {
			t.Error("sum returned wrong result")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOnlyOwnerCanInvoke(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		man, files := cpuManifest()
		owner, _ := attest.NewDHKey([]byte("owner"))
		res, _, err := rig.CPUOS.EM.Create(p, "math-e", man, files, owner.Pub)
		if err != nil {
			return err
		}
		// A non-owner (the malicious normal OS invoking mECall with
		// arbitrary parameters, §III-B) does not know secret_dhke.
		evil := attest.NewChannel([]byte("guessed secret"), "owner->enclave")
		msg := mos.SealRequest(evil, "sum", wire.NewEncoder().U64(1).U64(2).Bytes())
		if _, err := rig.CPUOS.EM.InvokeSealed(p, res.EID, msg); err == nil {
			t.Error("non-owner mECall accepted")
		}
		// Replay of a genuine owner message is refused too.
		secret, _ := owner.Shared(res.DHPub)
		tx := attest.NewChannel(secret, "owner->enclave")
		good := mos.SealRequest(tx, "sum", wire.NewEncoder().U64(1).U64(2).Bytes())
		if _, err := rig.CPUOS.EM.InvokeSealed(p, res.EID, good); err != nil {
			t.Errorf("genuine call rejected: %v", err)
		}
		if _, err := rig.CPUOS.EM.InvokeSealed(p, res.EID, good); err == nil {
			t.Error("replayed mECall accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWrongPartitionDispatchRejected(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		// The untrusted OS dispatches a GPU manifest to the CPU mOS
		// (§III-B: "maliciously dispatch an mEnclave request to an
		// incorrect partition").
		man, files := gpuManifest()
		dh, _ := attest.NewDHKey([]byte("owner"))
		_, _, err := rig.CPUOS.EM.Create(p, "mis", man, files, dh.Pub)
		if err == nil || !strings.Contains(err.Error(), "wrong partition") {
			t.Errorf("misdispatch: err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMECallMustBeDeclaredInEDL(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		man, files := cpuManifest()
		dh, _ := attest.NewDHKey([]byte("owner"))
		_, e, err := rig.CPUOS.EM.Create(p, "math-e", man, files, dh.Pub)
		if err != nil {
			return err
		}
		// "sum" is declared; direct invocation works.
		if _, err := e.Invoke(p, "sum", wire.NewEncoder().U64(1).U64(1).Bytes()); err != nil {
			t.Errorf("declared call failed: %v", err)
		}
		// An undeclared name is rejected even though the library has
		// no such function anyway — the EDL is the contract.
		if _, err := e.Invoke(p, "backdoor", nil); err == nil || !strings.Contains(err.Error(), "EDL") {
			t.Errorf("undeclared call: err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCUDAEnclaveComputesOnGPU(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		man, files := gpuManifest()
		dh, _ := attest.NewDHKey([]byte("owner"))
		_, e, err := rig.GPUOS.EM.Create(p, "cuda-e", man, files, dh.Pub)
		if err != nil {
			return err
		}
		alloc := func(n uint64) uint64 {
			res, err := e.Invoke(p, driver.CallMemAlloc, driver.EncodeMemAlloc(n))
			if err != nil {
				t.Fatal(err)
			}
			ptr, _ := driver.DecodePtr(res)
			return ptr
		}
		a, b, c := alloc(16), alloc(16), alloc(16)
		if _, err := e.Invoke(p, driver.CallHtoD, driver.EncodeHtoD(a, gpu.PackF32([]float32{1, 2, 3, 4}))); err != nil {
			return err
		}
		if _, err := e.Invoke(p, driver.CallHtoD, driver.EncodeHtoD(b, gpu.PackF32([]float32{10, 20, 30, 40}))); err != nil {
			return err
		}
		if _, err := e.Invoke(p, driver.CallLaunch, driver.EncodeLaunch("vec_add", gpu.Dim{4, 1, 1}, a, b, c)); err != nil {
			return err
		}
		res, err := e.Invoke(p, driver.CallDtoH, driver.EncodeDtoH(c, 16))
		if err != nil {
			return err
		}
		blob, _ := driver.DecodeBlob(res)
		got := gpu.UnpackF32(blob)
		want := []float32{11, 22, 33, 44}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("c = %v, want %v", got, want)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnclaveMemoryCapEnforced(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		man, files := cpuManifest() // cap: 1M = 256 pages
		dh, _ := attest.NewDHKey([]byte("owner"))
		_, e, err := rig.CPUOS.EM.Create(p, "math-e", man, files, dh.Pub)
		if err != nil {
			return err
		}
		if _, err := e.AllocShared(p, 16); err != nil {
			t.Errorf("alloc within cap: %v", err)
		}
		if _, err := e.AllocShared(p, 300); err == nil {
			t.Error("allocation beyond manifest cap accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnclaveKillRevokesGrantsAndDies(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		man, files := cpuManifest()
		dh, _ := attest.NewDHKey([]byte("owner"))
		res, e, err := rig.CPUOS.EM.Create(p, "math-e", man, files, dh.Pub)
		if err != nil {
			return err
		}
		ipa, err := e.AllocShared(p, 1)
		if err != nil {
			return err
		}
		peerIPA, gid, err := rig.SPM.Share(rig.CPUPart, ipa, 1, rig.GPUPart)
		if err != nil {
			return err
		}
		e.TrackGrant(gid)
		e.Kill(p)
		if _, ok := rig.CPUOS.EM.Get(res.EID); ok {
			t.Error("killed enclave still resolvable")
		}
		// The peer partition traps on access (enclave-failure signal).
		v := rig.SPM.NewView(rig.GPUPart, nil)
		if err := v.Read(p, peerIPA, make([]byte, 1)); err == nil {
			t.Error("peer access after enclave kill succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLocalReportFromEM(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		man, files := cpuManifest()
		dh, _ := attest.NewDHKey([]byte("owner"))
		res, _, err := rig.CPUOS.EM.Create(p, "math-e", man, files, dh.Pub)
		if err != nil {
			return err
		}
		r, mac, err := rig.CPUOS.EM.LocalReport(res.EID, 77)
		if err != nil {
			return err
		}
		if !rig.SPM.LSK().Verify(r, mac) {
			t.Error("local report rejected")
		}
		if r.EnclaveHash != res.Hash || r.Nonce != 77 {
			t.Error("local report content wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlatformReportCoversEnclavesAndDevices(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		man, files := gpuManifest()
		dh, _ := attest.NewDHKey([]byte("owner"))
		_, _, err := rig.GPUOS.EM.Create(p, "cuda-e", man, files, dh.Pub)
		if err != nil {
			return err
		}
		sr := rig.SPM.BuildReport(rig.GPUOS.EM.Measurements(), 5)
		dt := rig.SPM.DTHash()
		err = rig.Verifier.VerifyReport(sr, attest.Expected{
			EnclaveHashes: map[string]attest.Measurement{"cuda-e": man.Measure(files)},
			DTHash:        &dt,
			Nonce:         5,
		})
		if err != nil {
			t.Errorf("full-chain verification failed: %v", err)
		}
		if _, ok := sr.Report.DeviceKeys["gpu0"]; !ok {
			t.Error("GPU device key missing from report")
		}
		if _, ok := sr.Report.DeviceKeys["npu0"]; !ok {
			t.Error("NPU device key missing from report")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartitionRestartRebuildsEnclaveManager(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		man, files := gpuManifest()
		dh, _ := attest.NewDHKey([]byte("owner"))
		res, _, err := rig.GPUOS.EM.Create(p, "cuda-e", man, files, dh.Pub)
		if err != nil {
			return err
		}
		rig.SPM.Fail(rig.GPUPart, spm.FailPanic)
		rig.SPM.AwaitReady(p, rig.GPUPart)
		p.Sleep(sim.Millisecond) // let the reinit proc run
		// The old enclave is gone; a new EM is live and can create.
		if _, ok := rig.GPUOS.EM.Get(res.EID); ok {
			t.Error("enclave survived partition restart")
		}
		if _, _, err := rig.GPUOS.EM.Create(p, "cuda-e2", man, files, dh.Pub); err != nil {
			t.Errorf("create after restart: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeartbeatKeepsWatchdogQuiet(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		rig.GPUOS.StartHeartbeat(0)
		wd := rig.SPM.EnableWatchdog()
		p.Sleep(20 * rig.Costs.HangPollEvery)
		if rig.GPUPart.Epoch() != 0 {
			t.Error("healthy heart-beating partition was restarted")
		}
		rig.K.Kill(wd)
		// Stop the heartbeat via partition teardown machinery.
		rig.SPM.Fail(rig.GPUPart, spm.FailRequested)
		rig.SPM.AwaitReady(p, rig.GPUPart)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeviceInterruptReachesDriver(t *testing.T) {
	err := testrig.Run(testrig.DefaultOptions(), func(rig *testrig.Rig, _ []testrig.ExtraGPU, p *sim.Proc) error {
		hal, ok := rig.GPUOS.HAL.(*driver.GPU)
		if !ok {
			t.Fatal("unexpected HAL type")
		}
		before := hal.IRQs()
		// The GPU raises its device-tree-assigned line (e.g. a fault or
		// completion); the driver's handler runs in the secure world.
		if err := rig.M.Bus.RaiseIRQ("gpu0"); err != nil {
			return err
		}
		if hal.IRQs() != before+1 {
			t.Errorf("driver handled %d IRQs, want %d", hal.IRQs(), before+1)
		}
		// Spoofing from the NPU's identity onto the GPU line is refused.
		gpuIRQ := 32
		if err := rig.M.GIC.Raise("npu0", gpuIRQ); err == nil {
			t.Error("cross-device interrupt spoofing accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
