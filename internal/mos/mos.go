// Package mos implements the MicroOS (§III-A): the per-partition operating
// system that runs an Enclave Manager and a Hardware Adaptation Layer. Each
// mOS manages exactly one device; its shim kernel provides the handful of
// kernel functions (memory, MMIO checks, DMA mapping) that let off-the-shelf
// style drivers run inside the partition (§IV-B).
package mos

import (
	"encoding/binary"
	"fmt"

	"cronus/internal/attest"
	"cronus/internal/enclave"
	"cronus/internal/hw"
	"cronus/internal/sim"
	"cronus/internal/spm"
)

// HAL is the Hardware Adaptation Layer contract (§IV-B): it configures,
// attests and virtualizes one device for the Enclave Manager.
type HAL interface {
	// DeviceType names the execution model this device hosts: "cpu",
	// "gpu" or "npu".
	DeviceType() string
	// Init probes and authenticates the device through the shim. It runs
	// at mOS boot and again after every partition restart.
	Init(p *sim.Proc, sh *Shim) error
	// NewModel creates a fresh execution model bound to an isolated
	// hardware context for one mEnclave.
	NewModel(p *sim.Proc) (enclave.Model, error)
	// Reset drops all hardware contexts (mOS-side bookkeeping; the
	// device itself is scrubbed by the SPM's failure path).
	Reset()
}

// MOS is one MicroOS instance.
type MOS struct {
	K     *sim.Kernel
	SPM   *spm.SPM
	Part  *spm.Partition
	Costs *sim.CostModel
	Shim  *Shim
	HAL   HAL
	EM    *EnclaveManager

	// Heartbeat publisher state (StartHeartbeat): the beat period and the
	// current incarnation's publisher proc, tracked so InjectWedge can
	// kill it and the restart hook can respawn it.
	beatEvery sim.Duration
	beatProc  *sim.Proc
}

// Boot starts an mOS in its partition: shim construction, HAL/device
// initialization, Enclave Manager setup, and installation of the restart
// hook so recovery re-initializes the stack (§IV-D step ②).
func Boot(p *sim.Proc, s *spm.SPM, part *spm.Partition, hal HAL) (*MOS, error) {
	m := &MOS{
		K:     s.K,
		SPM:   s,
		Part:  part,
		Costs: s.Costs,
		HAL:   hal,
	}
	m.Shim = &Shim{mos: m}
	m.EM = newEnclaveManager(m)
	if err := hal.Init(p, m.Shim); err != nil {
		return nil, fmt.Errorf("mos %s: HAL init: %w", part.Name, err)
	}
	part.SetRestartHook(func(epoch uint64) {
		// The partition was recovered by the SPM: the device was
		// scrubbed, every enclave in the old incarnation is gone.
		hal.Reset()
		m.EM = newEnclaveManager(m)
		s.K.Spawn(fmt.Sprintf("%s-reinit", part.Name), func(proc *sim.Proc) {
			part.Register(proc)
			defer part.Unregister(proc)
			_ = hal.Init(proc, m.Shim)
		})
		// The old incarnation's heartbeat publisher died with the
		// partition; the fresh one re-arms a new beat page.
		if m.beatEvery > 0 {
			m.startBeats()
		}
	})
	return m, nil
}

// Panic reports an unrecoverable mOS fault to the SPM, triggering the
// proceed-trap recovery for this partition.
func (m *MOS) Panic() { m.SPM.Fail(m.Part, spm.FailPanic) }

// StartHeartbeat opts the partition into watchdog supervision and spawns
// the heartbeat publisher: a registered mOS proc that allocates one
// SPM-visible page, arms it as the partition's heartbeat word, and bumps
// the word every `every` (the cost model's HangPollEvery when zero). The
// publisher is respawned with a fresh page after every partition restart.
func (m *MOS) StartHeartbeat(every sim.Duration) {
	if every <= 0 {
		every = m.Costs.HangPollEvery
	}
	m.beatEvery = every
	m.Part.WatchHangs()
	m.startBeats()
}

// startBeats spawns the heartbeat publisher for the current incarnation.
func (m *MOS) startBeats() {
	proc := m.K.Spawn(m.Part.Name+"-heartbeat", func(p *sim.Proc) {
		m.Part.Register(p)
		defer m.Part.Unregister(p)
		ipa, err := m.Shim.AllocPages(p, 1)
		if err != nil {
			return
		}
		m.Part.ArmHeartbeat(ipa)
		view := m.Shim.View()
		var word [8]byte
		for n := uint64(1); ; n++ {
			p.Sleep(m.beatEvery)
			binary.LittleEndian.PutUint64(word[:], n)
			// A write failure means the incarnation died under us; the
			// replacement publisher belongs to the restart hook.
			if err := view.Write(p, ipa, word[:]); err != nil {
				return
			}
		}
	})
	m.beatProc = proc
}

// InjectWedge models a wedged mOS for the chaos harness: the heartbeat
// publisher is killed while the partition otherwise stays up, so the only
// way the SPM can learn of the hang is the watchdog deadline. Reports
// whether a live publisher was wedged (false when supervision is off or
// the partition is not ready).
func (m *MOS) InjectWedge() bool {
	if m.beatProc == nil || m.beatProc.Dead() || m.beatProc.Killed() {
		return false
	}
	if m.Part.State() != spm.PartReady {
		return false
	}
	m.Part.Unregister(m.beatProc)
	m.K.Kill(m.beatProc)
	m.beatProc = nil
	return true
}

// Shim is the mOS's shim kernel: the LibOS-style layer that gives drivers
// the standard kernel functions (§IV-B: "The shim runtime works as if a
// LibOS for the driver").
type Shim struct {
	mos *MOS
}

// MOS returns the owning MicroOS.
func (sh *Shim) MOS() *MOS { return sh.mos }

// DeviceName returns the device tree node this partition owns.
func (sh *Shim) DeviceName() string { return sh.mos.Part.Device }

// Ioremap validates secure-world access to the partition's device MMIO
// (TZPC-checked) and charges the mapping cost. Drivers call it at probe.
func (sh *Shim) Ioremap(p *sim.Proc) error {
	dev := sh.mos.Part.Device
	if dev == "" {
		return fmt.Errorf("mos: partition %q has no device to ioremap", sh.mos.Part.Name)
	}
	if err := sh.mos.SPM.M.Bus.CheckMMIO(hw.SecureWorld, dev); err != nil {
		return err
	}
	p.Sleep(sh.mos.Costs.MapPage)
	return nil
}

// MMIORead models one device register read (TZPC-checked each access).
func (sh *Shim) MMIORead(p *sim.Proc) error {
	if err := sh.mos.SPM.M.Bus.CheckMMIO(hw.SecureWorld, sh.mos.Part.Device); err != nil {
		return err
	}
	p.Sleep(sh.mos.Costs.DeviceMMIO)
	return nil
}

// RequestIRQ registers a secure-world interrupt handler for the
// partition's device line (the driver's request_irq).
func (sh *Shim) RequestIRQ(handler func()) error {
	node, ok := sh.mos.SPM.M.DT.Find(sh.mos.Part.Device)
	if !ok {
		return fmt.Errorf("mos: partition %q has no device for IRQs", sh.mos.Part.Name)
	}
	return sh.mos.SPM.M.GIC.Register(node.IRQ, hw.SecureWorld, handler)
}

// AllocPages allocates secure pages to the partition (kmalloc-at-page
// granularity for drivers and the Enclave Manager).
func (sh *Shim) AllocPages(p *sim.Proc, n int) (uint64, error) {
	ipa, err := sh.mos.SPM.AllocMem(sh.mos.Part, n)
	if err != nil {
		return 0, err
	}
	p.Sleep(sim.Duration(n) * sh.mos.Costs.MapPage)
	return ipa, nil
}

// View returns an mOS-level memory view (IPA addressing).
func (sh *Shim) View() *spm.View {
	return sh.mos.SPM.NewView(sh.mos.Part, nil)
}

// RegisterDeviceKey forwards verified device authenticity material to the
// SPM for inclusion in attestation reports.
func (sh *Shim) RegisterDeviceKey(vendor string, pub attest.PublicKey, cert []byte) {
	sh.mos.SPM.RegisterDeviceKey(sh.mos.Part.Device, vendor, pub, cert)
}
