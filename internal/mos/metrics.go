package mos

import "cronus/internal/metrics"

// mECall dispatch and enclave lifecycle accounting. The S-EL2 context-switch
// counter lives here because the sealed path is where the switches are paid:
// entering an mEnclave from outside its partition crosses S-EL2 twice (in and
// out), whereas the streamed path rides the resident executor thread.
var (
	mSealedCalls   = metrics.Default.Counter("mos.mecalls.sealed")
	mStreamedCalls = metrics.Default.Counter("mos.mecalls.streamed")
	mEnclavesMade  = metrics.Default.Counter("mos.enclaves.created")
	mEnclavesDead  = metrics.Default.Counter("mos.enclaves.killed")
	mCtxSwitchS2   = metrics.Default.Counter("spm.context_switches_s2")
)
