package chaos

import (
	"errors"
	"fmt"
	"math"

	"cronus/internal/core"
	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/srpc"
	"cronus/internal/tvm"
)

// serveConfig is the serving-plane load a chaos seed runs against:
// device-affinity placement (so fault blast radii are attributable to
// tenants), dynamic batching, per-request records kept for the conservation
// audit, and the watchdog/retry layer enabled so hangs and corruption are
// recoverable.
func serveConfig(seed int64, o Options) serve.Config {
	cfg := serve.Config{
		Seed:           seed,
		Window:         o.Window,
		Policy:         serve.DeviceAffinity,
		MaxBatch:       4,
		BatchWindow:    50 * sim.Microsecond,
		GPUPartitions:  o.Partitions,
		GPUFlopsPerNs:  400,
		KeepRequests:   true,
		RequestTimeout: 500 * sim.Microsecond,
		MaxRetries:     3,
		RetryBackoff:   100 * sim.Microsecond,
	}
	for ti := 0; ti < o.Tenants; ti++ {
		cfg.Tenants = append(cfg.Tenants, serve.TenantSpec{
			Name:     fmt.Sprintf("tenant-%d", ti),
			Arrival:  serve.Poisson,
			Rate:     o.Rate,
			QueueCap: 512,
			Mix:      []serve.WorkClass{{Name: "resnet18", Graph: tvm.ResNet18()}},
		})
	}
	return cfg
}

// crashTargets returns the distinct partition indices of the schedule's
// crash faults, in first-occurrence order.
func (s *Schedule) crashTargets() []int {
	var parts []int
	seen := make(map[int]bool)
	for _, f := range s.Faults {
		if f.Kind == KindCrash && !seen[f.Partition] {
			seen[f.Partition] = true
			parts = append(parts, f.Partition)
		}
	}
	return parts
}

// victimTenants marks every tenant a schedule can touch: tenants pinned to
// a crashed/hung/attest-vetoed partition (device-affinity: tenant i runs on
// partition i mod pool) and tenants whose stream a corruption targets.
// Everyone else is a survivor and must be indistinguishable from baseline.
func (s *Schedule) victimTenants(o Options) map[int]bool {
	targetPart := make(map[int]bool)
	victims := make(map[int]bool)
	for _, f := range s.Faults {
		switch f.Kind {
		case KindCrash, KindDeviceHang, KindAttestFail:
			targetPart[f.Partition] = true
		case KindRingCorrupt:
			victims[f.Tenant] = true
		}
	}
	for ti := 0; ti < o.Tenants; ti++ {
		if targetPart[ti%o.Partitions] {
			victims[ti] = true
		}
	}
	return victims
}

// execute runs one serving window on a fresh platform. With inject=true the
// schedule is armed before Serve and audited after; the baseline run still
// plants the probes so the two timelines stay identical until the first
// fault fires.
func execute(sched *Schedule, o Options, inject bool) (res *serve.Result, fired []bool, probeLines, probeViol []string, err error) {
	cfg := serveConfig(sched.Seed, o)
	pcfg := core.DefaultConfig()
	pcfg.GPUs = o.Partitions
	pcfg.NPUs = 0
	runErr := core.Run(pcfg, func(pl *core.Platform, p *sim.Proc) error {
		srv, err := serve.New(p, pl, cfg)
		if err != nil {
			return err
		}
		ps, err := newProbeSet(p, pl, sched.crashTargets())
		if err != nil {
			return err
		}
		var inj *Injector
		if inject {
			inj = NewInjector(pl, sched)
			inj.Arm(p)
		}
		r, err := srv.Serve(p)
		if err != nil {
			return err
		}
		res = r
		if inject {
			inj.Disarm()
			fired = inj.Fired()
			probeLines, probeViol = ps.check(p)
		}
		return nil
	})
	return res, fired, probeLines, probeViol, runErr
}

// RunOne compiles the seed's schedule and executes it: a fault-free
// baseline, then the faulted run, then every invariant check. The returned
// report is fully deterministic — same (seed, Options), byte-identical
// Report().
func RunOne(seed int64, o Options) (*RunReport, error) {
	o.defaults()
	mRuns.Inc()
	rr := &RunReport{Seed: seed, Opts: o, Schedule: Compile(seed, o)}
	var err error
	rr.Baseline, _, _, _, err = execute(rr.Schedule, o, false)
	if err != nil {
		return nil, fmt.Errorf("chaos: baseline run (seed %d): %w", seed, err)
	}
	var probeViol []string
	rr.Faulted, rr.Fired, rr.ProbeLines, probeViol, err = execute(rr.Schedule, o, true)
	if err != nil {
		return nil, fmt.Errorf("chaos: faulted run (seed %d): %w", seed, err)
	}
	rr.Violations = append(rr.checkInvariants(), probeViol...)
	mViolations.Add(uint64(len(rr.Violations)))
	return rr, nil
}

// checkInvariants audits one finished seed. Every violated invariant
// becomes one deterministic line.
func (rr *RunReport) checkInvariants() []string {
	var v []string
	v = append(v, conservation("baseline", rr.Baseline)...)
	v = append(v, conservation("faulted", rr.Faulted)...)
	// Exactly-once per request: everything admitted completes exactly once
	// (conservation covers the counts; here we catch lost records and
	// untyped failures).
	for _, r := range rr.Faulted.Requests {
		if r.Done == 0 {
			v = append(v, fmt.Sprintf("request %d (%s) admitted but never completed", r.ID, r.Tenant))
			continue
		}
		if r.Err != nil {
			var te *serve.TimeoutError
			if !errors.As(r.Err, &te) && !errors.Is(r.Err, srpc.ErrRingCorrupt) {
				v = append(v, fmt.Sprintf("request %d (%s) failed with untyped error %q",
					r.ID, r.Tenant, r.Err))
			}
		}
	}
	// Survivors must be indistinguishable from baseline: identical
	// accounting, p95 within tolerance.
	victims := rr.Schedule.victimTenants(rr.Opts)
	for ti := range rr.Faulted.Tenants {
		if victims[ti] || ti >= len(rr.Baseline.Tenants) {
			continue
		}
		ft, bt := &rr.Faulted.Tenants[ti], &rr.Baseline.Tenants[ti]
		if ft.Offered != bt.Offered || ft.Completed != bt.Completed ||
			ft.Shed != bt.Shed || ft.Failed != bt.Failed {
			v = append(v, fmt.Sprintf(
				"survivor %s: accounting drifted from baseline (offered %d/%d completed %d/%d shed %d/%d failed %d/%d)",
				ft.Name, ft.Offered, bt.Offered, ft.Completed, bt.Completed,
				ft.Shed, bt.Shed, ft.Failed, bt.Failed))
		}
		tol := math.Max(rr.Opts.RelTol*bt.P95NS, float64(rr.Opts.AbsTol))
		if math.Abs(ft.P95NS-bt.P95NS) > tol {
			v = append(v, fmt.Sprintf("survivor %s: p95 %s drifted beyond tolerance of baseline %s",
				ft.Name, sim.Duration(ft.P95NS), sim.Duration(bt.P95NS)))
		}
	}
	return v
}

// conservation checks the flow balance of one run: offered = admitted +
// shed, admitted = completed + failed, and zero duplicate completions.
func conservation(label string, res *serve.Result) []string {
	var v []string
	for _, t := range res.Tenants {
		if t.Offered != t.Admitted+t.Shed {
			v = append(v, fmt.Sprintf("%s %s: offered %d != admitted %d + shed %d",
				label, t.Name, t.Offered, t.Admitted, t.Shed))
		}
		if t.Admitted != t.Completed+t.Failed {
			v = append(v, fmt.Sprintf("%s %s: admitted %d != completed %d + failed %d",
				label, t.Name, t.Admitted, t.Completed, t.Failed))
		}
		if t.Duplicates != 0 {
			v = append(v, fmt.Sprintf("%s %s: %d duplicate completions", label, t.Name, t.Duplicates))
		}
	}
	return v
}

// RunCampaign soaks n consecutive seeds starting at baseSeed. It returns an
// error only when a run cannot execute at all; invariant violations are
// collected in the report.
func RunCampaign(baseSeed int64, n int, o Options) (*CampaignReport, error) {
	cr := &CampaignReport{BaseSeed: baseSeed, Opts: o}
	for i := 0; i < n; i++ {
		rr, err := RunOne(baseSeed+int64(i), o)
		if err != nil {
			return nil, err
		}
		cr.Runs = append(cr.Runs, rr)
	}
	return cr, nil
}
