package chaos

import (
	"errors"
	"fmt"
	"math"

	"cronus/internal/core"
	"cronus/internal/otrace"
	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/slo"
	"cronus/internal/spm"
	"cronus/internal/srpc"
	"cronus/internal/trace"
	"cronus/internal/tvm"
)

// quarantineAfter is the crash-loop policy shared by the fault compiler and
// the supervision config: Compile sizes a KindCrashLoop fault to exactly
// this many crashes, so a fired crash-loop always engages quarantine.
const quarantineAfter = 3

// chaosSupervision is the health-supervision policy every chaos run enables
// — baseline and faulted alike, so the two timelines stay byte-identical up
// to the first fault. A 200µs heartbeat with a 3-beat deadline bounds hang
// detection at 1ms (spm.SPM.HangDetectionBound); quarantineAfter failures
// inside a 1s window quarantine the partition.
func chaosSupervision() *spm.Supervision {
	return &spm.Supervision{
		HeartbeatEvery:  200 * sim.Microsecond,
		MissedBeats:     3,
		RestartBackoff:  500 * sim.Microsecond,
		MaxBackoff:      4 * sim.Millisecond,
		QuarantineAfter: quarantineAfter,
		FailureWindow:   sim.Second,
	}
}

// serveConfig is the serving-plane load a chaos seed runs against:
// device-affinity placement (so fault blast radii are attributable to
// tenants), dynamic batching, per-request records kept for the conservation
// audit, and the watchdog/retry/supervision layers enabled so hangs,
// corruption, and crash-loops are recoverable or contained.
func serveConfig(seed int64, o Options) serve.Config {
	cfg := serve.Config{
		Seed:           seed,
		Window:         o.Window,
		Policy:         serve.DeviceAffinity,
		MaxBatch:       4,
		BatchWindow:    50 * sim.Microsecond,
		GPUPartitions:  o.Partitions,
		GPUFlopsPerNs:  400,
		KeepRequests:   true,
		RequestTimeout: 500 * sim.Microsecond,
		MaxRetries:     3,
		RetryBackoff:   100 * sim.Microsecond,
		Supervision:    chaosSupervision(),
		HangReportAfter: 2,
		// Causal tracing and the SLO engine run on every chaos seed so
		// their invariants soak with the fault mix: per-request stage
		// attributions must stay conservative and SLO accounting must
		// balance under every injected fault. The latency target mirrors
		// the watchdog bound; admission coupling stays off so the
		// baseline-vs-faulted survivor invariants are untouched.
		Trace: true,
		SLO: &slo.Objective{
			LatencyTarget: 500 * sim.Microsecond,
			ErrorBudget:   0.05,
			Window:        o.Window,
		},
	}
	for ti := 0; ti < o.Tenants; ti++ {
		cfg.Tenants = append(cfg.Tenants, serve.TenantSpec{
			Name:     fmt.Sprintf("tenant-%d", ti),
			Arrival:  serve.Poisson,
			Rate:     o.Rate,
			QueueCap: 512,
			Mix:      []serve.WorkClass{{Name: "resnet18", Graph: tvm.ResNet18()}},
		})
	}
	return cfg
}

// crashTargets returns the distinct partition indices of the schedule's
// crash and crash-loop faults, in first-occurrence order — the partitions
// whose epochs will roll and whose memory the probes must audit.
func (s *Schedule) crashTargets() []int {
	var parts []int
	seen := make(map[int]bool)
	for _, f := range s.Faults {
		if (f.Kind == KindCrash || f.Kind == KindCrashLoop) && !seen[f.Partition] {
			seen[f.Partition] = true
			parts = append(parts, f.Partition)
		}
	}
	return parts
}

// victimTenants marks every tenant a schedule can touch: tenants pinned to
// a crashed/hung/attest-vetoed partition (device-affinity: tenant i runs on
// partition i mod pool) and tenants whose stream a corruption targets.
// Everyone else is a survivor and must be indistinguishable from baseline.
func (s *Schedule) victimTenants(o Options) map[int]bool {
	targetPart := make(map[int]bool)
	victims := make(map[int]bool)
	for _, f := range s.Faults {
		switch f.Kind {
		case KindCrash, KindDeviceHang, KindAttestFail, KindPersistentHang, KindCrashLoop:
			targetPart[f.Partition] = true
		case KindRingCorrupt:
			victims[f.Tenant] = true
		}
	}
	for ti := 0; ti < o.Tenants; ti++ {
		if targetPart[ti%o.Partitions] {
			victims[ti] = true
		}
	}
	return victims
}

// runArtifacts bundles everything one serving window produces: the serving
// result plus (faulted runs only) the fired flags, hang-injection instants,
// post-drain partition states, and the probe audit.
type runArtifacts struct {
	res        *serve.Result
	fired      []bool
	injectAt   []sim.Time
	partStates []string
	probeLines []string
	probeViol  []string
	// recorder is the flight recorder of a traced faulted run (nil
	// otherwise); its rings stay readable after the run for violation
	// dumps.
	recorder *otrace.FlightRecorder
}

// execute runs one serving window on a fresh platform. With inject=true the
// schedule is armed before Serve and audited after; the baseline run still
// plants the probes so the two timelines stay identical until the first
// fault fires.
func execute(sched *Schedule, o Options, inject bool) (*runArtifacts, error) {
	cfg := serveConfig(sched.Seed, o)
	pcfg := core.DefaultConfig()
	pcfg.GPUs = o.Partitions
	pcfg.NPUs = 0
	art := &runArtifacts{}
	// A traced faulted run arms the global collector and the flight
	// recorder for its duration only: the baseline stays untraced (span
	// recording costs no virtual time, so the timelines are identical
	// either way — this just keeps baseline runs cheap).
	if inject && o.Trace {
		art.recorder = otrace.NewFlightRecorder(0)
		trace.Default.Enable()
		art.recorder.Attach(trace.Default)
		defer func() {
			art.recorder.Detach(trace.Default)
			trace.Default.Disable()
		}()
	}
	runErr := core.Run(pcfg, func(pl *core.Platform, p *sim.Proc) error {
		srv, err := serve.New(p, pl, cfg)
		if err != nil {
			return err
		}
		ps, err := newProbeSet(p, pl, sched.crashTargets())
		if err != nil {
			return err
		}
		var inj *Injector
		if inject {
			inj = NewInjector(pl, sched)
			inj.Arm(p)
		}
		r, err := srv.Serve(p)
		if err != nil {
			return err
		}
		art.res = r
		if inject {
			inj.Disarm()
			art.fired = inj.Fired()
			art.injectAt = inj.InjectTimes()
			art.probeLines, art.probeViol = ps.check(p)
			// Partition states are snapshotted after the probe audit: the
			// probes' AwaitReady waits ride out in-flight recoveries, so a
			// crash-loop decided at Fail time has actually reached
			// PartQuarantined by the time the invariant reads the state.
			for _, g := range pl.GPUs {
				art.partStates = append(art.partStates, g.Part.State().String())
			}
		}
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	return art, nil
}

// RunOne compiles the seed's schedule and executes it: a fault-free
// baseline, then the faulted run, then every invariant check. The returned
// report is fully deterministic — same (seed, Options), byte-identical
// Report().
func RunOne(seed int64, o Options) (*RunReport, error) {
	o.defaults()
	mRuns.Inc()
	rr := &RunReport{Seed: seed, Opts: o, Schedule: Compile(seed, o)}
	base, err := execute(rr.Schedule, o, false)
	if err != nil {
		return nil, fmt.Errorf("chaos: baseline run (seed %d): %w", seed, err)
	}
	rr.Baseline = base.res
	art, err := execute(rr.Schedule, o, true)
	if err != nil {
		return nil, fmt.Errorf("chaos: faulted run (seed %d): %w", seed, err)
	}
	rr.Faulted = art.res
	rr.Fired = art.fired
	rr.InjectAt = art.injectAt
	rr.PartStates = art.partStates
	rr.ProbeLines = art.probeLines
	rr.Violations = append(rr.checkInvariants(), art.probeViol...)
	mViolations.Add(uint64(len(rr.Violations)))
	if art.recorder != nil {
		// Quarantine auto-dumps first (capture order), then — only when an
		// invariant failed — every ring, so a FAIL report carries each
		// partition's last moments.
		for _, d := range art.recorder.Dumps() {
			rr.FlightDumps = append(rr.FlightDumps, d.String())
		}
		if len(rr.Violations) > 0 {
			for _, d := range art.recorder.DumpAll("invariant-violation", rr.Faulted.DrainedAt) {
				rr.FlightDumps = append(rr.FlightDumps, d.String())
			}
		}
	}
	return rr, nil
}

// checkInvariants audits one finished seed. Every violated invariant
// becomes one deterministic line.
func (rr *RunReport) checkInvariants() []string {
	var v []string
	v = append(v, conservation("baseline", rr.Baseline)...)
	v = append(v, conservation("faulted", rr.Faulted)...)
	// Exactly-once per request: everything admitted completes exactly once
	// (conservation covers the counts; here we catch lost records and
	// untyped failures).
	for _, r := range rr.Faulted.Requests {
		if r.Done == 0 {
			v = append(v, fmt.Sprintf("request %d (%s) admitted but never completed", r.ID, r.Tenant))
			continue
		}
		if r.Err != nil {
			var te *serve.TimeoutError
			var pq *serve.PoolQuarantinedError
			if !errors.As(r.Err, &te) && !errors.As(r.Err, &pq) &&
				!errors.Is(r.Err, srpc.ErrRingCorrupt) {
				v = append(v, fmt.Sprintf("request %d (%s) failed with untyped error %q",
					r.ID, r.Tenant, r.Err))
			}
		}
	}
	v = append(v, rr.checkSupervision()...)
	v = append(v, rr.checkObservability()...)
	// Survivors must be indistinguishable from baseline: identical
	// accounting, p95 within tolerance.
	victims := rr.Schedule.victimTenants(rr.Opts)
	for ti := range rr.Faulted.Tenants {
		if victims[ti] || ti >= len(rr.Baseline.Tenants) {
			continue
		}
		ft, bt := &rr.Faulted.Tenants[ti], &rr.Baseline.Tenants[ti]
		if ft.Offered != bt.Offered || ft.Completed != bt.Completed ||
			ft.Shed != bt.Shed || ft.Failed != bt.Failed {
			v = append(v, fmt.Sprintf(
				"survivor %s: accounting drifted from baseline (offered %d/%d completed %d/%d shed %d/%d failed %d/%d)",
				ft.Name, ft.Offered, bt.Offered, ft.Completed, bt.Completed,
				ft.Shed, bt.Shed, ft.Failed, bt.Failed))
		}
		tol := math.Max(rr.Opts.RelTol*bt.P95NS, float64(rr.Opts.AbsTol))
		if math.Abs(ft.P95NS-bt.P95NS) > tol {
			v = append(v, fmt.Sprintf("survivor %s: p95 %s drifted beyond tolerance of baseline %s",
				ft.Name, sim.Duration(ft.P95NS), sim.Duration(bt.P95NS)))
		}
		// Survivor SLO accounting must match baseline exactly — the burn
		// rate of a tenant untouched by the fault must not move.
		if ti < len(rr.Faulted.SLOs) && ti < len(rr.Baseline.SLOs) {
			fs, bs := &rr.Faulted.SLOs[ti], &rr.Baseline.SLOs[ti]
			if fs.Good != bs.Good || fs.Bad != bs.Bad {
				v = append(v, fmt.Sprintf(
					"survivor %s: SLO accounting drifted from baseline (good %d/%d bad %d/%d)",
					ft.Name, fs.Good, bs.Good, fs.Bad, bs.Bad))
			}
		}
	}
	return v
}

// checkObservability audits the observability layer's own invariants on
// both runs: every per-request causal trace must be conservative (stage
// segments contiguous over [arrived, done], so attributions sum to the
// latency exactly), and per-tenant SLO accounting must balance against the
// serving counters (every completion scored exactly once, good+bad =
// completed+failed).
func (rr *RunReport) checkObservability() []string {
	var v []string
	for _, run := range []struct {
		label string
		res   *serve.Result
	}{{"baseline", rr.Baseline}, {"faulted", rr.Faulted}} {
		for i := range run.res.Traces {
			if err := run.res.Traces[i].Validate(); err != nil {
				v = append(v, fmt.Sprintf("%s: non-conservative attribution: %v", run.label, err))
			}
		}
		for i := range run.res.SLOs {
			s := &run.res.SLOs[i]
			t := run.res.Tenant(s.Name)
			if t == nil {
				v = append(v, fmt.Sprintf("%s: SLO row for unknown tenant %s", run.label, s.Name))
				continue
			}
			if s.Good+s.Bad != t.Completed+t.Failed {
				v = append(v, fmt.Sprintf(
					"%s %s: SLO outcomes %d (good %d + bad %d) != completions %d (completed %d + failed %d)",
					run.label, s.Name, s.Good+s.Bad, s.Good, s.Bad,
					t.Completed+t.Failed, t.Completed, t.Failed))
			}
		}
	}
	return v
}

// checkSupervision audits the health-supervision invariants: a fired
// persistent hang must be detected by the watchdog within the configured
// bound (heartbeat period × (missed beats + 2), mirroring
// spm.SPM.HangDetectionBound), and a fired crash-loop must leave its
// partition quarantined after the drain.
func (rr *RunReport) checkSupervision() []string {
	var v []string
	sv := chaosSupervision()
	bound := sv.HeartbeatEvery * sim.Duration(sv.MissedBeats+2)
	for i, f := range rr.Schedule.Faults {
		if !rr.Fired[i] {
			continue
		}
		switch f.Kind {
		case KindPersistentHang:
			injected := rr.InjectAt[i]
			part := fmt.Sprintf("gpu-part%d", f.Partition)
			detected, reason := firstFailureAfter(rr.Faulted, part, injected)
			switch {
			case detected == 0:
				v = append(v, fmt.Sprintf("persistent hang on %s injected at %s never detected",
					part, sim.Duration(injected)))
			case reason == spm.FailHang && sim.Duration(detected-injected) > bound:
				v = append(v, fmt.Sprintf(
					"persistent hang on %s detected at %s, %s after injection (bound %s)",
					part, sim.Duration(detected), sim.Duration(detected-injected), bound))
			}
			// A non-hang failure arriving first (an overlapping crash on the
			// same partition) restarts the mOS and re-arms its heartbeat,
			// clearing the wedge — detection by proxy, not a violation.
		case KindCrashLoop:
			if st := rr.PartStates[f.Partition]; st != "quarantined" {
				v = append(v, fmt.Sprintf(
					"crash-loop on gpu-part%d fired but partition ended %q, not quarantined",
					f.Partition, st))
			}
		}
	}
	return v
}

// firstFailureAfter finds the first failure of the named partition at or
// after t, returning its instant and reason (zero instant when none).
func firstFailureAfter(res *serve.Result, part string, t sim.Time) (sim.Time, spm.FailReason) {
	for _, f := range res.Failures {
		if f.Partition == part && f.FailedAt >= t {
			return f.FailedAt, f.Reason
		}
	}
	return 0, 0
}

// conservation checks the flow balance of one run: offered = admitted +
// shed, admitted = completed + failed, and zero duplicate completions.
func conservation(label string, res *serve.Result) []string {
	var v []string
	for _, t := range res.Tenants {
		if t.Offered != t.Admitted+t.Shed {
			v = append(v, fmt.Sprintf("%s %s: offered %d != admitted %d + shed %d",
				label, t.Name, t.Offered, t.Admitted, t.Shed))
		}
		if t.Admitted != t.Completed+t.Failed {
			v = append(v, fmt.Sprintf("%s %s: admitted %d != completed %d + failed %d",
				label, t.Name, t.Admitted, t.Completed, t.Failed))
		}
		if t.Duplicates != 0 {
			v = append(v, fmt.Sprintf("%s %s: %d duplicate completions", label, t.Name, t.Duplicates))
		}
	}
	return v
}

// RunCampaign soaks n consecutive seeds starting at baseSeed. It returns an
// error only when a run cannot execute at all; invariant violations are
// collected in the report.
func RunCampaign(baseSeed int64, n int, o Options) (*CampaignReport, error) {
	cr := &CampaignReport{BaseSeed: baseSeed, Opts: o}
	for i := 0; i < n; i++ {
		rr, err := RunOne(baseSeed+int64(i), o)
		if err != nil {
			return nil, err
		}
		cr.Runs = append(cr.Runs, rr)
	}
	return cr, nil
}
