package chaos

import (
	"errors"
	"fmt"

	"cronus/internal/core"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/srpc"
)

// Injector arms one compiled Schedule on one booted platform. Arm installs
// every hook; Disarm removes the package-global ones (the sRPC call hook and
// the SPM attestation veto), so at most one Injector may be armed per
// process at a time — the one-campaign-at-a-time rule shared with
// srpc.SetCallHook.
type Injector struct {
	pl    *core.Platform
	sched *Schedule
	fired []bool
	// injectAt records, per fault index, the virtual instant a
	// persistent-hang wedge actually landed (zero otherwise) — the origin
	// of the watchdog detection-latency assertion.
	injectAt []sim.Time
}

// attestOutage is the per-fault countdown of an armed KindAttestFail.
type attestOutage struct {
	part      *spm.Partition
	epoch0    uint64 // partition epoch when armed; veto only after a restart
	remaining int
	idx       int // fault index, for fired bookkeeping
}

// NewInjector binds a schedule to a platform without arming anything.
func NewInjector(pl *core.Platform, sched *Schedule) *Injector {
	return &Injector{
		pl:       pl,
		sched:    sched,
		fired:    make([]bool, len(sched.Faults)),
		injectAt: make([]sim.Time, len(sched.Faults)),
	}
}

// Arm installs every fault in the schedule: crash timer procs, the shared
// sRPC call hook for ring corruptions, one-shot launch hangs, and the SPM
// attestation veto. Call it after the serving plane (and any probes) are
// built, immediately before Serve, so trigger ordinals count from the same
// origin on every run.
func (in *Injector) Arm(p *sim.Proc) {
	var outages []*attestOutage
	for i, f := range in.sched.Faults {
		i, f := i, f
		mFaultsArmed.Inc()
		switch f.Kind {
		case KindCrash:
			part := in.pl.GPUs[f.Partition].Part
			in.pl.K.Spawn(fmt.Sprintf("chaos-crash-%d", i), func(cp *sim.Proc) {
				cp.Sleep(f.After)
				// Fail returns nil when the partition is already down
				// (e.g. a second crash landing inside the first
				// recovery); only a real trap counts as fired.
				if rec := in.pl.SPM.Fail(part, spm.FailPanic); rec != nil {
					in.hit(i)
				}
			})
		case KindDeviceHang:
			in.pl.GPUs[f.Partition].Dev.ArmLaunchHang(f.Launch)
		case KindPersistentHang:
			os := in.pl.GPUs[f.Partition].OS
			in.pl.K.Spawn(fmt.Sprintf("chaos-wedge-%d", i), func(cp *sim.Proc) {
				cp.Sleep(f.After)
				// The wedge only lands on a live publisher of a ready
				// partition; anything else (supervision off, partition
				// mid-recovery) leaves the fault dormant.
				if os.InjectWedge() {
					in.injectAt[i] = cp.Now()
					in.hit(i)
				}
			})
		case KindCrashLoop:
			part := in.pl.GPUs[f.Partition].Part
			in.pl.K.Spawn(fmt.Sprintf("chaos-crashloop-%d", i), func(cp *sim.Proc) {
				cp.Sleep(f.After)
				// Crash, wait out the recovery, crash again — each
				// successful Fail is one sliding-window entry. The loop
				// ends early once the partition is quarantined (by us or
				// by overlapping faults).
				for n := 0; n < f.Crashes; {
					if rec := in.pl.SPM.Fail(part, spm.FailPanic); rec != nil {
						in.hit(i)
						n++
						if rec.Quarantined {
							return
						}
					}
					if err := in.pl.SPM.AwaitReady(cp, part); err != nil {
						return
					}
				}
			})
		case KindAttestFail:
			part := in.pl.GPUs[f.Partition].Part
			outages = append(outages, &attestOutage{
				part: part, epoch0: part.Epoch(), remaining: f.Fails, idx: i,
			})
		}
	}
	if in.sched.has(KindRingCorrupt) {
		srpc.SetCallHook(func(hp *sim.Proc, c *srpc.Client, n uint64) {
			for i, f := range in.sched.Faults {
				if f.Kind == KindRingCorrupt && !in.fired[i] &&
					c.StreamID() == f.Stream && n == f.AfterCalls {
					in.hit(i)
					_ = c.InjectRecordCorruption(hp, f.Mask)
				}
			}
		})
	}
	if len(outages) > 0 {
		in.pl.SPM.SetAttestFault(func(part *spm.Partition) error {
			for _, o := range outages {
				if o.part != part || part.Epoch() == o.epoch0 || o.remaining <= 0 {
					continue
				}
				o.remaining--
				in.hit(o.idx)
				return errors.New("provisioning infrastructure unavailable (chaos-injected)")
			}
			return nil
		})
	}
}

// Disarm removes the package-global hooks and settles the fired flags of
// launch-hang faults (a hang fired iff the device's launch counter passed
// its ordinal). Call it once Serve has returned, before any probe checks —
// probes reconnect to restarted partitions and must not be vetoed.
func (in *Injector) Disarm() {
	srpc.SetCallHook(nil)
	in.pl.SPM.SetAttestFault(nil)
	for i, f := range in.sched.Faults {
		if f.Kind == KindDeviceHang && !in.fired[i] &&
			in.pl.GPUs[f.Partition].Dev.Launches() >= f.Launch {
			in.hit(i)
		}
	}
}

// hit marks fault i as fired exactly once.
func (in *Injector) hit(i int) {
	if !in.fired[i] {
		in.fired[i] = true
		mFaultsFired.Inc()
	}
}

// Fired returns the per-fault fired flags, index-aligned with
// Schedule.Faults. Dormant faults (triggers the run never reached) are
// normal for ordinal-based triggers.
func (in *Injector) Fired() []bool { return in.fired }

// InjectTimes returns the per-fault injection instants (persistent-hang
// wedges only; zero elsewhere), index-aligned with Schedule.Faults.
func (in *Injector) InjectTimes() []sim.Time { return in.injectAt }
