package chaos

import (
	"strings"
	"testing"

	"cronus/internal/spm"
)

// TestScheduleDeterministic pins Compile to its seed: same (seed, Options),
// same schedule; different seeds, (almost surely) different schedules.
func TestScheduleDeterministic(t *testing.T) {
	a := Compile(42, Options{})
	b := Compile(42, Options{})
	if a.String() != b.String() {
		t.Fatalf("same seed compiled different schedules:\n%s\nvs\n%s", a, b)
	}
	c := Compile(43, Options{})
	if a.String() == c.String() {
		t.Errorf("seeds 42 and 43 compiled identical schedules:\n%s", a)
	}
	if len(a.Faults) < 3 {
		t.Errorf("schedule has %d faults, want >= 3", len(a.Faults))
	}
}

// TestDeterministicReplay is the replay contract: running the same seed
// twice must produce byte-identical reports — schedules, fired flags,
// serving tables, probe lines and verdicts all derive from virtual time and
// the seed alone.
func TestDeterministicReplay(t *testing.T) {
	a, err := RunOne(7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Report(), b.Report()
	if ra != rb {
		t.Fatalf("same-seed reports differ:\n--- first ---\n%s\n--- second ---\n%s", ra, rb)
	}
	if !a.Passed() {
		t.Errorf("seed 7 violated invariants:\n%s", ra)
	}
}

// TestCampaignInvariants is the soak: 25 consecutive seeds (5 under -short),
// every invariant upheld on each — conservation with zero duplicates,
// survivors within tolerance of baseline, crashed partitions unreadable.
func TestCampaignInvariants(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 5
	}
	cr, err := RunCampaign(1, n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Passed() {
		t.Fatalf("campaign violations:\n%s", cr.Report())
	}
	fired := 0
	for _, rr := range cr.Runs {
		fired += rr.FiredCount()
	}
	if fired == 0 {
		t.Fatalf("no fault fired across %d seeds — the harness is injecting nothing:\n%s", n, cr.Report())
	}
}

// TestHangRecoveryExactlyOnce drives hang-only schedules: every fired hang
// must be absorbed by the watchdog (a timeout, then a successful retry) with
// zero lost and zero duplicated requests.
func TestHangRecoveryExactlyOnce(t *testing.T) {
	o := Options{Kinds: []Kind{KindDeviceHang}, Faults: 2}
	rr, err := RunOne(3, o)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Passed() {
		t.Fatalf("hang run violated invariants:\n%s", rr.Report())
	}
	if rr.FiredCount() == 0 {
		t.Fatalf("no hang fired:\n%s", rr.Report())
	}
	var timeouts, retried, failed, dups uint64
	for _, tr := range rr.Faulted.Tenants {
		timeouts += tr.Timeouts
		retried += tr.Retried
		failed += tr.Failed
		dups += tr.Duplicates
	}
	if timeouts != uint64(rr.FiredCount()) {
		t.Errorf("timeouts = %d, want %d (one per fired one-shot hang)", timeouts, rr.FiredCount())
	}
	if retried == 0 {
		t.Error("no retries recorded despite fired hangs")
	}
	if failed != 0 {
		t.Errorf("failed = %d, want 0 — one-shot hangs must be recovered within the retry budget", failed)
	}
	if dups != 0 {
		t.Errorf("duplicates = %d, want 0", dups)
	}
}

// TestCrashIsolationProbe drives a crash-only schedule and checks the probe
// audit actually ran: the stale stream failed typed and the restarted
// partition read back scrubbed.
func TestCrashIsolationProbe(t *testing.T) {
	o := Options{Kinds: []Kind{KindCrash}, Faults: 1}
	rr, err := RunOne(11, o)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Passed() {
		t.Fatalf("crash run violated invariants:\n%s", rr.Report())
	}
	if rr.FiredCount() != 1 {
		t.Fatalf("crash did not fire:\n%s", rr.Report())
	}
	if len(rr.ProbeLines) == 0 {
		t.Fatal("no probe audit lines — the isolation check never ran")
	}
	for _, l := range rr.ProbeLines {
		if !strings.Contains(l, "stale-read=peer-failed") || !strings.Contains(l, "scrub=zeros") {
			t.Errorf("probe line %q, want stale-read=peer-failed scrub=zeros", l)
		}
	}
}

// TestParseKinds pins the -kinds flag grammar: empty means default, spaces
// are trimmed, unknown names are rejected with the known list.
func TestParseKinds(t *testing.T) {
	if got, err := ParseKinds(""); err != nil || got != nil {
		t.Fatalf("ParseKinds(%q) = %v, %v, want nil, nil", "", got, err)
	}
	got, err := ParseKinds(" crash , persistent-hang,crash-loop ")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KindCrash, KindPersistentHang, KindCrashLoop}
	if len(got) != len(want) {
		t.Fatalf("ParseKinds returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseKinds returned %v, want %v", got, want)
		}
	}
	if _, err := ParseKinds("crash,bogus"); err == nil ||
		!strings.Contains(err.Error(), `"bogus"`) ||
		!strings.Contains(err.Error(), "crash-loop") {
		t.Fatalf("ParseKinds accepted an unknown kind (err=%v)", err)
	}
}

// TestKnownKindsPinned pins the complete fault-kind vocabulary: every kind
// below must parse, no other kind may exist, and the parser's error message
// must enumerate exactly this list — so usage text, error text and the parser
// can never drift apart.
func TestKnownKindsPinned(t *testing.T) {
	want := []Kind{
		KindCrash, KindRingCorrupt, KindDeviceHang, KindAttestFail,
		KindPersistentHang, KindCrashLoop,
		KindNodeCrash, KindNetPartition, KindSlowLink,
		KindAttestStorm, KindStaleMeasurement,
		KindMigrateInterrupt, KindScaleStorm, KindDrainRace,
	}
	got := KnownKinds()
	if len(got) != len(want) {
		t.Fatalf("KnownKinds has %d kinds, want %d: %v", len(got), len(want), got)
	}
	for i, k := range want {
		t.Run(string(k), func(t *testing.T) {
			if got[i] != k {
				t.Fatalf("KnownKinds[%d] = %q, want %q", i, got[i], k)
			}
			parsed, err := ParseKinds(string(k))
			if err != nil || len(parsed) != 1 || parsed[0] != k {
				t.Fatalf("ParseKinds(%q) = %v, %v", k, parsed, err)
			}
		})
	}
	_, err := ParseKinds("no-such-kind")
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	names := make([]string, len(want))
	for i, k := range want {
		names[i] = string(k)
	}
	if !strings.Contains(err.Error(), strings.Join(names, ",")) {
		t.Fatalf("error message does not enumerate every known kind:\n%v", err)
	}
}

// TestCrashLoopCompileDegrades pins the crash-loop draw guards: at most one
// crash-loop per schedule, and none on a one-partition pool (no survivors to
// re-place onto) — excess draws degrade to plain crashes.
func TestCrashLoopCompileDegrades(t *testing.T) {
	s := Compile(17, Options{Kinds: []Kind{KindCrashLoop}, Faults: 3, Partitions: 2})
	loops, crashes := 0, 0
	for _, f := range s.Faults {
		switch f.Kind {
		case KindCrashLoop:
			loops++
			if f.Crashes != quarantineAfter {
				t.Errorf("crash-loop sized to %d crashes, want %d", f.Crashes, quarantineAfter)
			}
		case KindCrash:
			crashes++
		}
	}
	if loops != 1 || crashes != 2 {
		t.Errorf("3 crash-loop draws compiled to %d loops + %d crashes, want 1 + 2", loops, crashes)
	}
	s1 := Compile(17, Options{Kinds: []Kind{KindCrashLoop}, Faults: 2, Partitions: 1})
	for _, f := range s1.Faults {
		if f.Kind == KindCrashLoop {
			t.Error("crash-loop compiled for a one-partition pool")
		}
	}
}

// TestPersistentHangDetectedByWatchdog drives a persistent-hang-only
// schedule: the wedge must fire, the SPM watchdog must raise FailHang within
// the detection bound (checkSupervision enforces the latency), and
// conservation must hold.
func TestPersistentHangDetectedByWatchdog(t *testing.T) {
	o := Options{Kinds: []Kind{KindPersistentHang}, Faults: 1}
	rr, err := RunOne(13, o)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Passed() {
		t.Fatalf("persistent-hang run violated invariants:\n%s", rr.Report())
	}
	if rr.FiredCount() != 1 {
		t.Fatalf("wedge did not fire:\n%s", rr.Report())
	}
	if rr.Faulted.FailuresByReason()[spm.FailHang] < 1 {
		t.Fatalf("no FailHang failover recorded:\n%s", rr.Report())
	}
}

// TestCrashLoopEndsQuarantined drives a crash-loop-only schedule: the loop
// must fire, the partition must finish the run quarantined, and the pinned
// tenant's load must still be conserved on the surviving partition.
func TestCrashLoopEndsQuarantined(t *testing.T) {
	o := Options{Kinds: []Kind{KindCrashLoop}, Faults: 1}
	rr, err := RunOne(9, o)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Passed() {
		t.Fatalf("crash-loop run violated invariants:\n%s", rr.Report())
	}
	if rr.FiredCount() == 0 {
		t.Fatalf("crash-loop did not fire:\n%s", rr.Report())
	}
	quarantined := false
	for _, st := range rr.PartStates {
		if st == "quarantined" {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("no partition ended quarantined (states %v):\n%s", rr.PartStates, rr.Report())
	}
	if !strings.Contains(rr.Report(), "quarantined by crash-loop policy") {
		t.Errorf("report missing the quarantine failover line:\n%s", rr.Report())
	}
}

// TestAttestOutageRecovered drives the attest-fail kind (always paired with
// its crash): the vetoed reports must only delay reconnection, never break
// conservation or leak requests.
func TestAttestOutageRecovered(t *testing.T) {
	o := Options{Kinds: []Kind{KindAttestFail}, Faults: 1}
	rr, err := RunOne(5, o)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Passed() {
		t.Fatalf("attest run violated invariants:\n%s", rr.Report())
	}
	// The schedule carries the crash + the outage; both should fire.
	if rr.FiredCount() != len(rr.Schedule.Faults) {
		t.Errorf("fired %d of %d faults:\n%s", rr.FiredCount(), len(rr.Schedule.Faults), rr.Report())
	}
}
