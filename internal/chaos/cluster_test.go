package chaos

import (
	"strings"
	"testing"
)

func clusterOpts() Options {
	return Options{Nodes: 2, Partitions: 4, Tenants: 4}
}

// CompileCluster is a pure function of (seed, Options): same inputs, same
// schedule; the crash budget never exceeds Nodes-1 distinct nodes.
func TestCompileClusterDeterministic(t *testing.T) {
	o := clusterOpts()
	for seed := int64(1); seed <= 50; seed++ {
		a, b := CompileCluster(seed, o), CompileCluster(seed, o)
		if a.String() != b.String() {
			t.Fatalf("seed %d compiled two different schedules:\n%s\nvs\n%s", seed, a, b)
		}
		crashed := map[int]bool{}
		for _, f := range a.Faults {
			if f.Node < 0 || f.Node >= o.Nodes {
				t.Fatalf("seed %d: fault targets node %d of %d", seed, f.Node, o.Nodes)
			}
			switch f.Kind {
			case KindNodeCrash:
				if crashed[f.Node] {
					t.Fatalf("seed %d: node %d crashed twice", seed, f.Node)
				}
				crashed[f.Node] = true
			case KindNetPartition, KindSlowLink:
				if f.Until <= f.After {
					t.Fatalf("seed %d: %s window empty (%v..%v)", seed, f.Kind, f.After, f.Until)
				}
				if f.Kind == KindSlowLink && f.Mult < 2 {
					t.Fatalf("seed %d: slow-link mult %g < 2", seed, f.Mult)
				}
			default:
				t.Fatalf("seed %d: single-node kind %q in a cluster schedule", seed, f.Kind)
			}
		}
		if len(crashed) > o.Nodes-1 {
			t.Fatalf("seed %d: %d nodes crashed, budget is %d", seed, len(crashed), o.Nodes-1)
		}
	}
}

// The -kinds parser accepts node-level names alongside the partition-level
// ones, and CompileCluster honors a restricted mix.
func TestNodeKindParsing(t *testing.T) {
	kinds, err := ParseKinds("node-crash,slow-link")
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 2 || kinds[0] != KindNodeCrash || kinds[1] != KindSlowLink {
		t.Fatalf("parsed %v", kinds)
	}
	if _, err := ParseKinds("node-melt"); err == nil {
		t.Fatal("unknown node kind accepted")
	}
	o := clusterOpts()
	o.Kinds = []Kind{KindSlowLink}
	for seed := int64(1); seed <= 10; seed++ {
		for _, f := range CompileCluster(seed, o).Faults {
			if f.Kind != KindSlowLink {
				t.Fatalf("seed %d: restricted mix compiled %q", seed, f.Kind)
			}
		}
	}
	// A single-node default mix falls back to every node kind rather than
	// compiling partition-level faults the cluster cannot inject.
	o.Kinds = nil
	saw := map[Kind]bool{}
	for seed := int64(1); seed <= 30; seed++ {
		for _, f := range CompileCluster(seed, o).Faults {
			saw[f.Kind] = true
		}
	}
	for _, k := range NodeKinds {
		if !saw[k] {
			t.Errorf("default cluster mix never drew %q over 30 seeds", k)
		}
	}
}

// One cluster seed replays byte-identically — the cronus-chaos -nodes
// -verify contract.
func TestRunNodeOneReplay(t *testing.T) {
	o := clusterOpts()
	a, err := RunNodeOne(7, o)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Passed() {
		t.Fatalf("seed 7 violated invariants:\n%s", a.Report())
	}
	b, err := RunNodeOne(7, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report() != b.Report() {
		t.Fatalf("seed 7 produced two different reports:\n%s\nvs\n%s", a.Report(), b.Report())
	}
}

// A short soak upholds every invariant and renders the expected summary.
func TestRunNodeCampaign(t *testing.T) {
	cr, err := RunNodeCampaign(1, 5, clusterOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Passed() {
		t.Fatalf("campaign failed:\n%s", cr.Report())
	}
	rep := cr.Report()
	if !strings.Contains(rep, "chaos cluster campaign: seeds 1..5 (5 runs, 2 nodes)") {
		t.Fatalf("unexpected campaign header:\n%s", rep)
	}
	if !strings.Contains(rep, "0 violations") {
		t.Fatalf("campaign report missing violation total:\n%s", rep)
	}
	for _, rr := range cr.Runs {
		if !strings.Contains(rr.Report(), "verdict: PASS") {
			t.Fatalf("run report missing verdict:\n%s", rr.Report())
		}
	}
}

// A crash schedule actually exercises failover: the victim tenants re-hash
// and the faulted report says so.
func TestRunNodeCrashFailover(t *testing.T) {
	o := clusterOpts()
	o.Kinds = []Kind{KindNodeCrash}
	o.Faults = 1
	rr, err := RunNodeOne(3, o)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Passed() {
		t.Fatalf("crash seed violated invariants:\n%s", rr.Report())
	}
	_, crashes := rr.Schedule.faultNodes()
	if len(crashes) != 1 {
		t.Fatalf("schedule compiled %d crashes, want 1:\n%s", len(crashes), rr.Schedule)
	}
	rehomed := 0
	for i := range rr.Faulted.Tenants {
		if rr.Faulted.Tenants[i].Rehomed {
			rehomed++
		}
	}
	if rehomed == 0 {
		t.Fatalf("node crash fired but no tenant rehomed:\n%s", rr.Report())
	}
	if len(rr.Faulted.NodeEvents) == 0 {
		t.Fatalf("node crash fired but the event log is empty:\n%s", rr.Report())
	}
}

// Migration draws are well-formed: endpoints in range, migrate-interrupt
// crosses nodes, drain-race stays on the source node (next partition), and a
// duplicate source degrades to a scale-storm instead of a doomed second
// migration.
func TestMigrationKindsCompile(t *testing.T) {
	o := clusterOpts()
	o.Kinds = MigrationKinds
	o.Faults = 6 // enough draws to force duplicate sources on a 2x2 pool
	ppn := o.Partitions / o.Nodes
	sawStormDegrade := false
	for seed := int64(1); seed <= 30; seed++ {
		sources := map[[2]int]bool{}
		for _, f := range CompileCluster(seed, o).Faults {
			switch f.Kind {
			case KindMigrateInterrupt, KindDrainRace:
				if f.Node < 0 || f.Node >= o.Nodes || f.ToNode < 0 || f.ToNode >= o.Nodes ||
					f.Partition < 0 || f.Partition >= ppn || f.ToPart < 0 || f.ToPart >= ppn {
					t.Fatalf("seed %d: endpoints out of range: %s", seed, f)
				}
				if f.Node == f.ToNode && f.Partition == f.ToPart {
					t.Fatalf("seed %d: migration onto itself: %s", seed, f)
				}
				if f.Kind == KindMigrateInterrupt && f.Node == f.ToNode {
					t.Fatalf("seed %d: migrate-interrupt stayed on one node: %s", seed, f)
				}
				if f.Kind == KindDrainRace && (f.Node != f.ToNode || f.ToPart != (f.Partition+1)%ppn) {
					t.Fatalf("seed %d: drain-race destination drifted: %s", seed, f)
				}
				src := [2]int{f.Node, f.Partition}
				if sources[src] {
					t.Fatalf("seed %d: two migrations share source n%d/gpu-part%d",
						seed, f.Node, f.Partition)
				}
				sources[src] = true
			case KindScaleStorm:
				if f.Until <= f.After {
					t.Fatalf("seed %d: scale-storm window empty (%v..%v)", seed, f.After, f.Until)
				}
				sawStormDegrade = true
			default:
				t.Fatalf("seed %d: kind %q from a migration-only mix", seed, f.Kind)
			}
		}
	}
	if !sawStormDegrade {
		t.Error("6 draws on a 2x2 pool never collided into a scale-storm degrade over 30 seeds")
	}
}

// A migrate-interrupt seed degrades to crash-failover: the migration is
// abandoned mid-checkpoint, the source records a panic, and conservation
// still holds.
func TestRunMigrateInterrupt(t *testing.T) {
	o := clusterOpts()
	o.Kinds = []Kind{KindMigrateInterrupt}
	o.Faults = 1
	rr, err := RunNodeOne(5, o)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Passed() {
		t.Fatalf("migrate-interrupt seed violated invariants:\n%s", rr.Report())
	}
	el := rr.Faulted.Elastic
	if el == nil || el.Interrupted != 1 || el.Migrations != 0 {
		t.Fatalf("want exactly one interrupted migration, got %+v", el)
	}
}

// A drain-race seed completes the migration with the raced batch resolved
// exactly once.
func TestRunDrainRace(t *testing.T) {
	o := clusterOpts()
	o.Kinds = []Kind{KindDrainRace}
	o.Faults = 1
	rr, err := RunNodeOne(5, o)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Passed() {
		t.Fatalf("drain-race seed violated invariants:\n%s", rr.Report())
	}
	el := rr.Faulted.Elastic
	if el == nil || el.Migrations != 1 {
		t.Fatalf("want exactly one completed migration, got %+v", el)
	}
}

// A scale-storm seed forces the autoscaler to oscillate in the faulted run
// while the baseline controller — armed identically but stormless — never
// acts.
func TestRunScaleStorm(t *testing.T) {
	o := clusterOpts()
	o.Kinds = []Kind{KindScaleStorm}
	o.Faults = 1
	rr, err := RunNodeOne(5, o)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Passed() {
		t.Fatalf("scale-storm seed violated invariants:\n%s", rr.Report())
	}
	fe, be := rr.Faulted.Elastic, rr.Baseline.Elastic
	if fe == nil || be == nil {
		t.Fatalf("autoscaler not armed in both runs (faulted=%v baseline=%v)", fe, be)
	}
	if fe.ScaleDowns < 1 || fe.ScaleUps < 1 {
		t.Fatalf("storm never oscillated: %+v", fe)
	}
	if be.ScaleUps != 0 || be.ScaleDowns != 0 {
		t.Fatalf("baseline controller acted without a storm: %+v", be)
	}
}

// A mixed migration-kind soak upholds every invariant and replays
// byte-identically — the `make chaos` migration soak contract.
func TestRunMigrationCampaign(t *testing.T) {
	o := clusterOpts()
	o.Kinds = MigrationKinds
	cr, err := RunNodeCampaign(1, 5, o)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Passed() {
		t.Fatalf("migration campaign failed:\n%s", cr.Report())
	}
	again, err := RunNodeOne(cr.Runs[2].Seed, o)
	if err != nil {
		t.Fatal(err)
	}
	if again.Report() != cr.Runs[2].Report() {
		t.Fatalf("migration seed %d diverged on replay", cr.Runs[2].Seed)
	}
}

// RunNodeOne rejects configurations the fabric cannot model.
func TestRunNodeOneValidation(t *testing.T) {
	if _, err := RunNodeOne(1, Options{Nodes: 1, Partitions: 2}); err == nil {
		t.Fatal("Nodes=1 accepted")
	}
	if _, err := RunNodeOne(1, Options{Nodes: 2, Partitions: 3}); err == nil {
		t.Fatal("indivisible partition count accepted")
	}
}
