// Package chaos is the serving plane's deterministic fault-injection
// harness: it compiles seeded fault schedules, arms them against a booted
// CRONUS platform through the repo's injection hooks, and checks that the
// plane's isolation and exactly-once guarantees survive.
//
// A Schedule is compiled from a seed alone (Compile): every fault kind,
// target and trigger is drawn from one seeded RNG stream, so the same seed
// always yields the same schedule. Triggers are either virtual-time instants
// (a partition crash After a fixed offset) or predicates over deterministic
// event ordinals (the Nth record pushed on sRPC stream S, the Nth kernel
// launch on a device, the first K local-attestation reports after a
// partition restart). Because every ordinal is itself a pure function of
// virtual time and the serving plane's seeded load, a trigger maps to
// exactly one instant in the run — rerunning the same seed replays the same
// faults at the same virtual nanoseconds.
//
// An Injector arms a schedule on a platform: crashes ride the SPM's
// proceed-trap entry point (spm.SPM.Fail), ring corruption rides the sRPC
// call hook (srpc.SetCallHook + Client.InjectRecordCorruption), device hangs
// ride the GPU launch path (gpu.Device.ArmLaunchHang), and attestation
// outages ride the SPM report veto (spm.SPM.SetAttestFault). Two kinds
// exercise the health supervision layer: persistent hangs kill an mOS's
// heartbeat publisher (mos.MOS.InjectWedge) so only the SPM watchdog can
// detect the silence, and crash-loops re-fail a partition through
// consecutive recoveries until the sliding-window policy quarantines it.
//
// RunOne executes one seed twice — a fault-free baseline and a faulted run
// over the identical serving config — and checks the invariants: request
// conservation with zero duplicates, typed failures only, survivor-tenant
// latency within tolerance of baseline, and memory of a crashed partition
// never readable by survivors (probe.go). RunCampaign soaks N consecutive
// seeds; cronus-chaos is the CLI front end. Reports are deterministic text:
// same seed, byte-identical report.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"

	"cronus/internal/sim"
)

// Kind names one injectable fault class.
type Kind string

const (
	// KindCrash proceed-traps a GPU partition at a virtual instant: its
	// mOS panics, enclaves die, and the SPM runs the recovery protocol.
	KindCrash Kind = "crash"
	// KindRingCorrupt flips bits in the header of a just-pushed sRPC
	// record, exercising the executor's framing validation and the typed
	// ErrRingCorrupt teardown.
	KindRingCorrupt Kind = "ring-corrupt"
	// KindDeviceHang parks one kernel launch forever, exercising the
	// serving plane's request watchdog and bounded retry.
	KindDeviceHang Kind = "device-hang"
	// KindAttestFail vetoes local-attestation reports for a partition
	// after its restart, delaying replica reconnection; Compile always
	// pairs it with a KindCrash on the same partition so the restart path
	// actually runs.
	KindAttestFail Kind = "attest-fail"
	// KindPersistentHang wedges a partition's mOS at a virtual instant —
	// its heartbeat publisher dies while everything else stays up — so the
	// only path to recovery is the SPM watchdog raising FailHang within
	// its detection bound.
	KindPersistentHang Kind = "persistent-hang"
	// KindCrashLoop crashes the same partition repeatedly, waiting out
	// each recovery, until the SPM's sliding-window policy quarantines it;
	// the serving plane must drain the partition and re-place its load.
	KindCrashLoop Kind = "crash-loop"
)

// Node-level fault kinds target whole fabric nodes rather than single
// partitions; they are only meaningful for cluster campaigns
// (Options.Nodes >= 2, CompileCluster) and ride the serving plane's
// Config.NodeFaults hooks instead of an Injector.
const (
	// KindNodeCrash kills a whole fabric node at a virtual instant: its
	// partition block quarantines permanently (the machine is gone), every
	// in-flight batch there is cancelled and replayed exactly once, and each
	// tenant homed on the node re-hashes to a survivor.
	KindNodeCrash Kind = "node-crash"
	// KindNetPartition severs one node's fabric link for a window: dispatch
	// toward it fails with the typed *cluster.NetPartitionedError and
	// completions crossing back park until the link heals.
	KindNetPartition Kind = "net-partition"
	// KindSlowLink multiplies one node's link latency for a window —
	// degraded but functional, so its tenants slow down without failing.
	KindSlowLink Kind = "slow-link"
)

// Attestation fault kinds exercise the serving plane's attestation gate
// (serve.Config.AttestTickets + AttestFaults); like the node kinds they are
// cluster-campaign faults, riding the serving config instead of an Injector.
// Compiling either kind turns the gate on in both the baseline and faulted
// runs of the seed, so the two stay comparable.
const (
	// KindAttestStorm flushes the whole session-ticket cache at a virtual
	// instant: a mass expiry that sends every tenant back through cold
	// (cached, coalesced) quote verification at once.
	KindAttestStorm Kind = "attest-storm"
	// KindStaleMeasurement flips a word of a victim partition's mOS
	// measurement; the continuous re-measurement prober detects the
	// mismatch, sheds in-flight work with the typed *attest.RevokedError
	// and drains the partition into quarantine.
	KindStaleMeasurement Kind = "stale-measurement"
)

// Migration fault kinds exercise the serving plane's elastic-capacity layer
// (serve.Config.Migrations / ScaleStorms / Autoscale): planned live migration
// and the load-driven autoscaler under duress. Like the node and attestation
// kinds they are cluster-campaign faults riding the serving config, and like
// the attestation kinds they change the config symmetrically where needed —
// a scale-storm in the mix arms an inert autoscaler in the baseline run too,
// so the two runs stay comparable.
const (
	// KindMigrateInterrupt starts a planned cross-node live migration and
	// kills the source mid-checkpoint: the plane must abandon the migration
	// and degrade to the ordinary crash-failover path with every in-flight
	// request replayed exactly once — nothing lost, nothing duplicated.
	KindMigrateInterrupt Kind = "migrate-interrupt"
	// KindScaleStorm forces the autoscaler to oscillate for a window: every
	// control tick alternates scale-down/scale-up regardless of load, and the
	// plane must converge back to full capacity once the window closes.
	KindScaleStorm Kind = "scale-storm"
	// KindDrainRace runs a planned migration and force-dispatches one batch
	// onto the quiescing source after placement stopped picking it — the race
	// between an admission decision and the quiesce. The racing batch must
	// still resolve exactly once.
	KindDrainRace Kind = "drain-race"
)

// AttestKinds is the attestation fault mix for cluster schedules that opt in
// via Options.Kinds (they are never drawn by default).
var AttestKinds = []Kind{KindAttestStorm, KindStaleMeasurement}

// MigrationKinds is the elastic-capacity fault mix for cluster schedules that
// opt in via Options.Kinds (they are never drawn by default).
var MigrationKinds = []Kind{KindMigrateInterrupt, KindScaleStorm, KindDrainRace}

// AllKinds is the default fault mix for compiled single-node schedules.
var AllKinds = []Kind{KindCrash, KindRingCorrupt, KindDeviceHang, KindAttestFail,
	KindPersistentHang, KindCrashLoop}

// NodeKinds is the default fault mix for cluster schedules (CompileCluster).
var NodeKinds = []Kind{KindNodeCrash, KindNetPartition, KindSlowLink}

// KnownKinds is every parseable fault kind in canonical order: the
// partition-level mix, then the node-level, attestation and migration mixes.
// ParseKinds validates against exactly this list and kindNames renders it, so
// error and usage text can never drift from what the parser accepts.
func KnownKinds() []Kind {
	kinds := make([]Kind, 0, len(AllKinds)+len(NodeKinds)+len(AttestKinds)+len(MigrationKinds))
	kinds = append(kinds, AllKinds...)
	kinds = append(kinds, NodeKinds...)
	kinds = append(kinds, AttestKinds...)
	kinds = append(kinds, MigrationKinds...)
	return kinds
}

// ParseKinds parses a comma-separated fault-kind list (the cronus-chaos
// -kinds flag) against the known kinds — partition-level, node-level,
// attestation and migration alike — rejecting unknown names.
func ParseKinds(s string) ([]Kind, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	all := KnownKinds()
	known := make(map[Kind]bool, len(all))
	for _, k := range all {
		known[k] = true
	}
	var kinds []Kind
	for _, part := range strings.Split(s, ",") {
		k := Kind(strings.TrimSpace(part))
		if !known[k] {
			return nil, fmt.Errorf("chaos: unknown fault kind %q (known: %s)", k, kindNames())
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// kindNames renders every known kind for error and usage text.
func kindNames() string {
	all := KnownKinds()
	names := make([]string, 0, len(all))
	for _, k := range all {
		names = append(names, string(k))
	}
	return strings.Join(names, ",")
}

// Fault is one compiled fault with its trigger. Which fields are meaningful
// depends on Kind; the zero values of the others are ignored.
type Fault struct {
	// Kind selects the fault class.
	Kind Kind
	// Partition is the target GPU partition index (crash, attest-fail)
	// or device index (device-hang; the pool maps partition i to gpu i).
	Partition int
	// After is the crash instant as a virtual-time offset from arming.
	After sim.Duration
	// Launch is the device-lifetime launch ordinal that hangs (1-based).
	Launch uint64
	// Stream and AfterCalls trigger ring corruption after the AfterCalls-th
	// record pushed on sRPC stream Stream.
	Stream uint64
	// AfterCalls is the push ordinal on Stream that triggers corruption.
	AfterCalls uint64
	// Mask is XORed into the corrupted record's slots header word.
	Mask uint32
	// Fails is how many post-restart attestation reports are vetoed.
	Fails int
	// Tenant is the tenant index whose stream a ring corruption targets
	// (recorded for survivor analysis).
	Tenant int
	// Crashes is how many back-to-back crashes a crash-loop injects
	// (matched to the supervision policy's QuarantineAfter).
	Crashes int
	// Node is the target fabric node of a node-level fault (cluster
	// campaigns only).
	Node int
	// Until closes a net-partition, slow-link or scale-storm window opened
	// at After.
	Until sim.Duration
	// Mult is a slow-link's latency multiplier.
	Mult float64
	// ToNode and ToPart are a migration fault's destination endpoint
	// (Node/Partition name the source).
	ToNode int
	// ToPart is the destination partition index of a migration fault.
	ToPart int
}

// String renders the fault and its trigger deterministically.
func (f *Fault) String() string {
	switch f.Kind {
	case KindCrash:
		return fmt.Sprintf("crash      partition=gpu-part%d after=%v", f.Partition, f.After)
	case KindRingCorrupt:
		return fmt.Sprintf("ring-corrupt tenant=%d stream=%d after-calls=%d mask=%#x",
			f.Tenant, f.Stream, f.AfterCalls, f.Mask)
	case KindDeviceHang:
		return fmt.Sprintf("device-hang  device=gpu%d launch=%d", f.Partition, f.Launch)
	case KindAttestFail:
		return fmt.Sprintf("attest-fail partition=gpu-part%d fails=%d", f.Partition, f.Fails)
	case KindPersistentHang:
		return fmt.Sprintf("persistent-hang partition=gpu-part%d after=%v", f.Partition, f.After)
	case KindCrashLoop:
		return fmt.Sprintf("crash-loop  partition=gpu-part%d after=%v crashes=%d",
			f.Partition, f.After, f.Crashes)
	case KindNodeCrash:
		return fmt.Sprintf("node-crash  node=n%d after=%v", f.Node, f.After)
	case KindNetPartition:
		return fmt.Sprintf("net-partition node=n%d after=%v until=%v", f.Node, f.After, f.Until)
	case KindSlowLink:
		return fmt.Sprintf("slow-link   node=n%d after=%v until=%v mult=%g",
			f.Node, f.After, f.Until, f.Mult)
	case KindAttestStorm:
		return fmt.Sprintf("attest-storm after=%v", f.After)
	case KindStaleMeasurement:
		return fmt.Sprintf("stale-measurement node=n%d partition=gpu-part%d after=%v",
			f.Node, f.Partition, f.After)
	case KindMigrateInterrupt:
		return fmt.Sprintf("migrate-interrupt n%d/gpu-part%d -> n%d/gpu-part%d after=%v",
			f.Node, f.Partition, f.ToNode, f.ToPart, f.After)
	case KindScaleStorm:
		return fmt.Sprintf("scale-storm  after=%v until=%v", f.After, f.Until)
	case KindDrainRace:
		return fmt.Sprintf("drain-race   n%d/gpu-part%d -> n%d/gpu-part%d after=%v",
			f.Node, f.Partition, f.ToNode, f.ToPart, f.After)
	}
	return string(f.Kind)
}

// Schedule is one compiled fault plan: the seed it derives from and the
// fault list in arming order.
type Schedule struct {
	// Seed is the RNG seed the schedule was compiled from.
	Seed int64
	// Faults is the compiled fault list, in arming order.
	Faults []*Fault
}

// String renders the schedule deterministically, one fault per line.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule seed=%d (%d faults)\n", s.Seed, len(s.Faults))
	for i, f := range s.Faults {
		fmt.Fprintf(&b, "  [%d] %s\n", i, f)
	}
	return b.String()
}

// has reports whether the schedule contains a fault of kind k.
func (s *Schedule) has(k Kind) bool {
	for _, f := range s.Faults {
		if f.Kind == k {
			return true
		}
	}
	return false
}

// Options shapes both schedule compilation and the serving runs that a
// schedule is injected into. The zero value selects the documented defaults.
type Options struct {
	// Tenants is the tenant count of the serving config (default 2).
	Tenants int
	// Partitions is the GPU partition pool size (default 2).
	Partitions int
	// Window is the load-generation window (default 10ms).
	Window sim.Duration
	// Rate is the per-tenant Poisson offered load in requests per virtual
	// second (default 2500).
	Rate float64
	// Faults is the number of faults Compile draws (default 3; an
	// attest-fail draw adds its paired crash on top).
	Faults int
	// Nodes selects the cluster campaign: with Nodes >= 2 the serving runs
	// span a simulated multi-node fabric (CompileCluster / RunNodeOne) and
	// the fault mix comes from NodeKinds. Zero keeps the single-node
	// campaign. Partitions must divide evenly over Nodes.
	Nodes int
	// Kinds restricts the fault mix (default AllKinds).
	Kinds []Kind
	// RelTol is the survivor-tenant p95 latency tolerance relative to
	// baseline (default 0.02).
	RelTol float64
	// AbsTol is the absolute survivor p95 slack floor (default 20µs).
	AbsTol sim.Duration
	// Trace arms the event collector and a per-partition flight recorder
	// during each seed's faulted run: supervision quarantines auto-dump
	// their partition's recent spans, and any invariant violation dumps
	// every ring — the dumps ride in the (still deterministic) report.
	// Request-level causal traces and the SLO invariants are always on;
	// Trace only controls the event spine and its recorder.
	Trace bool
}

func (o *Options) defaults() {
	if o.Tenants <= 0 {
		o.Tenants = 2
	}
	if o.Partitions <= 0 {
		o.Partitions = 2
	}
	if o.Window <= 0 {
		o.Window = 10 * sim.Millisecond
	}
	if o.Rate <= 0 {
		o.Rate = 2500
	}
	if o.Faults <= 0 {
		o.Faults = 3
	}
	if len(o.Kinds) == 0 {
		o.Kinds = AllKinds
	}
	if o.RelTol <= 0 {
		o.RelTol = 0.02
	}
	if o.AbsTol <= 0 {
		o.AbsTol = 20 * sim.Microsecond
	}
}

// Compile derives a fault schedule from the seed: kinds, targets and
// triggers all come from one seeded stream, so the same (seed, Options)
// always compiles the same schedule.
//
// Crash instants land in the middle three fifths of the window, so the
// plane has traffic in flight when the partition dies and time to recover
// before the drain. Ring corruptions target the tenant's active replica
// stream under device-affinity placement (stream ids are minted 1,2,3,… in
// replica creation order, tenant-major) at a push ordinal past the two
// setup calls every replica issues. Hang ordinals are deduplicated per
// device, since a launch can only hang once.
func Compile(seed int64, opts Options) *Schedule {
	opts.defaults()
	rng := rand.New(rand.NewSource(seed ^ 0x63686173)) // domain-separate from serve seeds
	s := &Schedule{Seed: seed}
	crashAfter := func() sim.Duration {
		return opts.Window/5 + sim.Duration(rng.Int63n(int64(3*opts.Window/5)))
	}
	hangArmed := map[[2]uint64]bool{} // (device, launch) pairs already taken
	crashLoopDrawn := false           // at most one per schedule (see KindCrashLoop below)
	for n := 0; n < opts.Faults; n++ {
		f := &Fault{Kind: opts.Kinds[rng.Intn(len(opts.Kinds))]}
		if f.Kind == KindCrashLoop && (crashLoopDrawn || opts.Partitions < 2) {
			// A second crash-loop could quarantine the whole pool and
			// leave admitted requests unplaceable; a one-partition pool
			// has no survivors to re-place onto. Degrade the draw to a
			// plain crash (targets drawn below keep the stream aligned).
			f.Kind = KindCrash
		}
		switch f.Kind {
		case KindCrash:
			f.Partition = rng.Intn(opts.Partitions)
			f.After = crashAfter()
		case KindDeviceHang:
			f.Partition = rng.Intn(opts.Partitions)
			f.Launch = uint64(2 + rng.Intn(40))
			for hangArmed[[2]uint64{uint64(f.Partition), f.Launch}] {
				f.Launch++
			}
			hangArmed[[2]uint64{uint64(f.Partition), f.Launch}] = true
		case KindRingCorrupt:
			f.Tenant = rng.Intn(opts.Tenants)
			// The tenant's device-affinity replica: streams are minted
			// tenant-major at boot, one per (tenant, partition).
			f.Stream = uint64(f.Tenant*opts.Partitions + f.Tenant%opts.Partitions + 1)
			f.AfterCalls = uint64(3 + rng.Intn(38))
			f.Mask = uint32(1) << uint(rng.Intn(20))
		case KindAttestFail:
			f.Partition = rng.Intn(opts.Partitions)
			f.Fails = 1 + rng.Intn(2)
			// Without a restart there is no report to veto: pair the
			// outage with a crash on the same partition.
			s.Faults = append(s.Faults, &Fault{
				Kind: KindCrash, Partition: f.Partition, After: crashAfter(),
			})
		case KindPersistentHang:
			f.Partition = rng.Intn(opts.Partitions)
			f.After = crashAfter()
		case KindCrashLoop:
			crashLoopDrawn = true
			f.Partition = rng.Intn(opts.Partitions)
			f.After = crashAfter()
			f.Crashes = quarantineAfter
		}
		s.Faults = append(s.Faults, f)
	}
	return s
}
