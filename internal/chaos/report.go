package chaos

import (
	"fmt"
	"strings"

	"cronus/internal/serve"
	"cronus/internal/sim"
)

// RunReport is the outcome of one chaos seed: the compiled schedule, both
// serving results, which faults fired, the probe audit lines, and every
// invariant violation (empty on a clean run).
type RunReport struct {
	// Seed is the schedule seed.
	Seed int64
	// Opts are the (defaulted) options the run used.
	Opts Options
	// Schedule is the compiled fault plan.
	Schedule *Schedule
	// Fired is index-aligned with Schedule.Faults.
	Fired []bool
	// InjectAt is index-aligned with Schedule.Faults: the virtual instant a
	// persistent-hang wedge landed (zero for every other kind).
	InjectAt []sim.Time
	// PartStates holds each partition's state after the faulted run drained
	// (index = partition), the evidence the crash-loop quarantine check
	// reads.
	PartStates []string
	// Baseline and Faulted are the two serving results.
	Baseline, Faulted *serve.Result
	// ProbeLines are the isolation-probe audit lines.
	ProbeLines []string
	// Violations lists every invariant the run broke.
	Violations []string
	// FlightDumps are rendered flight-recorder dumps (Options.Trace only):
	// quarantine auto-dumps, plus every ring when an invariant failed.
	FlightDumps []string
}

// Passed reports whether the run upheld every invariant.
func (rr *RunReport) Passed() bool { return len(rr.Violations) == 0 }

// FiredCount is the number of faults that actually triggered.
func (rr *RunReport) FiredCount() int {
	n := 0
	for _, f := range rr.Fired {
		if f {
			n++
		}
	}
	return n
}

// Report renders the run as deterministic text: same (seed, Options) in,
// byte-identical text out — the replay contract cronus-chaos -verify checks.
func (rr *RunReport) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed=%d tenants=%d partitions=%d window=%v: %d faults, %d fired\n",
		rr.Seed, rr.Opts.Tenants, rr.Opts.Partitions, rr.Opts.Window,
		len(rr.Schedule.Faults), rr.FiredCount())
	for i, f := range rr.Schedule.Faults {
		state := "dormant"
		if rr.Fired[i] {
			state = "fired"
		}
		fmt.Fprintf(&b, "  [%d] %-58s %s\n", i, f, state)
	}
	for i, f := range rr.Schedule.Faults {
		if f.Kind == KindPersistentHang && rr.Fired[i] {
			fmt.Fprintf(&b, "hang inject: fault %d wedged gpu-part%d at %s\n",
				i, f.Partition, sim.Duration(rr.InjectAt[i]))
		}
	}
	if len(rr.PartStates) > 0 {
		fmt.Fprintf(&b, "partition states after drain: %s\n", strings.Join(rr.PartStates, " "))
	}
	b.WriteString("faulted run:\n")
	b.WriteString(indent(rr.Faulted.Report()))
	victims := rr.Schedule.victimTenants(rr.Opts)
	for ti := range rr.Faulted.Tenants {
		if victims[ti] || ti >= len(rr.Baseline.Tenants) {
			continue
		}
		ft, bt := &rr.Faulted.Tenants[ti], &rr.Baseline.Tenants[ti]
		fmt.Fprintf(&b, "survivor %s: p95 %s (baseline %s)\n",
			ft.Name, sim.Duration(ft.P95NS), sim.Duration(bt.P95NS))
	}
	for _, l := range rr.ProbeLines {
		fmt.Fprintf(&b, "%s\n", l)
	}
	for _, d := range rr.FlightDumps {
		b.WriteString(indent(d))
	}
	if rr.Passed() {
		b.WriteString("verdict: PASS\n")
	} else {
		fmt.Fprintf(&b, "verdict: FAIL (%d violations)\n", len(rr.Violations))
		for _, v := range rr.Violations {
			fmt.Fprintf(&b, "  violation: %s\n", v)
		}
	}
	return b.String()
}

// CampaignReport aggregates a soak over consecutive seeds.
type CampaignReport struct {
	// BaseSeed is the first seed of the campaign.
	BaseSeed int64
	// Opts are the shared run options.
	Opts Options
	// Runs holds one report per seed, in seed order.
	Runs []*RunReport
}

// Violations is the total violation count across all runs.
func (cr *CampaignReport) Violations() int {
	n := 0
	for _, rr := range cr.Runs {
		n += len(rr.Violations)
	}
	return n
}

// Passed reports whether every seed upheld every invariant.
func (cr *CampaignReport) Passed() bool { return cr.Violations() == 0 }

// Report renders the campaign summary: one line per seed, then the verdict.
// Failing seeds additionally get their full run report appended, so a soak
// failure is diagnosable from the text alone.
func (cr *CampaignReport) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos campaign: seeds %d..%d (%d runs)\n",
		cr.BaseSeed, cr.BaseSeed+int64(len(cr.Runs))-1, len(cr.Runs))
	fired := 0
	for _, rr := range cr.Runs {
		verdict := "PASS"
		if !rr.Passed() {
			verdict = fmt.Sprintf("FAIL (%d violations)", len(rr.Violations))
		}
		fmt.Fprintf(&b, "  seed %4d: %d faults, %d fired, %s\n",
			rr.Seed, len(rr.Schedule.Faults), rr.FiredCount(), verdict)
		fired += rr.FiredCount()
	}
	fmt.Fprintf(&b, "total: %d faults fired, %d violations\n", fired, cr.Violations())
	for _, rr := range cr.Runs {
		if !rr.Passed() {
			fmt.Fprintf(&b, "--- seed %d ---\n%s", rr.Seed, rr.Report())
		}
	}
	return b.String()
}

// indent prefixes every non-empty line with two spaces.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = "  " + l
		}
	}
	return strings.Join(lines, "\n") + "\n"
}
