package chaos

import (
	"errors"
	"fmt"

	"cronus/internal/core"
	"cronus/internal/gpu"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/srpc"
)

// probeSet plants one secret-bearing CUDA mEnclave on every crash-target
// partition before the serving window opens, and audits after the drain
// that a crashed partition's memory was never readable again: the stale
// stream must fail with the typed peer error (never return data), and a
// fresh post-recovery enclave must read only scrubbed zeros. The set is
// created in baseline runs too — identically — so both runs share one
// virtual timeline up to the first fault.
type probeSet struct {
	pl     *core.Platform
	sess   *core.Session
	probes []*probe
}

// probe is one planted enclave: the partition it lives on, the epoch it was
// planted in, and the device pointer holding the secret pattern.
type probe struct {
	partIdx int
	part    *spm.Partition
	epoch0  uint64
	conn    *core.CUDAConn
	ptr     uint64
	secret  []byte
}

// newProbeSet plants probes on the given partition indices (deduplicated,
// in order). With no crash targets it is a no-op, keeping fault-free
// timelines unperturbed.
func newProbeSet(p *sim.Proc, pl *core.Platform, parts []int) (*probeSet, error) {
	ps := &probeSet{pl: pl}
	if len(parts) == 0 {
		return ps, nil
	}
	sess, err := pl.NewSession(p, "chaos-probe")
	if err != nil {
		return nil, fmt.Errorf("chaos: probe session: %w", err)
	}
	ps.sess = sess
	seen := make(map[int]bool)
	for _, pi := range parts {
		if seen[pi] {
			continue
		}
		seen[pi] = true
		conn, err := sess.OpenCUDA(p, core.CUDAOptions{
			Cubin:     gpu.BuildCubin("vec_add"),
			Partition: fmt.Sprintf("gpu-part%d", pi),
			Name:      fmt.Sprintf("chaos-probe/p%d", pi),
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: probe enclave on gpu-part%d: %w", pi, err)
		}
		secret := make([]byte, 64)
		for i := range secret {
			secret[i] = byte(0xA5 ^ i ^ pi)
		}
		ptr, err := conn.MemAlloc(p, uint64(len(secret)))
		if err != nil {
			return nil, err
		}
		if err := conn.HtoD(p, ptr, secret); err != nil {
			return nil, err
		}
		ps.probes = append(ps.probes, &probe{
			partIdx: pi,
			part:    pl.GPUs[pi].Part,
			epoch0:  pl.GPUs[pi].Part.Epoch(),
			conn:    conn,
			ptr:     ptr,
			secret:  secret,
		})
	}
	return ps, nil
}

// check audits every probe whose partition actually restarted. It returns
// deterministic report lines (one per audited probe) and the list of
// isolation violations (empty on a clean run). Call it only after the
// injector is disarmed: the audit reconnects to restarted partitions and
// must not trip the attestation veto.
func (ps *probeSet) check(p *sim.Proc) (lines, violations []string) {
	for _, pr := range ps.probes {
		name := fmt.Sprintf("gpu-part%d", pr.partIdx)
		if pr.part.Epoch() == pr.epoch0 {
			lines = append(lines, fmt.Sprintf("probe %s: partition never restarted, audit skipped", name))
			continue
		}
		stale := "peer-failed"
		data, err := pr.conn.DtoH(p, pr.ptr, len(pr.secret))
		switch {
		case err == nil:
			stale = "READ-BACK"
			violations = append(violations, fmt.Sprintf(
				"probe %s: stale stream returned %d bytes after the crash (want typed peer failure)",
				name, len(data)))
		case !errors.Is(err, srpc.ErrPeerFailed):
			stale = "untyped-error"
			violations = append(violations, fmt.Sprintf(
				"probe %s: stale read failed with %q, want srpc.ErrPeerFailed", name, err))
		}
		// Fresh enclave in the new epoch: the same amount of device memory
		// must come back fully scrubbed. A quarantined partition never
		// comes back — the stale-read half above already proved isolation,
		// and there is no new epoch to audit.
		scrub := "zeros"
		if err := ps.pl.SPM.AwaitReady(p, pr.part); err != nil {
			lines = append(lines, fmt.Sprintf("probe %s: stale-read=%s scrub=quarantined", name, stale))
			continue
		}
		conn2, err := ps.sess.OpenCUDA(p, core.CUDAOptions{
			Cubin:     gpu.BuildCubin("vec_add"),
			Partition: name,
			Name:      fmt.Sprintf("chaos-probe/p%d.audit", pr.partIdx),
		})
		if err != nil {
			scrub = "unreachable"
			violations = append(violations, fmt.Sprintf(
				"probe %s: post-recovery reconnect failed: %v", name, err))
		} else {
			ptr2, err := conn2.MemAlloc(p, uint64(len(pr.secret)))
			var got []byte
			if err == nil {
				got, err = conn2.DtoH(p, ptr2, len(pr.secret))
			}
			if err != nil {
				scrub = "unreadable"
				violations = append(violations, fmt.Sprintf(
					"probe %s: post-recovery read failed: %v", name, err))
			} else {
				for _, b := range got {
					if b != 0 {
						scrub = "RESIDUE"
						violations = append(violations, fmt.Sprintf(
							"probe %s: post-recovery memory not scrubbed (nonzero byte)", name))
						break
					}
				}
			}
			_ = conn2.Close(p)
		}
		lines = append(lines, fmt.Sprintf("probe %s: stale-read=%s scrub=%s", name, stale, scrub))
	}
	return lines, violations
}
