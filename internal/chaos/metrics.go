package chaos

import "cronus/internal/metrics"

var (
	// mRuns counts completed chaos runs (one baseline + one faulted
	// execution each).
	mRuns = metrics.Default.Counter("chaos.runs")
	// mFaultsArmed counts faults installed by Injector.Arm.
	mFaultsArmed = metrics.Default.Counter("chaos.faults.armed")
	// mFaultsFired counts faults whose trigger was actually reached.
	mFaultsFired = metrics.Default.Counter("chaos.faults.fired")
	// mViolations counts invariant violations across all runs.
	mViolations = metrics.Default.Counter("chaos.violations")
)
