package chaos

// Cluster campaigns: node-level chaos against the serving plane's multi-node
// fabric mode. Where the single-node harness arms an Injector on a booted
// platform, node faults ride the serving config itself (serve.Config.
// NodeFaults) — the cluster boots its own kernel and platforms under
// serve.Run, arms the schedule before the shards parallelize, and the same
// (seed, Options) replays byte-identically.
//
// The invariants shift with the blast radius: request conservation and
// exactly-once still hold per tenant, failures must stay typed (the fabric
// adds *cluster.NetPartitionedError to the allowlist), the no-split-brain
// ledger must read zero in both runs, every tenant homed on a crashed node
// must re-hash to a survivor, and tenants homed away from every faulted node
// must be indistinguishable from baseline — byte-identical accounting and
// p95 within tolerance — except after a node crash, where survivors
// legitimately absorb the rehomed load and only their arrival process is
// required to match.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"cronus/internal/attest"
	"cronus/internal/cluster"
	"cronus/internal/elastic"
	"cronus/internal/serve"
	"cronus/internal/sim"
	"cronus/internal/spm"
	"cronus/internal/srpc"
	"cronus/internal/tvm"
)

// nodeKindMix filters a kind list down to the cluster-capable kinds (node,
// attestation and migration faults), falling back to NodeKinds when the list
// has none (or is the single-node default).
func nodeKindMix(kinds []Kind) []Kind {
	var mix []Kind
	for _, k := range kinds {
		switch k {
		case KindNodeCrash, KindNetPartition, KindSlowLink,
			KindAttestStorm, KindStaleMeasurement,
			KindMigrateInterrupt, KindScaleStorm, KindDrainRace:
			mix = append(mix, k)
		}
	}
	if len(mix) == 0 {
		return NodeKinds
	}
	return mix
}

// hasAttestKinds reports whether the (cluster-filtered) kind mix can draw an
// attestation fault — which decides whether the serving configs of a seed arm
// the attestation gate.
func hasAttestKinds(kinds []Kind) bool {
	for _, k := range nodeKindMix(kinds) {
		if k == KindAttestStorm || k == KindStaleMeasurement {
			return true
		}
	}
	return false
}

// hasStormKind reports whether the (cluster-filtered) kind mix can draw a
// scale-storm — which decides whether the serving configs of a seed arm the
// autoscaler. Like the attestation gate it arms in baseline and faulted runs
// alike (inert watermarks, so without a storm window it never acts) to keep
// the two comparable.
func hasStormKind(kinds []Kind) bool {
	for _, k := range nodeKindMix(kinds) {
		if k == KindScaleStorm {
			return true
		}
	}
	return false
}

// CompileCluster derives a node-fault schedule from the seed, domain-
// separated from Compile so the same seed yields unrelated single-node and
// cluster plans. Fault instants land in the middle three fifths of the
// window; partition, slow-link and scale-storm windows last between a tenth
// and three tenths of it. At most Nodes-1 distinct nodes crash — crashing the
// last survivor (or the same node twice) would leave nothing to fail over to,
// so such draws degrade to a heal-able net-partition on the same node.
// Migration faults draw a source endpoint and a destination: cross-node on
// the same partition index for migrate-interrupt, the next partition on the
// same node for drain-race (cross-node when the node has only one). A second
// migration from an already-drawn source would find it released and be a
// no-op, so duplicate draws degrade to a scale-storm.
func CompileCluster(seed int64, opts Options) *Schedule {
	opts.defaults()
	rng := rand.New(rand.NewSource(seed ^ 0x6e6f6465)) // domain-separate from Compile
	mix := nodeKindMix(opts.Kinds)
	s := &Schedule{Seed: seed}
	windowAt := func() sim.Duration {
		return opts.Window/5 + sim.Duration(rng.Int63n(int64(3*opts.Window/5)))
	}
	crashed := map[int]bool{}
	ppn := opts.Partitions / opts.Nodes
	staled := map[[2]int]bool{}
	migrated := map[[2]int]bool{}
	for n := 0; n < opts.Faults; n++ {
		f := &Fault{Kind: mix[rng.Intn(len(mix))], Node: rng.Intn(opts.Nodes)}
		if f.Kind == KindNodeCrash && (len(crashed) >= opts.Nodes-1 || crashed[f.Node]) {
			f.Kind = KindNetPartition
		}
		if f.Kind == KindMigrateInterrupt || f.Kind == KindDrainRace {
			f.Partition = rng.Intn(ppn)
			if migrated[[2]int{f.Node, f.Partition}] {
				// The source was already drawn: a second migration from it
				// would find the partition released (or just-failed) and skip.
				// Degrade the draw to a scale-storm so the seed still injects.
				f.Kind = KindScaleStorm
				f.Node, f.Partition = 0, 0
			} else {
				migrated[[2]int{f.Node, f.Partition}] = true
				if f.Kind == KindDrainRace && ppn >= 2 {
					f.ToNode, f.ToPart = f.Node, (f.Partition+1)%ppn
				} else {
					f.ToNode, f.ToPart = (f.Node+1)%opts.Nodes, f.Partition
				}
			}
		}
		if f.Kind == KindStaleMeasurement {
			f.Partition = rng.Intn(ppn)
			// A duplicate victim would be a no-op (revocation is permanent),
			// and revoking every partition would leave admitted requests with
			// nowhere typed-healthy to land; degrade such draws to a storm.
			if staled[[2]int{f.Node, f.Partition}] || len(staled) >= opts.Partitions-1 {
				f.Kind = KindAttestStorm
				f.Partition = 0
			} else {
				staled[[2]int{f.Node, f.Partition}] = true
			}
		}
		f.After = windowAt()
		switch f.Kind {
		case KindNodeCrash:
			crashed[f.Node] = true
		case KindNetPartition, KindSlowLink:
			f.Until = f.After + opts.Window/10 + sim.Duration(rng.Int63n(int64(opts.Window/5)))
			if f.Kind == KindSlowLink {
				f.Mult = float64(2 + rng.Intn(7))
			}
		case KindAttestStorm:
			f.Node = 0 // a storm hits the gateway-wide ticket cache, not a node
		case KindScaleStorm:
			f.Node = 0 // a storm hits the plane-wide autoscaler, not a node
			f.Until = f.After + opts.Window/10 + sim.Duration(rng.Int63n(int64(opts.Window/5)))
		}
		s.Faults = append(s.Faults, f)
	}
	return s
}

// nodeFaults lowers the schedule to the serving plane's fault hooks.
func (s *Schedule) nodeFaults() []cluster.Fault {
	var fs []cluster.Fault
	for _, f := range s.Faults {
		switch f.Kind {
		case KindNodeCrash:
			fs = append(fs, cluster.Fault{Kind: cluster.NodeCrash, Node: f.Node, At: f.After})
		case KindNetPartition:
			fs = append(fs, cluster.Fault{Kind: cluster.NetPartition, Node: f.Node,
				At: f.After, Until: f.Until})
		case KindSlowLink:
			fs = append(fs, cluster.Fault{Kind: cluster.SlowLink, Node: f.Node,
				At: f.After, Until: f.Until, Mult: f.Mult})
		}
	}
	return fs
}

// attestFaults lowers the schedule's attestation faults to the serving
// plane's Config.AttestFaults hooks.
func (s *Schedule) attestFaults() []serve.AttestFault {
	var fs []serve.AttestFault
	for _, f := range s.Faults {
		switch f.Kind {
		case KindAttestStorm:
			fs = append(fs, serve.AttestFault{Kind: serve.AttestStorm, At: f.After})
		case KindStaleMeasurement:
			fs = append(fs, serve.AttestFault{Kind: serve.StaleMeasurement,
				At: f.After, Node: f.Node, Part: f.Partition})
		}
	}
	return fs
}

// migrations lowers the schedule's migration faults to the serving plane's
// planned-migration hooks.
func (s *Schedule) migrations() []serve.Migration {
	var ms []serve.Migration
	for _, f := range s.Faults {
		switch f.Kind {
		case KindMigrateInterrupt:
			ms = append(ms, serve.Migration{At: f.After,
				From:      elastic.Endpoint{Node: f.Node, Part: f.Partition},
				To:        elastic.Endpoint{Node: f.ToNode, Part: f.ToPart},
				Interrupt: true})
		case KindDrainRace:
			ms = append(ms, serve.Migration{At: f.After,
				From: elastic.Endpoint{Node: f.Node, Part: f.Partition},
				To:   elastic.Endpoint{Node: f.ToNode, Part: f.ToPart},
				Race: true})
		}
	}
	return ms
}

// scaleStorms lowers the schedule's scale-storm windows to the serving
// plane's forced-oscillation hooks.
func (s *Schedule) scaleStorms() []serve.ScaleStorm {
	var ws []serve.ScaleStorm
	for _, f := range s.Faults {
		if f.Kind == KindScaleStorm {
			ws = append(ws, serve.ScaleStorm{At: f.After, Until: f.Until})
		}
	}
	return ws
}

// clusterServeConfig is the serving load a cluster seed runs against: the
// sharded data plane spanning Options.Nodes fabric nodes, one shard per
// partition, round-robin placement inside each home group, and HashBound 1.0
// so the boot assignment spreads tenants evenly — every node gets victims
// and survivors. Supervision, tracing and the SLO engine stay off: the
// sharded plane models inference serving only and rejects them by
// validation. The schedule s is nil for the baseline run; the faulted run
// lowers it onto the config's fault hooks.
func clusterServeConfig(seed int64, o Options, s *Schedule) serve.Config {
	cfg := serve.Config{
		Seed:           seed,
		Window:         o.Window,
		Policy:         serve.RoundRobin,
		MaxBatch:       4,
		BatchWindow:    50 * sim.Microsecond,
		GPUPartitions:  o.Partitions,
		GPUFlopsPerNs:  400,
		KeepRequests:   true,
		RequestTimeout: 2 * sim.Millisecond,
		MaxRetries:     1,
		RetryBackoff:   100 * sim.Microsecond,
		Shards:         o.Partitions,
		Nodes:          o.Nodes,
		HashBound:      1.0,
	}
	if s != nil {
		cfg.NodeFaults = s.nodeFaults()
		cfg.AttestFaults = s.attestFaults()
		cfg.Migrations = s.migrations()
		cfg.ScaleStorms = s.scaleStorms()
	}
	if hasStormKind(o.Kinds) {
		// The autoscaler arms in baseline and faulted runs alike, with
		// watermarks it can never hit on its own: only a compiled scale-storm
		// window makes it act, so the baseline run stays a true control.
		cfg.Autoscale = &elastic.Config{
			Interval:  100 * sim.Microsecond,
			HighDepth: 1 << 30,
			LowDepth:  -1,
			HighShed:  2,
		}
	}
	if hasAttestKinds(o.Kinds) {
		// The gate arms in baseline and faulted runs alike (same config
		// modulo the fault lists), so the two stay comparable: a short TTL
		// makes tickets cycle a few times inside the window, and a tight
		// reprobe catches a tampered measurement well before the drain.
		cfg.AttestTickets = true
		cfg.AttestTicketTTL = 2 * sim.Millisecond
		cfg.AttestReprobe = 500 * sim.Microsecond
	}
	for ti := 0; ti < o.Tenants; ti++ {
		cfg.Tenants = append(cfg.Tenants, serve.TenantSpec{
			Name:     fmt.Sprintf("tenant-%d", ti),
			Arrival:  serve.Poisson,
			Rate:     o.Rate,
			QueueCap: 512,
			Mix:      []serve.WorkClass{{Name: "resnet18", Graph: tvm.ResNet18()}},
		})
	}
	return cfg
}

// NodeRunReport is the outcome of one cluster chaos seed: the compiled node-
// fault schedule, both serving results, and every invariant violation.
type NodeRunReport struct {
	// Seed is the schedule seed.
	Seed int64
	// Opts are the (defaulted) options the run used.
	Opts Options
	// Schedule is the compiled node-fault plan.
	Schedule *Schedule
	// Baseline and Faulted are the two serving results.
	Baseline, Faulted *serve.Result
	// Violations lists every invariant the run broke.
	Violations []string
}

// Passed reports whether the run upheld every invariant.
func (rr *NodeRunReport) Passed() bool { return len(rr.Violations) == 0 }

// Report renders the run as deterministic text: same (seed, Options) in,
// byte-identical text out — the same replay contract the single-node
// harness honors.
func (rr *NodeRunReport) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos cluster seed=%d nodes=%d tenants=%d partitions=%d window=%v: %d faults\n",
		rr.Seed, rr.Opts.Nodes, rr.Opts.Tenants, rr.Opts.Partitions, rr.Opts.Window,
		len(rr.Schedule.Faults))
	for i, f := range rr.Schedule.Faults {
		fmt.Fprintf(&b, "  [%d] %-58s armed\n", i, f)
	}
	b.WriteString("faulted run:\n")
	b.WriteString(indent(rr.Faulted.Report()))
	faultNodes, _ := rr.Schedule.faultNodes()
	for ti := range rr.Faulted.Tenants {
		ft := &rr.Faulted.Tenants[ti]
		if faultNodes[ft.Home] || ti >= len(rr.Baseline.Tenants) {
			continue
		}
		bt := &rr.Baseline.Tenants[ti]
		fmt.Fprintf(&b, "survivor %s: p95 %s (baseline %s)\n",
			ft.Name, sim.Duration(ft.P95NS), sim.Duration(bt.P95NS))
	}
	if rr.Passed() {
		b.WriteString("verdict: PASS\n")
	} else {
		fmt.Fprintf(&b, "verdict: FAIL (%d violations)\n", len(rr.Violations))
		for _, v := range rr.Violations {
			fmt.Fprintf(&b, "  violation: %s\n", v)
		}
	}
	return b.String()
}

// faultNodes splits the schedule's targets: every faulted node, and the
// subset that crashes outright.
func (s *Schedule) faultNodes() (all, crashes map[int]bool) {
	all, crashes = map[int]bool{}, map[int]bool{}
	for _, f := range s.Faults {
		switch f.Kind {
		case KindNodeCrash:
			all[f.Node] = true
			crashes[f.Node] = true
		case KindNetPartition, KindSlowLink:
			all[f.Node] = true
		case KindStaleMeasurement:
			// A revocation quarantines part of the node's pool: tenants homed
			// there shift load (possibly rehoming), so the node is faulted.
			all[f.Node] = true
		case KindMigrateInterrupt, KindDrainRace:
			// A migration perturbs both ends: the source drains (or crashes,
			// interrupted) and the destination absorbs the moved load and the
			// fabric transfer. Scale-storms are plane-wide and handled by the
			// survivor-check relaxation instead.
			all[f.Node] = true
			all[f.ToNode] = true
		}
	}
	return all, crashes
}

// checkNodeInvariants audits one finished cluster seed. Every violated
// invariant becomes one deterministic line.
func (rr *NodeRunReport) checkNodeInvariants() []string {
	var v []string
	v = append(v, conservation("baseline", rr.Baseline)...)
	v = append(v, conservation("faulted", rr.Faulted)...)
	// No-split-brain: a tenant's requests were never concurrently live on
	// two nodes, in either run.
	if rr.Baseline.SplitBrain != 0 {
		v = append(v, fmt.Sprintf("baseline: split-brain ledger read %d, want 0", rr.Baseline.SplitBrain))
	}
	if rr.Faulted.SplitBrain != 0 {
		v = append(v, fmt.Sprintf("faulted: split-brain ledger read %d, want 0", rr.Faulted.SplitBrain))
	}
	// Exactly-once with typed failures: everything admitted completes once,
	// and every failure is one of the plane's typed errors — the fabric adds
	// the net-partition error to the single-node allowlist.
	for _, r := range rr.Faulted.Requests {
		if r.Done == 0 {
			v = append(v, fmt.Sprintf("request %d (%s) admitted but never completed", r.ID, r.Tenant))
			continue
		}
		if r.Err != nil {
			var te *serve.TimeoutError
			var pq *serve.PoolQuarantinedError
			var np *cluster.NetPartitionedError
			var rv *attest.RevokedError
			if !errors.As(r.Err, &te) && !errors.As(r.Err, &pq) && !errors.As(r.Err, &np) &&
				!errors.As(r.Err, &rv) && !errors.Is(r.Err, srpc.ErrRingCorrupt) {
				v = append(v, fmt.Sprintf("request %d (%s) failed with untyped error %q",
					r.ID, r.Tenant, r.Err))
			}
		}
	}
	faultNodes, crashNodes := rr.Schedule.faultNodes()
	// Cross-node failover: every tenant homed on a crashed node must have
	// re-hashed to a survivor (CompileCluster guarantees one exists).
	for ti := range rr.Faulted.Tenants {
		ft := &rr.Faulted.Tenants[ti]
		if crashNodes[ft.Home] && !ft.Rehomed {
			v = append(v, fmt.Sprintf("tenant %s homed on crashed node n%d never rehomed",
				ft.Name, ft.Home))
		}
	}
	// Attestation invariants. No completion may ever land on a partition
	// after its revocation (untrusted results must shed, not leak), and
	// every stale-measurement victim must show the revoked + quarantined
	// failure the prober is supposed to raise.
	for _, res := range []struct {
		name string
		r    *serve.Result
	}{{"baseline", rr.Baseline}, {"faulted", rr.Faulted}} {
		if n, ok := res.r.Metrics.Counters["serve.attest.post_revoke_completions"]; ok && n != 0 {
			v = append(v, fmt.Sprintf("%s: %d completions landed on revoked partitions, want 0",
				res.name, n))
		}
	}
	hasStorm, hasStale, hasScaleStorm := false, false, false
	for _, f := range rr.Schedule.Faults {
		switch f.Kind {
		case KindAttestStorm:
			hasStorm = true
		case KindScaleStorm:
			hasScaleStorm = true
		case KindMigrateInterrupt, KindDrainRace:
			v = append(v, rr.checkMigrationFault(f)...)
		case KindStaleMeasurement:
			hasStale = true
			victim := fmt.Sprintf("n%d/gpu-part%d", f.Node, f.Partition)
			found := false
			for _, fs := range rr.Faulted.Failures {
				if fs.Partition == victim && fs.Reason == spm.FailRevoked && fs.Quarantined {
					found = true
					break
				}
			}
			if !found {
				v = append(v, fmt.Sprintf(
					"stale measurement on %s never produced a revoked quarantine", victim))
			}
		}
	}
	// Elastic invariants. A scale-storm arms the autoscaler in both runs; the
	// faulted run must have the layer up, and the baseline controller — armed
	// with inert watermarks and no storm windows — must never have acted,
	// proving the oscillation came from the fault and nothing else.
	if hasScaleStorm {
		if rr.Faulted.Elastic == nil {
			v = append(v, "scale-storm armed but the faulted run has no elastic layer")
		}
		if be := rr.Baseline.Elastic; be == nil {
			v = append(v, "scale-storm in the mix but the baseline run has no elastic layer")
		} else if be.ScaleUps != 0 || be.ScaleDowns != 0 || be.Migrations != 0 {
			v = append(v, fmt.Sprintf(
				"baseline autoscaler acted without a storm (ups=%d downs=%d migrations=%d)",
				be.ScaleUps, be.ScaleDowns, be.Migrations))
		}
	}
	// Survivors — tenants homed away from every faulted node. Their arrival
	// process never depends on faults, so Offered must always match. With no
	// crash in the schedule nothing re-places onto their nodes either, so
	// the full single-node contract applies: identical accounting, p95
	// within tolerance. After a crash the rehomed load lands on survivor
	// nodes legitimately, so only the arrival check holds — and the same
	// relaxation applies to the attestation faults (a storm hits every
	// tenant's admission path, a revocation can rehome its victims' tenants
	// onto survivor nodes) and to scale-storms, whose forced capacity
	// oscillation is plane-wide by design. Planned migrations stay strict:
	// they perturb only their two endpoints, both marked faulted.
	hasCrash := len(crashNodes) > 0 || hasStorm || hasStale || hasScaleStorm
	for ti := range rr.Faulted.Tenants {
		ft := &rr.Faulted.Tenants[ti]
		if faultNodes[ft.Home] || ti >= len(rr.Baseline.Tenants) {
			continue
		}
		bt := &rr.Baseline.Tenants[ti]
		if ft.Offered != bt.Offered {
			v = append(v, fmt.Sprintf("survivor %s: offered %d drifted from baseline %d",
				ft.Name, ft.Offered, bt.Offered))
		}
		if hasCrash {
			continue
		}
		if ft.Completed != bt.Completed || ft.Shed != bt.Shed || ft.Failed != bt.Failed {
			v = append(v, fmt.Sprintf(
				"survivor %s: accounting drifted from baseline (completed %d/%d shed %d/%d failed %d/%d)",
				ft.Name, ft.Completed, bt.Completed, ft.Shed, bt.Shed, ft.Failed, bt.Failed))
		}
		tol := math.Max(rr.Opts.RelTol*bt.P95NS, float64(rr.Opts.AbsTol))
		if math.Abs(ft.P95NS-bt.P95NS) > tol {
			v = append(v, fmt.Sprintf("survivor %s: p95 %s drifted beyond tolerance of baseline %s",
				ft.Name, sim.Duration(ft.P95NS), sim.Duration(bt.P95NS)))
		}
	}
	return v
}

// elasticEvent reports whether the run's elastic event log contains substr.
func elasticEvent(r *serve.Result, substr string) bool {
	if r.Elastic == nil {
		return false
	}
	for _, e := range r.Elastic.Events {
		if strings.Contains(e, substr) {
			return true
		}
	}
	return false
}

// checkMigrationFault audits one armed migration fault against the faulted
// run's elastic event log. The migration must at least have been attempted
// (elMigrate always logs a quiesce or a skip for its source). A skip is
// legitimate — an earlier fault can take either endpoint out of service — but
// an attempted migrate-interrupt must show the crash-failover fallback (the
// interrupt event plus a recorded panic on the source), and an attempted
// drain-race must show the race injected and the migration still completing.
func (rr *NodeRunReport) checkMigrationFault(f *Fault) []string {
	var v []string
	label := fmt.Sprintf("migration n%d/gpu-part%d -> n%d/gpu-part%d",
		f.Node, f.Partition, f.ToNode, f.ToPart)
	if !elasticEvent(rr.Faulted, label) {
		return []string{fmt.Sprintf("%s armed but the elastic layer never attempted it", f.Kind)}
	}
	if elasticEvent(rr.Faulted, label+" skipped") {
		return nil
	}
	switch f.Kind {
	case KindMigrateInterrupt:
		if !elasticEvent(rr.Faulted, label+" interrupted") {
			v = append(v, fmt.Sprintf("migrate-interrupt on n%d/gpu-part%d ran but never interrupted",
				f.Node, f.Partition))
		}
		src := fmt.Sprintf("n%d/gpu-part%d", f.Node, f.Partition)
		found := false
		for _, fs := range rr.Faulted.Failures {
			if fs.Partition == src && fs.Reason == spm.FailPanic {
				found = true
				break
			}
		}
		if !found {
			v = append(v, fmt.Sprintf(
				"migrate-interrupt on %s never fell back to crash-failover (no panic recorded)", src))
		}
	case KindDrainRace:
		if !elasticEvent(rr.Faulted, "drain-race") {
			v = append(v, fmt.Sprintf("drain-race on n%d/gpu-part%d ran but never injected the race",
				f.Node, f.Partition))
		}
		if !elasticEvent(rr.Faulted, label+" completed") {
			v = append(v, fmt.Sprintf("drain-race migration n%d/gpu-part%d never completed",
				f.Node, f.Partition))
		}
	}
	return v
}

// RunNodeOne compiles the seed's node-fault schedule and executes it: a
// fault-free baseline cluster run, the faulted run over the identical
// config, then every invariant check. The returned report is fully
// deterministic — same (seed, Options), byte-identical Report().
func RunNodeOne(seed int64, o Options) (*NodeRunReport, error) {
	o.defaults()
	if o.Nodes < 2 {
		return nil, fmt.Errorf("chaos: cluster campaign needs Nodes >= 2, got %d", o.Nodes)
	}
	if o.Partitions%o.Nodes != 0 {
		return nil, fmt.Errorf("chaos: Partitions (%d) must divide evenly over Nodes (%d)",
			o.Partitions, o.Nodes)
	}
	mRuns.Inc()
	rr := &NodeRunReport{Seed: seed, Opts: o, Schedule: CompileCluster(seed, o)}
	base, err := serve.Run(clusterServeConfig(seed, o, nil))
	if err != nil {
		return nil, fmt.Errorf("chaos: cluster baseline run (seed %d): %w", seed, err)
	}
	rr.Baseline = base
	faulted, err := serve.Run(clusterServeConfig(seed, o, rr.Schedule))
	if err != nil {
		return nil, fmt.Errorf("chaos: cluster faulted run (seed %d): %w", seed, err)
	}
	rr.Faulted = faulted
	rr.Violations = rr.checkNodeInvariants()
	mViolations.Add(uint64(len(rr.Violations)))
	return rr, nil
}

// NodeCampaignReport aggregates a cluster soak over consecutive seeds.
type NodeCampaignReport struct {
	// BaseSeed is the first seed of the campaign.
	BaseSeed int64
	// Opts are the shared run options.
	Opts Options
	// Runs holds one report per seed, in seed order.
	Runs []*NodeRunReport
}

// Violations is the total violation count across all runs.
func (cr *NodeCampaignReport) Violations() int {
	n := 0
	for _, rr := range cr.Runs {
		n += len(rr.Violations)
	}
	return n
}

// Passed reports whether every seed upheld every invariant.
func (cr *NodeCampaignReport) Passed() bool { return cr.Violations() == 0 }

// Report renders the campaign summary: one line per seed, then the verdict,
// with failing seeds' full reports appended.
func (cr *NodeCampaignReport) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos cluster campaign: seeds %d..%d (%d runs, %d nodes)\n",
		cr.BaseSeed, cr.BaseSeed+int64(len(cr.Runs))-1, len(cr.Runs), cr.Opts.Nodes)
	faults := 0
	for _, rr := range cr.Runs {
		verdict := "PASS"
		if !rr.Passed() {
			verdict = fmt.Sprintf("FAIL (%d violations)", len(rr.Violations))
		}
		fmt.Fprintf(&b, "  seed %4d: %d faults, %s\n",
			rr.Seed, len(rr.Schedule.Faults), verdict)
		faults += len(rr.Schedule.Faults)
	}
	fmt.Fprintf(&b, "total: %d faults armed, %d violations\n", faults, cr.Violations())
	for _, rr := range cr.Runs {
		if !rr.Passed() {
			fmt.Fprintf(&b, "--- seed %d ---\n%s", rr.Seed, rr.Report())
		}
	}
	return b.String()
}

// RunNodeCampaign soaks n consecutive cluster seeds starting at baseSeed. It
// returns an error only when a run cannot execute at all; invariant
// violations are collected in the report.
func RunNodeCampaign(baseSeed int64, n int, o Options) (*NodeCampaignReport, error) {
	cr := &NodeCampaignReport{BaseSeed: baseSeed, Opts: o}
	for i := 0; i < n; i++ {
		rr, err := RunNodeOne(baseSeed+int64(i), o)
		if err != nil {
			return nil, err
		}
		cr.Runs = append(cr.Runs, rr)
	}
	// Opts echoed in the header must be the defaulted set the runs used.
	if len(cr.Runs) > 0 {
		cr.Opts = cr.Runs[0].Opts
	}
	return cr, nil
}
