package metrics_test

import (
	"bytes"
	"testing"

	"cronus/internal/core"
	"cronus/internal/gpu"
	"cronus/internal/metrics"
	"cronus/internal/sim"
)

// gaussianish is a small but representative CRONUS workload: session setup,
// remote attestation, CUDA mEnclave over sRPC, uploads, a launch, a download.
func gaussianish() error {
	return core.Run(core.DefaultConfig(), func(pl *core.Platform, p *sim.Proc) error {
		s, err := pl.NewSession(p, "determinism")
		if err != nil {
			return err
		}
		if err := s.Attest(p, 7); err != nil {
			return err
		}
		g, err := s.OpenCUDA(p, core.CUDAOptions{Cubin: gpu.BuildCubin("vec_add")})
		if err != nil {
			return err
		}
		defer g.Close(p)
		a, _ := g.MemAlloc(p, 256)
		b, _ := g.MemAlloc(p, 256)
		c, _ := g.MemAlloc(p, 256)
		buf := make([]byte, 256)
		if err := g.HtoD(p, a, buf); err != nil {
			return err
		}
		if err := g.HtoD(p, b, buf); err != nil {
			return err
		}
		if err := g.Launch(p, "vec_add", gpu.Dim{64, 1, 1}, a, b, c); err != nil {
			return err
		}
		_, err = g.DtoH(p, c, 256)
		return err
	})
}

func snapshotJSON(t *testing.T) []byte {
	t.Helper()
	metrics.Default.Reset()
	metrics.Default.Enable()
	defer metrics.Default.Disable()
	if err := gaussianish(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := metrics.Default.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Two identical platform runs must serialize to byte-identical metrics JSON:
// the virtual clock is deterministic and no metric name may leak run-local
// state (stream ids, pointers, map order).
func TestSnapshotsDeterministicAcrossRuns(t *testing.T) {
	first := snapshotJSON(t)
	second := snapshotJSON(t)
	if !bytes.Equal(first, second) {
		t.Fatalf("snapshots differ between identical runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}

	// Spot-check the acceptance-critical series are present.
	s := string(first)
	for _, want := range []string{
		`"spm.world_switches"`,
		`"srpc.bytes_moved"`,
		`"spm.failover.latency_ns"`, // present (and empty) even with no fault
	} {
		if !bytes.Contains(first, []byte(want)) {
			t.Errorf("snapshot missing %s:\n%s", want, s)
		}
	}
}
