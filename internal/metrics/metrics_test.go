package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(5)
	g.Set(7)
	h.Observe(9)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled registry recorded values: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	c := r.Counter("srpc.calls")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("queue.depth")
	g.Set(3)
	g.Set(9)
	g.Set(2)
	if g.Value() != 2 || g.Max() != 9 {
		t.Fatalf("gauge value=%d max=%d", g.Value(), g.Max())
	}
	g.Add(-1)
	if g.Value() != 1 {
		t.Fatalf("gauge after Add = %d", g.Value())
	}

	h := r.Histogram("lat_ns")
	for _, v := range []int64{1, 2, 3, 700, 700, 1 << 40} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hv := s.Histograms["lat_ns"]
	if hv.Count != 6 {
		t.Fatalf("hist count = %d", hv.Count)
	}
	if hv.Min != 1 || hv.Max != 1<<40 {
		t.Fatalf("hist min=%d max=%d", hv.Min, hv.Max)
	}
	// 700 has bit length 10, so both samples land in the le=1023 bucket.
	found := false
	for _, b := range hv.Buckets {
		if b.Le == 1023 && b.Count == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing le=1023 bucket with 2 samples: %+v", hv.Buckets)
	}
}

func TestResetKeepsHandles(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	c := r.Counter("c")
	h := r.Histogram("h")
	c.Inc()
	h.Observe(10)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatal("Reset did not zero values")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("handle dead after Reset")
	}
	s := r.Snapshot()
	if _, ok := s.Histograms["h"]; !ok {
		t.Fatal("histogram registration lost by Reset")
	}
}

func TestSameNameReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Fatal("Histogram not idempotent")
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	for _, n := range []string{"z.last", "a.first", "m.middle"} {
		r.Counter(n).Add(3)
	}
	r.Histogram("h_ns").Observe(12345)
	r.Gauge("g").Set(-4)
	var b1, b2 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two snapshots of the same state serialize differently")
	}
	var parsed map[string]any
	if err := json.Unmarshal(b1.Bytes(), &parsed); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	// Empty histograms must still appear (the failover histogram contract).
	r2 := NewRegistry()
	r2.Histogram("spm.failover.latency_ns")
	var b3 bytes.Buffer
	if err := r2.Snapshot().WriteJSON(&b3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b3.String(), "spm.failover.latency_ns") {
		t.Fatal("empty histogram missing from snapshot JSON")
	}
}

func TestCounterDelta(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	c := r.Counter("c")
	c.Add(2)
	before := r.Snapshot()
	c.Add(5)
	after := r.Snapshot()
	if d := after.CounterDelta(before, "c"); d != 5 {
		t.Fatalf("delta = %d, want 5", d)
	}
	if d := after.CounterDelta(nil, "c"); d != 7 {
		t.Fatalf("delta vs nil = %d, want 7", d)
	}
}

func TestTableRendering(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	r.Counter("spm.world_switches").Add(10)
	r.Histogram("spm.failover.latency_ns") // empty on purpose
	out := r.Snapshot().String()
	if !strings.Contains(out, "spm.world_switches") {
		t.Errorf("table missing counter:\n%s", out)
	}
	if !strings.Contains(out, "no samples") {
		t.Errorf("table missing empty histogram:\n%s", out)
	}
}

// The disabled-path cost contract: hooks must not allocate when the registry
// is off. Guarded both by a hard assertion and by -benchmem visibility.

func assertZeroAllocs(tb testing.TB, name string, fn func()) {
	tb.Helper()
	if n := testing.AllocsPerRun(100, fn); n != 0 {
		tb.Fatalf("%s allocated %.1f bytes-worth of objects per op when disabled", name, n)
	}
}

func BenchmarkDisabledCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.counter")
	assertZeroAllocs(b, "Counter.Add", func() { c.Add(3) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkDisabledGauge(b *testing.B) {
	r := NewRegistry()
	g := r.Gauge("bench.gauge")
	assertZeroAllocs(b, "Gauge.Set", func() { g.Set(42) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkDisabledHistogram(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench.hist_ns")
	assertZeroAllocs(b, "Histogram.Observe", func() { h.Observe(1234) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	r := NewRegistry()
	r.Enable()
	c := r.Counter("bench.counter")
	assertZeroAllocs(b, "enabled Counter.Add", func() { c.Add(3) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
