package metrics

import (
	"math"
	"testing"
)

// TestHistogramQuantile is the table-driven Quantile contract: empty
// histograms report 0, single-bucket histograms clamp to the observed
// values, multi-bucket histograms interpolate inside the target bucket.
func TestHistogramQuantile(t *testing.T) {
	cases := []struct {
		name    string
		samples []int64
		q       float64
		want    float64
		tol     float64 // absolute tolerance; 0 means exact
	}{
		{name: "empty", samples: nil, q: 0.5, want: 0},
		{name: "empty p99", samples: nil, q: 0.99, want: 0},

		// Single bucket: every estimate must clamp to the only value seen.
		{name: "single sample p50", samples: []int64{100}, q: 0.5, want: 100},
		{name: "single sample p0", samples: []int64{100}, q: 0, want: 100},
		{name: "single sample p100", samples: []int64{100}, q: 1, want: 100},
		{name: "zero sample", samples: []int64{0}, q: 0.5, want: 0},
		{
			name:    "one bucket many samples",
			samples: []int64{100, 100, 100, 100},
			q:       0.99,
			want:    100,
		},

		// Interpolation: samples spread over distinct buckets; the p50
		// must land in the middle bucket's range, not at an edge.
		{
			// Low bucket is [8,15]; rank 1 of 2 bucket samples -> pos 0.5
			// -> 8 + 0.5*(15-8) = 11.5 (inside the bucket, above min).
			name:    "two buckets p25 in low bucket",
			samples: []int64{10, 10, 1000, 1000},
			q:       0.25,
			want:    11.5,
		},
		{
			name:    "two buckets p99 in high bucket",
			samples: []int64{10, 10, 1000, 1000},
			q:       0.99,
			want:    1000, // clamped to max inside the high bucket
		},
		{
			// Bucket for 1000 is [512,1023]; rank 1.5 of 3 falls in it at
			// pos (1.5-1)/2 = 0.25 -> 512 + 0.25*(1023-512) = 639.75.
			name:    "interpolated midpoint",
			samples: []int64{10, 1000, 1000},
			q:       0.5,
			want:    639.75,
			tol:     0.01,
		},
		{
			// q is clamped into [0,1].
			name: "q below range", samples: []int64{5, 7}, q: -1, want: 5,
		},
		{
			name: "q above range", samples: []int64{5, 7}, q: 2, want: 7,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			r.Enable()
			h := r.Histogram("q.test_ns")
			for _, s := range tc.samples {
				h.Observe(s)
			}
			got := h.Quantile(tc.q)
			if tc.tol == 0 && got != tc.want {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
			if tc.tol > 0 && math.Abs(got-tc.want) > tc.tol {
				t.Fatalf("Quantile(%v) = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
			}
		})
	}
}

// TestHistogramQuantileMonotone: quantile estimates never decrease in q and
// always stay inside [min, max].
func TestHistogramQuantileMonotone(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	h := r.Histogram("mono.test_ns")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 37 % 4096)
	}
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile at lower q %v", q, v, prev)
		}
		if v < 0 || v > 4095 {
			t.Fatalf("Quantile(%v) = %v outside observed range", q, v)
		}
		prev = v
	}
}

// TestNilHistogramQuantile: nil handles are valid no-ops like the rest of
// the instrument API.
func TestNilHistogramQuantile(t *testing.T) {
	var h *Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("nil Quantile = %v, want 0", got)
	}
}
