// Package metrics is the virtual-time metrics registry of the CRONUS
// reproduction: counters, gauges and fixed log-scale histograms that every
// subsystem (sim kernel, SPM, sRPC, mOS, device drivers, attestation) records
// into under a common name vocabulary.
//
// The registry is deliberately wall-clock free: every recorded value is either
// a plain count or a virtual-time quantity in nanoseconds (int64), so two
// identical simulation runs produce byte-identical snapshots. Like the trace
// collector, recording is disabled by default and each hook costs one atomic
// load and a branch — and allocates nothing — when off.
//
// Instruments are registered once (typically in package-level vars) and the
// returned handles are used on hot paths; all operations are safe under the
// race detector. Snapshot serializes the full registry to deterministic JSON
// (sorted keys) or a text table.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// histBuckets is the fixed log-scale bucket count: bucket i holds values whose
// bit length is i, i.e. the ranges [0], [1], [2,3], [4,7], ... so the upper
// bound of bucket i is 2^i - 1.
const histBuckets = 65

// Registry owns a namespace of instruments. The zero value is not usable; use
// NewRegistry (or the package-level Default).
type Registry struct {
	enabled atomic.Bool

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Default is the process-wide registry all built-in instrumentation records
// into.
var Default = NewRegistry()

// NewRegistry creates an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Enable turns on recording. Previously recorded values are kept; call Reset
// to zero them.
func (r *Registry) Enable() { r.enabled.Store(true) }

// Disable stops recording. Registered instruments and their values remain
// readable.
func (r *Registry) Disable() { r.enabled.Store(false) }

// Enabled reports whether instruments are recording.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Reset zeroes every instrument's value. Registrations (and the handles held
// by instrumented code) stay valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
		g.max.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Counter registers (or returns the existing) monotonically increasing
// counter under name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{r: r}
	r.counters[name] = c
	return c
}

// Gauge registers (or returns the existing) gauge under name. A gauge tracks
// both the last value set and the maximum ever set (high-water mark).
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{r: r}
	r.gauges[name] = g
	return g
}

// Histogram registers (or returns the existing) log-scale histogram under
// name. By convention, names of histograms holding virtual-time durations end
// in "_ns".
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{r: r}
	h.min.Store(math.MaxInt64)
	r.hists[name] = h
	return h
}

// Counter is a monotonically increasing count. A nil Counter is a valid no-op.
type Counter struct {
	r *Registry
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. When the registry is disabled this is one atomic load and a
// branch, with no allocation.
func (c *Counter) Add(n uint64) {
	if c == nil || !c.r.enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value with a high-water mark. A nil Gauge is a
// valid no-op.
type Gauge struct {
	r   *Registry
	v   atomic.Int64
	max atomic.Int64
}

// Set records the current value (and raises the high-water mark).
func (g *Gauge) Set(v int64) {
	if g == nil || !g.r.enabled.Load() {
		return
	}
	g.v.Store(v)
	g.raise(v)
}

// Add adjusts the current value by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil || !g.r.enabled.Load() {
		return
	}
	g.raise(g.v.Add(delta))
}

func (g *Gauge) raise(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the last value set.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram accumulates samples into fixed power-of-two buckets: no
// wall-clock, no dynamic bucket layout, so identical runs fill identical
// buckets. A nil Histogram is a valid no-op.
type Histogram struct {
	r       *Registry
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64

	// Tail exemplars: the maxExemplars largest samples seen, each tagged
	// with the trace id that produced it, so a histogram's p99 tail points
	// back at concrete causal traces. Recorded only via ObserveExemplar.
	exMu sync.Mutex
	ex   []Exemplar
}

// maxExemplars bounds how many tail exemplars a histogram retains.
const maxExemplars = 4

// Exemplar ties one extreme histogram sample back to the causal trace that
// produced it.
type Exemplar struct {
	Value   int64  `json:"value"`
	TraceID uint64 `json:"trace_id"`
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil || !h.r.enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// ObserveExemplar records one sample like Observe and, if the sample ranks
// among the largest seen, retains it as a tail exemplar tagged with traceID.
// Replacement is deterministic: the maxExemplars largest values win, and on a
// value tie the incumbent stays. Callers on hot paths should prefer Observe
// unless tracing is enabled.
func (h *Histogram) ObserveExemplar(v int64, traceID uint64) {
	if h == nil || !h.r.enabled.Load() {
		return
	}
	h.Observe(v)
	if v < 0 {
		v = 0
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if len(h.ex) < maxExemplars {
		h.ex = append(h.ex, Exemplar{Value: v, TraceID: traceID})
	} else {
		lo := 0
		for i := 1; i < len(h.ex); i++ {
			if h.ex[i].Value < h.ex[lo].Value {
				lo = i
			}
		}
		if v <= h.ex[lo].Value {
			return
		}
		h.ex[lo] = Exemplar{Value: v, TraceID: traceID}
	}
	sort.SliceStable(h.ex, func(i, j int) bool {
		if h.ex[i].Value != h.ex[j].Value {
			return h.ex[i].Value > h.ex[j].Value
		}
		return h.ex[i].TraceID < h.ex[j].TraceID
	})
}

// Exemplars returns a copy of the retained tail exemplars, largest first.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	out := make([]Exemplar, len(h.ex))
	copy(out, h.ex)
	return out
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// value copies the histogram's current state into its serialized form (the
// same shape Snapshot produces).
func (h *Histogram) value() HistValue {
	hv := HistValue{Count: h.count.Load(), Sum: h.sum.Load()}
	if hv.Count > 0 {
		hv.Min = h.min.Load()
		hv.Max = h.max.Load()
	}
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := uint64(math.MaxUint64)
		if i < 64 {
			le = 1<<uint(i) - 1
		}
		hv.Buckets = append(hv.Buckets, HistBucket{Le: le, Count: n})
	}
	hv.Exemplars = h.Exemplars()
	return hv
}

// Quantile estimates the q-quantile of the recorded samples (see
// HistValue.Quantile). A nil or empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.value().Quantile(q)
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
	h.exMu.Lock()
	h.ex = nil
	h.exMu.Unlock()
}

// GaugeValue is the serialized form of a gauge.
type GaugeValue struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// HistBucket is one non-empty histogram bucket: Count samples were <= Le.
type HistBucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistValue is the serialized form of a histogram. Min and Max are zero when
// the histogram is empty.
type HistValue struct {
	Count     uint64       `json:"count"`
	Sum       int64        `json:"sum"`
	Min       int64        `json:"min"`
	Max       int64        `json:"max"`
	Buckets   []HistBucket `json:"buckets,omitempty"`
	Exemplars []Exemplar   `json:"exemplars,omitempty"`
}

// bucketLo returns the inclusive lower bound of the bucket whose upper
// bound is le: buckets hold values by bit length, so bucket [0], [1],
// [2,3], [4,7], ...
func bucketLo(le uint64) float64 {
	if le == 0 {
		return 0
	}
	return float64(le/2 + 1)
}

// Quantile estimates the q-quantile (q in [0,1], clamped) of the recorded
// samples: it walks the cumulative bucket counts to the bucket containing
// the target rank, interpolates linearly inside that bucket's value range,
// and clamps the estimate to the observed min/max so single-bucket and
// extreme quantiles stay exact at the boundaries. An empty histogram
// reports 0.
func (h HistValue) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := float64(0)
	clamp := func(v float64) float64 {
		if v < float64(h.Min) {
			return float64(h.Min)
		}
		if v > float64(h.Max) {
			return float64(h.Max)
		}
		return v
	}
	for i, b := range h.Buckets {
		n := float64(b.Count)
		if cum+n >= rank || i == len(h.Buckets)-1 {
			lo, hi := bucketLo(b.Le), float64(b.Le)
			pos := (rank - cum) / n
			if pos < 0 {
				pos = 0
			}
			if pos > 1 {
				pos = 1
			}
			return clamp(lo + pos*(hi-lo))
		}
		cum += n
	}
	return float64(h.Max)
}

// Mean returns the average sample (0 when empty).
func (h HistValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time copy of every registered instrument. Maps
// marshal with sorted keys, so WriteJSON output is deterministic.
type Snapshot struct {
	Counters   map[string]uint64     `json:"counters"`
	Gauges     map[string]GaugeValue `json:"gauges"`
	Histograms map[string]HistValue  `json:"histograms"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]GaugeValue, len(r.gauges)),
		Histograms: make(map[string]HistValue, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeValue{Value: g.v.Load(), Max: g.max.Load()}
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.value()
	}
	return s
}

// WriteJSON emits the snapshot as indented, deterministically ordered JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// CounterDelta returns the growth of a counter since an earlier snapshot.
func (s *Snapshot) CounterDelta(before *Snapshot, name string) uint64 {
	v := s.Counters[name]
	if before != nil {
		v -= before.Counters[name]
	}
	return v
}

// Summary renders a terse one-line digest.
func (s *Snapshot) Summary() string {
	nonZero := 0
	for _, v := range s.Counters {
		if v != 0 {
			nonZero++
		}
	}
	samples := uint64(0)
	for _, h := range s.Histograms {
		samples += h.Count
	}
	return fmt.Sprintf("%d metrics (%d counters active, %d histogram samples)",
		len(s.Counters)+len(s.Gauges)+len(s.Histograms), nonZero, samples)
}

// fmtNS renders a virtual-time nanosecond quantity for humans.
func fmtNS(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fus", v/1e3)
	default:
		return fmt.Sprintf("%.0fns", v)
	}
}

// String renders the snapshot as a text table: non-zero counters and gauges
// plus every histogram (histograms appear even when empty, so the reader sees
// what was measured). Values of names ending in "_ns" are shown as durations.
func (s *Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n, v := range s.Counters {
		if v != 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) > 0 {
		b.WriteString("  counters:\n")
		for _, n := range names {
			b.WriteString(fmt.Sprintf("    %-34s %12d\n", n, s.Counters[n]))
		}
	}
	names = names[:0]
	for n, g := range s.Gauges {
		if g.Value != 0 || g.Max != 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) > 0 {
		b.WriteString("  gauges:\n")
		for _, n := range names {
			g := s.Gauges[n]
			b.WriteString(fmt.Sprintf("    %-34s %12d  (max %d)\n", n, g.Value, g.Max))
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		b.WriteString("  histograms:\n")
		for _, n := range names {
			h := s.Histograms[n]
			if h.Count == 0 {
				b.WriteString(fmt.Sprintf("    %-34s (no samples)\n", n))
				continue
			}
			if strings.HasSuffix(n, "_ns") {
				b.WriteString(fmt.Sprintf("    %-34s n=%d mean=%s min=%s max=%s\n",
					n, h.Count, fmtNS(h.Mean()), fmtNS(float64(h.Min)), fmtNS(float64(h.Max))))
			} else {
				b.WriteString(fmt.Sprintf("    %-34s n=%d mean=%.1f min=%d max=%d\n",
					n, h.Count, h.Mean(), h.Min, h.Max))
			}
		}
	}
	if b.Len() == 0 {
		return "  (no metrics recorded)\n"
	}
	return b.String()
}
