package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestExemplarTopK(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	h := r.Histogram("lat")
	// Fill past the retention bound; only the maxExemplars largest stay.
	for i, v := range []int64{10, 50, 30, 20, 40, 5, 60} {
		h.ObserveExemplar(v, uint64(i+1))
	}
	ex := h.Exemplars()
	if len(ex) != maxExemplars {
		t.Fatalf("exemplars = %+v", ex)
	}
	wantVals := []int64{60, 50, 40, 30}
	for i, e := range ex {
		if e.Value != wantVals[i] {
			t.Fatalf("exemplars = %+v, want values %v", ex, wantVals)
		}
	}
	if ex[0].TraceID != 7 || ex[1].TraceID != 2 {
		t.Fatalf("trace ids not carried: %+v", ex)
	}
	// The samples also land in the plain histogram stats.
	if hv := h.value(); h.Count() != 7 || hv.Max != 60 {
		t.Fatalf("count=%d max=%d", h.Count(), hv.Max)
	}
}

func TestExemplarTieKeepsIncumbent(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	h := r.Histogram("lat")
	for i := 0; i < maxExemplars; i++ {
		h.ObserveExemplar(100, uint64(i+1))
	}
	// Equal value must not displace an incumbent — deterministic under
	// any arrival order of ties.
	h.ObserveExemplar(100, 99)
	for _, e := range h.Exemplars() {
		if e.TraceID == 99 {
			t.Fatalf("tie displaced an incumbent: %+v", h.Exemplars())
		}
	}
}

func TestExemplarDisabledAndReset(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.ObserveExemplar(5, 1)
	if len(h.Exemplars()) != 0 {
		t.Fatal("disabled registry retained an exemplar")
	}
	r.Enable()
	h.ObserveExemplar(5, 1)
	if len(h.Exemplars()) != 1 {
		t.Fatal("exemplar not retained")
	}
	r.Reset()
	if len(h.Exemplars()) != 0 {
		t.Fatal("Reset did not clear exemplars")
	}
}

func TestExemplarInSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	r.Histogram("lat").ObserveExemplar(123, 0xbeef)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"exemplars"`, `"value": 123`, `"trace_id": 48879`} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %s:\n%s", want, out)
		}
	}
	// A histogram without exemplars omits the field entirely.
	var buf2 bytes.Buffer
	r2 := NewRegistry()
	r2.Enable()
	r2.Histogram("lat").Observe(5)
	if err := r2.Snapshot().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf2.String(), "exemplars") {
		t.Error("plain histogram leaked an exemplars field")
	}
}
