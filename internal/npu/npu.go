// Package npu implements a VTA-compatible NPU simulator, the counterpart of
// TVM's fsim used in the paper (§V-B): an instruction-driven accelerator
// with int8 GEMM and vector ALU cores, SRAM scratchpads for inputs, weights,
// accumulators and outputs, and DMA between device DRAM and the scratchpads.
//
// Instructions execute functionally (real int8/int32 arithmetic) while the
// device charges cycle-accurate-style virtual time, so inference results are
// verifiable and latencies reproducible.
package npu

import (
	"fmt"

	"cronus/internal/attest"
	"cronus/internal/sim"
)

// Block geometry (the standard VTA configuration): the GEMM core multiplies
// a 1×16 int8 input block by a 16×16 int8 weight block into a 1×16 int32
// accumulator block each cycle.
const (
	BlockIn  = 16 // input vector lanes
	BlockOut = 16 // output vector lanes

	WgtBlockBytes = BlockIn * BlockOut // one weight block in DRAM/SRAM
	InpBlockBytes = BlockIn
	OutBlockBytes = BlockOut
	AccBlockBytes = BlockOut * 4
)

// Scratchpad capacities in blocks.
const (
	InpBufBlocks = 2048 // 32 KiB of int8 input blocks
	WgtBufBlocks = 1024 // 256 KiB of weight blocks
	AccBufBlocks = 2048 // 128 KiB of accumulator blocks
	OutBufBlocks = 2048 // 32 KiB of output blocks
)

// Op is a VTA instruction opcode.
type Op uint8

// Opcodes.
const (
	OpLoad Op = iota
	OpStore
	OpGemm
	OpAlu
	// OpCommit narrows Count accumulator blocks starting at SrcIdx into
	// int8 output blocks starting at DstIdx (the VTA ACC→OUT path).
	OpCommit
	OpFinish
)

// Mem selects a scratchpad for LOAD/STORE.
type Mem uint8

// Scratchpad identifiers.
const (
	MemInp Mem = iota
	MemWgt
	MemAcc
	MemOut
)

// AluOp is a vector ALU operation applied lane-wise to accumulator blocks.
type AluOp uint8

// ALU operations.
const (
	AluAdd AluOp = iota // dst += src (or imm)
	AluMax              // dst = max(dst, src/imm)
	AluMin              // dst = min(dst, src/imm)
	AluShr              // dst >>= src/imm (arithmetic)
)

// Insn is one NPU instruction.
type Insn struct {
	Op Op

	// LOAD/STORE fields.
	Mem      Mem
	DRAMAddr uint64 // device DRAM byte address
	SRAMIdx  uint32 // scratchpad block index
	Count    uint32 // number of blocks (LOAD/STORE) or iterations (GEMM/ALU)

	// GEMM fields: for i in [0,Count): acc[AccIdx+i*AccStride] +=
	// wgt[WgtIdx+i*WgtStride] × inp[InpIdx+i*InpStride]; Reset zeroes each
	// touched accumulator block before its first use.
	InpIdx, WgtIdx, AccIdx          uint32
	InpStride, WgtStride, AccStride uint32
	Reset                           bool

	// ALU fields: lane-wise over Count consecutive blocks.
	Alu    AluOp
	DstIdx uint32
	SrcIdx uint32
	UseImm bool
	Imm    int32
}

// Device is one NPU. It implements hw.Device.
type Device struct {
	name  string
	k     *sim.Kernel
	costs *sim.CostModel

	memSize uint64
	memUsed uint64

	// Scratchpads (shared by all contexts; executions are serialized like
	// the single physical VTA pipeline).
	inp []int8
	wgt []int8
	acc []int32
	out []int8

	pipeline *sim.Resource // whole-pipeline exclusivity per instruction stream
	contexts map[int]*Context
	nextCtx  int
	gen      uint64

	priv attest.PrivateKey
}

// Config sizes an NPU.
type Config struct {
	Name     string
	MemBytes uint64
	KeySeed  string
}

// DefaultConfig mirrors the paper's VTA PCIe device with 1 GiB of DRAM.
func DefaultConfig(name string) Config {
	return Config{Name: name, MemBytes: 1 << 30, KeySeed: "vta/" + name}
}

// New creates an NPU device.
func New(k *sim.Kernel, costs *sim.CostModel, cfg Config) *Device {
	return &Device{
		name:     cfg.Name,
		k:        k,
		costs:    costs,
		memSize:  cfg.MemBytes,
		inp:      make([]int8, InpBufBlocks*InpBlockBytes),
		wgt:      make([]int8, WgtBufBlocks*WgtBlockBytes),
		acc:      make([]int32, AccBufBlocks*BlockOut),
		out:      make([]int8, OutBufBlocks*OutBlockBytes),
		pipeline: sim.NewResource(k, cfg.Name+"/pipe", 1),
		contexts: make(map[int]*Context),
		priv:     attest.KeyFromSeed([]byte("npu-device-key/" + cfg.KeySeed)),
	}
}

// Name implements hw.Device.
func (d *Device) Name() string { return d.name }

// MemBytes returns total device DRAM.
func (d *Device) MemBytes() uint64 { return d.memSize }

// PubKey returns the device authenticity key.
func (d *Device) PubKey() attest.PublicKey { return d.priv.Public().(attest.PublicKey) }

// Authenticate signs a challenge with the fused device key.
func (d *Device) Authenticate(challenge []byte) []byte { return attest.Sign(d.priv, challenge) }

// Reset implements hw.Device: scrub scratchpads, DRAM and contexts.
func (d *Device) Reset() {
	for i := range d.inp {
		d.inp[i] = 0
	}
	for i := range d.wgt {
		d.wgt[i] = 0
	}
	for i := range d.acc {
		d.acc[i] = 0
	}
	for i := range d.out {
		d.out[i] = 0
	}
	for _, c := range d.contexts {
		for _, s := range c.spans {
			for i := range s.buf {
				s.buf[i] = 0
			}
		}
	}
	d.contexts = make(map[int]*Context)
	d.memUsed = 0
	d.gen++
}

// ErrStaleContext reports use of a context created before a device reset.
var ErrStaleContext = fmt.Errorf("npu: context predates device reset")

type span struct {
	addr uint64
	size uint64
	buf  []byte
}

// Context is an isolated NPU memory space ("virtual memory" isolation of
// concurrent NPU tenants, §V-B).
type Context struct {
	id    int
	dev   *Device
	gen   uint64
	spans []*span
	next  uint64
}

// CreateContext makes an isolated context.
func (d *Device) CreateContext() *Context {
	d.nextCtx++
	c := &Context{id: d.nextCtx, dev: d, gen: d.gen}
	d.contexts[c.id] = c
	return c
}

// DestroyContext frees (and scrubs) all context memory.
func (d *Device) DestroyContext(c *Context) {
	if d.contexts[c.id] != c {
		return
	}
	for _, s := range c.spans {
		for i := range s.buf {
			s.buf[i] = 0
		}
		d.memUsed -= s.size
	}
	c.spans = nil
	delete(d.contexts, c.id)
}

func (c *Context) check() error {
	if c.gen != c.dev.gen {
		return ErrStaleContext
	}
	return nil
}

// MemAlloc allocates device DRAM and returns its device address.
func (c *Context) MemAlloc(n uint64) (uint64, error) {
	if err := c.check(); err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("npu: zero-byte allocation")
	}
	if c.dev.memUsed+n > c.dev.memSize {
		return 0, fmt.Errorf("npu: out of device memory")
	}
	addr := uint64(c.id)<<40 | (c.next + 0x1000)
	c.next += (n + 0xfff) &^ 0xfff
	c.spans = append(c.spans, &span{addr: addr, size: n, buf: make([]byte, n)})
	c.dev.memUsed += n
	return addr, nil
}

func (c *Context) resolve(addr uint64, n int) ([]byte, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	for _, s := range c.spans {
		if addr >= s.addr && addr+uint64(n) <= s.addr+s.size {
			off := addr - s.addr
			return s.buf[off : off+uint64(n)], nil
		}
	}
	return nil, fmt.Errorf("npu: invalid device address %#x (+%d) in context %d", addr, n, c.id)
}

// HtoD copies host bytes into device DRAM (PCIe DMA).
func (c *Context) HtoD(p *sim.Proc, dst uint64, src []byte) error {
	buf, err := c.resolve(dst, len(src))
	if err != nil {
		return err
	}
	p.Sleep(c.dev.costs.DMA(len(src)))
	copy(buf, src)
	return nil
}

// DtoH copies device DRAM to host bytes.
func (c *Context) DtoH(p *sim.Proc, dst []byte, src uint64) error {
	buf, err := c.resolve(src, len(dst))
	if err != nil {
		return err
	}
	p.Sleep(c.dev.costs.DMA(len(dst)))
	copy(dst, buf)
	return nil
}
