package npu

import (
	"fmt"

	"cronus/internal/sim"
)

// Cycle costs of the pipeline stages. LOAD/STORE move 16 bytes per cycle
// after a fixed DMA setup; the GEMM array retires one block operation
// (16×16 MACs) per cycle; the ALU retires one block per cycle.
const (
	loadSetupCycles  = 32
	bytesPerCycle    = 16
	gemmCyclesPerOp  = 1
	aluCyclesPerOp   = 1
	finishCycles     = 8
	issueCyclesPerOp = 1
)

// Run executes an instruction stream on the device: functionally (real
// arithmetic on scratchpads and DRAM) and temporally (the calling proc
// occupies the pipeline for the modelled cycle count). Streams from
// different contexts serialize on the single physical pipeline.
func (c *Context) Run(p *sim.Proc, insns []Insn) error {
	if err := c.check(); err != nil {
		return err
	}
	c.dev.pipeline.Acquire(p, 1)
	defer c.dev.pipeline.Release(1)
	var cycles uint64
	for i := range insns {
		n, err := c.exec(&insns[i])
		if err != nil {
			return fmt.Errorf("npu: insn %d: %w", i, err)
		}
		cycles += n + issueCyclesPerOp
		if insns[i].Op == OpFinish {
			break
		}
	}
	p.Sleep(sim.Duration(float64(cycles) / c.dev.costs.NPUCyclePerNs))
	if err := c.check(); err != nil {
		return err // device reset while the stream was in flight
	}
	return nil
}

// CycleCount returns the modelled cycles of a stream without executing it.
func CycleCount(insns []Insn) uint64 {
	var cycles uint64
	for i := range insns {
		in := &insns[i]
		cycles += issueCyclesPerOp
		switch in.Op {
		case OpLoad, OpStore:
			cycles += loadSetupCycles + uint64(in.Count)*uint64(blockBytes(in.Mem))/bytesPerCycle
		case OpGemm:
			cycles += uint64(in.Count) * gemmCyclesPerOp
		case OpAlu, OpCommit:
			cycles += uint64(in.Count) * aluCyclesPerOp
		case OpFinish:
			cycles += finishCycles
		}
		if in.Op == OpFinish {
			break
		}
	}
	return cycles
}

func blockBytes(m Mem) int {
	switch m {
	case MemInp:
		return InpBlockBytes
	case MemWgt:
		return WgtBlockBytes
	case MemAcc:
		return AccBlockBytes
	case MemOut:
		return OutBlockBytes
	}
	return InpBlockBytes
}

func (c *Context) exec(in *Insn) (uint64, error) {
	switch in.Op {
	case OpLoad:
		return c.load(in)
	case OpStore:
		return c.store(in)
	case OpGemm:
		return c.gemm(in)
	case OpAlu:
		return c.alu(in)
	case OpCommit:
		if err := c.CommitOut(in.SrcIdx, in.DstIdx, in.Count); err != nil {
			return 0, err
		}
		return uint64(in.Count) * aluCyclesPerOp, nil
	case OpFinish:
		return finishCycles, nil
	}
	return 0, fmt.Errorf("unknown opcode %d", in.Op)
}

func (c *Context) load(in *Insn) (uint64, error) {
	bb := blockBytes(in.Mem)
	total := int(in.Count) * bb
	src, err := c.resolve(in.DRAMAddr, total)
	if err != nil {
		return 0, err
	}
	switch in.Mem {
	case MemInp:
		if int(in.SRAMIdx)+int(in.Count) > InpBufBlocks {
			return 0, fmt.Errorf("inp scratchpad overflow")
		}
		dst := c.dev.inp[int(in.SRAMIdx)*InpBlockBytes:]
		for i := 0; i < total; i++ {
			dst[i] = int8(src[i])
		}
	case MemWgt:
		if int(in.SRAMIdx)+int(in.Count) > WgtBufBlocks {
			return 0, fmt.Errorf("wgt scratchpad overflow")
		}
		dst := c.dev.wgt[int(in.SRAMIdx)*WgtBlockBytes:]
		for i := 0; i < total; i++ {
			dst[i] = int8(src[i])
		}
	case MemAcc:
		if int(in.SRAMIdx)+int(in.Count) > AccBufBlocks {
			return 0, fmt.Errorf("acc scratchpad overflow")
		}
		dst := c.dev.acc[int(in.SRAMIdx)*BlockOut:]
		for i := 0; i < int(in.Count)*BlockOut; i++ {
			dst[i] = int32(uint32(src[i*4]) | uint32(src[i*4+1])<<8 | uint32(src[i*4+2])<<16 | uint32(src[i*4+3])<<24)
		}
	default:
		return 0, fmt.Errorf("cannot LOAD into OUT scratchpad")
	}
	return loadSetupCycles + uint64(total)/bytesPerCycle, nil
}

func (c *Context) store(in *Insn) (uint64, error) {
	if in.Mem != MemOut {
		return 0, fmt.Errorf("STORE only writes the OUT scratchpad to DRAM")
	}
	total := int(in.Count) * OutBlockBytes
	if int(in.SRAMIdx)+int(in.Count) > OutBufBlocks {
		return 0, fmt.Errorf("out scratchpad overflow")
	}
	dst, err := c.resolve(in.DRAMAddr, total)
	if err != nil {
		return 0, err
	}
	src := c.dev.out[int(in.SRAMIdx)*OutBlockBytes:]
	for i := 0; i < total; i++ {
		dst[i] = byte(src[i])
	}
	return loadSetupCycles + uint64(total)/bytesPerCycle, nil
}

// gemm: for i in [0,Count): acc[AccIdx+i*AccStride] +=
// wgt[WgtIdx+i*WgtStride] × inp[InpIdx+i*InpStride].
func (c *Context) gemm(in *Insn) (uint64, error) {
	resetSeen := make(map[uint32]bool)
	for i := uint32(0); i < in.Count; i++ {
		ai := in.AccIdx + i*in.AccStride
		wi := in.WgtIdx + i*in.WgtStride
		ii := in.InpIdx + i*in.InpStride
		if ai >= AccBufBlocks || wi >= WgtBufBlocks || ii >= InpBufBlocks {
			return 0, fmt.Errorf("gemm scratchpad index out of range (acc=%d wgt=%d inp=%d)", ai, wi, ii)
		}
		acc := c.dev.acc[ai*BlockOut : (ai+1)*BlockOut]
		if in.Reset && !resetSeen[ai] {
			for o := range acc {
				acc[o] = 0
			}
			resetSeen[ai] = true
		}
		wgt := c.dev.wgt[wi*WgtBlockBytes : (wi+1)*WgtBlockBytes]
		inp := c.dev.inp[ii*InpBlockBytes : (ii+1)*InpBlockBytes]
		for o := 0; o < BlockOut; o++ {
			var s int32
			for k := 0; k < BlockIn; k++ {
				s += int32(wgt[o*BlockIn+k]) * int32(inp[k])
			}
			acc[o] += s
		}
	}
	return uint64(in.Count) * gemmCyclesPerOp, nil
}

func (c *Context) alu(in *Insn) (uint64, error) {
	for i := uint32(0); i < in.Count; i++ {
		di := in.DstIdx + i
		if di >= AccBufBlocks {
			return 0, fmt.Errorf("alu dst index out of range")
		}
		dst := c.dev.acc[di*BlockOut : (di+1)*BlockOut]
		var src []int32
		if !in.UseImm {
			si := in.SrcIdx + i
			if si >= AccBufBlocks {
				return 0, fmt.Errorf("alu src index out of range")
			}
			src = c.dev.acc[si*BlockOut : (si+1)*BlockOut]
		}
		for o := 0; o < BlockOut; o++ {
			operand := in.Imm
			if !in.UseImm {
				operand = src[o]
			}
			switch in.Alu {
			case AluAdd:
				dst[o] += operand
			case AluMax:
				if operand > dst[o] {
					dst[o] = operand
				}
			case AluMin:
				if operand < dst[o] {
					dst[o] = operand
				}
			case AluShr:
				sh := operand & 31
				dst[o] >>= uint(sh)
			default:
				return 0, fmt.Errorf("unknown alu op %d", in.Alu)
			}
		}
	}
	return uint64(in.Count) * aluCyclesPerOp, nil
}

// CommitOut narrows accumulator blocks to int8 output blocks (the VTA
// pipeline's implicit ACC→OUT path before a STORE).
func (c *Context) CommitOut(accIdx, outIdx, count uint32) error {
	if accIdx+count > AccBufBlocks || outIdx+count > OutBufBlocks {
		return fmt.Errorf("npu: CommitOut out of range")
	}
	for i := uint32(0); i < count; i++ {
		acc := c.dev.acc[(accIdx+i)*BlockOut : (accIdx+i+1)*BlockOut]
		out := c.dev.out[(outIdx+i)*OutBlockBytes : (outIdx+i+1)*OutBlockBytes]
		for o := 0; o < BlockOut; o++ {
			v := acc[o]
			if v > 127 {
				v = 127
			}
			if v < -128 {
				v = -128
			}
			out[o] = int8(v)
		}
	}
	return nil
}
